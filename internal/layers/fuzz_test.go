package layers

import (
	"math"
	"testing"

	"tbd/internal/tensor"
)

// Fuzz targets: these run their seed corpus under plain `go test` and can
// be expanded with `go test -fuzz`. They assert the numerical-stability
// contracts of the loss implementations: finite outputs, zero-sum
// gradient rows, no panics on any well-formed input.

func FuzzCTCLoss(f *testing.F) {
	f.Add(uint16(3), uint16(4), int16(2), int16(1))
	f.Add(uint16(8), uint16(5), int16(3), int16(4))
	f.Add(uint16(1), uint16(2), int16(1), int16(1))
	f.Fuzz(func(t *testing.T, tFrames, vocab uint16, l1, l2 int16) {
		T := int(tFrames)%12 + 1
		V := int(vocab)%6 + 2
		labels := []int{int(l1)%(V-1) + 1}
		if l2 != 0 {
			labels = append(labels, int(l2)%(V-1)+1)
		}
		if len(ctcExtend(labels)) > 2*T+1 {
			t.Skip("label longer than frames")
		}
		rng := tensor.NewRNG(uint64(tFrames)*31 + uint64(vocab))
		logits := tensor.RandNormal(rng, 0, 2, T, V)
		loss, grad := CTCLoss(logits, labels)
		if math.IsNaN(float64(loss)) {
			t.Fatalf("NaN loss for T=%d V=%d labels=%v", T, V, labels)
		}
		if math.IsInf(float64(loss), 1) {
			// Legal when no alignment exists (repeated labels, tight T);
			// the gradient is then unusable and callers must check.
			return
		}
		if loss < -1e-4 {
			t.Fatalf("negative CTC loss %g", loss)
		}
		for ti := 0; ti < T; ti++ {
			var s float64
			for v := 0; v < V; v++ {
				g := float64(grad.At(ti, v))
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("non-finite gradient at (%d,%d)", ti, v)
				}
				s += g
			}
			if math.Abs(s) > 1e-3 {
				t.Fatalf("gradient row %d sums to %g", ti, s)
			}
		}
	})
}

func FuzzDenseForwardBackwardShapes(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(1))
	f.Add(uint8(7), uint8(5), uint8(6))
	f.Fuzz(func(t *testing.T, nIn, nOut, batch uint8) {
		in := int(nIn)%8 + 1
		out := int(nOut)%8 + 1
		n := int(batch)%6 + 1
		rng := tensor.NewRNG(uint64(nIn)<<16 | uint64(nOut)<<8 | uint64(batch))
		l := NewDense("fc", in, out, rng)
		x := tensor.RandNormal(rng, 0, 1, n, in)
		y := l.Forward(x, true)
		if y.Dim(0) != n || y.Dim(1) != out {
			t.Fatalf("forward shape %v for in=%d out=%d n=%d", y.Shape(), in, out, n)
		}
		gx := l.Backward(tensor.Ones(n, out))
		if !gx.SameShape(x) {
			t.Fatalf("backward shape %v != input %v", gx.Shape(), x.Shape())
		}
		for _, v := range gx.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("non-finite input gradient")
			}
		}
	})
}
