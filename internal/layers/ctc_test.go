package layers

import (
	"math"
	"testing"

	"tbd/internal/tensor"
)

func TestCTCLossPerfectAlignment(t *testing.T) {
	// Logits strongly favoring the path ∅ 1 ∅ 2 ∅ give near-zero loss
	// for labels [1 2].
	T, V := 5, 3
	logits := tensor.New(T, V)
	path := []int{0, 1, 0, 2, 0}
	for ti, sym := range path {
		logits.Set(10, ti, sym)
	}
	loss, _ := CTCLoss(logits, []int{1, 2})
	if loss > 0.01 {
		t.Fatalf("perfect-path CTC loss %.4f, want ~0", loss)
	}
	// The wrong labels must be much more expensive.
	wrong, _ := CTCLoss(logits, []int{2, 1})
	if wrong < 5 {
		t.Fatalf("wrong-label loss %.4f, want large", wrong)
	}
}

func TestCTCLossUniformMatchesPathCount(t *testing.T) {
	// With uniform logits, the likelihood is (#valid alignments) / V^T.
	// For labels [1] over T=2, V=2 the valid paths are ∅1, 1∅, 11 -> 3.
	logits := tensor.New(2, 2)
	loss, _ := CTCLoss(logits, []int{1})
	want := -math.Log(3.0 / 4.0)
	if math.Abs(float64(loss)-want) > 1e-4 {
		t.Fatalf("uniform CTC loss %.5f, want %.5f", loss, want)
	}
}

func TestCTCGradientFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(1)
	T, V := 6, 4
	logits := tensor.RandNormal(rng, 0, 1, T, V)
	labels := []int{2, 1, 2}
	loss, grad := CTCLoss(logits, labels)
	if loss <= 0 {
		t.Fatalf("loss %.4f", loss)
	}
	const eps = 1e-3
	for _, i := range []int{0, 5, 11, 17, 23} {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		up, _ := CTCLoss(logits, labels)
		logits.Data()[i] = orig - eps
		down, _ := CTCLoss(logits, labels)
		logits.Data()[i] = orig
		num := float64(up-down) / (2 * eps)
		if math.Abs(num-float64(grad.Data()[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("grad[%d]: finite diff %.5f vs analytic %.5f", i, num, grad.Data()[i])
		}
	}
}

func TestCTCGradientRowsSumToZero(t *testing.T) {
	// d(-log p)/dlogits rows sum to zero (softmax minus a distribution).
	rng := tensor.NewRNG(2)
	logits := tensor.RandNormal(rng, 0, 1, 5, 4)
	_, grad := CTCLoss(logits, []int{1, 3})
	for ti := 0; ti < 5; ti++ {
		var s float64
		for v := 0; v < 4; v++ {
			s += float64(grad.At(ti, v))
		}
		if math.Abs(s) > 1e-4 {
			t.Fatalf("gradient row %d sums to %g", ti, s)
		}
	}
}

func TestCTCRepeatedLabelsNeedBlank(t *testing.T) {
	// Labels [1 1] require a blank between the two 1s, so T=2 has no
	// valid alignment at all — the loss must be +inf-ish (log 0).
	logits := tensor.New(2, 2)
	loss, _ := CTCLoss(logits, []int{1, 1})
	if !math.IsInf(float64(loss), 1) {
		t.Fatalf("impossible alignment should give infinite loss, got %g", loss)
	}
	// T=3 admits exactly the path 1 ∅ 1.
	logits3 := tensor.New(3, 2)
	loss3, _ := CTCLoss(logits3, []int{1, 1})
	want := -math.Log(1.0 / 8.0)
	if math.Abs(float64(loss3)-want) > 1e-4 {
		t.Fatalf("T=3 repeated-label loss %.5f, want %.5f", loss3, want)
	}
}

func TestCTCLossValidates(t *testing.T) {
	logits := tensor.New(3, 3)
	for _, bad := range [][]int{{0}, {3}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("labels %v must panic", bad)
				}
			}()
			CTCLoss(logits, bad)
		}()
	}
}

func TestCTCBatchAveraging(t *testing.T) {
	rng := tensor.NewRNG(3)
	T, V := 5, 4
	a := tensor.RandNormal(rng, 0, 1, T, V)
	b := tensor.RandNormal(rng, 0, 1, T, V)
	la, _ := CTCLoss(a, []int{1})
	lb, _ := CTCLoss(b, []int{2, 3})
	batch := tensor.New(2, T, V)
	copy(batch.Data()[:T*V], a.Data())
	copy(batch.Data()[T*V:], b.Data())
	loss, grad := CTCLossBatch(batch, [][]int{{1}, {2, 3}})
	want := (la + lb) / 2
	if math.Abs(float64(loss-want)) > 1e-5 {
		t.Fatalf("batch loss %.5f, want %.5f", loss, want)
	}
	if grad.Dim(0) != 2 || grad.Dim(1) != T {
		t.Fatalf("batch grad shape %v", grad.Shape())
	}
}

func TestCTCGreedyDecode(t *testing.T) {
	// Frames argmax to ∅ 1 1 ∅ 2 2 ∅ -> decode [1 2].
	path := []int{0, 1, 1, 0, 2, 2, 0}
	logits := tensor.New(len(path), 3)
	for ti, s := range path {
		logits.Set(5, ti, s)
	}
	got := CTCGreedyDecode(logits)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("decode = %v, want [1 2]", got)
	}
}

func TestCTCTrainingLearnsAlignment(t *testing.T) {
	// A linear per-frame model trained with CTC on a fixed utterance
	// should drive the loss down and decode the target labels.
	rng := tensor.NewRNG(4)
	T, F, V := 8, 6, 4
	x := tensor.RandNormal(rng, 0, 1, T, F)
	labels := []int{2, 1, 3}
	proj := NewDense("proj", F, V, rng)
	var first, last float32
	for step := 0; step < 200; step++ {
		for _, p := range proj.Params() {
			p.ZeroGrad()
		}
		logits := proj.Forward(x, true)
		loss, grad := CTCLoss(logits, labels)
		proj.Backward(grad)
		for _, p := range proj.Params() {
			// Plain SGD.
			for i, g := range p.Grad.Data() {
				p.Value.Data()[i] -= 0.5 * g
			}
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/4 {
		t.Fatalf("CTC training did not converge: %.4f -> %.4f", first, last)
	}
	decoded := CTCGreedyDecode(proj.Forward(x, false))
	if len(decoded) != len(labels) {
		t.Fatalf("decoded %v, want %v", decoded, labels)
	}
	for i := range labels {
		if decoded[i] != labels[i] {
			t.Fatalf("decoded %v, want %v", decoded, labels)
		}
	}
}
