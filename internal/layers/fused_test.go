package layers

import (
	"testing"

	"tbd/internal/tensor"
)

// Fused-epilogue equivalence: a Dense/Conv2D with Act set must produce the
// same bits as the unfused layer followed by the standalone activation
// layer — forward, input gradient, and parameter gradients — because the
// GEMM epilogue and ActBackward evaluate the exact expressions the
// standalone layers do. All comparisons use Equal(..., 0).

// actLayerFor builds the standalone activation layer matching kind.
func actLayerFor(kind tensor.ActKind) Layer {
	switch kind {
	case tensor.ActReLU:
		return NewReLU("act")
	case tensor.ActSigmoid:
		return NewSigmoid("act")
	case tensor.ActTanh:
		return NewTanh("act")
	}
	panic("no standalone layer for ActNone")
}

var fusedActKinds = []tensor.ActKind{tensor.ActReLU, tensor.ActSigmoid, tensor.ActTanh}

func requireBitEqual(t *testing.T, what string, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.Equal(got, want, 0) {
		t.Fatalf("%s: fused and unfused paths disagree", what)
	}
}

func TestDenseFusedMatchesUnfusedBitExact(t *testing.T) {
	for _, workers := range []int{1, 3} {
		tensor.SetParallelism(workers)
		for _, kind := range fusedActKinds {
			// Same seed => identical weight initialization draws.
			fused := NewDenseAct("fc", 13, 7, kind, tensor.NewRNG(42))
			plain := NewDense("fc", 13, 7, tensor.NewRNG(42))
			act := actLayerFor(kind)

			rng := tensor.NewRNG(51)
			x := tensor.RandNormal(rng, 0, 1, 5, 13)
			gy := tensor.RandNormal(rng, 0, 1, 5, 7)

			yf := fused.Forward(x, true)
			yu := act.Forward(plain.Forward(x, true), true)
			requireBitEqual(t, kind.String()+" dense forward", yf, yu)

			gxf := fused.Backward(gy)
			gxu := plain.Backward(act.Backward(gy))
			requireBitEqual(t, kind.String()+" dense gx", gxf, gxu)
			requireBitEqual(t, kind.String()+" dense gw", fused.W.Grad, plain.W.Grad)
			requireBitEqual(t, kind.String()+" dense gb", fused.B.Grad, plain.B.Grad)

			// Inference path too (no stash, same bits).
			yfe := fused.Forward(x, false)
			yue := act.Forward(plain.Forward(x, false), false)
			requireBitEqual(t, kind.String()+" dense eval forward", yfe, yue)
		}
	}
	tensor.SetParallelism(1)
}

func TestConv2DFusedMatchesUnfusedBitExact(t *testing.T) {
	type cfg struct {
		name            string
		k, stride, pad  int
		inC, outC, h, w int
	}
	// The 1x1 case also exercises the pointwise no-im2col fast path.
	cfgs := []cfg{
		{"3x3", 3, 1, 1, 2, 4, 6, 6},
		{"1x1", 1, 1, 0, 3, 5, 4, 4},
		{"strided", 3, 2, 1, 2, 3, 7, 7},
	}
	for _, workers := range []int{1, 3} {
		tensor.SetParallelism(workers)
		for _, c := range cfgs {
			for _, kind := range fusedActKinds {
				fused := NewConv2DAct("cv", c.inC, c.outC, c.k, c.stride, c.pad, kind, tensor.NewRNG(9))
				plain := NewConv2D("cv", c.inC, c.outC, c.k, c.stride, c.pad, tensor.NewRNG(9))
				act := actLayerFor(kind)

				rng := tensor.NewRNG(51)
				x := tensor.RandNormal(rng, 0, 1, 2, c.inC, c.h, c.w)

				yf := fused.Forward(x, true)
				yu := act.Forward(plain.Forward(x, true), true)
				requireBitEqual(t, c.name+" "+kind.String()+" conv forward", yf, yu)

				gy := tensor.RandNormal(rng, 0, 1, yf.Shape()...)
				gxf := fused.Backward(gy)
				gxu := plain.Backward(act.Backward(gy))
				requireBitEqual(t, c.name+" "+kind.String()+" conv gx", gxf, gxu)
				requireBitEqual(t, c.name+" "+kind.String()+" conv gw", fused.W.Grad, plain.W.Grad)
				requireBitEqual(t, c.name+" "+kind.String()+" conv gb", fused.B.Grad, plain.B.Grad)

				yfe := fused.Forward(x, false)
				yue := act.Forward(plain.Forward(x, false), false)
				requireBitEqual(t, c.name+" "+kind.String()+" conv eval forward", yfe, yue)
			}
		}
	}
	tensor.SetParallelism(1)
}

// Fused layers must also survive finite-difference gradient checking on
// their own (not just agree with the unfused composition).
func TestDenseActGradients(t *testing.T) {
	for _, kind := range fusedActKinds {
		rng := tensor.NewRNG(51)
		l := NewDenseAct("fc-"+kind.String(), 5, 3, kind, rng)
		gradCheck(t, l, tensor.RandNormal(rng, 0, 1, 4, 5), 2e-2)
	}
}

func TestConv2DActGradients(t *testing.T) {
	for _, kind := range fusedActKinds {
		rng := tensor.NewRNG(51)
		l := NewConv2DAct("cv-"+kind.String(), 2, 3, 3, 1, 1, kind, rng)
		gradCheck(t, l, tensor.RandNormal(rng, 0, 1, 2, 2, 5, 5), 3e-2)
	}
}

// The pointwise (1x1, stride 1, pad 0) convolution skips im2col entirely;
// its gradients must still check out.
func TestConv1x1FastPathGradients(t *testing.T) {
	rng := tensor.NewRNG(51)
	l := NewConv2D("pw", 3, 4, 1, 1, 0, rng)
	gradCheck(t, l, tensor.RandNormal(rng, 0, 1, 2, 3, 4, 4), 3e-2)
}
