package layers

import (
	"fmt"
	"math"

	"tbd/internal/tensor"
)

// CrossAttention attends from a query sequence (decoder states) over a
// separately supplied memory sequence (encoder outputs) — the
// encoder-decoder attention of NMT and the Transformer decoder. Set the
// memory with SetMemory before Forward; after Backward, MemoryGrad
// returns the gradient flowing back into the encoder.
type CrossAttention struct {
	name  string
	D     int
	Heads int
	Wq    *Param
	Wk    *Param
	Wv    *Param
	Wo    *Param

	memory *tensor.Tensor // [N, Te, D]
	// Cached forward state.
	x       *tensor.Tensor // queries input [N, Td, D]
	k, v    *tensor.Tensor
	att     *tensor.Tensor // [N*H, Td, Te]
	ctx     *tensor.Tensor
	memGrad *tensor.Tensor
}

// NewCrossAttention constructs the layer; d must divide by heads.
func NewCrossAttention(name string, d, heads int, rng *tensor.RNG) *CrossAttention {
	if d%heads != 0 {
		panic(fmt.Sprintf("layers: %s dim %d not divisible by %d heads", name, d, heads))
	}
	return &CrossAttention{
		name: name, D: d, Heads: heads,
		Wq: NewParam(name+".Wq", tensor.XavierInit(rng, d, d, d, d)),
		Wk: NewParam(name+".Wk", tensor.XavierInit(rng, d, d, d, d)),
		Wv: NewParam(name+".Wv", tensor.XavierInit(rng, d, d, d, d)),
		Wo: NewParam(name+".Wo", tensor.XavierInit(rng, d, d, d, d)),
	}
}

func (l *CrossAttention) Name() string { return l.name }

// SetMemory installs the encoder outputs the next Forward attends over.
func (l *CrossAttention) SetMemory(mem *tensor.Tensor) {
	if mem.Rank() != 3 || mem.Dim(2) != l.D {
		panic(fmt.Sprintf("layers: %s memory must be [N,Te,%d], got %v", l.name, l.D, mem.Shape()))
	}
	l.memory = mem
}

// MemoryGrad returns the gradient w.r.t. the memory from the most recent
// Backward.
func (l *CrossAttention) MemoryGrad() *tensor.Tensor { return l.memGrad }

func (l *CrossAttention) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if l.memory == nil {
		panic(fmt.Sprintf("layers: %s.Forward before SetMemory", l.name))
	}
	if x.Rank() != 3 || x.Dim(2) != l.D {
		panic(fmt.Sprintf("layers: %s expects [N,Td,%d], got %v", l.name, l.D, x.Shape()))
	}
	if x.Dim(0) != l.memory.Dim(0) {
		panic(fmt.Sprintf("layers: %s batch mismatch: queries %d vs memory %d", l.name, x.Dim(0), l.memory.Dim(0)))
	}
	n, td := x.Dim(0), x.Dim(1)
	te := l.memory.Dim(1)
	dh := l.D / l.Heads

	q := project(x, l.Wq)
	k := project(l.memory, l.Wk)
	v := project(l.memory, l.Wv)
	qh := toHeads(q, l.Heads) // [NH, Td, dh]
	kh := toHeads(k, l.Heads) // [NH, Te, dh]
	vh := toHeads(v, l.Heads)
	scores := tensor.BatchMatMul(qh, transposeLast(kh)) // [NH, Td, Te]
	scores.ScaleInPlace(1 / float32(math.Sqrt(float64(dh))))
	att := tensor.SoftmaxRows(scores.Reshape(n*l.Heads*td, te)).Reshape(n*l.Heads, td, te)
	scores.Release() // SoftmaxRows copied; the raw scores are dead
	ctxH := tensor.BatchMatMul(att, vh)
	ctx := fromHeads(ctxH, n, l.Heads)
	ctxH.Release() // fromHeads copied
	out := project(ctx, l.Wo)
	if train {
		l.x, l.k, l.v, l.att, l.ctx = x, k, v, att, ctx
	} else {
		l.x, l.k, l.v, l.att, l.ctx = nil, nil, nil, nil, nil
	}
	return out
}

func (l *CrossAttention) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.x)
	n, td, d := l.x.Dim(0), l.x.Dim(1), l.D
	te := l.memory.Dim(1)
	heads, dh := l.Heads, l.D/l.Heads

	g2 := gy.Reshape(n*td, d)
	tensor.AddInPlace(l.Wo.Grad, tensor.MatMulTransA(l.ctx.Reshape(n*td, d), g2))
	gctx := tensor.MatMulTransB(g2, l.Wo.Value).Reshape(n, td, d)

	gctxH := toHeads(gctx, heads)
	qh := toHeads(project(l.x, l.Wq), heads)
	kh := toHeads(l.k, heads)
	vh := toHeads(l.v, heads)

	gatt := tensor.BatchMatMul(gctxH, transposeLast(vh))   // [NH, Td, Te]
	gvh := tensor.BatchMatMul(transposeLast(l.att), gctxH) // [NH, Te, dh]

	gscores := tensor.New(n*heads, td, te)
	for b := 0; b < n*heads; b++ {
		for r := 0; r < td; r++ {
			arow := l.att.Data()[b*td*te+r*te : b*td*te+(r+1)*te]
			grow := gatt.Data()[b*td*te+r*te : b*td*te+(r+1)*te]
			var dot float64
			for i := range arow {
				dot += float64(arow[i]) * float64(grow[i])
			}
			dst := gscores.Data()[b*td*te+r*te : b*td*te+(r+1)*te]
			for i := range arow {
				dst[i] = arow[i] * (grow[i] - float32(dot))
			}
		}
	}
	gscores.ScaleInPlace(1 / float32(math.Sqrt(float64(dh))))
	gatt.Release() // consumed by the softmax-backward loop above

	gqh := tensor.BatchMatMul(gscores, kh)                // [NH, Td, dh]
	gkh := tensor.BatchMatMul(transposeLast(gscores), qh) // [NH, Te, dh]

	gq := fromHeads(gqh, n, heads).Reshape(n*td, d)
	gk := fromHeads(gkh, n, heads).Reshape(n*te, d)
	gv := fromHeads(gvh, n, heads).Reshape(n*te, d)
	gqh.Release() // fromHeads copied all three
	gkh.Release()
	gvh.Release()

	x2 := l.x.Reshape(n*td, d)
	mem2 := l.memory.Reshape(n*te, d)
	tensor.AddInPlace(l.Wq.Grad, tensor.MatMulTransA(x2, gq))
	tensor.AddInPlace(l.Wk.Grad, tensor.MatMulTransA(mem2, gk))
	tensor.AddInPlace(l.Wv.Grad, tensor.MatMulTransA(mem2, gv))

	gx := tensor.MatMulTransB(gq, l.Wq.Value).Reshape(n, td, d)
	gmem := tensor.MatMulTransB(gk, l.Wk.Value)
	tensor.AddInPlace(gmem, tensor.MatMulTransB(gv, l.Wv.Value))
	l.memGrad = gmem.Reshape(n, te, d)
	return gx
}

func (l *CrossAttention) Params() []*Param {
	return []*Param{l.Wq, l.Wk, l.Wv, l.Wo}
}

func (l *CrossAttention) StashBytes() int64 {
	return bytesOf(l.x, l.k, l.v, l.att, l.ctx, l.memory)
}
