package layers

import (
	"fmt"

	"tbd/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with optional bias and an
// optional activation; both are fused into the per-image GEMM write-back,
// bit-identical to the unfused convolution + bias pass + activation-layer
// composition. Act is ActNone by default.
type Conv2D struct {
	name                string
	InC, OutC           int
	KH, KW, Stride, Pad int
	W, B                *Param
	Act                 tensor.ActKind
	useBias             bool
	x                   *tensor.Tensor
	cols                *tensor.Tensor // im2col lowering kept for backward
	out, gx             *tensor.Tensor // previously returned buffers
}

// NewConv2D constructs a convolution with He-initialized weights (the
// standard for the ReLU CNNs in the suite).
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	fanIn := inC * k * k
	return &Conv2D{
		name: name, InC: inC, OutC: outC,
		KH: k, KW: k, Stride: stride, Pad: pad,
		W:       NewParam(name+".W", tensor.HeInit(rng, fanIn, outC, inC, k, k)),
		B:       NewParam(name+".b", tensor.New(outC)),
		useBias: true,
	}
}

// NewConv2DNoBias constructs a convolution without bias (the usual choice
// before a BatchNorm).
func NewConv2DNoBias(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	c := NewConv2D(name, inC, outC, k, stride, pad, rng)
	c.useBias = false
	return c
}

// NewConv2DAct constructs a convolution with a fused activation epilogue —
// a drop-in replacement for NewConv2D followed by a standalone activation
// layer, producing identical bits with one less full-tensor pass each way.
func NewConv2DAct(name string, inC, outC, k, stride, pad int, act tensor.ActKind, rng *tensor.RNG) *Conv2D {
	c := NewConv2D(name, inC, outC, k, stride, pad, rng)
	c.Act = act
	return c
}

func (c *Conv2D) Name() string { return c.name }

func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("layers: %s expects [N,%d,H,W], got %v", c.name, c.InC, x.Shape()))
	}
	c.out.Release()
	c.cols.Release()
	var bias *tensor.Tensor
	if c.useBias {
		// Bias is per output channel (= per GEMM row), broadcast over N
		// and spatial dims by the fused epilogue.
		bias = c.B.Value
	}
	var y *tensor.Tensor
	if train {
		c.x = x
		// Keep the lowering for the backward pass — recomputing im2col is
		// the textbook workspace-memory-for-throughput trade.
		y, c.cols = tensor.Conv2DWithColsFused(x, c.W.Value, bias, c.Act, c.Stride, c.Pad)
	} else {
		c.x = nil
		c.cols = nil
		y = tensor.Conv2DFused(x, c.W.Value, bias, c.Act, c.Stride, c.Pad)
	}
	c.out = y
	return y
}

func (c *Conv2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(c.name, c.x)
	c.gx.Release()
	gz := gy
	// See Dense.Backward: the fused activation backprops from the stashed
	// post-activation output.
	var gzOwned *tensor.Tensor
	if c.Act != tensor.ActNone {
		gzOwned = tensor.ActBackward(c.Act, gy, c.out)
		gz = gzOwned
	}
	gx, gw := tensor.Conv2DBackwardCols(c.cols, c.x.Shape(), c.W.Value, gz, c.Stride, c.Pad)
	tensor.AddInPlace(c.W.Grad, gw)
	gw.Release()
	if c.useBias {
		n, f, oh, ow := gz.Dim(0), gz.Dim(1), gz.Dim(2), gz.Dim(3)
		for b := 0; b < n; b++ {
			for ch := 0; ch < f; ch++ {
				plane := gz.Data()[(b*f+ch)*oh*ow : (b*f+ch+1)*oh*ow]
				var s float32
				for _, v := range plane {
					s += v
				}
				c.B.Grad.Data()[ch] += s
			}
		}
	}
	gzOwned.Release()
	c.gx = gx
	return gx
}

func (c *Conv2D) Params() []*Param {
	if c.useBias {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

func (c *Conv2D) StashBytes() int64 { return bytesOf(c.x) + bytesOf(c.cols) }

// WorkspaceBytes reports the im2col scratch buffer size for a given input,
// which the memory profiler attributes to the "workspace" category — the
// analogue of cuDNN convolution workspace.
func (c *Conv2D) WorkspaceBytes(n, h, w int) int64 {
	oh := tensor.ConvOut(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOut(w, c.KW, c.Stride, c.Pad)
	return int64(n*oh*ow) * int64(c.InC*c.KH*c.KW) * 4
}

// MaxPool2D is max pooling over NCHW inputs.
type MaxPool2D struct {
	name      string
	K, Stride int
	idx       []int
	inShape   []int
	out, gx   *tensor.Tensor
}

// NewMaxPool2D constructs a max-pooling layer.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	return &MaxPool2D{name: name, K: k, Stride: stride}
}

func (l *MaxPool2D) Name() string { return l.name }

func (l *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out.Release()
	y, idx := tensor.MaxPool2D(x, l.K, l.Stride)
	l.out = y
	if train {
		l.idx = idx
		l.inShape = append([]int(nil), x.Shape()...)
	} else {
		l.idx = nil
	}
	return y
}

func (l *MaxPool2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	if l.idx == nil {
		panic(fmt.Sprintf("layers: %s.Backward called before Forward(train=true)", l.name))
	}
	l.gx.Release()
	gx := tensor.MaxPool2DBackward(gy, l.idx, l.inShape)
	l.gx = gx
	return gx
}

func (l *MaxPool2D) Params() []*Param  { return nil }
func (l *MaxPool2D) StashBytes() int64 { return int64(len(l.idx)) * 8 }

// AvgPool2D is average pooling over NCHW inputs.
type AvgPool2D struct {
	name      string
	K, Stride int
	inShape   []int
	out, gx   *tensor.Tensor
}

// NewAvgPool2D constructs an average-pooling layer.
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	return &AvgPool2D{name: name, K: k, Stride: stride}
}

func (l *AvgPool2D) Name() string { return l.name }

func (l *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out.Release()
	l.inShape = append([]int(nil), x.Shape()...)
	y := tensor.AvgPool2D(x, l.K, l.Stride)
	l.out = y
	return y
}

func (l *AvgPool2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	l.gx.Release()
	gx := tensor.AvgPool2DBackward(gy, l.inShape, l.K, l.Stride)
	l.gx = gx
	return gx
}

func (l *AvgPool2D) Params() []*Param  { return nil }
func (l *AvgPool2D) StashBytes() int64 { return 0 }

// GlobalAvgPool2D reduces each NCHW channel plane to its mean, producing
// [N, C].
type GlobalAvgPool2D struct {
	name    string
	inShape []int
	out, gx *tensor.Tensor
}

// NewGlobalAvgPool2D constructs a global average pooling layer.
func NewGlobalAvgPool2D(name string) *GlobalAvgPool2D {
	return &GlobalAvgPool2D{name: name}
}

func (l *GlobalAvgPool2D) Name() string { return l.name }

func (l *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	l.out.Release()
	l.inShape = append([]int(nil), x.Shape()...)
	out := tensor.AcquireDirty(n, c)
	l.out = out
	inv := 1 / float32(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data()[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			out.Data()[b*c+ch] = s * inv
		}
	}
	return out
}

func (l *GlobalAvgPool2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3]
	l.gx.Release()
	gx := tensor.AcquireDirty(l.inShape...)
	l.gx = gx
	inv := 1 / float32(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := gy.Data()[b*c+ch] * inv
			plane := gx.Data()[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			for i := range plane {
				plane[i] = g
			}
		}
	}
	return gx
}

func (l *GlobalAvgPool2D) Params() []*Param  { return nil }
func (l *GlobalAvgPool2D) StashBytes() int64 { return 0 }
