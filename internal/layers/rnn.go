package layers

import (
	"fmt"
	"math"

	"tbd/internal/tensor"
)

// rnnStep holds the cached state of one timestep for backward-through-time.
type rnnStep struct {
	x, hPrev *tensor.Tensor
	h        *tensor.Tensor
}

// RNN is a vanilla tanh recurrent layer over [N, T, In] sequences producing
// [N, T, H]. Deep Speech 2 uses stacks of exactly this layer type (the
// paper notes DS2 uses "regular recurrent layers", not LSTM).
type RNN struct {
	name    string
	In, H   int
	Wx, Wh  *Param
	B       *Param
	steps   []rnnStep
	inShape []int
}

// NewRNN constructs a vanilla RNN layer.
func NewRNN(name string, in, h int, rng *tensor.RNG) *RNN {
	return &RNN{
		name: name, In: in, H: h,
		Wx: NewParam(name+".Wx", tensor.XavierInit(rng, in, h, in, h)),
		Wh: NewParam(name+".Wh", tensor.XavierInit(rng, h, h, h, h)),
		B:  NewParam(name+".b", tensor.New(h)),
	}
}

func (l *RNN) Name() string { return l.name }

// sliceStep extracts timestep t from x [N, T, F] as [N, F].
func sliceStep(x *tensor.Tensor, t, f int) *tensor.Tensor {
	n, T := x.Dim(0), x.Dim(1)
	out := tensor.New(n, f)
	for b := 0; b < n; b++ {
		src := x.Data()[(b*T+t)*f : (b*T+t+1)*f]
		copy(out.Data()[b*f:(b+1)*f], src)
	}
	return out
}

// storeStep writes a [N, F] tensor into timestep t of out [N, T, F].
func storeStep(out, v *tensor.Tensor, t, f int) {
	n, T := out.Dim(0), out.Dim(1)
	for b := 0; b < n; b++ {
		copy(out.Data()[(b*T+t)*f:(b*T+t+1)*f], v.Data()[b*f:(b+1)*f])
	}
}

func checkSeqInput(name string, x *tensor.Tensor, in int) (n, T int) {
	if x.Rank() != 3 || x.Dim(2) != in {
		panic(fmt.Sprintf("layers: %s expects [N,T,%d], got %v", name, in, x.Shape()))
	}
	return x.Dim(0), x.Dim(1)
}

func (l *RNN) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, T := checkSeqInput(l.name, x, l.In)
	l.inShape = append([]int(nil), x.Shape()...)
	out := tensor.New(n, T, l.H)
	h := tensor.New(n, l.H)
	if train {
		l.steps = l.steps[:0]
	} else {
		l.steps = nil
	}
	for t := 0; t < T; t++ {
		xt := sliceStep(x, t, l.In)
		z := tensor.MatMulParallel(xt, l.Wx.Value)
		tensor.AddInPlace(z, tensor.MatMulParallel(h, l.Wh.Value))
		z = tensor.AddRowBroadcast(z, l.B.Value)
		hNew := tensor.Apply(z, func(v float32) float32 { return float32(math.Tanh(float64(v))) })
		if train {
			l.steps = append(l.steps, rnnStep{x: xt, hPrev: h, h: hNew})
		}
		h = hNew
		storeStep(out, h, t, l.H)
	}
	return out
}

func (l *RNN) Backward(gy *tensor.Tensor) *tensor.Tensor {
	if l.steps == nil {
		panic(fmt.Sprintf("layers: %s.Backward called before Forward(train=true)", l.name))
	}
	n := l.inShape[0]
	T := l.inShape[1]
	gx := tensor.New(l.inShape...)
	gh := tensor.New(n, l.H) // gradient flowing into h from the future
	for t := T - 1; t >= 0; t-- {
		st := l.steps[t]
		g := sliceStep(gy, t, l.H)
		tensor.AddInPlace(g, gh)
		// Through tanh: dz = g * (1 - h²).
		dz := tensor.New(n, l.H)
		for i, hv := range st.h.Data() {
			dz.Data()[i] = g.Data()[i] * (1 - hv*hv)
		}
		tensor.AddInPlace(l.Wx.Grad, tensor.MatMulTransA(st.x, dz))
		tensor.AddInPlace(l.Wh.Grad, tensor.MatMulTransA(st.hPrev, dz))
		tensor.AddInPlace(l.B.Grad, tensor.SumRows(dz))
		storeStep(gx, tensor.MatMulTransB(dz, l.Wx.Value), t, l.In)
		gh = tensor.MatMulTransB(dz, l.Wh.Value)
	}
	return gx
}

func (l *RNN) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func (l *RNN) StashBytes() int64 {
	var n int64
	for _, s := range l.steps {
		n += bytesOf(s.x, s.hPrev, s.h)
	}
	return n
}

// lstmStep caches one LSTM timestep's state.
type lstmStep struct {
	x, hPrev, cPrev      *tensor.Tensor
	i, f, g, o, c, tanhC *tensor.Tensor
}

// LSTM is a long short-term memory layer over [N, T, In] sequences
// producing [N, T, H]. It is the dominant layer of the paper's Seq2Seq
// models (NMT, Sockeye) and the source of Observations 5 and 7: each
// timestep issues many small GPU kernels that cannot keep the device busy.
type LSTM struct {
	name    string
	In, H   int
	Wx, Wh  *Param // [In, 4H], [H, 4H]; gate order i, f, g, o
	B       *Param // [4H]
	steps   []lstmStep
	inShape []int
	lastH   *tensor.Tensor
	lastC   *tensor.Tensor
	// Optional externally supplied initial state (consumed by one Forward).
	initH, initC *tensor.Tensor
}

// NewLSTM constructs an LSTM layer with forget-gate bias 1.
func NewLSTM(name string, in, h int, rng *tensor.RNG) *LSTM {
	b := tensor.New(4 * h)
	for i := h; i < 2*h; i++ {
		b.Data()[i] = 1 // forget gate bias
	}
	return &LSTM{
		name: name, In: in, H: h,
		Wx: NewParam(name+".Wx", tensor.XavierInit(rng, in, 4*h, in, 4*h)),
		Wh: NewParam(name+".Wh", tensor.XavierInit(rng, h, 4*h, h, 4*h)),
		B:  NewParam(name+".b", b),
	}
}

func (l *LSTM) Name() string { return l.name }

// LastState returns the final hidden and cell states from the most recent
// forward pass, used to seed decoder layers in seq2seq models.
func (l *LSTM) LastState() (h, c *tensor.Tensor) { return l.lastH, l.lastC }

// SetInitialState overrides the zero initial state for the next Forward.
func (l *LSTM) SetInitialState(h, c *tensor.Tensor) {
	l.initH, l.initC = h, c
}

func (l *LSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, T := checkSeqInput(l.name, x, l.In)
	l.inShape = append([]int(nil), x.Shape()...)
	out := tensor.New(n, T, l.H)
	h := tensor.New(n, l.H)
	c := tensor.New(n, l.H)
	if l.initH != nil {
		h = l.initH.Clone()
		l.initH = nil
	}
	if l.initC != nil {
		c = l.initC.Clone()
		l.initC = nil
	}
	if train {
		l.steps = l.steps[:0]
	} else {
		l.steps = nil
	}
	H := l.H
	for t := 0; t < T; t++ {
		xt := sliceStep(x, t, l.In)
		z := tensor.MatMulParallel(xt, l.Wx.Value)
		tensor.AddInPlace(z, tensor.MatMulParallel(h, l.Wh.Value))
		z = tensor.AddRowBroadcast(z, l.B.Value)
		ig := tensor.New(n, H)
		fg := tensor.New(n, H)
		gg := tensor.New(n, H)
		og := tensor.New(n, H)
		cNew := tensor.New(n, H)
		tc := tensor.New(n, H)
		hNew := tensor.New(n, H)
		for b := 0; b < n; b++ {
			zr := z.Data()[b*4*H : (b+1)*4*H]
			for j := 0; j < H; j++ {
				iv := sigmoid(zr[j])
				fv := sigmoid(zr[H+j])
				gv := float32(math.Tanh(float64(zr[2*H+j])))
				ov := sigmoid(zr[3*H+j])
				cv := fv*c.Data()[b*H+j] + iv*gv
				tcv := float32(math.Tanh(float64(cv)))
				ig.Data()[b*H+j] = iv
				fg.Data()[b*H+j] = fv
				gg.Data()[b*H+j] = gv
				og.Data()[b*H+j] = ov
				cNew.Data()[b*H+j] = cv
				tc.Data()[b*H+j] = tcv
				hNew.Data()[b*H+j] = ov * tcv
			}
		}
		if train {
			l.steps = append(l.steps, lstmStep{x: xt, hPrev: h, cPrev: c, i: ig, f: fg, g: gg, o: og, c: cNew, tanhC: tc})
		}
		h, c = hNew, cNew
		storeStep(out, h, t, H)
	}
	l.lastH, l.lastC = h, c
	return out
}

// BackwardWithState is Backward plus an extra gradient (ghLast, gcLast)
// injected into the final hidden/cell state — needed when the last state
// seeds a downstream decoder. Either may be nil.
func (l *LSTM) BackwardWithState(gy, ghLast, gcLast *tensor.Tensor) *tensor.Tensor {
	if l.steps == nil {
		panic(fmt.Sprintf("layers: %s.Backward called before Forward(train=true)", l.name))
	}
	n, T, H := l.inShape[0], l.inShape[1], l.H
	gx := tensor.New(l.inShape...)
	gh := tensor.New(n, H)
	gc := tensor.New(n, H)
	if ghLast != nil {
		tensor.AddInPlace(gh, ghLast)
	}
	if gcLast != nil {
		tensor.AddInPlace(gc, gcLast)
	}
	for t := T - 1; t >= 0; t-- {
		st := l.steps[t]
		g := sliceStep(gy, t, H)
		tensor.AddInPlace(g, gh)
		dz := tensor.New(n, 4*H)
		for b := 0; b < n; b++ {
			for j := 0; j < H; j++ {
				k := b*H + j
				ghv := g.Data()[k]
				// h = o * tanh(c)
				do := ghv * st.tanhC.Data()[k]
				dc := ghv*st.o.Data()[k]*(1-st.tanhC.Data()[k]*st.tanhC.Data()[k]) + gc.Data()[k]
				di := dc * st.g.Data()[k]
				df := dc * st.cPrev.Data()[k]
				dg := dc * st.i.Data()[k]
				gc.Data()[k] = dc * st.f.Data()[k] // flows to cPrev
				zr := dz.Data()[b*4*H : (b+1)*4*H]
				zr[j] = di * st.i.Data()[k] * (1 - st.i.Data()[k])
				zr[H+j] = df * st.f.Data()[k] * (1 - st.f.Data()[k])
				zr[2*H+j] = dg * (1 - st.g.Data()[k]*st.g.Data()[k])
				zr[3*H+j] = do * st.o.Data()[k] * (1 - st.o.Data()[k])
			}
		}
		tensor.AddInPlace(l.Wx.Grad, tensor.MatMulTransA(st.x, dz))
		tensor.AddInPlace(l.Wh.Grad, tensor.MatMulTransA(st.hPrev, dz))
		tensor.AddInPlace(l.B.Grad, tensor.SumRows(dz))
		storeStep(gx, tensor.MatMulTransB(dz, l.Wx.Value), t, l.In)
		gh = tensor.MatMulTransB(dz, l.Wh.Value)
	}
	return gx
}

func (l *LSTM) Backward(gy *tensor.Tensor) *tensor.Tensor {
	return l.BackwardWithState(gy, nil, nil)
}

func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func (l *LSTM) StashBytes() int64 {
	var n int64
	for _, s := range l.steps {
		n += bytesOf(s.x, s.hPrev, s.cPrev, s.i, s.f, s.g, s.o, s.c, s.tanhC)
	}
	return n
}
