package layers

import (
	"tbd/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	name    string
	mask    *tensor.Tensor
	out, gx *tensor.Tensor // previously returned buffers
}

// NewReLU constructs a ReLU activation.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

func (l *ReLU) Name() string { return l.name }

func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.mask.Release()
	l.out.Release()
	// Dirty buffers: both branches of the loop store every element.
	out := tensor.AcquireDirty(x.Shape()...)
	if train {
		mask := tensor.AcquireDirty(x.Shape()...)
		ov, mv := out.Data(), mask.Data()
		for i, v := range x.Data() {
			if v > 0 {
				ov[i] = v
				mv[i] = 1
			} else {
				ov[i] = 0
				mv[i] = 0
			}
		}
		l.mask = mask
	} else {
		ov := out.Data()
		for i, v := range x.Data() {
			if v > 0 {
				ov[i] = v
			} else {
				ov[i] = 0
			}
		}
		l.mask = nil
	}
	l.out = out
	return out
}

func (l *ReLU) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.mask)
	l.gx.Release()
	gx := tensor.Mul(gy, l.mask)
	l.gx = gx
	return gx
}

func (l *ReLU) Params() []*Param  { return nil }
func (l *ReLU) StashBytes() int64 { return bytesOf(l.mask) }

// LeakyReLU applies x if x>0 else alpha*x (used by WGAN critics).
type LeakyReLU struct {
	name    string
	Alpha   float32
	x       *tensor.Tensor
	out, gx *tensor.Tensor
}

// NewLeakyReLU constructs a leaky ReLU with the given negative slope.
func NewLeakyReLU(name string, alpha float32) *LeakyReLU {
	return &LeakyReLU{name: name, Alpha: alpha}
}

func (l *LeakyReLU) Name() string { return l.name }

func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out.Release()
	if train {
		l.x = x
	} else {
		l.x = nil
	}
	y := tensor.Apply(x, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return l.Alpha * v
	})
	l.out = y
	return y
}

func (l *LeakyReLU) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.x)
	l.gx.Release()
	out := tensor.AcquireDirty(gy.Shape()...)
	l.gx = out
	for i, v := range l.x.Data() {
		if v > 0 {
			out.Data()[i] = gy.Data()[i]
		} else {
			out.Data()[i] = l.Alpha * gy.Data()[i]
		}
	}
	return out
}

func (l *LeakyReLU) Params() []*Param  { return nil }
func (l *LeakyReLU) StashBytes() int64 { return bytesOf(l.x) }

// Sigmoid applies the logistic function elementwise.
type Sigmoid struct {
	name    string
	y       *tensor.Tensor
	out, gx *tensor.Tensor
}

// NewSigmoid constructs a sigmoid activation.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

func (l *Sigmoid) Name() string { return l.name }

// sigmoid delegates to the tensor package's definition — the same one the
// fused GEMM epilogue applies, so fused and standalone sigmoid layers are
// bit-identical by construction.
func sigmoid(v float32) float32 { return tensor.Sigmoid32(v) }

func (l *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out.Release()
	y := tensor.Apply(x, sigmoid)
	l.out = y
	if train {
		l.y = y //tbd:retain alias of l.out, which the next Forward releases
	} else {
		l.y = nil
	}
	return y
}

func (l *Sigmoid) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.y)
	l.gx.Release()
	out := tensor.AcquireDirty(gy.Shape()...)
	l.gx = out
	for i, y := range l.y.Data() {
		out.Data()[i] = gy.Data()[i] * y * (1 - y)
	}
	return out
}

func (l *Sigmoid) Params() []*Param  { return nil }
func (l *Sigmoid) StashBytes() int64 { return bytesOf(l.y) }

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct {
	name    string
	y       *tensor.Tensor
	out, gx *tensor.Tensor
}

// NewTanh constructs a tanh activation.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

func (l *Tanh) Name() string { return l.name }

func (l *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out.Release()
	y := tensor.Apply(x, tensor.Tanh32)
	l.out = y
	if train {
		l.y = y //tbd:retain alias of l.out, which the next Forward releases
	} else {
		l.y = nil
	}
	return y
}

func (l *Tanh) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.y)
	l.gx.Release()
	out := tensor.AcquireDirty(gy.Shape()...)
	l.gx = out
	for i, y := range l.y.Data() {
		out.Data()[i] = gy.Data()[i] * (1 - y*y)
	}
	return out
}

func (l *Tanh) Params() []*Param  { return nil }
func (l *Tanh) StashBytes() int64 { return bytesOf(l.y) }

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout), becoming identity at
// inference.
type Dropout struct {
	name    string
	P       float32
	rng     *tensor.RNG
	mask    *tensor.Tensor
	out, gx *tensor.Tensor
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(name string, p float32, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("layers: dropout probability must be in [0, 1)")
	}
	return &Dropout{name: name, P: p, rng: rng}
}

func (l *Dropout) Name() string { return l.name }

func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.mask.Release()
	l.out.Release()
	l.out = nil
	if !train || l.P == 0 {
		l.mask = nil
		return x
	}
	scale := 1 / (1 - l.P)
	mask := tensor.Acquire(x.Shape()...)
	out := tensor.Acquire(x.Shape()...)
	for i, v := range x.Data() {
		if l.rng.Float32() >= l.P {
			mask.Data()[i] = scale
			out.Data()[i] = v * scale
		}
	}
	l.mask = mask
	l.out = out
	return out
}

func (l *Dropout) Backward(gy *tensor.Tensor) *tensor.Tensor {
	l.gx.Release()
	l.gx = nil
	if l.mask == nil {
		return gy
	}
	gx := tensor.Mul(gy, l.mask)
	l.gx = gx
	return gx
}

func (l *Dropout) Params() []*Param  { return nil }
func (l *Dropout) StashBytes() int64 { return bytesOf(l.mask) }
