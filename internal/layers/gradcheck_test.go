package layers

import (
	"math"
	"testing"

	"tbd/internal/tensor"
)

// gradCheck validates a layer's analytic gradients (input and parameter)
// against central finite differences of the scalar loss sum(f(x) * coef).
func gradCheck(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(99)
	y := l.Forward(x, true)
	coef := tensor.RandNormal(rng, 0, 1, y.Shape()...)
	loss := func() float64 {
		out := l.Forward(x, true)
		var s float64
		for i, v := range out.Data() {
			s += float64(v) * float64(coef.Data()[i])
		}
		return s
	}
	// Analytic pass.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	_ = l.Forward(x, true)
	gx := l.Backward(coef)

	const eps = 1e-2
	checkAgainst := func(name string, data []float32, analytic []float32, indices []int) {
		for _, i := range indices {
			orig := data[i]
			data[i] = orig + eps
			up := loss()
			data[i] = orig - eps
			down := loss()
			data[i] = orig
			num := (up - down) / (2 * eps)
			got := float64(analytic[i])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: finite-diff %.5f vs analytic %.5f", name, i, num, got)
			}
		}
	}
	idx := sampleIndices(x.Numel())
	checkAgainst(l.Name()+".input", x.Data(), gx.Data(), idx)
	for _, p := range l.Params() {
		checkAgainst(p.Name, p.Value.Data(), p.Grad.Data(), sampleIndices(p.Value.Numel()))
	}
}

func sampleIndices(n int) []int {
	if n <= 6 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return []int{0, n / 5, 2 * n / 5, n / 2, 3 * n / 4, n - 1}
}

func TestDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewDense("fc", 5, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 4, 5)
	gradCheck(t, l, x, 2e-2)
}

func TestDenseNoBiasHasSingleParam(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewDenseNoBias("fc", 4, 4, rng)
	if len(l.Params()) != 1 {
		t.Fatalf("want 1 param, got %d", len(l.Params()))
	}
	gradCheck(t, l, tensor.RandNormal(rng, 0, 1, 3, 4), 2e-2)
}

func TestDenseFlattensHigherRank(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewDense("fc", 6, 2, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 6) // [N, T, F] sequence input
	y := l.Forward(x, true)
	// Leading dimensions are preserved: [2, 3, 6] -> [2, 3, 2].
	if y.Rank() != 3 || y.Dim(0) != 2 || y.Dim(1) != 3 || y.Dim(2) != 2 {
		t.Fatalf("shape %v", y.Shape())
	}
	gx := l.Backward(tensor.Ones(2, 3, 2))
	if gx.Rank() != 3 || gx.Dim(1) != 3 {
		t.Fatalf("input grad shape %v", gx.Shape())
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewConv2D("conv", 2, 3, 3, 1, 1, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 5, 5)
	gradCheck(t, l, x, 3e-2)
}

func TestConv2DStridedShapes(t *testing.T) {
	rng := tensor.NewRNG(4)
	l := NewConv2DNoBias("conv", 3, 8, 3, 2, 1, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 3, 8, 8)
	y := l.Forward(x, true)
	if y.Dim(1) != 8 || y.Dim(2) != 4 || y.Dim(3) != 4 {
		t.Fatalf("strided conv shape %v", y.Shape())
	}
	if l.WorkspaceBytes(1, 8, 8) != int64(1*4*4)*int64(3*3*3)*4 {
		t.Fatalf("workspace bytes %d", l.WorkspaceBytes(1, 8, 8))
	}
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	gradCheck(t, NewReLU("relu"), tensor.RandNormal(rng, 0, 1, 3, 7), 2e-2)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	gradCheck(t, NewLeakyReLU("lrelu", 0.2), tensor.RandNormal(rng, 0, 1, 3, 7), 2e-2)
}

func TestSigmoidGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	gradCheck(t, NewSigmoid("sig"), tensor.RandNormal(rng, 0, 1, 3, 5), 2e-2)
}

func TestTanhGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	gradCheck(t, NewTanh("tanh"), tensor.RandNormal(rng, 0, 1, 3, 5), 2e-2)
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := tensor.NewRNG(9)
	l := NewDropout("drop", 0.5, rng)
	x := tensor.Ones(10, 100)
	yEval := l.Forward(x, false)
	if !tensor.Equal(x, yEval, 0) {
		t.Fatal("dropout must be identity at inference")
	}
	yTrain := l.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // inverted dropout scale 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout value %g", v)
		}
	}
	frac := float64(zeros) / float64(x.Numel())
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropout rate %.2f, want ~0.5", frac)
	}
	// Backward uses the same mask.
	g := l.Backward(tensor.Ones(10, 100))
	for i, v := range g.Data() {
		if (yTrain.Data()[i] == 0) != (v == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	l := NewBatchNorm2D("bn", 3)
	x := tensor.RandNormal(rng, 2, 3, 4, 3, 3, 3)
	gradCheck(t, l, x, 5e-2)
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := tensor.NewRNG(11)
	l := NewBatchNorm2D("bn", 2)
	x := tensor.RandNormal(rng, 5, 4, 8, 2, 6, 6)
	y := l.Forward(x, true)
	// With gamma=1 beta=0 the output per channel is ~N(0,1).
	n, c, plane := 8, 2, 36
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for b := 0; b < n; b++ {
			for i := 0; i < plane; i++ {
				v := float64(y.Data()[(b*c+ch)*plane+i])
				sum += v
				sq += v * v
			}
		}
		m := float64(n * plane)
		mean := sum / m
		variance := sq/m - mean*mean
		if math.Abs(mean) > 1e-3 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d mean %.4f var %.4f", ch, mean, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(12)
	l := NewBatchNorm2D("bn", 1)
	for i := 0; i < 50; i++ {
		x := tensor.RandNormal(rng, 3, 2, 8, 1, 4, 4)
		l.Forward(x, true)
	}
	x := tensor.Full(3, 2, 1, 4, 4) // constant input at the running mean
	y := l.Forward(x, false)
	for _, v := range y.Data() {
		if math.Abs(float64(v)) > 0.25 {
			t.Fatalf("inference BN output %g, want ~0", v)
		}
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := tensor.NewRNG(13)
	l := NewLayerNorm("ln", 6)
	x := tensor.RandNormal(rng, 1, 2, 4, 6)
	gradCheck(t, l, x, 5e-2)
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(14)
	l := NewEmbedding("emb", 10, 4, rng)
	x := tensor.FromSlice([]float32{1, 3, 3, 0}, 2, 2)
	y := l.Forward(x, true)
	if y.Dim(2) != 4 {
		t.Fatalf("embedding shape %v", y.Shape())
	}
	// Token 3 appears twice; its gradient row should be the sum.
	gy := tensor.Ones(2, 2, 4)
	l.Backward(gy)
	for j := 0; j < 4; j++ {
		if l.W.Grad.At(3, j) != 2 {
			t.Fatalf("token-3 grad %g, want 2", l.W.Grad.At(3, j))
		}
		if l.W.Grad.At(1, j) != 1 {
			t.Fatalf("token-1 grad %g, want 1", l.W.Grad.At(1, j))
		}
		if l.W.Grad.At(5, j) != 0 {
			t.Fatal("untouched token must have zero grad")
		}
	}
}

func TestRNNGradients(t *testing.T) {
	rng := tensor.NewRNG(15)
	l := NewRNN("rnn", 3, 4, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 3)
	gradCheck(t, l, x, 5e-2)
}

func TestLSTMGradients(t *testing.T) {
	rng := tensor.NewRNG(16)
	l := NewLSTM("lstm", 3, 4, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 3)
	gradCheck(t, l, x, 5e-2)
}

func TestGRUGradients(t *testing.T) {
	rng := tensor.NewRNG(17)
	l := NewGRU("gru", 3, 4, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 3)
	gradCheck(t, l, x, 5e-2)
}

func TestLSTMStatePlumbing(t *testing.T) {
	rng := tensor.NewRNG(18)
	l := NewLSTM("lstm", 2, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 4, 2)
	y := l.Forward(x, true)
	h, c := l.LastState()
	if h == nil || c == nil {
		t.Fatal("LastState nil")
	}
	// Last timestep of output equals last hidden state.
	for j := 0; j < 3; j++ {
		if y.At(0, 3, j) != h.At(0, j) {
			t.Fatal("last output != last hidden")
		}
	}
	// Seeding a second LSTM with the state changes its output.
	l2 := NewLSTM("lstm2", 2, 3, rng)
	x2 := tensor.RandNormal(rng, 0, 1, 1, 2, 2)
	base := l2.Forward(x2, false).Clone()
	l2.SetInitialState(h, c)
	seeded := l2.Forward(x2, false)
	if tensor.Equal(base, seeded, 1e-9) {
		t.Fatal("initial state had no effect")
	}
}

func TestMultiHeadAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(19)
	l := NewMultiHeadAttention("mha", 8, 2, false, rng)
	x := tensor.RandNormal(rng, 0, 0.5, 2, 3, 8)
	gradCheck(t, l, x, 6e-2)
}

func TestCausalMaskBlocksFuture(t *testing.T) {
	rng := tensor.NewRNG(20)
	l := NewMultiHeadAttention("mha", 4, 1, true, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 5, 4)
	y1 := l.Forward(x, false).Clone()
	// Perturb the last timestep; earlier outputs must not change.
	x2 := x.Clone()
	for j := 0; j < 4; j++ {
		x2.Set(x2.At(0, 4, j)+10, 0, 4, j)
	}
	y2 := l.Forward(x2, false)
	for t2 := 0; t2 < 4; t2++ {
		for j := 0; j < 4; j++ {
			if math.Abs(float64(y1.At(0, t2, j)-y2.At(0, t2, j))) > 1e-5 {
				t.Fatalf("causal mask leaked future into t=%d", t2)
			}
		}
	}
}

func TestAttentionRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(21)
	l := NewMultiHeadAttention("mha", 8, 2, false, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 4, 8)
	l.Forward(x, true)
	att := l.att
	rows := att.Dim(0) * att.Dim(1)
	T := att.Dim(2)
	for r := 0; r < rows; r++ {
		var s float64
		for c := 0; c < T; c++ {
			s += float64(att.Data()[r*T+c])
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("attention row sums to %g", s)
		}
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := tensor.NewRNG(22)
	s := NewSequential("mlp",
		NewDense("fc1", 4, 8, rng),
		NewReLU("relu"),
		NewDense("fc2", 8, 2, rng),
	)
	x := tensor.RandNormal(rng, 0, 1, 3, 4)
	gradCheck(t, s, x, 3e-2)
	if len(s.Params()) != 4 {
		t.Fatalf("sequential params = %d, want 4", len(s.Params()))
	}
}

func TestResidualIdentitySkip(t *testing.T) {
	rng := tensor.NewRNG(23)
	body := NewSequential("body", NewDense("fc", 4, 4, rng), NewTanh("t"))
	r := NewResidual("res", body, nil)
	x := tensor.RandNormal(rng, 0, 1, 2, 4)
	gradCheck(t, r, x, 3e-2)
}

func TestResidualProjectionSkip(t *testing.T) {
	rng := tensor.NewRNG(24)
	body := NewDense("fc", 4, 6, rng)
	proj := NewDenseNoBias("proj", 4, 6, rng)
	r := NewResidual("res", body, proj)
	x := tensor.RandNormal(rng, 0, 1, 2, 4)
	gradCheck(t, r, x, 3e-2)
}

func TestPoolLayers(t *testing.T) {
	rng := tensor.NewRNG(25)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 6, 6)
	mp := NewMaxPool2D("mp", 2, 2)
	gradCheck(t, mp, x, 3e-2)
	ap := NewAvgPool2D("ap", 2, 2)
	gradCheck(t, ap, x, 3e-2)
	gp := NewGlobalAvgPool2D("gap")
	gradCheck(t, gp, x, 3e-2)
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(26)
	f := NewFlatten("flat")
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 4, 4)
	y := f.Forward(x, true)
	if y.Rank() != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := f.Backward(tensor.Ones(2, 48))
	if g.Rank() != 4 {
		t.Fatalf("flatten backward shape %v", g.Shape())
	}
}

func TestStashBytesAccounting(t *testing.T) {
	rng := tensor.NewRNG(27)
	l := NewDense("fc", 10, 5, rng)
	if l.StashBytes() != 0 {
		t.Fatal("stash must be empty before forward")
	}
	x := tensor.RandNormal(rng, 0, 1, 8, 10)
	l.Forward(x, true)
	if l.StashBytes() != int64(8*10*4) {
		t.Fatalf("dense stash %d bytes, want %d", l.StashBytes(), 8*10*4)
	}
	// Inference must not stash.
	l.Forward(x, false)
	if l.StashBytes() != 0 {
		t.Fatal("inference forward must not stash feature maps")
	}
}

func TestParamCount(t *testing.T) {
	rng := tensor.NewRNG(28)
	l := NewDense("fc", 10, 5, rng)
	if n := ParamCount(l.Params()); n != 55 {
		t.Fatalf("ParamCount = %d, want 55", n)
	}
}

func TestPositionalEncodingDeterministicAndPassThroughGrad(t *testing.T) {
	pe := NewPositionalEncoding("pe", 6)
	x := tensor.New(1, 3, 6)
	y1 := pe.Forward(x, true)
	y2 := pe.Forward(x, true)
	if !tensor.Equal(y1, y2, 0) {
		t.Fatal("positional encoding must be deterministic")
	}
	g := tensor.Ones(1, 3, 6)
	if !tensor.Equal(pe.Backward(g), g, 0) {
		t.Fatal("positional encoding backward must be identity")
	}
}

// TestGradCheckWithParallelism reruns the core gradient checks with the
// worker pool engaged: analytic backward must agree with finite
// differences regardless of worker count, proving the parallel GEMM and
// conv paths compute the same gradients as serial code.
func TestGradCheckWithParallelism(t *testing.T) {
	defer tensor.SetParallelism(1)
	tensor.SetParallelism(3)
	rng := tensor.NewRNG(31)
	gradCheck(t, NewDense("pfc", 5, 3, rng), tensor.RandNormal(rng, 0, 1, 4, 5), 2e-2)
	gradCheck(t, NewConv2D("pconv", 2, 3, 3, 1, 1, rng), tensor.RandNormal(rng, 0, 1, 2, 2, 5, 5), 3e-2)
	gradCheck(t, NewBatchNorm2D("pbn", 3), tensor.RandNormal(rng, 0, 1, 2, 3, 4, 4), 3e-2)
}
