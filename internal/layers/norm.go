package layers

import (
	"fmt"
	"math"

	"tbd/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions, then applies a learned scale and shift. Running
// statistics are tracked for inference. The paper's Tables 5 and 6 single
// out exactly these kernels (bn_fw_tr / bn_bw) as long-duration,
// low-FP32-utilization GPU work.
type BatchNorm2D struct {
	name     string
	C        int
	Eps      float32
	Momentum float32
	Gamma    *Param
	Beta     *Param

	runningMean []float32
	runningVar  []float32

	// Cached forward state for backward.
	xhat   *tensor.Tensor
	invStd []float32
	n      int // elements per channel in the normalized batch

	out, gx *tensor.Tensor // previously returned buffers
}

// NewBatchNorm2D constructs a batch-norm layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		name: name, C: c, Eps: 1e-5, Momentum: 0.9,
		Gamma:       NewParam(name+".gamma", tensor.Ones(c)),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		runningMean: make([]float32, c),
		runningVar:  make([]float32, c),
	}
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

func (l *BatchNorm2D) Name() string { return l.name }

func (l *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != l.C {
		panic(fmt.Sprintf("layers: %s expects [N,%d,H,W], got %v", l.name, l.C, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	m := n * plane // normalization population per channel
	l.xhat.Release()
	l.out.Release()
	// Every element of out (and xhat below) is stored by the loops that
	// follow, so the buffers can come back dirty.
	out := tensor.AcquireDirty(x.Shape()...)
	l.out = out

	if !train {
		for ch := 0; ch < c; ch++ {
			inv := float32(1 / math.Sqrt(float64(l.runningVar[ch])+float64(l.Eps)))
			g, b := l.Gamma.Value.Data()[ch], l.Beta.Value.Data()[ch]
			mu := l.runningMean[ch]
			for bi := 0; bi < n; bi++ {
				src := x.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
				dst := out.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
				for i, v := range src {
					dst[i] = g*(v-mu)*inv + b
				}
			}
		}
		l.xhat = nil
		return out
	}

	xhat := tensor.AcquireDirty(x.Shape()...)
	invStd := l.invStd
	if cap(invStd) < c {
		invStd = make([]float32, c)
	}
	invStd = invStd[:c]
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for bi := 0; bi < n; bi++ {
			src := x.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			for _, v := range src {
				sum += float64(v)
				sq += float64(v) * float64(v)
			}
		}
		mean := sum / float64(m)
		variance := sq/float64(m) - mean*mean
		if variance < 0 {
			variance = 0
		}
		inv := float32(1 / math.Sqrt(variance+float64(l.Eps)))
		invStd[ch] = inv
		l.runningMean[ch] = l.Momentum*l.runningMean[ch] + (1-l.Momentum)*float32(mean)
		l.runningVar[ch] = l.Momentum*l.runningVar[ch] + (1-l.Momentum)*float32(variance)
		g, b := l.Gamma.Value.Data()[ch], l.Beta.Value.Data()[ch]
		for bi := 0; bi < n; bi++ {
			src := x.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			xh := xhat.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			dst := out.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			for i, v := range src {
				nrm := (v - float32(mean)) * inv
				xh[i] = nrm
				dst[i] = g*nrm + b
			}
		}
	}
	l.xhat = xhat
	l.invStd = invStd
	l.n = m
	return out
}

func (l *BatchNorm2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.xhat)
	l.gx.Release()
	n, c := gy.Dim(0), gy.Dim(1)
	plane := gy.Dim(2) * gy.Dim(3)
	m := float32(l.n)
	gx := tensor.AcquireDirty(gy.Shape()...)
	l.gx = gx
	for ch := 0; ch < c; ch++ {
		var sumG, sumGX float64
		for bi := 0; bi < n; bi++ {
			g := gy.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			xh := l.xhat.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			for i, v := range g {
				sumG += float64(v)
				sumGX += float64(v) * float64(xh[i])
			}
		}
		l.Beta.Grad.Data()[ch] += float32(sumG)
		l.Gamma.Grad.Data()[ch] += float32(sumGX)
		gamma := l.Gamma.Value.Data()[ch]
		inv := l.invStd[ch]
		for bi := 0; bi < n; bi++ {
			g := gy.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			xh := l.xhat.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			dst := gx.Data()[(bi*c+ch)*plane : (bi*c+ch+1)*plane]
			for i, v := range g {
				dst[i] = gamma * inv / m * (m*v - float32(sumG) - xh[i]*float32(sumGX))
			}
		}
	}
	return gx
}

func (l *BatchNorm2D) Params() []*Param  { return []*Param{l.Gamma, l.Beta} }
func (l *BatchNorm2D) StashBytes() int64 { return bytesOf(l.xhat) + int64(len(l.invStd))*4 }

// LayerNorm normalizes the last dimension of an [..., F] tensor, the
// normalization used by the Transformer's attention blocks.
type LayerNorm struct {
	name  string
	F     int
	Eps   float32
	Gamma *Param
	Beta  *Param

	xhat    *tensor.Tensor
	invStd  []float32
	out, gx *tensor.Tensor
}

// NewLayerNorm constructs a layer-norm over feature size f.
func NewLayerNorm(name string, f int) *LayerNorm {
	return &LayerNorm{
		name: name, F: f, Eps: 1e-5,
		Gamma: NewParam(name+".gamma", tensor.Ones(f)),
		Beta:  NewParam(name+".beta", tensor.New(f)),
	}
}

func (l *LayerNorm) Name() string { return l.name }

func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f := l.F
	if x.Numel()%f != 0 {
		panic(fmt.Sprintf("layers: %s expects inner size %d, got %v", l.name, f, x.Shape()))
	}
	rows := x.Numel() / f
	l.xhat.Release()
	l.out.Release()
	out := tensor.AcquireDirty(x.Shape()...)
	l.out = out
	var xhat *tensor.Tensor
	var invStd []float32
	if train {
		xhat = tensor.AcquireDirty(x.Shape()...)
		invStd = l.invStd
		if cap(invStd) < rows {
			invStd = make([]float32, rows)
		}
		invStd = invStd[:rows]
	}
	for r := 0; r < rows; r++ {
		src := x.Data()[r*f : (r+1)*f]
		dst := out.Data()[r*f : (r+1)*f]
		var sum, sq float64
		for _, v := range src {
			sum += float64(v)
			sq += float64(v) * float64(v)
		}
		mean := sum / float64(f)
		variance := sq/float64(f) - mean*mean
		if variance < 0 {
			variance = 0
		}
		inv := float32(1 / math.Sqrt(variance+float64(l.Eps)))
		for i, v := range src {
			nrm := (v - float32(mean)) * inv
			if xhat != nil {
				xhat.Data()[r*f+i] = nrm
			}
			dst[i] = l.Gamma.Value.Data()[i]*nrm + l.Beta.Value.Data()[i]
		}
		if invStd != nil {
			invStd[r] = inv
		}
	}
	l.xhat, l.invStd = xhat, invStd
	return out
}

func (l *LayerNorm) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.xhat)
	l.gx.Release()
	f := l.F
	rows := gy.Numel() / f
	gx := tensor.AcquireDirty(gy.Shape()...)
	l.gx = gx
	for r := 0; r < rows; r++ {
		g := gy.Data()[r*f : (r+1)*f]
		xh := l.xhat.Data()[r*f : (r+1)*f]
		var sumG, sumGX float64
		for i, v := range g {
			gg := float64(v) * float64(l.Gamma.Value.Data()[i])
			sumG += gg
			sumGX += gg * float64(xh[i])
			l.Gamma.Grad.Data()[i] += v * xh[i]
			l.Beta.Grad.Data()[i] += v
		}
		inv := l.invStd[r]
		fm := float32(f)
		dst := gx.Data()[r*f : (r+1)*f]
		for i, v := range g {
			gg := v * l.Gamma.Value.Data()[i]
			dst[i] = inv / fm * (fm*gg - float32(sumG) - xh[i]*float32(sumGX))
		}
	}
	return gx
}

func (l *LayerNorm) Params() []*Param  { return []*Param{l.Gamma, l.Beta} }
func (l *LayerNorm) StashBytes() int64 { return bytesOf(l.xhat) + int64(len(l.invStd))*4 }
