package layers

import (
	"fmt"

	"tbd/internal/tensor"
)

// Bidirectional runs two recurrent layers over a sequence — one forward,
// one on the time-reversed input — and concatenates their outputs along
// the feature axis, producing [N, T, 2H]. Deep Speech 2 and GNMT-style
// encoders use exactly this structure.
type Bidirectional struct {
	name     string
	Fwd, Bwd Layer
	h        int // per-direction hidden size
}

// NewBidirectional wraps forward and backward recurrent layers that both
// map [N, T, In] -> [N, T, h].
func NewBidirectional(name string, fwd, bwd Layer, hidden int) *Bidirectional {
	return &Bidirectional{name: name, Fwd: fwd, Bwd: bwd, h: hidden}
}

// NewBiLSTM builds a bidirectional LSTM with fresh weights per direction.
func NewBiLSTM(name string, in, hidden int, rng *tensor.RNG) *Bidirectional {
	return NewBidirectional(name,
		NewLSTM(name+".fwd", in, hidden, rng),
		NewLSTM(name+".bwd", in, hidden, rng),
		hidden)
}

// NewBiRNN builds a bidirectional vanilla RNN (the Deep Speech 2 layer).
func NewBiRNN(name string, in, hidden int, rng *tensor.RNG) *Bidirectional {
	return NewBidirectional(name,
		NewRNN(name+".fwd", in, hidden, rng),
		NewRNN(name+".bwd", in, hidden, rng),
		hidden)
}

func (l *Bidirectional) Name() string { return l.name }

// reverseTime returns x [N, T, F] with the time axis flipped.
func reverseTime(x *tensor.Tensor) *tensor.Tensor {
	n, T, f := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(n, T, f)
	for b := 0; b < n; b++ {
		for t := 0; t < T; t++ {
			src := x.Data()[(b*T+t)*f : (b*T+t+1)*f]
			copy(out.Data()[(b*T+(T-1-t))*f:(b*T+(T-t))*f], src)
		}
	}
	return out
}

func (l *Bidirectional) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("layers: %s expects [N,T,F], got %v", l.name, x.Shape()))
	}
	yf := l.Fwd.Forward(x, train)
	yb := reverseTime(l.Bwd.Forward(reverseTime(x), train))
	n, T := x.Dim(0), x.Dim(1)
	out := tensor.New(n, T, 2*l.h)
	for b := 0; b < n; b++ {
		for t := 0; t < T; t++ {
			dst := out.Data()[(b*T+t)*2*l.h : (b*T+t+1)*2*l.h]
			copy(dst[:l.h], yf.Data()[(b*T+t)*l.h:(b*T+t+1)*l.h])
			copy(dst[l.h:], yb.Data()[(b*T+t)*l.h:(b*T+t+1)*l.h])
		}
	}
	return out
}

func (l *Bidirectional) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n, T := gy.Dim(0), gy.Dim(1)
	gf := tensor.New(n, T, l.h)
	gb := tensor.New(n, T, l.h)
	for b := 0; b < n; b++ {
		for t := 0; t < T; t++ {
			src := gy.Data()[(b*T+t)*2*l.h : (b*T+t+1)*2*l.h]
			copy(gf.Data()[(b*T+t)*l.h:(b*T+t+1)*l.h], src[:l.h])
			copy(gb.Data()[(b*T+t)*l.h:(b*T+t+1)*l.h], src[l.h:])
		}
	}
	gx := l.Fwd.Backward(gf)
	gxb := reverseTime(l.Bwd.Backward(reverseTime(gb)))
	tensor.AddInPlace(gx, gxb)
	return gx
}

func (l *Bidirectional) Params() []*Param {
	return append(l.Fwd.Params(), l.Bwd.Params()...)
}

func (l *Bidirectional) StashBytes() int64 {
	return l.Fwd.StashBytes() + l.Bwd.StashBytes()
}

// ConcatChannels merges parallel branches along the channel axis of NCHW
// tensors — the join of an Inception mixed block. Each branch consumes
// the same input; gradients to the input are summed.
type ConcatChannels struct {
	name     string
	Branches []Layer
	outC     []int // channels contributed per branch (recorded at forward)
}

// NewConcatChannels builds the block from parallel branches.
func NewConcatChannels(name string, branches ...Layer) *ConcatChannels {
	if len(branches) == 0 {
		panic("layers: ConcatChannels needs at least one branch")
	}
	return &ConcatChannels{name: name, Branches: branches}
}

func (l *ConcatChannels) Name() string { return l.name }

func (l *ConcatChannels) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	outs := make([]*tensor.Tensor, len(l.Branches))
	l.outC = l.outC[:0]
	totalC := 0
	var n, h, w int
	for i, br := range l.Branches {
		y := br.Forward(x, train)
		if y.Rank() != 4 {
			panic(fmt.Sprintf("layers: %s branch %d produced rank %d", l.name, i, y.Rank()))
		}
		if i == 0 {
			n, h, w = y.Dim(0), y.Dim(2), y.Dim(3)
		} else if y.Dim(2) != h || y.Dim(3) != w {
			panic(fmt.Sprintf("layers: %s branch %d spatial mismatch %v", l.name, i, y.Shape()))
		}
		outs[i] = y
		l.outC = append(l.outC, y.Dim(1))
		totalC += y.Dim(1)
	}
	out := tensor.New(n, totalC, h, w)
	plane := h * w
	for b := 0; b < n; b++ {
		off := 0
		for i, y := range outs {
			c := l.outC[i]
			copy(out.Data()[(b*totalC+off)*plane:(b*totalC+off+c)*plane],
				y.Data()[b*c*plane:(b+1)*c*plane])
			off += c
		}
	}
	return out
}

func (l *ConcatChannels) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n, h, w := gy.Dim(0), gy.Dim(2), gy.Dim(3)
	totalC := gy.Dim(1)
	plane := h * w
	var gx *tensor.Tensor
	off := 0
	for i, br := range l.Branches {
		c := l.outC[i]
		g := tensor.New(n, c, h, w)
		for b := 0; b < n; b++ {
			copy(g.Data()[b*c*plane:(b+1)*c*plane],
				gy.Data()[(b*totalC+off)*plane:(b*totalC+off+c)*plane])
		}
		off += c
		bg := br.Backward(g)
		if gx == nil {
			gx = bg
		} else {
			tensor.AddInPlace(gx, bg)
		}
	}
	return gx
}

func (l *ConcatChannels) Params() []*Param {
	var ps []*Param
	for _, br := range l.Branches {
		ps = append(ps, br.Params()...)
	}
	return ps
}

func (l *ConcatChannels) StashBytes() int64 {
	var s int64
	for _, br := range l.Branches {
		s += br.StashBytes()
	}
	return s
}
