package layers

import (
	"tbd/internal/prof"
	"tbd/internal/tensor"
)

// Sequential chains layers, feeding each one's output to the next.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential constructs a sequential container.
func NewSequential(name string, ls ...Layer) *Sequential {
	return &Sequential{name: name, Layers: ls}
}

// Add appends layers.
func (s *Sequential) Add(ls ...Layer) { s.Layers = append(s.Layers, ls...) }

func (s *Sequential) Name() string { return s.name }

func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	// Span names are the layers' stored names, so the disabled path never
	// builds a string; kernel spans opened inside each layer nest under its
	// layer span in the trace.
	for _, l := range s.Layers {
		sp := prof.Begin(prof.CatForward, l.Name())
		x = l.Forward(x, train)
		sp.End()
	}
	return x
}

func (s *Sequential) Backward(gy *tensor.Tensor) *tensor.Tensor {
	// Intermediate gradients are recycled by the layers that produced
	// them, each on its own next Backward call.
	g := gy
	for i := len(s.Layers) - 1; i >= 0; i-- {
		sp := prof.Begin(prof.CatBackward, s.Layers[i].Name())
		g = s.Layers[i].Backward(g)
		sp.End()
	}
	return g
}

func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

func (s *Sequential) StashBytes() int64 {
	var n int64
	for _, l := range s.Layers {
		n += l.StashBytes()
	}
	return n
}

// FreezeHalfWeights freezes every child layer that supports fp16
// storage; others stay at full precision.
func (s *Sequential) FreezeHalfWeights() {
	for _, l := range s.Layers {
		if f, ok := l.(HalfFreezer); ok {
			f.FreezeHalfWeights()
		}
	}
}

// ResidentWeightBytes sums the children's storage-aware weight bytes.
func (s *Sequential) ResidentWeightBytes() int64 {
	var n int64
	for _, l := range s.Layers {
		n += residentWeightBytes(l)
	}
	return n
}

// Residual wraps a body with an identity skip connection:
// y = body(x) + proj(x), where proj defaults to identity and may be a 1x1
// convolution or dense projection when shapes differ — the ResNet pattern.
type Residual struct {
	name string
	Body Layer
	Proj Layer // optional; nil means identity skip
	out  *tensor.Tensor
}

// NewResidual constructs a residual block.
func NewResidual(name string, body Layer, proj Layer) *Residual {
	return &Residual{name: name, Body: body, Proj: proj}
}

func (r *Residual) Name() string { return r.name }

func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sp := prof.Begin(prof.CatForward, r.name)
	r.out.Release()
	y := r.Body.Forward(x, train)
	skip := x
	if r.Proj != nil {
		skip = r.Proj.Forward(x, train)
	}
	out := tensor.Add(y, skip)
	r.out = out
	sp.End()
	return out
}

func (r *Residual) Backward(gy *tensor.Tensor) *tensor.Tensor {
	sp := prof.Begin(prof.CatBackward, r.name)
	gx := r.Body.Backward(gy)
	if r.Proj != nil {
		// The projection's gradient buffer belongs to the projection
		// layer; it is only read here.
		pg := r.Proj.Backward(gy)
		tensor.AddInPlace(gx, pg)
	} else {
		tensor.AddInPlace(gx, gy)
	}
	sp.End()
	return gx
}

func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Proj != nil {
		ps = append(ps, r.Proj.Params()...)
	}
	return ps
}

func (r *Residual) StashBytes() int64 {
	n := r.Body.StashBytes()
	if r.Proj != nil {
		n += r.Proj.StashBytes()
	}
	return n
}

// FreezeHalfWeights freezes the body and projection where supported.
func (r *Residual) FreezeHalfWeights() {
	if f, ok := r.Body.(HalfFreezer); ok {
		f.FreezeHalfWeights()
	}
	if r.Proj != nil {
		if f, ok := r.Proj.(HalfFreezer); ok {
			f.FreezeHalfWeights()
		}
	}
}

// ResidentWeightBytes sums the body's and projection's storage-aware
// weight bytes.
func (r *Residual) ResidentWeightBytes() int64 {
	n := residentWeightBytes(r.Body)
	if r.Proj != nil {
		n += residentWeightBytes(r.Proj)
	}
	return n
}
