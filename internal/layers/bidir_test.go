package layers

import (
	"math"
	"testing"

	"tbd/internal/tensor"
)

func TestBidirectionalShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewBiLSTM("bi", 3, 5, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 3)
	y := l.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 4 || y.Dim(2) != 10 {
		t.Fatalf("bidirectional output %v, want [2 4 10]", y.Shape())
	}
	if len(l.Params()) != 6 {
		t.Fatalf("params = %d, want 6 (two LSTMs)", len(l.Params()))
	}
}

func TestBidirectionalGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewBiRNN("bi", 3, 4, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 3)
	gradCheck(t, l, x, 5e-2)
}

func TestBiLSTMGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewBiLSTM("bi", 2, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 2)
	gradCheck(t, l, x, 6e-2)
}

func TestBidirectionalSeesTheFuture(t *testing.T) {
	// Unlike a forward-only RNN, the first timestep's output must depend
	// on the last timestep's input through the backward direction.
	rng := tensor.NewRNG(4)
	l := NewBiRNN("bi", 2, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 5, 2)
	y1 := l.Forward(x, false).Clone()
	x2 := x.Clone()
	x2.Set(x2.At(0, 4, 0)+5, 0, 4, 0)
	y2 := l.Forward(x2, false)
	var diff float64
	for j := 0; j < 6; j++ {
		diff += math.Abs(float64(y1.At(0, 0, j) - y2.At(0, 0, j)))
	}
	if diff < 1e-4 {
		t.Fatal("backward direction did not propagate future input to t=0")
	}
	// And the forward half (first 3 features) of t=0 must be unchanged.
	for j := 0; j < 3; j++ {
		if y1.At(0, 0, j) != y2.At(0, 0, j) {
			t.Fatal("forward direction leaked future input")
		}
	}
}

func TestReverseTimeInvolution(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := tensor.RandNormal(rng, 0, 1, 2, 5, 3)
	if !tensor.Equal(reverseTime(reverseTime(x)), x, 0) {
		t.Fatal("reverseTime is not an involution")
	}
	r := reverseTime(x)
	if r.At(0, 0, 1) != x.At(0, 4, 1) {
		t.Fatal("reverseTime mapped the wrong frame")
	}
}

func TestConcatChannelsForward(t *testing.T) {
	rng := tensor.NewRNG(6)
	b1 := NewConv2DNoBias("b1", 2, 3, 1, 1, 0, rng)
	b2 := NewConv2DNoBias("b2", 2, 5, 3, 1, 1, rng)
	cc := NewConcatChannels("mix", b1, b2)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 4, 4)
	y := cc.Forward(x, true)
	if y.Dim(1) != 8 {
		t.Fatalf("concat channels %d, want 8", y.Dim(1))
	}
	// First 3 channels equal branch-1's standalone output.
	y1 := b1.Forward(x, false)
	for b := 0; b < 2; b++ {
		for c := 0; c < 3; c++ {
			for i := 0; i < 16; i++ {
				if y.Data()[(b*8+c)*16+i] != y1.Data()[(b*3+c)*16+i] {
					t.Fatal("branch output misplaced in concat")
				}
			}
		}
	}
}

func TestConcatChannelsGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	cc := NewConcatChannels("mix",
		NewConv2DNoBias("b1", 2, 2, 1, 1, 0, rng),
		NewSequential("b2",
			NewConv2DNoBias("b2c", 2, 3, 3, 1, 1, rng),
			NewReLU("b2r"),
		),
	)
	x := tensor.RandNormal(rng, 0, 1, 1, 2, 4, 4)
	gradCheck(t, cc, x, 4e-2)
}

func TestConcatChannelsValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty branch list must panic")
		}
	}()
	NewConcatChannels("mix")
}

func TestInceptionStyleBlockLearns(t *testing.T) {
	// A real multi-branch block trains end-to-end.
	rng := tensor.NewRNG(8)
	block := NewSequential("net",
		NewConcatChannels("mix",
			NewConv2DNoBias("b1", 1, 4, 1, 1, 0, rng),
			NewConv2DNoBias("b3", 1, 4, 3, 1, 1, rng),
		),
		NewReLU("relu"),
		NewGlobalAvgPool2D("gap"),
		NewDense("fc", 8, 3, rng),
	)
	// 3-class template task.
	templates := make([]*tensor.Tensor, 3)
	for i := range templates {
		templates[i] = tensor.RandNormal(rng, 0, 1, 1, 6, 6)
	}
	batch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 6, 6)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := rng.Intn(3)
			labels[i] = c
			for j := 0; j < 36; j++ {
				x.Data()[i*36+j] = templates[c].Data()[j] + 0.2*float32(rng.Norm())
			}
		}
		return x, labels
	}
	var acc float64
	for step := 0; step < 300; step++ {
		x, labels := batch(16)
		for _, p := range block.Params() {
			p.ZeroGrad()
		}
		logits := block.Forward(x, true)
		_, grad := tensor.CrossEntropy(logits, labels)
		block.Backward(grad)
		for _, p := range block.Params() {
			for i, g := range p.Grad.Data() {
				p.Value.Data()[i] -= 0.1 * g
			}
		}
		acc = tensor.Accuracy(logits, labels)
	}
	if acc < 0.85 {
		t.Fatalf("inception-style block accuracy %.2f", acc)
	}
}

func TestCrossAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(40)
	l := NewCrossAttention("cross", 8, 2, rng)
	mem := tensor.RandNormal(rng, 0, 0.5, 2, 4, 8)
	l.SetMemory(mem)
	x := tensor.RandNormal(rng, 0, 0.5, 2, 3, 8)
	// gradCheck re-runs Forward; memory stays installed.
	gradCheck(t, l, x, 6e-2)
}

func TestCrossAttentionMemoryGradient(t *testing.T) {
	rng := tensor.NewRNG(41)
	l := NewCrossAttention("cross", 4, 1, rng)
	mem := tensor.RandNormal(rng, 0, 0.5, 1, 3, 4)
	x := tensor.RandNormal(rng, 0, 0.5, 1, 2, 4)
	coef := tensor.RandNormal(rng, 0, 1, 1, 2, 4)
	loss := func() float64 {
		l.SetMemory(mem)
		out := l.Forward(x, true)
		var s float64
		for i, v := range out.Data() {
			s += float64(v) * float64(coef.Data()[i])
		}
		return s
	}
	base := loss()
	_ = base
	l.Backward(coef)
	gmem := l.MemoryGrad()
	if gmem == nil || gmem.Dim(1) != 3 {
		t.Fatal("memory gradient missing")
	}
	const eps = 1e-2
	for _, i := range []int{0, 5, 11} {
		orig := mem.Data()[i]
		mem.Data()[i] = orig + eps
		up := loss()
		mem.Data()[i] = orig - eps
		down := loss()
		mem.Data()[i] = orig
		num := (up - down) / (2 * eps)
		if diff := num - float64(gmem.Data()[i]); diff > 5e-2*(1+math.Abs(num)) || diff < -5e-2*(1+math.Abs(num)) {
			t.Fatalf("memory grad[%d]: finite diff %.5f vs analytic %.5f", i, num, gmem.Data()[i])
		}
	}
}

func TestCrossAttentionDifferentSequenceLengths(t *testing.T) {
	rng := tensor.NewRNG(42)
	l := NewCrossAttention("cross", 8, 2, rng)
	mem := tensor.RandNormal(rng, 0, 1, 2, 7, 8) // encoder length 7
	l.SetMemory(mem)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 8) // decoder length 3
	y := l.Forward(x, false)
	if y.Dim(1) != 3 || y.Dim(2) != 8 {
		t.Fatalf("cross attention output %v", y.Shape())
	}
}

func TestCrossAttentionValidates(t *testing.T) {
	rng := tensor.NewRNG(43)
	l := NewCrossAttention("cross", 4, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("forward without memory must panic")
		}
	}()
	l.Forward(tensor.New(1, 2, 4), false)
}
