package layers

import (
	"fmt"

	"tbd/internal/tensor"
)

// Dense is a fully-connected layer y = act(x @ W + b) operating on
// [N, In] inputs. Inputs of higher rank are flattened to [N, In] first.
// Bias and activation are fused into the GEMM write-back (bit-identical
// to the unfused Dense + activation-layer composition); Act is ActNone by
// default, i.e. a plain linear layer.
type Dense struct {
	name     string
	In, Out  int
	W, B     *Param
	Act      tensor.ActKind
	useBias  bool
	wHalf    *tensor.HalfMatrix // frozen fp16 weights; non-nil disables training
	x        *tensor.Tensor     // cached input (feature map stash)
	out, gx  *tensor.Tensor     // previously returned buffers, recycled next call
	origDims []int
}

// NewDense constructs a dense layer with Xavier-initialized weights.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	return &Dense{
		name:    name,
		In:      in,
		Out:     out,
		W:       NewParam(name+".W", tensor.XavierInit(rng, in, out, in, out)),
		B:       NewParam(name+".b", tensor.New(out)),
		useBias: true,
	}
}

// NewDenseNoBias constructs a dense layer without a bias term.
func NewDenseNoBias(name string, in, out int, rng *tensor.RNG) *Dense {
	d := NewDense(name, in, out, rng)
	d.useBias = false
	return d
}

// NewDenseAct constructs a dense layer with a fused activation epilogue —
// a drop-in replacement for NewDense followed by a standalone activation
// layer, producing identical bits with one less full-tensor pass each way.
func NewDenseAct(name string, in, out int, act tensor.ActKind, rng *tensor.RNG) *Dense {
	d := NewDense(name, in, out, rng)
	d.Act = act
	return d
}

func (d *Dense) Name() string { return d.name }

func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.origDims = append([]int(nil), x.Shape()...)
	n := x.Numel() / d.In
	if n*d.In != x.Numel() {
		panic(fmt.Sprintf("layers: %s expects inner size %d, got shape %v", d.name, d.In, x.Shape()))
	}
	x2 := x.Reshape(n, d.In)
	// Each layer owns the tensors it created and recycles them on its next
	// call, once the previous iteration is provably consumed. The input
	// belongs to whichever layer produced it, so it is stashed but never
	// released here.
	d.out.Release()
	if train {
		d.x = x2
	} else {
		d.x = nil
	}
	var bias *tensor.Tensor
	if d.useBias {
		bias = d.B.Value
	}
	var y *tensor.Tensor
	if d.wHalf != nil {
		if train {
			panic(fmt.Sprintf("layers: %s has fp16-frozen weights; training is disabled", d.name))
		}
		y = tensor.MatMulHalfBiasAct(x2, d.wHalf, bias, d.Act)
	} else {
		y = tensor.MatMulBiasAct(x2, d.W.Value, bias, d.Act)
	}
	d.out = y
	// Preserve the input's leading dimensions: [..., In] -> [..., Out].
	if len(d.origDims) > 2 {
		outDims := append([]int(nil), d.origDims[:len(d.origDims)-1]...)
		outDims = append(outDims, d.Out)
		return y.Reshape(outDims...)
	}
	return y
}

func (d *Dense) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(d.name, d.x)
	d.gx.Release()
	n := d.x.Dim(0)
	gz := gy.Reshape(n, d.Out)
	// With a fused activation the stashed output is post-activation, and
	// all three activations' derivatives are functions of that output, so
	// backprop through the epilogue needs no extra stash.
	var gzOwned *tensor.Tensor
	if d.Act != tensor.ActNone {
		gzOwned = tensor.ActBackward(d.Act, gz, d.out)
		gz = gzOwned
	}
	gw := tensor.MatMulTransA(d.x, gz)
	tensor.AddInPlace(d.W.Grad, gw)
	gw.Release()
	if d.useBias {
		gb := tensor.SumRows(gz)
		tensor.AddInPlace(d.B.Grad, gb)
		gb.Release()
	}
	gx := tensor.MatMulTransB(gz, d.W.Value)
	gzOwned.Release()
	d.gx = gx
	return gx.Reshape(d.origDims...)
}

func (d *Dense) Params() []*Param {
	if d.wHalf != nil {
		// Frozen weights are storage, not trainable parameters; only the
		// (still fp32) bias remains visible.
		if d.useBias {
			return []*Param{d.B}
		}
		return nil
	}
	if d.useBias {
		return []*Param{d.W, d.B}
	}
	return []*Param{d.W}
}

func (d *Dense) StashBytes() int64 { return bytesOf(d.x) }

// FreezeHalfWeights irreversibly converts the weight matrix to fp16
// storage: half the resident bytes, forward passes run the fp16-storage
// GEMM (fp32 accumulate), and the fp32 weight and gradient tensors are
// dropped. Training panics afterwards; checkpoints written after a
// freeze omit the frozen matrix. Idempotent.
func (d *Dense) FreezeHalfWeights() {
	if d.wHalf != nil {
		return
	}
	d.wHalf = tensor.NewHalfMatrix(d.W.Value)
	d.W.Value, d.W.Grad = nil, nil
}

// ResidentWeightBytes implements WeightSizer: two bytes per weight once
// frozen, four before.
func (d *Dense) ResidentWeightBytes() int64 {
	if d.wHalf != nil {
		n := d.wHalf.Bytes()
		if d.useBias {
			n += int64(d.B.Value.Numel()) * 4
		}
		return n
	}
	return ParamCount(d.Params()) * 4
}

// Flatten reshapes [N, ...] inputs to [N, F]. It is shape bookkeeping only.
type Flatten struct {
	name string
	dims []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

func (f *Flatten) Name() string { return f.name }

func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.dims = append([]int(nil), x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

func (f *Flatten) Backward(gy *tensor.Tensor) *tensor.Tensor {
	return gy.Reshape(f.dims...)
}

func (f *Flatten) Params() []*Param  { return nil }
func (f *Flatten) StashBytes() int64 { return 0 }
