package layers

import (
	"fmt"
	"math"

	"tbd/internal/tensor"
)

// gruStep caches one GRU timestep.
type gruStep struct {
	x, hPrev *tensor.Tensor
	z, r, n  *tensor.Tensor
	hWhn     *tensor.Tensor // hPrev @ Whn (pre-reset-gate candidate term)
}

// GRU is a gated recurrent unit layer over [N, T, In] producing [N, T, H].
// Deep Speech 2's recurrent stack uses GRUs in several configurations.
type GRU struct {
	name    string
	In, H   int
	Wx      *Param // [In, 3H]; gate order z, r, n
	Wh      *Param // [H, 3H]
	B       *Param // [3H]
	steps   []gruStep
	inShape []int
}

// NewGRU constructs a GRU layer.
func NewGRU(name string, in, h int, rng *tensor.RNG) *GRU {
	return &GRU{
		name: name, In: in, H: h,
		Wx: NewParam(name+".Wx", tensor.XavierInit(rng, in, 3*h, in, 3*h)),
		Wh: NewParam(name+".Wh", tensor.XavierInit(rng, h, 3*h, h, 3*h)),
		B:  NewParam(name+".b", tensor.New(3*h)),
	}
}

func (l *GRU) Name() string { return l.name }

func (l *GRU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, T := checkSeqInput(l.name, x, l.In)
	l.inShape = append([]int(nil), x.Shape()...)
	H := l.H
	out := tensor.New(n, T, H)
	h := tensor.New(n, H)
	if train {
		l.steps = l.steps[:0]
	} else {
		l.steps = nil
	}
	for t := 0; t < T; t++ {
		xt := sliceStep(x, t, l.In)
		zx := tensor.MatMulParallel(xt, l.Wx.Value) // [N, 3H]
		zh := tensor.MatMulParallel(h, l.Wh.Value)  // [N, 3H]
		zg := tensor.New(n, H)
		rg := tensor.New(n, H)
		ng := tensor.New(n, H)
		hWhn := tensor.New(n, H)
		hNew := tensor.New(n, H)
		for b := 0; b < n; b++ {
			zxr := zx.Data()[b*3*H : (b+1)*3*H]
			zhr := zh.Data()[b*3*H : (b+1)*3*H]
			for j := 0; j < H; j++ {
				zv := sigmoid(zxr[j] + zhr[j] + l.B.Value.Data()[j])
				rv := sigmoid(zxr[H+j] + zhr[H+j] + l.B.Value.Data()[H+j])
				hn := zhr[2*H+j]
				nv := float32(math.Tanh(float64(zxr[2*H+j] + rv*hn + l.B.Value.Data()[2*H+j])))
				k := b*H + j
				zg.Data()[k] = zv
				rg.Data()[k] = rv
				ng.Data()[k] = nv
				hWhn.Data()[k] = hn
				hNew.Data()[k] = (1-zv)*nv + zv*h.Data()[k]
			}
		}
		zx.Release() // gate pre-activations are folded into the step state above
		zh.Release()
		if train {
			l.steps = append(l.steps, gruStep{x: xt, hPrev: h, z: zg, r: rg, n: ng, hWhn: hWhn})
		}
		h = hNew
		storeStep(out, h, t, H)
	}
	return out
}

func (l *GRU) Backward(gy *tensor.Tensor) *tensor.Tensor {
	if l.steps == nil {
		panic(fmt.Sprintf("layers: %s.Backward called before Forward(train=true)", l.name))
	}
	n, T, H := l.inShape[0], l.inShape[1], l.H
	gx := tensor.New(l.inShape...)
	gh := tensor.New(n, H)
	for t := T - 1; t >= 0; t-- {
		st := l.steps[t]
		g := sliceStep(gy, t, H)
		tensor.AddInPlace(g, gh)
		dzx := tensor.New(n, 3*H) // gradient into zx rows (x-side pre-activations)
		dzh := tensor.New(n, 3*H) // gradient into zh rows (h-side pre-activations)
		ghNext := tensor.New(n, H)
		for b := 0; b < n; b++ {
			for j := 0; j < H; j++ {
				k := b*H + j
				ghv := g.Data()[k]
				zv, rv, nv := st.z.Data()[k], st.r.Data()[k], st.n.Data()[k]
				// h = (1-z)*n + z*hPrev
				dn := ghv * (1 - zv)
				dzGate := ghv * (st.hPrev.Data()[k] - nv)
				ghNext.Data()[k] += ghv * zv
				// n = tanh(zx_n + r*(hPrev@Whn) + b_n)
				dpre := dn * (1 - nv*nv)
				drGate := dpre * st.hWhn.Data()[k]
				dzSig := dzGate * zv * (1 - zv)
				drSig := drGate * rv * (1 - rv)
				zxr := dzx.Data()[b*3*H : (b+1)*3*H]
				zhr := dzh.Data()[b*3*H : (b+1)*3*H]
				zxr[j] = dzSig
				zhr[j] = dzSig
				zxr[H+j] = drSig
				zhr[H+j] = drSig
				zxr[2*H+j] = dpre
				zhr[2*H+j] = dpre * rv
				l.B.Grad.Data()[j] += dzSig
				l.B.Grad.Data()[H+j] += drSig
				l.B.Grad.Data()[2*H+j] += dpre
			}
		}
		tensor.AddInPlace(l.Wx.Grad, tensor.MatMulTransA(st.x, dzx))
		tensor.AddInPlace(l.Wh.Grad, tensor.MatMulTransA(st.hPrev, dzh))
		storeStep(gx, tensor.MatMulTransB(dzx, l.Wx.Value), t, l.In)
		tensor.AddInPlace(ghNext, tensor.MatMulTransB(dzh, l.Wh.Value))
		gh = ghNext
	}
	return gx
}

func (l *GRU) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func (l *GRU) StashBytes() int64 {
	var n int64
	for _, s := range l.steps {
		n += bytesOf(s.x, s.hPrev, s.z, s.r, s.n, s.hWhn)
	}
	return n
}
