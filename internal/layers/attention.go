package layers

import (
	"fmt"
	"math"

	"tbd/internal/tensor"
)

// MultiHeadAttention implements self-attention over [N, T, D] inputs —
// the layer the paper highlights as the non-recurrent alternative that
// keeps GPUs busy where LSTMs cannot (Observation 5, Transformer panel).
//
// The implementation is single-tensor QKV projection followed by per-head
// scaled dot-product attention and an output projection.
type MultiHeadAttention struct {
	name   string
	D      int // model dimension
	Heads  int
	Wq, Wk *Param
	Wv, Wo *Param
	// Cached forward state.
	x       *tensor.Tensor
	q, k, v *tensor.Tensor // [N, T, D]
	att     *tensor.Tensor // [N*heads, T, T] softmax weights
	ctx     *tensor.Tensor // [N, T, D] pre-output-projection context
	causal  bool
}

// NewMultiHeadAttention constructs an attention layer; d must be divisible
// by heads.
func NewMultiHeadAttention(name string, d, heads int, causal bool, rng *tensor.RNG) *MultiHeadAttention {
	if d%heads != 0 {
		panic(fmt.Sprintf("layers: %s model dim %d not divisible by %d heads", name, d, heads))
	}
	return &MultiHeadAttention{
		name: name, D: d, Heads: heads, causal: causal,
		Wq: NewParam(name+".Wq", tensor.XavierInit(rng, d, d, d, d)),
		Wk: NewParam(name+".Wk", tensor.XavierInit(rng, d, d, d, d)),
		Wv: NewParam(name+".Wv", tensor.XavierInit(rng, d, d, d, d)),
		Wo: NewParam(name+".Wo", tensor.XavierInit(rng, d, d, d, d)),
	}
}

func (l *MultiHeadAttention) Name() string { return l.name }

// project computes x2 @ W for x flattened to [N*T, D].
func project(x *tensor.Tensor, w *Param) *tensor.Tensor {
	n, T, d := x.Dim(0), x.Dim(1), x.Dim(2)
	return tensor.MatMulParallel(x.Reshape(n*T, d), w.Value).Reshape(n, T, d)
}

// toHeads reorders [N, T, D] into [N*heads, T, Dh].
func toHeads(x *tensor.Tensor, heads int) *tensor.Tensor {
	n, T, d := x.Dim(0), x.Dim(1), x.Dim(2)
	dh := d / heads
	out := tensor.New(n*heads, T, dh)
	for b := 0; b < n; b++ {
		for t := 0; t < T; t++ {
			row := x.Data()[(b*T+t)*d : (b*T+t+1)*d]
			for h := 0; h < heads; h++ {
				copy(out.Data()[((b*heads+h)*T+t)*dh:((b*heads+h)*T+t+1)*dh], row[h*dh:(h+1)*dh])
			}
		}
	}
	return out
}

// fromHeads inverts toHeads.
func fromHeads(x *tensor.Tensor, n, heads int) *tensor.Tensor {
	T := x.Dim(1)
	dh := x.Dim(2)
	d := heads * dh
	out := tensor.New(n, T, d)
	for b := 0; b < n; b++ {
		for t := 0; t < T; t++ {
			dst := out.Data()[(b*T+t)*d : (b*T+t+1)*d]
			for h := 0; h < heads; h++ {
				copy(dst[h*dh:(h+1)*dh], x.Data()[((b*heads+h)*T+t)*dh:((b*heads+h)*T+t+1)*dh])
			}
		}
	}
	return out
}

// transposeLast swaps the last two axes of a rank-3 tensor.
func transposeLast(x *tensor.Tensor) *tensor.Tensor {
	b, n, m := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(b, m, n)
	for i := 0; i < b; i++ {
		for r := 0; r < n; r++ {
			for c := 0; c < m; c++ {
				out.Data()[i*m*n+c*n+r] = x.Data()[i*n*m+r*m+c]
			}
		}
	}
	return out
}

func (l *MultiHeadAttention) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(2) != l.D {
		panic(fmt.Sprintf("layers: %s expects [N,T,%d], got %v", l.name, l.D, x.Shape()))
	}
	n, T := x.Dim(0), x.Dim(1)
	q := project(x, l.Wq)
	k := project(x, l.Wk)
	v := project(x, l.Wv)
	dh := l.D / l.Heads
	qh := toHeads(q, l.Heads) // [NH, T, dh]
	kh := toHeads(k, l.Heads)
	vh := toHeads(v, l.Heads)
	scores := tensor.BatchMatMul(qh, transposeLast(kh)) // [NH, T, T]
	scores.ScaleInPlace(1 / float32(math.Sqrt(float64(dh))))
	if l.causal {
		neg := float32(-1e9)
		for b := 0; b < scores.Dim(0); b++ {
			for r := 0; r < T; r++ {
				for c := r + 1; c < T; c++ {
					scores.Data()[b*T*T+r*T+c] = neg
				}
			}
		}
	}
	att := tensor.SoftmaxRows(scores.Reshape(scores.Dim(0)*T, T)).Reshape(n*l.Heads, T, T)
	scores.Release() // SoftmaxRows copied; the raw scores are dead
	ctxH := tensor.BatchMatMul(att, vh) // [NH, T, dh]
	ctx := fromHeads(ctxH, n, l.Heads)  // [N, T, D]
	ctxH.Release()                      // fromHeads copied
	out := project(ctx, l.Wo)
	if train {
		l.x, l.q, l.k, l.v, l.att, l.ctx = x, q, k, v, att, ctx
	} else {
		l.x, l.q, l.k, l.v, l.att, l.ctx = nil, nil, nil, nil, nil, nil
	}
	return out
}

func (l *MultiHeadAttention) Backward(gy *tensor.Tensor) *tensor.Tensor {
	requireForward(l.name, l.x)
	n, T, d := l.x.Dim(0), l.x.Dim(1), l.D
	heads, dh := l.Heads, l.D/l.Heads

	// Output projection.
	g2 := gy.Reshape(n*T, d)
	ctx2 := l.ctx.Reshape(n*T, d)
	tensor.AddInPlace(l.Wo.Grad, tensor.MatMulTransA(ctx2, g2))
	gctx := tensor.MatMulTransB(g2, l.Wo.Value).Reshape(n, T, d)

	gctxH := toHeads(gctx, heads) // [NH, T, dh]
	qh := toHeads(l.q, heads)
	kh := toHeads(l.k, heads)
	vh := toHeads(l.v, heads)

	// ctxH = att @ vh.
	gatt := tensor.BatchMatMul(gctxH, transposeLast(vh))   // [NH, T, T]
	gvh := tensor.BatchMatMul(transposeLast(l.att), gctxH) // [NH, T, dh]

	// Softmax backward per row: ds = att * (gatt - sum(gatt*att)).
	gscores := tensor.New(n*heads, T, T)
	for b := 0; b < n*heads; b++ {
		for r := 0; r < T; r++ {
			arow := l.att.Data()[b*T*T+r*T : b*T*T+(r+1)*T]
			grow := gatt.Data()[b*T*T+r*T : b*T*T+(r+1)*T]
			var dot float64
			for i := range arow {
				dot += float64(arow[i]) * float64(grow[i])
			}
			dst := gscores.Data()[b*T*T+r*T : b*T*T+(r+1)*T]
			for i := range arow {
				dst[i] = arow[i] * (grow[i] - float32(dot))
			}
		}
	}
	gscores.ScaleInPlace(1 / float32(math.Sqrt(float64(dh))))
	gatt.Release() // consumed by the softmax-backward loop above

	// scores = qh @ khᵀ.
	gqh := tensor.BatchMatMul(gscores, kh)                // [NH, T, dh]
	gkh := tensor.BatchMatMul(transposeLast(gscores), qh) // [NH, T, dh]

	gq := fromHeads(gqh, n, heads).Reshape(n*T, d)
	gk := fromHeads(gkh, n, heads).Reshape(n*T, d)
	gv := fromHeads(gvh, n, heads).Reshape(n*T, d)
	gqh.Release() // fromHeads copied all three
	gkh.Release()
	gvh.Release()
	x2 := l.x.Reshape(n*T, d)
	tensor.AddInPlace(l.Wq.Grad, tensor.MatMulTransA(x2, gq))
	tensor.AddInPlace(l.Wk.Grad, tensor.MatMulTransA(x2, gk))
	tensor.AddInPlace(l.Wv.Grad, tensor.MatMulTransA(x2, gv))
	gx := tensor.MatMulTransB(gq, l.Wq.Value)
	tensor.AddInPlace(gx, tensor.MatMulTransB(gk, l.Wk.Value))
	tensor.AddInPlace(gx, tensor.MatMulTransB(gv, l.Wv.Value))
	return gx.Reshape(n, T, d)
}

func (l *MultiHeadAttention) Params() []*Param {
	return []*Param{l.Wq, l.Wk, l.Wv, l.Wo}
}

func (l *MultiHeadAttention) StashBytes() int64 {
	return bytesOf(l.x, l.q, l.k, l.v, l.att, l.ctx)
}

// PositionalEncoding adds fixed sinusoidal position signals to [N, T, D]
// inputs (Vaswani et al.).
type PositionalEncoding struct {
	name string
	D    int
}

// NewPositionalEncoding constructs the encoding layer for model dim d.
func NewPositionalEncoding(name string, d int) *PositionalEncoding {
	return &PositionalEncoding{name: name, D: d}
}

func (l *PositionalEncoding) Name() string { return l.name }

func (l *PositionalEncoding) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, T, d := x.Dim(0), x.Dim(1), x.Dim(2)
	out := x.Clone()
	for t := 0; t < T; t++ {
		for i := 0; i < d; i++ {
			freq := math.Pow(10000, -float64(2*(i/2))/float64(d))
			var p float64
			if i%2 == 0 {
				p = math.Sin(float64(t) * freq)
			} else {
				p = math.Cos(float64(t) * freq)
			}
			for b := 0; b < n; b++ {
				out.Data()[(b*T+t)*d+i] += float32(p)
			}
		}
	}
	return out
}

func (l *PositionalEncoding) Backward(gy *tensor.Tensor) *tensor.Tensor { return gy }
func (l *PositionalEncoding) Params() []*Param                          { return nil }
func (l *PositionalEncoding) StashBytes() int64                         { return 0 }
