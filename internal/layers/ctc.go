package layers

import (
	"fmt"
	"math"

	"tbd/internal/tensor"
)

// CTC implements Connectionist Temporal Classification (Graves et al.),
// the loss Deep Speech 2 trains with: it marginalizes over all
// monotonic alignments between an unsegmented label sequence and the
// per-frame output distribution, using the forward-backward algorithm in
// log space. Blank is symbol 0 by convention.

// ctcLogZero is the log-space additive identity.
var ctcLogZero = math.Inf(-1)

// logAdd returns log(exp(a) + exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// ctcExtend interleaves blanks around labels: l1 l2 -> ∅ l1 ∅ l2 ∅.
func ctcExtend(labels []int) []int {
	ext := make([]int, 2*len(labels)+1)
	for i, l := range labels {
		ext[2*i+1] = l
	}
	return ext
}

// CTCLoss computes the CTC negative log-likelihood of one label sequence
// under logits [T, V] (time-major, single utterance) and the gradient
// with respect to the logits. Labels must not contain the blank (0).
func CTCLoss(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("layers: CTCLoss expects [T, V] logits, got %v", logits.Shape()))
	}
	T, V := logits.Dim(0), logits.Dim(1)
	for _, l := range labels {
		if l <= 0 || l >= V {
			panic(fmt.Sprintf("layers: CTC label %d outside (0, %d)", l, V))
		}
	}
	ext := ctcExtend(labels)
	S := len(ext)
	if S > 2*T+1 {
		panic(fmt.Sprintf("layers: label sequence (%d) too long for %d frames", len(labels), T))
	}

	// Log-softmax per frame.
	logp := tensor.LogSoftmaxRows(logits)
	lp := func(t, v int) float64 { return float64(logp.At(t, v)) }

	// Forward variables alpha[t][s].
	alpha := make([][]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, S)
		for s := range alpha[t] {
			alpha[t][s] = ctcLogZero
		}
	}
	alpha[0][0] = lp(0, ext[0])
	if S > 1 {
		alpha[0][1] = lp(0, ext[1])
	}
	for t := 1; t < T; t++ {
		for s := 0; s < S; s++ {
			a := alpha[t-1][s]
			if s > 0 {
				a = logAdd(a, alpha[t-1][s-1])
			}
			// Skip transition allowed when current symbol is not blank
			// and differs from the symbol two back.
			if s > 1 && ext[s] != 0 && ext[s] != ext[s-2] {
				a = logAdd(a, alpha[t-1][s-2])
			}
			alpha[t][s] = a + lp(t, ext[s])
		}
	}
	logLik := alpha[T-1][S-1]
	if S > 1 {
		logLik = logAdd(logLik, alpha[T-1][S-2])
	}

	// Backward variables beta[t][s].
	beta := make([][]float64, T)
	for t := range beta {
		beta[t] = make([]float64, S)
		for s := range beta[t] {
			beta[t][s] = ctcLogZero
		}
	}
	beta[T-1][S-1] = lp(T-1, ext[S-1])
	if S > 1 {
		beta[T-1][S-2] = lp(T-1, ext[S-2])
	}
	for t := T - 2; t >= 0; t-- {
		for s := S - 1; s >= 0; s-- {
			b := beta[t+1][s]
			if s < S-1 {
				b = logAdd(b, beta[t+1][s+1])
			}
			if s < S-2 && ext[s] != 0 && ext[s] != ext[s+2] {
				b = logAdd(b, beta[t+1][s+2])
			}
			beta[t][s] = b + lp(t, ext[s])
		}
	}

	// Gradient w.r.t. logits: softmax(t) - (posterior over symbols at t).
	grad := tensor.New(T, V)
	for t := 0; t < T; t++ {
		// Posterior gamma(t, s) = alpha*beta / (p(t, ext[s]) * lik).
		post := make([]float64, V)
		for i := range post {
			post[i] = ctcLogZero
		}
		for s := 0; s < S; s++ {
			g := alpha[t][s] + beta[t][s] - lp(t, ext[s])
			post[ext[s]] = logAdd(post[ext[s]], g)
		}
		for v := 0; v < V; v++ {
			p := math.Exp(lp(t, v))
			target := 0.0
			if !math.IsInf(post[v], -1) {
				target = math.Exp(post[v] - logLik)
			}
			grad.Set(float32(p-target), t, v)
		}
	}
	return float32(-logLik), grad
}

// CTCLossBatch averages CTCLoss over a batch of [N, T, V] logits with
// per-utterance label sequences, returning the mean loss and the full
// gradient tensor.
func CTCLossBatch(logits *tensor.Tensor, labels [][]int) (float32, *tensor.Tensor) {
	if logits.Rank() != 3 {
		panic(fmt.Sprintf("layers: CTCLossBatch expects [N, T, V], got %v", logits.Shape()))
	}
	n, T, V := logits.Dim(0), logits.Dim(1), logits.Dim(2)
	if len(labels) != n {
		panic(fmt.Sprintf("layers: %d label sequences for batch %d", len(labels), n))
	}
	grad := tensor.New(n, T, V)
	var total float64
	for i := 0; i < n; i++ {
		one := tensor.FromSlice(logits.Data()[i*T*V:(i+1)*T*V], T, V)
		loss, g := CTCLoss(one, labels[i])
		total += float64(loss)
		copy(grad.Data()[i*T*V:(i+1)*T*V], g.Data())
	}
	grad.ScaleInPlace(1 / float32(n))
	return float32(total / float64(n)), grad
}

// CTCGreedyDecode collapses the per-frame argmax path (remove repeats,
// then blanks) — the standard greedy CTC decoder.
func CTCGreedyDecode(logits *tensor.Tensor) []int {
	T := logits.Dim(0)
	V := logits.Numel() / T
	var out []int
	prev := -1
	for t := 0; t < T; t++ {
		row := logits.Data()[t*V : (t+1)*V]
		best, bi := row[0], 0
		for v, p := range row {
			if p > best {
				best, bi = p, v
			}
		}
		if bi != prev && bi != 0 {
			out = append(out, bi)
		}
		prev = bi
	}
	return out
}
