// Package layers implements the neural-network layer zoo used by every TBD
// benchmark model: dense, convolution, pooling, normalization, activation,
// dropout, embedding, recurrent (RNN/GRU/LSTM), and attention layers, each
// with an explicit forward and backward pass and owned parameters.
//
// Layers cache the intermediate results (feature maps) they need for the
// backward pass, exactly the data structures whose memory footprint the
// paper's memory profiler attributes to the "feature maps" category; the
// graph package accounts for them via StashBytes.
package layers

import (
	"fmt"

	"tbd/internal/tensor"
)

// Param is one trainable parameter tensor together with its gradient
// accumulator. Optimizers consume Params; the memory profiler counts Value
// as "weights" and Grad as "weight gradients".
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter around an initialized value tensor.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable network stage. Forward may cache activations
// when train is true; Backward consumes the most recent cached forward
// state and returns the gradient with respect to the layer input.
//
// # Buffer lifetime
//
// Layers recycle the pool-backed tensors they return: the output of
// Forward is valid only until the layer's next Forward call, and the
// gradient returned by Backward only until its next Backward call, at
// which point the layer Releases the old buffer back to the tensor pool
// and it may be reused (zeroed and overwritten) by any subsequent op.
// Callers that need a layer result beyond one step — logits kept across
// iterations, activations stashed for later inspection — must Clone it.
// Retaining a stale reference yields silently corrupted data, not an
// error. tensor.SetDebugPoisonReleased(true) makes such use-after-release
// bugs loud in tests by filling released buffers with NaN.
type Layer interface {
	// Name returns a stable human-readable identifier.
	Name() string
	// Forward computes the layer output for x. The returned tensor is
	// owned by the layer and recycled on its next Forward call; Clone it
	// to keep it longer (see "Buffer lifetime" above).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the upstream gradient gy and accumulates
	// parameter gradients. It must be called after a Forward with
	// train=true. The returned gradient is owned by the layer and
	// recycled on its next Backward call (see "Buffer lifetime" above).
	Backward(gy *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
	// StashBytes reports the bytes of feature maps currently cached for
	// the backward pass.
	StashBytes() int64
}

// HalfFreezer is implemented by layers and containers whose weights can
// be converted to fp16 inference storage (see Dense.FreezeHalfWeights).
// Containers forward the call to every capable child; layers without
// fp16 support are simply left at full precision.
type HalfFreezer interface {
	FreezeHalfWeights()
}

// WeightSizer reports resident weight bytes with storage-format
// awareness: fp16-frozen layers count two bytes per weight where the
// ParamCount-based default assumes four.
type WeightSizer interface {
	ResidentWeightBytes() int64
}

// residentWeightBytes returns l's resident weight bytes, preferring the
// layer's own storage-aware accounting.
func residentWeightBytes(l Layer) int64 {
	if s, ok := l.(WeightSizer); ok {
		return s.ResidentWeightBytes()
	}
	return ParamCount(l.Params()) * 4
}

// bytesOf returns the float32 payload size of t, tolerating nil.
func bytesOf(ts ...*tensor.Tensor) int64 {
	var n int64
	for _, t := range ts {
		if t != nil {
			n += int64(t.Numel()) * 4
		}
	}
	return n
}

// requireForward panics with a uniform message when Backward runs before
// Forward cached state.
func requireForward(name string, cached *tensor.Tensor) {
	if cached == nil {
		panic(fmt.Sprintf("layers: %s.Backward called before Forward(train=true)", name))
	}
}

// ParamCount sums the number of scalar weights across params.
func ParamCount(params []*Param) int64 {
	var n int64
	for _, p := range params {
		n += int64(p.Value.Numel())
	}
	return n
}
