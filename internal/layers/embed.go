package layers

import (
	"fmt"

	"tbd/internal/tensor"
)

// Embedding maps integer token ids to dense vectors. The input tensor holds
// token ids stored as float32 (the convention used throughout the suite for
// sequence models); output shape is input shape + [Dim].
type Embedding struct {
	name       string
	Vocab, Dim int
	W          *Param
	ids        []int
	inShape    []int
}

// NewEmbedding constructs an embedding table with N(0, 0.01) init.
func NewEmbedding(name string, vocab, dim int, rng *tensor.RNG) *Embedding {
	return &Embedding{
		name: name, Vocab: vocab, Dim: dim,
		W: NewParam(name+".W", tensor.RandNormal(rng, 0, 0.1, vocab, dim)),
	}
}

func (l *Embedding) Name() string { return l.name }

func (l *Embedding) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Numel()
	ids := make([]int, n)
	for i, v := range x.Data() {
		id := int(v)
		if id < 0 || id >= l.Vocab {
			panic(fmt.Sprintf("layers: %s token id %d out of vocab %d", l.name, id, l.Vocab))
		}
		ids[i] = id
	}
	outShape := append(append([]int(nil), x.Shape()...), l.Dim)
	out := tensor.New(outShape...)
	for i, id := range ids {
		copy(out.Data()[i*l.Dim:(i+1)*l.Dim], l.W.Value.Data()[id*l.Dim:(id+1)*l.Dim])
	}
	if train {
		l.ids = ids
		l.inShape = append([]int(nil), x.Shape()...)
	} else {
		l.ids = nil
	}
	return out
}

func (l *Embedding) Backward(gy *tensor.Tensor) *tensor.Tensor {
	if l.ids == nil {
		panic(fmt.Sprintf("layers: %s.Backward called before Forward(train=true)", l.name))
	}
	for i, id := range l.ids {
		g := gy.Data()[i*l.Dim : (i+1)*l.Dim]
		dst := l.W.Grad.Data()[id*l.Dim : (id+1)*l.Dim]
		for j, v := range g {
			dst[j] += v
		}
	}
	// Token ids are not differentiable; return a zero gradient of the input
	// shape so graph plumbing stays uniform.
	return tensor.New(l.inShape...)
}

func (l *Embedding) Params() []*Param  { return []*Param{l.W} }
func (l *Embedding) StashBytes() int64 { return int64(len(l.ids)) * 8 }
