package graph

import (
	"bytes"
	"testing"

	"tbd/internal/data"
	"tbd/internal/layers"
	"tbd/internal/optim"
	"tbd/internal/tensor"
)

// twoClusterBatch builds a linearly separable 2-class batch.
func twoClusterBatch(rng *tensor.RNG, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		labels[i] = c
		cx := float32(2*c - 1) // cluster centers at -1 and +1
		x.Set(cx+0.3*float32(rng.Norm()), i, 0)
		x.Set(cx+0.3*float32(rng.Norm()), i, 1)
	}
	return x, labels
}

func mlp(rng *tensor.RNG) *Network {
	return New("mlp", layers.NewSequential("mlp",
		layers.NewDense("fc1", 2, 16, rng),
		layers.NewReLU("relu1"),
		layers.NewDense("fc2", 16, 2, rng),
	))
}

func TestTrainClassifierLearnsSeparableData(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := mlp(rng)
	opt := optim.NewSGD(0.1)
	var last StepResult
	for i := 0; i < 200; i++ {
		x, y := twoClusterBatch(rng, 32)
		last = TrainClassifierStep(net, opt, x, y, 0)
	}
	if last.Accuracy < 0.95 {
		t.Fatalf("accuracy %.2f after training, want >= 0.95", last.Accuracy)
	}
	// Held-out evaluation.
	x, y := twoClusterBatch(rng, 200)
	ev := EvalClassifier(net, x, y)
	if ev.Accuracy < 0.95 {
		t.Fatalf("eval accuracy %.2f", ev.Accuracy)
	}
}

func TestLossDecreasesOverTraining(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := mlp(rng)
	opt := optim.NewSGD(0.1)
	x, y := twoClusterBatch(rng, 64)
	first := TrainClassifierStep(net, opt, x, y, 0).Loss
	var last float32
	for i := 0; i < 100; i++ {
		last = TrainClassifierStep(net, opt, x, y, 0).Loss
	}
	if last >= first/2 {
		t.Fatalf("loss did not halve: %.4f -> %.4f", first, last)
	}
}

func TestGradientClippingReported(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := mlp(rng)
	x, y := twoClusterBatch(rng, 16)
	res := TrainClassifierStep(net, optim.NewSGD(0.01), x, y, 1e-6)
	if res.GradNorm <= 0 {
		t.Fatal("clip enabled but no norm reported")
	}
}

func TestTrainSequenceStepCopiesTask(t *testing.T) {
	// A one-layer LSTM + projection should learn to echo a 4-symbol
	// input sequence (per-token classification).
	rng := tensor.NewRNG(4)
	vocab, dim, hidden, T := 4, 8, 16, 5
	net := New("copier", layers.NewSequential("copier",
		layers.NewEmbedding("emb", vocab, dim, rng),
		layers.NewLSTM("lstm", dim, hidden, rng),
		layers.NewDense("proj", hidden, vocab, rng),
	))
	opt := optim.NewAdam(0.01)
	batch := 16
	makeBatch := func() (*tensor.Tensor, []int) {
		x := tensor.New(batch, T)
		labels := make([]int, batch*T)
		for i := 0; i < batch; i++ {
			for s := 0; s < T; s++ {
				tok := rng.Intn(vocab)
				x.Set(float32(tok), i, s)
				labels[i*T+s] = tok
			}
		}
		return x, labels
	}
	var acc float64
	for i := 0; i < 300; i++ {
		x, y := makeBatch()
		acc = TrainSequenceStep(net, opt, x, y, 5).Accuracy
	}
	if acc < 0.9 {
		t.Fatalf("copy-task accuracy %.2f, want >= 0.9", acc)
	}
}

func TestMemoryAccounting(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := mlp(rng)
	// 2*16+16 + 16*2+2 = 82 params.
	if net.ParamCount() != 82 {
		t.Fatalf("param count %d, want 82", net.ParamCount())
	}
	if net.WeightBytes() != 328 || net.GradientBytes() != 328 {
		t.Fatal("weight/gradient bytes wrong")
	}
	if net.StashBytes() != 0 {
		t.Fatal("fresh network must have empty stash")
	}
	x, _ := twoClusterBatch(rng, 8)
	net.Forward(x, true)
	if net.StashBytes() == 0 {
		t.Fatal("training forward must stash feature maps")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(10)
	net := mlp(rng)
	// Train a little so weights are non-trivial.
	opt := optim.NewSGD(0.1)
	for i := 0; i < 20; i++ {
		x, y := twoClusterBatch(rng, 16)
		TrainClassifierStep(net, opt, x, y, 0)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, 20); err != nil {
		t.Fatal(err)
	}
	restored := mlp(tensor.NewRNG(999)) // different init
	step, err := LoadCheckpoint(&buf, restored)
	if err != nil {
		t.Fatal(err)
	}
	if step != 20 {
		t.Fatalf("restored step %d, want 20", step)
	}
	for i, p := range net.Params() {
		if !tensor.Equal(p.Value, restored.Params()[i].Value, 0) {
			t.Fatalf("parameter %s not restored", p.Name)
		}
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	// Training 40 steps straight equals training 20, checkpointing,
	// restoring into a fresh network, and training 20 more on the same
	// data stream.
	makeData := func() func() (*tensor.Tensor, []int) {
		rng := tensor.NewRNG(77)
		return func() (*tensor.Tensor, []int) { return twoClusterBatch(rng, 16) }
	}
	straight := mlp(tensor.NewRNG(1))
	optA := optim.NewSGD(0.1)
	dataA := makeData()
	for i := 0; i < 40; i++ {
		x, y := dataA()
		TrainClassifierStep(straight, optA, x, y, 0)
	}

	phase1 := mlp(tensor.NewRNG(1))
	optB := optim.NewSGD(0.1)
	dataB := makeData()
	for i := 0; i < 20; i++ {
		x, y := dataB()
		TrainClassifierStep(phase1, optB, x, y, 0)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, phase1, 20); err != nil {
		t.Fatal(err)
	}
	resumed := mlp(tensor.NewRNG(2))
	if _, err := LoadCheckpoint(&buf, resumed); err != nil {
		t.Fatal(err)
	}
	optC := optim.NewSGD(0.1) // SGD is stateless, so resume is exact
	for i := 0; i < 20; i++ {
		x, y := dataB()
		TrainClassifierStep(resumed, optC, x, y, 0)
	}
	for i, p := range straight.Params() {
		if !tensor.Equal(p.Value, resumed.Params()[i].Value, 1e-6) {
			t.Fatalf("resume diverged at parameter %s", p.Name)
		}
	}
}

func TestCheckpointRejectsMismatchedNetwork(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := mlp(rng)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, net, 1); err != nil {
		t.Fatal(err)
	}
	other := New("different", layers.NewSequential("d",
		layers.NewDense("fc1", 2, 8, rng), // smaller hidden layer
		layers.NewReLU("relu1"),
		layers.NewDense("fc2", 8, 2, rng),
	))
	if _, err := LoadCheckpoint(&buf, other); err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
	// And garbage input must fail cleanly.
	if _, err := LoadCheckpoint(bytes.NewBufferString("not a checkpoint"), net); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestGradientAccumulationMatchesFullBatch(t *testing.T) {
	// k micro-batches with accumulation produce the same update as one
	// full batch — the memory/batch trade of Observation 12, with
	// identical math.
	rng := tensor.NewRNG(20)
	x, labels := twoClusterBatch(rng, 16)

	full := mlp(tensor.NewRNG(9))
	TrainClassifierStep(full, optim.NewSGD(0.1), x, labels, 0)

	accum := mlp(tensor.NewRNG(9))
	// Split into 4 micro-batches of 4.
	var microX []*tensor.Tensor
	var microY [][]int
	for i := 0; i < 4; i++ {
		part := tensor.New(4, 2)
		copy(part.Data(), x.Data()[i*8:(i+1)*8])
		microX = append(microX, part)
		microY = append(microY, labels[i*4:(i+1)*4])
	}
	res := TrainClassifierAccumulated(accum, optim.NewSGD(0.1), microX, microY, 0)
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("bad accuracy %v", res.Accuracy)
	}
	for i, p := range full.Params() {
		if !tensor.Equal(p.Value, accum.Params()[i].Value, 1e-5) {
			t.Fatalf("accumulated update diverged at %s", p.Name)
		}
	}
}

func TestGradientAccumulationReducesPeakStash(t *testing.T) {
	rng := tensor.NewRNG(21)
	x, labels := twoClusterBatch(rng, 16)
	net := mlp(tensor.NewRNG(3))
	net.Forward(x, true)
	fullStash := net.StashBytes()

	// A micro-batch forward stashes a quarter as much at a time.
	quarter := tensor.New(4, 2)
	copy(quarter.Data(), x.Data()[:8])
	net.Forward(quarter, true)
	if net.StashBytes()*4 != fullStash {
		t.Fatalf("micro-batch stash %d x4 != full %d", net.StashBytes(), fullStash)
	}
	_ = labels
}

func TestCheckpointWithOptimizerExactAdamResume(t *testing.T) {
	// Adam's moments must survive the checkpoint for an exact resume.
	makeData := func() func() (*tensor.Tensor, []int) {
		rng := tensor.NewRNG(88)
		return func() (*tensor.Tensor, []int) { return twoClusterBatch(rng, 16) }
	}
	straight := mlp(tensor.NewRNG(1))
	optA := optim.NewAdam(0.01)
	dataA := makeData()
	for i := 0; i < 40; i++ {
		x, y := dataA()
		TrainClassifierStep(straight, optA, x, y, 0)
	}

	phase1 := mlp(tensor.NewRNG(1))
	optB := optim.NewAdam(0.01)
	dataB := makeData()
	for i := 0; i < 20; i++ {
		x, y := dataB()
		TrainClassifierStep(phase1, optB, x, y, 0)
	}
	var buf bytes.Buffer
	if err := SaveCheckpointWithOptimizer(&buf, phase1, optB, 20); err != nil {
		t.Fatal(err)
	}
	resumed := mlp(tensor.NewRNG(5))
	optC := optim.NewAdam(0.01)
	step, err := LoadCheckpointWithOptimizer(&buf, resumed, optC)
	if err != nil {
		t.Fatal(err)
	}
	if step != 20 {
		t.Fatalf("step %d", step)
	}
	for i := 0; i < 20; i++ {
		x, y := dataB()
		TrainClassifierStep(resumed, optC, x, y, 0)
	}
	for i, p := range straight.Params() {
		if !tensor.Equal(p.Value, resumed.Params()[i].Value, 1e-6) {
			t.Fatalf("adam checkpoint resume diverged at %s", p.Name)
		}
	}
	// A weights-only checkpoint must be rejected by the optimizer loader.
	var plain bytes.Buffer
	if err := SaveCheckpoint(&plain, phase1, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpointWithOptimizer(&plain, resumed, optim.NewAdam(0.01)); err == nil {
		t.Fatal("missing optimizer state must be rejected")
	}
}

func TestLinearScalingRuleRecoversLargeBatchTraining(t *testing.T) {
	// The recipe the paper cites for data-parallel scaling (Goyal et
	// al.): when the batch grows kx, scale the learning rate kx and warm
	// it up. Large-batch training with the rule should roughly match
	// small-batch final loss; without it (same small LR), large-batch
	// training lags behind.
	evalLoss := func(net *Network, rng *tensor.RNG) float32 {
		x, y := twoClusterBatch(rng, 256)
		return EvalClassifier(net, x, y).Loss
	}
	train := func(batch, steps int, sched optim.Schedule) *Network {
		rng := tensor.NewRNG(30)
		net := mlp(tensor.NewRNG(2))
		opt := optim.NewSGD(0)
		for i := 0; i < steps; i++ {
			opt.LR = sched.LR(i)
			x, y := twoClusterBatch(rng, batch)
			TrainClassifierStep(net, opt, x, y, 0)
		}
		return net
	}
	evalRNG := tensor.NewRNG(31)
	// Baseline: small batch, 160 updates at lr 0.05.
	small := evalLoss(train(8, 160, optim.ConstSchedule(0.05)), evalRNG)
	// Large batch sees 8x fewer updates for the same samples.
	naive := evalLoss(train(64, 20, optim.ConstSchedule(0.05)), evalRNG)
	scaled := evalLoss(train(64, 20, optim.Warmup{Base: 0.4, WarmupSteps: 5, After: optim.ConstSchedule(0.4)}), evalRNG)
	if scaled >= naive {
		t.Fatalf("linear scaling (%.4f) should beat the naive small LR (%.4f)", scaled, naive)
	}
	if scaled > small*3 {
		t.Fatalf("scaled large-batch loss %.4f too far from small-batch %.4f", scaled, small)
	}
}

func TestFixedSetOverfittingDetected(t *testing.T) {
	// Train on a tiny, mostly-noise fixed set: the model memorizes the
	// training split (accuracy ~1.0) while held-out accuracy stays far
	// lower — the classic overfitting signature the epoch/split
	// machinery exists to expose.
	rng := tensor.NewRNG(4)
	net := New("mlp", layers.NewSequential("mlp",
		layers.NewDense("fc1", 16, 128, rng),
		layers.NewReLU("relu1"),
		layers.NewDense("fc2", 128, 4, rng),
	))
	src := data.NewImageSource(tensor.NewRNG(5), 1, 4, 4, 4, 3.0) // mostly noise
	set := data.NewFixedImageSet(src, 40)
	trainSet, valSet := set.Split(0.5, tensor.NewRNG(6))
	opt := optim.NewAdam(0.01)
	trainSet.Epochs(250, 10, tensor.NewRNG(7), func(_ int, x *tensor.Tensor, labels []int) {
		TrainClassifierStep(net, opt, x.Reshape(x.Dim(0), -1), labels, 0)
	})
	evalOn := func(s *data.FixedImageSet) float64 {
		return EvalClassifier(net, s.X.Reshape(s.Len(), -1), s.Labels).Accuracy
	}
	trainAcc, valAcc := evalOn(trainSet), evalOn(valSet)
	if trainAcc < 0.95 {
		t.Fatalf("model failed to memorize the training split (%.2f)", trainAcc)
	}
	if trainAcc-valAcc < 0.2 {
		t.Fatalf("no overfitting gap detected: train %.2f vs val %.2f", trainAcc, valAcc)
	}
}

// smallCNN builds a conv classifier exercising the pooled conv, BN, and
// dense paths end to end.
func smallCNN(rng *tensor.RNG) *Network {
	return New("cnn", layers.NewSequential("cnn",
		layers.NewConv2D("c1", 1, 4, 3, 1, 1, rng),
		layers.NewBatchNorm2D("bn1", 4),
		layers.NewReLU("r1"),
		layers.NewGlobalAvgPool2D("gap"),
		layers.NewDense("fc", 4, 3, rng),
	))
}

// TestTrainingPooledMatchesUnpooled pins that buffer reuse cannot change
// training: the same steps with the arena on and off produce exactly the
// same losses, accuracies, and final weights.
func TestTrainingPooledMatchesUnpooled(t *testing.T) {
	src := data.NewImageSource(tensor.NewRNG(9), 1, 6, 6, 3, 0.3)
	batches := make([]data.ImageBatch, 6)
	for i := range batches {
		batches[i] = src.Batch(8)
	}
	run := func(pooled bool) ([]float32, *Network) {
		prev := tensor.SetPooling(pooled)
		defer tensor.SetPooling(prev)
		net := smallCNN(tensor.NewRNG(10))
		opt := optim.NewAdam(0.01)
		losses := make([]float32, len(batches))
		for i, b := range batches {
			losses[i] = TrainClassifierStep(net, opt, b.X, b.Labels, 5).Loss
		}
		return losses, net
	}
	wantLoss, wantNet := run(false)
	gotLoss, gotNet := run(true)
	for i := range wantLoss {
		if gotLoss[i] != wantLoss[i] {
			t.Fatalf("step %d: pooled loss %v != unpooled %v", i, gotLoss[i], wantLoss[i])
		}
	}
	wantParams, gotParams := wantNet.Root.Params(), gotNet.Root.Params()
	for i := range wantParams {
		if !tensor.Equal(gotParams[i].Value, wantParams[i].Value, 0) {
			t.Fatalf("param %s differs between pooled and unpooled training", wantParams[i].Name)
		}
	}
}
