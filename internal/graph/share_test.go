package graph

import (
	"bytes"
	"testing"

	"tbd/internal/layers"
	"tbd/internal/tensor"
)

func shareTestNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	return New("share-twin", layers.NewSequential("mlp",
		layers.NewDenseAct("fc1", 8, 16, tensor.ActReLU, rng),
		layers.NewDense("fc2", 16, 4, rng),
	))
}

// TestShareParamsFrom: after sharing, two differently-initialized
// networks produce bit-identical forwards, report aliased storage, and a
// checkpoint loaded into the primary is visible through the replica
// without any further copying — the fleet hot-swap handoff.
func TestShareParamsFrom(t *testing.T) {
	primary := shareTestNet(1)
	replica := shareTestNet(2) // different seed: provably different weights

	x := tensor.RandNormal(tensor.NewRNG(7), 0, 1, 3, 8)
	before := append([]float32(nil), replica.Infer(x).Data()...)
	wantPrimary := append([]float32(nil), primary.Infer(x).Data()...)

	if replica.SharesParamsWith(primary) {
		t.Fatal("independent networks report shared params")
	}
	if err := replica.ShareParamsFrom(primary); err != nil {
		t.Fatal(err)
	}
	if !replica.SharesParamsWith(primary) {
		t.Fatal("SharesParamsWith false after ShareParamsFrom")
	}

	got := replica.Infer(x).Data()
	differs := false
	for i := range got {
		if got[i] != wantPrimary[i] {
			t.Fatalf("shared replica elem %d = %g, primary %g (must be bit-identical)", i, got[i], wantPrimary[i])
		}
		if got[i] != before[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("replica output unchanged by sharing; test is vacuous")
	}

	// Checkpoint handoff: loading into the primary must flow through the
	// replica's aliased storage.
	donor := shareTestNet(3)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, donor, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf, primary); err != nil {
		t.Fatal(err)
	}
	wantDonor := donor.Infer(x).Data()
	gotReplica := replica.Infer(x).Data()
	for i := range wantDonor {
		if gotReplica[i] != wantDonor[i] {
			t.Fatalf("post-checkpoint replica elem %d = %g, donor %g", i, gotReplica[i], wantDonor[i])
		}
	}
}

// TestShareParamsFromMismatch: architecture drift is refused before any
// parameter is aliased.
func TestShareParamsFromMismatch(t *testing.T) {
	n := shareTestNet(1)
	rng := tensor.NewRNG(2)
	other := New("other", layers.NewSequential("mlp",
		layers.NewDenseAct("fc1", 8, 16, tensor.ActReLU, rng),
		layers.NewDense("fc2", 16, 5, rng), // different output width
	))
	if err := n.ShareParamsFrom(other); err == nil {
		t.Fatal("shape mismatch not refused")
	}
	if n.SharesParamsWith(other) {
		t.Fatal("network left sharing after refused ShareParamsFrom")
	}
	if err := n.ShareParamsFrom("not a network"); err == nil {
		t.Fatal("non-network source not refused")
	}
	// Self-share is a no-op, not an error.
	if err := n.ShareParamsFrom(n); err != nil {
		t.Fatal(err)
	}
}
