package graph

import (
	"encoding/gob"
	"fmt"
	"io"

	"tbd/internal/optim"
)

// Checkpointing: serialize a network's trainable state so long training
// runs (days at paper scale, §3.3) can stop and resume. The format is a
// versioned gob stream of named parameter payloads; loading validates
// names and shapes against the live network, so architecture drift is
// caught instead of silently mis-restored.

// checkpointMagic guards against feeding arbitrary gob streams in.
const checkpointMagic = "tbd-checkpoint-v1"

// checkpointFile is the serialized form.
type checkpointFile struct {
	Magic  string
	Name   string
	Step   int64
	Params []checkpointParam
	// Optimizer holds stateful-optimizer slots when saved with
	// SaveCheckpointWithOptimizer (nil Kind otherwise).
	Optimizer optim.OptimizerState
}

type checkpointParam struct {
	Name  string
	Shape []int
	Data  []float32
}

// SaveCheckpoint writes the network's parameters (and a step counter) to
// w.
func SaveCheckpoint(w io.Writer, n *Network, step int64) error {
	file := checkpointFile{Magic: checkpointMagic, Name: n.Name, Step: step}
	for _, p := range n.Params() {
		file.Params = append(file.Params, checkpointParam{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape()...),
			Data:  append([]float32(nil), p.Value.Data()...),
		})
	}
	return gob.NewEncoder(w).Encode(&file)
}

// LoadCheckpoint restores parameters saved by SaveCheckpoint into n and
// returns the stored step counter. Every parameter must match by name,
// order, and shape.
func LoadCheckpoint(r io.Reader, n *Network) (int64, error) {
	var file checkpointFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return 0, fmt.Errorf("graph: decode checkpoint: %w", err)
	}
	if file.Magic != checkpointMagic {
		return 0, fmt.Errorf("graph: not a tbd checkpoint (magic %q)", file.Magic)
	}
	params := n.Params()
	if len(file.Params) != len(params) {
		return 0, fmt.Errorf("graph: checkpoint has %d parameters, network has %d", len(file.Params), len(params))
	}
	for i, cp := range file.Params {
		p := params[i]
		if cp.Name != p.Name {
			return 0, fmt.Errorf("graph: parameter %d is %q in checkpoint but %q in network", i, cp.Name, p.Name)
		}
		if len(cp.Data) != p.Value.Numel() {
			return 0, fmt.Errorf("graph: parameter %q has %d elements in checkpoint, %d in network", cp.Name, len(cp.Data), p.Value.Numel())
		}
		shape := p.Value.Shape()
		if len(cp.Shape) != len(shape) {
			return 0, fmt.Errorf("graph: parameter %q rank mismatch", cp.Name)
		}
		for d := range shape {
			if cp.Shape[d] != shape[d] {
				return 0, fmt.Errorf("graph: parameter %q shape %v in checkpoint, %v in network", cp.Name, cp.Shape, shape)
			}
		}
	}
	// Validate fully before mutating anything.
	for i, cp := range file.Params {
		copy(params[i].Value.Data(), cp.Data)
	}
	return file.Step, nil
}

// SaveCheckpointWithOptimizer writes the network and a stateful
// optimizer's slots together, so stateful training (Momentum, Adam,
// RMSProp) resumes on the exact trajectory.
func SaveCheckpointWithOptimizer(w io.Writer, n *Network, opt optim.Stateful, step int64) error {
	file := checkpointFile{Magic: checkpointMagic, Name: n.Name, Step: step, Optimizer: opt.Snapshot(n.Params())}
	for _, p := range n.Params() {
		file.Params = append(file.Params, checkpointParam{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape()...),
			Data:  append([]float32(nil), p.Value.Data()...),
		})
	}
	return gob.NewEncoder(w).Encode(&file)
}

// LoadCheckpointWithOptimizer restores both network weights and optimizer
// state written by SaveCheckpointWithOptimizer.
func LoadCheckpointWithOptimizer(r io.Reader, n *Network, opt optim.Stateful) (int64, error) {
	// Decode once into the shared loader by re-encoding is wasteful;
	// decode directly here with the same validation.
	var file checkpointFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return 0, fmt.Errorf("graph: decode checkpoint: %w", err)
	}
	if file.Magic != checkpointMagic {
		return 0, fmt.Errorf("graph: not a tbd checkpoint (magic %q)", file.Magic)
	}
	if err := installParams(n, file.Params); err != nil {
		return 0, err
	}
	if file.Optimizer.Kind == "" {
		return 0, fmt.Errorf("graph: checkpoint has no optimizer state")
	}
	if err := opt.Restore(n.Params(), file.Optimizer); err != nil {
		return 0, err
	}
	return file.Step, nil
}

// installParams validates and copies checkpointed parameters into n.
func installParams(n *Network, cps []checkpointParam) error {
	params := n.Params()
	if len(cps) != len(params) {
		return fmt.Errorf("graph: checkpoint has %d parameters, network has %d", len(cps), len(params))
	}
	for i, cp := range cps {
		p := params[i]
		if cp.Name != p.Name {
			return fmt.Errorf("graph: parameter %d is %q in checkpoint but %q in network", i, cp.Name, p.Name)
		}
		if len(cp.Data) != p.Value.Numel() {
			return fmt.Errorf("graph: parameter %q has %d elements in checkpoint, %d in network", cp.Name, len(cp.Data), p.Value.Numel())
		}
	}
	for i, cp := range cps {
		copy(params[i].Value.Data(), cp.Data)
	}
	return nil
}
