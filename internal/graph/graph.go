// Package graph ties layers into trainable networks and provides the
// train-step drivers (forward, loss, backward, update) used by the numeric
// twins of the TBD benchmark models.
package graph

import (
	"fmt"

	"tbd/internal/layers"
	"tbd/internal/optim"
	"tbd/internal/prof"
	"tbd/internal/tensor"
)

// sampleStepMemory feeds the profiler's memory watermark with the paper's
// five-category breakdown at the point of peak liveness in a training step:
// right after backward, when weights, weight gradients, stashed feature
// maps, pool workspace, and optimizer state all coexist.
func sampleStepMemory(n *Network, opt optim.Optimizer) {
	if !prof.Enabled() {
		return
	}
	_, packBytes := tensor.PoolRetainedBytes()
	prof.SampleMemory(n.WeightBytes(), n.GradientBytes(), n.StashBytes(), packBytes, opt.StateBytes())
}

// Network is a trainable model: a root layer (usually a container) plus
// bookkeeping for parameters and memory accounting.
type Network struct {
	Name string
	Root layers.Layer

	// params caches the flattened parameter list. Walking the layer tree
	// appends dozens of small slices per call, and the training step asks
	// for the list every iteration; networks are assembled before training
	// starts, so caching after the first walk is safe.
	params []*layers.Param
}

// New wraps a root layer as a network.
func New(name string, root layers.Layer) *Network {
	return &Network{Name: name, Root: root}
}

// Forward runs the network.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return n.Root.Forward(x, train)
}

// Backward propagates gradients.
func (n *Network) Backward(gy *tensor.Tensor) *tensor.Tensor {
	return n.Root.Backward(gy)
}

// Infer runs a forward pass in evaluation mode: no feature maps are
// stashed for backward (StashBytes stays zero), batch-norm layers use
// their running statistics, and no optimizer state is touched — the
// frozen execution path the serving layer builds on. The returned tensor
// is owned by the network's layers and is valid only until the next
// forward call; callers that keep results must copy them out first.
//
// Like Forward, Infer is not safe for concurrent use: layers recycle
// their output buffers across calls, so each goroutine needs its own
// Network (see internal/serve for the batching front end that serializes
// concurrent requests onto one network).
func (n *Network) Infer(x *tensor.Tensor) *tensor.Tensor {
	return n.Forward(x, false)
}

// Params returns all trainable parameters. The list is computed on the
// first call and cached; layers must not be added to the network after
// training begins.
func (n *Network) Params() []*layers.Param {
	if n.params == nil {
		n.params = n.Root.Params()
	}
	return n.params
}

// ParamCount returns the number of trainable scalars.
func (n *Network) ParamCount() int64 { return layers.ParamCount(n.Params()) }

// FreezeHalfWeights converts every fp16-capable layer's weights to half
// storage for inference (see layers.Dense.FreezeHalfWeights) and reports
// whether the network supported the conversion. The cached parameter
// list is invalidated: frozen matrices leave it, so ParamCount and the
// gradient footprint drop to the still-trainable remainder. Irreversible;
// training a frozen network panics.
func (n *Network) FreezeHalfWeights() bool {
	f, ok := n.Root.(layers.HalfFreezer)
	if !ok {
		return false
	}
	f.FreezeHalfWeights()
	n.params = nil
	return true
}

// WeightBytes returns the weight memory footprint, storage-format aware:
// fp16-frozen layers count two bytes per weight.
func (n *Network) WeightBytes() int64 {
	if s, ok := n.Root.(layers.WeightSizer); ok {
		return s.ResidentWeightBytes()
	}
	return n.ParamCount() * 4
}

// GradientBytes returns the weight-gradient footprint (same as weights).
func (n *Network) GradientBytes() int64 { return n.ParamCount() * 4 }

// StashBytes returns the feature-map bytes currently cached for backward.
func (n *Network) StashBytes() int64 { return n.Root.StashBytes() }

// StepResult reports one training step.
type StepResult struct {
	Loss     float32
	Accuracy float64
	GradNorm float32
}

// TrainClassifierStep runs one supervised step: forward, softmax
// cross-entropy against labels, backward, optional gradient clipping
// (clip <= 0 disables), and an optimizer update.
func TrainClassifierStep(n *Network, opt optim.Optimizer, x *tensor.Tensor, labels []int, clip float32) StepResult {
	step := prof.Begin(prof.CatPhase, "step")
	params := n.Params()
	optim.ZeroGrads(params)
	sp := prof.BeginChild(&step, prof.CatPhase, "phase.forward")
	logits := n.Forward(x, true)
	sp.End()
	sp = prof.BeginChild(&step, prof.CatPhase, "phase.loss")
	loss, grad := tensor.CrossEntropy(logits, labels)
	sp.End()
	sp = prof.BeginChild(&step, prof.CatPhase, "phase.backward")
	n.Backward(grad)
	sp.End()
	// The loss gradient is this step's own buffer and dead after backward;
	// the logits and input gradient belong to the layers that produced
	// them and are recycled on the next step.
	grad.Release()
	// Post-backward is the step's liveness peak: stashed feature maps are
	// still held, gradients are full, and optimizer state exists.
	sampleStepMemory(n, opt)
	var norm float32
	if clip > 0 {
		norm = optim.ClipGradNorm(params, clip)
	}
	sp = prof.BeginChild(&step, prof.CatPhase, "phase.update")
	opt.Step(params)
	sp.End()
	step.End()
	return StepResult{Loss: loss, Accuracy: tensor.Accuracy(logits, labels), GradNorm: norm}
}

// EvalClassifier computes loss and accuracy without updating weights.
func EvalClassifier(n *Network, x *tensor.Tensor, labels []int) StepResult {
	logits := n.Forward(x, false)
	loss, grad := tensor.CrossEntropy(logits, labels)
	grad.Release()
	return StepResult{Loss: loss, Accuracy: tensor.Accuracy(logits, labels)}
}

// TrainClassifierAccumulated runs one effective training step as k
// micro-batches with gradient accumulation: the same update as one big
// batch, at 1/k the peak feature-map memory — the batch/memory trade
// behind the paper's Observation 12. microX/microLabels hold the k
// shards; their sizes must be equal.
func TrainClassifierAccumulated(n *Network, opt optim.Optimizer, microX []*tensor.Tensor, microLabels [][]int, clip float32) StepResult {
	k := len(microX)
	if k == 0 || len(microLabels) != k {
		panic(fmt.Sprintf("graph: %d micro-batches with %d label sets", k, len(microLabels)))
	}
	step := prof.Begin(prof.CatPhase, "step")
	params := n.Params()
	optim.ZeroGrads(params)
	var lossSum float64
	var correct, total int
	inv := 1 / float32(k)
	for i := 0; i < k; i++ {
		sp := prof.BeginChild(&step, prof.CatPhase, "phase.forward")
		logits := n.Forward(microX[i], true)
		sp.End()
		sp = prof.BeginChild(&step, prof.CatPhase, "phase.loss")
		loss, grad := tensor.CrossEntropy(logits, microLabels[i])
		sp.End()
		// CrossEntropy already averages within the micro-batch; scale by
		// 1/k so the accumulated gradient averages over the full batch.
		grad.ScaleInPlace(inv)
		sp = prof.BeginChild(&step, prof.CatPhase, "phase.backward")
		n.Backward(grad)
		sp.End()
		grad.Release()
		sampleStepMemory(n, opt)
		lossSum += float64(loss)
		pred := tensor.ArgmaxRows(logits)
		for j, p := range pred {
			if p == microLabels[i][j] {
				correct++
			}
			total++
			_ = j
		}
	}
	var norm float32
	if clip > 0 {
		norm = optim.ClipGradNorm(params, clip)
	}
	sp := prof.BeginChild(&step, prof.CatPhase, "phase.update")
	opt.Step(params)
	sp.End()
	step.End()
	return StepResult{
		Loss:     float32(lossSum / float64(k)),
		Accuracy: float64(correct) / float64(total),
		GradNorm: norm,
	}
}

// TrainSequenceStep runs one step of per-token classification for sequence
// models: logits [N*T, V] against flat labels.
func TrainSequenceStep(n *Network, opt optim.Optimizer, x *tensor.Tensor, labels []int, clip float32) StepResult {
	step := prof.Begin(prof.CatPhase, "step")
	params := n.Params()
	optim.ZeroGrads(params)
	sp := prof.BeginChild(&step, prof.CatPhase, "phase.forward")
	out := n.Forward(x, true)
	sp.End()
	rows := len(labels)
	if out.Numel()%rows != 0 {
		panic(fmt.Sprintf("graph: output %v incompatible with %d labels", out.Shape(), rows))
	}
	logits := out.Reshape(rows, out.Numel()/rows)
	sp = prof.BeginChild(&step, prof.CatPhase, "phase.loss")
	loss, grad := tensor.CrossEntropy(logits, labels)
	sp.End()
	sp = prof.BeginChild(&step, prof.CatPhase, "phase.backward")
	n.Backward(grad.Reshape(out.Shape()...))
	sp.End()
	grad.Release()
	sampleStepMemory(n, opt)
	var norm float32
	if clip > 0 {
		norm = optim.ClipGradNorm(params, clip)
	}
	sp = prof.BeginChild(&step, prof.CatPhase, "phase.update")
	opt.Step(params)
	sp.End()
	step.End()
	return StepResult{Loss: loss, Accuracy: tensor.Accuracy(logits, labels), GradNorm: norm}
}
