package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Parameter flattening and fingerprinting for the distributed runtime
// (internal/dist): the ring all-reduce exchanges one contiguous gradient
// vector instead of dozens of ragged per-layer slices, and multi-process
// training proves replica consistency by hashing weight bytes.

// GradElems returns the total number of gradient scalars across all
// trainable parameters — the flat-vector length GradVector produces.
func (n *Network) GradElems() int {
	var total int
	for _, p := range n.Params() {
		total += p.Grad.Numel()
	}
	return total
}

// GradVector gathers every parameter gradient into one flat vector in
// parameter order. dst is reused when it has exactly GradElems capacity
// behavior-wise (len(dst) == GradElems()); otherwise a fresh slice is
// allocated. The concatenation order is the Params() walk order, which is
// fixed by network construction, so the same network always flattens the
// same way — the precondition for the ring's fixed reduction order.
func (n *Network) GradVector(dst []float32) []float32 {
	total := n.GradElems()
	if len(dst) != total {
		dst = make([]float32, total)
	}
	off := 0
	for _, p := range n.Params() {
		off += copy(dst[off:], p.Grad.Data())
	}
	return dst
}

// SetGradVector scatters a flat gradient vector (as produced by
// GradVector) back into the parameter gradients.
func (n *Network) SetGradVector(src []float32) {
	if len(src) != n.GradElems() {
		panic(fmt.Sprintf("graph: gradient vector has %d elements, network needs %d", len(src), n.GradElems()))
	}
	off := 0
	for _, p := range n.Params() {
		g := p.Grad.Data()
		off += copy(g, src[off:off+len(g)])
	}
}

// WeightsHash returns an FNV-1a fingerprint over the exact bit patterns
// of every trainable parameter in Params() order. Two networks hash
// equal iff their weights are bit-identical — the check the distributed
// runtime uses to verify that N workers finished a run with the same
// model, and that a repeated run reproduced the same trajectory.
func (n *Network) WeightsHash() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, p := range n.Params() {
		for _, v := range p.Value.Data() {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			// fnv.Write never returns an error.
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64()
}
