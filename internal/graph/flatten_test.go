package graph

import (
	"math"
	"testing"

	"tbd/internal/layers"
	"tbd/internal/optim"
	"tbd/internal/tensor"
)

func flattenNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	return New("flat-mlp", layers.NewSequential("mlp",
		layers.NewDense("fc1", 4, 8, rng),
		layers.NewReLU("relu"),
		layers.NewDense("fc2", 8, 3, rng),
	))
}

func TestGradVectorRoundTrip(t *testing.T) {
	n := flattenNet(1)
	// Produce real gradients.
	x := tensor.RandNormal(tensor.NewRNG(2), 0, 1, 6, 4)
	TrainClassifierStep(n, optim.NewSGD(0), x, []int{0, 1, 2, 0, 1, 2}, 0)

	flat := n.GradVector(nil)
	if len(flat) != n.GradElems() {
		t.Fatalf("flat vector has %d elements, GradElems says %d", len(flat), n.GradElems())
	}
	want := int(n.ParamCount())
	if len(flat) != want {
		t.Fatalf("GradElems %d != ParamCount %d", len(flat), want)
	}

	// The flat vector must be the in-order concatenation.
	off := 0
	for _, p := range n.Params() {
		for _, g := range p.Grad.Data() {
			if flat[off] != g {
				t.Fatalf("flat[%d] = %g, want %g", off, flat[off], g)
			}
			off++
		}
	}

	// Scatter back after scaling: gradients must carry the change exactly.
	for i := range flat {
		flat[i] *= 0.5
	}
	n.SetGradVector(flat)
	off = 0
	for _, p := range n.Params() {
		for _, g := range p.Grad.Data() {
			if g != flat[off] {
				t.Fatalf("scatter mismatch at %d: %g vs %g", off, g, flat[off])
			}
			off++
		}
	}

	// A correctly sized destination is reused, not reallocated.
	again := n.GradVector(flat)
	if &again[0] != &flat[0] {
		t.Fatal("GradVector allocated despite a right-sized dst")
	}
}

func TestSetGradVectorValidates(t *testing.T) {
	n := flattenNet(3)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong-length gradient vector")
		}
	}()
	n.SetGradVector(make([]float32, 3))
}

func TestWeightsHashDetectsSingleBitChange(t *testing.T) {
	a, b := flattenNet(7), flattenNet(7)
	if a.WeightsHash() != b.WeightsHash() {
		t.Fatal("identically seeded networks must hash equal")
	}
	// Flip the low mantissa bit of one scalar: hash must change.
	d := b.Params()[0].Value.Data()
	d[0] = flipLowBit(d[0])
	if a.WeightsHash() == b.WeightsHash() {
		t.Fatal("hash ignored a one-bit weight change")
	}
}

func flipLowBit(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) ^ 1)
}

func TestWeightsHashDiffersAcrossSeeds(t *testing.T) {
	if flattenNet(1).WeightsHash() == flattenNet(2).WeightsHash() {
		t.Fatal("different initializations should not collide")
	}
}
