package graph

import (
	"testing"

	"tbd/internal/layers"
	"tbd/internal/optim"
	"tbd/internal/tensor"
)

// TestFusedNetworkTrainsBitIdentical trains the same small CNN twice — once
// with fused conv/dense activation epilogues, once with standalone
// activation layers — on identical data with identical seeds, and requires
// the loss and every parameter to stay bitwise equal at every step. This is
// the end-to-end statement of the fusion contract: swapping NewConv2D+ReLU
// for NewConv2DAct (and Dense likewise) changes the training trajectory by
// exactly nothing.
func TestFusedNetworkTrainsBitIdentical(t *testing.T) {
	build := func(fused bool) *Network {
		rng := tensor.NewRNG(77)
		// Activation layers draw nothing from the RNG, so both variants
		// consume identical init streams.
		var ls []layers.Layer
		if fused {
			ls = []layers.Layer{
				layers.NewConv2DAct("c1", 1, 4, 3, 1, 1, tensor.ActReLU, rng),
				layers.NewMaxPool2D("p1", 2, 2),
				layers.NewFlatten("flat"),
				layers.NewDenseAct("fc1", 4*4*4, 16, tensor.ActTanh, rng),
				layers.NewDense("out", 16, 3, rng),
			}
		} else {
			ls = []layers.Layer{
				layers.NewConv2D("c1", 1, 4, 3, 1, 1, rng),
				layers.NewReLU("r1"),
				layers.NewMaxPool2D("p1", 2, 2),
				layers.NewFlatten("flat"),
				layers.NewDense("fc1", 4*4*4, 16, rng),
				layers.NewTanh("t1"),
				layers.NewDense("out", 16, 3, rng),
			}
		}
		return New("cnn", layers.NewSequential("root", ls...))
	}

	for _, workers := range []int{1, 3} {
		tensor.SetParallelism(workers)
		fusedNet, plainNet := build(true), build(false)
		// Exercise the rewritten optimizer kernels in-loop too.
		optF := optim.NewMomentum(0.05, 0.9)
		optF.Nesterov = true
		optP := optim.NewMomentum(0.05, 0.9)
		optP.Nesterov = true

		data := tensor.NewRNG(123)
		for step := 0; step < 8; step++ {
			x := tensor.RandNormal(data, 0, 1, 4, 1, 8, 8)
			labels := []int{step % 3, (step + 1) % 3, 0, 2}
			rf := TrainClassifierStep(fusedNet, optF, x, labels, 0)
			rp := TrainClassifierStep(plainNet, optP, x, labels, 0)
			if rf.Loss != rp.Loss {
				t.Fatalf("workers=%d step %d: fused loss %v != plain loss %v", workers, step, rf.Loss, rp.Loss)
			}
			pf, pp := fusedNet.Params(), plainNet.Params()
			if len(pf) != len(pp) {
				t.Fatalf("param count mismatch: %d vs %d", len(pf), len(pp))
			}
			for i := range pf {
				if !tensor.Equal(pf[i].Value, pp[i].Value, 0) {
					t.Fatalf("workers=%d step %d: param %s diverged from %s", workers, step, pf[i].Name, pp[i].Name)
				}
			}
		}
	}
	tensor.SetParallelism(1)
}
