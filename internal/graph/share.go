package graph

import (
	"fmt"
)

// Weight sharing for replicated serving: a fleet of N inference replicas
// needs N independent layer stacks (layers recycle their output buffers,
// so a network is single-goroutine property) but only ONE copy of the
// weights. ShareParamsFrom turns N same-architecture networks into views
// over a single parameter snapshot by aliasing every parameter tensor's
// backing storage, so the fleet's resident weight bytes stay those of one
// model and a checkpoint loaded into the primary is immediately visible
// to every sharing replica.

// ShareParamsFrom repoints every trainable parameter of n at src's
// backing storage. src must be another *Network with an identical
// parameter list (same names, order, and shapes) — typically a second
// instance built by the same constructor. After sharing, n reads src's
// weights on every forward; n's own initial weights become garbage.
//
// The receiver must be used forward-only afterwards: training either
// network would write gradients through shared storage with no
// synchronization. Non-parameter state (batch-norm running statistics,
// layer output buffers) stays per-network, which is exactly what
// concurrent replicas need.
//
// The src parameter is typed any so forward-only consumers
// (internal/serve) can reach this method through a duck-typed interface
// without importing graph; passing anything but a *Network is an error.
func (n *Network) ShareParamsFrom(src any) error {
	o, ok := src.(*Network)
	if !ok {
		return fmt.Errorf("graph: ShareParamsFrom needs a *graph.Network, got %T", src)
	}
	if n == o {
		return nil
	}
	dst, from := n.Params(), o.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("graph: ShareParamsFrom: network has %d parameters, source has %d", len(dst), len(from))
	}
	// Validate the full list before aliasing anything, so a mismatch
	// cannot leave the network half-shared.
	for i, p := range dst {
		q := from[i]
		if p.Name != q.Name {
			return fmt.Errorf("graph: ShareParamsFrom: parameter %d is %q here but %q in source", i, p.Name, q.Name)
		}
		if !p.Value.SameShape(q.Value) {
			return fmt.Errorf("graph: ShareParamsFrom: parameter %q shape %v here, %v in source",
				p.Name, p.Value.Shape(), q.Value.Shape())
		}
	}
	for i, p := range dst {
		p.Value.ShareStorage(from[i].Value)
	}
	return nil
}

// SharesParamsWith reports whether every parameter of n aliases the
// corresponding parameter storage of o (the post-ShareParamsFrom state).
func (n *Network) SharesParamsWith(o *Network) bool {
	a, b := n.Params(), o.Params()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, bv := a[i].Value.Data(), b[i].Value.Data()
		if len(av) == 0 || len(bv) == 0 || &av[0] != &bv[0] {
			return false
		}
	}
	return true
}
