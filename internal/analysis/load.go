package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	escapes map[string]map[int]escapeComment
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader typechecks module packages using only the standard library:
// `go list -export` resolves imports and produces compiler export data,
// and go/importer's gc importer consumes it. Syntax and full type
// information are built per analyzed package with go/parser + go/types;
// dependencies (standard library included) are imported from export
// data, so no third-party loader is needed.
type Loader struct {
	// ModRoot is the module root directory (where go.mod lives).
	ModRoot string
	// Workers bounds the typechecking fan-out in Load; 0 or 1 means
	// serial. Parsing and typechecking are per-package independent —
	// token.FileSet is internally locked and the shared gc importer is
	// wrapped in a mutex (its export-data cache is not) — so package
	// order never affects positions or results.
	Workers int

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModRoot(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{ModRoot: root, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = &lockedImporter{imp: importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})}
	return l, nil
}

// lockedImporter serializes access to the gc importer, whose package
// cache is not safe for concurrent Import calls.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

func (l *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from, ok := l.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return l.imp.Import(path)
}

// findModRoot walks up from dir until it finds go.mod.
func findModRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the package patterns (e.g. "./...") and returns the
// matched module packages, parsed with comments and fully typechecked.
// Test files are not loaded; the analyzers enforce invariants on the
// shipped code.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	entries, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var targets []listEntry
	for _, e := range entries {
		if !e.DepOnly {
			targets = append(targets, e)
		}
	}
	workers := l.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pkgs[i], errs[i] = l.check(targets[i].ImportPath, targets[i].Dir, targets[i].GoFiles)
			}
		}()
	}
	for i := range targets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and typechecks a single directory of Go files outside
// the module build graph (analyzer test fixtures under testdata) under
// the given synthetic import path. deps lists the module packages the
// fixture files import; their export data — and the standard library's —
// is resolved first.
func (l *Loader) LoadDir(dir, importPath string, deps ...string) (*Package, error) {
	if len(deps) > 0 {
		if _, err := l.list(deps); err != nil {
			return nil, err
		}
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	return l.check(importPath, dir, names)
}

// list runs `go list -e -deps -export` over the patterns, records every
// export data file it produced, and returns the entries.
func (l *Loader) list(patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// check parses the named files and typechecks them as one package.
func (l *Loader) check(importPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// goFilesIn lists the non-test .go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
