// Package analysis is tbd's custom lint driver: five repo-specific
// analyzers, built on nothing but the standard library's go/parser,
// go/ast, and go/types, that enforce the engine invariants the Go
// compiler cannot see. Each analyzer guards a bug class this codebase
// has already paid to find once:
//
//   - poolcheck: every tensor.Pool acquisition must be released,
//     returned, or stashed under the documented one-step lifetime
//     contract (the PR-1 wide-kernel review bug class).
//   - spancheck: every prof span Begin must reach End in the same
//     function, so the profiler's phase accounting stays balanced.
//   - determinism: kernel hot paths (internal/tensor, internal/kernels,
//     internal/optim) must stay bit-identical across parallelism levels
//     — no map iteration, wall clocks, or math/rand.
//   - lockcheck: struct fields annotated "guarded by <mu>" may only be
//     touched by functions that lock that mutex (flow-insensitive).
//   - errcheck-lite: no silently discarded error returns in cmd/ and
//     internal/serve.
//
// Deliberate exceptions are annotated in source with //tbd: escape
// comments (see the per-analyzer docs); the driver enforces that the
// determinism escape carries a justification string.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col display and
// machine-readable export.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement shown by tbdvet -list.
	Doc string
	Run func(*Pass)
}

// All is the full analyzer suite in reporting order.
var All = []*Analyzer{Poolcheck, Spancheck, Determinism, Lockcheck, ErrcheckLite}

// Pass carries one (analyzer, package) run and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the packages and returns the
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// escapeRe matches a //tbd: escape comment and captures (tag, argument).
var escapeRe = regexp.MustCompile(`//\s*tbd:([a-z-]+)\s*(.*)`)

// Escape looks for a //tbd:<tag> comment attached to pos: on the same
// source line or the line immediately above. It returns the text after
// the tag (the justification, possibly empty) and whether the escape was
// found.
func (p *Pass) Escape(pos token.Pos, tag string) (arg string, ok bool) {
	position := p.Pkg.Fset.Position(pos)
	lines := p.Pkg.escapeLines(position.Filename)
	for _, line := range []int{position.Line, position.Line - 1} {
		if e, found := lines[line]; found && e.tag == tag {
			return e.arg, true
		}
	}
	return "", false
}

// FuncEscape reports whether fn's doc comment carries //tbd:<tag>.
func FuncEscape(fn *ast.FuncDecl, tag string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if m := escapeRe.FindStringSubmatch(c.Text); m != nil && m[1] == tag {
			return true
		}
	}
	return false
}

type escapeComment struct {
	tag string
	arg string
}

// escapeLines lazily indexes a file's //tbd: comments by line number.
func (pkg *Package) escapeLines(filename string) map[int]escapeComment {
	if pkg.escapes == nil {
		pkg.escapes = make(map[string]map[int]escapeComment)
	}
	if m, ok := pkg.escapes[filename]; ok {
		return m
	}
	m := make(map[int]escapeComment)
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if match := escapeRe.FindStringSubmatch(c.Text); match != nil {
					line := pkg.Fset.Position(c.Pos()).Line
					m[line] = escapeComment{tag: match[1], arg: strings.TrimSpace(match[2])}
				}
			}
		}
	}
	pkg.escapes[filename] = m
	return m
}

// calleeName returns the fully qualified name of the function or method
// called by call: "path/to/pkg.Func" for package functions and
// "path/to/pkg.Type.Method" for methods (pointer receivers unwrapped).
// It returns "" for builtins, conversions, and calls of function values.
func (p *Pass) calleeName(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	return qualifiedFuncName(fn)
}

func qualifiedFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// objectOf resolves an identifier to its object (definition or use).
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// mentions reports whether expr references the variable v anywhere.
func (p *Pass) mentions(n ast.Node, v types.Object) bool {
	if n == nil || v == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.objectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

// funcBodies yields every function body in the package — declarations
// and function literals — paired with the enclosing declaration (nil Doc
// handling is the caller's concern for literals).
func (p *Pass) funcBodies(visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(fd, lit.Body)
				}
				return true
			})
		}
	}
}
