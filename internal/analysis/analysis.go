// Package analysis is tbd's custom lint engine: eight repo-specific
// analyzers, built on nothing but the standard library's go/parser,
// go/ast, and go/types, that enforce the engine invariants the Go
// compiler cannot see.
//
// # Two-phase architecture
//
// The engine runs in two phases. Phase 1 (summarize) builds a Program
// over every loaded package: a call graph keyed by qualified function
// name plus per-function effect summaries — which parameters a function
// releases, borrows, or sinks (pooled-buffer flow), whether it hands a
// fresh pool acquisition back to its caller, and (per package) which
// mutexes a function locks or requires held at entry. Summaries are
// computed to a fixpoint, so wrappers of wrappers summarize correctly.
// Phase 2 (check) runs the analyzers; because the summaries are frozen
// after phase 1, packages are checked concurrently (see RunParallel)
// with findings merged and re-sorted so output is byte-identical to a
// serial run.
//
// Each analyzer guards a bug class this codebase has already paid to
// find once:
//
//   - poolcheck: every tensor.Pool acquisition must be released,
//     returned, or stashed under the documented one-step lifetime
//     contract — including acquisitions that flow through callees
//     (a helper that returns a fresh buffer obligates its caller; a
//     helper that merely borrows a buffer does not discharge the
//     caller's obligation; a helper that releases its argument counts
//     as a release, and releasing again is a double release).
//   - spancheck: every prof span Begin must reach End in the same
//     function, so the profiler's phase accounting stays balanced.
//   - determinism: hot paths that must stay bit-identical across
//     parallelism levels and replays (internal/tensor, internal/kernels,
//     internal/optim, internal/whatif) — no map iteration, wall clocks,
//     or math/rand.
//   - lockcheck: struct fields annotated "guarded by <mu>" may only be
//     touched with that mutex held; //tbd:locked-by-caller claims are
//     verified at every call site against the caller's own held set.
//   - errcheck-lite: no silently discarded error returns in cmd/ and
//     internal/serve.
//   - atomiccheck: a field ever accessed through the function-style
//     sync/atomic API is never accessed plainly elsewhere, and 64-bit
//     atomic fields are 64-bit aligned in their structs.
//   - goleak: every goroutine launched in the concurrent subsystems
//     (internal/dist, internal/serve, internal/data, internal/prof) has
//     a provable shutdown edge.
//   - wirecheck: every constant of a //tbd:wire-kinds vocabulary appears
//     on both the encode and the decode side of its hand-rolled
//     protocol.
//
// Deliberate exceptions are annotated in source with //tbd: escape
// comments (see the per-analyzer docs); escapes that can hide real bugs
// (nondeterministic-ok, fire-and-forget, atomic-ok, wire-ok,
// pre-publication) require a justification string — an empty one is
// itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one finding, positioned for file:line:col display and
// machine-readable export.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement shown by tbdvet -list.
	Doc string
	Run func(*Pass)
}

// All is the full analyzer suite in reporting order.
var All = []*Analyzer{Poolcheck, Spancheck, Determinism, Lockcheck, ErrcheckLite, Atomiccheck, Goleak, Wirecheck}

// Pass carries one (analyzer, package) run and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the phase-1 program: cross-package function index and
	// effect summaries, read-only during the pass.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Stats describes one engine run, for tbdvet -stats.
type Stats struct {
	Packages  int
	Functions int
	Summaries int
	Wall      time.Duration
}

// Run executes the given analyzers over the packages serially and
// returns the findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunParallel(pkgs, analyzers, 1)
	return diags
}

// RunParallel is Run with the phase-2 checks fanned out over a bounded
// worker pool, one package at a time per worker. Phase 1 (the Program
// build) stays serial — summaries must be complete before any check
// reads them. The merged findings are re-sorted under a total order, so
// the output is byte-identical to the serial run.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, Stats) {
	start := time.Now()
	prog := NewProgram(pkgs)
	if workers < 1 {
		workers = 1
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				for _, a := range analyzers {
					a.Run(&Pass{Analyzer: a, Pkg: pkgs[i], Prog: prog, diags: &perPkg[i]})
				}
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags, Stats{
		Packages:  len(pkgs),
		Functions: len(prog.Funcs),
		Summaries: len(prog.Pool),
		Wall:      time.Since(start),
	}
}

// escapeRe matches a //tbd: escape comment and captures (tag, argument).
var escapeRe = regexp.MustCompile(`//\s*tbd:([a-z-]+)\s*(.*)`)

// Escape looks for a //tbd:<tag> comment attached to pos: on the same
// source line or the line immediately above. It returns the text after
// the tag (the justification, possibly empty) and whether the escape was
// found.
func (p *Pass) Escape(pos token.Pos, tag string) (arg string, ok bool) {
	position := p.Pkg.Fset.Position(pos)
	lines := p.Pkg.escapeLines(position.Filename)
	for _, line := range []int{position.Line, position.Line - 1} {
		if e, found := lines[line]; found && e.tag == tag {
			return e.arg, true
		}
	}
	return "", false
}

// FuncEscape reports whether fn's doc comment carries //tbd:<tag>.
func FuncEscape(fn *ast.FuncDecl, tag string) bool {
	_, ok := FuncEscapeArg(fn, tag)
	return ok
}

// FuncEscapeArg is FuncEscape returning the text after the tag (the
// justification, possibly empty).
func FuncEscapeArg(fn *ast.FuncDecl, tag string) (arg string, ok bool) {
	if fn == nil || fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if m := escapeRe.FindStringSubmatch(c.Text); m != nil && m[1] == tag {
			return strings.TrimSpace(m[2]), true
		}
	}
	return "", false
}

type escapeComment struct {
	tag string
	arg string
}

// escapeLines lazily indexes a file's //tbd: comments by line number.
// The cache is built per package before any concurrent access matters:
// analyzers for one package always run on the same worker.
func (pkg *Package) escapeLines(filename string) map[int]escapeComment {
	if pkg.escapes == nil {
		pkg.escapes = make(map[string]map[int]escapeComment)
	}
	if m, ok := pkg.escapes[filename]; ok {
		return m
	}
	m := make(map[int]escapeComment)
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if match := escapeRe.FindStringSubmatch(c.Text); match != nil {
					line := pkg.Fset.Position(c.Pos()).Line
					m[line] = escapeComment{tag: match[1], arg: strings.TrimSpace(match[2])}
				}
			}
		}
	}
	pkg.escapes[filename] = m
	return m
}

// calleeName returns the fully qualified name of the function or method
// called by call: "path/to/pkg.Func" for package functions and
// "path/to/pkg.Type.Method" for methods (pointer receivers unwrapped).
// It returns "" for builtins, conversions, and calls of function values.
func (pkg *Package) calleeName(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	return qualifiedFuncName(fn)
}

func (p *Pass) calleeName(call *ast.CallExpr) string { return p.Pkg.calleeName(call) }

func qualifiedFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// objectOf resolves an identifier to its object (definition or use).
func (pkg *Package) objectOf(id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

func (p *Pass) objectOf(id *ast.Ident) types.Object { return p.Pkg.objectOf(id) }

// mentions reports whether expr references the variable v anywhere.
func (pkg *Package) mentions(n ast.Node, v types.Object) bool {
	if n == nil || v == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.objectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

func (p *Pass) mentions(n ast.Node, v types.Object) bool { return p.Pkg.mentions(n, v) }

// funcBodies yields every function body in the package — declarations
// and function literals — paired with the enclosing declaration (nil Doc
// handling is the caller's concern for literals).
func (p *Pass) funcBodies(visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(fd, lit.Body)
				}
				return true
			})
		}
	}
}
