package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomiccheck enforces the all-or-nothing contract of the function-style
// sync/atomic API: once any code path accesses a variable through
// atomic.LoadX/StoreX/AddX/SwapX/CompareAndSwapX, every other access
// must go through sync/atomic too — a single plain read or write
// reintroduces the data race the atomics were bought to remove. It also
// checks that every 64-bit atomically-accessed struct field sits at an
// 8-byte-aligned offset under 32-bit layout rules ("gc"/386), the
// alignment sync/atomic documents as the caller's responsibility on
// 32-bit platforms.
//
// Typed atomics (atomic.Int64, atomic.Uint64, ...) are exempt: the type
// system already forbids plain access, which is why the serving fleet
// uses them. The escape is //tbd:atomic-ok <why> on the offending line;
// the justification is mandatory.
var Atomiccheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "variables accessed via sync/atomic are never accessed plainly, and 64-bit atomic fields are 64-bit aligned",
	Run:  runAtomiccheck,
}

// align32 is the 32-bit layout sync/atomic's alignment bug bites under.
var align32 = types.SizesFor("gc", "386")

func runAtomiccheck(p *Pass) {
	// Pass 1: every variable that is the address operand of a
	// function-style sync/atomic call, plus the identifiers making up
	// those operands (so pass 2 does not flag the atomic uses
	// themselves).
	atomicVars := map[types.Object]token.Pos{}
	atomicUse := map[*ast.Ident]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(p, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			obj := markAtomicOperand(p, addr.X, atomicUse)
			if obj != nil {
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: plain accesses to those variables.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicUse[id] {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, isAtomic := atomicVars[obj]; !isAtomic {
				return true
			}
			if arg, ok := p.Escape(id.Pos(), "atomic-ok"); ok {
				if arg == "" {
					p.Reportf(id.Pos(), "//tbd:atomic-ok needs a justification (why is a plain access of %s race-free?)", obj.Name())
				}
				return true
			}
			p.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere but accessed plainly here; use the atomic API or //tbd:atomic-ok <why>", obj.Name())
			return true
		})
	}

	// Pass 3: 64-bit alignment of atomic struct fields under 32-bit
	// layout.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			tv, ok := p.Pkg.Info.Types[st]
			if !ok {
				return true
			}
			strct, ok := tv.Type.Underlying().(*types.Struct)
			if !ok || strct.NumFields() == 0 {
				return true
			}
			fields := make([]*types.Var, strct.NumFields())
			for i := range fields {
				fields[i] = strct.Field(i)
			}
			offsets := align32.Offsetsof(fields)
			for i, fv := range fields {
				if _, isAtomic := atomicVars[fv]; !isAtomic {
					continue
				}
				if align32.Sizeof(fv.Type()) != 8 || offsets[i]%8 == 0 {
					continue
				}
				pos := fieldDeclPos(p, st, fv)
				if _, ok := p.Escape(pos, "atomic-ok"); ok {
					continue
				}
				p.Reportf(pos, "64-bit atomic field %s is at offset %d under 32-bit layout; sync/atomic requires 8-byte alignment — move it to the front of the struct", fv.Name(), offsets[i])
			}
			return true
		})
	}
}

// isAtomicFuncCall reports whether call invokes a package-level function
// of sync/atomic (the typed atomics' methods do not count — they cannot
// be misused).
func isAtomicFuncCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// markAtomicOperand resolves the variable an atomic address operand
// names (s.f -> field f, counter -> var counter), marking every
// identifier inside the operand as a sanctioned atomic use.
func markAtomicOperand(p *Pass, expr ast.Expr, atomicUse map[*ast.Ident]bool) types.Object {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			atomicUse[id] = true
		}
		return true
	})
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := p.Pkg.objectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := p.Pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return markAtomicOperand(p, e.X, atomicUse)
	}
	return nil
}

// fieldDeclPos finds the declaration position of field fv inside the
// struct literal st, falling back to the struct itself.
func fieldDeclPos(p *Pass, st *ast.StructType, fv *types.Var) token.Pos {
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if p.Pkg.Info.Defs[name] == fv {
				return name.Pos()
			}
		}
	}
	return st.Pos()
}
