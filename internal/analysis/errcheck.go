package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckLite flags silently discarded error returns in the packages
// where a dropped error reaches users: the command-line entry points
// (cmd/...) and the serving subsystem (internal/serve). A call whose
// final result is an error, used as a bare statement, is a finding.
//
// Deliberate discards are written `_ = f()` — the standard, visible
// idiom — so no //tbd: escape exists for this analyzer. Two classes are
// exempt to keep the check high-signal ("lite"):
//
//   - the fmt print family (terminal writes; errors are conventionally
//     ignored), and strings.Builder / bytes.Buffer writes (documented
//     never to fail);
//   - deferred calls (`defer f.Close()` on read paths is idiomatic; the
//     write paths in this repo check Close explicitly).
var ErrcheckLite = &Analyzer{
	Name: "errcheck-lite",
	Doc:  "no silently discarded error returns in cmd/ and internal/serve",
	Run:  runErrcheckLite,
}

// errcheckPrefixes scope the analyzer.
var errcheckPrefixes = []string{
	"tbd/cmd",
	"tbd/internal/serve",
}

func inErrcheckScope(pkgPath string) bool {
	for _, prefix := range errcheckPrefixes {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return true
		}
	}
	return false
}

func runErrcheckLite(p *Pass) {
	if !inErrcheckScope(p.Pkg.Path) {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeName(call)
			if strings.HasPrefix(callee, "fmt.") ||
				strings.HasPrefix(callee, "strings.Builder.") ||
				strings.HasPrefix(callee, "bytes.Buffer.") {
				return true
			}
			t := p.Pkg.Info.TypeOf(call)
			if t == nil {
				return true
			}
			last := t
			if tuple, isTuple := t.(*types.Tuple); isTuple {
				if tuple.Len() == 0 {
					return true
				}
				last = tuple.At(tuple.Len() - 1).Type()
			}
			if !types.Identical(last, errType) {
				return true
			}
			display := callee
			if display == "" {
				display = types.ExprString(call.Fun)
			}
			p.Reportf(call.Pos(), "error returned by %s is silently discarded (handle it or assign to _)", shortName(display))
			return true
		})
	}
}
