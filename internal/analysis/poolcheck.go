package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolcheck enforces the engine's one-step pooled-buffer lifetime
// contract (documented on layers.Layer and tensor.Release): every
// buffer taken from the tensor pool must, within the acquiring
// function, be released, returned to the caller, or stashed into a
// struct field that recycles its previous occupant. It also flags
// double releases and acquisitions whose result is discarded outright.
//
// The analysis is per-function and path-aware for straight-line code,
// if/else, switch, and loops: a Release that only happens on one branch
// while another branch returns leaks the buffer and is reported. Three
// resolutions silence it:
//
//   - v.Release() (or putPackBuf(v) for pack scratch) on every path,
//     including via defer;
//   - returning the buffer (ownership transfers to the caller per the
//     one-step contract);
//   - stashing it into a field, provided the same function released that
//     field's previous buffer first (the recycle idiom:
//     "l.out.Release(); ...; l.out = out"), or the stash carries a
//     //tbd:retain annotation naming the site that releases it.
//
// The check is interprocedural through the phase-1 summaries: a call to
// a function that RETURNS a fresh acquisition is itself an acquisition
// (leak-through-callee); a call passing the buffer to a function that
// RELEASES its parameter counts as a release at the call site (and
// releasing again afterwards is a double release); a call to a function
// that merely BORROWS its parameter leaves the obligation with the
// caller. Only buffers passed to functions outside the analyzed program
// — or to summarized sinks (stores, returns, captures) — transfer
// ownership conservatively, as does storing in a container or capturing
// in a closure locally.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled tensor/pack buffers must be released, returned, or stashed with recycle on every path",
	Run:  runPoolcheck,
}

// poolAcquires are the pool entry points whose results carry ownership.
var poolAcquires = map[string]bool{
	"tbd/internal/tensor.Acquire":      true,
	"tbd/internal/tensor.AcquireDirty": true,
	"tbd/internal/tensor.acquireDirty": true,
	"tbd/internal/tensor.getPackBuf":   true,
	"tbd/internal/tensor.Pool.Get":     true,
	"tbd/internal/tensor.Pool.get":     true,
	"tbd/internal/tensor.Pool.getPack": true,
}

// poolReleaseMethods release their receiver; poolReleaseFuncs release
// their first argument.
var poolReleaseMethods = map[string]bool{
	"tbd/internal/tensor.Tensor.Release": true,
}
var poolReleaseFuncs = map[string]bool{
	"tbd/internal/tensor.putPackBuf":   true,
	"tbd/internal/tensor.Pool.put":     true,
	"tbd/internal/tensor.Pool.putPack": true,
}

// isPoolAcquire reports whether call hands back a fresh pooled buffer:
// a hard-coded pool entry point or (via the phase-1 summaries) any
// module function that returns an acquisition.
func (p *Pass) isPoolAcquire(call *ast.CallExpr) bool {
	name := p.calleeName(call)
	if poolAcquires[name] {
		return true
	}
	return p.Prog != nil && p.Prog.ReturnsAcquired(name)
}

func runPoolcheck(p *Pass) {
	p.funcBodies(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		pc := &poolChecker{pass: p, decl: decl}
		pc.collectFieldReleases(body)
		// Walk once per acquisition so each site gets its own path
		// verdict.
		for _, site := range pc.findAcquires(body) {
			pc.checkSite(body, site)
		}
	})
}

// acquireSite is one pool acquisition and how its result is bound.
type acquireSite struct {
	call *ast.CallExpr
	// v is the local the result is assigned to; nil when the result
	// flows directly (return/arg/stash) or is discarded.
	v types.Object
	// stash is the field lvalue for direct `x.f = Acquire(...)` form.
	stash ast.Expr
	// discarded marks `Acquire(...)` as a bare statement or `_ =`.
	discarded bool
}

type poolChecker struct {
	pass *Pass
	decl *ast.FuncDecl
	// fieldReleases maps a rendered selector chain ("l.out") to the
	// positions of `<chain>.Release()` calls in this function.
	fieldReleases map[string][]token.Pos
}

// collectFieldReleases records every `x.f.Release()` in the body so the
// stash rule can check "previous occupant released before the stash".
func (pc *poolChecker) collectFieldReleases(body *ast.BlockStmt) {
	pc.fieldReleases = map[string][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !poolReleaseMethods[pc.pass.calleeName(call)] {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr); isSel {
				chain := types.ExprString(sel.X)
				pc.fieldReleases[chain] = append(pc.fieldReleases[chain], call.Pos())
			}
		}
		return true
	})
}

// findAcquires locates pool acquisitions in body (not descending into
// nested function literals — those are walked as their own bodies) and
// classifies each by the statement that binds its result.
func (pc *poolChecker) findAcquires(body *ast.BlockStmt) []acquireSite {
	var sites []acquireSite
	seen := map[*ast.CallExpr]bool{}
	classify := func(stmt ast.Stmt) {
		assign, ok := stmt.(*ast.AssignStmt)
		if ok && len(assign.Lhs) == len(assign.Rhs) {
			for i, rhs := range assign.Rhs {
				call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
				if !isCall || !pc.pass.isPoolAcquire(call) {
					continue
				}
				seen[call] = true
				site := acquireSite{call: call}
				switch lhs := ast.Unparen(assign.Lhs[i]).(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						site.discarded = true
					} else {
						site.v = pc.pass.objectOf(lhs)
					}
				case *ast.SelectorExpr:
					site.stash = lhs
				default:
					// Index/deref lvalues: stored into a container the
					// analyzer cannot track; treated as a transfer.
					continue
				}
				sites = append(sites, site)
			}
		}
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, isCall := ast.Unparen(es.X).(*ast.CallExpr); isCall && pc.pass.isPoolAcquire(call) {
				seen[call] = true
				sites = append(sites, acquireSite{call: call, discarded: true})
			}
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case ast.Stmt:
			classify(n)
		case *ast.CallExpr:
			// Any acquisition not bound by a statement above flows
			// directly (return value, call argument, composite literal
			// element): ownership transfers and no tracking is needed.
			if pc.pass.isPoolAcquire(n) && !seen[n] {
				seen[n] = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return sites
}

// checkSite reports the site's defects: discarded results, stash without
// recycle, unreleased paths, and double releases.
func (pc *poolChecker) checkSite(body *ast.BlockStmt, site acquireSite) {
	name := pc.pass.calleeName(site.call)
	if site.discarded {
		pc.pass.Reportf(site.call.Pos(), "result of %s is discarded: the pooled buffer can never be released", shortName(name))
		return
	}
	if site.stash != nil {
		pc.checkStash(site.stash, site.call.Pos())
		return
	}
	if site.v == nil {
		return
	}
	w := &poolWalker{pc: pc, site: site}
	st := w.walkStmts(body.List, poolState{})
	if w.reported {
		return
	}
	if st.live && !st.terminated && st.resolved != resolvedAlways && !st.deferRel {
		pc.leakReport(site, "is not released, returned, or stashed")
	}
}

// checkStash enforces the recycle idiom on a field stash: the previous
// occupant must have been released earlier in the same function, or the
// stash must carry //tbd:retain.
func (pc *poolChecker) checkStash(lhs ast.Expr, pos token.Pos) {
	chain := types.ExprString(lhs)
	for _, rel := range pc.fieldReleases[chain] {
		if rel < pos {
			return
		}
	}
	if _, ok := pc.pass.Escape(pos, "retain"); ok {
		return
	}
	if FuncEscape(pc.decl, "retain") {
		return
	}
	pc.pass.Reportf(pos, "pooled buffer stashed into %s without releasing the previous one (call %s.Release() first, or annotate //tbd:retain if it is released elsewhere)", chain, chain)
}

func (pc *poolChecker) leakReport(site acquireSite, what string) {
	if _, ok := pc.pass.Escape(site.call.Pos(), "retain"); ok {
		return
	}
	if FuncEscape(pc.decl, "retain") {
		return
	}
	name := "buffer"
	if site.v != nil {
		name = site.v.Name()
	}
	pc.pass.Reportf(site.call.Pos(), "pooled buffer %s %s on every path (missing Release; annotate //tbd:retain if retention is intended)", name, what)
}

// Resolution lattice for one tracked buffer.
const (
	resolvedNever uint8 = iota
	resolvedMaybe
	resolvedAlways
)

type poolState struct {
	live       bool // the acquire statement has executed
	resolved   uint8
	byRelease  bool // resolvedAlways was reached via an explicit release
	deferRel   bool // a deferred release covers every later exit
	terminated bool // control flow cannot reach past this point
}

// mergeBranch joins the states of two alternative paths.
func mergeBranch(a, b poolState) poolState {
	if a.terminated && b.terminated {
		return poolState{live: a.live || b.live, resolved: resolvedAlways, terminated: true}
	}
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	// A path on which the acquisition never executed carries no
	// obligation; the live path's state is the whole story.
	if a.live && !b.live {
		return a
	}
	if b.live && !a.live {
		return b
	}
	out := poolState{live: a.live || b.live}
	switch {
	case a.resolved == resolvedAlways && b.resolved == resolvedAlways:
		out.resolved = resolvedAlways
	case a.resolved != resolvedNever || b.resolved != resolvedNever:
		out.resolved = resolvedMaybe
	}
	out.byRelease = a.byRelease && b.byRelease
	out.deferRel = a.deferRel && b.deferRel
	return out
}

// poolWalker walks one function body tracking one acquisition.
type poolWalker struct {
	pc       *poolChecker
	site     acquireSite
	reported bool
}

func (w *poolWalker) walkStmts(stmts []ast.Stmt, st poolState) poolState {
	for _, s := range stmts {
		st = w.walkStmt(s, st)
	}
	return st
}

func (w *poolWalker) walkStmt(stmt ast.Stmt, st poolState) poolState {
	if st.terminated {
		return st
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		st = w.scan(s.Cond, st)
		thenSt := w.walkStmts(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt = w.walkStmt(s.Else, st)
		}
		return mergeBranch(thenSt, elseSt)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.scan(s.Cond, st)
		}
		bodySt := w.walkStmts(s.Body.List, st)
		if s.Post != nil {
			bodySt = w.walkStmt(s.Post, bodySt)
		}
		return mergeLoop(st, bodySt)
	case *ast.RangeStmt:
		st = w.scan(s.X, st)
		return mergeLoop(st, w.walkStmts(s.Body.List, st))
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.scan(s.Tag, st)
		}
		return w.walkClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		st = w.scanStmtExprs(s.Assign, st)
		return w.walkClauses(s.Body, st)
	case *ast.SelectStmt:
		return w.walkClauses(s.Body, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.scan(r, st)
		}
		if st.live && st.resolved != resolvedAlways && !st.deferRel {
			if returnMentions(s, w.pc.pass, w.site.v) {
				st.resolved = resolvedAlways
			} else if !w.reported {
				w.reported = true
				w.pc.leakReport(w.site, fmt.Sprintf("leaks on the return path at line %d",
					w.pc.pass.Pkg.Fset.Position(s.Pos()).Line))
			}
		}
		st.terminated = true
		return st
	case *ast.BranchStmt:
		st.terminated = true
		return st
	case *ast.DeferStmt:
		if w.isReleaseOfV(s.Call) || w.litMentionsV(s.Call) {
			st.deferRel = true
			if st.resolved != resolvedAlways {
				st.resolved = resolvedAlways
			}
			return st
		}
		return w.scan(s.Call, st)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				st = w.scan(s.X, st)
				st.terminated = true
				return st
			}
		}
		return w.scan(s.X, st)
	default:
		return w.scanStmtExprs(stmt, st)
	}
}

// walkClauses handles switch/select bodies: every clause is an
// alternative path; without a default clause the untaken path keeps the
// pre-switch state.
func (w *poolWalker) walkClauses(body *ast.BlockStmt, st poolState) poolState {
	merged := poolState{terminated: true} // identity for mergeBranch
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				st = w.scan(e, st)
			}
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			clauseSt := st
			if cc.Comm != nil {
				clauseSt = w.walkStmt(cc.Comm, clauseSt)
			} else {
				hasDefault = true
			}
			merged = mergeBranch(merged, w.walkStmts(cc.Body, clauseSt))
			continue
		}
		merged = mergeBranch(merged, w.walkStmts(stmts, st))
	}
	if !hasDefault {
		merged = mergeBranch(merged, st)
	}
	return merged
}

// mergeLoop folds a may-execute loop body into the pre-loop state. An
// acquisition made inside the body carries a per-iteration obligation,
// so the body's own verdict stands; for a buffer acquired before the
// loop, a resolution inside the body is only a maybe.
func mergeLoop(pre, body poolState) poolState {
	if body.live && !pre.live {
		return body
	}
	out := pre
	out.live = pre.live || body.live
	if pre.resolved != resolvedAlways && body.resolved != resolvedNever {
		out.resolved = resolvedMaybe
	}
	return out
}

// scanStmtExprs applies the expression scan to every expression operand
// of a simple statement.
func (w *poolWalker) scanStmtExprs(stmt ast.Stmt, st poolState) poolState {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st = w.scan(r, st)
		}
		st = w.scanAssignLhs(s, st)
		return st
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.scan(v, st)
					}
				}
			}
		}
		return st
	case *ast.SendStmt:
		st = w.scan(s.Chan, st)
		return w.scan(s.Value, st)
	case *ast.GoStmt:
		return w.scan(s.Call, st)
	case *ast.IncDecStmt:
		return w.scan(s.X, st)
	case *ast.ExprStmt:
		return w.scan(s.X, st)
	}
	return st
}

// scanAssignLhs handles the tracked buffer appearing on either side of
// an assignment: `w := v` aliases it (transfer), `x.f = v` stashes it,
// `v = ...` rebinds the name while the old buffer may still be live.
func (w *poolWalker) scanAssignLhs(s *ast.AssignStmt, st poolState) poolState {
	v := w.site.v
	if v == nil {
		return st
	}
	for i, lhs := range s.Lhs {
		lhs = ast.Unparen(lhs)
		var rhs ast.Expr
		if len(s.Lhs) == len(s.Rhs) {
			rhs = ast.Unparen(s.Rhs[i])
		}
		rhsIsV := false
		if id, ok := rhs.(*ast.Ident); ok && w.pc.pass.objectOf(id) == v {
			rhsIsV = true
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := w.pc.pass.objectOf(l)
			if call, ok := rhs.(*ast.CallExpr); ok && call == w.site.call {
				// The acquisition's own binding statement.
				continue
			}
			if obj == v && st.live && rhs != nil {
				// Rebinding the name while the original buffer is
				// unreleased: the buffer becomes unreachable.
				if st.resolved == resolvedNever && !w.reported {
					w.reported = true
					w.pc.leakReport(w.site, "is overwritten before being released")
				}
				st.resolved = resolvedAlways
			} else if obj != v && rhsIsV && st.live {
				// Aliased into another variable: conservatively a
				// transfer.
				st.resolved = resolvedAlways
			}
		case *ast.SelectorExpr:
			if rhsIsV && st.live {
				w.pc.checkStash(l, s.Pos())
				st.resolved = resolvedAlways
			}
		default:
			if rhsIsV && st.live {
				st.resolved = resolvedAlways
			}
		}
	}
	return st
}

// scan inspects one expression tree for events on the tracked buffer:
// the acquisition itself, releases (including double releases),
// ownership transfers into calls/literals/closures.
func (w *poolWalker) scan(expr ast.Expr, st poolState) poolState {
	if expr == nil {
		return st
	}
	v := w.site.v
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if v != nil && w.pc.pass.mentions(n, v) {
				// Captured by a closure: assume the closure manages it.
				st.resolved = resolvedAlways
				st.byRelease = false
			}
			return false
		case *ast.CallExpr:
			if n == w.site.call {
				st.live = true
				return true
			}
			if w.isReleaseOfV(n) {
				if st.live && st.resolved == resolvedAlways && st.byRelease && !w.reported {
					w.reported = true
					w.pc.pass.Reportf(n.Pos(), "double release of pooled buffer %s (already released on this path)", v.Name())
				}
				st.resolved = resolvedAlways
				st.byRelease = true
				return false
			}
			// v passed as a bare argument: the callee's summary decides.
			// A summarized borrower leaves the obligation here; a
			// summarized releaser was handled by isReleaseOfV above;
			// everything else (sinks, unknown callees) transfers
			// ownership conservatively.
			if v != nil {
				for i, arg := range n.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok || w.pc.pass.objectOf(id) != v {
						continue
					}
					if prog := w.pc.pass.Prog; prog != nil {
						if eff, known := prog.ParamEffect(w.pc.pass.calleeName(n), i); known && eff == ParamBorrows {
							continue
						}
					}
					st.resolved = resolvedAlways
					st.byRelease = false
				}
			}
			return true
		case *ast.CompositeLit:
			if v != nil && w.pc.pass.mentions(n, v) {
				st.resolved = resolvedAlways
				st.byRelease = false
			}
			return true
		}
		return true
	}
	ast.Inspect(expr, visit)
	return st
}

// isReleaseOfV reports whether call releases the tracked buffer: a
// Release method on it, a put-style function taking it as the first
// argument, or (via the phase-1 summaries) any module function whose
// parameter effect at the buffer's argument position is ParamReleases.
func (w *poolWalker) isReleaseOfV(call *ast.CallExpr) bool {
	v := w.site.v
	if v == nil {
		return false
	}
	name := w.pc.pass.calleeName(call)
	if poolReleaseMethods[name] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				return w.pc.pass.objectOf(id) == v
			}
		}
		return false
	}
	if poolReleaseFuncs[name] && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			return w.pc.pass.objectOf(id) == v
		}
	}
	if prog := w.pc.pass.Prog; prog != nil {
		for i, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && w.pc.pass.objectOf(id) == v {
				if eff, known := prog.ParamEffect(name, i); known && eff == ParamReleases {
					return true
				}
			}
		}
	}
	return false
}

// litMentionsV reports whether a deferred call's function literal or
// arguments capture the tracked buffer (a deferred closure releasing it).
func (w *poolWalker) litMentionsV(call *ast.CallExpr) bool {
	return w.site.v != nil && w.pc.pass.mentions(call, w.site.v)
}

func returnMentions(ret *ast.ReturnStmt, p *Pass, v types.Object) bool {
	if v == nil {
		return false
	}
	for _, r := range ret.Results {
		if p.mentions(r, v) {
			return true
		}
	}
	return false
}

func shortName(qualified string) string {
	if i := strings.LastIndexByte(qualified, '/'); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}
