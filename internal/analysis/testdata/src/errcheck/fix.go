// Package cmdfix exercises errcheck-lite. The driver loads it under the
// synthetic import path tbd/cmd/fix so it falls in the analyzer's scope.
package cmdfix

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

// bad drops the error on the floor.
func bad() {
	work() // want "error returned by fix.work is silently discarded"
}

// badTuple drops the error of a multi-result call.
func badTuple(name string) {
	os.Create(name) // want "error returned by os.Create is silently discarded"
}

// good checks or visibly discards: clean.
func good() error {
	if err := work(); err != nil {
		return err
	}
	_ = work()
	return nil
}

// exempt covers the documented never-fail writers: clean.
func exempt() string {
	fmt.Println("ok")
	var sb strings.Builder
	sb.WriteString("x")
	return sb.String()
}

// deferred Close on a read path is idiomatic: clean.
func deferred(f *os.File) {
	defer f.Close()
}
