// Package wirefix exercises wirecheck: a //tbd:wire-kinds vocabulary
// whose constants must appear on both the encode and decode sides of a
// hand-rolled protocol.
package wirefix

// The protocol vocabulary under check.
//
//tbd:wire-kinds
const (
	kindPing = "ping"
	kindPong = "pong" // want "wire kind kindPong is encoded but never decoded"
	kindAck  = "ack"  // want "wire kind kindAck is decoded but never encoded"
	kindGone = "gone" // want "wire kind kindGone is never used on either side"
	kindV2   = "v2"   //tbd:wire-ok reserved for the next protocol rev
	//tbd:wire-ok
	kindOld = "old" // want "needs a justification"
)

// unchecked is an ordinary const group: wirecheck ignores it even
// though it is one-sided.
const (
	colorRed  = "red"
	colorBlue = "blue"
)

type msg struct {
	kind string
}

// encode puts kindPing and kindPong on the wire; kindPong never comes
// back out of a decoder.
func encode(pong bool) msg {
	if pong {
		return msg{kind: kindPong}
	}
	return msg{kind: kindPing}
}

// decode handles kindPing in a switch and kindAck via comparison, but
// nothing ever encodes kindAck.
func decode(m msg) int {
	switch m.kind {
	case kindPing:
		return 1
	}
	if m.kind == kindAck {
		return 2
	}
	_ = colorRed
	_ = colorBlue
	return 0
}
