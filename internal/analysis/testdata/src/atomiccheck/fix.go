// Package atomicfix exercises atomiccheck: mixed atomic/plain access to
// the same variable and 64-bit alignment of atomic struct fields.
package atomicfix

import "sync/atomic"

type counter struct {
	hits  int64 // accessed via atomic.AddInt64/LoadInt64
	extra int
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

// plainRead mixes a plain read into an atomic field's access set.
func (c *counter) plainRead() int64 {
	return c.hits // want "hits is accessed with sync/atomic elsewhere but accessed plainly here"
}

// plainWrite is the write-side version of the same race.
func (c *counter) plainWrite() {
	c.hits = 0 // want "hits is accessed with sync/atomic elsewhere but accessed plainly here"
}

// total is a package-level variable with the same contract.
var total int64

func bump() {
	atomic.AddInt64(&total, 1)
}

func snapshot() int64 {
	return total // want "total is accessed with sync/atomic elsewhere but accessed plainly here"
}

// reset documents a race-free plain access with a justified escape:
// clean.
func reset() {
	total = 0 //tbd:atomic-ok runs before any worker goroutine starts
}

// resetBare carries the escape without saying why.
func resetBare() {
	//tbd:atomic-ok
	total = 0 // want "needs a justification"
}

// gauge puts a 64-bit atomic field after a 4-byte one: offset 4 under
// 32-bit layout, which sync/atomic documents as a fault.
type gauge struct {
	ready int32
	val   int64 // want "64-bit atomic field val is at offset 4 under 32-bit layout"
}

func (g *gauge) set(v int64) {
	atomic.StoreInt64(&g.val, v)
}

func (g *gauge) get() int64 {
	return atomic.LoadInt64(&g.val)
}

// alignedGauge leads with the 64-bit field: clean.
type alignedGauge struct {
	val   int64 // atomic; offset 0 is always aligned
	ready int32
}

func (g *alignedGauge) set(v int64) {
	atomic.StoreInt64(&g.val, v)
}

// typed atomics are exempt: the type system already forbids plain
// access.
var typedTotal atomic.Int64

func bumpTyped() int64 {
	typedTotal.Add(1)
	return typedTotal.Load()
}
