// Package tensorfix exercises determinism. The driver loads it under the
// synthetic import path tbd/internal/tensor/fix so it counts as a kernel
// hot path.
package tensorfix

import (
	"math/rand" // want "import of math/rand in kernel hot path"
	"time"
)

var _ = rand.Int

// sum iterates a map: the order is randomized per run.
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration .nondeterministic order. in kernel hot path"
		s += v
	}
	return s
}

// timed reads the wall clock.
func timed() int64 {
	return time.Now().UnixNano() // want "wall-clock read .time.Now. in kernel hot path"
}

// justified carries a justified escape: clean.
func justified(m map[string]int) int {
	n := 0
	//tbd:nondeterministic-ok order-independent count over map values
	for range m {
		n++
	}
	return n
}

// unjustified carries the escape tag without a reason.
func unjustified(m map[int]int) int {
	n := 0
	//tbd:nondeterministic-ok
	for range m { // want "nondeterministic-ok requires a justification string"
		n++
	}
	return n
}
