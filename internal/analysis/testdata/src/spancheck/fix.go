// Package spanfix exercises spancheck: profiler spans that are (and are
// not) balanced by a matching End in the same function.
package spanfix

import "tbd/internal/prof"

// deferred is the standard idiom: clean.
func deferred() {
	sp := prof.Begin(prof.CatKernel, "k")
	defer sp.End()
}

// sequential reuses the variable after closing each phase: clean.
func sequential() {
	sp := prof.Begin(prof.CatPhase, "a")
	sp.End()
	sp = prof.Begin(prof.CatPhase, "b")
	sp.End()
}

// reassigned overwrites an open span: the first phase silently vanishes.
func reassigned() {
	sp := prof.Begin(prof.CatPhase, "a")
	sp = prof.Begin(prof.CatPhase, "b") // want "span sp reassigned while the span begun at line"
	sp.End()
}

// discarded drops the span: it can never be closed.
func discarded() {
	prof.Begin(prof.CatKernel, "x") // want "result of prof.Begin is discarded"
}

// neverClosed opens a span and falls off the end of the function.
func neverClosed() {
	sp := prof.Begin(prof.CatKernel, "y") // want "span sp is never closed"
	_ = sp
}

// escapes returns the span: the caller owns closing it.
func escapes() prof.Span {
	sp := prof.Begin(prof.CatKernel, "z")
	return sp
}
