// Package spanfix exercises spancheck: profiler spans that are (and are
// not) balanced by a matching End in the same function.
package spanfix

import "tbd/internal/prof"

// deferred is the standard idiom: clean.
func deferred() {
	sp := prof.Begin(prof.CatKernel, "k")
	defer sp.End()
}

// sequential reuses the variable after closing each phase: clean.
func sequential() {
	sp := prof.Begin(prof.CatPhase, "a")
	sp.End()
	sp = prof.Begin(prof.CatPhase, "b")
	sp.End()
}

// reassigned overwrites an open span: the first phase silently vanishes.
func reassigned() {
	sp := prof.Begin(prof.CatPhase, "a")
	sp = prof.Begin(prof.CatPhase, "b") // want "span sp reassigned while the span begun at line"
	sp.End()
}

// discarded drops the span: it can never be closed.
func discarded() {
	prof.Begin(prof.CatKernel, "x") // want "result of prof.Begin is discarded"
}

// neverClosed opens a span and falls off the end of the function.
func neverClosed() {
	sp := prof.Begin(prof.CatKernel, "y") // want "span sp is never closed"
	_ = sp
}

// escapes returns the span: the caller owns closing it.
func escapes() prof.Span {
	sp := prof.Begin(prof.CatKernel, "z")
	return sp
}

// beginChild is the Begin-with-parent idiom the train-step drivers use
// for explicit dependence edges: phases pinned to their step, each closed
// before the variable is reused, the parent closed last. Clean.
func beginChild() {
	step := prof.Begin(prof.CatPhase, "step")
	sp := prof.BeginChild(&step, prof.CatPhase, "phase.forward")
	sp.End()
	sp = prof.BeginChild(&step, prof.CatPhase, "phase.update")
	sp.End()
	step.End()
}

// beginChildDiscarded drops a child span even though its parent is
// balanced: the child can never be closed.
func beginChildDiscarded() {
	step := prof.Begin(prof.CatPhase, "step")
	defer step.End()
	prof.BeginChild(&step, prof.CatPhase, "phase.forward") // want "result of prof.Begin is discarded"
}

// beginChildReassigned overwrites an open child span: the first phase
// silently vanishes from its parent's lineage.
func beginChildReassigned() {
	step := prof.Begin(prof.CatPhase, "step")
	defer step.End()
	sp := prof.BeginChild(&step, prof.CatPhase, "a")
	sp = prof.BeginChild(&step, prof.CatPhase, "b") // want "span sp reassigned while the span begun at line"
	sp.End()
}
