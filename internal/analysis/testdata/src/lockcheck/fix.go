// Package lockfix exercises lockcheck: "guarded by" field annotations on
// named and anonymous structs.
package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// inc locks: clean.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// bad reads the guarded field without the lock.
func (c *counter) bad() int {
	return c.n // want "n is guarded by mu but .counter.bad does not lock it"
}

// lockedByCaller documents that its callers hold mu: clean.
//
//tbd:locked-by-caller
func (c *counter) lockedByCaller() int {
	return c.n
}

type gauge struct {
	mu sync.RWMutex
	v  float64 // Guarded by mu.
}

// read uses RLock, which counts: clean.
func (g *gauge) read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

type badGuard struct {
	n int // guarded by nonesuch -- want "no field named nonesuch in this struct"
}

func (b *badGuard) get() int { return b.n }

// state mirrors the prof collector: a package-level anonymous struct.
var state struct {
	mu   sync.Mutex
	hits int // guarded by mu
}

// bump locks: clean.
func bump() {
	state.mu.Lock()
	state.hits++
	state.mu.Unlock()
}

// peek reads without the lock.
func peek() int {
	return state.hits // want "hits is guarded by mu but peek does not lock it"
}

// peekLocked suppresses with a line-level escape: clean.
func peekLocked() int {
	return state.hits //tbd:locked-by-caller bump's callers hold mu
}
