package lockfix

import "sync"

// Call-boundary verification: //tbd:locked-by-caller turns the guarded
// access into a precondition, and every call site is checked against
// the caller's held set.

type svc struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// bumpLocked requires mu held at entry.
//
//tbd:locked-by-caller
func (s *svc) bumpLocked() {
	s.n++
}

// wrapLocked chains through another locked-by-caller function; the
// precondition propagates to its own callers.
//
//tbd:locked-by-caller
func (s *svc) wrapLocked() {
	s.bumpLocked()
}

// Bump holds the lock across the call: clean.
func (s *svc) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}

// BumpUnlocked calls the precondition-carrying helper lock-free.
func (s *svc) BumpUnlocked() {
	s.bumpLocked() // want "call to .svc.bumpLocked requires mu held"
}

// WrapUnlocked trips the propagated precondition two hops up.
func (s *svc) WrapUnlocked() {
	s.wrapLocked() // want "call to .svc.wrapLocked requires mu held"
}

// WrapHeld holds the lock across the chained call: clean.
func (s *svc) WrapHeld() {
	s.mu.Lock()
	s.wrapLocked()
	s.mu.Unlock()
}

// newSvc is a pre-publication constructor: no other goroutine can see
// the struct, so its guarded writes and helper calls carry no
// obligation.
//
//tbd:pre-publication the struct is private until the constructor returns
func newSvc() *svc {
	s := &svc{}
	s.n = 1
	s.bumpLocked()
	return s
}

// newSvcBare claims pre-publication without saying why.
//
//tbd:pre-publication
func newSvcBare() *svc { // want "needs a justification"
	s := &svc{}
	s.n = 2
	return s
}
