// Package poolfix exercises poolcheck: pooled-buffer lifetimes that
// violate (and satisfy) the engine's one-step ownership contract.
package poolfix

import "tbd/internal/tensor"

type layer struct {
	out *tensor.Tensor
}

func use(t *tensor.Tensor) {}

// releasedOnEveryPath is clean: a deferred release covers every exit.
func releasedOnEveryPath(n int) {
	t := tensor.Acquire(n)
	defer t.Release()
	use(t)
}

// returned transfers ownership to the caller: clean.
func returned(n int) *tensor.Tensor {
	t := tensor.AcquireDirty(n)
	return t
}

// leakOnReturn forgets the buffer on the early-return path.
func leakOnReturn(cond bool) {
	t := tensor.Acquire(4) // want "pooled buffer t leaks on the return path at line"
	if cond {
		return
	}
	t.Release()
}

// fromPool leaks a buffer taken from an explicit pool.
func fromPool(p *tensor.Pool, cond bool) {
	t := p.Get(3) // want "pooled buffer t leaks on the return path at line"
	if cond {
		return
	}
	t.Release()
}

// doubleRelease frees the same buffer twice on one path.
func doubleRelease() {
	t := tensor.Acquire(8)
	t.Release()
	t.Release() // want "double release of pooled buffer t"
}

// discarded drops the result outright: nothing can ever release it.
func discarded() {
	tensor.Acquire(2) // want "result of tensor.Acquire is discarded"
}

// overwritten rebinds the name while the first buffer is still live.
func overwritten(n int) {
	t := tensor.Acquire(n) // want "pooled buffer t is overwritten before being released"
	t = tensor.Acquire(n + 1)
	t.Release()
}

// stashBad stores into a field without recycling the previous occupant.
func (l *layer) stashBad() {
	l.out = tensor.Acquire(4) // want "pooled buffer stashed into l.out without releasing the previous one"
}

// stashGood follows the recycle idiom: release the old, stash the new.
func (l *layer) stashGood(n int) {
	l.out.Release()
	l.out = tensor.Acquire(n)
}

// stashRetained documents deliberate retention with the escape comment.
func (l *layer) stashRetained() {
	l.out = tensor.Acquire(4) //tbd:retain released by the layer's Close
}

// retained suppresses the leak report with a line-level escape.
func retained(cond bool) {
	t := tensor.Acquire(4) //tbd:retain the global registry frees it in teardown
	if cond {
		return
	}
	t.Release()
}
