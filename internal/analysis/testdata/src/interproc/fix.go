// Package interprocfix exercises poolcheck's phase-1 summaries: buffer
// obligations that flow through callees — acquire-wrappers, borrowing
// helpers, releasing helpers, and sinks.
package interprocfix

import "tbd/internal/tensor"

type holder struct {
	kept *tensor.Tensor
}

// acquireWrapped hands a fresh acquisition to its caller: calling it is
// itself an acquisition (ReturnsAcquired).
func acquireWrapped(n int) *tensor.Tensor {
	return tensor.Acquire(n)
}

// acquireDeep summarizes through one more layer of wrapping.
func acquireDeep(n int) *tensor.Tensor {
	return acquireWrapped(n)
}

// borrow only reads its argument: the caller keeps the obligation.
func borrow(t *tensor.Tensor) int {
	return t.Numel()
}

// releaseIt releases its argument (ParamReleases): a call counts as the
// caller's release.
func releaseIt(t *tensor.Tensor) {
	t.Release()
}

// releaseDeep releases through a releasing callee.
func releaseDeep(t *tensor.Tensor) {
	releaseIt(t)
}

// sinkIt stores its argument (ParamSinks): ownership transfers.
func sinkIt(h *holder, t *tensor.Tensor) {
	h.kept = t //tbd:retain the holder owns the buffer from here on
}

// leakThroughCallee: borrowing helpers do not discharge the obligation,
// so the early return leaks the wrapped acquisition.
func leakThroughCallee(cond bool) {
	t := acquireWrapped(4) // want "pooled buffer t leaks on the return path at line"
	borrow(t)
	if cond {
		return
	}
	t.Release()
}

// leakDeepWrapper: the acquisition is visible through two wrappers.
func leakDeepWrapper(cond bool) {
	t := acquireDeep(4) // want "pooled buffer t leaks on the return path at line"
	if cond {
		return
	}
	t.Release()
}

// releasedInCallee is clean: releaseIt discharges the obligation.
func releasedInCallee(n int) {
	t := tensor.Acquire(n)
	borrow(t)
	releaseIt(t)
}

// releasedInDeferredCallee is clean: the deferred releasing helper
// covers every exit.
func releasedInDeferredCallee(n int, cond bool) {
	t := acquireWrapped(n)
	defer releaseDeep(t)
	if cond {
		return
	}
	borrow(t)
}

// doubleReleaseAcrossCalls frees once through the helper and once
// directly.
func doubleReleaseAcrossCalls(n int) {
	t := tensor.Acquire(n)
	releaseIt(t)
	t.Release() // want "double release of pooled buffer t"
}

// doubleReleaseBothInCallees frees twice through releasing helpers.
func doubleReleaseBothInCallees(n int) {
	t := tensor.Acquire(n)
	releaseDeep(t)
	releaseIt(t) // want "double release of pooled buffer t"
}

// transferredToSink is clean: the sink takes ownership.
func transferredToSink(h *holder, n int) {
	t := acquireWrapped(n)
	sinkIt(h, t)
}

// retainedWrapped documents deliberate retention of a wrapped
// acquisition with the escape comment: clean.
func retainedWrapped(cond bool) {
	t := acquireWrapped(4) //tbd:retain freed by the teardown registry
	if cond {
		return
	}
	t.Release()
}
