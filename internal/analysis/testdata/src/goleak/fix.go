// Package goleakfix exercises goleak: goroutines with and without
// provable shutdown edges. The test loads it under a synthetic
// tbd/internal/dist/... import path to land in the analyzer's scope.
package goleakfix

import "sync"

type server struct {
	wg   sync.WaitGroup
	quit chan struct{}
	work chan int
}

// runForever leaks: no Done, no channel edge, no handoff.
func runForever() {
	go func() { // want "goroutine has no provable shutdown edge"
		for {
			_ = 1
		}
	}()
}

type worker struct{ n int }

// spin has no shutdown edge in its body.
func (w *worker) spin() {
	for {
		w.n++
	}
}

// startWorker leaks through a named method: the body is resolved via
// the phase-1 program and still proves nothing.
func startWorker(w *worker) {
	go w.spin() // want "goroutine has no provable shutdown edge"
}

// waitGroupPaired is clean: Add in the spawner, Done in the body.
func (s *server) waitGroupPaired() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = 1
	}()
}

// closeChannelEdge is clean: the body ranges over a channel the package
// closes.
func (s *server) closeChannelEdge() {
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
}

// selectQuitEdge is clean: the body selects on the quit channel Close
// closes.
func (s *server) selectQuitEdge() {
	go func() {
		for {
			select {
			case <-s.quit:
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

// Close closes the channels the goroutines above watch.
func (s *server) Close() {
	close(s.quit)
	close(s.work)
}

// boundedHandoff is clean: the goroutine sends its result to a channel
// the spawner drains, so it cannot outlive the call.
func boundedHandoff() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// daemon documents a deliberate process-lifetime goroutine: clean.
func daemon() {
	//tbd:fire-and-forget metrics flusher lives for the whole process
	go func() {
		for {
			_ = 1
		}
	}()
}

// daemonBare carries the escape without saying why.
func daemonBare() {
	//tbd:fire-and-forget
	go func() { // want "needs a justification"
		for {
			_ = 1
		}
	}()
}
