package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts an expectation from a fixture comment: the diagnostic
// on that line must match the quoted regexp.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type wantComment struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants indexes every `want "..."` comment in the fixture package.
func collectWants(t *testing.T, pkg *Package) []*wantComment {
	t.Helper()
	var wants []*wantComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// runFixture loads one testdata package under a synthetic import path and
// asserts the analyzer's diagnostics match the fixture's want comments
// exactly: every want matched by a diagnostic on its line, no diagnostic
// without a want.
func runFixture(t *testing.T, a *Analyzer, subdir, importPath string, deps ...string) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", subdir), importPath, deps...)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", subdir, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	wants := collectWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", subdir)
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestPoolcheckFixture(t *testing.T) {
	runFixture(t, Poolcheck, "poolcheck", "fix/poolcheck", "tbd/internal/tensor")
}

func TestSpancheckFixture(t *testing.T) {
	runFixture(t, Spancheck, "spancheck", "fix/spancheck", "tbd/internal/prof")
}

func TestDeterminismFixture(t *testing.T) {
	// The synthetic import path places the fixture inside a kernel
	// hot-path package tree.
	runFixture(t, Determinism, "determinism", "tbd/internal/tensor/fix", "time", "math/rand")
}

func TestDeterminismIgnoresColdPaths(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	// Same files, non-hot-path import path: the analyzer must not fire.
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "determinism"), "fix/coldpath", "time", "math/rand")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("determinism fired outside hot-path packages: %v", diags)
	}
}

func TestLockcheckFixture(t *testing.T) {
	runFixture(t, Lockcheck, "lockcheck", "fix/lockcheck", "sync")
}

func TestAtomiccheckFixture(t *testing.T) {
	runFixture(t, Atomiccheck, "atomiccheck", "fix/atomiccheck", "sync/atomic")
}

func TestGoleakFixture(t *testing.T) {
	// The synthetic import path places the fixture inside the analyzer's
	// concurrent-subsystem scope.
	runFixture(t, Goleak, "goleak", "tbd/internal/dist/fixleak", "sync")
}

func TestGoleakIgnoresOutOfScope(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	// Same files, out-of-scope import path: the analyzer must not fire.
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "goleak"), "fix/goleak", "sync")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{Goleak}); len(diags) != 0 {
		t.Errorf("goleak fired outside dist/serve/data/prof: %v", diags)
	}
}

func TestWirecheckFixture(t *testing.T) {
	runFixture(t, Wirecheck, "wirecheck", "fix/wirecheck")
}

func TestInterprocPoolcheckFixture(t *testing.T) {
	runFixture(t, Poolcheck, "interproc", "fix/interproc", "tbd/internal/tensor")
}

func TestErrcheckFixture(t *testing.T) {
	runFixture(t, ErrcheckLite, "errcheck", "tbd/cmd/fix", "errors", "fmt", "os", "strings")
}

// TestTreeIsClean is the in-tree lint gate: the full analyzer suite over
// the whole module must report nothing (every true positive is fixed or
// carries a justified escape).
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list over the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	diags := Run(pkgs, All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or annotate with //tbd: escapes", len(diags))
	}
}

// TestParallelMatchesSerial pins the parallel driver's contract: a
// multi-worker run over the whole module produces byte-identical output
// to the serial run. Under -race (make analysis-race) it also shakes
// out data races in the engine's own fan-out.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list over the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.Workers = 8
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	render := func(diags []Diagnostic) string {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintln(&b, d)
		}
		return b.String()
	}
	serial, _ := RunParallel(pkgs, All, 1)
	parallel, _ := RunParallel(pkgs, All, 8)
	if got, want := render(parallel), render(serial); got != want {
		t.Errorf("parallel output differs from serial:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestDiagnosticOrdering pins the driver's sort: findings come back
// ordered by file, line, column for stable golden output.
func TestDiagnosticOrdering(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "poolcheck"), "fix/poolcheck", "tbd/internal/tensor")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Poolcheck})
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s",
				fmt.Sprintf("%s:%d", a.Filename, a.Line), fmt.Sprintf("%s:%d", b.Filename, b.Line))
		}
	}
}
