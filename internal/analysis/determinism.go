package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Determinism guards the engine's bit-identity contract: the numeric
// kernels must produce the same bits at every parallelism level (the
// property the parallel-vs-serial Equal(..., 0) tests pin), so the
// kernel hot-path packages may not contain order- or time-dependent
// logic. Inside the hot-path packages it forbids:
//
//   - ranging over a map (iteration order is randomized per run);
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - math/rand and math/rand/v2 (the engine's tensor.RNG is the only
//     sanctioned randomness — explicitly seeded and deterministic);
//   - scheduler- and process-identity probes that enable goroutine-
//     dependent behavior: runtime.NumGoroutine, runtime.Gosched,
//     os.Getpid.
//
// A site that must break the rule carries //tbd:nondeterministic-ok
// followed by a justification; an escape without a justification is
// itself a finding.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "kernel hot paths must stay bit-identical: no map iteration, wall clocks, or math/rand",
	Run:  runDeterminism,
}

// hotPathPrefixes are the packages (and their subpackages) holding code
// that must be bit-identical across parallelism levels: the tensor
// kernels and worker pool, the kernel cost models, the fused
// optimizer kernels, and the what-if replay engine (its golden-error
// CI gate assumes bit-stable predictions).
var hotPathPrefixes = []string{
	"tbd/internal/tensor",
	"tbd/internal/kernels",
	"tbd/internal/optim",
	"tbd/internal/whatif",
}

// nondetCalls are forbidden callees in hot paths.
var nondetCalls = map[string]string{
	"time.Now":             "wall-clock read",
	"time.Since":           "wall-clock read",
	"time.Until":           "wall-clock read",
	"runtime.NumGoroutine": "scheduler-dependent value",
	"runtime.Gosched":      "scheduler perturbation",
	"os.Getpid":            "process-identity value",
}

// nondetImportPkgs are packages that may not be used at all in hot paths.
var nondetImportPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func inHotPath(pkgPath string) bool {
	for _, prefix := range hotPathPrefixes {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return true
		}
	}
	return false
}

func runDeterminism(p *Pass) {
	if !inHotPath(p.Pkg.Path) {
		return
	}
	report := func(pos ast.Node, what string) {
		if arg, ok := p.Escape(pos.Pos(), "nondeterministic-ok"); ok {
			if arg == "" {
				p.Reportf(pos.Pos(), "//tbd:nondeterministic-ok requires a justification string")
			}
			return
		}
		p.Reportf(pos.Pos(), "%s in kernel hot path %s: results must be bit-identical across parallelism levels (annotate //tbd:nondeterministic-ok <why> if unavoidable)", what, p.Pkg.Path)
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err == nil && nondetImportPkgs[path] {
				report(imp, "import of "+path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.Pkg.Info.TypeOf(n.X)
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						report(n, "map iteration (nondeterministic order)")
					}
				}
			case *ast.CallExpr:
				if what, bad := nondetCalls[p.calleeName(n)]; bad {
					report(n, what+" ("+p.calleeName(n)+")")
				}
			}
			return true
		})
	}
}
