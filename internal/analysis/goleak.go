package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goleak demands a provable shutdown edge for every goroutine launched
// in the concurrent subsystems (internal/dist, internal/serve,
// internal/data, internal/prof): a leaked goroutine there pins
// connections, pool buffers, or profiler state for the life of the
// process, and the race detector cannot see a goroutine that merely
// never exits. A `go` statement passes if any of these holds:
//
//   - WaitGroup pairing: the goroutine body calls Done on a
//     sync.WaitGroup that some spawning code calls Add on.
//   - close-channel edge: the body receives from (or ranges over, or
//     selects on) a channel that is closed somewhere in the package.
//   - bounded handoff: the body sends on a channel the spawning
//     function receives from, so the goroutine cannot outlive the call
//     that launched it.
//
// Named callees (go s.run()) are resolved through the phase-1 program
// and their bodies checked in their own package's context. Deliberate
// daemons carry //tbd:fire-and-forget <why> on the `go` line; the
// justification is mandatory.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "every goroutine in dist/serve/data/prof has a provable shutdown edge",
	Run:  runGoleak,
}

// goleakPkgPrefixes scopes the check to the subsystems where a leaked
// goroutine holds real resources.
var goleakPkgPrefixes = []string{
	"tbd/internal/dist",
	"tbd/internal/serve",
	"tbd/internal/data",
	"tbd/internal/prof",
}

func runGoleak(p *Pass) {
	inScope := false
	for _, prefix := range goleakPkgPrefixes {
		if p.Pkg.Path == prefix || strings.HasPrefix(p.Pkg.Path, prefix+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(p, fd, g)
				return true
			})
		}
	}
}

func checkGoStmt(p *Pass, spawner *ast.FuncDecl, g *ast.GoStmt) {
	if arg, ok := p.Escape(g.Pos(), "fire-and-forget"); ok {
		if arg == "" {
			p.Reportf(g.Pos(), "//tbd:fire-and-forget needs a justification (why may this goroutine outlive its spawner?)")
		}
		return
	}

	// Resolve the goroutine body: a literal right here, or a named
	// function found through the phase-1 program (possibly in another
	// package — its own package context is used for object resolution).
	bodyPkg := p.Pkg
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if p.Prog != nil {
		if fi := p.Prog.Funcs[p.calleeName(g.Call)]; fi != nil {
			bodyPkg, body = fi.Pkg, fi.Decl.Body
		}
	}
	if body == nil {
		p.Reportf(g.Pos(), "cannot resolve goroutine body to prove a shutdown edge; launch a function declared in this module or annotate //tbd:fire-and-forget <why>")
		return
	}

	sig := goroutineSignals(bodyPkg, body)

	// Edge 1: WaitGroup pairing — Done in the body, Add on the same
	// WaitGroup in the spawner or anywhere in the body's package.
	for done := range sig.doneOn {
		if pkgWaitGroupAdds(p.Pkg, spawner.Body)[done] || pkgWaitGroupAdds(bodyPkg, nil)[done] {
			return
		}
	}
	// Edge 2: the body receives from a channel that is closed in the
	// spawner's or the body's package.
	for recv := range sig.recvFrom {
		if pkgClosedChans(p.Pkg)[recv] || pkgClosedChans(bodyPkg)[recv] {
			return
		}
	}
	// Edge 3: bounded handoff — the body sends on a channel the spawner
	// receives from.
	spawnerRecv := recvObjects(p.Pkg, spawner.Body)
	for sent := range sig.sendOn {
		if spawnerRecv[sent] {
			return
		}
	}

	p.Reportf(g.Pos(), "goroutine has no provable shutdown edge (WaitGroup Add/Done pairing, receive from a closed channel, or bounded handoff to the spawner); annotate //tbd:fire-and-forget <why> if this is a deliberate daemon")
}

// goroutineBody summarizes the shutdown-relevant operations of one
// goroutine body.
type goroutineBody struct {
	doneOn   map[types.Object]bool // WaitGroups the body calls Done on
	recvFrom map[types.Object]bool // channels received from / ranged / selected
	sendOn   map[types.Object]bool // channels sent to
}

func goroutineSignals(pkg *Package, body *ast.BlockStmt) goroutineBody {
	sig := goroutineBody{
		doneOn:   map[types.Object]bool{},
		recvFrom: map[types.Object]bool{},
		sendOn:   map[types.Object]bool{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := waitGroupMethodRecv(pkg, n, "Done"); obj != nil {
				sig.doneOn[obj] = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if obj := baseObject(pkg, n.X); obj != nil {
					sig.recvFrom[obj] = true
				}
			}
		case *ast.RangeStmt:
			if isChanType(pkg, n.X) {
				if obj := baseObject(pkg, n.X); obj != nil {
					sig.recvFrom[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := baseObject(pkg, n.Chan); obj != nil {
				sig.sendOn[obj] = true
			}
		}
		return true
	})
	return sig
}

// pkgWaitGroupAdds collects the WaitGroup objects Add is called on — in
// one body when given, else across the whole package.
func pkgWaitGroupAdds(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	adds := map[types.Object]bool{}
	collect := func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := waitGroupMethodRecv(pkg, call, "Add"); obj != nil {
				adds[obj] = true
			}
		}
		return true
	}
	if body != nil {
		ast.Inspect(body, collect)
		return adds
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, collect)
	}
	return adds
}

// pkgClosedChans collects the channel objects the package closes.
func pkgClosedChans(pkg *Package) map[types.Object]bool {
	closed := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "close" || pkg.Info.Uses[id] != types.Universe.Lookup("close") {
				return true
			}
			if obj := baseObject(pkg, call.Args[0]); obj != nil {
				closed[obj] = true
			}
			return true
		})
	}
	return closed
}

// recvObjects collects the channel objects a body receives from.
func recvObjects(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	recv := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if obj := baseObject(pkg, n.X); obj != nil {
					recv[obj] = true
				}
			}
		case *ast.RangeStmt:
			if isChanType(pkg, n.X) {
				if obj := baseObject(pkg, n.X); obj != nil {
					recv[obj] = true
				}
			}
		}
		return true
	})
	return recv
}

// waitGroupMethodRecv returns the object the receiver of a
// sync.WaitGroup method call resolves to, or nil if call is not
// wg.<method>().
func waitGroupMethodRecv(pkg *Package, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || !isNamedType(tv.Type, "sync", "WaitGroup") {
		return nil
	}
	return baseObject(pkg, sel.X)
}

// baseObject resolves the variable an expression is rooted at:
// s.wg -> field wg, chans[i] -> var chans, (&x).f -> field f.
func baseObject(pkg *Package, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pkg.objectOf(e)
	case *ast.SelectorExpr:
		return pkg.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return baseObject(pkg, e.X)
	case *ast.UnaryExpr:
		return baseObject(pkg, e.X)
	case *ast.StarExpr:
		return baseObject(pkg, e.X)
	}
	return nil
}

func isChanType(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
