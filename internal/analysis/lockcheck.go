package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// Lockcheck ties struct fields to the mutex that guards them. A field
// whose declaration carries a "guarded by <mu>" comment (doc comment or
// trailing line comment), where <mu> names a sibling field, may only be
// read or written inside functions that lock that mutex:
//
//	type Service struct {
//		traceMu     sync.Mutex
//		traceEvents []sim.Event // guarded by traceMu
//	}
//
// The check is flow-insensitive within a function but verified across
// call boundaries: a function that touches a guarded field must lock
// the mutex itself, or carry //tbd:locked-by-caller in its doc comment.
// The annotation is no longer taken on faith — it turns the lock into a
// precondition, and every call site is checked against the caller's own
// held set. Preconditions propagate through chains of locked-by-caller
// functions, so a wrapper of a helper still obligates the outermost
// caller.
//
// Two escapes:
//
//   - //tbd:locked-by-caller — the function requires the guarding mutex
//     held at entry; call sites are verified.
//   - //tbd:pre-publication <why> — the function builds a struct before
//     any other goroutine can see it (a constructor), so no lock is
//     needed and call sites carry no obligation. The justification
//     string is mandatory.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated \"guarded by <mu>\" are only touched under that mutex, verified across call boundaries",
	Run:  runLockcheck,
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// lockFnState is lockcheck's per-function working state: the mutexes the
// function locks anywhere in its body, and the mutexes it requires its
// callers to hold (nonempty only for //tbd:locked-by-caller functions).
type lockFnState struct {
	fd             *ast.FuncDecl
	name           string // qualified, "" if unresolvable
	locked         map[types.Object]bool
	requires       map[types.Object]bool
	lockedByCaller bool
	prePublication bool
}

func runLockcheck(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}

	var fns []*lockFnState
	byName := map[string]*lockFnState{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := &lockFnState{
				fd:       fd,
				locked:   lockedMutexes(p, fd.Body),
				requires: map[types.Object]bool{},
			}
			st.lockedByCaller = FuncEscape(fd, "locked-by-caller")
			if arg, ok := FuncEscapeArg(fd, "pre-publication"); ok {
				st.prePublication = true
				if arg == "" {
					p.Reportf(fd.Pos(), "//tbd:pre-publication on %s needs a justification (why can no other goroutine see this struct yet?)", funcDisplayName(fd))
				}
			}
			if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				st.name = qualifiedFuncName(fn)
			}
			fns = append(fns, st)
			if st.name != "" {
				byName[st.name] = st
			}
		}
	}

	// Pass 1: direct guarded accesses. A locked-by-caller function's
	// unlocked accesses become preconditions instead of findings; a
	// pre-publication function's accesses are excused outright.
	for _, st := range fns {
		if st.prePublication {
			continue
		}
		st := st
		ast.Inspect(st.fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			mu, guarded := guards[obj]
			if !guarded || st.locked[mu] {
				return true
			}
			if _, ok := p.Escape(sel.Pos(), "locked-by-caller"); ok {
				return true
			}
			if st.lockedByCaller {
				st.requires[mu] = true
				return true
			}
			p.Reportf(sel.Sel.Pos(), "%s is guarded by %s but %s does not lock it (annotate the function //tbd:locked-by-caller if its callers hold the lock)",
				sel.Sel.Name, mu.Name(), funcDisplayName(st.fd))
			return true
		})
	}

	// Pass 2: propagate preconditions through chains of locked-by-caller
	// functions to a fixpoint — a locked-by-caller wrapper that calls a
	// locked-by-caller helper inherits whatever the helper requires and
	// does not itself lock.
	for changed := true; changed; {
		changed = false
		for _, st := range fns {
			if !st.lockedByCaller {
				continue
			}
			st := st
			ast.Inspect(st.fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := byName[p.calleeName(call)]
				if callee == nil {
					return true
				}
				for mu := range callee.requires {
					if !st.locked[mu] && !st.requires[mu] {
						st.requires[mu] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	// Pass 3: verify every call into a precondition-carrying function
	// happens with the required mutexes held by the caller.
	for _, st := range fns {
		if st.lockedByCaller || st.prePublication {
			continue
		}
		st := st
		ast.Inspect(st.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := byName[p.calleeName(call)]
			if callee == nil || len(callee.requires) == 0 {
				return true
			}
			if _, ok := p.Escape(call.Pos(), "locked-by-caller"); ok {
				return true
			}
			for _, mu := range sortedMutexes(callee.requires) {
				if !st.locked[mu] {
					p.Reportf(call.Pos(), "call to %s requires %s held (//tbd:locked-by-caller) but %s does not lock it",
						funcDisplayName(callee.fd), mu.Name(), funcDisplayName(st.fd))
				}
			}
			return true
		})
	}
}

// sortedMutexes orders a mutex set by name for deterministic reports.
func sortedMutexes(set map[types.Object]bool) []types.Object {
	objs := make([]types.Object, 0, len(set))
	for mu := range set {
		objs = append(objs, mu)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name() < objs[j].Name() })
	return objs
}

// lockedMutexes collects every mutex the body locks anywhere, including
// deferred calls and closures — flow-insensitive.
func lockedMutexes(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	locked := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if obj := p.Pkg.Info.Uses[muSel.Sel]; obj != nil {
				locked[obj] = true
			}
		}
		return true
	})
	return locked
}

// collectGuards maps each annotated field object to the mutex field
// object guarding it, by scanning every struct type in the package.
func collectGuards(p *Pass) map[types.Object]types.Object {
	guards := map[types.Object]types.Object{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Index sibling fields by name for mutex lookup.
			byName := map[string]*ast.Ident{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					byName[name.Name] = name
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				muIdent, found := byName[mu]
				if !found {
					p.Reportf(fld.Pos(), "guarded by %s: no field named %s in this struct", mu, mu)
					continue
				}
				muObj := p.Pkg.Info.Defs[muIdent]
				for _, name := range fld.Names {
					if obj := p.Pkg.Info.Defs[name]; obj != nil && muObj != nil {
						guards[obj] = muObj
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's comments.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return types.ExprString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}
