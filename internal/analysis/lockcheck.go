package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Lockcheck ties struct fields to the mutex that guards them. A field
// whose declaration carries a "guarded by <mu>" comment (doc comment or
// trailing line comment), where <mu> names a sibling field, may only be
// read or written inside functions that lock that mutex:
//
//	type Service struct {
//		traceMu     sync.Mutex
//		traceEvents []sim.Event // guarded by traceMu
//	}
//
// The check is flow-insensitive and per-function: a function (or any
// function literal it contains) that touches a guarded field must also
// contain a <mu>.Lock() or <mu>.RLock() call, or carry a
// //tbd:locked-by-caller annotation in its doc comment documenting that
// its callers hold the lock. Matching is by types.Object, so anonymous
// structs (package-level collector vars) and named types are handled
// alike.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated \"guarded by <mu>\" are only touched under that mutex",
	Run:  runLockcheck,
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

func runLockcheck(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(p, fd, guards)
		}
	}
}

// collectGuards maps each annotated field object to the mutex field
// object guarding it, by scanning every struct type in the package.
func collectGuards(p *Pass) map[types.Object]types.Object {
	guards := map[types.Object]types.Object{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Index sibling fields by name for mutex lookup.
			byName := map[string]*ast.Ident{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					byName[name.Name] = name
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				muIdent, found := byName[mu]
				if !found {
					p.Reportf(fld.Pos(), "guarded by %s: no field named %s in this struct", mu, mu)
					continue
				}
				muObj := p.Pkg.Info.Defs[muIdent]
				for _, name := range fld.Names {
					if obj := p.Pkg.Info.Defs[name]; obj != nil && muObj != nil {
						guards[obj] = muObj
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's comments.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses verifies every guarded-field access in fd happens
// in a function that locks the guarding mutex.
func checkGuardedAccesses(p *Pass, fd *ast.FuncDecl, guards map[types.Object]types.Object) {
	if FuncEscape(fd, "locked-by-caller") {
		return
	}
	// Pass 1: which mutexes does this function lock (anywhere, including
	// deferred calls and closures — flow-insensitive)?
	locked := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if obj := p.Pkg.Info.Uses[muSel.Sel]; obj != nil {
				locked[obj] = true
			}
		}
		return true
	})
	// Pass 2: flag guarded accesses without the lock.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.Uses[sel.Sel]
		mu, guarded := guards[obj]
		if !guarded || locked[mu] {
			return true
		}
		if _, ok := p.Escape(sel.Pos(), "locked-by-caller"); ok {
			return true
		}
		p.Reportf(sel.Sel.Pos(), "%s is guarded by %s but %s does not lock it (annotate the function //tbd:locked-by-caller if its callers hold the lock)",
			sel.Sel.Name, mu.Name(), funcDisplayName(fd))
		return true
	})
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return types.ExprString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}
