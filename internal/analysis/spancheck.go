package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spancheck keeps the profiler's span accounting balanced: every
// prof.Begin must reach a matching End() in the same function, either
// deferred or called directly before the span variable is reused. The
// engine's instrumented functions follow two idioms, both accepted:
//
//	sp := prof.Begin(prof.CatKernel, "gemm")
//	defer sp.End()
//
//	sp := prof.Begin(prof.CatPhase, "phase.forward")
//	... // forward
//	sp.End()
//	sp = prof.Begin(prof.CatPhase, "phase.loss") // reuse after End
//
// Reported defects: a Begin whose result is discarded (the span can
// never be closed), a span variable reassigned from a new Begin while
// the previous span is still open (the missing-End bug class: the
// orphaned span silently vanishes from phase totals), and a span still
// open when the function ends without a deferred End. Spans that escape
// the function (returned, stored in a struct, passed to a call) are
// assumed to be closed by their new owner.
var Spancheck = &Analyzer{
	Name: "spancheck",
	Doc:  "every prof span Begin must be closed by End (deferred or direct) in the same function",
	Run:  runSpancheck,
}

const profEndName = "tbd/internal/prof.Span.End"

// profBeginNames are the span-opening entry points. BeginChild is the
// Begin-with-parent idiom the train-step drivers use for explicit phase
// lineage (the what-if recorder's dependence edges); its balance rules
// are identical to Begin's.
var profBeginNames = map[string]bool{
	"tbd/internal/prof.Begin":      true,
	"tbd/internal/prof.BeginChild": true,
}

func runSpancheck(p *Pass) {
	p.funcBodies(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		sc := &spanChecker{pass: p, open: map[types.Object]token.Pos{}}
		sc.walkBody(body)
		for v, beginPos := range sc.open {
			if !sc.deferred[v] {
				p.Reportf(beginPos, "span %s is never closed: add defer %s.End() or call %s.End() before the function returns", v.Name(), v.Name(), v.Name())
			}
		}
	})
}

type spanChecker struct {
	pass *Pass
	// open maps a span variable to the position of its unclosed Begin.
	open map[types.Object]token.Pos
	// deferred marks variables covered by a deferred End (or a deferred
	// closure that calls End).
	deferred map[types.Object]bool
}

// walkBody visits the function's statements in source order — a
// positional (not path-sensitive) balance check, which matches how the
// engine writes spans: strictly sequential phases.
func (sc *spanChecker) walkBody(body *ast.BlockStmt) {
	sc.deferred = map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested literals are checked as their own bodies.
			return false
		case *ast.DeferStmt:
			sc.scanDefer(n)
			return false
		case *ast.AssignStmt:
			sc.scanAssign(n)
			return true
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				name := sc.pass.calleeName(call)
				if profBeginNames[name] {
					sc.pass.Reportf(call.Pos(), "result of prof.Begin is discarded: the span can never be closed")
					return false
				}
				if name == profEndName {
					if v := sc.endReceiver(call); v != nil {
						delete(sc.open, v)
					}
					return false
				}
			}
			return true
		case *ast.ReturnStmt:
			// A returned span escapes to the caller.
			for v := range sc.open {
				if returnMentions(n, sc.pass, v) {
					delete(sc.open, v)
				}
			}
			return true
		case *ast.CallExpr:
			// A span passed as an argument escapes.
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if v := sc.pass.objectOf(id); v != nil {
						delete(sc.open, v)
					}
				}
			}
			return true
		}
		return true
	})
}

// scanAssign handles `sp := prof.Begin(...)`, `sp = prof.Begin(...)`
// (reuse), and spans escaping into struct fields.
func (sc *spanChecker) scanAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !profBeginNames[sc.pass.calleeName(call)] {
			continue
		}
		switch lhs := ast.Unparen(s.Lhs[i]).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				sc.pass.Reportf(call.Pos(), "result of prof.Begin is discarded: the span can never be closed")
				continue
			}
			v := sc.pass.objectOf(lhs)
			if v == nil {
				continue
			}
			if prev, isOpen := sc.open[v]; isOpen && !sc.deferred[v] {
				sc.pass.Reportf(call.Pos(), "span %s reassigned while the span begun at line %d is still open (missing %s.End())",
					v.Name(), sc.pass.Pkg.Fset.Position(prev).Line, v.Name())
			}
			sc.open[v] = call.Pos()
		default:
			// Stored into a field or container: escapes.
		}
	}
}

// scanDefer closes spans via `defer sp.End()` or a deferred closure
// that mentions an open span.
func (sc *spanChecker) scanDefer(d *ast.DeferStmt) {
	if sc.pass.calleeName(d.Call) == profEndName {
		if v := sc.endReceiver(d.Call); v != nil {
			sc.deferred[v] = true
			delete(sc.open, v)
		}
		return
	}
	for v := range sc.open {
		if sc.pass.mentions(d.Call, v) {
			sc.deferred[v] = true
			delete(sc.open, v)
		}
	}
}

// endReceiver resolves the variable in `v.End()`.
func (sc *spanChecker) endReceiver(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return sc.pass.objectOf(id)
}
