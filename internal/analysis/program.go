package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is phase 1 of the engine: before any analyzer runs, the
// driver builds a Program over every loaded package — a call graph keyed
// by qualified function name plus per-function effect summaries — so the
// phase-2 checkers can reason across call boundaries. Summaries are
// computed to a fixpoint (a wrapper around a wrapper still summarizes
// correctly) and are read-only during phase 2, which is what lets the
// driver check packages in parallel.

// FuncInfo is one declared function or method in the analyzed program.
type FuncInfo struct {
	Name string // qualified: path/to/pkg.Func or path/to/pkg.Type.Method
	Pkg  *Package
	Decl *ast.FuncDecl
}

// ParamEffect classifies what a function does with a pooled buffer
// passed as one of its parameters.
type ParamEffect uint8

const (
	// ParamBorrows: the parameter is only read (or passed on to other
	// borrowers). Ownership — and the release obligation — stays with
	// the caller.
	ParamBorrows ParamEffect = iota
	// ParamReleases: the function releases the parameter (directly or
	// through a releasing callee). A call counts as a release at the
	// call site, and releasing again afterwards is a double release.
	ParamReleases
	// ParamSinks: the parameter escapes — stored, returned, captured,
	// sent, or handed to a function the analyzer cannot see. Ownership
	// conservatively transfers and the caller's obligation is dropped.
	ParamSinks
)

// PoolSummary is one function's pooled-buffer effect summary.
type PoolSummary struct {
	// Effects has one entry per declared parameter (receivers excluded),
	// in declaration order. Flattened: multi-name fields ("a, b Type")
	// contribute one entry per name.
	Effects []ParamEffect
	// Variadic marks the last parameter as "...T"; arguments landing in
	// the variadic slot are treated as sinks regardless of its effect.
	Variadic bool
	// ReturnsAcquired marks functions that hand a fresh pool acquisition
	// back to the caller: calling one is itself an acquisition and the
	// caller inherits the release obligation.
	ReturnsAcquired bool
}

// Program is the phase-1 product: every function in the analyzed
// packages, indexed for cross-function lookups, with pool summaries
// computed to fixpoint.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*FuncInfo
	Pool  map[string]*PoolSummary

	// names holds Funcs' keys sorted, for deterministic iteration.
	names []string
}

// NewProgram indexes the packages and computes the summaries.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		Funcs: map[string]*FuncInfo{},
		Pool:  map[string]*PoolSummary{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				name := qualifiedFuncName(fn)
				if name == "" {
					continue
				}
				prog.Funcs[name] = &FuncInfo{Name: name, Pkg: pkg, Decl: fd}
			}
		}
	}
	prog.names = make([]string, 0, len(prog.Funcs))
	for name := range prog.Funcs {
		prog.names = append(prog.names, name)
	}
	sort.Strings(prog.names)
	prog.computePoolSummaries()
	return prog
}

// ParamEffect resolves the effect a callee has on its i-th argument
// (receiver excluded). known is false when the callee is outside the
// analyzed program — the caller must then assume a conservative sink.
func (prog *Program) ParamEffect(callee string, i int) (eff ParamEffect, known bool) {
	sum, ok := prog.Pool[callee]
	if !ok {
		return ParamSinks, false
	}
	if sum.Variadic && i >= len(sum.Effects)-1 {
		return ParamSinks, true
	}
	if i < 0 || i >= len(sum.Effects) {
		return ParamSinks, true
	}
	return sum.Effects[i], true
}

// ReturnsAcquired reports whether calling the named function hands back
// a fresh pool acquisition.
func (prog *Program) ReturnsAcquired(callee string) bool {
	if poolAcquires[callee] {
		return true
	}
	sum, ok := prog.Pool[callee]
	return ok && sum.ReturnsAcquired
}

// computePoolSummaries iterates the per-function extraction until no
// summary changes. Effects only ever increase along the
// borrows < releases < sinks order and ReturnsAcquired only flips to
// true, so the iteration reaches the least fixpoint.
func (prog *Program) computePoolSummaries() {
	for _, name := range prog.names {
		fi := prog.Funcs[name]
		prog.Pool[name] = &PoolSummary{
			Effects:  make([]ParamEffect, len(paramObjects(fi))),
			Variadic: isVariadic(fi.Decl),
		}
	}
	for changed := true; changed; {
		changed = false
		for _, name := range prog.names {
			if prog.summarizeFunc(prog.Funcs[name], prog.Pool[name]) {
				changed = true
			}
		}
	}
}

// paramObjects resolves the declared parameters (not the receiver) to
// their objects, in order; unnamed and blank parameters yield nil.
func paramObjects(fi *FuncInfo) []types.Object {
	var objs []types.Object
	if fi.Decl.Type.Params == nil {
		return objs
	}
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				objs = append(objs, nil)
				continue
			}
			objs = append(objs, fi.Pkg.Info.Defs[name])
		}
	}
	return objs
}

func isVariadic(fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	_, ok := params.List[len(params.List)-1].Type.(*ast.Ellipsis)
	return ok
}

// summarizeFunc recomputes fi's summary from its body under the current
// summaries of its callees and reports whether anything grew.
func (prog *Program) summarizeFunc(fi *FuncInfo, sum *PoolSummary) bool {
	params := paramObjects(fi)
	byObj := map[types.Object]int{}
	for i, obj := range params {
		if obj != nil {
			byObj[obj] = i
		}
	}
	changed := false
	raise := func(i int, eff ParamEffect) {
		if i >= 0 && i < len(sum.Effects) && sum.Effects[i] < eff {
			sum.Effects[i] = eff
			changed = true
		}
	}
	paramIdx := func(e ast.Expr) int {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := fi.Pkg.objectOf(id); obj != nil {
				if i, ok := byObj[obj]; ok {
					return i
				}
			}
		}
		return -1
	}

	// acquired tracks locals bound to fresh pool acquisitions, for the
	// ReturnsAcquired scan.
	acquired := map[types.Object]bool{}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A parameter captured by a closure escapes.
			for i, obj := range params {
				if obj != nil && fi.Pkg.mentions(n, obj) {
					raise(i, ParamSinks)
				}
			}
			return false
		case *ast.CompositeLit:
			for i, obj := range params {
				if obj != nil && fi.Pkg.mentions(n, obj) {
					raise(i, ParamSinks)
				}
			}
			return true
		case *ast.AssignStmt:
			// A parameter assigned anywhere (aliased, stashed, stored in a
			// container) escapes. The acquisition scan rides along.
			for ri, rhs := range n.Rhs {
				if i := paramIdx(rhs); i >= 0 {
					raise(i, ParamSinks)
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && prog.ReturnsAcquired(fi.Pkg.calleeName(call)) {
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := ast.Unparen(n.Lhs[ri]).(*ast.Ident); ok && id.Name != "_" {
							if obj := fi.Pkg.objectOf(id); obj != nil {
								acquired[obj] = true
							}
						}
					}
				}
			}
			return true
		case *ast.SendStmt:
			if i := paramIdx(n.Value); i >= 0 {
				raise(i, ParamSinks)
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if i := paramIdx(res); i >= 0 {
					raise(i, ParamSinks)
				}
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && prog.ReturnsAcquired(fi.Pkg.calleeName(call)) {
					if !sum.ReturnsAcquired {
						sum.ReturnsAcquired = true
						changed = true
					}
				}
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := fi.Pkg.objectOf(id); obj != nil && acquired[obj] && !sum.ReturnsAcquired {
						sum.ReturnsAcquired = true
						changed = true
					}
				}
			}
			return true
		case *ast.CallExpr:
			name := fi.Pkg.calleeName(n)
			// Direct release of a parameter: v.Release() / putPackBuf(v).
			if poolReleaseMethods[name] {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if i := paramIdx(sel.X); i >= 0 {
						raise(i, ParamReleases)
					}
				}
				return true
			}
			if poolReleaseFuncs[name] && len(n.Args) > 0 {
				if i := paramIdx(n.Args[0]); i >= 0 {
					raise(i, ParamReleases)
				}
				return true
			}
			// A parameter forwarded to another call inherits the callee's
			// effect; unknown callees are conservative sinks.
			for ai, arg := range n.Args {
				i := paramIdx(arg)
				if i < 0 {
					continue
				}
				eff, known := prog.ParamEffect(name, ai)
				if !known {
					raise(i, ParamSinks)
				} else if eff != ParamBorrows {
					raise(i, eff)
				}
			}
			return true
		}
		return true
	})
	return changed
}
