package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Wirecheck guards hand-rolled wire protocols against silent kind skew:
// a const group annotated //tbd:wire-kinds declares a protocol's kind
// vocabulary, and every constant in it must appear on both sides of the
// protocol — somewhere that encodes it (a plain use: struct literal,
// assignment, argument) and somewhere that decodes it (a switch case or
// an ==/!= comparison). A kind with an encoder but no decoder is a
// message the peer silently drops; a kind with a decoder but no encoder
// is dead protocol surface that rots. The escape for deliberate
// one-sided kinds (reserved values, kinds decoded for forward
// compatibility) is //tbd:wire-ok <why> on the constant's line; the
// justification is mandatory.
var Wirecheck = &Analyzer{
	Name: "wirecheck",
	Doc:  "every //tbd:wire-kinds constant appears in both the encode and decode paths",
	Run:  runWirecheck,
}

func runWirecheck(p *Pass) {
	type wireConst struct {
		obj types.Object
		pos token.Pos
	}
	var kinds []wireConst
	inVocab := map[types.Object]bool{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST || !hasWireKindsMarker(gd.Doc) {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := p.Pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					kinds = append(kinds, wireConst{obj: obj, pos: name.Pos()})
					inVocab[obj] = true
				}
			}
		}
	}
	if len(kinds) == 0 {
		return
	}

	// Classify every use: decode side is a switch case or an ==/!=
	// comparison; anything else is the encode side.
	decoded := map[types.Object]bool{}
	encoded := map[types.Object]bool{}
	decodeUse := map[*ast.Ident]bool{}
	markDecode := func(expr ast.Expr) {
		ast.Inspect(expr, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.Pkg.Info.Uses[id]; obj != nil && inVocab[obj] {
				decoded[obj] = true
				decodeUse[id] = true
			}
			return true
		})
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, expr := range n.List {
					markDecode(expr)
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					markDecode(n.X)
					markDecode(n.Y)
				}
			}
			return true
		})
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || decodeUse[id] {
				return true
			}
			if obj := p.Pkg.Info.Uses[id]; obj != nil && inVocab[obj] {
				encoded[obj] = true
			}
			return true
		})
	}

	for _, k := range kinds {
		if arg, ok := p.Escape(k.pos, "wire-ok"); ok {
			if arg == "" {
				p.Reportf(k.pos, "//tbd:wire-ok on %s needs a justification (why is a one-sided wire kind safe?)", k.obj.Name())
			}
			continue
		}
		switch {
		case !encoded[k.obj] && !decoded[k.obj]:
			p.Reportf(k.pos, "wire kind %s is never used on either side of the protocol; delete it or annotate //tbd:wire-ok <why>", k.obj.Name())
		case !decoded[k.obj]:
			p.Reportf(k.pos, "wire kind %s is encoded but never decoded (no switch case or comparison); the peer will silently drop it", k.obj.Name())
		case !encoded[k.obj]:
			p.Reportf(k.pos, "wire kind %s is decoded but never encoded; dead protocol surface or a missing sender", k.obj.Name())
		}
	}
}

// hasWireKindsMarker reports whether the const group's doc comment
// carries //tbd:wire-kinds.
func hasWireKindsMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if m := escapeRe.FindStringSubmatch(c.Text); m != nil && m[1] == "wire-kinds" {
			return true
		}
	}
	return false
}
