package tensor

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"tbd/internal/prof"
)

// Runtime GEMM kernel-tier dispatch. Three tiers exist:
//
//	ref   pure-Go 4x4 kernels — the bit-exact reference, available
//	      everywhere.
//	sse   4x4 SSE assembly — bit-identical to ref (same per-lane
//	      expressions, no FMA), amd64 only.
//	avx2  8x8 AVX2+FMA assembly — roughly 2-3x the sse throughput, but
//	      FMA fuses the multiply-add rounding, so results are only
//	      ULP-equivalent to ref, not bit-identical (see gemmFMAMaxULP).
//
// The default is the widest tier CPUID says the host supports. Within a
// tier results stay deterministic: the reduction order of every output
// element depends only on the operand shapes, never on the worker split,
// so parallel and serial runs of the same tier produce identical bits.
//
// The TBD_GEMM_KERNEL environment variable (ref|sse|avx2) overrides the
// default at startup; SetGemmKernelTier changes it at runtime. Reading
// an environment variable is deterministic per process, so the override
// does not violate the hot-path determinism contract enforced by tbdvet.

// gemmTier enumerates the micro-kernel implementations.
type gemmTier int32

const (
	tierRef gemmTier = iota
	tierSSE
	tierAVX2
)

var tierNames = [...]string{tierRef: "ref", tierSSE: "sse", tierAVX2: "avx2"}

// gemmFMAMaxULP is the documented equivalence bound for the avx2 tier: on
// the test shapes (k <= 515, standard-normal operands) every output
// element lands within this many representable float32s of the reference
// tier's value, except where cancellation leaves the result near zero —
// there the absolute difference stays below gemmFMAAbsTol. The observed
// worst case is about half the bound; the margin absorbs unlucky seeds.
// Both constants are asserted by TestAVX2TierMatchesRefULP.
const (
	gemmFMAMaxULP = 512
	gemmFMAAbsTol = 1e-4
)

var (
	tierOnce   sync.Once
	activeTier atomic.Int32

	// Capability flags, written only during package init (amd64 build
	// files) and read after, so they need no synchronization.
	haveSSEKernels  bool // SSE 4x4 assembly installed
	haveAVX2Kernels bool // AVX2+FMA 8x8 assembly installed and CPU-supported
	haveF16CKernels bool // fp16-widening AVX2 kernel usable (F16C present)
)

// initGemmTier picks the startup tier: the widest available, unless
// TBD_GEMM_KERNEL names a different supported tier.
func initGemmTier() {
	best := tierRef
	if haveSSEKernels {
		best = tierSSE
	}
	if haveAVX2Kernels {
		best = tierAVX2
	}
	if env := os.Getenv("TBD_GEMM_KERNEL"); env != "" {
		if t, ok := tierByName(env); ok && tierAvailable(t) {
			best = t
		} else {
			fmt.Fprintf(os.Stderr, "tensor: TBD_GEMM_KERNEL=%q unknown or unsupported on this CPU, using %q\n", env, tierNames[best])
		}
	}
	installTier(best)
}

func installTier(t gemmTier) {
	activeTier.Store(int32(t))
	prof.SetKernelTier(tierNames[t])
}

// currentGemmTier returns the active tier, initializing the default on
// first use (after package init, so the capability flags are final).
func currentGemmTier() gemmTier {
	tierOnce.Do(initGemmTier)
	return gemmTier(activeTier.Load())
}

func tierByName(name string) (gemmTier, bool) {
	for t, n := range tierNames {
		if n == name {
			return gemmTier(t), true
		}
	}
	return tierRef, false
}

func tierAvailable(t gemmTier) bool {
	switch t {
	case tierSSE:
		return haveSSEKernels
	case tierAVX2:
		return haveAVX2Kernels
	}
	return true
}

// kernels4x4 selects the 4x4 micro-kernel pair for a tier: the pure-Go
// reference kernels for tierRef, the installed assembly otherwise. The
// avx2 tier also lands here for shapes too narrow for 8x8 tiles; the 4x4
// assembly is bit-identical to ref, so those shapes stay exact even under
// the FMA tier.
func kernels4x4(t gemmTier) (tree, seq microFn) {
	if t == tierRef {
		return microTree4x4Go, microSeq4x4Go
	}
	return kernelTree4x4, kernelSeq4x4
}

// SetGemmKernelTier selects the GEMM micro-kernel tier by name ("ref",
// "sse", "avx2") and returns the name of the previously active tier.
// Unknown or CPU-unsupported names return an error and change nothing.
// Safe to call concurrently with running ops: each GEMM reads the tier
// once at entry, so an in-flight call uses one tier throughout.
func SetGemmKernelTier(name string) (prev string, err error) {
	tierOnce.Do(initGemmTier)
	prev = tierNames[gemmTier(activeTier.Load())]
	t, ok := tierByName(name)
	if !ok {
		return prev, fmt.Errorf("tensor: unknown GEMM kernel tier %q (have ref, sse, avx2)", name)
	}
	if !tierAvailable(t) {
		return prev, fmt.Errorf("tensor: GEMM kernel tier %q not supported on this CPU", name)
	}
	installTier(t)
	return prev, nil
}

// GemmKernelTier returns the name of the active micro-kernel tier.
func GemmKernelTier() string {
	return tierNames[currentGemmTier()]
}

// GemmKernelTiers lists the tiers this process can run, widest last.
func GemmKernelTiers() []string {
	tierOnce.Do(initGemmTier)
	out := []string{"ref"}
	if haveSSEKernels {
		out = append(out, "sse")
	}
	if haveAVX2Kernels {
		out = append(out, "avx2")
	}
	return out
}

// BitExactGemmTier returns the fastest tier that keeps the reference
// bit-identity contract: "sse" when the assembly is present, else "ref".
// Tests that assert exact equality across code paths pin this tier.
func BitExactGemmTier() string {
	if haveSSEKernels {
		return "sse"
	}
	return "ref"
}

// GemmHalfFast reports whether the fp16-storage GEMM runs on the
// in-register widening AVX2 kernel (F16C); otherwise it widens the fp16
// operand to a pooled fp32 panel first.
func GemmHalfFast() bool {
	return haveF16CKernels && currentGemmTier() == tierAVX2
}
