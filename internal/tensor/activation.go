package tensor

import (
	"fmt"
	"math"
)

// ActKind names an activation that GEMM and convolution can fuse into
// their write-back epilogue. The fused forms are bit-identical to
// applying the same activation as a separate pass: the epilogue runs
// after each output element's reduction is complete and uses exactly the
// scalar formulas below.
type ActKind uint8

const (
	ActNone ActKind = iota
	ActReLU
	ActSigmoid
	ActTanh
)

func (a ActKind) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	}
	return fmt.Sprintf("ActKind(%d)", uint8(a))
}

// Sigmoid32 is the logistic function computed in float64 and rounded
// once, the single definition shared by the fused epilogue and the
// standalone Sigmoid layer.
func Sigmoid32(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// Tanh32 is the float64-backed hyperbolic tangent, shared like Sigmoid32.
func Tanh32(v float32) float32 {
	return float32(math.Tanh(float64(v)))
}

// ActBackward computes the input gradient of a fused activation from the
// upstream gradient gy and the activation output y: gz = gy ⊙ act'(y).
// All three activations admit a derivative in terms of the output alone,
// which is what the fused layers stash. The expressions match the
// standalone activation layers' backward passes exactly — ReLU as a
// mask multiply (so NaN gradients propagate), sigmoid as gy·y·(1-y),
// tanh as gy·(1-y²) — so fused and unfused training trajectories are
// bit-identical. The result is pool-backed.
func ActBackward(act ActKind, gy, y *Tensor) *Tensor {
	if len(gy.data) != len(y.data) {
		panic(fmt.Sprintf("tensor: ActBackward size mismatch %v vs %v", gy.shape, y.shape))
	}
	out := acquireDirty(gy.shape...)
	gv, yv, ov := gy.data, y.data, out.data
	yv = yv[:len(gv)]
	ov = ov[:len(gv)]
	switch act {
	case ActReLU:
		for i, yy := range yv {
			var mask float32
			if yy > 0 {
				mask = 1
			}
			ov[i] = gv[i] * mask
		}
	case ActSigmoid:
		for i, yy := range yv {
			ov[i] = gv[i] * yy * (1 - yy)
		}
	case ActTanh:
		for i, yy := range yv {
			ov[i] = gv[i] * (1 - yy*yy)
		}
	default:
		copy(ov, gv)
	}
	return out
}
