package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift128+). Every stochastic component of the suite
// takes an explicit *RNG so experiments are reproducible bit-for-bit.
type RNG struct {
	s0, s1 uint64
	// spare holds a cached second Gaussian sample from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed over both words.
	z := seed
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		if i == 0 {
			r.s0 = x
		} else {
			r.s1 = x
		}
	}
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform sample in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample via Box-Muller.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandUniform fills a new tensor with uniform samples in [lo, hi).
func RandUniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*r.Float32()
	}
	return t
}

// RandNormal fills a new tensor with Gaussian samples N(mean, std²).
func RandNormal(r *RNG, mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*float32(r.Norm())
	}
	return t
}

// XavierInit returns Glorot-uniform initialized weights for a layer with the
// given fan-in and fan-out.
func XavierInit(r *RNG, fanIn, fanOut int, shape ...int) *Tensor {
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	return RandUniform(r, -limit, limit, shape...)
}

// HeInit returns He-normal initialized weights for ReLU networks.
func HeInit(r *RNG, fanIn int, shape ...int) *Tensor {
	std := float32(math.Sqrt(2 / float64(fanIn)))
	return RandNormal(r, 0, std, shape...)
}
