package tensor

import (
	"math"
	"testing"
)

// Tier-dispatch tests: tier selection plumbing, ULP equivalence of the
// FMA tier against the bit-exact reference, split invariance within the
// avx2 tier, and the assembly/Go cross-check for the 8x8 kernels.

func TestGemmTierSelection(t *testing.T) {
	orig := GemmKernelTier()
	t.Cleanup(func() {
		if _, err := SetGemmKernelTier(orig); err != nil {
			t.Fatal(err)
		}
	})
	tiers := GemmKernelTiers()
	if len(tiers) == 0 || tiers[0] != "ref" {
		t.Fatalf("GemmKernelTiers() = %v, want ref first", tiers)
	}
	for _, name := range tiers {
		prev, err := SetGemmKernelTier(name)
		if err != nil {
			t.Fatalf("SetGemmKernelTier(%q): %v", name, err)
		}
		if prev == "" {
			t.Fatalf("SetGemmKernelTier(%q) returned empty prev", name)
		}
		if got := GemmKernelTier(); got != name {
			t.Fatalf("GemmKernelTier() = %q after selecting %q", got, name)
		}
	}
	if _, err := SetGemmKernelTier("avx512"); err == nil {
		t.Fatal("unknown tier accepted")
	}
	if got := GemmKernelTier(); got != tiers[len(tiers)-1] {
		t.Fatalf("failed SetGemmKernelTier changed the tier to %q", got)
	}
	bitExact := BitExactGemmTier()
	if bitExact != "ref" && bitExact != "sse" {
		t.Fatalf("BitExactGemmTier() = %q", bitExact)
	}
}

// ulpDiff32 returns the distance between two float32s in units of
// representable values, treating -0 and +0 as equal and NaNs as
// infinitely far from everything (including each other).
func ulpDiff32(a, b float32) uint64 {
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.MaxUint64
	}
	return uint64(absInt64(floatRank(a) - floatRank(b)))
}

// floatRank maps float32 bit patterns onto a line where adjacent
// representable values differ by 1.
func floatRank(f float32) int64 {
	bits := math.Float32bits(f)
	if bits&0x80000000 != 0 {
		return -int64(bits & 0x7fffffff)
	}
	return int64(bits)
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// tierEquivShapes exercises full tiles, row tails, ragged columns, and
// the narrow-shape fallback onto the 4x4 path.
var tierEquivShapes = [][3]int{
	{8, 8, 16}, {8, 2, 8}, {9, 9, 9}, {16, 64, 16}, {17, 31, 23},
	{37, 53, 41}, {64, 128, 96}, {8, 515, 8}, {33, 129, 65}, {40, 7, 40},
}

// TestAVX2TierMatchesRefULP holds the FMA tier to the documented
// equivalence bound against the reference kernels, for every layout and
// accumulate mode. FMA fuses the multiply-add rounding, so exact equality
// is impossible; the bound is gemmFMAMaxULP with gemmFMAAbsTol absorbing
// near-zero cancellation (see tier.go).
func TestAVX2TierMatchesRefULP(t *testing.T) {
	forceGemmTier(t, "avx2")
	defer SetParallelism(1)
	rng := NewRNG(51)
	var maxULP uint64
	for _, workers := range []int{1, 3} {
		SetParallelism(workers)
		for _, s := range tierEquivShapes {
			n, k, m := s[0], s[1], s[2]
			for lay := layPlain; lay <= layTransB; lay++ {
				a := make([]float32, n*k)
				var b []float32
				if lay == layTransB {
					b = make([]float32, m*k)
				} else {
					b = make([]float32, k*m)
				}
				fillRand(rng, a)
				fillRand(rng, b)
				seed := make([]float32, n*m)
				fillRand(rng, seed)
				for _, accum := range []bool{false, true} {
					want := append([]float32(nil), seed...)
					got := append([]float32(nil), seed...)
					refGEMM(want, a, b, n, k, m, lay, accum)
					gemmParallel(got, a, b, n, k, m, lay, accum, nil)
					for i := range want {
						d := ulpDiff32(want[i], got[i])
						if d <= gemmFMAMaxULP {
							if d > maxULP {
								maxULP = d
							}
							continue
						}
						if diff := math.Abs(float64(want[i]) - float64(got[i])); diff <= gemmFMAAbsTol {
							continue
						}
						t.Fatalf("lay=%d accum=%v shape=%v workers=%d: [%d] avx2=%v ref=%v (%d ULP)",
							lay, accum, s, workers, i, got[i], want[i], d)
					}
				}
			}
		}
	}
	t.Logf("max observed ULP distance: %d (bound %d)", maxULP, gemmFMAMaxULP)
}

// TestAVX2ParallelMatchesSerial pins split invariance within the FMA
// tier: the 8-aligned worker splits and fixed per-element reduction
// orders make parallel runs bit-identical to serial ones, even though the
// tier is not bit-identical to ref.
func TestAVX2ParallelMatchesSerial(t *testing.T) {
	forceGemmTier(t, "avx2")
	defer SetParallelism(1)
	rng := NewRNG(52)
	for _, s := range tierEquivShapes {
		n, k, m := s[0], s[1], s[2]
		a := RandNormal(rng, 0, 1, n, k)
		b := RandNormal(rng, 0, 1, k, m)
		at := Transpose(a)
		bt := Transpose(b)

		SetParallelism(1)
		serial := [3]*Tensor{MatMul(a, b), MatMulTransA(at, b), MatMulTransB(a, bt)}
		for _, workers := range []int{2, 3, 7} {
			SetParallelism(workers)
			parallel := [3]*Tensor{MatMul(a, b), MatMulTransA(at, b), MatMulTransB(a, bt)}
			names := [3]string{"MatMul", "MatMulTransA", "MatMulTransB"}
			for i := range serial {
				if !Equal(serial[i], parallel[i], 0) {
					t.Fatalf("%s %v workers=%d: parallel differs from serial under avx2", names[i], s, workers)
				}
			}
		}
	}
}

// TestMicroKernel8x8AsmMatchesGo cross-checks the installed AVX2 assembly
// against the Go fallbacks on identical packed panels. The Go fallback
// emulates float32 FMA via float64 math.FMA, which can double-round where
// the hardware rounds once, so the comparison allows a few ULP instead of
// exact equality (see gemm_kernels_wide.go).
func TestMicroKernel8x8AsmMatchesGo(t *testing.T) {
	if !haveAVX2Kernels {
		t.Skip("AVX2 kernels not installed")
	}
	rng := NewRNG(53)
	for _, kc := range []int{1, 2, 3, 8, 127, 128, 515} {
		ap := make([]float32, microMW*kc)
		bp := make([]float32, microNW*kc)
		fillRand(rng, ap)
		fillRand(rng, bp)
		bph := make([]uint16, microNW*kc)
		for i, v := range bp {
			bph[i] = Float32ToHalf(v)
		}
		seed := make([]float32, microMW*microNW)
		fillRand(rng, seed)
		type pair struct {
			name string
			asm  func(dst []float32, ldd int, kc int, accum bool)
			gofn func(dst []float32, ldd int, kc int, accum bool)
		}
		pairs := []pair{
			{"tree", func(d []float32, l, kc int, ac bool) { microTree8x8Asm(d, l, ap, bp, kc, ac) },
				func(d []float32, l, kc int, ac bool) { microTree8x8Go(d, l, ap, bp, kc, ac) }},
			{"seq", func(d []float32, l, kc int, ac bool) { microSeq8x8Asm(d, l, ap, bp, kc, ac) },
				func(d []float32, l, kc int, ac bool) { microSeq8x8Go(d, l, ap, bp, kc, ac) }},
		}
		if haveF16CKernels {
			pairs = append(pairs, pair{"half",
				func(d []float32, l, kc int, ac bool) { microHalf8x8Asm(d, l, ap, bph, kc, ac) },
				func(d []float32, l, kc int, ac bool) { microHalf8x8Go(d, l, ap, bph, kc, ac) }})
		}
		for _, pr := range pairs {
			for _, accum := range []bool{false, true} {
				asm := append([]float32(nil), seed...)
				gofb := append([]float32(nil), seed...)
				pr.asm(asm, microNW, kc, accum)
				pr.gofn(gofb, microNW, kc, accum)
				for i := range asm {
					if d := ulpDiff32(asm[i], gofb[i]); d > 4 {
						t.Fatalf("%s kc=%d accum=%v: [%d] asm=%v go=%v (%d ULP)",
							pr.name, kc, accum, i, asm[i], gofb[i], d)
					}
				}
			}
		}
	}
}
