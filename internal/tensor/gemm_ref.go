package tensor

// Reference cache-blocked GEMM kernels. These are the PR 1 kernels kept
// verbatim: they define the per-element reduction order that the packed
// kernels in gemm.go must reproduce bit-for-bit. They still run in
// production — for shapes too small to tile, for ragged row tails, and as
// the portable fallback — so the equivalence is between two live paths,
// not against a museum copy.
//
// All three layouts (plain, transposed-A, transposed-B) accumulate with a
// fixed order that depends only on the reduction index and the block
// constants below — never on the worker count — so splitting output rows
// across goroutines is bit-identical to the serial path.
//
// Blocking keeps a [gemmBlockK x gemmBlockJ] panel of b resident in L1/L2
// while it is reused across many rows of a; the k-unrolled inner loops cut
// loop overhead and let the compiler keep four b-rows' bounds checks
// hoisted. On top of that, the accumulate kernels process output rows in
// pairs so each loaded b panel element feeds two rows of arithmetic —
// halving b-side memory traffic, the bottleneck for the skinny matrices
// convolution lowering produces. The per-row update expression is written
// identically in the paired loop and the odd-row tail, so the row pairing
// (like the worker split) never changes a single output bit. No zero-skip
// branches: 0*NaN must stay NaN and dense inputs pay for a branch per
// element otherwise.

var (
	// gemmBlockK is the reduction-panel height: rows of b (columns of a)
	// processed per pass. 128 rows x 512 cols x 4 bytes = 256 KiB panel
	// upper bound; typical m keeps it well inside L2.
	//
	// Invariant relied on by the packed kernels: gemmBlockK % 4 == 0.
	// The reference kernels reduce k in panels, each panel as 4-wide
	// grouped steps plus a singles tail; with the panel height a multiple
	// of 4, the global sequence of group sizes over the whole reduction is
	// the same as an unblocked 4-wide grouping, which is exactly what the
	// full-k packed micro-kernel computes.
	gemmBlockK = 128
	// gemmBlockJ is the output-column panel width.
	gemmBlockJ = 512
)

// gemmRefInto computes dst += a @ b for row-major a [n,k], b [k,m],
// dst [n,m]. Callers that want overwrite semantics must zero dst first.
func gemmRefInto(dst, a, b []float32, n, k, m int) {
	for j0 := 0; j0 < m; j0 += gemmBlockJ {
		j1 := min(j0+gemmBlockJ, m)
		for p0 := 0; p0 < k; p0 += gemmBlockK {
			p1 := min(p0+gemmBlockK, k)
			i := 0
			for ; i+2 <= n; i += 2 {
				ar0 := a[i*k : (i+1)*k]
				ar1 := a[(i+1)*k : (i+2)*k]
				d0 := dst[i*m+j0 : i*m+j1]
				// Reslicing every panel to len(d0) lets the compiler prove
				// all five loads in the inner loop in bounds from the single
				// range check on d0.
				d1 := dst[(i+1)*m+j0 : (i+1)*m+j1][:len(d0)]
				p := p0
				for ; p+4 <= p1; p += 4 {
					a00, a01, a02, a03 := ar0[p], ar0[p+1], ar0[p+2], ar0[p+3]
					a10, a11, a12, a13 := ar1[p], ar1[p+1], ar1[p+2], ar1[p+3]
					b0 := b[p*m+j0 : p*m+j1][:len(d0)]
					b1 := b[(p+1)*m+j0 : (p+1)*m+j1][:len(d0)]
					b2 := b[(p+2)*m+j0 : (p+2)*m+j1][:len(d0)]
					b3 := b[(p+3)*m+j0 : (p+3)*m+j1][:len(d0)]
					for j := range d0 {
						b0v, b1v, b2v, b3v := b0[j], b1[j], b2[j], b3[j]
						d0[j] += a00*b0v + a01*b1v + a02*b2v + a03*b3v
						d1[j] += a10*b0v + a11*b1v + a12*b2v + a13*b3v
					}
				}
				for ; p < p1; p++ {
					av0, av1 := ar0[p], ar1[p]
					brow := b[p*m+j0 : p*m+j1][:len(d0)]
					for j := range d0 {
						d0[j] += av0 * brow[j]
						d1[j] += av1 * brow[j]
					}
				}
			}
			for ; i < n; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*m+j0 : i*m+j1]
				p := p0
				for ; p+4 <= p1; p += 4 {
					a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
					b0 := b[p*m+j0 : p*m+j1][:len(drow)]
					b1 := b[(p+1)*m+j0 : (p+1)*m+j1][:len(drow)]
					b2 := b[(p+2)*m+j0 : (p+2)*m+j1][:len(drow)]
					b3 := b[(p+3)*m+j0 : (p+3)*m+j1][:len(drow)]
					for j := range drow {
						drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < p1; p++ {
					av := arow[p]
					brow := b[p*m+j0 : p*m+j1][:len(drow)]
					for j := range drow {
						drow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// gemmRefTransASub computes dst += aᵀ @ b restricted to output rows
// [lo, hi) for a [k,n], b [k,m], dst [n,m]. Rows i of dst read the strided
// column a[p*n+i]; the p-unroll amortizes those strided loads across four
// contiguous b rows, and output rows are paired so each b panel load feeds
// two rows. The accumulation order per element is identical for any split
// or pairing.
func gemmRefTransASub(dst, a, b []float32, n, k, m, lo, hi int) {
	for j0 := 0; j0 < m; j0 += gemmBlockJ {
		j1 := min(j0+gemmBlockJ, m)
		for p0 := 0; p0 < k; p0 += gemmBlockK {
			p1 := min(p0+gemmBlockK, k)
			i := lo
			for ; i+2 <= hi; i += 2 {
				d0 := dst[i*m+j0 : i*m+j1]
				// See gemmRefInto: reslicing to len(d0) lifts the inner-loop
				// bounds checks onto the panel slice expressions.
				d1 := dst[(i+1)*m+j0 : (i+1)*m+j1][:len(d0)]
				p := p0
				for ; p+4 <= p1; p += 4 {
					a00, a10 := a[p*n+i], a[p*n+i+1]
					a01, a11 := a[(p+1)*n+i], a[(p+1)*n+i+1]
					a02, a12 := a[(p+2)*n+i], a[(p+2)*n+i+1]
					a03, a13 := a[(p+3)*n+i], a[(p+3)*n+i+1]
					b0 := b[p*m+j0 : p*m+j1][:len(d0)]
					b1 := b[(p+1)*m+j0 : (p+1)*m+j1][:len(d0)]
					b2 := b[(p+2)*m+j0 : (p+2)*m+j1][:len(d0)]
					b3 := b[(p+3)*m+j0 : (p+3)*m+j1][:len(d0)]
					for j := range d0 {
						b0v, b1v, b2v, b3v := b0[j], b1[j], b2[j], b3[j]
						d0[j] += a00*b0v + a01*b1v + a02*b2v + a03*b3v
						d1[j] += a10*b0v + a11*b1v + a12*b2v + a13*b3v
					}
				}
				for ; p < p1; p++ {
					av0, av1 := a[p*n+i], a[p*n+i+1]
					brow := b[p*m+j0 : p*m+j1][:len(d0)]
					for j := range d0 {
						d0[j] += av0 * brow[j]
						d1[j] += av1 * brow[j]
					}
				}
			}
			for ; i < hi; i++ {
				drow := dst[i*m+j0 : i*m+j1]
				p := p0
				for ; p+4 <= p1; p += 4 {
					a0 := a[p*n+i]
					a1 := a[(p+1)*n+i]
					a2 := a[(p+2)*n+i]
					a3 := a[(p+3)*n+i]
					b0 := b[p*m+j0 : p*m+j1][:len(drow)]
					b1 := b[(p+1)*m+j0 : (p+1)*m+j1][:len(drow)]
					b2 := b[(p+2)*m+j0 : (p+2)*m+j1][:len(drow)]
					b3 := b[(p+3)*m+j0 : (p+3)*m+j1][:len(drow)]
					for j := range drow {
						drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < p1; p++ {
					av := a[p*n+i]
					brow := b[p*m+j0 : p*m+j1][:len(drow)]
					for j := range drow {
						drow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// gemmRefTransBInto computes dst = a @ bᵀ for a [n,k], b [m,k], dst [n,m]
// (overwrite, not accumulate: both operands stream row-wise so there is no
// panel reuse to stage). Each output element is a dot product of two
// contiguous rows; output columns are grouped four at a time and output
// rows two at a time, so one streaming pass over four b rows feeds eight
// dot products. The column grouping depends only on m and each output's
// reduction order only on k — dotQuad2 and dotQuad accumulate every
// element in the same sequential order — so results are identical for any
// row split across workers and any pairing.
func gemmRefTransBInto(dst, a, b []float32, n, k, m int) {
	i := 0
	for ; i+2 <= n; i += 2 {
		ar0 := a[i*k : (i+1)*k]
		ar1 := a[(i+1)*k : (i+2)*k]
		d0 := dst[i*m : (i+1)*m]
		d1 := dst[(i+1)*m : (i+2)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			d0[j], d0[j+1], d0[j+2], d0[j+3],
				d1[j], d1[j+1], d1[j+2], d1[j+3] = dotQuad2(ar0, ar1, b0, b1, b2, b3)
		}
		if j+2 <= m {
			d0[j], d0[j+1] = dotPair(ar0, b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k])
			d1[j], d1[j+1] = dotPair(ar1, b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k])
			j += 2
		}
		if j < m {
			d0[j] = dotOne(ar0, b[j*k:(j+1)*k])
			d1[j] = dotOne(ar1, b[j*k:(j+1)*k])
		}
	}
	for ; i < n; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*m : (i+1)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			drow[j], drow[j+1], drow[j+2], drow[j+3] = dotQuad(arow, b0, b1, b2, b3)
		}
		if j+2 <= m {
			drow[j], drow[j+1] = dotPair(arow, b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k])
			j += 2
		}
		if j < m {
			drow[j] = dotOne(arow, b[j*k:(j+1)*k])
		}
	}
}

// gemmRefTransBAcc is gemmRefTransBInto with accumulate semantics
// (dst += a @ bᵀ), used where a transposed-B product is summed over a
// batch. Same row pairing, column grouping, and per-element reduction
// order.
func gemmRefTransBAcc(dst, a, b []float32, n, k, m int) {
	i := 0
	for ; i+2 <= n; i += 2 {
		ar0 := a[i*k : (i+1)*k]
		ar1 := a[(i+1)*k : (i+2)*k]
		d0 := dst[i*m : (i+1)*m]
		d1 := dst[(i+1)*m : (i+2)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			r00, r01, r02, r03, r10, r11, r12, r13 := dotQuad2(ar0, ar1, b0, b1, b2, b3)
			d0[j] += r00
			d0[j+1] += r01
			d0[j+2] += r02
			d0[j+3] += r03
			d1[j] += r10
			d1[j+1] += r11
			d1[j+2] += r12
			d1[j+3] += r13
		}
		if j+2 <= m {
			r0, r1 := dotPair(ar0, b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k])
			d0[j] += r0
			d0[j+1] += r1
			r0, r1 = dotPair(ar1, b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k])
			d1[j] += r0
			d1[j+1] += r1
			j += 2
		}
		if j < m {
			d0[j] += dotOne(ar0, b[j*k:(j+1)*k])
			d1[j] += dotOne(ar1, b[j*k:(j+1)*k])
		}
	}
	for ; i < n; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*m : (i+1)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			r0, r1, r2, r3 := dotQuad(arow, b0, b1, b2, b3)
			drow[j] += r0
			drow[j+1] += r1
			drow[j+2] += r2
			drow[j+3] += r3
		}
		if j+2 <= m {
			r0, r1 := dotPair(arow, b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k])
			drow[j] += r0
			drow[j+1] += r1
			j += 2
		}
		if j < m {
			drow[j] += dotOne(arow, b[j*k:(j+1)*k])
		}
	}
}

// dotQuad2 returns the dot products of two a rows against four b rows in
// one streaming pass, so every loaded b element feeds two outputs — the
// row-paired core of the transposed-B kernels. Eight accumulators, one per
// output, each summed in plain sequential order; dotQuad mirrors that
// order exactly for unpaired rows, so pairing never changes a bit.
func dotQuad2(a0, a1, b0, b1, b2, b3 []float32) (r00, r01, r02, r03, r10, r11, r12, r13 float32) {
	n := len(a0)
	a1 = a1[:n]
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for p := 0; p < n; p++ {
		av0, av1 := a0[p], a1[p]
		b0v, b1v, b2v, b3v := b0[p], b1[p], b2[p], b3[p]
		r00 += av0 * b0v
		r01 += av0 * b1v
		r02 += av0 * b2v
		r03 += av0 * b3v
		r10 += av1 * b0v
		r11 += av1 * b1v
		r12 += av1 * b2v
		r13 += av1 * b3v
	}
	return
}

// dotQuad returns (a·b0, a·b1, a·b2, a·b3): the single-row companion of
// dotQuad2, with the identical sequential accumulation per output.
func dotQuad(a, b0, b1, b2, b3 []float32) (r0, r1, r2, r3 float32) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for p := 0; p < n; p++ {
		av := a[p]
		r0 += av * b0[p]
		r1 += av * b1[p]
		r2 += av * b2[p]
		r3 += av * b3[p]
	}
	return
}

// dotPair returns (a·b0, a·b1) with the canonical 4-way-split reduction.
func dotPair(a, b0, b1 []float32) (float32, float32) {
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	p := 0
	for ; p+4 <= len(a); p += 4 {
		a0, a1, a2, a3 := a[p], a[p+1], a[p+2], a[p+3]
		s00 += a0 * b0[p]
		s01 += a1 * b0[p+1]
		s02 += a2 * b0[p+2]
		s03 += a3 * b0[p+3]
		s10 += a0 * b1[p]
		s11 += a1 * b1[p+1]
		s12 += a2 * b1[p+2]
		s13 += a3 * b1[p+3]
	}
	x := (s00 + s01) + (s02 + s03)
	y := (s10 + s11) + (s12 + s13)
	for ; p < len(a); p++ {
		x += a[p] * b0[p]
		y += a[p] * b1[p]
	}
	return x, y
}

// dotOne returns a·b with the same reduction order as dotPair.
func dotOne(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	p := 0
	for ; p+4 <= len(a); p += 4 {
		s0 += a[p] * b[p]
		s1 += a[p+1] * b[p+1]
		s2 += a[p+2] * b[p+2]
		s3 += a[p+3] * b[p+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; p < len(a); p++ {
		s += a[p] * b[p]
	}
	return s
}
