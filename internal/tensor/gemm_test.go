package tensor

import (
	"math"
	"testing"
)

// naiveMatMul is the trusted reference: plain triple loop, no blocking, no
// skips.
func naiveMatMul(a, b *Tensor, transA, transB bool) *Tensor {
	var n, k, m int
	get := func(t *Tensor, i, j int, trans bool) float32 {
		if trans {
			return t.data[j*t.shape[1]+i]
		}
		return t.data[i*t.shape[1]+j]
	}
	if transA {
		k, n = a.shape[0], a.shape[1]
	} else {
		n, k = a.shape[0], a.shape[1]
	}
	if transB {
		m = b.shape[0]
	} else {
		m = b.shape[1]
	}
	out := New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(get(a, i, p, transA)) * float64(get(b, p, j, transB))
			}
			out.data[i*m+j] = float32(s)
		}
	}
	return out
}

// TestGEMMAgainstNaive sweeps shapes that exercise block boundaries,
// remainder loops (k % 4 != 0, m % 2 != 0), and degenerate dims.
func TestGEMMAgainstNaive(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(11)
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 3}, {5, 1, 4}, {3, 4, 1},
		{8, 8, 8}, {13, 17, 9}, {31, 129, 33}, {4, 130, 515},
		{67, 13, 5}, {2, 512, 2},
	}
	for _, workers := range []int{1, 3} {
		SetParallelism(workers)
		for _, s := range shapes {
			n, k, m := s[0], s[1], s[2]
			a := RandNormal(rng, 0, 1, n, k)
			b := RandNormal(rng, 0, 1, k, m)
			at := Transpose(a) // [k, n]
			bt := Transpose(b) // [m, k]
			tol := float32(1e-4) * float32(k)
			if got, want := MatMul(a, b), naiveMatMul(a, b, false, false); !Equal(got, want, tol) {
				t.Fatalf("MatMul %v differs from naive (workers=%d)", s, workers)
			}
			if got, want := MatMulTransA(at, b), naiveMatMul(a, b, false, false); !Equal(got, want, tol) {
				t.Fatalf("MatMulTransA %v differs from naive (workers=%d)", s, workers)
			}
			if got, want := MatMulTransB(a, bt), naiveMatMul(a, b, false, false); !Equal(got, want, tol) {
				t.Fatalf("MatMulTransB %v differs from naive (workers=%d)", s, workers)
			}
		}
	}
}

// TestGEMMIntoMatchesAlloc pins that the Into variants overwrite dirty
// destinations and produce bit-identical results to the allocating forms.
func TestGEMMIntoMatchesAlloc(t *testing.T) {
	rng := NewRNG(12)
	a := RandNormal(rng, 0, 1, 9, 14)
	b := RandNormal(rng, 0, 1, 14, 11)
	at := Transpose(a)
	bt := Transpose(b)
	dirty := func(n, m int) *Tensor { return Full(42, n, m) }

	if got := MatMulInto(dirty(9, 11), a, b); !Equal(got, MatMul(a, b), 0) {
		t.Fatal("MatMulInto differs from MatMul")
	}
	if got := MatMulTransAInto(dirty(9, 11), at, b); !Equal(got, MatMulTransA(at, b), 0) {
		t.Fatal("MatMulTransAInto differs from MatMulTransA")
	}
	if got := MatMulTransBInto(dirty(9, 11), a, bt); !Equal(got, MatMulTransB(a, bt), 0) {
		t.Fatal("MatMulTransBInto differs from MatMulTransB")
	}
}

// TestGEMMNaNPropagation pins IEEE semantics the old kernels broke with an
// av == 0 skip: a zero times a NaN must poison the output.
func TestGEMMNaNPropagation(t *testing.T) {
	nan := float32(math.NaN())
	// a has a zero row; b carries a NaN. 0 * NaN = NaN must reach the
	// output row.
	a := FromSlice([]float32{0, 0, 1, 2}, 2, 2)
	b := FromSlice([]float32{nan, 1, 2, 3}, 2, 2)
	if out := MatMul(a, b); !math.IsNaN(float64(out.At(0, 0))) {
		t.Fatalf("MatMul dropped NaN through zero row: got %v", out.At(0, 0))
	}
	at := FromSlice([]float32{0, 1, 0, 2}, 2, 2) // column 0 of aᵀ is zero
	if out := MatMulTransA(at, b); !math.IsNaN(float64(out.At(0, 0))) {
		t.Fatalf("MatMulTransA dropped NaN through zero column: got %v", out.At(0, 0))
	}
	bt := FromSlice([]float32{nan, 2, 1, 3}, 2, 2)
	if out := MatMulTransB(a, bt); !math.IsNaN(float64(out.At(0, 0))) {
		t.Fatalf("MatMulTransB dropped NaN: got %v", out.At(0, 0))
	}
	// NaN anywhere in a also poisons its row.
	an := FromSlice([]float32{nan, 0, 0, 0}, 2, 2)
	bb := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	out := MatMul(an, bb)
	if !math.IsNaN(float64(out.At(0, 0))) || !math.IsNaN(float64(out.At(0, 1))) {
		t.Fatal("MatMul dropped NaN from a")
	}
	if math.IsNaN(float64(out.At(1, 0))) {
		t.Fatal("NaN leaked into an unrelated row")
	}
}

func TestPoolReusesBuffers(t *testing.T) {
	if !PoolingEnabled() {
		t.Fatal("pooling should be enabled by default")
	}
	var p Pool
	a := p.Get(16, 4)
	buf := a.Data()
	buf[0] = 7
	p.put(a)
	b := p.Get(8, 8) // same element count -> same bucket
	if &b.Data()[0] != &buf[0] {
		t.Fatal("pool did not reuse the released buffer")
	}
	if b.Data()[0] != 0 {
		t.Fatal("reused buffer was not zeroed")
	}
	if b.Dim(0) != 8 || b.Dim(1) != 8 {
		t.Fatalf("reused tensor has shape %v", b.Shape())
	}
}

func TestAcquireReleaseIdempotent(t *testing.T) {
	a := Acquire(32)
	a.Release()
	a.Release() // second release must be a no-op
	x := Acquire(32)
	y := Acquire(32)
	if Aliases(x, y) {
		t.Fatal("double release handed the same buffer out twice")
	}
	// Unpooled tensors and views never enter the pool.
	n := New(32)
	n.Release()
	v := Acquire(4, 8).Reshape(8, 4)
	v.Release()
	g1, _, _ := PoolStats()
	_ = Acquire(32)
	g2, _, _ := PoolStats()
	if g2 != g1+1 {
		t.Fatalf("PoolStats gets did not advance: %d -> %d", g1, g2)
	}
}

func TestSetPoolingToggle(t *testing.T) {
	prev := SetPooling(false)
	defer SetPooling(prev)
	a := Acquire(64)
	a.Release()
	b := Acquire(64)
	if Aliases(a, b) {
		t.Fatal("disabled pool still reused a buffer")
	}
	SetPooling(true)
	c := Acquire(64)
	c.Release()
	d := Acquire(64)
	if !Aliases(c, d) {
		t.Fatal("re-enabled pool did not reuse a buffer")
	}
	d.Release()
}

func TestAliases(t *testing.T) {
	a := Acquire(4, 4)
	v := a.Reshape(16)
	b := Acquire(4, 4)
	if !Aliases(a, v) {
		t.Fatal("view does not alias its base")
	}
	if Aliases(a, b) {
		t.Fatal("distinct tensors reported aliasing")
	}
	if !Aliases(a, a) {
		t.Fatal("tensor must alias itself")
	}
	if Aliases(a, nil) || Aliases(nil, b) {
		t.Fatal("nil aliasing")
	}
}

// TestConvPooledMatchesUnpooled pins that recycled buffers cannot change
// results: the same conv forward/backward with pooling on and off is
// bit-identical, including across repeated pooled iterations.
func TestConvPooledMatchesUnpooled(t *testing.T) {
	rng := NewRNG(13)
	x := RandNormal(rng, 0, 1, 3, 4, 9, 9)
	w := RandNormal(rng, 0, 0.5, 6, 4, 3, 3)
	gyShape := []int{3, 6, ConvOut(9, 3, 1, 1), ConvOut(9, 3, 1, 1)}
	gy := RandNormal(rng, 0, 1, gyShape...)

	prev := SetPooling(false)
	defer SetPooling(prev)
	wantY := Conv2D(x, w, 1, 1)
	wantGX, wantGW := Conv2DBackward(x, w, gy, 1, 1)

	SetPooling(true)
	for iter := 0; iter < 3; iter++ {
		y := Conv2D(x, w, 1, 1)
		gx, gw := Conv2DBackward(x, w, gy, 1, 1)
		if !Equal(y, wantY, 0) {
			t.Fatalf("pooled conv forward differs at iter %d", iter)
		}
		if !Equal(gx, wantGX, 0) || !Equal(gw, wantGW, 0) {
			t.Fatalf("pooled conv backward differs at iter %d", iter)
		}
		y.Release()
		gx.Release()
		gw.Release()
	}
}
