// Package tensor implements dense float32 tensors and the numeric kernels
// (elementwise algebra, GEMM, convolution, pooling, softmax) that the TBD
// training engine is built on. Tensors are row-major and always contiguous;
// shape errors are programmer errors and panic with a descriptive message,
// matching the convention of numeric libraries where silent shape coercion
// hides bugs.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use New or the constructors below.
type Tensor struct {
	shape []int
	data  []float32
	// pooled marks a tensor currently owned by the buffer pool's caller;
	// Release clears it, making double-release a no-op. Views (Reshape)
	// and plain New tensors never carry it.
	pooled bool
}

// New returns a zero-filled tensor of the given shape. A tensor with no
// dimensions holds a single scalar element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly as many elements as the shape
// implies.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		if n > (1<<31)/d {
			panic(fmt.Sprintf("tensor: shape %v overflows element count", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice in row-major order. Mutations are visible
// to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Numel returns the total number of elements.
func (t *Tensor) Numel() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape. The element
// count must match. One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range out {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one inferred dimension")
			}
			infer = i
			continue
		}
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid Reshape dimension %d", d))
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer Reshape %v from %d elements", shape, len(t.data)))
		}
		out[infer] = len(t.data) / known
		known *= out[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, len(t.data)))
	}
	// A no-op reshape returns the tensor itself so pool ownership (and the
	// ability to Release) survives shape-normalization call sites.
	if len(out) == len(t.shape) {
		same := true
		for i := range out {
			if out[i] != t.shape[i] {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	return &Tensor{shape: out, data: t.data}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// ShareStorage repoints t's backing array at src's, so every subsequent
// read of t observes src's data without a copy. Shapes must match
// exactly. This is the weight-sharing primitive behind replicated
// serving: N per-replica networks alias one parameter snapshot, so the
// fleet's resident weight bytes stay those of a single model. Pooled
// tensors are refused on both sides — pool ownership assumes one backing
// array per tensor, and aliasing would let a Release recycle storage the
// other tensor still reads.
func (t *Tensor) ShareStorage(src *Tensor) {
	if !t.SameShape(src) {
		panic(fmt.Sprintf("tensor: ShareStorage shape mismatch %v vs %v", t.shape, src.shape))
	}
	if t.pooled || src.pooled {
		panic("tensor: ShareStorage on a pooled tensor")
	}
	t.data = src.data
}

// CopyFrom copies o's elements into t. Shapes must match.
func (t *Tensor) CopyFrom(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// String renders a compact description, eliding large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 8 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g]", t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1])
	}
	return b.String()
}
