package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{0.5, 0x3800},
		{2, 0x4000},
		{65504, 0x7bff}, // max finite half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Fatalf("Float32ToHalf(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := HalfToFloat32(c.h); back != c.f {
			t.Fatalf("HalfToFloat32(%#04x) = %g, want %g", c.h, back, c.f)
		}
	}
}

func TestHalfOverflowAndNaN(t *testing.T) {
	if got := HalfToFloat32(Float32ToHalf(1e10)); !math.IsInf(float64(got), 1) {
		t.Fatalf("1e10 should overflow to +Inf, got %g", got)
	}
	nan := Float32ToHalf(float32(math.NaN()))
	if back := HalfToFloat32(nan); !math.IsNaN(float64(back)) {
		t.Fatalf("NaN did not round-trip: %g", back)
	}
	// Tiny values underflow to zero with the right sign.
	if got := HalfToFloat32(Float32ToHalf(-1e-30)); got != 0 || !math.Signbit(float64(got)) {
		t.Fatalf("tiny negative should be -0, got %g", got)
	}
}

func TestPropHalfRoundTripRelativeError(t *testing.T) {
	// Half precision has a 10-bit mantissa: relative error <= 2^-11 for
	// normal-range values.
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		av := math.Abs(float64(v))
		if av < 6.2e-5 || av > 65000 { // outside half's normal range
			return true
		}
		back := float64(HalfToFloat32(Float32ToHalf(v)))
		rel := math.Abs(back-float64(v)) / av
		return rel <= 1.0/2048+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeHalfSlices(t *testing.T) {
	rng := NewRNG(1)
	src := make([]float32, 1000)
	for i := range src {
		src[i] = float32(rng.Norm())
	}
	enc := EncodeHalf(src)
	dec := DecodeHalf(enc)
	if len(enc) != len(src) || len(dec) != len(src) {
		t.Fatal("length mismatch")
	}
	var maxRel float64
	for i := range src {
		if src[i] == 0 {
			continue
		}
		rel := math.Abs(float64(dec[i]-src[i])) / math.Abs(float64(src[i]))
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1.0/1024 {
		t.Fatalf("max relative error %g too large", maxRel)
	}
}
