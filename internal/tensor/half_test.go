package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{0.5, 0x3800},
		{2, 0x4000},
		{65504, 0x7bff}, // max finite half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Fatalf("Float32ToHalf(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := HalfToFloat32(c.h); back != c.f {
			t.Fatalf("HalfToFloat32(%#04x) = %g, want %g", c.h, back, c.f)
		}
	}
}

func TestHalfOverflowAndNaN(t *testing.T) {
	if got := HalfToFloat32(Float32ToHalf(1e10)); !math.IsInf(float64(got), 1) {
		t.Fatalf("1e10 should overflow to +Inf, got %g", got)
	}
	nan := Float32ToHalf(float32(math.NaN()))
	if back := HalfToFloat32(nan); !math.IsNaN(float64(back)) {
		t.Fatalf("NaN did not round-trip: %g", back)
	}
	// Tiny values underflow to zero with the right sign.
	if got := HalfToFloat32(Float32ToHalf(-1e-30)); got != 0 || !math.Signbit(float64(got)) {
		t.Fatalf("tiny negative should be -0, got %g", got)
	}
}

func TestPropHalfRoundTripRelativeError(t *testing.T) {
	// Half precision has a 10-bit mantissa: relative error <= 2^-11 for
	// normal-range values.
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		av := math.Abs(float64(v))
		if av < 6.2e-5 || av > 65000 { // outside half's normal range
			return true
		}
		back := float64(HalfToFloat32(Float32ToHalf(v)))
		rel := math.Abs(back-float64(v)) / av
		return rel <= 1.0/2048+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestHalfExhaustiveRoundTrip decodes every one of the 65536 half bit
// patterns and re-encodes it. Every non-NaN pattern must survive exactly
// (half -> float32 is lossless, and the nearest half to an
// exactly-representable value is itself); NaNs keep NaN-ness and sign
// but canonicalize their payload.
func TestHalfExhaustiveRoundTrip(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := uint16(i)
		f := HalfToFloat32(h)
		back := Float32ToHalf(f)
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 { // NaN: payload may canonicalize
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("NaN %#04x re-encoded as non-NaN %#04x", h, back)
			}
			if back&0x8000 != h&0x8000 {
				t.Fatalf("NaN %#04x lost its sign: re-encoded %#04x", h, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("half %#04x -> float32 %g -> half %#04x (must round-trip exactly)", h, f, back)
		}
	}
}

// TestHalfRoundToNearestEvenTies pins the encoder to RNE at exact
// halfway points, in both the normal and subnormal ranges and at the
// overflow boundary. Round-half-up would fail every even-target case.
func TestHalfRoundToNearestEvenTies(t *testing.T) {
	pow := func(e int) float32 { return float32(math.Ldexp(1, e)) }
	cases := []struct {
		name string
		f    float32
		h    uint16
	}{
		// 2^-25 is exactly halfway between 0 and the smallest subnormal
		// 2^-24; the even neighbor is zero.
		{"tie-to-zero", pow(-25), 0x0000},
		{"tie-to-zero-neg", -pow(-25), 0x8000},
		// Just above the halfway point must round away from zero.
		{"above-tie-to-min-subnormal", pow(-25) * (1 + 1.0/1024), 0x0001},
		// 3*2^-25 sits between subnormals 0x0001 and 0x0002; even wins.
		{"tie-to-even-subnormal", 3 * pow(-25), 0x0002},
		// Below half of the smallest subnormal underflows to zero.
		{"underflow", pow(-26), 0x0000},
		// Halfway between the largest subnormal (0x03ff) and the smallest
		// normal (0x0400): 2047*2^-25, exact in float32; even is 0x0400.
		{"tie-subnormal-to-normal", 2047 * pow(-25), 0x0400},
		// 1 + 2^-11 is halfway between 1.0 (0x3c00) and 1+2^-10 (0x3c01).
		{"tie-to-even-normal", 1 + pow(-11), 0x3c00},
		// One float32 ulp above the tie (2^-24 would round back to the
		// tie in float32 itself) must go up.
		{"above-tie-normal", 1 + pow(-11) + pow(-23), 0x3c01},
		// 1 + 3*2^-11: halfway between 0x3c01 and 0x3c02; even wins.
		{"tie-to-even-normal-up", 1 + 3*pow(-11), 0x3c02},
		// 65520 is halfway between 65504 (max finite) and 65536; RNE
		// rounds to the even 65536, which overflows to infinity.
		{"tie-overflow-to-inf", 65520, 0x7c00},
		{"below-overflow-tie", 65519, 0x7bff},
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Errorf("%s: Float32ToHalf(%g) = %#04x, want %#04x", c.name, c.f, got, c.h)
		}
	}
}

// TestHalfSubnormalBoundaries walks the exact edges of the subnormal
// range through both directions of the conversion.
func TestHalfSubnormalBoundaries(t *testing.T) {
	minSub := float32(math.Ldexp(1, -24))    // 0x0001
	maxSub := float32(math.Ldexp(1023, -24)) // 0x03ff
	minNorm := float32(math.Ldexp(1, -14))   // 0x0400
	if got := Float32ToHalf(minSub); got != 0x0001 {
		t.Fatalf("min subnormal encodes to %#04x", got)
	}
	if got := HalfToFloat32(0x0001); got != minSub {
		t.Fatalf("0x0001 decodes to %g, want %g", got, minSub)
	}
	if got := Float32ToHalf(maxSub); got != 0x03ff {
		t.Fatalf("max subnormal %g encodes to %#04x", maxSub, got)
	}
	if got := HalfToFloat32(0x03ff); got != maxSub {
		t.Fatalf("0x03ff decodes to %g, want %g", got, maxSub)
	}
	if got := Float32ToHalf(minNorm); got != 0x0400 {
		t.Fatalf("min normal encodes to %#04x", got)
	}
	if got := HalfToFloat32(0x0400); got != minNorm {
		t.Fatalf("0x0400 decodes to %g, want %g", got, minNorm)
	}
}

// TestHalfSpecialSigns: NaN and infinity must keep their sign bit in
// both directions.
func TestHalfSpecialSigns(t *testing.T) {
	negNaN := math.Float32frombits(0xffc00000)
	if got := Float32ToHalf(negNaN); got&0x8000 == 0 || got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Fatalf("negative NaN encodes to %#04x", got)
	}
	if got := HalfToFloat32(0xfe00); !math.IsNaN(float64(got)) || !math.Signbit(float64(got)) {
		t.Fatalf("0xfe00 decodes to %g, want negative NaN", got)
	}
	if got := Float32ToHalf(float32(math.Inf(-1))); got != 0xfc00 {
		t.Fatalf("-Inf encodes to %#04x", got)
	}
	if got := HalfToFloat32(0xfc00); !math.IsInf(float64(got), -1) {
		t.Fatalf("0xfc00 decodes to %g, want -Inf", got)
	}
	// Negative zero keeps its sign through the round trip.
	negZero := math.Float32frombits(0x80000000)
	if got := Float32ToHalf(negZero); got != 0x8000 {
		t.Fatalf("-0 encodes to %#04x", got)
	}
	if got := HalfToFloat32(0x8000); got != 0 || !math.Signbit(float64(got)) {
		t.Fatalf("0x8000 decodes to %g, want -0", got)
	}
}

func TestEncodeDecodeHalfSlices(t *testing.T) {
	rng := NewRNG(1)
	src := make([]float32, 1000)
	for i := range src {
		src[i] = float32(rng.Norm())
	}
	enc := EncodeHalf(src)
	dec := DecodeHalf(enc)
	if len(enc) != len(src) || len(dec) != len(src) {
		t.Fatal("length mismatch")
	}
	var maxRel float64
	for i := range src {
		if src[i] == 0 {
			continue
		}
		rel := math.Abs(float64(dec[i]-src[i])) / math.Abs(float64(src[i]))
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1.0/1024 {
		t.Fatalf("max relative error %g too large", maxRel)
	}
}

// FuzzHalfRoundTrip checks conversion invariants over arbitrary float32
// bit patterns: the sign always survives, NaNs stay NaNs, values beyond
// the half range saturate to infinity, and everything in range lands
// within half an fp16 ulp (2^-11 relative for normals, 2^-25 absolute
// in the subnormal range).
func FuzzHalfRoundTrip(f *testing.F) {
	for _, seed := range []uint32{
		0x00000000, 0x80000000, // +/- 0
		0x3f800000, 0xbf800000, // +/- 1
		0x7f800000, 0xff800000, // +/- Inf
		0x7fc00001, 0xffc00000, // NaNs
		0x33000000, // 2^-25, the tie-to-zero case
		0x477ff000, // 65520, the tie-to-Inf case
		0x00000001, // smallest f32 subnormal
		0x38800000, // 2^-14, smallest half normal
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		h := Float32ToHalf(v)
		back := HalfToFloat32(h)

		if (h&0x8000 != 0) != math.Signbit(float64(v)) {
			t.Fatalf("%g (%#08x): sign lost in half %#04x", v, bits, h)
		}
		if math.Signbit(float64(back)) != math.Signbit(float64(v)) {
			t.Fatalf("%g (%#08x): sign lost in round trip %g", v, bits, back)
		}
		switch {
		case math.IsNaN(float64(v)):
			if !math.IsNaN(float64(back)) {
				t.Fatalf("NaN %#08x round-tripped to %g", bits, back)
			}
		case math.Abs(float64(v)) >= 65520:
			if !math.IsInf(float64(back), 0) {
				t.Fatalf("%g should saturate to Inf, got %g", v, back)
			}
		default:
			av := math.Abs(float64(v))
			diff := math.Abs(float64(back) - float64(v))
			if diff > math.Max(math.Ldexp(1, -25), av/2048) {
				t.Fatalf("%g (%#08x) -> %#04x -> %g: error %g exceeds half an fp16 ulp", v, bits, h, back, diff)
			}
		}
		// Re-encoding the rounded value is a fixed point (no drift).
		if h2 := Float32ToHalf(back); !math.IsNaN(float64(back)) && h2 != h {
			t.Fatalf("%g (%#08x): re-encode drifted %#04x -> %#04x", v, bits, h, h2)
		}
	})
}
