package tensor

import (
	"fmt"
	"math"
)

// apply2 runs f elementwise over same-shape tensors a and b into a new
// tensor.
func apply2(a, b *Tensor, op string, f func(x, y float32) float32) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	return apply2(a, b, "Add", func(x, y float32) float32 { return x + y })
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	return apply2(a, b, "Sub", func(x, y float32) float32 { return x - y })
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	return apply2(a, b, "Mul", func(x, y float32) float32 { return x * y })
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	return apply2(a, b, "Div", func(x, y float32) float32 { return x / y })
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", a.shape, b.shape))
	}
	for i := range a.data {
		a.data[i] += b.data[i]
	}
}

// AXPY computes a += alpha*b in place.
func AXPY(alpha float32, b, a *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %v vs %v", a.shape, b.shape))
	}
	for i := range a.data {
		a.data[i] += alpha * b.data[i]
	}
}

// Scale returns alpha * a in a new tensor.
func Scale(a *Tensor, alpha float32) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = alpha * a.data[i]
	}
	return out
}

// ScaleInPlace multiplies every element by alpha.
func (t *Tensor) ScaleInPlace(alpha float32) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// AddScalar returns a + c elementwise.
func AddScalar(a *Tensor, c float32) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + c
	}
	return out
}

// Apply returns f mapped over a into a new tensor.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// AddRowBroadcast returns m + row where m is [N, F] and row is [F] (or
// [1, F]); row is added to every row of m. Used for bias addition.
func AddRowBroadcast(m, row *Tensor) *Tensor {
	f := row.Numel()
	if m.Rank() < 1 || m.Numel()%f != 0 {
		panic(fmt.Sprintf("tensor: AddRowBroadcast %v + %v", m.shape, row.shape))
	}
	out := m.Clone()
	for i := 0; i < m.Numel(); i += f {
		for j := 0; j < f; j++ {
			out.data[i+j] += row.data[j]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	// Pairwise-ish accumulation in float64 for stability.
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float32 { return t.Sum() / float32(len(t.data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgmaxRows treats t as [N, F] (flattening trailing dims) and returns the
// argmax of each row. Used for classification accuracy.
func ArgmaxRows(t *Tensor) []int {
	if t.Rank() < 2 {
		panic("tensor: ArgmaxRows needs rank >= 2")
	}
	n := t.shape[0]
	f := t.Numel() / n
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := t.data[i*f : (i+1)*f]
		best, bi := float32(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// SumRows treats t as [N, F] and returns the column-wise sum, a tensor of
// shape [F]. Used for bias gradients.
func SumRows(t *Tensor) *Tensor {
	if t.Rank() < 2 {
		panic("tensor: SumRows needs rank >= 2")
	}
	n := t.shape[0]
	f := t.Numel() / n
	out := New(f)
	for i := 0; i < n; i++ {
		row := t.data[i*f : (i+1)*f]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank 2, got %v", a.shape))
	}
	n, m := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.data[j*n+i] = a.data[i*m+j]
		}
	}
	return out
}

// Concat concatenates tensors along axis 0. All trailing dimensions must
// match.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of nothing")
	}
	inner := ts[0].Numel() / ts[0].shape[0]
	rows := 0
	for _, t := range ts {
		if t.Numel()/t.shape[0] != inner {
			panic("tensor: Concat inner-size mismatch")
		}
		rows += t.shape[0]
	}
	shape := append([]int{rows}, ts[0].shape[1:]...)
	out := New(shape...)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += t.Numel()
	}
	return out
}

// Equal reports whether a and b have the same shape and elements within
// tolerance eps.
func Equal(a, b *Tensor, eps float32) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		d := a.data[i] - b.data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}
