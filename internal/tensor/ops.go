package tensor

import (
	"fmt"
	"math"
)

// minElemsPerWorker is the smallest elementwise chunk worth dispatching to
// the worker pool; below it the channel round-trip dominates.
const minElemsPerWorker = 1 << 14

// checkSame panics unless a and b share a shape.
func checkSame(a, b *Tensor, op string) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// The binary ops are specialized loops rather than a shared closure-taking
// helper: the indirect call per element costs more than the arithmetic,
// and these run on every activation and gradient in training. Outputs are
// pool-backed; large tensors are chunked across the worker pool (chunking
// is elementwise-disjoint, so results are bit-identical to serial). Each
// op branches on rowWorkers before building its dispatch closure so the
// serial path — the common case for activation-sized tensors — allocates
// nothing.

func addRange(ov, av, bv []float32) {
	for i := range ov {
		ov[i] = av[i] + bv[i]
	}
}

func subRange(ov, av, bv []float32) {
	for i := range ov {
		ov[i] = av[i] - bv[i]
	}
}

func mulRange(ov, av, bv []float32) {
	for i := range ov {
		ov[i] = av[i] * bv[i]
	}
}

func divRange(ov, av, bv []float32) {
	for i := range ov {
		ov[i] = av[i] / bv[i]
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame(a, b, "Add")
	out := acquireDirty(a.shape...)
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		addRange(out.data, a.data, b.data)
		return out
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		addRange(out.data[lo:hi], a.data[lo:hi], b.data[lo:hi])
	})
	return out
}

// AddInto computes dst = a + b elementwise into the caller's buffer and
// returns dst. dst may alias a or b.
func AddInto(dst, a, b *Tensor) *Tensor {
	checkSame(a, b, "AddInto")
	checkSame(dst, a, "AddInto")
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		addRange(dst.data, a.data, b.data)
		return dst
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		addRange(dst.data[lo:hi], a.data[lo:hi], b.data[lo:hi])
	})
	return dst
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame(a, b, "Sub")
	out := acquireDirty(a.shape...)
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		subRange(out.data, a.data, b.data)
		return out
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		subRange(out.data[lo:hi], a.data[lo:hi], b.data[lo:hi])
	})
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame(a, b, "Mul")
	out := acquireDirty(a.shape...)
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		mulRange(out.data, a.data, b.data)
		return out
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		mulRange(out.data[lo:hi], a.data[lo:hi], b.data[lo:hi])
	})
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	checkSame(a, b, "Div")
	out := acquireDirty(a.shape...)
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		divRange(out.data, a.data, b.data)
		return out
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		divRange(out.data[lo:hi], a.data[lo:hi], b.data[lo:hi])
	})
	return out
}

func accumRange(av, bv []float32) {
	for i := range av {
		av[i] += bv[i]
	}
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	checkSame(a, b, "AddInPlace")
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		accumRange(a.data, b.data)
		return
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		accumRange(a.data[lo:hi], b.data[lo:hi])
	})
}

func axpyRange(alpha float32, av, bv []float32) {
	for i := range av {
		av[i] += alpha * bv[i]
	}
}

// AXPY computes a += alpha*b in place.
func AXPY(alpha float32, b, a *Tensor) {
	checkSame(a, b, "AXPY")
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		axpyRange(alpha, a.data, b.data)
		return
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		axpyRange(alpha, a.data[lo:hi], b.data[lo:hi])
	})
}

func scaleRange(alpha float32, ov, av []float32) {
	for i := range ov {
		ov[i] = alpha * av[i]
	}
}

// Scale returns alpha * a in a new tensor.
func Scale(a *Tensor, alpha float32) *Tensor {
	out := acquireDirty(a.shape...)
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		scaleRange(alpha, out.data, a.data)
		return out
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		scaleRange(alpha, out.data[lo:hi], a.data[lo:hi])
	})
	return out
}

// ScaleInPlace multiplies every element by alpha.
func (t *Tensor) ScaleInPlace(alpha float32) {
	if rowWorkers(len(t.data), minElemsPerWorker) <= 1 {
		scaleRange(alpha, t.data, t.data)
		return
	}
	parallelRows(len(t.data), minElemsPerWorker, func(lo, hi int) {
		scaleRange(alpha, t.data[lo:hi], t.data[lo:hi])
	})
}

// AddScalar returns a + c elementwise.
func AddScalar(a *Tensor, c float32) *Tensor {
	out := acquireDirty(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + c
	}
	return out
}

func applyRange(ov, av []float32, f func(float32) float32) {
	for i := range ov {
		ov[i] = f(av[i])
	}
}

// Apply returns f mapped over a into a new tensor.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := acquireDirty(a.shape...)
	if rowWorkers(len(a.data), minElemsPerWorker) <= 1 {
		applyRange(out.data, a.data, f)
		return out
	}
	parallelRows(len(a.data), minElemsPerWorker, func(lo, hi int) {
		applyRange(out.data[lo:hi], a.data[lo:hi], f)
	})
	return out
}

// AddRowBroadcast returns m + row where m is [N, F] and row is [F] (or
// [1, F]); row is added to every row of m. Used for bias addition.
func AddRowBroadcast(m, row *Tensor) *Tensor {
	f := row.Numel()
	if m.Rank() < 1 || m.Numel()%f != 0 {
		panic(fmt.Sprintf("tensor: AddRowBroadcast %v + %v", m.shape, row.shape))
	}
	out := acquireDirty(m.shape...)
	copy(out.data, m.data)
	addRowBroadcastInPlace(out, row, f)
	return out
}

// AddRowBroadcastInPlace adds row [F] to every row of m [N, F] in place,
// the allocation-free bias addition used by the layers package.
func AddRowBroadcastInPlace(m, row *Tensor) {
	f := row.Numel()
	if m.Rank() < 1 || m.Numel()%f != 0 {
		panic(fmt.Sprintf("tensor: AddRowBroadcastInPlace %v + %v", m.shape, row.shape))
	}
	addRowBroadcastInPlace(m, row, f)
}

func addRowBroadcastRange(m, row []float32, f, lo, hi int) {
	for i := lo; i < hi; i++ {
		mrow := m[i*f : (i+1)*f]
		for j, v := range row {
			mrow[j] += v
		}
	}
}

func addRowBroadcastInPlace(m, row *Tensor, f int) {
	n := m.Numel() / f
	minRows := 1 + minElemsPerWorker/(f+1)
	if rowWorkers(n, minRows) <= 1 {
		addRowBroadcastRange(m.data, row.data, f, 0, n)
		return
	}
	parallelRows(n, minRows, func(lo, hi int) {
		addRowBroadcastRange(m.data, row.data, f, lo, hi)
	})
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	// Pairwise-ish accumulation in float64 for stability.
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float32 { return t.Sum() / float32(len(t.data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgmaxRows treats t as [N, F] (flattening trailing dims) and returns the
// argmax of each row. Used for classification accuracy.
func ArgmaxRows(t *Tensor) []int {
	if t.Rank() < 2 {
		panic("tensor: ArgmaxRows needs rank >= 2")
	}
	n := t.shape[0]
	f := t.Numel() / n
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := t.data[i*f : (i+1)*f]
		best, bi := float32(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// SumRows treats t as [N, F] and returns the column-wise sum, a tensor of
// shape [F]. Used for bias gradients.
func SumRows(t *Tensor) *Tensor {
	if t.Rank() < 2 {
		panic("tensor: SumRows needs rank >= 2")
	}
	n := t.shape[0]
	f := t.Numel() / n
	out := Acquire(f)
	for i := 0; i < n; i++ {
		row := t.data[i*f : (i+1)*f]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank 2, got %v", a.shape))
	}
	n, m := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.data[j*n+i] = a.data[i*m+j]
		}
	}
	return out
}

// Concat concatenates tensors along axis 0. All trailing dimensions must
// match.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of nothing")
	}
	inner := ts[0].Numel() / ts[0].shape[0]
	rows := 0
	for _, t := range ts {
		if t.Numel()/t.shape[0] != inner {
			panic("tensor: Concat inner-size mismatch")
		}
		rows += t.shape[0]
	}
	shape := append([]int{rows}, ts[0].shape[1:]...)
	out := New(shape...)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += t.Numel()
	}
	return out
}

// Equal reports whether a and b have the same shape and elements within
// tolerance eps.
func Equal(a, b *Tensor, eps float32) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		d := a.data[i] - b.data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}
