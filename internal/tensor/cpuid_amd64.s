// CPUID / XGETBV probes for the GEMM kernel-tier selection (tier.go).
// Leaf constants and feature bits are decoded on the Go side
// (cpuid_amd64.go); the assembly only moves register values.

#include "textflag.h"

// func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvRaw() (eax, edx uint32)
//
// Reads XCR0. Only called after CPUID reports OSXSAVE, so the
// instruction cannot fault.
TEXT ·xgetbvRaw(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
