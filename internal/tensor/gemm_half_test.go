package tensor

import (
	"math"
	"testing"
)

// halfGemmShapes covers single-sample serving rows (n=1), padded row
// tails, exact tiles, ragged columns, and the m<8 widen fallback.
var halfGemmShapes = [][3]int{
	{1, 16, 8}, {1, 64, 64}, {3, 9, 13}, {5, 31, 8}, {8, 8, 8},
	{8, 128, 65}, {17, 53, 40}, {32, 256, 256}, {4, 16, 5},
}

// halfGemmClose applies the fp16 GEMM equivalence criterion: the two
// paths compute identical products of identical (quantized) operands, so
// they differ only by summation order and FMA fusion — the same bound as
// the fp32 tier equivalence.
func halfGemmClose(a, b float32) bool {
	if ulpDiff32(a, b) <= gemmFMAMaxULP {
		return true
	}
	return math.Abs(float64(a)-float64(b)) <= gemmFMAAbsTol
}

// TestMatMulHalfMatchesFloat32 holds the half-storage GEMM to the fp32
// GEMM over the same quantized weights: quantization is the only
// intended numeric change, so re-widening the stored halves and running
// the fp32 path must agree within the FMA equivalence bound.
func TestMatMulHalfMatchesFloat32(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(61)
	for _, workers := range []int{1, 3} {
		SetParallelism(workers)
		for _, s := range halfGemmShapes {
			n, k, m := s[0], s[1], s[2]
			a := RandNormal(rng, 0, 1, n, k)
			w := RandNormal(rng, 0, 1, k, m)
			bias := RandNormal(rng, 0, 1, m)
			h := NewHalfMatrix(w)
			wq := h.Float32() // same quantized values the half path reads
			for _, act := range []ActKind{ActNone, ActReLU, ActTanh} {
				want := MatMulBiasAct(a, wq, bias, act)
				got := MatMulHalfBiasAct(a, h, bias, act)
				for i := range want.Data() {
					wv, gv := want.Data()[i], got.Data()[i]
					if !halfGemmClose(wv, gv) {
						t.Fatalf("shape=%v act=%v workers=%d: [%d] half=%v fp32=%v (%d ULP)",
							s, act, workers, i, gv, wv, ulpDiff32(wv, gv))
					}
				}
				got.Release()
				want.Release()
			}
		}
	}
}

// TestMatMulHalfFastMatchesWiden compares the F16C fast path against the
// widen-to-fp32 fallback on the same HalfMatrix, by switching tiers.
// Skips on hosts where only one path exists.
func TestMatMulHalfFastMatchesWiden(t *testing.T) {
	if !haveF16CKernels {
		t.Skip("F16C kernels not installed")
	}
	forceGemmTier(t, "avx2")
	rng := NewRNG(62)
	for _, s := range halfGemmShapes {
		n, k, m := s[0], s[1], s[2]
		a := RandNormal(rng, 0, 1, n, k)
		w := RandNormal(rng, 0, 1, k, m)
		h := NewHalfMatrix(w)
		if _, err := SetGemmKernelTier("avx2"); err != nil {
			t.Fatal(err)
		}
		fast := MatMulHalfBiasAct(a, h, nil, ActNone)
		if _, err := SetGemmKernelTier("ref"); err != nil {
			t.Fatal(err)
		}
		widen := MatMulHalfBiasAct(a, h, nil, ActNone)
		for i := range fast.Data() {
			fv, wv := fast.Data()[i], widen.Data()[i]
			if !halfGemmClose(fv, wv) {
				t.Fatalf("shape=%v: [%d] fast=%v widen=%v (%d ULP)", s, i, fv, wv, ulpDiff32(fv, wv))
			}
		}
		widen.Release()
		fast.Release()
	}
}

// TestMatMulHalfParallelMatchesSerial pins split invariance for the half
// path: 8-aligned splits and fixed reduction orders make worker count
// invisible, exactly as for the fp32 tiers.
func TestMatMulHalfParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(63)
	for _, s := range halfGemmShapes {
		n, k, m := s[0], s[1], s[2]
		a := RandNormal(rng, 0, 1, n, k)
		h := NewHalfMatrix(RandNormal(rng, 0, 1, k, m))
		SetParallelism(1)
		serial := MatMulHalfBiasAct(a, h, nil, ActNone)
		for _, workers := range []int{2, 5} {
			SetParallelism(workers)
			parallel := MatMulHalfBiasAct(a, h, nil, ActNone)
			if !Equal(serial, parallel, 0) {
				t.Fatalf("shape=%v workers=%d: half GEMM not split-invariant", s, workers)
			}
			parallel.Release()
		}
		serial.Release()
	}
}

// TestHalfMatrixQuantizationIdempotent: widening and re-quantizing must
// reproduce the stored bit patterns (half -> float32 -> half is exact).
func TestHalfMatrixQuantizationIdempotent(t *testing.T) {
	rng := NewRNG(64)
	w := RandNormal(rng, 0, 2, 17, 23)
	h := NewHalfMatrix(w)
	if h.Rows() != 17 || h.Cols() != 23 {
		t.Fatalf("dims %dx%d", h.Rows(), h.Cols())
	}
	if h.Bytes() != 17*23*2 {
		t.Fatalf("Bytes() = %d, want %d", h.Bytes(), 17*23*2)
	}
	h2 := NewHalfMatrix(h.Float32())
	for i := range h.data {
		if h.data[i] != h2.data[i] {
			t.Fatalf("[%d] requantized %#04x != stored %#04x", i, h2.data[i], h.data[i])
		}
	}
}

// TestHalfPackSeparateSizeClass pins the pool satellite: fp16 B panels
// draw from their own uint16 size classes, counted and retained (at two
// bytes per element) independently of fp32 pack scratch.
func TestHalfPackSeparateSizeClass(t *testing.T) {
	var p Pool
	buf := p.getPackHalf(100)
	if len(buf) != 100 {
		t.Fatalf("getPackHalf(100) returned len %d", len(buf))
	}
	p.putPackHalf(buf)
	buf2 := p.getPackHalf(90)
	if &buf2[0] != &buf[:1][0] {
		t.Fatal("getPackHalf did not reuse the released buffer")
	}
	if gets, hits := p.packHalfGets.Load(), p.packHalfHits.Load(); gets != 2 || hits != 1 {
		t.Fatalf("half pack stats gets=%d hits=%d, want 2/1", gets, hits)
	}
	if g := p.packGets.Load(); g != 0 {
		t.Fatalf("fp32 pack counter moved (%d) on uint16 traffic", g)
	}

	if !GemmHalfFast() {
		t.Skip("fast half path unavailable; shared-pool half counters not exercised")
	}
	s0 := PoolStatsSnapshot()
	rng := NewRNG(65)
	a := RandNormal(rng, 0, 1, 8, 32)
	h := NewHalfMatrix(RandNormal(rng, 0, 1, 32, 16))
	MatMulHalfBiasAct(a, h, nil, ActNone).Release()
	d := PoolStatsSnapshot().Sub(s0)
	if d.PackHalfGets == 0 {
		t.Fatal("fast half GEMM did not request uint16 pack scratch")
	}
}
