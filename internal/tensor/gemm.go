package tensor

// BLIS-style packed GEMM core. The driver packs panels of both operands
// into contiguous pooled scratch and hands them to a register-tiled
// 4x4 micro-kernel (SSE assembly on amd64, pure Go elsewhere — see
// gemm_kernels.go); ragged remainders fall back to the PR 1 reference
// kernels in gemm_ref.go.
//
// Layout of the packed panels:
//
//   A panel (one 4-row micro-tile, all k):   ap[(p*4+r)*4 + lane] = a(i0+r, p)
//     Each element is replicated across 4 lanes so the micro-kernel loads
//     it with one 16-byte MOVUPS instead of a scalar load + shuffle —
//     broadcasts would serialize on the shuffle port, loads dual-issue.
//   B panel (one 4-column strip, all k):     bp[j0*k + p*4 + c] = b(p, j0+c)
//     Column strips are stored back to back, so strip j0 starts at
//     bp[j0*k] and streams contiguously over p.
//
// Bit-identity contract: every output element is reduced in exactly the
// order the reference kernels use. Plain and transposed-A reduce k in
// groups of four combined as one expression tree plus a scalar tail
// (valid against the reference's k-blocking because gemmBlockK % 4 == 0);
// transposed-B reduces strictly sequentially, with dst added once at the
// end in accumulate mode. Row tiling, column strip order, worker splits,
// and packing never touch the per-element order, so the packed kernels,
// the reference kernels, and the serial path all produce identical bits.
//
// Fused epilogues: an optional bias-add + activation is applied to each
// 4-row block as soon as its columns are complete — after the full k
// reduction, matching the unfused "GEMM, then bias pass, then activation
// pass" composition element for element while the block is still hot in
// registers/L1.

const (
	// microM x microN is the register tile: 4 output rows x 4 output
	// columns (one SSE vector wide), 4 accumulator vectors live.
	microM = 4
	microN = 4
	// packedMinWork gates the packed path: below this many multiply-adds
	// the packing traffic costs more than the micro-kernel saves, and the
	// reference kernels win. Both paths are bit-identical, so the gate is
	// a pure performance heuristic.
	packedMinWork = 1 << 13
)

// gemmLayout selects which operand is logically transposed.
type gemmLayout uint8

const (
	layPlain  gemmLayout = iota // dst = a [n,k] @ b [k,m]
	layTransA                   // dst = aᵀ @ b for a [k,n], b [k,m]
	layTransB                   // dst = a @ bᵀ for a [n,k], b [m,k]
)

// epilogue is a fused write-back transform: optional per-column bias
// (dense layers), optional per-row bias (conv channels), then an
// activation. Only meaningful in overwrite mode.
type epilogue struct {
	colBias []float32 // len m, added to every row; nil = none
	rowBias []float32 // len n, rowBias[i] added across row i; nil = none
	act     ActKind
}

// applyEpilogueRows applies ep to dst rows [lo, hi) of an [n, m] matrix.
// Bias precedes activation, matching the unfused layer composition.
func applyEpilogueRows(dst []float32, m, lo, hi int, ep *epilogue) {
	if ep == nil {
		return
	}
	for i := lo; i < hi; i++ {
		row := dst[i*m : (i+1)*m]
		if ep.colBias != nil {
			cb := ep.colBias[:len(row)]
			for j := range row {
				row[j] += cb[j]
			}
		}
		if ep.rowBias != nil {
			rb := ep.rowBias[i]
			for j := range row {
				row[j] += rb
			}
		}
		switch ep.act {
		case ActReLU:
			for j, v := range row {
				if !(v > 0) {
					row[j] = 0
				}
			}
		case ActSigmoid:
			for j, v := range row {
				row[j] = Sigmoid32(v)
			}
		case ActTanh:
			for j, v := range row {
				row[j] = Tanh32(v)
			}
		}
	}
}

// packedWorthIt reports whether the packed path pays for the given shape.
func packedWorthIt(n, k, m int) bool {
	return n >= microM && m >= microN && k >= 2 && n*k*m >= packedMinWork
}

// gemmSerial runs one GEMM entirely on the calling goroutine. accum
// selects dst += product (epilogues not allowed) versus dst = product;
// overwrite mode never reads dst, so it may be dirty.
func gemmSerial(dst, a, b []float32, n, k, m int, lay gemmLayout, accum bool, ep *epilogue) {
	tier := currentGemmTier()
	if tier == tierAVX2 && wideWorthIt(n, k, m) {
		gemmSerialWide(dst, a, b, n, k, m, lay, accum, ep)
		return
	}
	if !packedWorthIt(n, k, m) {
		gemmRefRange(dst, a, b, n, k, m, lay, accum, 0, n)
		applyEpilogueRows(dst, m, 0, n, ep)
		return
	}
	tree, seq := kernels4x4(tier)
	bp := getPackBuf(k * (m &^ 3))
	packBRange(bp, b, k, m, lay, 0, m&^3)
	gemmPackedRows(dst, a, b, bp, n, k, m, 0, n, lay, accum, ep, tree, seq)
	putPackBuf(bp)
}

// gemmParallel is gemmSerial with output rows split across the worker
// pool. The B panel is packed once (in parallel for large panels) and
// shared read-only by every worker; each worker packs its own A tiles
// into per-worker pooled scratch.
func gemmParallel(dst, a, b []float32, n, k, m int, lay gemmLayout, accum bool, ep *epilogue) {
	minRows := gemmMinRows(k, m)
	if rowWorkers(n, minRows) <= 1 {
		gemmSerial(dst, a, b, n, k, m, lay, accum, ep)
		return
	}
	tier := currentGemmTier()
	if tier == tierAVX2 && wideWorthIt(n, k, m) {
		gemmParallelWide(dst, a, b, n, k, m, lay, accum, ep)
		return
	}
	if !packedWorthIt(n, k, m) {
		parallelRows(n, minRows, func(lo, hi int) {
			gemmRefRange(dst, a, b, n, k, m, lay, accum, lo, hi)
			applyEpilogueRows(dst, m, lo, hi, ep)
		})
		return
	}
	tree, seq := kernels4x4(tier)
	m4 := m &^ 3
	bp := getPackBuf(k * m4)
	// Pack column strips in parallel when the panel is big enough; strips
	// write disjoint bp regions.
	packMin := 1 + minElemsPerWorker/(4*k+1)
	if rowWorkers(m4/4, packMin) <= 1 {
		packBRange(bp, b, k, m, lay, 0, m4)
	} else {
		parallelRows(m4/4, packMin, func(slo, shi int) {
			packBRange(bp, b, k, m, lay, slo*4, shi*4)
		})
	}
	parallelRowsAligned(n, microM, minRows, func(lo, hi int) {
		gemmPackedRows(dst, a, b, bp, n, k, m, lo, hi, lay, accum, ep, tree, seq)
	})
	putPackBuf(bp)
}

// gemmRefRange runs the reference kernel for output rows [lo, hi).
// Overwrite mode zeroes the region first where the reference kernel only
// accumulates; 0 + x reproduces x's bits (including NaNs), so this is
// identical to a true overwrite.
func gemmRefRange(dst, a, b []float32, n, k, m int, lay gemmLayout, accum bool, lo, hi int) {
	if lo >= hi {
		return
	}
	switch lay {
	case layPlain:
		if !accum {
			clear(dst[lo*m : hi*m])
		}
		gemmRefInto(dst[lo*m:hi*m], a[lo*k:hi*k], b, hi-lo, k, m)
	case layTransA:
		if !accum {
			clear(dst[lo*m : hi*m])
		}
		gemmRefTransASub(dst, a, b, n, k, m, lo, hi)
	case layTransB:
		if accum {
			gemmRefTransBAcc(dst[lo*m:hi*m], a[lo*k:hi*k], b, hi-lo, k, m)
		} else {
			gemmRefTransBInto(dst[lo*m:hi*m], a[lo*k:hi*k], b, hi-lo, k, m)
		}
	}
}

// gemmPackedRows computes output rows [lo, hi) against a pre-packed B
// panel bp. Full 4-row tiles go through the tree/seq micro-kernels (the
// tier-selected 4x4 pair — see kernels4x4); the row tail falls back to
// the reference kernels, and ragged columns [m&^3, m) use edge kernels
// that replicate the reference reduction orders.
func gemmPackedRows(dst, a, b, bp []float32, n, k, m, lo, hi int, lay gemmLayout, accum bool, ep *epilogue, tree, seq microFn) {
	m4 := m &^ 3
	i0 := lo
	if hi-lo >= microM {
		ap := getPackBuf(4 * microM * k)
		for ; i0+microM <= hi; i0 += microM {
			packATile(ap, a, n, k, i0, lay)
			if lay == layTransB {
				for j0 := 0; j0 < m4; j0 += microN {
					seq(dst[i0*m+j0:], m, ap, bp[j0*k:], k, accum)
				}
			} else {
				for j0 := 0; j0 < m4; j0 += microN {
					tree(dst[i0*m+j0:], m, ap, bp[j0*k:], k, accum)
				}
			}
			gemmEdgeCols(dst, a, b, n, k, m, i0, i0+microM, lay, accum, m4)
			applyEpilogueRows(dst, m, i0, i0+microM, ep)
		}
		putPackBuf(ap)
	}
	if i0 < hi {
		gemmRefRange(dst, a, b, n, k, m, lay, accum, i0, hi)
		applyEpilogueRows(dst, m, i0, hi, ep)
	}
}

// packATile packs the 4-row micro-tile starting at output row i0 into
// ap, replicating each element across 4 lanes (see the layout comment at
// the top of the file).
func packATile(ap, a []float32, n, k, i0 int, lay gemmLayout) {
	if lay == layTransA {
		// a is [k, n]; tile rows are the strided columns i0..i0+3.
		for p := 0; p < k; p++ {
			s := a[p*n+i0 : p*n+i0+4]
			q := ap[p*16 : p*16+16]
			v := s[0]
			q[0], q[1], q[2], q[3] = v, v, v, v
			v = s[1]
			q[4], q[5], q[6], q[7] = v, v, v, v
			v = s[2]
			q[8], q[9], q[10], q[11] = v, v, v, v
			v = s[3]
			q[12], q[13], q[14], q[15] = v, v, v, v
		}
		return
	}
	// Plain and transposed-B share the same [n, k] row-major a.
	r0 := a[i0*k : (i0+1)*k]
	r1 := a[(i0+1)*k : (i0+2)*k]
	r2 := a[(i0+2)*k : (i0+3)*k]
	r3 := a[(i0+3)*k : (i0+4)*k]
	for p := 0; p < k; p++ {
		q := ap[p*16 : p*16+16]
		v := r0[p]
		q[0], q[1], q[2], q[3] = v, v, v, v
		v = r1[p]
		q[4], q[5], q[6], q[7] = v, v, v, v
		v = r2[p]
		q[8], q[9], q[10], q[11] = v, v, v, v
		v = r3[p]
		q[12], q[13], q[14], q[15] = v, v, v, v
	}
}

// packBRange packs B column strips [jlo, jhi) (both multiples of 4) into
// bp. Plain/transposed-A read contiguous 4-element runs of b's rows;
// transposed-B gathers down four b rows at once.
func packBRange(bp, b []float32, k, m int, lay gemmLayout, jlo, jhi int) {
	if lay == layTransB {
		for j0 := jlo; j0 < jhi; j0 += 4 {
			s0 := b[j0*k : (j0+1)*k]
			s1 := b[(j0+1)*k : (j0+2)*k]
			s2 := b[(j0+2)*k : (j0+3)*k]
			s3 := b[(j0+3)*k : (j0+4)*k]
			q := bp[j0*k : (j0+4)*k]
			for p := 0; p < k; p++ {
				q[p*4] = s0[p]
				q[p*4+1] = s1[p]
				q[p*4+2] = s2[p]
				q[p*4+3] = s3[p]
			}
		}
		return
	}
	for j0 := jlo; j0 < jhi; j0 += 4 {
		q := bp[j0*k : (j0+4)*k]
		for p := 0; p < k; p++ {
			copy(q[p*4:p*4+4], b[p*m+j0:p*m+j0+4])
		}
	}
}

// gemmEdgeCols computes the ragged column remainder [mAligned, m) for
// output rows [i0, i1), replicating the reference kernels' per-element
// reduction order: 4-wide grouped expression trees for plain/transposed-A,
// the dotPair/dotOne split reductions for transposed-B. mAligned is the
// caller's strip alignment (m&^3 for the 4x4 path, m&^7 for the wide
// path); the per-column order is independent of it for plain/transposed-A,
// while transposed-B's pair/one grouping starts at mAligned — fixed per
// shape, so still split-invariant.
func gemmEdgeCols(dst, a, b []float32, n, k, m, i0, i1 int, lay gemmLayout, accum bool, mAligned int) {
	m4 := mAligned
	if m4 == m {
		return
	}
	switch lay {
	case layPlain:
		for i := i0; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			for j := m4; j < m; j++ {
				var c float32
				if accum {
					c = dst[i*m+j]
				}
				p := 0
				for ; p+4 <= k; p += 4 {
					c += arow[p]*b[p*m+j] + arow[p+1]*b[(p+1)*m+j] +
						arow[p+2]*b[(p+2)*m+j] + arow[p+3]*b[(p+3)*m+j]
				}
				for ; p < k; p++ {
					c += arow[p] * b[p*m+j]
				}
				dst[i*m+j] = c
			}
		}
	case layTransA:
		for i := i0; i < i1; i++ {
			for j := m4; j < m; j++ {
				var c float32
				if accum {
					c = dst[i*m+j]
				}
				p := 0
				for ; p+4 <= k; p += 4 {
					c += a[p*n+i]*b[p*m+j] + a[(p+1)*n+i]*b[(p+1)*m+j] +
						a[(p+2)*n+i]*b[(p+2)*m+j] + a[(p+3)*n+i]*b[(p+3)*m+j]
				}
				for ; p < k; p++ {
					c += a[p*n+i] * b[p*m+j]
				}
				dst[i*m+j] = c
			}
		}
	case layTransB:
		for i := i0; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			j := m4
			for j+2 <= m {
				r0, r1 := dotPair(arow, b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k])
				if accum {
					dst[i*m+j] += r0
					dst[i*m+j+1] += r1
				} else {
					dst[i*m+j] = r0
					dst[i*m+j+1] = r1
				}
				j += 2
			}
			if j < m {
				r := dotOne(arow, b[j*k:(j+1)*k])
				if accum {
					dst[i*m+j] += r
				} else {
					dst[i*m+j] = r
				}
			}
		}
	}
}
