package tensor

// Register-tiled 4x4 micro-kernels over the packed panel layout built by
// packATile/packBRange (see gemm.go). Two reduction orders exist because
// the reference kernels they must match bit-for-bit use two:
//
//   tree: k in groups of four combined as one expression tree, then a
//         scalar tail; accumulate mode seeds the accumulators from dst
//         (plain and transposed-A layouts).
//   seq:  strictly sequential over k from zero; accumulate mode adds the
//         finished sums to dst once at the end (transposed-B layout —
//         dotQuad accumulates from zero and the caller does dst += r).
//
// kernelTree4x4/kernelSeq4x4 are variables so the amd64 build can install
// SSE assembly versions (gemm_kernels_amd64.go) and tests can pin the
// pure-Go versions to cross-check the two implementations bit-for-bit.
// Both compute per-lane expressions identical to the Go source: 4-wide
// SIMD across output columns j keeps each output element's reduction
// order untouched, and no FMA is used (fused rounding would change bits).

// microFn is the shared micro-kernel signature: an MR x NR output tile at
// dst (row stride ldd) reduced over kc packed steps of ap and bp.
type microFn = func(dst []float32, ldd int, ap, bp []float32, kc int, accum bool)

var (
	kernelTree4x4 microFn = microTree4x4Go
	kernelSeq4x4  microFn = microSeq4x4Go
)

// microTree4x4Go computes a 4x4 output tile dst[r*ldd+c] (r, c in 0..3)
// from A tile ap (lane-replicated, 16 floats per k step) and B strip bp
// (4 floats per k step), kc reduction steps, tree order.
func microTree4x4Go(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	for r := 0; r < microM; r++ {
		d := dst[r*ldd : r*ldd+4]
		var c0, c1, c2, c3 float32
		if accum {
			c0, c1, c2, c3 = d[0], d[1], d[2], d[3]
		}
		p := 0
		for ; p+4 <= kc; p += 4 {
			a0 := ap[(p*4+r)*4]
			a1 := ap[((p+1)*4+r)*4]
			a2 := ap[((p+2)*4+r)*4]
			a3 := ap[((p+3)*4+r)*4]
			b0 := bp[p*4 : p*4+4]
			b1 := bp[(p+1)*4 : (p+1)*4+4]
			b2 := bp[(p+2)*4 : (p+2)*4+4]
			b3 := bp[(p+3)*4 : (p+3)*4+4]
			c0 += a0*b0[0] + a1*b1[0] + a2*b2[0] + a3*b3[0]
			c1 += a0*b0[1] + a1*b1[1] + a2*b2[1] + a3*b3[1]
			c2 += a0*b0[2] + a1*b1[2] + a2*b2[2] + a3*b3[2]
			c3 += a0*b0[3] + a1*b1[3] + a2*b2[3] + a3*b3[3]
		}
		for ; p < kc; p++ {
			av := ap[(p*4+r)*4]
			bq := bp[p*4 : p*4+4]
			c0 += av * bq[0]
			c1 += av * bq[1]
			c2 += av * bq[2]
			c3 += av * bq[3]
		}
		d[0], d[1], d[2], d[3] = c0, c1, c2, c3
	}
}

// microSeq4x4Go is microTree4x4Go with the sequential reduction order of
// dotQuad/dotQuad2: one product added per step, sums seeded from zero,
// dst added at the end in accumulate mode.
func microSeq4x4Go(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	for r := 0; r < microM; r++ {
		d := dst[r*ldd : r*ldd+4]
		var c0, c1, c2, c3 float32
		for p := 0; p < kc; p++ {
			av := ap[(p*4+r)*4]
			bq := bp[p*4 : p*4+4]
			c0 += av * bq[0]
			c1 += av * bq[1]
			c2 += av * bq[2]
			c3 += av * bq[3]
		}
		if accum {
			d[0] += c0
			d[1] += c1
			d[2] += c2
			d[3] += c3
		} else {
			d[0], d[1], d[2], d[3] = c0, c1, c2, c3
		}
	}
}
