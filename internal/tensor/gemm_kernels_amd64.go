//go:build amd64

package tensor

// SSE micro-kernel bindings (gemm_micro_amd64.s). The assembly computes
// the exact per-lane expressions of the Go kernels in gemm_kernels.go —
// same grouping, same order, no FMA — so installing them changes no bits;
// TestMicroKernelAsmMatchesGo cross-checks the two on every shape.

//go:noescape
func microTree4x4SSE(dst *float32, ldd int, ap, bp *float32, kc, accum int)

//go:noescape
func microSeq4x4SSE(dst *float32, ldd int, ap, bp *float32, kc, accum int)

func microTree4x4Asm(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	acc := 0
	if accum {
		acc = 1
	}
	// The caller guarantees len(dst) >= 3*ldd+4, len(ap) >= 16*kc,
	// len(bp) >= 4*kc, kc >= 1.
	microTree4x4SSE(&dst[0], ldd, &ap[0], &bp[0], kc, acc)
}

func microSeq4x4Asm(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	acc := 0
	if accum {
		acc = 1
	}
	microSeq4x4SSE(&dst[0], ldd, &ap[0], &bp[0], kc, acc)
}

func init() {
	kernelTree4x4 = microTree4x4Asm
	kernelSeq4x4 = microSeq4x4Asm
	haveSSEKernels = true
}
