package tensor

import (
	"fmt"
	"math"
)

// ConvOut returns the output spatial size for one dimension of a
// convolution or pooling with the given input size, kernel, stride, and
// symmetric padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers x [N, C, H, W] into a matrix of shape
// [N*outH*outW, C*kh*kw] so a convolution becomes a single GEMM, mirroring
// the cuDNN GEMM-based convolution algorithms the paper's frameworks invoke.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for %v k=%dx%d s=%d p=%d", x.shape, kh, kw, stride, pad))
	}
	out := New(n*oh*ow, c*kh*kw)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := out.data[row*c*kh*kw : (row+1)*c*kh*kw]
				col := 0
				for ch := 0; ch < c; ch++ {
					cb := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dst[col] = x.data[cb+iy*w+ix]
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// Col2Im scatters the gradient of an Im2Col matrix back to input layout.
// cols has shape [N*outH*outW, C*kh*kw]; the result has shape [N, C, H, W].
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := New(n, c, h, w)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols.data[row*c*kh*kw : (row+1)*c*kh*kw]
				col := 0
				for ch := 0; ch < c; ch++ {
					cb := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.data[cb+iy*w+ix] += src[col]
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// Conv2D computes a 2-D convolution of x [N, C, H, W] with weights
// w [F, C, kh, kw], returning [N, F, outH, outW].
func Conv2D(x, w *Tensor, stride, pad int) *Tensor {
	if x.Rank() != 4 || w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D needs NCHW/FCHW, got %v, %v", x.shape, w.shape))
	}
	if x.shape[1] != w.shape[1] {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch %v, %v", x.shape, w.shape))
	}
	n, f := x.shape[0], w.shape[0]
	kh, kw := w.shape[2], w.shape[3]
	oh, ow := ConvOut(x.shape[2], kh, stride, pad), ConvOut(x.shape[3], kw, stride, pad)
	cols := Im2Col(x, kh, kw, stride, pad) // [N*oh*ow, C*kh*kw]
	wm := w.Reshape(f, -1)                 // [F, C*kh*kw]
	prod := MatMulTransB(cols, wm)         // [N*oh*ow, F]
	out := New(n, f, oh, ow)               // reorder to NCHW
	for b := 0; b < n; b++ {
		for p := 0; p < oh*ow; p++ {
			row := prod.data[(b*oh*ow+p)*f : (b*oh*ow+p+1)*f]
			for ch := 0; ch < f; ch++ {
				out.data[((b*f+ch)*oh*ow)+p] = row[ch]
			}
		}
	}
	return out
}

// Conv2DBackward computes the gradients of a Conv2D. Given upstream gradient
// gy [N, F, outH, outW], it returns (gx, gw) matching x and w.
func Conv2DBackward(x, w, gy *Tensor, stride, pad int) (gx, gw *Tensor) {
	n, c, h, wid := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	f, kh, kw := w.shape[0], w.shape[2], w.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wid, kw, stride, pad)
	// Rearrange gy from NCHW to [N*oh*ow, F].
	g := New(n*oh*ow, f)
	for b := 0; b < n; b++ {
		for ch := 0; ch < f; ch++ {
			src := gy.data[(b*f+ch)*oh*ow : (b*f+ch+1)*oh*ow]
			for p, v := range src {
				g.data[(b*oh*ow+p)*f+ch] = v
			}
		}
	}
	cols := Im2Col(x, kh, kw, stride, pad) // [N*oh*ow, C*kh*kw]
	gwm := MatMulTransA(g, cols)           // [F, C*kh*kw]
	gw = gwm.Reshape(f, c, kh, kw)
	wm := w.Reshape(f, -1)
	gcols := MatMul(g, wm) // [N*oh*ow, C*kh*kw]
	gx = Col2Im(gcols, n, c, h, wid, kh, kw, stride, pad)
	return gx, gw
}

// MaxPool2D computes max pooling over x [N, C, H, W] and returns the pooled
// tensor plus the flat argmax indices needed by the backward pass.
func MaxPool2D(x *Tensor, k, stride int) (*Tensor, []int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := New(n, c, oh, ow)
	idx := make([]int, out.Numel())
	o := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			pbase := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bi := -1
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							iy, ix := oy*stride+ky, ox*stride+kx
							if iy < h && ix < w {
								v := plane[iy*w+ix]
								if v > best {
									best, bi = v, pbase+iy*w+ix
								}
							}
						}
					}
					out.data[o] = best
					idx[o] = bi
					o++
				}
			}
		}
	}
	return out, idx
}

// MaxPool2DBackward scatters gy back through the argmax indices produced by
// MaxPool2D.
func MaxPool2DBackward(gy *Tensor, idx []int, inShape []int) *Tensor {
	gx := New(inShape...)
	for i, v := range gy.data {
		gx.data[idx[i]] += v
	}
	return gx
}

// AvgPool2D computes average pooling over x [N, C, H, W].
func AvgPool2D(x *Tensor, k, stride int) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := New(n, c, oh, ow)
	inv := 1 / float32(k*k)
	o := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							s += plane[(oy*stride+ky)*w+ox*stride+kx]
						}
					}
					out.data[o] = s * inv
					o++
				}
			}
		}
	}
	return out
}

// AvgPool2DBackward distributes gy evenly over each pooling window.
func AvgPool2DBackward(gy *Tensor, inShape []int, k, stride int) *Tensor {
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	gx := New(inShape...)
	inv := 1 / float32(k*k)
	o := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gy.data[o] * inv
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							gx.data[base+(oy*stride+ky)*w+ox*stride+kx] += g
						}
					}
					o++
				}
			}
		}
	}
	return gx
}
