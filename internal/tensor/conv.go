package tensor

import (
	"fmt"
	"math"

	"tbd/internal/prof"
)

// ConvOut returns the output spatial size for one dimension of a
// convolution or pooling with the given input size, kernel, stride, and
// symmetric padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers x [N, C, H, W] into a channel-major matrix of shape
// [N, C*kh*kw, outH*outW] — one contiguous [C*kh*kw, outH*outW] block per
// image, the layout Caffe's CPU im2col uses — so a convolution becomes one
// GEMM per image, mirroring the cuDNN GEMM-based convolution algorithms
// the paper's frameworks invoke. Channel-major beats the patch-major
// alternative on the host: each lowered row is a run of whole input rows,
// so filling it is span copies instead of kw-element fragments.
// The result is pool-backed; callers that are done with it may Release it.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for %v k=%dx%d s=%d p=%d", x.shape, kh, kw, stride, pad))
	}
	sp := prof.Begin(prof.CatKernel, "im2col")
	if sp.Active() {
		// Pure data movement: one read of x, one write of the lowering.
		sp.SetBytes(4 * (int64(x.Numel()) + int64(n)*int64(c*kh*kw)*int64(oh*ow)))
	}
	// im2colRange writes every element (padding positions explicitly), so
	// the destination can skip the zero-fill memclr.
	out := acquireDirty(n, c*kh*kw, oh*ow)
	im2colRows(out, x, kh, kw, stride, pad)
	sp.End()
	return out
}

// im2colRows fills dst [N, C*kh*kw, oh*ow] from x, splitting lowered rows
// across the worker pool. Each row is written independently, so any split
// is bit-identical.
func im2colRows(dst, x *Tensor, kh, kw, stride, pad int) {
	n, c := x.shape[0], x.shape[1]
	ckk := c * kh * kw
	oh := ConvOut(x.shape[2], kh, stride, pad)
	ow := ConvOut(x.shape[3], kw, stride, pad)
	minRows := 1 + minElemsPerWorker/(oh*ow+1)
	if rowWorkers(n*ckk, minRows) <= 1 {
		im2colRange(dst.data, x.data, c, x.shape[2], x.shape[3], oh, ow, kh, kw, stride, pad, 0, n*ckk)
		return
	}
	parallelRows(n*ckk, minRows, func(rlo, rhi int) {
		im2colRange(dst.data, x.data, c, x.shape[2], x.shape[3], oh, ow, kh, kw, stride, pad, rlo, rhi)
	})
}

// im2colRange writes lowered rows [rlo, rhi), where row index r encodes
// (image, channel, ky, kx). Every element is stored — out-of-bounds taps
// get explicit zeros — so dst may be dirty. For stride 1 each output row
// segment is one contiguous copy from the input row, clipped at the
// padding borders.
func im2colRange(dst, x []float32, c, h, w, oh, ow, kh, kw, stride, pad, rlo, rhi int) {
	ckk := c * kh * kw
	ohw := oh * ow
	for r := rlo; r < rhi; r++ {
		b := r / ckk
		colIdx := r - b*ckk
		ch := colIdx / (kh * kw)
		rem := colIdx - ch*kh*kw
		ky := rem / kw
		kx := rem - ky*kw
		plane := x[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
		drow := dst[r*ohw : (r+1)*ohw]
		for oy := 0; oy < oh; oy++ {
			iy := oy*stride + ky - pad
			d := drow[oy*ow : (oy+1)*ow]
			if iy < 0 || iy >= h {
				for t := range d {
					d[t] = 0
				}
				continue
			}
			srow := plane[iy*w : (iy+1)*w]
			if stride == 1 {
				// Valid taps satisfy 0 <= ox+off < w; a kernel wider than
				// the padded input makes that range empty (lo > ow or
				// hi < 0), so both bounds are clamped into [0, ow].
				off := kx - pad // ix = ox + off
				lo, hi := 0, ow
				if off < 0 {
					lo = -off
					if lo > ow {
						lo = ow
					}
				}
				if ow+off > w {
					hi = w - off
				}
				if hi < lo {
					hi = lo
				}
				for t := 0; t < lo; t++ {
					d[t] = 0
				}
				if hi > lo {
					copy(d[lo:hi], srow[lo+off:hi+off])
				}
				for t := hi; t < ow; t++ {
					d[t] = 0
				}
				continue
			}
			for ox := 0; ox < ow; ox++ {
				if ix := ox*stride + kx - pad; ix >= 0 && ix < w {
					d[ox] = srow[ix]
				} else {
					d[ox] = 0
				}
			}
		}
	}
}

// Col2Im scatters the gradient of an Im2Col matrix back to input layout.
// cols has the channel-major shape [N, C*kh*kw, outH*outW]; the result has
// shape [N, C, H, W] and is pool-backed. Images are split across the
// worker pool — lowered rows overlap within an image but never across
// images, so the += scatter order per element is unchanged by the split.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	sp := prof.Begin(prof.CatKernel, "col2im")
	if sp.Active() {
		sp.SetBytes(4 * (int64(cols.Numel()) + int64(n)*int64(c)*int64(h)*int64(w)))
	}
	out := Acquire(n, c, h, w)
	col2imInto(out, cols, n, c, h, w, kh, kw, stride, pad)
	sp.End()
	return out
}

func col2imInto(out, cols *Tensor, n, c, h, w, kh, kw, stride, pad int) {
	if rowWorkers(n, 1) <= 1 {
		col2imRange(out.data, cols.data, c, h, w, kh, kw, stride, pad, 0, n)
		return
	}
	parallelRows(n, 1, func(blo, bhi int) {
		col2imRange(out.data, cols.data, c, h, w, kh, kw, stride, pad, blo, bhi)
	})
}

// col2imRange scatter-adds images [blo, bhi). For stride 1 each lowered
// row segment accumulates into one contiguous clipped span of the input
// row, the mirror image of im2colRange's copy.
func col2imRange(out, cols []float32, c, h, w, kh, kw, stride, pad, blo, bhi int) {
	ckk := c * kh * kw
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	ohw := oh * ow
	for b := blo; b < bhi; b++ {
		for colIdx := 0; colIdx < ckk; colIdx++ {
			ch := colIdx / (kh * kw)
			rem := colIdx - ch*kh*kw
			ky := rem / kw
			kx := rem - ky*kw
			plane := out[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			srow := cols[(b*ckk+colIdx)*ohw : (b*ckk+colIdx+1)*ohw]
			for oy := 0; oy < oh; oy++ {
				iy := oy*stride + ky - pad
				if iy < 0 || iy >= h {
					continue
				}
				s := srow[oy*ow : (oy+1)*ow]
				if stride == 1 {
					// Same clamping as im2colRange: a kernel wider than the
					// padded input leaves no valid taps for this (ky, kx).
					off := kx - pad
					lo, hi := 0, ow
					if off < 0 {
						lo = -off
						if lo > ow {
							lo = ow
						}
					}
					if ow+off > w {
						hi = w - off
					}
					if hi < lo {
						hi = lo
					}
					if hi > lo {
						// Align both spans so the single range check covers
						// the load and the store.
						sv := s[lo:hi]
						d := plane[iy*w+lo+off : iy*w+hi+off][:len(sv)]
						for t := range sv {
							d[t] += sv[t]
						}
					}
					continue
				}
				drow := plane[iy*w : (iy+1)*w]
				for ox := 0; ox < ow; ox++ {
					if ix := ox*stride + kx - pad; ix >= 0 && ix < w {
						drow[ix] += s[ox]
					}
				}
			}
		}
	}
}

// conv1x1Direct reports whether the convolution is a pointwise (1x1,
// stride 1, no padding) product, for which the im2col lowering of x is x
// itself viewed as [N, C, H*W] — no copy, no workspace.
func conv1x1Direct(kh, kw, stride, pad int) bool {
	return kh == 1 && kw == 1 && stride == 1 && pad == 0
}

// Conv2D computes a 2-D convolution of x [N, C, H, W] with weights
// w [F, C, kh, kw], returning a pool-backed [N, F, outH, outW].
func Conv2D(x, w *Tensor, stride, pad int) *Tensor {
	out, cols := conv2DForward(x, w, nil, ActNone, stride, pad)
	cols.Release()
	return out
}

// Conv2DFused is Conv2D with a per-channel bias (may be nil) and an
// activation fused into the GEMM write-back, bit-identical to the unfused
// Conv2D + bias pass + activation pass composition.
func Conv2DFused(x, w, bias *Tensor, act ActKind, stride, pad int) *Tensor {
	out, cols := conv2DForward(x, w, bias, act, stride, pad)
	cols.Release()
	return out
}

// Conv2DWithCols is Conv2D but also returns the im2col lowering of x so
// the caller can hand it back to Conv2DBackwardCols and skip recomputing
// it — the standard activation-memory-for-throughput trade the paper's
// frameworks make. Both returned tensors are pool-backed. For pointwise
// convolutions the returned lowering is a view of x (releasing it is a
// no-op).
func Conv2DWithCols(x, w *Tensor, stride, pad int) (out, cols *Tensor) {
	return conv2DForward(x, w, nil, ActNone, stride, pad)
}

// Conv2DWithColsFused is Conv2DWithCols with fused bias + activation.
func Conv2DWithColsFused(x, w, bias *Tensor, act ActKind, stride, pad int) (out, cols *Tensor) {
	return conv2DForward(x, w, bias, act, stride, pad)
}

// conv2DForward implements all Conv2D forward variants. Each image's
// output block [F, oh*ow] is w [F, C*kh*kw] times that image's lowered
// block — a plain GEMM written straight into NCHW layout, with no reorder
// pass. Images are split across the worker pool; the optional epilogue
// (per-channel bias = per-GEMM-row bias, then activation) is applied by
// the GEMM write-back.
func conv2DForward(x, w, bias *Tensor, act ActKind, stride, pad int) (out, cols *Tensor) {
	if x.Rank() != 4 || w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D needs NCHW/FCHW, got %v, %v", x.shape, w.shape))
	}
	if x.shape[1] != w.shape[1] {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch %v, %v", x.shape, w.shape))
	}
	n, f := x.shape[0], w.shape[0]
	kh, kw := w.shape[2], w.shape[3]
	oh, ow := ConvOut(x.shape[2], kh, stride, pad), ConvOut(x.shape[3], kw, stride, pad)
	ckk := x.shape[1] * kh * kw
	ohw := oh * ow
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != f) {
		panic(fmt.Sprintf("tensor: Conv2D bias %v, want [%d]", bias.shape, f))
	}
	sp := prof.Begin(prof.CatKernel, "conv2d.fwd")
	if sp.Active() {
		sp.SetFLOPs(2 * float64(n) * float64(f) * float64(ckk) * float64(ohw))
		sp.SetBytes(4 * (int64(x.Numel()) + int64(w.Numel()) + int64(n)*int64(f)*int64(ohw)))
	}
	if conv1x1Direct(kh, kw, stride, pad) {
		cols = x.Reshape(n, ckk, ohw)
	} else {
		cols = Im2Col(x, kh, kw, stride, pad) // [N, C*kh*kw, oh*ow]
	}
	var ep *epilogue
	if bias != nil {
		ep = &epilogue{rowBias: bias.data, act: act}
	} else if act != ActNone {
		ep = &epilogue{act: act}
	}
	out = acquireDirty(n, f, oh, ow)
	if rowWorkers(n, 1) <= 1 {
		convFwdImages(out.data, w.data, cols.data, f, ckk, ohw, 0, n, ep)
	} else {
		parallelRows(n, 1, func(blo, bhi int) {
			convFwdImages(out.data, w.data, cols.data, f, ckk, ohw, blo, bhi, ep)
		})
	}
	sp.End()
	return out, cols
}

func convFwdImages(dst, w, cols []float32, f, ckk, ohw, blo, bhi int, ep *epilogue) {
	for b := blo; b < bhi; b++ {
		gemmSerial(dst[b*f*ohw:(b+1)*f*ohw], w, cols[b*ckk*ohw:(b+1)*ckk*ohw], f, ckk, ohw, layPlain, false, ep)
	}
}

// Conv2DBackward computes the gradients of a Conv2D. Given upstream gradient
// gy [N, F, outH, outW], it returns pool-backed (gx, gw) matching x and w.
func Conv2DBackward(x, w, gy *Tensor, stride, pad int) (gx, gw *Tensor) {
	kh, kw := w.shape[2], w.shape[3]
	cols := Im2Col(x, kh, kw, stride, pad)
	gx, gw = Conv2DBackwardCols(cols, x.shape, w, gy, stride, pad)
	cols.Release()
	return gx, gw
}

// Conv2DBackwardCols is Conv2DBackward taking the forward pass's im2col
// lowering (from Conv2DWithCols) instead of recomputing it, plus the
// original input shape. Both gradients are computed per image directly
// from NCHW-layout gy: gw accumulates gy_b @ cols_bᵀ over images in fixed
// order, and the lowered input gradient is wᵀ @ gy_b per image.
func Conv2DBackwardCols(cols *Tensor, xShape []int, w, gy *Tensor, stride, pad int) (gx, gw *Tensor) {
	n, c, h, wid := xShape[0], xShape[1], xShape[2], xShape[3]
	f, kh, kw := w.shape[0], w.shape[2], w.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wid, kw, stride, pad)
	ohw := oh * ow
	ckk := c * kh * kw
	sp := prof.Begin(prof.CatKernel, "conv2d.bwd")
	if sp.Active() {
		// Two GEMMs per image (weight gradient and lowered input gradient),
		// each 2·f·ckk·ohw multiply-adds.
		sp.SetFLOPs(4 * float64(n) * float64(f) * float64(ckk) * float64(ohw))
		sp.SetBytes(4 * (int64(cols.Numel()) + int64(gy.Numel()) + int64(w.Numel()) + int64(n)*int64(c)*int64(h)*int64(wid)))
	}
	// gw is shaped [F, C, kh, kw] directly (no reshape view, so the buffer
	// keeps pool ownership). The image loop stays serial — accumulation
	// order is image-major — while workers split gw's output rows inside
	// each image's GEMM, which keeps every element's accumulation order
	// independent of the worker count.
	gw = Acquire(f, c, kh, kw)
	for b := 0; b < n; b++ {
		gyb := gy.data[b*f*ohw : (b+1)*f*ohw]
		colsb := cols.data[b*ckk*ohw : (b+1)*ckk*ohw]
		gemmParallel(gw.data, gyb, colsb, f, ohw, ckk, layTransB, true, nil)
	}
	if conv1x1Direct(kh, kw, stride, pad) {
		// Pointwise fast path: the lowered gradient IS the input gradient
		// ([ckk, ohw] = [C, H*W] per image), so skip the gcols buffer and
		// the Col2Im scatter (which would add each element exactly once)
		// and write wᵀ @ gy_b straight into gx.
		gx = acquireDirty(n, c, h, wid)
		if rowWorkers(n, 1) <= 1 {
			convBwdDataImages(gx.data, gy.data, w.data, f, ohw, ckk, 0, n)
		} else {
			parallelRows(n, 1, func(blo, bhi int) {
				convBwdDataImages(gx.data, gy.data, w.data, f, ohw, ckk, blo, bhi)
			})
		}
		sp.End()
		return gx, gw
	}
	gcols := acquireDirty(n, ckk, ohw)
	if rowWorkers(n, 1) <= 1 {
		convBwdDataImages(gcols.data, gy.data, w.data, f, ohw, ckk, 0, n)
	} else {
		parallelRows(n, 1, func(blo, bhi int) {
			convBwdDataImages(gcols.data, gy.data, w.data, f, ohw, ckk, blo, bhi)
		})
	}
	gx = Col2Im(gcols, n, c, h, wid, kh, kw, stride, pad)
	gcols.Release()
	sp.End()
	return gx, gw
}

func convBwdDataImages(gcols, gy, w []float32, f, ohw, ckk, blo, bhi int) {
	for b := blo; b < bhi; b++ {
		// gcols_b [ckk, ohw] = wᵀ [ckk, f] @ gy_b [f, ohw]
		gemmSerial(gcols[b*ckk*ohw:(b+1)*ckk*ohw], w, gy[b*f*ohw:(b+1)*f*ohw], ckk, f, ohw, layTransA, false, nil)
	}
}

// MaxPool2D computes max pooling over x [N, C, H, W] and returns the pooled
// tensor plus the flat argmax indices needed by the backward pass. Planes
// are split across the worker pool.
func MaxPool2D(x *Tensor, k, stride int) (*Tensor, []int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := acquireDirty(n, c, oh, ow)
	idx := make([]int, out.Numel())
	if rowWorkers(n*c, 1) <= 1 {
		maxPoolPlanes(out.data, idx, x.data, h, w, oh, ow, k, stride, 0, n*c)
		return out, idx
	}
	parallelRows(n*c, 1, func(plo, phi int) {
		maxPoolPlanes(out.data, idx, x.data, h, w, oh, ow, k, stride, plo, phi)
	})
	return out, idx
}

func maxPoolPlanes(dst []float32, idx []int, x []float32, h, w, oh, ow, k, stride, plo, phi int) {
	for pl := plo; pl < phi; pl++ {
		plane := x[pl*h*w : (pl+1)*h*w]
		pbase := pl * h * w
		o := pl * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				bi := -1
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						iy, ix := oy*stride+ky, ox*stride+kx
						if iy < h && ix < w {
							v := plane[iy*w+ix]
							if v > best {
								best, bi = v, pbase+iy*w+ix
							}
						}
					}
				}
				dst[o] = best
				idx[o] = bi
				o++
			}
		}
	}
}

// MaxPool2DBackward scatters gy back through the argmax indices produced by
// MaxPool2D.
func MaxPool2DBackward(gy *Tensor, idx []int, inShape []int) *Tensor {
	gx := Acquire(inShape...)
	for i, v := range gy.data {
		gx.data[idx[i]] += v
	}
	return gx
}

// AvgPool2D computes average pooling over x [N, C, H, W], planes split
// across the worker pool.
func AvgPool2D(x *Tensor, k, stride int) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := acquireDirty(n, c, oh, ow)
	inv := 1 / float32(k*k)
	if rowWorkers(n*c, 1) <= 1 {
		avgPoolPlanes(out.data, x.data, h, w, oh, ow, k, stride, inv, 0, n*c)
		return out
	}
	parallelRows(n*c, 1, func(plo, phi int) {
		avgPoolPlanes(out.data, x.data, h, w, oh, ow, k, stride, inv, plo, phi)
	})
	return out
}

func avgPoolPlanes(dst, x []float32, h, w, oh, ow, k, stride int, inv float32, plo, phi int) {
	for pl := plo; pl < phi; pl++ {
		plane := x[pl*h*w : (pl+1)*h*w]
		o := pl * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						s += plane[(oy*stride+ky)*w+ox*stride+kx]
					}
				}
				dst[o] = s * inv
				o++
			}
		}
	}
}

// AvgPool2DBackward distributes gy evenly over each pooling window.
func AvgPool2DBackward(gy *Tensor, inShape []int, k, stride int) *Tensor {
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	gx := Acquire(inShape...)
	inv := 1 / float32(k*k)
	o := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gy.data[o] * inv
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							gx.data[base+(oy*stride+ky)*w+ox*stride+kx] += g
						}
					}
					o++
				}
			}
		}
	}
	return gx
}
