// AVX2+FMA 8x8 micro-kernels for the packed GEMM core's avx2 tier. See
// gemm_kernels_wide.go for the reduction-order contract and gemm_wide.go
// for the wide packed panel layout.
//
// All three kernels compute an 8x8 output tile: 8 YMM accumulators Y0-Y7,
// one per output row, 8 output columns per vector lane. The A tile stores
// plain scalars (ap[p*8+r]); each is broadcast with VBROADCASTSS, a pure
// load-port µop that dual-issues with the FMAs. The B strip holds one
// 8-column vector per reduction step (fp32 for tree/seq, fp16 bit
// patterns widened in-register by VCVTPH2PS for the half kernel).
//
// Each accumulator receives its fused multiply-adds strictly in k order,
// so every output element is one sequential FMA chain — deterministic for
// a given shape, but fused rounding makes this tier ULP-equivalent to the
// reference kernels rather than bit-identical (gemmFMAMaxULP, tier.go).
//
// Plan 9 operand order for VEX ops reverses Intel:
//   VFMADD231PS Yb, Ya, Yacc  =>  Yacc += Ya * Yb
//
// Dst row addressing: SI = ldd*4, R9 = 3*SI, R12 = dst + 4*SI; rows 0-3
// index off DI, rows 4-7 off R12, with scales 1/2 and the 3*SI register.

#include "textflag.h"

// Zero all eight accumulators.
#define ZERO_ACC \
	VXORPS Y0, Y0, Y0; \
	VXORPS Y1, Y1, Y1; \
	VXORPS Y2, Y2, Y2; \
	VXORPS Y3, Y3, Y3; \
	VXORPS Y4, Y4, Y4; \
	VXORPS Y5, Y5, Y5; \
	VXORPS Y6, Y6, Y6; \
	VXORPS Y7, Y7, Y7

// Load dst pointer/stride args and derive the row bases.
#define LOAD_DST_ROWS \
	MOVQ dst+0(FP), DI; \
	MOVQ ldd+8(FP), SI; \
	SHLQ $2, SI; \
	LEAQ (SI)(SI*2), R9; \
	LEAQ (DI)(SI*4), R12

// Seed the accumulators from the eight dst rows.
#define LOAD_ACC \
	VMOVUPS (DI), Y0; \
	VMOVUPS (DI)(SI*1), Y1; \
	VMOVUPS (DI)(SI*2), Y2; \
	VMOVUPS (DI)(R9*1), Y3; \
	VMOVUPS (R12), Y4; \
	VMOVUPS (R12)(SI*1), Y5; \
	VMOVUPS (R12)(SI*2), Y6; \
	VMOVUPS (R12)(R9*1), Y7

// One reduction step: B vector in Yb, the step's a scalars at (AX) (first
// unrolled step) or 32(AX) (second). Broadcast temps Y10/Y11 alternate so
// decode never stalls on a single rename chain.
#define FMA_STEP0(Yb) \
	VBROADCASTSS (AX), Y10; \
	VFMADD231PS  Yb, Y10, Y0; \
	VBROADCASTSS 4(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y1; \
	VBROADCASTSS 8(AX), Y10; \
	VFMADD231PS  Yb, Y10, Y2; \
	VBROADCASTSS 12(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y3; \
	VBROADCASTSS 16(AX), Y10; \
	VFMADD231PS  Yb, Y10, Y4; \
	VBROADCASTSS 20(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y5; \
	VBROADCASTSS 24(AX), Y10; \
	VFMADD231PS  Yb, Y10, Y6; \
	VBROADCASTSS 28(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y7

#define FMA_STEP1(Yb) \
	VBROADCASTSS 32(AX), Y10; \
	VFMADD231PS  Yb, Y10, Y0; \
	VBROADCASTSS 36(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y1; \
	VBROADCASTSS 40(AX), Y10; \
	VFMADD231PS  Yb, Y10, Y2; \
	VBROADCASTSS 44(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y3; \
	VBROADCASTSS 48(AX), Y10; \
	VFMADD231PS  Yb, Y10, Y4; \
	VBROADCASTSS 52(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y5; \
	VBROADCASTSS 56(AX), Y10; \
	VFMADD231PS  Yb, Y10, Y6; \
	VBROADCASTSS 60(AX), Y11; \
	VFMADD231PS  Yb, Y11, Y7

// Store the accumulators to the eight dst rows and clear the upper YMM
// state before returning to SSE-era Go code.
#define STORE_ACC \
	VMOVUPS Y0, (DI); \
	VMOVUPS Y1, (DI)(SI*1); \
	VMOVUPS Y2, (DI)(SI*2); \
	VMOVUPS Y3, (DI)(R9*1); \
	VMOVUPS Y4, (R12); \
	VMOVUPS Y5, (R12)(SI*1); \
	VMOVUPS Y6, (R12)(SI*2); \
	VMOVUPS Y7, (R12)(R9*1)

// func microTree8x8AVX2(dst *float32, ldd int, ap, bp *float32, kc, accum int)
//
// Tree-contract kernel (plain and transposed-A layouts): accum != 0 seeds
// the accumulators from dst before the FMA chain.
TEXT ·microTree8x8AVX2(SB), NOSPLIT, $0-48
	LOAD_DST_ROWS
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	MOVQ accum+40(FP), DX

	TESTQ DX, DX
	JZ    tree_zero
	LOAD_ACC
	JMP  tree_body

tree_zero:
	ZERO_ACC

tree_body:
	CMPQ CX, $2
	JL   tree_tail

tree_pair:
	VMOVUPS (BX), Y8
	VMOVUPS 32(BX), Y9
	FMA_STEP0(Y8)
	FMA_STEP1(Y9)
	ADDQ $64, AX
	ADDQ $64, BX
	SUBQ $2, CX
	CMPQ CX, $2
	JGE  tree_pair

tree_tail:
	TESTQ CX, CX
	JZ    tree_done
	VMOVUPS (BX), Y8
	FMA_STEP0(Y8)

tree_done:
	STORE_ACC
	VZEROUPPER
	RET

// func microSeq8x8AVX2(dst *float32, ldd int, ap, bp *float32, kc, accum int)
//
// Seq-contract kernel (transposed-B layout): sums always start from zero;
// accum != 0 adds dst once at the end.
TEXT ·microSeq8x8AVX2(SB), NOSPLIT, $0-48
	LOAD_DST_ROWS
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	MOVQ accum+40(FP), DX

	ZERO_ACC

	CMPQ CX, $2
	JL   seq_tail

seq_pair:
	VMOVUPS (BX), Y8
	VMOVUPS 32(BX), Y9
	FMA_STEP0(Y8)
	FMA_STEP1(Y9)
	ADDQ $64, AX
	ADDQ $64, BX
	SUBQ $2, CX
	CMPQ CX, $2
	JGE  seq_pair

seq_tail:
	TESTQ CX, CX
	JZ    seq_fini
	VMOVUPS (BX), Y8
	FMA_STEP0(Y8)

seq_fini:
	TESTQ DX, DX
	JZ    seq_done
	VADDPS (DI), Y0, Y0
	VADDPS (DI)(SI*1), Y1, Y1
	VADDPS (DI)(SI*2), Y2, Y2
	VADDPS (DI)(R9*1), Y3, Y3
	VADDPS (R12), Y4, Y4
	VADDPS (R12)(SI*1), Y5, Y5
	VADDPS (R12)(SI*2), Y6, Y6
	VADDPS (R12)(R9*1), Y7, Y7

seq_done:
	STORE_ACC
	VZEROUPPER
	RET

// func microHalf8x8AVX2(dst *float32, ldd int, ap *float32, bp *uint16, kc, accum int)
//
// Tree-contract kernel with the B strip stored as fp16 bit patterns:
// VCVTPH2PS widens 8 halves (16 bytes) to a float32 vector in-register
// each step, so fp16 storage never touches memory as fp32. Requires F16C.
TEXT ·microHalf8x8AVX2(SB), NOSPLIT, $0-48
	LOAD_DST_ROWS
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	MOVQ accum+40(FP), DX

	TESTQ DX, DX
	JZ    half_zero
	LOAD_ACC
	JMP  half_body

half_zero:
	ZERO_ACC

half_body:
	CMPQ CX, $2
	JL   half_tail

half_pair:
	VCVTPH2PS (BX), Y8
	VCVTPH2PS 16(BX), Y9
	FMA_STEP0(Y8)
	FMA_STEP1(Y9)
	ADDQ $64, AX
	ADDQ $32, BX
	SUBQ $2, CX
	CMPQ CX, $2
	JGE  half_pair

half_tail:
	TESTQ CX, CX
	JZ    half_done
	VCVTPH2PS (BX), Y8
	FMA_STEP0(Y8)

half_done:
	STORE_ACC
	VZEROUPPER
	RET
