package tensor

import (
	"fmt"
	"math"

	"tbd/internal/prof"
)

// SoftmaxRows computes a numerically stable softmax over the last axis,
// treating t as [N, F].
func SoftmaxRows(t *Tensor) *Tensor {
	if t.Rank() < 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows needs rank >= 2, got %v", t.shape))
	}
	n := t.shape[0]
	f := t.Numel() / n
	out := acquireDirty(t.shape...)
	minRows := 1 + minElemsPerWorker/(f+1)
	if rowWorkers(n, minRows) <= 1 {
		softmaxRange(out.data, t.data, f, 0, n)
		return out
	}
	parallelRows(n, minRows, func(lo, hi int) {
		softmaxRange(out.data, t.data, f, lo, hi)
	})
	return out
}

func softmaxRange(dst, src []float32, f, lo, hi int) {
	for i := lo; i < hi; i++ {
		softmaxRow(dst[i*f:(i+1)*f], src[i*f:(i+1)*f])
	}
}

func softmaxRow(dst, src []float32) {
	m := float32(math.Inf(-1))
	for _, v := range src {
		if v > m {
			m = v
		}
	}
	var sum float64
	for j, v := range src {
		e := float32(math.Exp(float64(v - m)))
		dst[j] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSoftmaxRows computes log-softmax over the last axis of [N, F].
func LogSoftmaxRows(t *Tensor) *Tensor {
	n := t.shape[0]
	f := t.Numel() / n
	out := acquireDirty(t.shape...)
	minRows := 1 + minElemsPerWorker/(f+1)
	if rowWorkers(n, minRows) <= 1 {
		logSoftmaxRange(out.data, t.data, f, 0, n)
		return out
	}
	parallelRows(n, minRows, func(lo, hi int) {
		logSoftmaxRange(out.data, t.data, f, lo, hi)
	})
	return out
}

func logSoftmaxRange(dst, src []float32, f, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := src[i*f : (i+1)*f]
		d := dst[i*f : (i+1)*f]
		m := float32(math.Inf(-1))
		for _, v := range s {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range s {
			sum += math.Exp(float64(v - m))
		}
		lse := m + float32(math.Log(sum))
		for j, v := range s {
			d[j] = v - lse
		}
	}
}

// CrossEntropy computes the mean negative log-likelihood of integer labels
// under logits [N, F], together with the gradient w.r.t. the logits
// (softmax(x) - onehot(y)) / N, the fused kernel every framework implements.
func CrossEntropy(logits *Tensor, labels []int) (loss float32, grad *Tensor) {
	n := logits.shape[0]
	if len(labels) != n {
		panic(fmt.Sprintf("tensor: CrossEntropy got %d labels for batch %d", len(labels), n))
	}
	f := logits.Numel() / n
	sp := prof.Begin(prof.CatKernel, "loss.xent")
	if sp.Active() {
		sp.SetBytes(4 * 2 * int64(logits.Numel()))
	}
	grad = SoftmaxRows(logits)
	var total float64
	for i, y := range labels {
		if y < 0 || y >= f {
			panic(fmt.Sprintf("tensor: CrossEntropy label %d out of range [0,%d)", y, f))
		}
		p := grad.data[i*f+y]
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(float64(p))
		grad.data[i*f+y] -= 1
	}
	grad.ScaleInPlace(1 / float32(n))
	sp.End()
	return float32(total / float64(n)), grad
}

// CrossEntropyLS is CrossEntropy with label smoothing: the target
// distribution places 1-eps on the true class and eps/(F-1) on the rest —
// the regularizer of the Transformer training recipe (eps = 0.1 in
// Vaswani et al.).
func CrossEntropyLS(logits *Tensor, labels []int, eps float32) (loss float32, grad *Tensor) {
	if eps == 0 {
		return CrossEntropy(logits, labels)
	}
	n := logits.shape[0]
	if len(labels) != n {
		panic(fmt.Sprintf("tensor: CrossEntropyLS got %d labels for batch %d", len(labels), n))
	}
	f := logits.Numel() / n
	if f < 2 {
		panic("tensor: CrossEntropyLS needs at least 2 classes")
	}
	logp := LogSoftmaxRows(logits)
	grad = SoftmaxRows(logits)
	off := eps / float32(f-1)
	on := 1 - eps
	var total float64
	for i, y := range labels {
		if y < 0 || y >= f {
			panic(fmt.Sprintf("tensor: CrossEntropyLS label %d out of range [0,%d)", y, f))
		}
		for j := 0; j < f; j++ {
			target := off
			if j == y {
				target = on
			}
			total -= float64(target) * float64(logp.data[i*f+j])
			grad.data[i*f+j] -= target
		}
	}
	logp.Release()
	grad.ScaleInPlace(1 / float32(n))
	return float32(total / float64(n)), grad
}

// Accuracy returns the top-1 accuracy of logits [N, F] against labels.
func Accuracy(logits *Tensor, labels []int) float64 {
	pred := ArgmaxRows(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// TopKAccuracy returns the fraction of rows whose true label appears among
// the k largest logits (the paper reports Top-1 and Top-5).
func TopKAccuracy(logits *Tensor, labels []int, k int) float64 {
	n := logits.shape[0]
	f := logits.Numel() / n
	if k > f {
		k = f
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.data[i*f : (i+1)*f]
		y := labels[i]
		target := row[y]
		// Count entries strictly greater than the target score; the label is
		// in the top-k iff fewer than k entries beat it.
		greater := 0
		for j, v := range row {
			if v > target || (v == target && j < y) {
				greater++
			}
		}
		if greater < k {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
