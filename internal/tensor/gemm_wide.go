package tensor

// Wide (8x8) packed-GEMM driver for the avx2 tier. Same BLIS shape as the
// 4x4 driver in gemm.go — pack B strips once, pack A tiles per worker,
// ragged edges fall back to scalar code — but with the wide panel layout
// of gemm_kernels_wide.go: A tiles store plain scalars (the kernel
// broadcasts), B strips are 8 columns wide.
//
// Determinism contract (within the avx2 tier): every output element is
// reduced in an order that depends only on (n, k, m, layout), never on
// the worker split — full tiles run one sequential FMA chain per element,
// edge columns run the fixed scalar orders of gemmEdgeCols, and
// parallelRowsAligned keeps interior split boundaries on 8-row multiples
// so tile/edge assignment of every row is split-independent. Parallel
// runs are therefore bit-identical to serial runs on the same tier, even
// though the tier itself is only ULP-equivalent to ref/sse.

// wideWorthIt reports whether the wide packed path applies: at least one
// full 8x8 tile and enough work to amortize packing. Narrower shapes fall
// through to the 4x4 path, which under the avx2 tier still runs the SSE
// assembly (bit-exact with ref), so tiny GEMMs lose no precision.
func wideWorthIt(n, k, m int) bool {
	return n >= microMW && m >= microNW && k >= 2 && n*k*m >= packedMinWork
}

// gemmSerialWide runs one wide-path GEMM on the calling goroutine.
func gemmSerialWide(dst, a, b []float32, n, k, m int, lay gemmLayout, accum bool, ep *epilogue) {
	bp := getPackBuf(k * (m &^ 7))
	packBRangeWide(bp, b, k, m, lay, 0, m&^7)
	gemmPackedRowsWide(dst, a, b, bp, n, k, m, 0, n, lay, accum, ep)
	putPackBuf(bp)
}

// gemmParallelWide is gemmSerialWide with output rows split across the
// worker pool; the caller has already established that more than one
// worker will run. The B panel is packed once (in parallel when large)
// and shared read-only.
func gemmParallelWide(dst, a, b []float32, n, k, m int, lay gemmLayout, accum bool, ep *epilogue) {
	m8 := m &^ 7
	bp := getPackBuf(k * m8)
	packMin := 1 + minElemsPerWorker/(8*k+1)
	if rowWorkers(m8/8, packMin) <= 1 {
		packBRangeWide(bp, b, k, m, lay, 0, m8)
	} else {
		parallelRows(m8/8, packMin, func(slo, shi int) {
			packBRangeWide(bp, b, k, m, lay, slo*8, shi*8)
		})
	}
	parallelRowsAligned(n, microMW, gemmMinRows(k, m), func(lo, hi int) {
		gemmPackedRowsWide(dst, a, b, bp, n, k, m, lo, hi, lay, accum, ep)
	})
	putPackBuf(bp)
}

// gemmPackedRowsWide computes output rows [lo, hi) against a pre-packed
// wide B panel. Full 8-row tiles go through the 8x8 kernels; the row tail
// falls back to the reference kernels and ragged columns [m&^7, m) to the
// shared edge kernels.
func gemmPackedRowsWide(dst, a, b, bp []float32, n, k, m, lo, hi int, lay gemmLayout, accum bool, ep *epilogue) {
	m8 := m &^ 7
	i0 := lo
	if hi-lo >= microMW {
		ap := getPackBuf(microMW * k)
		for ; i0+microMW <= hi; i0 += microMW {
			packATileWide(ap, a, n, k, i0, lay)
			if lay == layTransB {
				for j0 := 0; j0 < m8; j0 += microNW {
					kernelSeq8x8(dst[i0*m+j0:], m, ap, bp[j0*k:], k, accum)
				}
			} else {
				for j0 := 0; j0 < m8; j0 += microNW {
					kernelTree8x8(dst[i0*m+j0:], m, ap, bp[j0*k:], k, accum)
				}
			}
			gemmEdgeCols(dst, a, b, n, k, m, i0, i0+microMW, lay, accum, m8)
			applyEpilogueRows(dst, m, i0, i0+microMW, ep)
		}
		putPackBuf(ap)
	}
	if i0 < hi {
		gemmRefRange(dst, a, b, n, k, m, lay, accum, i0, hi)
		applyEpilogueRows(dst, m, i0, hi, ep)
	}
}

// packATileWide packs the 8-row micro-tile starting at output row i0:
// ap[p*8+r] = tile row r at reduction step p, plain scalars.
func packATileWide(ap, a []float32, n, k, i0 int, lay gemmLayout) {
	if lay == layTransA {
		// a is [k, n]; tile rows are the strided columns i0..i0+7, so each
		// reduction step is one contiguous 8-element copy.
		for p := 0; p < k; p++ {
			copy(ap[p*8:p*8+8], a[p*n+i0:p*n+i0+8])
		}
		return
	}
	// Plain and transposed-B share the same [n, k] row-major a.
	r0 := a[i0*k : (i0+1)*k]
	r1 := a[(i0+1)*k : (i0+2)*k]
	r2 := a[(i0+2)*k : (i0+3)*k]
	r3 := a[(i0+3)*k : (i0+4)*k]
	r4 := a[(i0+4)*k : (i0+5)*k]
	r5 := a[(i0+5)*k : (i0+6)*k]
	r6 := a[(i0+6)*k : (i0+7)*k]
	r7 := a[(i0+7)*k : (i0+8)*k]
	for p := 0; p < k; p++ {
		q := ap[p*8 : p*8+8]
		q[0], q[1], q[2], q[3] = r0[p], r1[p], r2[p], r3[p]
		q[4], q[5], q[6], q[7] = r4[p], r5[p], r6[p], r7[p]
	}
}

// packBRangeWide packs B column strips [jlo, jhi) (both multiples of 8)
// into bp: bp[j0*k + p*8 + c] = b(p, j0+c).
func packBRangeWide(bp, b []float32, k, m int, lay gemmLayout, jlo, jhi int) {
	if lay == layTransB {
		for j0 := jlo; j0 < jhi; j0 += 8 {
			s0 := b[j0*k : (j0+1)*k]
			s1 := b[(j0+1)*k : (j0+2)*k]
			s2 := b[(j0+2)*k : (j0+3)*k]
			s3 := b[(j0+3)*k : (j0+4)*k]
			s4 := b[(j0+4)*k : (j0+5)*k]
			s5 := b[(j0+5)*k : (j0+6)*k]
			s6 := b[(j0+6)*k : (j0+7)*k]
			s7 := b[(j0+7)*k : (j0+8)*k]
			q := bp[j0*k : (j0+8)*k]
			for p := 0; p < k; p++ {
				q[p*8], q[p*8+1], q[p*8+2], q[p*8+3] = s0[p], s1[p], s2[p], s3[p]
				q[p*8+4], q[p*8+5], q[p*8+6], q[p*8+7] = s4[p], s5[p], s6[p], s7[p]
			}
		}
		return
	}
	for j0 := jlo; j0 < jhi; j0 += 8 {
		q := bp[j0*k : (j0+8)*k]
		for p := 0; p < k; p++ {
			copy(q[p*8:p*8+8], b[p*m+j0:p*m+j0+8])
		}
	}
}
