package tensor

import "testing"

// The packed GEMM core promises bit-identity with the PR 1 reference
// kernels for every layout, shape, accumulate mode, and worker split.
// These tests force both paths over ragged shapes (dimensions coprime
// with the 4x4 tile) and compare with zero tolerance.

// refGEMM runs the reference kernels over all n output rows.
func refGEMM(dst, a, b []float32, n, k, m int, lay gemmLayout, accum bool) {
	gemmRefRange(dst, a, b, n, k, m, lay, accum, 0, n)
}

// packedGEMM forces the packed path (bypassing the packedWorthIt size
// gate) when the shape admits at least one micro-tile, and otherwise
// falls through to the same reference kernels gemmSerial would pick.
func packedGEMM(dst, a, b []float32, n, k, m int, lay gemmLayout, accum bool) {
	if n < microM || m < microN {
		gemmRefRange(dst, a, b, n, k, m, lay, accum, 0, n)
		return
	}
	bp := getPackBuf(k * (m &^ 3))
	packBRange(bp, b, k, m, lay, 0, m&^3)
	gemmPackedRows(dst, a, b, bp, n, k, m, 0, n, lay, accum, nil, kernelTree4x4, kernelSeq4x4)
	putPackBuf(bp)
}

func fillRand(rng *RNG, buf []float32) {
	for i := range buf {
		buf[i] = float32(rng.Norm())
	}
}

var packedEquivShapes = [][3]int{
	{1, 1, 1}, {4, 4, 4}, {5, 7, 9}, {13, 17, 31}, {2, 3, 2},
	{4, 1, 4}, {4, 2, 4}, {6, 5, 1}, {1, 9, 47}, {7, 129, 5},
	{4, 515, 8}, {37, 53, 41}, {16, 64, 16}, {9, 131, 258}, {64, 128, 96},
}

func TestPackedMatchesRefBitExact(t *testing.T) {
	rng := NewRNG(41)
	for _, s := range packedEquivShapes {
		n, k, m := s[0], s[1], s[2]
		for lay := layPlain; lay <= layTransB; lay++ {
			a := make([]float32, n*k) // transA stores aᵀ [k, n]: same length
			var b []float32
			if lay == layTransB {
				b = make([]float32, m*k)
			} else {
				b = make([]float32, k*m)
			}
			fillRand(rng, a)
			fillRand(rng, b)
			seed := make([]float32, n*m)
			fillRand(rng, seed)
			for _, accum := range []bool{false, true} {
				want := append([]float32(nil), seed...)
				got := append([]float32(nil), seed...)
				refGEMM(want, a, b, n, k, m, lay, accum)
				packedGEMM(got, a, b, n, k, m, lay, accum)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("lay=%d accum=%v shape=%v: packed[%d]=%v ref=%v",
							lay, accum, s, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// forceGemmTier pins the micro-kernel tier for one test, restoring the
// previous tier on cleanup. Skips if the tier is unavailable on this CPU.
func forceGemmTier(t *testing.T, name string) {
	t.Helper()
	prev, err := SetGemmKernelTier(name)
	if err != nil {
		t.Skipf("tier %q unavailable: %v", name, err)
	}
	t.Cleanup(func() {
		if _, err := SetGemmKernelTier(prev); err != nil {
			t.Fatalf("restoring tier %q: %v", prev, err)
		}
	})
}

// TestPackedParallelMatchesSerial pins that the public entry points are
// split-invariant: worker counts 1 and 3 produce identical bits, and both
// match the reference kernels. The comparison against the reference is
// exact, so the test pins the bit-exact tier; the avx2/FMA tier has its
// own split-invariance and ULP-equivalence tests in gemm_tier_test.go.
func TestPackedParallelMatchesSerial(t *testing.T) {
	forceGemmTier(t, BitExactGemmTier())
	defer SetParallelism(1)
	rng := NewRNG(42)
	for _, s := range packedEquivShapes {
		n, k, m := s[0], s[1], s[2]
		a := RandNormal(rng, 0, 1, n, k)
		b := RandNormal(rng, 0, 1, k, m)
		at := Transpose(a) // [k, n]
		bt := Transpose(b) // [m, k]

		SetParallelism(1)
		serial := [3]*Tensor{MatMul(a, b), MatMulTransA(at, b), MatMulTransB(a, bt)}
		SetParallelism(3)
		parallel := [3]*Tensor{MatMul(a, b), MatMulTransA(at, b), MatMulTransB(a, bt)}
		names := [3]string{"MatMul", "MatMulTransA", "MatMulTransB"}
		for i := range serial {
			if !Equal(serial[i], parallel[i], 0) {
				t.Fatalf("%s %v: parallel differs from serial", names[i], s)
			}
		}

		// All three layouts compute the same product; the reference plain
		// kernel over a zeroed destination is the shared ground truth.
		want := make([]float32, n*m)
		refGEMM(want, a.Data(), b.Data(), n, k, m, layPlain, false)
		if got := serial[0].Data(); !float32sEqual(got, want) {
			t.Fatalf("MatMul %v differs from reference kernel", s)
		}
	}
}

func float32sEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMicroKernelAsmMatchesGo cross-checks the installed micro-kernels
// (SSE assembly on amd64) against the pure-Go reference kernels on the
// same packed panels. On platforms without assembly kernels the two are
// the same function and the test is a tautology.
func TestMicroKernelAsmMatchesGo(t *testing.T) {
	installedTree, installedSeq := kernelTree4x4, kernelSeq4x4
	defer func() {
		kernelTree4x4, kernelSeq4x4 = installedTree, installedSeq
	}()
	rng := NewRNG(43)
	for _, s := range packedEquivShapes {
		n, k, m := s[0], s[1], s[2]
		if n < microM || m < microN {
			continue
		}
		a := make([]float32, n*k)
		b := make([]float32, k*m)
		fillRand(rng, a)
		fillRand(rng, b)
		seed := make([]float32, n*m)
		fillRand(rng, seed)
		for lay := layPlain; lay <= layTransB; lay++ {
			bm := b
			if lay == layTransB {
				bm = b[:m*k]
			}
			for _, accum := range []bool{false, true} {
				kernelTree4x4, kernelSeq4x4 = installedTree, installedSeq
				installed := append([]float32(nil), seed...)
				packedGEMM(installed, a, bm, n, k, m, lay, accum)
				kernelTree4x4, kernelSeq4x4 = microTree4x4Go, microSeq4x4Go
				pure := append([]float32(nil), seed...)
				packedGEMM(pure, a, bm, n, k, m, lay, accum)
				if !float32sEqual(installed, pure) {
					t.Fatalf("lay=%d accum=%v shape=%v: installed kernel differs from Go kernel", lay, accum, s)
				}
			}
		}
	}
}

// TestGEMMNaNThroughPacked pins that the packed path propagates NaN like
// the reference kernels: no zero-skip shortcuts.
func TestGEMMNaNThroughPacked(t *testing.T) {
	rng := NewRNG(44)
	n, k, m := 8, 16, 8
	a := make([]float32, n*k)
	b := make([]float32, k*m)
	fillRand(rng, a)
	fillRand(rng, b)
	a[3*k+7] = nan32()
	for lay := layPlain; lay <= layTransB; lay++ {
		want := make([]float32, n*m)
		got := make([]float32, n*m)
		refGEMM(want, a, b, n, k, m, lay, false)
		packedGEMM(got, a, b, n, k, m, lay, false)
		sawNaN := false
		for i := range want {
			wNaN, gNaN := want[i] != want[i], got[i] != got[i]
			if wNaN != gNaN {
				t.Fatalf("lay=%d: NaN placement differs at %d", lay, i)
			}
			if !wNaN && want[i] != got[i] {
				t.Fatalf("lay=%d: value differs at %d", lay, i)
			}
			sawNaN = sawNaN || wNaN
		}
		if !sawNaN {
			t.Fatalf("lay=%d: expected NaN contamination", lay)
		}
	}
}

func nan32() float32 {
	z := float32(0)
	return z / z
}

// TestMatMulBiasActMatchesUnfused pins the fused epilogue against the
// unfused composition with zero tolerance, for every activation.
func TestMatMulBiasActMatchesUnfused(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(45)
	for _, workers := range []int{1, 3} {
		SetParallelism(workers)
		for _, s := range [][3]int{{5, 7, 9}, {16, 64, 16}, {33, 65, 13}} {
			n, k, m := s[0], s[1], s[2]
			a := RandNormal(rng, 0, 1, n, k)
			b := RandNormal(rng, 0, 1, k, m)
			bias := RandNormal(rng, 0, 1, m)
			for _, act := range []ActKind{ActNone, ActReLU, ActSigmoid, ActTanh} {
				want := MatMul(a, b)
				AddRowBroadcastInPlace(want, bias)
				switch act {
				case ActReLU:
					for i, v := range want.Data() {
						if !(v > 0) {
							want.Data()[i] = 0
						}
					}
				case ActSigmoid:
					for i, v := range want.Data() {
						want.Data()[i] = Sigmoid32(v)
					}
				case ActTanh:
					for i, v := range want.Data() {
						want.Data()[i] = Tanh32(v)
					}
				}
				got := MatMulBiasAct(a, b, bias, act)
				if !Equal(got, want, 0) {
					t.Fatalf("MatMulBiasAct(%v, %v, workers=%d) differs from unfused", s, act, workers)
				}
			}
		}
	}
}

// TestPackBuffersSeparateSizeClass pins the satellite fix: pack scratch
// lives in its own size classes and never surfaces as (or displaces) a
// tensor buffer.
func TestPackBuffersSeparateSizeClass(t *testing.T) {
	var p Pool
	buf := p.getPack(100)
	if len(buf) != 100 {
		t.Fatalf("getPack(100) returned len %d", len(buf))
	}
	p.putPack(buf)

	// A tensor request of the same size class must not be served from the
	// pack free list.
	tt := p.Get(100)
	if &tt.Data()[0] == &buf[:1][0] {
		t.Fatal("tensor Get returned a pack buffer")
	}
	if _, hits, _ := p.gets.Load(), p.hits.Load(), 0; hits != 0 {
		t.Fatalf("tensor Get hit the free list (%d hits); pack buffers leaked into tensor buckets", hits)
	}

	// The pack request, however, is served from the pack free list.
	buf2 := p.getPack(90)
	if &buf2[0] != &buf[:1][0] {
		t.Fatal("getPack did not reuse the released pack buffer")
	}
	if gets, hits := p.packGets.Load(), p.packHits.Load(); gets != 2 || hits != 1 {
		t.Fatalf("pack stats gets=%d hits=%d, want 2/1", gets, hits)
	}

	// Tensor releases must not surface as pack buffers either.
	tt2 := p.Get(100)
	p.put(tt2)
	buf3 := p.getPack(100)
	if &buf3[0] == &tt2.Data()[0] {
		t.Fatal("getPack returned a released tensor buffer")
	}

	// The shared pool's pack counters move with the packed GEMM and the
	// tensor counters do not double-count pack traffic. Taken as grouped
	// snapshots so the multi-counter read cannot tear against concurrent
	// pool users.
	s0 := PoolStatsSnapshot()
	a := New(32, 64)
	b := New(64, 32)
	fillRand(NewRNG(46), a.Data())
	fillRand(NewRNG(47), b.Data())
	MatMul(a, b).Release()
	d := PoolStatsSnapshot().Sub(s0)
	if d.PackGets == 0 {
		t.Fatal("packed MatMul did not request pack scratch")
	}
	if d.Gets != 1 {
		t.Fatalf("packed MatMul made %d tensor pool requests, want 1 (the output)", d.Gets)
	}
}
