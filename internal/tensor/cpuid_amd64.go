//go:build amd64

package tensor

// CPUID feature detection for the GEMM kernel tiers. tier.go picks the
// widest micro-kernel the host can run; everything here is a one-time
// probe of the bits that decision needs.

func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvRaw() (eax, edx uint32)

// cpuFeatures is the subset of CPUID state the kernel tiers care about.
type cpuFeatures struct {
	avx2fma bool // AVX2 + FMA present and YMM state OS-enabled
	f16c    bool // VCVTPH2PS present: fp16 panels widen in-register
}

// detectCPU probes CPUID. Called from package init on amd64 (before any
// goroutines exist), so the plain struct write needs no synchronization.
func detectCPU() cpuFeatures {
	var feat cpuFeatures
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return feat
	}
	const (
		bitFMA     = 1 << 12 // leaf 1 ECX
		bitOSXSAVE = 1 << 27 // leaf 1 ECX
		bitAVX     = 1 << 28 // leaf 1 ECX
		bitF16C    = 1 << 29 // leaf 1 ECX
		bitAVX2    = 1 << 5  // leaf 7 EBX
	)
	_, _, c1, _ := cpuidRaw(1, 0)
	if c1&bitOSXSAVE == 0 || c1&bitAVX == 0 {
		return feat
	}
	// The OS must save/restore XMM and YMM state (XCR0 bits 1 and 2) or
	// executing VEX-encoded code faults.
	xcr0, _ := xgetbvRaw()
	if xcr0&0x6 != 0x6 {
		return feat
	}
	_, b7, _, _ := cpuidRaw(7, 0)
	feat.avx2fma = b7&bitAVX2 != 0 && c1&bitFMA != 0
	feat.f16c = feat.avx2fma && c1&bitF16C != 0
	return feat
}
