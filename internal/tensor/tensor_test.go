package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndNumel(t *testing.T) {
	x := New(2, 3, 4)
	if x.Numel() != 24 {
		t.Fatalf("Numel = %d, want 24", x.Numel())
	}
	if x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad shape bookkeeping: %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	if got := x.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("row-major offset wrong: %g", got)
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length must panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeInference(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, -1)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("Reshape inferred %v", y.Shape())
	}
	// Reshape is a view.
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b).Data(); got[0] != 5 || got[3] != 5 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(a, b).Data(); got[0] != -3 || got[3] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 6 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(a, b).Data(); got[3] != 4 {
		t.Fatalf("Div = %v", got)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	row := FromSlice([]float32{10, 20, 30}, 3)
	got := AddRowBroadcast(m, row)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, v := range got.Data() {
		if v != want[i] {
			t.Fatalf("AddRowBroadcast = %v, want %v", got.Data(), want)
		}
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3, -4}, 2, 2)
	if x.Sum() != -2 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != -0.5 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	if x.Max() != 3 || x.Min() != -4 {
		t.Fatalf("Max/Min = %g/%g", x.Max(), x.Min())
	}
	if x.Argmax() != 2 {
		t.Fatalf("Argmax = %d", x.Argmax())
	}
	rows := ArgmaxRows(x)
	if rows[0] != 0 || rows[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", rows)
	}
	cs := SumRows(x)
	if cs.At(0) != 4 || cs.At(1) != -6 {
		t.Fatalf("SumRows = %v", cs.Data())
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range got.Data() {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", got.Data(), want)
		}
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	r := NewRNG(1)
	a := RandNormal(r, 0, 1, 5, 7)
	b := RandNormal(r, 0, 1, 5, 3)
	// aᵀ @ b two ways.
	want := MatMul(Transpose(a), b)
	got := MatMulTransA(a, b)
	if !Equal(want, got, 1e-4) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
	c := RandNormal(r, 0, 1, 4, 7)
	d := RandNormal(r, 0, 1, 6, 7)
	want2 := MatMul(c, Transpose(d))
	got2 := MatMulTransB(c, d)
	if !Equal(want2, got2, 1e-4) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestBatchMatMul(t *testing.T) {
	r := NewRNG(2)
	a := RandNormal(r, 0, 1, 3, 2, 4)
	b := RandNormal(r, 0, 1, 3, 4, 5)
	got := BatchMatMul(a, b)
	if got.Dim(0) != 3 || got.Dim(1) != 2 || got.Dim(2) != 5 {
		t.Fatalf("BatchMatMul shape %v", got.Shape())
	}
	// Batch 1 must equal the standalone 2-D product.
	a1 := FromSlice(append([]float32(nil), a.Data()[8:16]...), 2, 4)
	b1 := FromSlice(append([]float32(nil), b.Data()[20:40]...), 4, 5)
	w := MatMul(a1, b1)
	g1 := FromSlice(append([]float32(nil), got.Data()[10:20]...), 2, 5)
	if !Equal(w, g1, 1e-5) {
		t.Fatal("BatchMatMul batch slice disagrees with MatMul")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := NewRNG(3)
	x := RandNormal(r, 0, 5, 4, 10)
	s := SoftmaxRows(x)
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 10; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %g", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row sums to %g", sum)
		}
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	x := FromSlice([]float32{1000, 1001, 999}, 1, 3)
	s := SoftmaxRows(x)
	for _, v := range s.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax unstable: %v", s.Data())
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	logits := FromSlice([]float32{2, 1, 0.5, 0.2, 3, 1}, 2, 3)
	loss, grad := CrossEntropy(logits, []int{0, 1})
	if loss <= 0 {
		t.Fatalf("loss = %g", loss)
	}
	// Gradient rows sum to 0 (softmax sums to 1, minus the one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("grad row %d sums to %g", i, s)
		}
	}
	// Finite-difference check on one logit.
	eps := float32(1e-2)
	l2 := logits.Clone()
	l2.Set(l2.At(0, 0)+eps, 0, 0)
	lossUp, _ := CrossEntropy(l2, []int{0, 1})
	num := (lossUp - loss) / eps
	if math.Abs(float64(num-grad.At(0, 0))) > 1e-2 {
		t.Fatalf("finite diff %g vs grad %g", num, grad.At(0, 0))
	}
}

func TestTopKAccuracy(t *testing.T) {
	logits := FromSlice([]float32{
		0.1, 0.9, 0.5, 0.2, // label 2 is rank 3
		0.9, 0.1, 0.2, 0.3, // label 0 is rank 1
	}, 2, 4)
	labels := []int{2, 0}
	if got := TopKAccuracy(logits, labels, 1); got != 0.5 {
		t.Fatalf("top-1 = %g", got)
	}
	if got := TopKAccuracy(logits, labels, 3); got != 1.0 {
		t.Fatalf("top-3 = %g", got)
	}
	if got := Accuracy(logits, labels); got != 0.5 {
		t.Fatalf("accuracy = %g", got)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 identity kernel must return the input unchanged.
	r := NewRNG(4)
	x := RandNormal(r, 0, 1, 2, 3, 5, 5)
	w := New(3, 3, 1, 1)
	for f := 0; f < 3; f++ {
		w.Set(1, f, f, 0, 0)
	}
	y := Conv2D(x, w, 1, 0)
	if !Equal(x, y, 1e-6) {
		t.Fatal("1x1 identity conv must be identity")
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 1 batch, 1 channel, 3x3 input, 2x2 kernel of ones, stride 1, no pad:
	// each output is the sum of a 2x2 window.
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := Ones(1, 1, 2, 2)
	y := Conv2D(x, w, 1, 0)
	want := []float32{12, 16, 24, 28}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("conv = %v, want %v", y.Data(), want)
		}
	}
}

func TestConv2DBackwardFiniteDifference(t *testing.T) {
	r := NewRNG(5)
	x := RandNormal(r, 0, 1, 1, 2, 4, 4)
	w := RandNormal(r, 0, 0.5, 3, 2, 3, 3)
	stride, pad := 1, 1
	y := Conv2D(x, w, stride, pad)
	gy := RandNormal(r, 0, 1, y.Shape()...)
	gx, gw := Conv2DBackward(x, w, gy, stride, pad)

	loss := func(xx, ww *Tensor) float64 {
		out := Conv2D(xx, ww, stride, pad)
		var s float64
		for i, v := range out.Data() {
			s += float64(v) * float64(gy.Data()[i])
		}
		return s
	}
	base := loss(x, w)
	eps := float32(1e-2)
	// Spot-check several coordinates of both gradients.
	for _, i := range []int{0, 7, 15, 31} {
		x2 := x.Clone()
		x2.Data()[i] += eps
		num := (loss(x2, w) - base) / float64(eps)
		if math.Abs(num-float64(gx.Data()[i])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("gx[%d]: finite diff %g vs analytic %g", i, num, gx.Data()[i])
		}
	}
	for _, i := range []int{0, 11, 29, 53} {
		w2 := w.Clone()
		w2.Data()[i] += eps
		num := (loss(x, w2) - base) / float64(eps)
		if math.Abs(num-float64(gw.Data()[i])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("gw[%d]: finite diff %g vs analytic %g", i, num, gw.Data()[i])
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y, idx := MaxPool2D(x, 2, 2)
	want := []float32{4, 8, 12, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("maxpool = %v, want %v", y.Data(), want)
		}
	}
	gy := Ones(1, 1, 2, 2)
	gx := MaxPool2DBackward(gy, idx, x.Shape())
	var nz int
	for _, v := range gx.Data() {
		if v != 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Fatalf("maxpool backward touched %d cells, want 4", nz)
	}
}

func TestAvgPoolRoundTrip(t *testing.T) {
	x := Ones(1, 1, 4, 4)
	y := AvgPool2D(x, 2, 2)
	for _, v := range y.Data() {
		if v != 1 {
			t.Fatalf("avgpool of ones = %v", y.Data())
		}
	}
	gy := Ones(1, 1, 2, 2)
	gx := AvgPool2DBackward(gy, x.Shape(), 2, 2)
	for _, v := range gx.Data() {
		if math.Abs(float64(v-0.25)) > 1e-6 {
			t.Fatalf("avgpool backward = %v", gx.Data())
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// Col2Im is the adjoint of Im2Col: <Im2Col(x), c> == <x, Col2Im(c)>.
	r := NewRNG(6)
	x := RandNormal(r, 0, 1, 2, 3, 5, 5)
	cols := Im2Col(x, 3, 3, 2, 1)
	c := RandNormal(r, 0, 1, cols.Shape()...)
	lhs := float64(Mul(cols, c).Sum())
	back := Col2Im(c, 2, 3, 5, 5, 3, 3, 2, 1)
	rhs := float64(Mul(x, back).Sum())
	if math.Abs(lhs-rhs) > 1e-2*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity broken: %g vs %g", lhs, rhs)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic for equal seeds")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(7)
	var sum, sq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %g", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

// --- property-based tests ---

func smallVec(vals []float32) *Tensor {
	if len(vals) == 0 {
		vals = []float32{0}
	}
	for i, v := range vals {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			vals[i] = 0
		}
		// Keep magnitudes bounded so float32 commutativity holds to tolerance.
		if vals[i] > 1e3 {
			vals[i] = 1e3
		}
		if vals[i] < -1e3 {
			vals[i] = -1e3
		}
	}
	return FromSlice(vals, len(vals))
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x := smallVec(append([]float32(nil), a[:n]...))
		y := smallVec(append([]float32(nil), b[:n]...))
		return Equal(Add(x, y), Add(y, x), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropScaleDistributes(t *testing.T) {
	f := func(a []float32, k float32) bool {
		if len(a) == 0 {
			return true
		}
		if math.IsNaN(float64(k)) || math.IsInf(float64(k), 0) || k > 100 || k < -100 {
			k = 2
		}
		x := smallVec(append([]float32(nil), a...))
		lhs := Scale(Add(x, x), k)
		rhs := Add(Scale(x, k), Scale(x, k))
		return Equal(lhs, rhs, 1e-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSoftmaxInvariantToShift(t *testing.T) {
	f := func(a []float32, shift float32) bool {
		if len(a) < 2 {
			return true
		}
		if len(a) > 16 {
			a = a[:16]
		}
		if math.IsNaN(float64(shift)) || math.IsInf(float64(shift), 0) {
			shift = 1
		}
		if shift > 50 {
			shift = 50
		}
		if shift < -50 {
			shift = -50
		}
		x := smallVec(append([]float32(nil), a...)).Reshape(1, -1)
		y := AddScalar(x, shift)
		return Equal(SoftmaxRows(x), SoftmaxRows(y), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) < 4 {
			return true
		}
		n := 2
		m := len(vals) / n
		if m > 8 {
			m = 8
		}
		x := smallVec(append([]float32(nil), vals[:n*m]...)).Reshape(n, m)
		return Equal(Transpose(Transpose(x)), x, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulLinearInFirstArg(t *testing.T) {
	r := NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		a := RandNormal(r, 0, 1, 3, 4)
		b := RandNormal(r, 0, 1, 3, 4)
		c := RandNormal(r, 0, 1, 4, 2)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		if !Equal(lhs, rhs, 1e-4) {
			t.Fatal("matmul not linear in first argument")
		}
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	c := Concat(a, b)
	if c.Dim(0) != 3 || c.Dim(1) != 2 {
		t.Fatalf("Concat shape %v", c.Shape())
	}
	if c.At(2, 1) != 6 {
		t.Fatalf("Concat data %v", c.Data())
	}
}

func TestXavierHeInitScale(t *testing.T) {
	r := NewRNG(10)
	w := XavierInit(r, 100, 100, 100, 100)
	limit := math.Sqrt(6.0 / 200)
	for _, v := range w.Data() {
		if float64(v) < -limit-1e-6 || float64(v) > limit+1e-6 {
			t.Fatalf("xavier sample %g outside ±%g", v, limit)
		}
	}
	h := HeInit(r, 50, 50, 50)
	var sq float64
	for _, v := range h.Data() {
		sq += float64(v) * float64(v)
	}
	std := math.Sqrt(sq / float64(h.Numel()))
	want := math.Sqrt(2.0 / 50)
	if math.Abs(std-want) > 0.2*want {
		t.Fatalf("he std %g, want ~%g", std, want)
	}
}

func TestCrossEntropyLSReducesConfidenceIncentive(t *testing.T) {
	// With smoothing, an extremely confident correct prediction still has
	// gradient pressure (the smoothed target is not a one-hot).
	logits := FromSlice([]float32{20, 0, 0}, 1, 3)
	_, hard := CrossEntropy(logits, []int{0})
	lossLS, soft := CrossEntropyLS(logits, []int{0}, 0.1)
	if lossLS <= 0 {
		t.Fatal("smoothed loss must stay positive")
	}
	// Hard targets: gradient ~0 at saturation; smoothed: clearly nonzero.
	if math.Abs(float64(soft.At(0, 0))) <= math.Abs(float64(hard.At(0, 0))) {
		t.Fatalf("smoothing should keep gradient alive: %g vs %g", soft.At(0, 0), hard.At(0, 0))
	}
	// Rows still sum to zero.
	var s float64
	for j := 0; j < 3; j++ {
		s += float64(soft.At(0, j))
	}
	if math.Abs(s) > 1e-5 {
		t.Fatalf("smoothed grad row sums to %g", s)
	}
}

func TestCrossEntropyLSZeroEpsEqualsHard(t *testing.T) {
	rng := NewRNG(55)
	logits := RandNormal(rng, 0, 1, 4, 5)
	labels := []int{1, 0, 4, 2}
	l1, g1 := CrossEntropy(logits, labels)
	l2, g2 := CrossEntropyLS(logits, labels, 0)
	if l1 != l2 || !Equal(g1, g2, 0) {
		t.Fatal("eps=0 must reduce to hard cross-entropy")
	}
}

func TestCrossEntropyLSFiniteDifference(t *testing.T) {
	rng := NewRNG(56)
	logits := RandNormal(rng, 0, 1, 2, 4)
	labels := []int{2, 0}
	loss, grad := CrossEntropyLS(logits, labels, 0.1)
	if loss <= 0 {
		t.Fatal("loss must be positive")
	}
	const eps = 1e-2
	for _, i := range []int{0, 3, 5, 7} {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		up, _ := CrossEntropyLS(logits, labels, 0.1)
		logits.Data()[i] = orig - eps
		down, _ := CrossEntropyLS(logits, labels, 0.1)
		logits.Data()[i] = orig
		num := float64(up-down) / (2 * eps)
		if math.Abs(num-float64(grad.Data()[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("LS grad[%d]: finite diff %.5f vs analytic %.5f", i, num, grad.Data()[i])
		}
	}
}
