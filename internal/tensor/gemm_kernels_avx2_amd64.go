//go:build amd64

package tensor

// AVX2+FMA micro-kernel bindings (gemm_micro_avx2_amd64.s). Unlike the
// SSE bindings these are only installed when CPUID reports AVX2+FMA with
// OS-enabled YMM state, and the half-widening kernel additionally needs
// F16C; tier.go gates dispatch on the same flags, so the assembly never
// runs on hardware that cannot execute it.

//go:noescape
func microTree8x8AVX2(dst *float32, ldd int, ap, bp *float32, kc, accum int)

//go:noescape
func microSeq8x8AVX2(dst *float32, ldd int, ap, bp *float32, kc, accum int)

//go:noescape
func microHalf8x8AVX2(dst *float32, ldd int, ap *float32, bp *uint16, kc, accum int)

func microTree8x8Asm(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	acc := 0
	if accum {
		acc = 1
	}
	// The caller guarantees len(dst) >= 7*ldd+8, len(ap) >= 8*kc,
	// len(bp) >= 8*kc, kc >= 1.
	microTree8x8AVX2(&dst[0], ldd, &ap[0], &bp[0], kc, acc)
}

func microSeq8x8Asm(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	acc := 0
	if accum {
		acc = 1
	}
	microSeq8x8AVX2(&dst[0], ldd, &ap[0], &bp[0], kc, acc)
}

func microHalf8x8Asm(dst []float32, ldd int, ap []float32, bp []uint16, kc int, accum bool) {
	acc := 0
	if accum {
		acc = 1
	}
	microHalf8x8AVX2(&dst[0], ldd, &ap[0], &bp[0], kc, acc)
}

func init() {
	feat := detectCPU()
	if feat.avx2fma {
		kernelTree8x8 = microTree8x8Asm
		kernelSeq8x8 = microSeq8x8Asm
		haveAVX2Kernels = true
	}
	if feat.f16c {
		kernelHalf8x8 = microHalf8x8Asm
		haveF16CKernels = true
	}
}
