package tensor

import (
	"math"
	"testing"
)

// TestPoolReusesReleasedBuffer pins the basic recycle path: a released
// buffer backs the next same-size Acquire, zero-filled.
func TestPoolReusesReleasedBuffer(t *testing.T) {
	a := Acquire(4, 8)
	a.Fill(7)
	d := &a.Data()[0]
	a.Release()
	b := Acquire(4, 8)
	defer b.Release()
	if &b.Data()[0] != d {
		t.Fatal("same-size Acquire after Release did not reuse the buffer")
	}
	for _, v := range b.Data() {
		if v != 0 {
			t.Fatal("recycled buffer not zero-filled")
		}
	}
}

// TestPoolDoubleReleaseIsNoOp pins the pooled-flag guard against
// double-free.
func TestPoolDoubleReleaseIsNoOp(t *testing.T) {
	a := Acquire(16)
	a.Release()
	a.Release() // must not panic or re-insert
	b := Acquire(16)
	c := Acquire(16)
	if Aliases(b, c) {
		t.Fatal("double release handed the same buffer out twice")
	}
	b.Release()
	c.Release()
}

// TestDebugPoisonReleased verifies that with poisoning on, a reference
// retained past Release reads NaN — the loud form of the recycling
// contract's use-after-release bug.
func TestDebugPoisonReleased(t *testing.T) {
	prev := SetDebugPoisonReleased(true)
	defer SetDebugPoisonReleased(prev)
	a := Acquire(5)
	a.Fill(3)
	stale := a.Data()
	a.Release()
	for i, v := range stale {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("released buffer element %d = %v, want NaN poison", i, v)
		}
	}
	// A fresh Acquire of the poisoned buffer must still come back zeroed.
	b := Acquire(5)
	defer b.Release()
	for _, v := range b.Data() {
		if v != 0 {
			t.Fatal("poisoned buffer not re-zeroed by Acquire")
		}
	}
}
