package tensor

import (
	"math"
	"testing"
)

// TestPoolReusesReleasedBuffer pins the basic recycle path: a released
// buffer backs the next same-size Acquire, zero-filled.
func TestPoolReusesReleasedBuffer(t *testing.T) {
	a := Acquire(4, 8)
	a.Fill(7)
	d := &a.Data()[0]
	a.Release()
	b := Acquire(4, 8)
	defer b.Release()
	if &b.Data()[0] != d {
		t.Fatal("same-size Acquire after Release did not reuse the buffer")
	}
	for _, v := range b.Data() {
		if v != 0 {
			t.Fatal("recycled buffer not zero-filled")
		}
	}
}

// TestPoolDoubleReleaseIsNoOp pins the pooled-flag guard against
// double-free.
func TestPoolDoubleReleaseIsNoOp(t *testing.T) {
	a := Acquire(16)
	a.Release()
	a.Release() // must not panic or re-insert
	b := Acquire(16)
	c := Acquire(16)
	if Aliases(b, c) {
		t.Fatal("double release handed the same buffer out twice")
	}
	b.Release()
	c.Release()
}

// TestDebugPoisonReleased verifies that with poisoning on, a reference
// retained past Release reads NaN — the loud form of the recycling
// contract's use-after-release bug.
func TestDebugPoisonReleased(t *testing.T) {
	prev := SetDebugPoisonReleased(true)
	defer SetDebugPoisonReleased(prev)
	a := Acquire(5)
	a.Fill(3)
	stale := a.Data()
	a.Release()
	for i, v := range stale {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("released buffer element %d = %v, want NaN poison", i, v)
		}
	}
	// A fresh Acquire of the poisoned buffer must still come back zeroed.
	b := Acquire(5)
	defer b.Release()
	for _, v := range b.Data() {
		if v != 0 {
			t.Fatal("poisoned buffer not re-zeroed by Acquire")
		}
	}
}

// TestPoolStatsSnapshotDelta verifies the snapshot/Sub pair tracks pool
// activity without the caller touching the live package counters.
func TestPoolStatsSnapshotDelta(t *testing.T) {
	before := PoolStatsSnapshot()
	a := Acquire(64)
	a.Release()
	b := Acquire(64) // served from the free list
	b.Release()
	d := PoolStatsSnapshot().Sub(before)
	if d.Gets < 2 {
		t.Fatalf("gets delta = %d, want >= 2", d.Gets)
	}
	if d.Hits < 1 {
		t.Fatalf("hits delta = %d, want >= 1", d.Hits)
	}
	if d.Puts < 2 {
		t.Fatalf("puts delta = %d, want >= 2", d.Puts)
	}
	// Tensor traffic must not move the pack counters.
	if d.PackGets != 0 || d.PackHits != 0 {
		t.Fatalf("pack deltas = %d/%d from tensor traffic", d.PackGets, d.PackHits)
	}
}

// TestPoolRetainedBytes checks the free-list byte accounting both ways
// across a release/reacquire cycle.
func TestPoolRetainedBytes(t *testing.T) {
	a := Acquire(1 << 10)
	t0, _ := PoolRetainedBytes()
	a.Release()
	t1, _ := PoolRetainedBytes()
	if t1 < t0+4<<10 {
		t.Fatalf("retained bytes after release: %d -> %d, want +%d", t0, t1, 4<<10)
	}
	b := Acquire(1 << 10)
	defer b.Release()
	t2, _ := PoolRetainedBytes()
	if t2 >= t1 {
		t.Fatalf("retained bytes after reacquire: %d -> %d, want a drop", t1, t2)
	}
}
