package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// Additional property-based tests (testing/quick) on the core tensor
// algebra — the invariants every layer implementation leans on.

// boundedVec sanitizes quick-generated float slices into finite, bounded
// values of at least length min.
func boundedVec(vals []float32, min int) []float32 {
	out := make([]float32, 0, len(vals)+min)
	for _, v := range vals {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			v = 0
		}
		if v > 100 {
			v = 100
		}
		if v < -100 {
			v = -100
		}
		out = append(out, v)
	}
	for len(out) < min {
		out = append(out, float32(len(out)))
	}
	return out
}

func TestPropSubOfSelfIsZero(t *testing.T) {
	f := func(vals []float32) bool {
		v := boundedVec(vals, 1)
		x := FromSlice(v, len(v))
		return Sub(x, x).L2Norm() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropScaleByZeroAnnihilates(t *testing.T) {
	f := func(vals []float32) bool {
		v := boundedVec(vals, 1)
		x := FromSlice(v, len(v))
		return Scale(x, 0).L2Norm() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAXPYMatchesAddScale(t *testing.T) {
	f := func(vals []float32, alpha float32) bool {
		if math.IsNaN(float64(alpha)) || math.IsInf(float64(alpha), 0) {
			alpha = 2
		}
		if alpha > 10 {
			alpha = 10
		}
		if alpha < -10 {
			alpha = -10
		}
		v := boundedVec(vals, 2)
		a := FromSlice(append([]float32(nil), v...), len(v))
		b := FromSlice(append([]float32(nil), v...), len(v))
		want := Add(a, Scale(b, alpha))
		AXPY(alpha, b, a)
		return Equal(a, want, 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropReshapePreservesSum(t *testing.T) {
	f := func(vals []float32) bool {
		v := boundedVec(vals, 6)
		v = v[:len(v)/6*6]
		x := FromSlice(v, len(v))
		y := x.Reshape(len(v)/6, 2, 3)
		return math.Abs(float64(x.Sum()-y.Sum())) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropConcatPreservesElements(t *testing.T) {
	f := func(a, b []float32) bool {
		va := boundedVec(a, 2)
		vb := boundedVec(b, 2)
		va = va[:len(va)/2*2]
		vb = vb[:len(vb)/2*2]
		x := FromSlice(va, len(va)/2, 2)
		y := FromSlice(vb, len(vb)/2, 2)
		c := Concat(x, y)
		if c.Numel() != x.Numel()+y.Numel() {
			return false
		}
		return math.Abs(float64(c.Sum()-(x.Sum()+y.Sum()))) < 1e-2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulDistributesOverSecondArg(t *testing.T) {
	r := NewRNG(77)
	for trial := 0; trial < 25; trial++ {
		a := RandNormal(r, 0, 1, 3, 5)
		b := RandNormal(r, 0, 1, 5, 4)
		c := RandNormal(r, 0, 1, 5, 4)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		if !Equal(lhs, rhs, 1e-4) {
			t.Fatal("matmul not linear in second argument")
		}
	}
}

func TestPropMatMulAssociativeWithinTolerance(t *testing.T) {
	r := NewRNG(78)
	for trial := 0; trial < 10; trial++ {
		a := RandNormal(r, 0, 1, 3, 4)
		b := RandNormal(r, 0, 1, 4, 5)
		c := RandNormal(r, 0, 1, 5, 2)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		if !Equal(lhs, rhs, 1e-3) {
			t.Fatal("matmul associativity violated beyond float32 tolerance")
		}
	}
}

func TestPropMatVecAgreesWithMatMul(t *testing.T) {
	r := NewRNG(79)
	for trial := 0; trial < 20; trial++ {
		a := RandNormal(r, 0, 1, 4, 6)
		x := RandNormal(r, 0, 1, 6)
		got := MatVec(a, x)
		want := MatMul(a, x.Reshape(6, 1)).Reshape(4)
		if !Equal(got, want, 1e-4) {
			t.Fatal("MatVec disagrees with MatMul")
		}
	}
}

func TestPropOuterRankOne(t *testing.T) {
	r := NewRNG(80)
	x := RandNormal(r, 0, 1, 5)
	y := RandNormal(r, 0, 1, 7)
	o := Outer(x, y)
	// Every row is a scalar multiple of y: check via cross ratios.
	for i := 0; i < 5; i++ {
		for j := 1; j < 7; j++ {
			lhs := float64(o.At(i, j)) * float64(y.At(0))
			rhs := float64(o.At(i, 0)) * float64(y.At(j))
			if math.Abs(lhs-rhs) > 1e-4 {
				t.Fatal("outer product not rank one")
			}
		}
	}
}

func TestPropSoftmaxPreservesArgmax(t *testing.T) {
	f := func(vals []float32) bool {
		v := boundedVec(vals, 3)
		if len(v) > 12 {
			v = v[:12]
		}
		x := FromSlice(v, 1, len(v))
		s := SoftmaxRows(x)
		return x.Argmax() == s.Argmax()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropLogSoftmaxExpSumsToOne(t *testing.T) {
	r := NewRNG(81)
	for trial := 0; trial < 20; trial++ {
		x := RandNormal(r, 0, 3, 4, 9)
		ls := LogSoftmaxRows(x)
		for i := 0; i < 4; i++ {
			var sum float64
			for j := 0; j < 9; j++ {
				sum += math.Exp(float64(ls.At(i, j)))
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("exp(logsoftmax) row sums to %g", sum)
			}
		}
	}
}

func TestPropTopKMonotoneInK(t *testing.T) {
	r := NewRNG(82)
	logits := RandNormal(r, 0, 1, 16, 10)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = r.Intn(10)
	}
	prev := 0.0
	for k := 1; k <= 10; k++ {
		acc := TopKAccuracy(logits, labels, k)
		if acc < prev {
			t.Fatalf("top-%d accuracy %.3f below top-%d %.3f", k, acc, k-1, prev)
		}
		prev = acc
	}
	if prev != 1.0 {
		t.Fatal("top-V accuracy must be 1")
	}
}

func TestPropConv2DLinearInInput(t *testing.T) {
	r := NewRNG(83)
	for trial := 0; trial < 10; trial++ {
		x1 := RandNormal(r, 0, 1, 1, 2, 5, 5)
		x2 := RandNormal(r, 0, 1, 1, 2, 5, 5)
		w := RandNormal(r, 0, 1, 3, 2, 3, 3)
		lhs := Conv2D(Add(x1, x2), w, 1, 1)
		rhs := Add(Conv2D(x1, w, 1, 1), Conv2D(x2, w, 1, 1))
		if !Equal(lhs, rhs, 1e-3) {
			t.Fatal("conv2d not linear in input")
		}
	}
}

func TestPropPoolBounds(t *testing.T) {
	r := NewRNG(84)
	for trial := 0; trial < 10; trial++ {
		x := RandNormal(r, 0, 1, 1, 2, 6, 6)
		mp, _ := MaxPool2D(x, 2, 2)
		ap := AvgPool2D(x, 2, 2)
		// max >= avg elementwise; both within the input's range.
		for i := range mp.Data() {
			if mp.Data()[i] < ap.Data()[i]-1e-6 {
				t.Fatal("max pool below avg pool")
			}
		}
		if mp.Max() > x.Max()+1e-6 || ap.Min() < x.Min()-1e-6 {
			t.Fatal("pool outputs escape the input range")
		}
	}
}

func TestPropMatMulIntoMatchesMatMul(t *testing.T) {
	f := func(vals []float32) bool {
		v := boundedVec(vals, 12)
		n, k, m := 3, 2, 2
		a := FromSlice(v[:n*k], n, k)
		b := FromSlice(v[n*k:n*k+k*m], k, m)
		want := MatMul(a, b)
		// A recycled, dirty pooled destination must give identical bits.
		dst := Acquire(n, m)
		dst.Fill(123)
		dst.Release()
		got := MatMulInto(Acquire(n, m), a, b)
		return Equal(got, want, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
