package tensor

import "math"

// IEEE 754 half-precision conversion, used by the distributed layer to
// compress gradient payloads in flight (the paper's §4.5 recommendation
// to "reduce the amount of data sent") and by the fp16-storage GEMM
// (gemm_half.go) to hold frozen inference weights at half the bytes.
// Training state stays FP32; only the storage format narrows.

// Float32ToHalf converts one float32 to its nearest float16 bit pattern
// (round-to-nearest-even, with overflow to ±Inf and graceful subnormals).
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16((bits >> 16) & 0x8000)
	exp := int32((bits>>23)&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case (bits>>23)&0xff == 0xff: // Inf / NaN
		if mant != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf
	case exp >= 0x1f: // overflow -> Inf
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign // underflow to zero
		}
		// Add the implicit leading 1, then shift into subnormal range.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even: up only when the round bit is set and
		// either a sticky bit survives below it or the kept LSB is odd.
		// (Round-half-up here would pull exact ties like 2^-25 away from
		// zero, off by one from the hardware F16C conversion.)
		round := mant >> (shift - 1) & 1
		sticky := mant & (1<<(shift-1) - 1)
		if round != 0 && (sticky != 0 || half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp<<10) | uint16(mant>>13)
		// Round to nearest even on the 13 dropped bits: up only when the
		// round bit (0x1000) is set and either a sticky bit survives below
		// it or the kept LSB is odd. The mantissa increment carries into
		// the exponent correctly, including 0x7bff -> 0x7c00 (Inf).
		if mant&0x1000 != 0 && (mant&0xfff != 0 || half&1 == 1) {
			half++
		}
		return half
	}
}

// HalfToFloat32 expands a float16 bit pattern to float32.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// EncodeHalf compresses a float32 slice to float16 bit patterns.
func EncodeHalf(src []float32) []uint16 {
	out := make([]uint16, len(src))
	for i, v := range src {
		out[i] = Float32ToHalf(v)
	}
	return out
}

// DecodeHalf expands float16 bit patterns back to float32.
func DecodeHalf(src []uint16) []float32 {
	out := make([]float32, len(src))
	for i, h := range src {
		out[i] = HalfToFloat32(h)
	}
	return out
}
