// SSE micro-kernels for the packed GEMM core. See gemm_kernels.go for the
// reduction-order contract and gemm.go for the packed panel layout.
//
// Both kernels compute a 4x4 output tile: 4 accumulator vectors X0-X3,
// one per output row, 4 output columns per vector lane. The A panel is
// lane-replicated (each a element stored 4x contiguously), so an A scalar
// is one MOVUPS — no shuffle-port broadcast on the critical path. The B
// strip holds one 4-column vector per reduction step.
//
// SSE only (MULPS/ADDPS are baseline amd64); explicitly no FMA — fused
// rounding would change bits vs. the Go kernels and the references.
//
// Plan 9 operand order: OP src, dst  =>  dst = dst OP src.

#include "textflag.h"

// func microTree4x4SSE(dst *float32, ldd int, ap, bp *float32, kc, accum int)
//
// Tree order: k in groups of four, each group reduced as the expression
// tree ((m0+m1)+m2)+m3 and added to the accumulator, then a scalar tail;
// accum != 0 seeds the accumulators from dst.
TEXT ·microTree4x4SSE(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	SHLQ $2, SI               // byte stride between dst rows
	LEAQ (DI)(SI*1), R9       // dst row 1
	LEAQ (R9)(SI*1), R10      // dst row 2
	LEAQ (R10)(SI*1), R11     // dst row 3
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	MOVQ accum+40(FP), DX

	TESTQ DX, DX
	JZ   tree_zero
	MOVUPS (DI), X0
	MOVUPS (R9), X1
	MOVUPS (R10), X2
	MOVUPS (R11), X3
	JMP  tree_body

tree_zero:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3

tree_body:
	CMPQ CX, $4
	JL   tree_tail

tree_block:
	// B vectors for steps p..p+3.
	MOVUPS (BX), X4
	MOVUPS 16(BX), X5
	MOVUPS 32(BX), X6
	MOVUPS 48(BX), X7

	// Row 0: a elements at step*64 + row*16 bytes.
	MOVUPS (AX), X8
	MULPS  X4, X8             // m0
	MOVUPS 64(AX), X9
	MULPS  X5, X9             // m1
	MOVUPS 128(AX), X10
	MULPS  X6, X10            // m2
	MOVUPS 192(AX), X11
	MULPS  X7, X11            // m3
	ADDPS  X9, X8             // m0+m1
	ADDPS  X10, X8            // (m0+m1)+m2
	ADDPS  X11, X8            // ((m0+m1)+m2)+m3
	ADDPS  X8, X0

	// Row 1.
	MOVUPS 16(AX), X8
	MULPS  X4, X8
	MOVUPS 80(AX), X9
	MULPS  X5, X9
	MOVUPS 144(AX), X10
	MULPS  X6, X10
	MOVUPS 208(AX), X11
	MULPS  X7, X11
	ADDPS  X9, X8
	ADDPS  X10, X8
	ADDPS  X11, X8
	ADDPS  X8, X1

	// Row 2.
	MOVUPS 32(AX), X8
	MULPS  X4, X8
	MOVUPS 96(AX), X9
	MULPS  X5, X9
	MOVUPS 160(AX), X10
	MULPS  X6, X10
	MOVUPS 224(AX), X11
	MULPS  X7, X11
	ADDPS  X9, X8
	ADDPS  X10, X8
	ADDPS  X11, X8
	ADDPS  X8, X2

	// Row 3.
	MOVUPS 48(AX), X8
	MULPS  X4, X8
	MOVUPS 112(AX), X9
	MULPS  X5, X9
	MOVUPS 176(AX), X10
	MULPS  X6, X10
	MOVUPS 240(AX), X11
	MULPS  X7, X11
	ADDPS  X9, X8
	ADDPS  X10, X8
	ADDPS  X11, X8
	ADDPS  X8, X3

	ADDQ $256, AX             // 4 steps x 16 floats
	ADDQ $64, BX              // 4 steps x 4 floats
	SUBQ $4, CX
	CMPQ CX, $4
	JGE  tree_block

tree_tail:
	TESTQ CX, CX
	JZ    tree_done

tree_single:
	MOVUPS (BX), X4
	MOVUPS (AX), X8
	MULPS  X4, X8
	ADDPS  X8, X0
	MOVUPS 16(AX), X9
	MULPS  X4, X9
	ADDPS  X9, X1
	MOVUPS 32(AX), X10
	MULPS  X4, X10
	ADDPS  X10, X2
	MOVUPS 48(AX), X11
	MULPS  X4, X11
	ADDPS  X11, X3
	ADDQ   $64, AX
	ADDQ   $16, BX
	DECQ   CX
	JNZ    tree_single

tree_done:
	MOVUPS X0, (DI)
	MOVUPS X1, (R9)
	MOVUPS X2, (R10)
	MOVUPS X3, (R11)
	RET

// func microSeq4x4SSE(dst *float32, ldd int, ap, bp *float32, kc, accum int)
//
// Sequential order: one product added per reduction step, sums seeded
// from zero; accum != 0 adds dst once at the end (matching the reference
// transposed-B kernels, which compute dot products from zero and then
// dst += r).
TEXT ·microSeq4x4SSE(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	SHLQ $2, SI
	LEAQ (DI)(SI*1), R9
	LEAQ (R9)(SI*1), R10
	LEAQ (R10)(SI*1), R11
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	MOVQ accum+40(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3

	CMPQ CX, $4
	JL   seq_tail

seq_block:
	// Four steps, each added to the accumulator before the next —
	// unrolling does not regroup the sums.
	MOVUPS (BX), X4
	MOVUPS 16(BX), X5
	MOVUPS 32(BX), X6
	MOVUPS 48(BX), X7

	MOVUPS (AX), X8
	MULPS  X4, X8
	ADDPS  X8, X0
	MOVUPS 16(AX), X9
	MULPS  X4, X9
	ADDPS  X9, X1
	MOVUPS 32(AX), X10
	MULPS  X4, X10
	ADDPS  X10, X2
	MOVUPS 48(AX), X11
	MULPS  X4, X11
	ADDPS  X11, X3

	MOVUPS 64(AX), X8
	MULPS  X5, X8
	ADDPS  X8, X0
	MOVUPS 80(AX), X9
	MULPS  X5, X9
	ADDPS  X9, X1
	MOVUPS 96(AX), X10
	MULPS  X5, X10
	ADDPS  X10, X2
	MOVUPS 112(AX), X11
	MULPS  X5, X11
	ADDPS  X11, X3

	MOVUPS 128(AX), X8
	MULPS  X6, X8
	ADDPS  X8, X0
	MOVUPS 144(AX), X9
	MULPS  X6, X9
	ADDPS  X9, X1
	MOVUPS 160(AX), X10
	MULPS  X6, X10
	ADDPS  X10, X2
	MOVUPS 176(AX), X11
	MULPS  X6, X11
	ADDPS  X11, X3

	MOVUPS 192(AX), X8
	MULPS  X7, X8
	ADDPS  X8, X0
	MOVUPS 208(AX), X9
	MULPS  X7, X9
	ADDPS  X9, X1
	MOVUPS 224(AX), X10
	MULPS  X7, X10
	ADDPS  X10, X2
	MOVUPS 240(AX), X11
	MULPS  X7, X11
	ADDPS  X11, X3

	ADDQ $256, AX
	ADDQ $64, BX
	SUBQ $4, CX
	CMPQ CX, $4
	JGE  seq_block

seq_tail:
	TESTQ CX, CX
	JZ    seq_fini

seq_single:
	MOVUPS (BX), X4
	MOVUPS (AX), X8
	MULPS  X4, X8
	ADDPS  X8, X0
	MOVUPS 16(AX), X9
	MULPS  X4, X9
	ADDPS  X9, X1
	MOVUPS 32(AX), X10
	MULPS  X4, X10
	ADDPS  X10, X2
	MOVUPS 48(AX), X11
	MULPS  X4, X11
	ADDPS  X11, X3
	ADDQ   $64, AX
	ADDQ   $16, BX
	DECQ   CX
	JNZ    seq_single

seq_fini:
	TESTQ DX, DX
	JZ    seq_store
	MOVUPS (DI), X8
	ADDPS  X8, X0
	MOVUPS (R9), X9
	ADDPS  X9, X1
	MOVUPS (R10), X10
	ADDPS  X10, X2
	MOVUPS (R11), X11
	ADDPS  X11, X3

seq_store:
	MOVUPS X0, (DI)
	MOVUPS X1, (R9)
	MOVUPS X2, (R10)
	MOVUPS X3, (R11)
	RET
