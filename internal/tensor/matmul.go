package tensor

import (
	"fmt"

	"tbd/internal/prof"
)

// beginGemmSpan opens a profiler span for one GEMM entry point with its
// FLOP count and operand/result traffic attached. Span names are package
// constants so the disabled path never builds a string.
func beginGemmSpan(name string, n, k, m int) prof.Span {
	sp := prof.Begin(prof.CatKernel, name)
	if sp.Active() {
		sp.SetFLOPs(2 * float64(n) * float64(k) * float64(m))
		sp.SetBytes(4 * (int64(n)*int64(k) + int64(k)*int64(m) + int64(n)*int64(m)))
	}
	return sp
}

// minGemmWork is the approximate number of multiply-adds one worker should
// own before row-splitting a GEMM is worth the dispatch overhead.
const minGemmWork = 1 << 15

// gemmMinRows converts a per-row cost (k*m multiply-adds) into the minimum
// rows-per-worker threshold used by parallelRows.
func gemmMinRows(k, m int) int {
	return 1 + minGemmWork/(k*m+1)
}

func checkMatMul(a, b *Tensor, name string, transA, transB bool) (n, k, m int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s needs rank-2 operands, got %v, %v", name, a.shape, b.shape))
	}
	if transA {
		k, n = a.shape[0], a.shape[1]
	} else {
		n, k = a.shape[0], a.shape[1]
	}
	var k2 int
	if transB {
		m, k2 = b.shape[0], b.shape[1]
	} else {
		k2, m = b.shape[0], b.shape[1]
	}
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v, %v", name, a.shape, b.shape))
	}
	return n, k, m
}

func checkDst(dst *Tensor, n, m int, name string) {
	if dst.Rank() != 2 || dst.shape[0] != n || dst.shape[1] != m {
		panic(fmt.Sprintf("tensor: %s destination %v, want [%d %d]", name, dst.shape, n, m))
	}
}

// MatMul returns a @ b for 2-D tensors a [N, K] and b [K, M], computed with
// the packed kernel and row-parallel dispatch. The output is written in
// overwrite mode, so the pooled buffer skips its zero-fill.
func MatMul(a, b *Tensor) *Tensor {
	n, k, m := checkMatMul(a, b, "MatMul", false, false)
	sp := beginGemmSpan("gemm", n, k, m)
	out := acquireDirty(n, m)
	gemmParallel(out.data, a.data, b.data, n, k, m, layPlain, false, nil)
	sp.End()
	return out
}

// MatMulBiasAct returns act(a @ b + bias) with the bias broadcast across
// rows and the activation fused into the GEMM write-back. bias may be nil
// (no bias) and act ActNone (no activation); the result is bit-identical
// to MatMul followed by AddRowBroadcastInPlace followed by the standalone
// activation.
func MatMulBiasAct(a, b, bias *Tensor, act ActKind) *Tensor {
	n, k, m := checkMatMul(a, b, "MatMulBiasAct", false, false)
	var ep *epilogue
	if bias != nil {
		if bias.Rank() != 1 || bias.shape[0] != m {
			panic(fmt.Sprintf("tensor: MatMulBiasAct bias %v, want [%d]", bias.shape, m))
		}
		ep = &epilogue{colBias: bias.data, act: act}
	} else if act != ActNone {
		ep = &epilogue{act: act}
	}
	sp := beginGemmSpan("gemm.bias_act", n, k, m)
	out := acquireDirty(n, m)
	gemmParallel(out.data, a.data, b.data, n, k, m, layPlain, false, ep)
	sp.End()
	return out
}

// MatMulInto computes dst = a @ b into the caller's buffer and returns dst.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	n, k, m := checkMatMul(a, b, "MatMulInto", false, false)
	checkDst(dst, n, m, "MatMulInto")
	sp := beginGemmSpan("gemm", n, k, m)
	gemmParallel(dst.data, a.data, b.data, n, k, m, layPlain, false, nil)
	sp.End()
	return dst
}

// MatMulTransA returns aᵀ @ b for a [K, N] and b [K, M], producing [N, M]
// without materializing the transpose. Used for weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	n, k, m := checkMatMul(a, b, "MatMulTransA", true, false)
	sp := beginGemmSpan("gemm.dW", n, k, m)
	out := acquireDirty(n, m)
	gemmParallel(out.data, a.data, b.data, n, k, m, layTransA, false, nil)
	sp.End()
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b into the caller's buffer and
// returns dst.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	n, k, m := checkMatMul(a, b, "MatMulTransAInto", true, false)
	checkDst(dst, n, m, "MatMulTransAInto")
	sp := beginGemmSpan("gemm.dW", n, k, m)
	gemmParallel(dst.data, a.data, b.data, n, k, m, layTransA, false, nil)
	sp.End()
	return dst
}

// MatMulTransB returns a @ bᵀ for a [N, K] and b [M, K], producing [N, M]
// without materializing the transpose. Used for input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	n, k, m := checkMatMul(a, b, "MatMulTransB", false, true)
	sp := beginGemmSpan("gemm.dX", n, k, m)
	out := acquireDirty(n, m)
	gemmParallel(out.data, a.data, b.data, n, k, m, layTransB, false, nil)
	sp.End()
	return out
}

// MatMulTransBInto computes dst = a @ bᵀ into the caller's buffer and
// returns dst.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	n, k, m := checkMatMul(a, b, "MatMulTransBInto", false, true)
	checkDst(dst, n, m, "MatMulTransBInto")
	sp := beginGemmSpan("gemm.dX", n, k, m)
	gemmParallel(dst.data, a.data, b.data, n, k, m, layTransB, false, nil)
	sp.End()
	return dst
}

// MatVec returns a @ x for a [N, K] and x [K], producing [N].
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs [N,K] @ [K], got %v @ %v", a.shape, x.shape))
	}
	n, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v @ %v", a.shape, x.shape))
	}
	out := New(n)
	for i := 0; i < n; i++ {
		out.data[i] = dotOne(a.data[i*k:(i+1)*k], x.data)
	}
	return out
}

// Outer returns x ⊗ y, the [N, M] outer product of vectors x [N] and y [M].
func Outer(x, y *Tensor) *Tensor {
	if x.Rank() != 1 || y.Rank() != 1 {
		panic(fmt.Sprintf("tensor: Outer needs vectors, got %v, %v", x.shape, y.shape))
	}
	n, m := x.shape[0], y.shape[0]
	out := New(n, m)
	for i := 0; i < n; i++ {
		xv := x.data[i]
		row := out.data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			row[j] = xv * y.data[j]
		}
	}
	return out
}

// BatchMatMul multiplies matching batches: a [B, N, K] @ b [B, K, M] ->
// [B, N, M], batches split across the worker pool. Used by attention
// layers.
func BatchMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic(fmt.Sprintf("tensor: BatchMatMul needs rank-3 operands, got %v @ %v", a.shape, b.shape))
	}
	bb, n, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != bb || b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchMatMul mismatch %v @ %v", a.shape, b.shape))
	}
	m := b.shape[2]
	sp := prof.Begin(prof.CatKernel, "gemm.batch")
	if sp.Active() {
		sp.SetFLOPs(2 * float64(bb) * float64(n) * float64(k) * float64(m))
		sp.SetBytes(4 * int64(bb) * (int64(n)*int64(k) + int64(k)*int64(m) + int64(n)*int64(m)))
	}
	out := acquireDirty(bb, n, m)
	minBatches := 1 + gemmMinRows(k, m)/max(n, 1)
	if rowWorkers(bb, minBatches) <= 1 {
		batchMatMulRange(out.data, a.data, b.data, n, k, m, 0, bb)
		sp.End()
		return out
	}
	parallelRows(bb, minBatches, func(lo, hi int) {
		batchMatMulRange(out.data, a.data, b.data, n, k, m, lo, hi)
	})
	sp.End()
	return out
}

func batchMatMulRange(dst, a, b []float32, n, k, m, lo, hi int) {
	for i := lo; i < hi; i++ {
		gemmSerial(dst[i*n*m:(i+1)*n*m], a[i*n*k:(i+1)*n*k], b[i*k*m:(i+1)*k*m], n, k, m, layPlain, false, nil)
	}
}
