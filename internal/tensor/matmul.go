package tensor

import "fmt"

// MatMul returns a @ b for 2-D tensors a [N, K] and b [K, M].
// The inner loops are ordered i-k-j so the innermost loop streams through
// contiguous rows of b and out, which matters for the conv2d im2col path.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v @ %v", a.shape, b.shape))
	}
	n, k := a.shape[0], a.shape[1]
	k2, m := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v @ %v", a.shape, b.shape))
	}
	out := New(n, m)
	matmulInto(out.data, a.data, b.data, n, k, m)
	return out
}

func matmulInto(dst, a, b []float32, n, k, m int) {
	for i := 0; i < n; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*m : (i+1)*m]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*m : (p+1)*m]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ @ b for a [K, N] and b [K, M], producing [N, M]
// without materializing the transpose. Used for weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs rank-2 operands, got %v, %v", a.shape, b.shape))
	}
	k, n := a.shape[0], a.shape[1]
	k2, m := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA outer dimension mismatch %v, %v", a.shape, b.shape))
	}
	out := New(n, m)
	for p := 0; p < k; p++ {
		arow := a.data[p*n : (p+1)*n]
		brow := b.data[p*m : (p+1)*m]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := out.data[i*m : (i+1)*m]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a @ bᵀ for a [N, K] and b [M, K], producing [N, M]
// without materializing the transpose. Used for input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs rank-2 operands, got %v, %v", a.shape, b.shape))
	}
	n, k := a.shape[0], a.shape[1]
	m, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v, %v", a.shape, b.shape))
	}
	out := New(n, m)
	for i := 0; i < n; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := out.data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
	return out
}

// MatVec returns a @ x for a [N, K] and x [K], producing [N].
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs [N,K] @ [K], got %v @ %v", a.shape, x.shape))
	}
	n, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v @ %v", a.shape, x.shape))
	}
	out := New(n)
	for i := 0; i < n; i++ {
		row := a.data[i*k : (i+1)*k]
		var s float32
		for p, v := range row {
			s += v * x.data[p]
		}
		out.data[i] = s
	}
	return out
}

// Outer returns x ⊗ y, the [N, M] outer product of vectors x [N] and y [M].
func Outer(x, y *Tensor) *Tensor {
	if x.Rank() != 1 || y.Rank() != 1 {
		panic(fmt.Sprintf("tensor: Outer needs vectors, got %v, %v", x.shape, y.shape))
	}
	n, m := x.shape[0], y.shape[0]
	out := New(n, m)
	for i := 0; i < n; i++ {
		xv := x.data[i]
		row := out.data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			row[j] = xv * y.data[j]
		}
	}
	return out
}

// BatchMatMul multiplies matching batches: a [B, N, K] @ b [B, K, M] ->
// [B, N, M]. Used by attention layers.
func BatchMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic(fmt.Sprintf("tensor: BatchMatMul needs rank-3 operands, got %v @ %v", a.shape, b.shape))
	}
	bb, n, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[0] != bb || b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchMatMul mismatch %v @ %v", a.shape, b.shape))
	}
	m := b.shape[2]
	out := New(bb, n, m)
	for i := 0; i < bb; i++ {
		matmulInto(out.data[i*n*m:(i+1)*n*m], a.data[i*n*k:(i+1)*n*k], b.data[i*k*m:(i+1)*k*m], n, k, m)
	}
	return out
}
