package tensor

import "math"

// 8x8 register-tiled micro-kernels for the AVX2+FMA tier, over the wide
// packed layout built by packATileWide/packBRangeWide (see gemm_wide.go):
//
//	A tile:  ap[p*8 + r] = a(i0+r, p) — plain scalars; the assembly
//	         broadcasts them with VBROADCASTSS, a pure load-port µop, so
//	         unlike the 4x4 SSE layout no lane replication is needed.
//	B strip: bp[j0*k + p*8 + c] = b(p, j0+c) — one 8-float vector per
//	         reduction step.
//
// Reduction order: every output element is one strictly sequential chain
// of fused multiply-adds over k. The tree/seq split mirrors the 4x4
// kernels but only affects accumulate mode: tree seeds the accumulators
// from dst (plain and transposed-A layouts), seq sums from zero and adds
// dst once at the end (transposed-B). FMA rounds the multiply-add as one
// operation, so this tier is ULP-equivalent to the reference kernels, not
// bit-identical — see gemmFMAMaxULP in tier.go.
//
// The Go fallbacks emulate fused rounding with math.FMA in float64 and a
// final narrowing to float32. That double rounding (exact -> float64 ->
// float32) can differ from the hardware's single rounding to float32 in
// rare tie-straddling cases, so the assembly cross-check test holds the
// two within a small ULP bound instead of exact equality. The fallbacks
// exist for that cross-check and for non-amd64 builds; the avx2 tier is
// only selectable where the assembly is installed.

const (
	// microMW x microNW is the wide register tile: 8 output rows x 8
	// output columns (one AVX vector wide), 8 YMM accumulators live.
	microMW = 8
	microNW = 8
)

var (
	kernelTree8x8 = microTree8x8Go
	kernelSeq8x8  = microSeq8x8Go
	kernelHalf8x8 = microHalf8x8Go
)

// fma32 is a float32 fused multiply-add: a*b+c with a single rounding
// (modulo the float64 double-rounding caveat above).
func fma32(a, b, c float32) float32 {
	return float32(math.FMA(float64(a), float64(b), float64(c)))
}

// microTree8x8Go computes an 8x8 output tile dst[r*ldd+c] (r, c in 0..7)
// from wide-packed panels; accumulate mode seeds the sums from dst.
func microTree8x8Go(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	for r := 0; r < microMW; r++ {
		d := dst[r*ldd : r*ldd+microNW]
		var acc [microNW]float32
		if accum {
			copy(acc[:], d)
		}
		for p := 0; p < kc; p++ {
			av := ap[p*microMW+r]
			bq := bp[p*microNW : p*microNW+microNW]
			for c := range acc {
				acc[c] = fma32(av, bq[c], acc[c])
			}
		}
		copy(d, acc[:])
	}
}

// microSeq8x8Go is microTree8x8Go with the transposed-B accumulate
// convention: sums always start from zero and dst is added once at the
// end.
func microSeq8x8Go(dst []float32, ldd int, ap, bp []float32, kc int, accum bool) {
	for r := 0; r < microMW; r++ {
		d := dst[r*ldd : r*ldd+microNW]
		var acc [microNW]float32
		for p := 0; p < kc; p++ {
			av := ap[p*microMW+r]
			bq := bp[p*microNW : p*microNW+microNW]
			for c := range acc {
				acc[c] = fma32(av, bq[c], acc[c])
			}
		}
		if accum {
			for c := range acc {
				d[c] += acc[c]
			}
		} else {
			copy(d, acc[:])
		}
	}
}

// microHalf8x8Go is microTree8x8Go with the B strip stored as fp16 bit
// patterns, widened to float32 at consume time. Accumulation is full
// float32; only B's storage narrows.
func microHalf8x8Go(dst []float32, ldd int, ap []float32, bp []uint16, kc int, accum bool) {
	for r := 0; r < microMW; r++ {
		d := dst[r*ldd : r*ldd+microNW]
		var acc [microNW]float32
		if accum {
			copy(acc[:], d)
		}
		for p := 0; p < kc; p++ {
			av := ap[p*microMW+r]
			bq := bp[p*microNW : p*microNW+microNW]
			for c := range acc {
				acc[c] = fma32(av, HalfToFloat32(bq[c]), acc[c])
			}
		}
		copy(d, acc[:])
	}
}
