package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel execution for the heavy numeric kernels. Work is split across a
// persistent pool of worker goroutines fed through a channel; the pool is
// started lazily the first time more than one worker is requested, so a
// serial process never pays for it. Splits are always over disjoint output
// regions (GEMM rows, im2col rows, conv batches) and every kernel's
// per-element reduction order is independent of the split, so parallel
// results are bit-identical to serial ones.

// parallelism is the requested worker count. It is read on every op
// dispatch and may be written concurrently (A3C's async actors call
// SetParallelism), hence atomic.
var parallelism atomic.Int32

func init() { parallelism.Store(1) }

// maxParallelism bounds SetParallelism. At least 8 even on smaller hosts:
// the split is deterministic, so allowing more workers than cores is
// harmless and keeps multi-worker code paths testable everywhere.
func maxParallelism() int {
	return max(runtime.NumCPU(), 8)
}

// SetParallelism sets the worker count for heavy ops (clamped to
// [1, max(NumCPU, 8)]) and returns the value actually installed. Safe to
// call concurrently with running ops; in-flight dispatches may use either
// the old or the new count, with identical results.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	if m := maxParallelism(); n > m {
		n = m
	}
	parallelism.Store(int32(n))
	return n
}

// Parallelism returns the current worker count.
func Parallelism() int { return int(parallelism.Load()) }

// rowTask is one contiguous block of rows for a worker to run.
type rowTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	workMu      sync.Mutex
	workCh      chan rowTask
	workStarted int
)

// ensureWorkers makes sure at least want worker goroutines are draining
// workCh. Workers are never torn down; an idle worker costs only a parked
// goroutine.
func ensureWorkers(want int) chan rowTask {
	workMu.Lock()
	defer workMu.Unlock()
	if workCh == nil {
		workCh = make(chan rowTask, 4*maxParallelism())
	}
	for workStarted < want {
		workStarted++
		go func() {
			for t := range workCh {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
	return workCh
}

// rowWorkers reports how many workers parallelRows would use for n units
// of work with the given per-worker minimum. Hot call sites branch on it
// before building the dispatch closure: a closure handed to parallelRows
// escapes to the worker channel, so merely constructing one heap-allocates,
// and the serial path should instead call its kernel directly.
func rowWorkers(n, minRowsPerWorker int) int {
	if minRowsPerWorker < 1 {
		minRowsPerWorker = 1
	}
	workers := Parallelism()
	if w := n / minRowsPerWorker; workers > w {
		workers = w
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelRows splits [0, n) into contiguous blocks and runs fn(lo, hi)
// on each, in parallel when the work is large enough to amortize dispatch.
// The first block always runs on the calling goroutine, and submission is
// non-blocking (a full queue degrades to inline execution), so nested
// parallel ops cannot deadlock the pool.
func parallelRows(n int, minRowsPerWorker int, fn func(lo, hi int)) {
	workers := rowWorkers(n, minRowsPerWorker)
	if workers <= 1 {
		fn(0, n)
		return
	}
	ch := ensureWorkers(workers - 1)
	block := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := block; lo < n; lo += block {
		hi := min(lo+block, n)
		wg.Add(1)
		select {
		case ch <- rowTask{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, min(block, n))
	wg.Wait()
}

// parallelRowsAligned is parallelRows with worker block boundaries rounded
// up to a multiple of align, so kernels that tile output rows in fixed-size
// register blocks see at most one ragged tail (in the last block) instead
// of one per worker. Alignment only moves the split points; each row's
// reduction is self-contained, so results are bit-identical to any other
// split.
func parallelRowsAligned(n, align, minRowsPerWorker int, fn func(lo, hi int)) {
	workers := rowWorkers(n, minRowsPerWorker)
	if workers <= 1 {
		fn(0, n)
		return
	}
	block := (n + workers - 1) / workers
	if align > 1 {
		block = (block + align - 1) / align * align
	}
	ch := ensureWorkers(workers - 1)
	var wg sync.WaitGroup
	for lo := block; lo < n; lo += block {
		hi := min(lo+block, n)
		wg.Add(1)
		select {
		case ch <- rowTask{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, min(block, n))
	wg.Wait()
}

// MatMulParallel is MatMul with row-block parallelism. MatMul itself now
// dispatches through the worker pool, so this is an alias kept for
// callers that want the intent in the name.
func MatMulParallel(a, b *Tensor) *Tensor { return MatMul(a, b) }

// Conv2DParallel is Conv2D, which now splits its im2col lowering and
// output reordering across the worker pool. Kept for API compatibility.
func Conv2DParallel(x, w *Tensor, stride, pad int) *Tensor {
	return Conv2D(x, w, stride, pad)
}
