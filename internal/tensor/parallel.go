package tensor

import (
	"runtime"
	"sync"
)

// Parallel execution for the heavy numeric kernels. The worker count is
// package-global (set once at startup); 1 disables goroutine fan-out.
// Large GEMMs and batched convolutions split across row blocks; results
// are bit-identical to the serial path because each worker writes a
// disjoint output region.

var parallelism = 1

// SetParallelism sets the worker count for heavy ops (clamped to
// [1, NumCPU]). It returns the value actually installed. Not safe to
// call concurrently with running ops.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	if max := runtime.NumCPU(); n > max {
		n = max
	}
	parallelism = n
	return n
}

// Parallelism returns the current worker count.
func Parallelism() int { return parallelism }

// parallelRows splits [0, n) into contiguous blocks and runs fn(lo, hi)
// on each, in parallel when the work is large enough to amortize the
// goroutine overhead.
func parallelRows(n int, minRowsPerWorker int, fn func(lo, hi int)) {
	workers := parallelism
	if workers > n/minRowsPerWorker {
		workers = n / minRowsPerWorker
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulParallel is MatMul with row-block parallelism. With parallelism 1
// (the default) it is exactly MatMul.
func MatMulParallel(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[1] != b.shape[0] {
		// Reuse MatMul's validation panics.
		return MatMul(a, b)
	}
	n, k := a.shape[0], a.shape[1]
	m := b.shape[1]
	out := New(n, m)
	parallelRows(n, 8, func(lo, hi int) {
		matmulInto(out.data[lo*m:hi*m], a.data[lo*k:hi*k], b.data, hi-lo, k, m)
	})
	return out
}

// Conv2DParallel is Conv2D with the batch dimension split across
// workers.
func Conv2DParallel(x, w *Tensor, stride, pad int) *Tensor {
	if x.Rank() != 4 || w.Rank() != 4 || x.shape[1] != w.shape[1] {
		return Conv2D(x, w, stride, pad) // reuse validation
	}
	n := x.shape[0]
	if parallelism <= 1 || n < 2 {
		return Conv2D(x, w, stride, pad)
	}
	c, h, wid := x.shape[1], x.shape[2], x.shape[3]
	f, kh, kw := w.shape[0], w.shape[2], w.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wid, kw, stride, pad)
	out := New(n, f, oh, ow)
	per := c * h * wid
	outPer := f * oh * ow
	parallelRows(n, 1, func(lo, hi int) {
		sub := FromSlice(x.data[lo*per:hi*per], hi-lo, c, h, wid)
		y := Conv2D(sub, w, stride, pad)
		copy(out.data[lo*outPer:hi*outPer], y.data)
	})
	return out
}
