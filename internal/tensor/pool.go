package tensor

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"tbd/internal/prof"
)

// The live profiler attributes pool churn to spans; installing the
// counter source at init keeps prof free of a tensor dependency (tensor
// imports prof for kernel spans, not the other way around).
func init() {
	prof.SetPoolCounterSource(func() (gets, hits uint64) {
		return defaultPool.gets.Load(), defaultPool.hits.Load()
	})
}

// A Pool is a size-bucketed free list of tensor buffers. Training loops
// allocate the same tensor shapes every iteration (activations, gradient
// buffers, im2col workspaces), so recycling buffers turns a GC-bound
// steady state into a near-zero-allocation one — the host-side analogue
// of the framework memory arenas the paper's profiler observes.
//
// Buffers enter the pool only through an explicit Release; Get hands them
// back out zero-filled, so pooled allocation is semantically identical to
// New. The pool is safe for concurrent use (A3C's async actors share it).
type Pool struct {
	mu sync.Mutex
	// buckets[k] holds free tensors whose backing capacity is in
	// [2^k, 2^(k+1)), so any bucket entry satisfies a request with
	// ceilBucket(n) == k. Guarded by mu.
	buckets  [33][]*Tensor
	disabled atomic.Bool

	gets, hits, puts atomic.Uint64

	// packBuckets is a separate free list for GEMM panel-packing scratch.
	// Pack buffers churn at a different rate than activations (several
	// per GEMM call, always fully overwritten) and their sizes rarely
	// match tensor shapes; giving them their own size classes keeps them
	// from evicting activation buffers out of the capped tensor buckets.
	// Guarded by mu.
	packBuckets        [33][][]float32
	packGets, packHits atomic.Uint64

	// packHalfBuckets is the uint16 companion of packBuckets: scratch for
	// fp16 B panels in the half-storage GEMM. Half panels get their own
	// size classes for the same isolation reason as packBuckets, and
	// because a recycled []float32 cannot be retyped to []uint16 without
	// unsafe. Guarded by mu.
	packHalfBuckets            [33][][]uint16
	packHalfGets, packHalfHits atomic.Uint64
}

// poolBucketCap bounds the free tensors retained per size class so a
// burst of odd shapes cannot pin memory forever.
const poolBucketCap = 128

// ceilBucket returns the smallest k with n <= 2^k.
func ceilBucket(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a zero-filled tensor of the given shape, reusing a released
// buffer when one of sufficient capacity is available.
func (p *Pool) Get(shape ...int) *Tensor { return p.get(shape, true) }

// get implements Get; zero=false skips the clear for callers that fully
// overwrite the buffer (a recycled buffer holds stale values otherwise).
func (p *Pool) get(shape []int, zero bool) *Tensor {
	n := checkShape(shape)
	p.gets.Add(1)
	if p.disabled.Load() || n == 0 {
		return New(shape...)
	}
	var t *Tensor
	b := ceilBucket(n)
	p.mu.Lock()
	for k := b; k < len(p.buckets) && t == nil; k++ {
		if l := p.buckets[k]; len(l) > 0 {
			t = l[len(l)-1]
			l[len(l)-1] = nil
			p.buckets[k] = l[:len(l)-1]
		}
	}
	p.mu.Unlock()
	if t == nil {
		// Round the backing array up to the bucket size so the buffer's
		// capacity class matches the bucket any same-size request scans
		// first; without this, odd-sized buffers land one bucket below
		// where Get looks and are never reused.
		buf := make([]float32, n, 1<<uint(b))
		// cap 4 covers NCHW, the highest-rank shape in the codebase, so
		// later reuse at a different rank never regrows the shape slice.
		return &Tensor{shape: append(make([]int, 0, 4), shape...), data: buf, pooled: true}
	}
	p.hits.Add(1)
	t.shape = append(t.shape[:0], shape...)
	t.data = t.data[:cap(t.data)][:n]
	if zero {
		clear(t.data)
	}
	t.pooled = true
	return t
}

// put returns t's buffer to the free list. Only tensors handed out by Get
// are accepted; the pooled flag makes a second release of the same tensor
// a no-op, so shared references (two layers stashing the same activation)
// cannot double-free.
func (p *Pool) put(t *Tensor) {
	if t == nil || !t.pooled {
		return
	}
	t.pooled = false
	if debugPoison.Load() {
		nan := float32(math.NaN())
		for i := range t.data {
			t.data[i] = nan
		}
	}
	if p.disabled.Load() || cap(t.data) == 0 {
		return
	}
	b := bits.Len(uint(cap(t.data))) - 1
	if b >= len(p.buckets) {
		// A buffer too large for any size class is dropped rather than
		// retained (or worse, indexed out of bounds).
		return
	}
	p.mu.Lock()
	if len(p.buckets[b]) < poolBucketCap {
		p.buckets[b] = append(p.buckets[b], t)
		p.puts.Add(1)
	}
	p.mu.Unlock()
}

// getPack returns an n-element scratch slice for GEMM panel packing. The
// contents are arbitrary (packing overwrites every element). Pack buffers
// live in their own bucket array — see packBuckets.
func (p *Pool) getPack(n int) []float32 {
	p.packGets.Add(1)
	if p.disabled.Load() || n == 0 {
		return make([]float32, n)
	}
	b := ceilBucket(n)
	p.mu.Lock()
	for q := b; q < len(p.packBuckets); q++ {
		if l := p.packBuckets[q]; len(l) > 0 {
			buf := l[len(l)-1]
			l[len(l)-1] = nil
			p.packBuckets[q] = l[:len(l)-1]
			p.mu.Unlock()
			p.packHits.Add(1)
			return buf[:n]
		}
	}
	p.mu.Unlock()
	// Same capacity rounding as get: land the buffer in the bucket a
	// same-size request scans first.
	return make([]float32, n, 1<<uint(b))
}

// putPack returns a getPack slice to the pack free list.
func (p *Pool) putPack(buf []float32) {
	if p.disabled.Load() || cap(buf) == 0 {
		return
	}
	b := bits.Len(uint(cap(buf))) - 1
	if b >= len(p.packBuckets) {
		return
	}
	p.mu.Lock()
	if len(p.packBuckets[b]) < poolBucketCap {
		p.packBuckets[b] = append(p.packBuckets[b], buf)
	}
	p.mu.Unlock()
}

// getPackHalf returns an n-element uint16 scratch slice for fp16 GEMM
// panel packing; like getPack, the contents are arbitrary.
func (p *Pool) getPackHalf(n int) []uint16 {
	p.packHalfGets.Add(1)
	if p.disabled.Load() || n == 0 {
		return make([]uint16, n)
	}
	b := ceilBucket(n)
	p.mu.Lock()
	for q := b; q < len(p.packHalfBuckets); q++ {
		if l := p.packHalfBuckets[q]; len(l) > 0 {
			buf := l[len(l)-1]
			l[len(l)-1] = nil
			p.packHalfBuckets[q] = l[:len(l)-1]
			p.mu.Unlock()
			p.packHalfHits.Add(1)
			return buf[:n]
		}
	}
	p.mu.Unlock()
	return make([]uint16, n, 1<<uint(b))
}

// putPackHalf returns a getPackHalf slice to the half-pack free list.
func (p *Pool) putPackHalf(buf []uint16) {
	if p.disabled.Load() || cap(buf) == 0 {
		return
	}
	b := bits.Len(uint(cap(buf))) - 1
	if b >= len(p.packHalfBuckets) {
		return
	}
	p.mu.Lock()
	if len(p.packHalfBuckets[b]) < poolBucketCap {
		p.packHalfBuckets[b] = append(p.packHalfBuckets[b], buf)
	}
	p.mu.Unlock()
}

// drain discards every retained buffer.
func (p *Pool) drain() {
	p.mu.Lock()
	for i := range p.buckets {
		p.buckets[i] = nil
	}
	for i := range p.packBuckets {
		p.packBuckets[i] = nil
	}
	for i := range p.packHalfBuckets {
		p.packHalfBuckets[i] = nil
	}
	p.mu.Unlock()
}

// defaultPool backs Acquire/Release; pooling is enabled by default.
var defaultPool Pool

// Acquire returns a zero-filled tensor of the given shape from the shared
// buffer pool. It is interchangeable with New; callers that know when the
// tensor is dead can Release it so the next Acquire of a similar size
// reuses the buffer instead of allocating.
func Acquire(shape ...int) *Tensor { return defaultPool.Get(shape...) }

// AcquireDirty is Acquire without the zero-fill guarantee: the returned
// buffer holds arbitrary stale values and the caller must store every
// element. Kernels that fully overwrite their output (normalizations,
// activations, pointwise backwards) use it to skip the memclr that
// dominates Acquire on large recycled buffers.
func AcquireDirty(shape ...int) *Tensor { return defaultPool.get(shape, false) }

// acquireDirty is the package-internal spelling of AcquireDirty.
func acquireDirty(shape ...int) *Tensor { return defaultPool.get(shape, false) }

// Release returns t's buffer to the shared pool. It is a no-op on nil
// tensors, tensors not obtained from Acquire, and tensors already
// released, so callers may release defensively. Reshape views never carry
// pool ownership; releasing one is a no-op.
//
// Releasing a tensor that is still referenced elsewhere is a
// use-after-free bug: the buffer will be handed out, zeroed, and
// overwritten by an unrelated op.
func (t *Tensor) Release() { defaultPool.put(t) }

// SetPooling enables or disables the shared buffer pool and reports the
// previous setting. Disabling also drops all retained buffers; Acquire
// then degenerates to New and Release to a no-op, which is useful for
// allocation-profiling comparisons.
func SetPooling(on bool) bool {
	prev := !defaultPool.disabled.Load()
	defaultPool.disabled.Store(!on)
	if !on {
		defaultPool.drain()
	}
	return prev
}

// PoolingEnabled reports whether the shared buffer pool is active.
func PoolingEnabled() bool { return !defaultPool.disabled.Load() }

// debugPoison, when set, makes every Release fill the buffer with NaN
// before recycling it.
var debugPoison atomic.Bool

// SetDebugPoisonReleased enables or disables release-time buffer
// poisoning and reports the previous setting. With poisoning on, any
// caller that retains a tensor past its release — e.g. keeping a layer
// output across training steps, which the recycling contract forbids
// (see layers.Layer) — reads NaNs instead of silently stale or
// overwritten data, so use-after-release bugs surface immediately in
// tests. Poisoning is off by default; it costs a full write of every
// released buffer.
func SetDebugPoisonReleased(on bool) bool {
	return debugPoison.Swap(on)
}

// PoolStats reports cumulative Acquire calls, Acquire calls served from
// the free list, and buffers accepted back by Release.
func PoolStats() (gets, hits, puts uint64) {
	return defaultPool.gets.Load(), defaultPool.hits.Load(), defaultPool.puts.Load()
}

// PoolCounters is a point-in-time copy of the shared pool's cumulative
// counters. Readers that compare two moments (benchmarks, profiler spans)
// should take snapshots and Sub them instead of re-reading the live
// package-level counters, which keep advancing under concurrent traffic
// and would tear a multi-counter read.
type PoolCounters struct {
	Gets, Hits, Puts           uint64
	PackGets, PackHits         uint64
	PackHalfGets, PackHalfHits uint64
}

// PoolStatsSnapshot returns a copy of all pool counters (tensor buckets
// and pack-scratch buckets) at one moment.
func PoolStatsSnapshot() PoolCounters {
	return PoolCounters{
		Gets:         defaultPool.gets.Load(),
		Hits:         defaultPool.hits.Load(),
		Puts:         defaultPool.puts.Load(),
		PackGets:     defaultPool.packGets.Load(),
		PackHits:     defaultPool.packHits.Load(),
		PackHalfGets: defaultPool.packHalfGets.Load(),
		PackHalfHits: defaultPool.packHalfHits.Load(),
	}
}

// Sub returns the counter deltas accumulated since prev.
func (c PoolCounters) Sub(prev PoolCounters) PoolCounters {
	return PoolCounters{
		Gets:         c.Gets - prev.Gets,
		Hits:         c.Hits - prev.Hits,
		Puts:         c.Puts - prev.Puts,
		PackGets:     c.PackGets - prev.PackGets,
		PackHits:     c.PackHits - prev.PackHits,
		PackHalfGets: c.PackHalfGets - prev.PackHalfGets,
		PackHalfHits: c.PackHalfHits - prev.PackHalfHits,
	}
}

// PoolRetainedBytes reports the bytes currently parked on the shared
// pool's free lists: recycled tensor buffers and GEMM pack scratch. The
// pack number is the live engine's "workspace" arena in the paper's
// five-category memory breakdown — scratch that exists only to make
// kernels faster — and the profiler samples it for the memory watermark.
func PoolRetainedBytes() (tensorBytes, packBytes int64) {
	p := &defaultPool
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, bucket := range p.buckets {
		for _, t := range bucket {
			tensorBytes += int64(cap(t.data)) * 4
		}
	}
	for _, bucket := range p.packBuckets {
		for _, buf := range bucket {
			packBytes += int64(cap(buf)) * 4
		}
	}
	for _, bucket := range p.packHalfBuckets {
		for _, buf := range bucket {
			packBytes += int64(cap(buf)) * 2
		}
	}
	return tensorBytes, packBytes
}

// PackStats reports cumulative pack-scratch requests and the number served
// from the pack free list. Pack buffers are tracked separately from tensor
// buffers (see Pool.packBuckets), so these counters never move PoolStats.
func PackStats() (gets, hits uint64) {
	return defaultPool.packGets.Load(), defaultPool.packHits.Load()
}

// getPackBuf and putPackBuf are the package-internal pack-scratch entry
// points over the shared pool; the Half pair is the uint16 analogue for
// fp16 B panels.
func getPackBuf(n int) []float32    { return defaultPool.getPack(n) }
func putPackBuf(buf []float32)      { defaultPool.putPack(buf) }
func getHalfPackBuf(n int) []uint16 { return defaultPool.getPackHalf(n) }
func putHalfPackBuf(buf []uint16)   { defaultPool.putPackHalf(buf) }

// Aliases reports whether a and b share backing storage. Reshape produces
// views over the same array, so pointer identity of the first element is
// the aliasing test; empty or nil tensors alias only themselves.
func Aliases(a, b *Tensor) bool {
	if a == nil || b == nil || len(a.data) == 0 || len(b.data) == 0 {
		return a == b
	}
	return &a.data[0] == &b.data[0]
}
