package tensor

import (
	"runtime"
	"testing"
)

func TestSetParallelismClamps(t *testing.T) {
	defer SetParallelism(1)
	if got := SetParallelism(0); got != 1 {
		t.Fatalf("SetParallelism(0) = %d", got)
	}
	if got := SetParallelism(1 << 20); got != maxParallelism() {
		t.Fatalf("SetParallelism(huge) = %d, want %d", got, maxParallelism())
	}
	if Parallelism() != maxParallelism() {
		t.Fatal("Parallelism() did not reflect the setting")
	}
	if maxParallelism() < runtime.NumCPU() || maxParallelism() < 8 {
		t.Fatalf("maxParallelism() = %d, want >= max(NumCPU, 8)", maxParallelism())
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 64, 48)
	b := RandNormal(rng, 0, 1, 48, 32)
	want := MatMul(a, b)
	for _, workers := range []int{1, 2, 4} {
		SetParallelism(workers)
		got := MatMulParallel(a, b)
		if !Equal(got, want, 0) {
			t.Fatalf("parallel (%d workers) differs from serial", workers)
		}
	}
}

func TestConv2DParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(2)
	x := RandNormal(rng, 0, 1, 7, 3, 9, 9)
	w := RandNormal(rng, 0, 0.5, 5, 3, 3, 3)
	want := Conv2D(x, w, 2, 1)
	SetParallelism(4)
	got := Conv2DParallel(x, w, 2, 1)
	if !Equal(got, want, 0) {
		t.Fatal("parallel conv differs from serial")
	}
	// Batch of one falls back to serial.
	x1 := RandNormal(rng, 0, 1, 1, 3, 9, 9)
	if !Equal(Conv2DParallel(x1, w, 2, 1), Conv2D(x1, w, 2, 1), 0) {
		t.Fatal("single-sample fallback differs")
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	hit := make([]int32, 100)
	parallelRows(100, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("row %d covered %d times", i, h)
		}
	}
	// Tiny ranges run serially without loss.
	count := 0
	parallelRows(3, 8, func(lo, hi int) { count += hi - lo })
	if count != 3 {
		t.Fatalf("small range covered %d rows", count)
	}
}

// withWorkers runs f once per worker count, restoring serial mode after.
func withWorkers(t *testing.T, counts []int, f func(workers int)) {
	t.Helper()
	defer SetParallelism(1)
	for _, w := range counts {
		SetParallelism(w)
		f(w)
	}
}

// TestTransposeGEMMsParallelMatchSerial pins bit-identical parallel
// dispatch for the two transpose GEMMs across edge shapes: N=1 (no split
// possible), K=1 (remainder loop only), and block-size non-divisible dims.
func TestTransposeGEMMsParallelMatchSerial(t *testing.T) {
	rng := NewRNG(21)
	shapes := [][3]int{{1, 9, 7}, {6, 1, 5}, {67, 13, 5}, {33, 129, 17}, {16, 8, 1}}
	for _, s := range shapes {
		n, k, m := s[0], s[1], s[2]
		at := RandNormal(rng, 0, 1, k, n)
		a := RandNormal(rng, 0, 1, n, k)
		b := RandNormal(rng, 0, 1, k, m)
		bt := RandNormal(rng, 0, 1, m, k)
		SetParallelism(1)
		wantA := MatMulTransA(at, b)
		wantB := MatMulTransB(a, bt)
		withWorkers(t, []int{2, 3, 5}, func(workers int) {
			if !Equal(MatMulTransA(at, b), wantA, 0) {
				t.Fatalf("MatMulTransA %v: %d workers differ from serial", s, workers)
			}
			if !Equal(MatMulTransB(a, bt), wantB, 0) {
				t.Fatalf("MatMulTransB %v: %d workers differ from serial", s, workers)
			}
		})
	}
}

// TestIm2ColCol2ImParallelMatchSerial covers the conv lowering pair across
// padding/stride combinations, including zero-pad and batch-of-one.
func TestIm2ColCol2ImParallelMatchSerial(t *testing.T) {
	rng := NewRNG(22)
	cases := []struct{ n, c, h, w, kh, kw, stride, pad int }{
		{1, 1, 5, 5, 3, 3, 1, 0},
		{2, 3, 9, 7, 3, 3, 1, 1},
		{4, 2, 8, 8, 2, 2, 2, 0},
		{3, 5, 11, 11, 5, 5, 2, 2},
		{7, 1, 6, 6, 3, 1, 1, 1},
		// Kernel wider than the padded input (k > w+pad): the stride-1
		// fast path must clamp its copy span instead of panicking.
		{1, 1, 1, 1, 5, 5, 1, 2},
		{2, 2, 3, 1, 3, 5, 1, 2},
		{2, 2, 1, 3, 5, 3, 1, 2},
	}
	for _, cse := range cases {
		x := RandNormal(rng, 0, 1, cse.n, cse.c, cse.h, cse.w)
		SetParallelism(1)
		wantCols := Im2Col(x, cse.kh, cse.kw, cse.stride, cse.pad)
		grad := RandNormal(rng, 0, 1, wantCols.Shape()...)
		wantIm := Col2Im(grad, cse.n, cse.c, cse.h, cse.w, cse.kh, cse.kw, cse.stride, cse.pad)
		withWorkers(t, []int{2, 3, 5}, func(workers int) {
			if !Equal(Im2Col(x, cse.kh, cse.kw, cse.stride, cse.pad), wantCols, 0) {
				t.Fatalf("Im2Col %+v: %d workers differ from serial", cse, workers)
			}
			got := Col2Im(grad, cse.n, cse.c, cse.h, cse.w, cse.kh, cse.kw, cse.stride, cse.pad)
			if !Equal(got, wantIm, 0) {
				t.Fatalf("Col2Im %+v: %d workers differ from serial", cse, workers)
			}
		})
	}
}

// naiveIm2Col is the obviously-correct per-element reference for Im2Col,
// used to check the stride-1 fast path's border clamping.
func naiveIm2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := New(n, c*kh*kw, oh*ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := (ch*kh+ky)*kw + kx
					for oy := 0; oy < oh; oy++ {
						for ox := 0; ox < ow; ox++ {
							iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.Set(x.At(b, ch, iy, ix), b, row, oy*ow+ox)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// naiveCol2Im is the per-element scatter-add reference for Col2Im; it
// accumulates in the same (colIdx, oy, ox) order as col2imRange, so the
// comparison can be exact.
func naiveCol2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := New(n, c, h, w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := (ch*kh+ky)*kw + kx
					for oy := 0; oy < oh; oy++ {
						for ox := 0; ox < ow; ox++ {
							iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								out.Set(out.At(b, ch, iy, ix)+cols.At(b, row, oy*ow+ox), b, ch, iy, ix)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// TestConvLoweringWideKernel pins the kernel-wider-than-padded-input
// shapes (k > w+pad+1 and k > h+pad+1) that the stride-1 fast paths must
// clamp: im2col/col2im against the naive reference, and Conv2D
// forward+backward parallel against serial. The seed's generic loops
// handled these shapes; the fast paths must keep handling them.
func TestConvLoweringWideKernel(t *testing.T) {
	rng := NewRNG(26)
	cases := []struct{ n, c, h, w, kh, kw, stride, pad int }{
		{1, 1, 1, 1, 5, 5, 1, 2},
		{2, 2, 3, 1, 3, 5, 1, 2},
		{2, 2, 1, 3, 5, 3, 1, 2},
		{1, 3, 2, 2, 5, 5, 1, 2},
	}
	for _, cse := range cases {
		x := RandNormal(rng, 0, 1, cse.n, cse.c, cse.h, cse.w)
		wt := RandNormal(rng, 0, 0.5, 2, cse.c, cse.kh, cse.kw)
		SetParallelism(1)
		cols := Im2Col(x, cse.kh, cse.kw, cse.stride, cse.pad)
		if !Equal(cols, naiveIm2Col(x, cse.kh, cse.kw, cse.stride, cse.pad), 0) {
			t.Fatalf("Im2Col %+v differs from naive reference", cse)
		}
		grad := RandNormal(rng, 0, 1, cols.Shape()...)
		im := Col2Im(grad, cse.n, cse.c, cse.h, cse.w, cse.kh, cse.kw, cse.stride, cse.pad)
		if !Equal(im, naiveCol2Im(grad, cse.n, cse.c, cse.h, cse.w, cse.kh, cse.kw, cse.stride, cse.pad), 0) {
			t.Fatalf("Col2Im %+v differs from naive reference", cse)
		}
		y := Conv2D(x, wt, cse.stride, cse.pad)
		gy := RandNormal(rng, 0, 1, y.Shape()...)
		gx, gw := Conv2DBackward(x, wt, gy, cse.stride, cse.pad)
		withWorkers(t, []int{2, 3}, func(workers int) {
			if !Equal(Conv2D(x, wt, cse.stride, cse.pad), y, 0) {
				t.Fatalf("Conv2D %+v: %d workers differ from serial", cse, workers)
			}
			gx2, gw2 := Conv2DBackward(x, wt, gy, cse.stride, cse.pad)
			if !Equal(gx2, gx, 0) || !Equal(gw2, gw, 0) {
				t.Fatalf("Conv2DBackward %+v: %d workers differ from serial", cse, workers)
			}
		})
	}
}

// TestElementwiseParallelMatchesSerial pins the chunked elementwise ops.
func TestElementwiseParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(23)
	n := 3 * minElemsPerWorker // forces multi-chunk dispatch
	a := RandNormal(rng, 0, 1, n)
	b := RandNormal(rng, 1, 1, n)
	SetParallelism(1)
	wantAdd, wantMul, wantDiv := Add(a, b), Mul(a, b), Div(a, b)
	acc := a.Clone()
	AXPY(0.5, b, acc)
	withWorkers(t, []int{2, 5}, func(workers int) {
		if !Equal(Add(a, b), wantAdd, 0) || !Equal(Mul(a, b), wantMul, 0) || !Equal(Div(a, b), wantDiv, 0) {
			t.Fatalf("elementwise op differs at %d workers", workers)
		}
		acc2 := a.Clone()
		AXPY(0.5, b, acc2)
		if !Equal(acc2, acc, 0) {
			t.Fatalf("AXPY differs at %d workers", workers)
		}
	})
}

// TestBatchMatMulParallelMatchesSerial covers the batch split.
func TestBatchMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(24)
	a := RandNormal(rng, 0, 1, 5, 7, 11)
	b := RandNormal(rng, 0, 1, 5, 11, 3)
	SetParallelism(1)
	want := BatchMatMul(a, b)
	withWorkers(t, []int{2, 4}, func(workers int) {
		if !Equal(BatchMatMul(a, b), want, 0) {
			t.Fatalf("BatchMatMul differs at %d workers", workers)
		}
	})
}

// TestSetParallelismConcurrentWithOps is the -race regression for the old
// package-global worker count: hammer SetParallelism while GEMMs run and
// verify results stay bit-identical to serial.
func TestSetParallelismConcurrentWithOps(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(25)
	a := RandNormal(rng, 0, 1, 40, 30)
	b := RandNormal(rng, 0, 1, 30, 20)
	want := MatMul(a, b)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := 1
		for {
			select {
			case <-stop:
				return
			default:
				SetParallelism(1 + w%4)
				w++
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if got := MatMulParallel(a, b); !Equal(got, want, 0) {
			close(stop)
			<-done
			t.Fatalf("MatMul under concurrent SetParallelism differs at iter %d", i)
		}
	}
	close(stop)
	<-done
}

func BenchmarkMatMulParallelSpeedup(b *testing.B) {
	rng := NewRNG(3)
	a := RandNormal(rng, 0, 1, 256, 256)
	c := RandNormal(rng, 0, 1, 256, 256)
	b.Run("serial", func(b *testing.B) {
		SetParallelism(1)
		for i := 0; i < b.N; i++ {
			MatMulParallel(a, c)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		SetParallelism(runtime.NumCPU())
		defer SetParallelism(1)
		for i := 0; i < b.N; i++ {
			MatMulParallel(a, c)
		}
	})
}
