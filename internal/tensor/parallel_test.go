package tensor

import (
	"runtime"
	"testing"
)

func TestSetParallelismClamps(t *testing.T) {
	defer SetParallelism(1)
	if got := SetParallelism(0); got != 1 {
		t.Fatalf("SetParallelism(0) = %d", got)
	}
	if got := SetParallelism(1 << 20); got != runtime.NumCPU() {
		t.Fatalf("SetParallelism(huge) = %d, want NumCPU", got)
	}
	if Parallelism() != runtime.NumCPU() {
		t.Fatal("Parallelism() did not reflect the setting")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 64, 48)
	b := RandNormal(rng, 0, 1, 48, 32)
	want := MatMul(a, b)
	for _, workers := range []int{1, 2, 4} {
		SetParallelism(workers)
		got := MatMulParallel(a, b)
		if !Equal(got, want, 0) {
			t.Fatalf("parallel (%d workers) differs from serial", workers)
		}
	}
}

func TestConv2DParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(1)
	rng := NewRNG(2)
	x := RandNormal(rng, 0, 1, 7, 3, 9, 9)
	w := RandNormal(rng, 0, 0.5, 5, 3, 3, 3)
	want := Conv2D(x, w, 2, 1)
	SetParallelism(4)
	got := Conv2DParallel(x, w, 2, 1)
	if !Equal(got, want, 0) {
		t.Fatal("parallel conv differs from serial")
	}
	// Batch of one falls back to serial.
	x1 := RandNormal(rng, 0, 1, 1, 3, 9, 9)
	if !Equal(Conv2DParallel(x1, w, 2, 1), Conv2D(x1, w, 2, 1), 0) {
		t.Fatal("single-sample fallback differs")
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	hit := make([]int32, 100)
	parallelRows(100, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("row %d covered %d times", i, h)
		}
	}
	// Tiny ranges run serially without loss.
	count := 0
	parallelRows(3, 8, func(lo, hi int) { count += hi - lo })
	if count != 3 {
		t.Fatalf("small range covered %d rows", count)
	}
}

func BenchmarkMatMulParallelSpeedup(b *testing.B) {
	rng := NewRNG(3)
	a := RandNormal(rng, 0, 1, 256, 256)
	c := RandNormal(rng, 0, 1, 256, 256)
	b.Run("serial", func(b *testing.B) {
		SetParallelism(1)
		for i := 0; i < b.N; i++ {
			MatMulParallel(a, c)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		SetParallelism(runtime.NumCPU())
		defer SetParallelism(1)
		for i := 0; i < b.N; i++ {
			MatMulParallel(a, c)
		}
	})
}
