package tensor

import "fmt"

// fp16-storage, fp32-accumulate GEMM. Inference weights dominate a
// serving process's resident set; storing them as IEEE 754 half values
// cuts that in half while every arithmetic step stays float32 — the B
// operand is widened element by element inside the kernel (VCVTPH2PS on
// the avx2 tier with F16C) and the products and sums are full precision.
// The only accuracy loss is the one-time quantization of each weight to
// the nearest half, bounded by half's 2^-11 relative step.
//
// Two execution paths, chosen per call from the active kernel tier:
//
//	fast      avx2 tier with F16C: B strips are packed as uint16 halves
//	          (pooled uint16 scratch — half the workspace bytes of the
//	          fp32 pack) and fed to the 8x8 half-widening kernel. Row
//	          tails, down to a single serving sample, run the same kernel
//	          on a zero-padded A tile, so the whole n range takes one code
//	          path; ragged columns are widened once into fp32 scratch and
//	          reduced with dotOne's fixed order.
//	fallback  any other tier (or m < 8): the whole weight matrix is
//	          widened into pooled fp32 scratch and the ordinary fp32 GEMM
//	          runs. Bit-different from the fast path (FMA vs two
//	          roundings) but within the same quantization error bound.
//
// Within one path results are deterministic: the fast path's per-element
// reduction order depends only on the shapes (8-aligned splits, fixed
// kernel chains, dotOne edges), the fallback inherits the fp32 GEMM's
// contract.

// HalfMatrix is a rank-2 weight matrix stored as float16 bit patterns.
// It is immutable after construction and safe for concurrent readers —
// the serving batcher calls MatMulHalfBiasAct from its worker without
// copying the weights.
type HalfMatrix struct {
	rows, cols int
	data       []uint16 // row-major halves, data[p*cols+j] = w(p, j)
}

// NewHalfMatrix quantizes a rank-2 float32 tensor to half storage.
func NewHalfMatrix(t *Tensor) *HalfMatrix {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: NewHalfMatrix needs a rank-2 tensor, got %v", t.Shape()))
	}
	return &HalfMatrix{rows: t.shape[0], cols: t.shape[1], data: EncodeHalf(t.data)}
}

// Rows returns the first dimension (the reduction length K in a @ w).
func (h *HalfMatrix) Rows() int { return h.rows }

// Cols returns the second dimension (output features M).
func (h *HalfMatrix) Cols() int { return h.cols }

// Bytes returns the resident size of the stored weights.
func (h *HalfMatrix) Bytes() int64 { return int64(len(h.data)) * 2 }

// Float32 widens the stored weights back to a float32 tensor, carrying
// the quantization the round trip through half applied.
func (h *HalfMatrix) Float32() *Tensor {
	out := New(h.rows, h.cols)
	for i, v := range h.data {
		out.data[i] = HalfToFloat32(v)
	}
	return out
}

// MatMulHalfBiasAct returns act(a @ w + bias) for a float32 a [N, K] and
// half-stored w [K, M]; bias may be nil and act ActNone, as in
// MatMulBiasAct. Accumulation is float32 throughout.
func MatMulHalfBiasAct(a *Tensor, w *HalfMatrix, bias *Tensor, act ActKind) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulHalfBiasAct needs a rank-2 input, got %v", a.Shape()))
	}
	n, k := a.shape[0], a.shape[1]
	if k != w.rows {
		panic(fmt.Sprintf("tensor: MatMulHalfBiasAct inner dimension mismatch %v @ [%d %d]", a.Shape(), w.rows, w.cols))
	}
	m := w.cols
	var ep *epilogue
	if bias != nil {
		if bias.Rank() != 1 || bias.shape[0] != m {
			panic(fmt.Sprintf("tensor: MatMulHalfBiasAct bias %v, want [%d]", bias.Shape(), m))
		}
		ep = &epilogue{colBias: bias.data, act: act}
	} else if act != ActNone {
		ep = &epilogue{act: act}
	}
	sp := beginGemmSpan("gemm.fp16", n, k, m)
	if sp.Active() {
		// Override the fp32 traffic estimate: the B operand moves half bytes.
		sp.SetBytes(4*int64(n)*int64(k) + 2*int64(k)*int64(m) + 4*int64(n)*int64(m))
	}
	out := acquireDirty(n, m)
	if GemmHalfFast() && m >= microNW {
		gemmHalfPacked(out.data, a.data, w.data, n, k, m, ep)
	} else {
		gemmHalfWiden(out.data, a.data, w.data, n, k, m, ep)
	}
	sp.End()
	return out
}

// gemmHalfWiden is the portable path: widen the whole weight matrix into
// pooled fp32 scratch and run the ordinary fp32 GEMM on the active tier.
func gemmHalfWiden(dst, a []float32, w []uint16, n, k, m int, ep *epilogue) {
	wb := getPackBuf(k * m)
	for i, v := range w {
		wb[i] = HalfToFloat32(v)
	}
	gemmParallel(dst, a, wb, n, k, m, layPlain, false, ep)
	putPackBuf(wb)
}

// gemmHalfPacked is the F16C path: pack B as uint16 strips once, widen
// the ragged columns once, then split output rows on 8-row boundaries.
func gemmHalfPacked(dst, a []float32, w []uint16, n, k, m int, ep *epilogue) {
	m8 := m &^ 7
	bp := getHalfPackBuf(k * m8)
	packMin := 1 + minElemsPerWorker/(8*k+1)
	if rowWorkers(m8/8, packMin) <= 1 {
		packBHalfRange(bp, w, k, m, 0, m8)
	} else {
		parallelRows(m8/8, packMin, func(slo, shi int) {
			packBHalfRange(bp, w, k, m, slo*8, shi*8)
		})
	}
	var eb []float32
	if me := m - m8; me > 0 {
		// Ragged columns widen once into column-major fp32 scratch so the
		// per-row edge reduction is a contiguous dot product.
		eb = getPackBuf(me * k)
		for j := 0; j < me; j++ {
			col := eb[j*k : (j+1)*k]
			for p := 0; p < k; p++ {
				col[p] = HalfToFloat32(w[p*m+m8+j])
			}
		}
	}
	parallelRowsAligned(n, microMW, gemmMinRows(k, m), func(lo, hi int) {
		gemmHalfRows(dst, a, bp, eb, n, k, m, lo, hi, ep)
	})
	if eb != nil {
		putPackBuf(eb)
	}
	putHalfPackBuf(bp)
}

// gemmHalfRows computes output rows [lo, hi) against the packed half
// panel. Full 8-row tiles use the half-widening kernel directly; the row
// tail (including n < 8 single-sample serving) runs the same kernel on a
// zero-padded A tile into stack scratch, so every output element's
// reduction order is identical regardless of where it falls in n.
func gemmHalfRows(dst, a []float32, bp []uint16, eb []float32, n, k, m, lo, hi int, ep *epilogue) {
	m8 := m &^ 7
	ap := getPackBuf(microMW * k)
	i0 := lo
	for ; i0+microMW <= hi; i0 += microMW {
		packATileWide(ap, a, n, k, i0, layPlain)
		for j0 := 0; j0 < m8; j0 += microNW {
			kernelHalf8x8(dst[i0*m+j0:], m, ap, bp[j0*k:], k, false)
		}
		gemmHalfEdgeCols(dst, a, eb, k, m, i0, i0+microMW)
		applyEpilogueRows(dst, m, i0, i0+microMW, ep)
	}
	if i0 < hi {
		rows := hi - i0
		packATileWidePad(ap, a, k, i0, rows)
		var tile [microMW * microNW]float32
		for j0 := 0; j0 < m8; j0 += microNW {
			kernelHalf8x8(tile[:], microNW, ap, bp[j0*k:], k, false)
			for r := 0; r < rows; r++ {
				copy(dst[(i0+r)*m+j0:(i0+r)*m+j0+microNW], tile[r*microNW:r*microNW+microNW])
			}
		}
		gemmHalfEdgeCols(dst, a, eb, k, m, i0, hi)
		applyEpilogueRows(dst, m, i0, hi, ep)
	}
	putPackBuf(ap)
}

// gemmHalfEdgeCols reduces the ragged columns [m&^7, m) for rows
// [ilo, ihi) against the pre-widened column-major edge panel.
func gemmHalfEdgeCols(dst, a, eb []float32, k, m, ilo, ihi int) {
	m8 := m &^ 7
	if m8 == m {
		return
	}
	me := m - m8
	for i := ilo; i < ihi; i++ {
		arow := a[i*k : (i+1)*k]
		for j := 0; j < me; j++ {
			dst[i*m+m8+j] = dotOne(arow, eb[j*k:(j+1)*k])
		}
	}
}

// packATileWidePad packs rows < microMW of a into a wide A tile, zeroing
// the unused trailing rows so the 8x8 kernel computes garbage-free
// (ignored) values for them.
func packATileWidePad(ap, a []float32, k, i0, rows int) {
	for p := 0; p < k; p++ {
		q := ap[p*8 : p*8+8]
		for r := 0; r < rows; r++ {
			q[r] = a[(i0+r)*k+p]
		}
		for r := rows; r < microMW; r++ {
			q[r] = 0
		}
	}
}

// packBHalfRange packs half B column strips [jlo, jhi) (multiples of 8)
// into bp with the wide-strip layout: bp[j0*k + p*8 + c] = w(p, j0+c).
func packBHalfRange(bp, w []uint16, k, m, jlo, jhi int) {
	for j0 := jlo; j0 < jhi; j0 += 8 {
		q := bp[j0*k : (j0+8)*k]
		for p := 0; p < k; p++ {
			copy(q[p*8:p*8+8], w[p*m+j0:p*m+j0+8])
		}
	}
}
