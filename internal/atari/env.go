package atari

// Env is the common surface of the game environments, letting the A3C
// trainer run on any of them (the paper: A3C plays "various classical
// computer games").
type Env interface {
	// StateVec returns the compact 6-feature state for function
	// approximation.
	StateVec() []float32
	// Act advances one frame and returns the step reward and whether
	// the episode ended.
	Act(a Action) (reward float64, done bool)
	// Restart begins a new episode.
	Restart()
	// Outcome summarizes the current episode as a scalar score (Pong:
	// agent minus bot; Breakout: bricks broken).
	Outcome() int
	// Over reports whether the episode has ended.
	Over() bool
}

// Pong implements Env.

// StateVec implements Env.
func (p *Pong) StateVec() []float32 { return p.State() }

// Act implements Env.
func (p *Pong) Act(a Action) (float64, bool) {
	_, r, done := p.Step(a)
	return r, done
}

// Restart implements Env.
func (p *Pong) Restart() { p.Reset() }

// Outcome implements Env.
func (p *Pong) Outcome() int {
	agent, bot := p.Score()
	return agent - bot
}

// Over implements Env.
func (p *Pong) Over() bool { return p.Done() }

// Breakout implements Env.

// StateVec implements Env.
func (b *Breakout) StateVec() []float32 { return b.State() }

// Act implements Env.
func (b *Breakout) Act(a Action) (float64, bool) {
	_, r, done := b.Step(a)
	return r, done
}

// Restart implements Env.
func (b *Breakout) Restart() { b.Reset() }

// Outcome implements Env.
func (b *Breakout) Outcome() int { return b.Score() }

// Over implements Env.
func (b *Breakout) Over() bool { return b.Done() }
