// Package atari implements a deterministic Pong environment standing in
// for the Atari 2600 emulator that the paper's A3C benchmark trains on.
// Observations are stacks of four grayscale frames (4×84×84 by default,
// matching Table 3), rewards are ±1 per point, and an episode ends when
// either side reaches 21 points — so the Figure 2 game-score axis
// (-21…+21) is reproduced exactly.
package atari

import (
	"tbd/internal/tensor"
)

// Action is one of Pong's three meaningful controls.
type Action int

// Pong actions.
const (
	Stay Action = iota
	Up
	Down
)

// NumActions is the action-space size.
const NumActions = 3

// Pong is a two-paddle Pong game. The agent controls the right paddle;
// a tracking bot with bounded speed controls the left.
type Pong struct {
	rng  *tensor.RNG
	size int // rendered frame side length

	// Continuous state in [0,1]² with x to the right.
	ballX, ballY float64
	velX, velY   float64
	agentY       float64 // right paddle center
	botY         float64 // left paddle center

	agentScore, botScore int
	frames               [][]float32 // last 4 rendered frames
}

// Physics constants (per step, in field units).
const (
	paddleHalf = 0.10
	paddleStep = 0.05
	botStep    = 0.028 // slower than the ball drift, so the bot is beatable
	ballSpeed  = 0.035
	winScore   = 21
)

// NewPong creates a Pong environment rendering size×size frames
// (84 for the paper's observation shape; smaller for fast tests).
func NewPong(rng *tensor.RNG, size int) *Pong {
	p := &Pong{rng: rng, size: size}
	p.Reset()
	return p
}

// Reset starts a new episode and returns the initial observation.
func (p *Pong) Reset() *tensor.Tensor {
	p.agentScore, p.botScore = 0, 0
	p.agentY, p.botY = 0.5, 0.5
	p.serve()
	p.frames = nil
	f := p.render()
	for i := 0; i < 4; i++ {
		p.frames = append(p.frames, f)
	}
	return p.observation()
}

// serve re-centers the ball with a randomized direction.
func (p *Pong) serve() {
	p.ballX, p.ballY = 0.5, 0.5
	dir := 1.0
	if p.rng.Intn(2) == 0 {
		dir = -1
	}
	p.velX = ballSpeed * dir
	p.velY = ballSpeed * (p.rng.Float64() - 0.5)
}

// Score returns the current (agent, bot) points.
func (p *Pong) Score() (agent, bot int) { return p.agentScore, p.botScore }

// Done reports whether the episode has ended.
func (p *Pong) Done() bool { return p.agentScore >= winScore || p.botScore >= winScore }

// Step advances one frame under the agent action, returning the next
// observation, the reward earned this step (+1 agent point, -1 bot
// point), and whether the episode ended.
func (p *Pong) Step(a Action) (obs *tensor.Tensor, reward float64, done bool) {
	switch a {
	case Up:
		p.agentY -= paddleStep
	case Down:
		p.agentY += paddleStep
	}
	p.agentY = clamp(p.agentY, paddleHalf, 1-paddleHalf)

	// Bot tracks the ball with bounded speed.
	if p.botY < p.ballY-0.01 {
		p.botY += botStep
	} else if p.botY > p.ballY+0.01 {
		p.botY -= botStep
	}
	p.botY = clamp(p.botY, paddleHalf, 1-paddleHalf)

	p.ballX += p.velX
	p.ballY += p.velY
	// Wall bounces.
	if p.ballY < 0 {
		p.ballY = -p.ballY
		p.velY = -p.velY
	}
	if p.ballY > 1 {
		p.ballY = 2 - p.ballY
		p.velY = -p.velY
	}
	// Paddle planes at x=0.04 (bot) and x=0.96 (agent).
	if p.ballX <= 0.04 && p.velX < 0 {
		if diff := p.ballY - p.botY; diff > -paddleHalf && diff < paddleHalf {
			p.velX = -p.velX
			p.velY += diff * 0.12
			p.ballX = 0.04
		} else {
			p.agentScore++
			reward = 1
			p.serve()
		}
	}
	if p.ballX >= 0.96 && p.velX > 0 {
		if diff := p.ballY - p.agentY; diff > -paddleHalf && diff < paddleHalf {
			p.velX = -p.velX
			p.velY += diff * 0.12
			p.ballX = 0.96
		} else {
			p.botScore++
			reward = -1
			p.serve()
		}
	}

	p.frames = append(p.frames[1:], p.render())
	return p.observation(), reward, p.Done()
}

// render draws the field into a size×size grayscale frame.
func (p *Pong) render() []float32 {
	s := p.size
	f := make([]float32, s*s)
	draw := func(x, y float64) (int, int) {
		cx := int(x * float64(s-1))
		cy := int(y * float64(s-1))
		return clampInt(cx, 0, s-1), clampInt(cy, 0, s-1)
	}
	// Ball: 2x2 blob.
	bx, by := draw(p.ballX, p.ballY)
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			x, y := clampInt(bx+dx, 0, s-1), clampInt(by+dy, 0, s-1)
			f[y*s+x] = 1
		}
	}
	// Paddles: vertical bars near each edge.
	half := int(paddleHalf * float64(s))
	_, ay := draw(0, p.agentY)
	_, oy := draw(0, p.botY)
	for d := -half; d <= half; d++ {
		if y := ay + d; y >= 0 && y < s {
			f[y*s+(s-2)] = 1
		}
		if y := oy + d; y >= 0 && y < s {
			f[y*s+1] = 1
		}
	}
	return f
}

// observation stacks the last 4 frames as [4, size, size].
func (p *Pong) observation() *tensor.Tensor {
	s := p.size
	obs := tensor.New(4, s, s)
	for i, f := range p.frames {
		copy(obs.Data()[i*s*s:(i+1)*s*s], f)
	}
	return obs
}

// State exposes the underlying continuous state for compact function
// approximators (the numeric A3C twin can learn from it far faster than
// from pixels while the pixel observation exercises the full path).
func (p *Pong) State() []float32 {
	return []float32{
		float32(p.ballX), float32(p.ballY),
		float32(p.velX / ballSpeed), float32(p.velY / ballSpeed),
		float32(p.agentY), float32(p.botY),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
