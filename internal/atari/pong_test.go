package atari

import (
	"testing"

	"tbd/internal/tensor"
)

func TestObservationShape(t *testing.T) {
	p := NewPong(tensor.NewRNG(1), 84)
	obs := p.Reset()
	sh := obs.Shape()
	if sh[0] != 4 || sh[1] != 84 || sh[2] != 84 {
		t.Fatalf("observation shape %v, want [4 84 84] (Table 3)", sh)
	}
	for _, v := range obs.Data() {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary pixel %g", v)
		}
	}
}

func TestFrameContainsBallAndPaddles(t *testing.T) {
	p := NewPong(tensor.NewRNG(2), 32)
	obs := p.Reset()
	// Last frame: column 1 (bot paddle), column 30 (agent paddle), and a
	// ball blob must all be lit.
	last := obs.Data()[3*32*32:]
	var botCol, agentCol, other int
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if last[y*32+x] == 1 {
				switch x {
				case 1:
					botCol++
				case 30:
					agentCol++
				default:
					other++
				}
			}
		}
	}
	if botCol == 0 || agentCol == 0 || other == 0 {
		t.Fatalf("render missing elements: bot=%d agent=%d ball=%d", botCol, agentCol, other)
	}
}

func TestEpisodeTerminatesAt21(t *testing.T) {
	p := NewPong(tensor.NewRNG(3), 16)
	var rewardSum float64
	steps := 0
	for !p.Done() && steps < 200000 {
		// A do-nothing agent loses: the bot tracks the ball, the agent
		// paddle stays put.
		_, r, _ := p.Step(Stay)
		rewardSum += r
		steps++
	}
	agent, bot := p.Score()
	if !p.Done() {
		t.Fatalf("episode did not terminate after %d steps (score %d-%d)", steps, agent, bot)
	}
	if bot != 21 {
		t.Fatalf("passive agent should lose 21, got %d-%d", agent, bot)
	}
	if rewardSum != float64(agent-bot) {
		t.Fatalf("reward sum %.0f != score diff %d", rewardSum, agent-bot)
	}
}

func TestTrackingAgentBeatsPassivePolicy(t *testing.T) {
	// An agent that tracks the ball (the strategy A3C must discover)
	// scores far better than doing nothing.
	run := func(track bool) int {
		p := NewPong(tensor.NewRNG(4), 16)
		for steps := 0; !p.Done() && steps < 400000; steps++ {
			a := Stay
			if track {
				st := p.State()
				switch {
				case float64(st[4]) < float64(st[1])-0.02:
					a = Down
				case float64(st[4]) > float64(st[1])+0.02:
					a = Up
				}
			}
			p.Step(a)
		}
		agent, bot := p.Score()
		return agent - bot
	}
	passive := run(false)
	tracking := run(true)
	if tracking <= passive {
		t.Fatalf("tracking policy diff %d not better than passive %d", tracking, passive)
	}
	if tracking < 10 {
		t.Fatalf("tracking policy should dominate (diff %d)", tracking)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() (int, int) {
		p := NewPong(tensor.NewRNG(7), 16)
		for i := 0; i < 5000 && !p.Done(); i++ {
			p.Step(Action(i % 3))
		}
		return p.Score()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("environment not deterministic under a fixed seed")
	}
}

func TestStateVectorBounds(t *testing.T) {
	p := NewPong(tensor.NewRNG(8), 16)
	for i := 0; i < 2000 && !p.Done(); i++ {
		p.Step(Action(i % 3))
		st := p.State()
		if len(st) != 6 {
			t.Fatalf("state length %d", len(st))
		}
		if st[0] < -0.1 || st[0] > 1.1 || st[1] < -0.1 || st[1] > 1.1 {
			t.Fatalf("ball position out of bounds: %v", st)
		}
		if st[4] < 0 || st[4] > 1 || st[5] < 0 || st[5] > 1 {
			t.Fatalf("paddle position out of bounds: %v", st)
		}
	}
}
