package atari

import (
	"testing"

	"tbd/internal/tensor"
)

func TestBreakoutObservationShape(t *testing.T) {
	b := NewBreakout(tensor.NewRNG(1), 84)
	obs := b.Reset()
	sh := obs.Shape()
	if sh[0] != 4 || sh[1] != 84 || sh[2] != 84 {
		t.Fatalf("observation shape %v", sh)
	}
	if b.Lives() != 3 || b.Score() != 0 || b.Done() {
		t.Fatal("fresh episode state wrong")
	}
}

func TestBreakoutPassiveAgentLosesLives(t *testing.T) {
	b := NewBreakout(tensor.NewRNG(2), 16)
	for i := 0; i < 100000 && !b.Done(); i++ {
		b.Step(Stay)
	}
	if !b.Done() {
		t.Fatal("episode never ended")
	}
	if b.Lives() > 0 && b.Score() != brickRows*brickCols {
		t.Fatal("episode ended without losing lives or clearing bricks")
	}
}

func TestBreakoutTrackingAgentScores(t *testing.T) {
	// Tracking the ball breaks far more bricks than standing still.
	run := func(track bool, seed uint64) int {
		b := NewBreakout(tensor.NewRNG(seed), 16)
		for i := 0; i < 200000 && !b.Done(); i++ {
			a := Stay
			if track {
				st := b.State()
				switch {
				case st[4] < st[0]-0.02:
					a = Down // move right
				case st[4] > st[0]+0.02:
					a = Up // move left
				}
			}
			b.Step(a)
		}
		return b.Score()
	}
	passive := run(false, 3)
	tracking := run(true, 3)
	if tracking <= passive {
		t.Fatalf("tracking score %d not better than passive %d", tracking, passive)
	}
	if tracking < brickRows*brickCols/2 {
		t.Fatalf("tracking agent only broke %d bricks", tracking)
	}
}

func TestBreakoutRewardMatchesScoreMinusLives(t *testing.T) {
	b := NewBreakout(tensor.NewRNG(4), 16)
	var total float64
	for i := 0; i < 50000 && !b.Done(); i++ {
		st := b.State()
		a := Stay
		if st[4] < st[0]-0.02 {
			a = Down
		} else if st[4] > st[0]+0.02 {
			a = Up
		}
		_, r, _ := b.Step(a)
		total += r
	}
	livesLost := startLives - b.Lives()
	if int(total) != b.Score()-livesLost {
		t.Fatalf("reward sum %.0f != score %d - lives lost %d", total, b.Score(), livesLost)
	}
}

func TestBreakoutStateVector(t *testing.T) {
	b := NewBreakout(tensor.NewRNG(5), 16)
	st := b.State()
	if len(st) != 6 {
		t.Fatalf("state length %d", len(st))
	}
	if st[5] != 1 {
		t.Fatalf("fresh brick fraction %g, want 1", st[5])
	}
	for i := 0; i < 30000 && b.Score() == 0; i++ {
		st := b.State()
		a := Stay
		if st[4] < st[0]-0.02 {
			a = Down
		} else if st[4] > st[0]+0.02 {
			a = Up
		}
		b.Step(a)
	}
	if b.Score() == 0 {
		t.Fatal("no brick broken in 30k tracked steps")
	}
	if b.State()[5] >= 1 {
		t.Fatal("brick fraction did not drop")
	}
}

func TestBreakoutRenderHasBricksAndPaddle(t *testing.T) {
	b := NewBreakout(tensor.NewRNG(6), 32)
	obs := b.Reset()
	last := obs.Data()[3*32*32:]
	lit := 0
	for _, v := range last {
		if v == 1 {
			lit++
		}
	}
	// Bricks (4 rows of pixels) + paddle + ball.
	if lit < 32 {
		t.Fatalf("render too sparse: %d pixels lit", lit)
	}
}
