package atari

import "tbd/internal/tensor"

// Breakout is a second classic game for the RL substrate (the paper's
// A3C "works across various classical computer games"): a paddle, a
// ball, and a wall of bricks. Reward is +1 per brick; the episode ends
// when all bricks are cleared or the agent drops the ball Lives times.
type Breakout struct {
	rng  *tensor.RNG
	size int

	ballX, ballY float64
	velX, velY   float64
	paddleX      float64
	bricks       []bool // row-major brickRows x brickCols
	lives        int
	score        int
	frames       [][]float32
}

// Breakout geometry.
const (
	brickRows  = 4
	brickCols  = 8
	brickTop   = 0.08 // wall occupies [brickTop, brickBottom] vertically
	brickBot   = 0.28
	bkPaddleY  = 0.95
	bkPaddleHW = 0.08
	bkStep     = 0.05
	bkSpeed    = 0.03
	startLives = 3
)

// NewBreakout creates a Breakout environment rendering size x size
// frames with a 4-frame observation stack.
func NewBreakout(rng *tensor.RNG, size int) *Breakout {
	b := &Breakout{rng: rng, size: size}
	b.Reset()
	return b
}

// Reset starts a new episode and returns the initial observation.
func (b *Breakout) Reset() *tensor.Tensor {
	b.bricks = make([]bool, brickRows*brickCols)
	for i := range b.bricks {
		b.bricks[i] = true
	}
	b.lives = startLives
	b.score = 0
	b.paddleX = 0.5
	b.serve()
	b.frames = nil
	f := b.render()
	for i := 0; i < 4; i++ {
		b.frames = append(b.frames, f)
	}
	return b.observation()
}

func (b *Breakout) serve() {
	b.ballX, b.ballY = 0.5, 0.6
	b.velX = bkSpeed * (b.rng.Float64() - 0.5) * 2
	if b.velX > -0.005 && b.velX < 0.005 {
		b.velX = 0.01
	}
	b.velY = -bkSpeed
}

// Score returns bricks broken this episode.
func (b *Breakout) Score() int { return b.score }

// Lives returns remaining lives.
func (b *Breakout) Lives() int { return b.lives }

// Done reports episode end.
func (b *Breakout) Done() bool {
	return b.lives <= 0 || b.score == brickRows*brickCols
}

// Step advances one frame under the action (Stay/Up=left/Down=right,
// reusing the shared Action type with horizontal semantics).
func (b *Breakout) Step(a Action) (obs *tensor.Tensor, reward float64, done bool) {
	switch a {
	case Up: // left
		b.paddleX -= bkStep
	case Down: // right
		b.paddleX += bkStep
	}
	b.paddleX = clamp(b.paddleX, bkPaddleHW, 1-bkPaddleHW)

	b.ballX += b.velX
	b.ballY += b.velY
	// Side and top walls.
	if b.ballX < 0 {
		b.ballX, b.velX = -b.ballX, -b.velX
	}
	if b.ballX > 1 {
		b.ballX, b.velX = 2-b.ballX, -b.velX
	}
	if b.ballY < 0 {
		b.ballY, b.velY = -b.ballY, -b.velY
	}
	// Bricks.
	if b.ballY >= brickTop && b.ballY <= brickBot && b.velY < 0 || (b.ballY >= brickTop && b.ballY <= brickBot && b.velY > 0) {
		row := int((b.ballY - brickTop) / ((brickBot - brickTop) / brickRows))
		col := int(b.ballX * brickCols)
		if row >= 0 && row < brickRows && col >= 0 && col < brickCols {
			idx := row*brickCols + col
			if b.bricks[idx] {
				b.bricks[idx] = false
				b.score++
				reward = 1
				b.velY = -b.velY
			}
		}
	}
	// Paddle.
	if b.ballY >= bkPaddleY && b.velY > 0 {
		if diff := b.ballX - b.paddleX; diff > -bkPaddleHW && diff < bkPaddleHW {
			b.velY = -b.velY
			b.velX += diff * 0.1
			b.ballY = bkPaddleY
		} else if b.ballY > 1 {
			// Dropping the ball costs a life and a -1 reward (denser
			// credit than the bare game score, which the trainer needs
			// at twin scale).
			b.lives--
			reward -= 1
			if b.lives > 0 {
				b.serve()
			}
		}
	}

	b.frames = append(b.frames[1:], b.render())
	return b.observation(), reward, b.Done()
}

// State exposes compact features: ball position/velocity, paddle, and
// remaining-brick fraction.
func (b *Breakout) State() []float32 {
	remaining := 0
	for _, alive := range b.bricks {
		if alive {
			remaining++
		}
	}
	return []float32{
		float32(b.ballX), float32(b.ballY),
		float32(b.velX / bkSpeed), float32(b.velY / bkSpeed),
		float32(b.paddleX),
		float32(remaining) / float32(brickRows*brickCols),
	}
}

func (b *Breakout) render() []float32 {
	s := b.size
	f := make([]float32, s*s)
	// Bricks.
	for row := 0; row < brickRows; row++ {
		yTop := brickTop + float64(row)*(brickBot-brickTop)/brickRows
		py := clampInt(int(yTop*float64(s)), 0, s-1)
		for col := 0; col < brickCols; col++ {
			if !b.bricks[row*brickCols+col] {
				continue
			}
			x0 := clampInt(int(float64(col)/brickCols*float64(s)), 0, s-1)
			x1 := clampInt(int(float64(col+1)/brickCols*float64(s))-1, 0, s-1)
			for x := x0; x <= x1; x++ {
				f[py*s+x] = 1
			}
		}
	}
	// Ball.
	bx := clampInt(int(b.ballX*float64(s-1)), 0, s-1)
	by := clampInt(int(b.ballY*float64(s-1)), 0, s-1)
	f[by*s+bx] = 1
	// Paddle.
	py := clampInt(int(bkPaddleY*float64(s-1)), 0, s-1)
	half := clampInt(int(bkPaddleHW*float64(s)), 1, s)
	px := clampInt(int(b.paddleX*float64(s-1)), 0, s-1)
	for d := -half; d <= half; d++ {
		if x := px + d; x >= 0 && x < s {
			f[py*s+x] = 1
		}
	}
	return f
}

func (b *Breakout) observation() *tensor.Tensor {
	s := b.size
	obs := tensor.New(4, s, s)
	for i, f := range b.frames {
		copy(obs.Data()[i*s*s:(i+1)*s*s], f)
	}
	return obs
}
