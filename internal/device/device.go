// Package device models the hardware the paper evaluates on: the NVIDIA
// Quadro P4000 and Titan Xp GPUs and the Intel Xeon E5-2680 host CPU
// (Table 4), plus the derived quantities (peak FP32 throughput, memory
// bandwidth, kernel launch latency) the kernel cost model needs.
package device

import "fmt"

// GPU describes one GPU model. Field values for the built-in devices are
// taken directly from the paper's Table 4.
type GPU struct {
	Name            string
	Multiprocessors int
	CoreCount       int
	MaxClockMHz     int
	MemoryBytes     int64
	LLCBytes        int64
	MemBusType      string
	MemBandwidthGBs float64
	BusInterface    string
	MemClockMHz     int

	// LaunchLatencySec is the fixed device-side cost of starting a kernel;
	// a few microseconds on real hardware.
	LaunchLatencySec float64
}

// PeakFLOPS returns the theoretical single-precision peak: 2 FLOPs per
// core per cycle (FMA) at max clock.
func (g *GPU) PeakFLOPS() float64 {
	return 2 * float64(g.CoreCount) * float64(g.MaxClockMHz) * 1e6
}

// MemBandwidth returns memory bandwidth in bytes/second.
func (g *GPU) MemBandwidth() float64 { return g.MemBandwidthGBs * 1e9 }

// String implements fmt.Stringer.
func (g *GPU) String() string {
	return fmt.Sprintf("%s (%d SMs, %d cores @ %d MHz, %.0f GB, %.1f GB/s)",
		g.Name, g.Multiprocessors, g.CoreCount, g.MaxClockMHz,
		float64(g.MemoryBytes)/1e9, g.MemBandwidthGBs)
}

// CPU describes the host processor.
type CPU struct {
	Name            string
	Cores           int
	MaxClockMHz     int
	MemoryBytes     int64
	LLCBytes        int64
	MemBandwidthGBs float64
}

// Built-in hardware matching the paper's testbed (Table 4).
var (
	// QuadroP4000 is the paper's primary GPU.
	QuadroP4000 = &GPU{
		Name:             "Quadro P4000",
		Multiprocessors:  14,
		CoreCount:        1792,
		MaxClockMHz:      1480,
		MemoryBytes:      8 << 30,
		LLCBytes:         2 << 20,
		MemBusType:       "GDDR5",
		MemBandwidthGBs:  243,
		BusInterface:     "PCIe 3.0",
		MemClockMHz:      3802,
		LaunchLatencySec: 4e-6,
	}

	// TitanXp is the paper's "more powerful GPU" for the hardware
	// sensitivity study (§4.3).
	TitanXp = &GPU{
		Name:             "TITAN Xp",
		Multiprocessors:  30,
		CoreCount:        3840,
		MaxClockMHz:      1582,
		MemoryBytes:      12 << 30,
		LLCBytes:         3 << 20,
		MemBusType:       "GDDR5X",
		MemBandwidthGBs:  547.6,
		BusInterface:     "PCIe 3.0",
		MemClockMHz:      5705,
		LaunchLatencySec: 4e-6,
	}

	// TeslaV100 is a beyond-the-paper extension device (Volta, 2017):
	// the datacenter card that succeeded the paper's testbed. Useful for
	// extrapolating Observation 10 — even more compute, even harder to
	// fill.
	TeslaV100 = &GPU{
		Name:             "Tesla V100",
		Multiprocessors:  80,
		CoreCount:        5120,
		MaxClockMHz:      1530,
		MemoryBytes:      16 << 30,
		LLCBytes:         6 << 20,
		MemBusType:       "HBM2",
		MemBandwidthGBs:  900,
		BusInterface:     "PCIe 3.0 / NVLink",
		MemClockMHz:      877,
		LaunchLatencySec: 4e-6,
	}

	// XeonE52680 is the host CPU on every cluster node.
	XeonE52680 = &CPU{
		Name:            "Intel Xeon E5-2680",
		Cores:           28,
		MaxClockMHz:     2900,
		MemoryBytes:     128 << 30,
		LLCBytes:        35 << 20,
		MemBandwidthGBs: 76.8,
	}
)

// GPUs lists the built-in GPU models keyed by name.
func GPUs() map[string]*GPU {
	return map[string]*GPU{
		QuadroP4000.Name: QuadroP4000,
		TitanXp.Name:     TitanXp,
		TeslaV100.Name:   TeslaV100,
	}
}

// Lookup returns the GPU with the given name.
func Lookup(name string) (*GPU, error) {
	if g, ok := GPUs()[name]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("device: unknown GPU %q", name)
}

// Interconnect models a communication link between workers (§4.5).
type Interconnect struct {
	Name string
	// BandwidthGBs is usable unidirectional bandwidth in GB/s.
	BandwidthGBs float64
	// LatencySec is the per-message latency.
	LatencySec float64
}

// Built-in interconnects for the distributed experiments (Figure 10).
var (
	// PCIe3 connects GPUs within one machine (16 GB/s, §4.5).
	PCIe3 = &Interconnect{Name: "PCIe 3.0", BandwidthGBs: 16, LatencySec: 5e-6}
	// Ethernet is the slow cross-machine network that degrades 2M1G
	// training in Figure 10 (1 GbE ≈ 0.125 GB/s).
	Ethernet = &Interconnect{Name: "Ethernet", BandwidthGBs: 0.125, LatencySec: 50e-6}
	// InfiniBand is the 100 Gb/s Mellanox fabric (≈ 12.5 GB/s).
	InfiniBand = &Interconnect{Name: "InfiniBand", BandwidthGBs: 12.5, LatencySec: 2e-6}
)

// Bandwidth returns link bandwidth in bytes/second.
func (ic *Interconnect) Bandwidth() float64 { return ic.BandwidthGBs * 1e9 }

// TransferTime returns the time to move n bytes across the link.
func (ic *Interconnect) TransferTime(n int64) float64 {
	return ic.LatencySec + float64(n)/ic.Bandwidth()
}
