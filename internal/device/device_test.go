package device

import (
	"math"
	"testing"
)

func TestTable4Specs(t *testing.T) {
	// Spot-check the values transcribed from the paper's Table 4.
	if QuadroP4000.CoreCount != 1792 || QuadroP4000.Multiprocessors != 14 {
		t.Fatalf("P4000 core config wrong: %+v", QuadroP4000)
	}
	if TitanXp.CoreCount != 3840 || TitanXp.Multiprocessors != 30 {
		t.Fatalf("Titan Xp core config wrong: %+v", TitanXp)
	}
	if QuadroP4000.MemoryBytes != 8<<30 || TitanXp.MemoryBytes != 12<<30 {
		t.Fatal("GPU memory sizes wrong")
	}
	if QuadroP4000.MemBandwidthGBs != 243 || TitanXp.MemBandwidthGBs != 547.6 {
		t.Fatal("memory bandwidths wrong")
	}
	if XeonE52680.Cores != 28 {
		t.Fatal("Xeon core count wrong")
	}
}

func TestPeakFLOPS(t *testing.T) {
	// P4000: 2 * 1792 * 1.48 GHz ≈ 5.3 TFLOPS.
	got := QuadroP4000.PeakFLOPS()
	if math.Abs(got-5.304e12) > 1e10 {
		t.Fatalf("P4000 peak = %.3e", got)
	}
	// Titan Xp ≈ 12.15 TFLOPS, about 2.3x the P4000.
	ratio := TitanXp.PeakFLOPS() / got
	if ratio < 2.2 || ratio < 1 || ratio > 2.4 {
		t.Fatalf("Titan Xp / P4000 peak ratio = %.2f", ratio)
	}
}

func TestLookup(t *testing.T) {
	g, err := Lookup("TITAN Xp")
	if err != nil || g != TitanXp {
		t.Fatalf("Lookup failed: %v", err)
	}
	if _, err := Lookup("H100"); err == nil {
		t.Fatal("Lookup of unknown GPU must fail")
	}
}

func TestInterconnectOrdering(t *testing.T) {
	// For a ResNet-50-sized gradient exchange (~100 MB), PCIe must beat
	// InfiniBand which must beat Ethernet — the ordering behind Figure 10.
	const bytes = 100 << 20
	pcie := PCIe3.TransferTime(bytes)
	ib := InfiniBand.TransferTime(bytes)
	eth := Ethernet.TransferTime(bytes)
	if !(pcie < ib && ib < eth) {
		t.Fatalf("transfer times not ordered: pcie %.4f, ib %.4f, eth %.4f", pcie, ib, eth)
	}
	// Ethernet should be an order of magnitude slower than InfiniBand.
	if eth/ib < 10 {
		t.Fatalf("ethernet/ib ratio = %.1f, want >= 10", eth/ib)
	}
}

func TestTransferTimeIncludesLatency(t *testing.T) {
	if got := Ethernet.TransferTime(0); got != Ethernet.LatencySec {
		t.Fatalf("zero-byte transfer = %g, want pure latency", got)
	}
}

func TestStringer(t *testing.T) {
	if QuadroP4000.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestV100Extension(t *testing.T) {
	// The extension device sits above the paper's cards on every axis.
	if TeslaV100.PeakFLOPS() <= TitanXp.PeakFLOPS() {
		t.Fatal("V100 peak should exceed Titan Xp")
	}
	if TeslaV100.MemBandwidthGBs <= TitanXp.MemBandwidthGBs {
		t.Fatal("V100 HBM2 bandwidth should exceed GDDR5X")
	}
	g, err := Lookup("Tesla V100")
	if err != nil || g != TeslaV100 {
		t.Fatal("V100 not in the registry")
	}
	if len(GPUs()) != 3 {
		t.Fatalf("registry has %d GPUs, want 3", len(GPUs()))
	}
}
