package core

import (
	"fmt"

	"tbd/internal/device"
	"tbd/internal/framework"
	"tbd/internal/kernels"
	"tbd/internal/memprof"
	"tbd/internal/metrics"
	"tbd/internal/models"
	"tbd/internal/sim"
	"tbd/internal/trace"
)

// AnalyzeEndToEnd runs the complete Figure 3 analysis pipeline for one
// training configuration: comparability setup, a warm-up phase excluded
// from collection via the §3.4.2 sampling methodology, metric collection
// from the "tools" (the simulator standing in for nvprof/vTune, the
// memory profiler), and a merged report — the paper's end-to-end
// toolchain as one call.

// Analysis is the merged per-configuration report.
type Analysis struct {
	Model, Implementation, Framework, GPU string
	Batch                                 int

	// Sampling methodology (§3.4.2).
	WarmupIterations  int
	SampledIterations int
	// Iteration-time distribution over the stable window.
	P50IterSec, P95IterSec, IterCV float64

	// Throughput over the stable window (samples or sweep units /s).
	Throughput float64
	// Utilization metrics (Eq. 1-3).
	GPUUtil, FP32Util, CPUUtil float64

	// Phase breakdown.
	Phases sim.PhaseProfile

	// Kernel-level view.
	KernelsPerIteration int
	TopKernels          []trace.KernelSummary
	LowUtilKernels      []sim.KernelStat
	GapTimeSec          float64

	// Memory breakdown (Figure 9 categories).
	Memory memprof.Breakdown
	// FitsP4000 reports whether the footprint fits the paper's 8 GB card.
	FitsP4000 bool
}

// AnalyzeEndToEnd profiles (model, framework, gpu, batch) through the
// full pipeline.
func AnalyzeEndToEnd(modelName, fwName, gpuName string, batch int) (*Analysis, error) {
	m, err := models.LookupAny(modelName)
	if err != nil {
		return nil, err
	}
	fw, err := framework.Lookup(fwName)
	if err != nil {
		return nil, err
	}
	if !m.SupportsFramework(fw.Name) {
		return nil, fmt.Errorf("core: %s has no %s implementation", m.Name, fw.Name)
	}
	gpu := device.QuadroP4000
	if gpuName != "" {
		if gpu, err = device.Lookup(gpuName); err != nil {
			return nil, err
		}
	}
	n := m.SamplesForBatch(batch)
	cfg := models.SimConfigFor(m, fw, gpu)

	// Steady-state iteration profile.
	r := sim.Simulate(m.Ops(), n, fw.Style, cfg)

	// Sampling methodology: model a fresh run's warm-up and find the
	// stable window the way the real toolchain does.
	meter := metrics.NewMeter(batch)
	for _, d := range sim.WarmupTrace(r.IterTimeSec, 400) {
		meter.Record(d)
	}
	summary := meter.Summarize(0.10, 200)
	window := summary.Window

	// Kernel timeline for gap and top-kernel analysis.
	stream := kernels.IterationKernels(m.Ops(), n, fw.Style)
	_, events := sim.ReplayWithTrace(stream, n, cfg)
	tl := trace.New(events)

	a := &Analysis{
		Model:               m.Name,
		Implementation:      m.ImplName(fw.Name),
		Framework:           fw.Name,
		GPU:                 gpu.Name,
		Batch:               batch,
		WarmupIterations:    window.Start,
		SampledIterations:   window.Count,
		P50IterSec:          summary.P50Sec,
		P95IterSec:          summary.P95Sec,
		IterCV:              summary.CV,
		Throughput:          window.Throughput,
		GPUUtil:             r.GPUUtil,
		FP32Util:            r.FP32Util,
		CPUUtil:             r.CPUUtil,
		Phases:              sim.Phases(m.Ops(), n, fw.Style, cfg),
		KernelsPerIteration: r.KernelCount,
		TopKernels:          tl.TopKernels(5),
		LowUtilKernels:      sim.LongLowUtilKernels(r, 5),
		GapTimeSec:          tl.TotalGapTime(),
		Memory:              memprof.ProfileOps(m.Ops(), n, fw.MemPolicy),
	}
	a.FitsP4000 = a.Memory.Total() <= device.QuadroP4000.MemoryBytes
	return a, nil
}

// Comparability verifies §3.4.1: that a model's implementations are
// comparable across frameworks — identical network (same ops, shapes, and
// parameter count) and identical algorithmic FLOPs, differing only in
// execution profile.
type Comparability struct {
	Model string
	// ParamElems is the shared trainable-parameter count.
	ParamElems int64
	// FLOPsPerSample is the shared per-sample training FLOPs.
	FLOPsPerSample float64
	// Comparable is false if any framework pair diverges.
	Comparable bool
	Detail     string
}

// CheckComparability validates one benchmark across its frameworks.
func CheckComparability(modelName string) (Comparability, error) {
	m, err := models.LookupAny(modelName)
	if err != nil {
		return Comparability{}, err
	}
	c := Comparability{Model: m.Name, Comparable: true}
	for _, op := range m.Ops() {
		c.ParamElems += op.ParamElems()
	}
	var baseline float64
	for i, fwName := range m.Frameworks {
		fw, err := framework.Lookup(fwName)
		if err != nil {
			return Comparability{}, err
		}
		fl := kernels.TotalFLOPs(kernels.IterationKernels(m.Ops(), 1, fw.Style))
		if i == 0 {
			baseline = fl
			c.FLOPsPerSample = fl
			continue
		}
		if fl != baseline {
			c.Comparable = false
			c.Detail = fmt.Sprintf("%s emits %.0f FLOPs vs %s's %.0f — implementations diverge",
				fwName, fl, m.Frameworks[0], baseline)
			return c, nil
		}
	}
	c.Detail = fmt.Sprintf("%d framework implementation(s) share the same network: %.2f GFLOPs/sample, %.1fM parameters",
		len(m.Frameworks), c.FLOPsPerSample/1e9, float64(c.ParamElems)/1e6)
	return c, nil
}
