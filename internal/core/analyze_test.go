package core

import (
	"strings"
	"testing"

	"tbd/internal/kernels"
	"tbd/internal/models"
)

func TestAnalyzeEndToEnd(t *testing.T) {
	a, err := AnalyzeEndToEnd("ResNet-50", "MXNet", "", 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.Implementation != "ResNet-50" || a.GPU != "Quadro P4000" {
		t.Fatalf("metadata wrong: %+v", a)
	}
	// Sampling methodology engaged: warm-up detected and excluded.
	if a.WarmupIterations == 0 {
		t.Fatal("warm-up phase not detected")
	}
	if a.SampledIterations == 0 || a.SampledIterations > 200 {
		t.Fatalf("sample window %d", a.SampledIterations)
	}
	if a.Throughput <= 0 || a.GPUUtil <= 0 || a.FP32Util <= 0 || a.CPUUtil <= 0 {
		t.Fatalf("degenerate metrics: %+v", a)
	}
	// Merged views present and consistent.
	if a.Phases.BackwardSec <= a.Phases.ForwardSec {
		t.Fatal("phase breakdown missing or wrong")
	}
	if len(a.TopKernels) != 5 || len(a.LowUtilKernels) != 5 {
		t.Fatal("kernel views incomplete")
	}
	if a.KernelsPerIteration <= 0 || a.GapTimeSec < 0 {
		t.Fatal("kernel accounting broken")
	}
	if a.Memory.FeatureMaps <= 0 || !a.FitsP4000 {
		t.Fatalf("memory view wrong: %s fits=%v", a.Memory, a.FitsP4000)
	}
}

func TestAnalyzeLSTMShowsGaps(t *testing.T) {
	cnn, err := AnalyzeEndToEnd("ResNet-50", "TensorFlow", "", 32)
	if err != nil {
		t.Fatal(err)
	}
	lstm, err := AnalyzeEndToEnd("Seq2Seq", "TensorFlow", "", 32)
	if err != nil {
		t.Fatal(err)
	}
	// Per unit of busy time, the LSTM pipeline idles far more.
	cnnRel := cnn.GapTimeSec / cnn.Phases.TotalSec()
	lstmRel := lstm.GapTimeSec / lstm.Phases.TotalSec()
	if lstmRel <= cnnRel {
		t.Fatalf("LSTM relative gap %.3f should exceed CNN %.3f", lstmRel, cnnRel)
	}
}

func TestAnalyzeValidates(t *testing.T) {
	if _, err := AnalyzeEndToEnd("nope", "MXNet", "", 8); err == nil {
		t.Fatal("unknown model must fail")
	}
	if _, err := AnalyzeEndToEnd("Transformer", "CNTK", "", 8); err == nil {
		t.Fatal("unsupported framework must fail")
	}
	if _, err := AnalyzeEndToEnd("ResNet-50", "MXNet", "H100", 8); err == nil {
		t.Fatal("unknown GPU must fail")
	}
}

func TestComparabilityAcrossFrameworks(t *testing.T) {
	// §3.4.1: every multi-framework benchmark must define the same
	// network on each framework.
	for _, name := range []string{"ResNet-50", "Inception-v3", "Seq2Seq", "Faster R-CNN"} {
		c, err := CheckComparability(name)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Comparable {
			t.Fatalf("%s implementations diverge: %s", name, c.Detail)
		}
		if c.ParamElems == 0 || c.FLOPsPerSample == 0 {
			t.Fatalf("%s: empty comparability stats", name)
		}
		if !strings.Contains(c.Detail, "share the same network") {
			t.Fatalf("detail = %q", c.Detail)
		}
	}
}

func TestWorkspaceTradeoff(t *testing.T) {
	// Observation 12 quantified: a larger workspace budget buys faster
	// convolution algorithms and hence throughput.
	budgets := []int64{8 << 20, 64 << 20, 512 << 20, 4 << 30}
	rows, err := WorkspaceTradeoff("ResNet-50", "MXNet", 32, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(budgets) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.WorkspaceBytes > r.BudgetBytes {
			t.Fatalf("budget %d: arena %d exceeds budget", r.BudgetBytes, r.WorkspaceBytes)
		}
		if i > 0 && r.Throughput < rows[i-1].Throughput*0.999 {
			t.Fatalf("throughput decreased with budget: %.1f -> %.1f", rows[i-1].Throughput, r.Throughput)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Throughput <= first.Throughput*1.05 {
		t.Fatalf("big workspace should clearly beat zero workspace: %.1f vs %.1f", last.Throughput, first.Throughput)
	}
	if first.WinogradConvs != 0 || first.ImplicitConvs == 0 {
		t.Fatalf("tight budget should force implicit-GEMM: %+v", first)
	}
	if last.WinogradConvs == 0 {
		t.Fatalf("large budget should enable Winograd: %+v", last)
	}
	// The model's shared op cache must not have been mutated.
	m, _ := models.Lookup("ResNet-50")
	for _, o := range m.Ops() {
		if o.Algo != kernels.AlgoPrecompGEMM {
			t.Fatal("WorkspaceTradeoff mutated the shared op graph")
		}
	}
}
