package core

import (
	"fmt"
	"sort"

	"tbd/internal/data"
	"tbd/internal/models"
	"tbd/internal/optim"
	"tbd/internal/tensor"
)

// TwinRun is the learning curve of one benchmark's numeric twin — the
// programmatic form of a Figure 2 panel, available for every model in the
// suite.
type TwinRun struct {
	Model  string
	Metric string
	// HigherIsBetter tells consumers which direction is improvement
	// (accuracy/score up; CTC loss and Wasserstein distance down).
	HigherIsBetter bool
	Points         []TwinPoint
}

// TwinPoint is one recorded sample of the curve.
type TwinPoint struct {
	// FracDone is the fraction of the training run completed.
	FracDone float64
	Value    float64
}

// Improved reports whether the tail of the curve beats its head in the
// metric's direction.
func (r TwinRun) Improved() bool {
	n := len(r.Points)
	if n < 2 {
		return false
	}
	q := n / 4
	if q == 0 {
		q = 1
	}
	var head, tail float64
	for i := 0; i < q; i++ {
		head += r.Points[i].Value
		tail += r.Points[n-1-i].Value
	}
	if r.HigherIsBetter {
		return tail > head
	}
	return tail < head
}

// TrainTwin trains the numeric twin of the named benchmark for steps
// optimizer updates and returns its learning curve. Every model of
// Table 2 is supported; each trains on the synthetic stand-in for its
// Table 3 corpus.
func TrainTwin(modelName string, steps int, seed uint64) (TwinRun, error) {
	if steps <= 0 {
		return TwinRun{}, fmt.Errorf("core: steps must be positive, got %d", steps)
	}
	rng := tensor.NewRNG(seed)
	run := TwinRun{Model: modelName, HigherIsBetter: true}
	switch modelName {
	case "ResNet-50", "Inception-v3":
		src := data.NewImageSource(rng, 1, 8, 8, 4, 0.3)
		var net = models.NumericResNet(rng, 1, 8, 4)
		if modelName == "Inception-v3" {
			net = models.NumericInception(rng, 1, 8, 4)
		}
		run.Metric = "top-1 accuracy"
		run.Points = toTwinPoints(accuracyCurve(net, func() (*tensor.Tensor, []int) {
			b := src.Batch(16)
			return b.X, b.Labels
		}, false, steps))
	case "Seq2Seq", "Transformer":
		src := data.NewTranslationSource(rng, 12, 6)
		var net = models.NumericSeq2Seq(rng, 12, 12, 24)
		if modelName == "Transformer" {
			net = models.NumericTransformer(rng, 12, 16, 2)
		}
		run.Metric = "token accuracy"
		run.Points = toTwinPoints(accuracyCurve(net, func() (*tensor.Tensor, []int) {
			b := src.Batch(16)
			return b.Src, b.Targets
		}, true, steps))
	case "Deep Speech 2":
		run.Metric = "ctc loss"
		run.HigherIsBetter = false
		net := models.NumericDeepSpeechCTC(rng, 8, 16, 5)
		opt := optim.NewAdam(0.01)
		// Fixed utterance with an unaligned transcript.
		T := 10
		frames := []int{1, 1, 2, 2, 2, 3, 3, 4, 4, 4}
		x := tensor.New(1, T, 8)
		for ti, s := range frames {
			x.Set(2, 0, ti, s)
		}
		transcript := [][]int{{1, 2, 3, 4}}
		for i := 0; i < steps; i++ {
			loss := models.DeepSpeechCTCStep(net, opt, x, transcript, 5)
			run.Points = append(run.Points, TwinPoint{FracDone: float64(i+1) / float64(steps), Value: float64(loss)})
		}
	case "Faster R-CNN", "YOLO9000":
		run.Metric = "detection accuracy"
		d := models.NewNumericDetector(rng, 1, 8, 4)
		opt := optim.NewAdam(0.01)
		for i := 0; i < steps; i++ {
			x, cls, box := detectionBatch(rng, 16)
			_, _, acc := models.DetectorStep(d, opt, x, cls, box)
			run.Points = append(run.Points, TwinPoint{FracDone: float64(i+1) / float64(steps), Value: acc})
		}
	case "WGAN":
		run.Metric = "wasserstein estimate"
		run.HigherIsBetter = false
		gen, critic := models.NumericWGAN(rng, 4, 1, 4)
		optG, optC := optim.NewAdam(0.01), optim.NewAdam(0.01)
		tpl := tensor.RandUniform(rng, -0.5, 0.5, 1, 4, 4)
		for i := 0; i < steps; i++ {
			real := tensor.New(16, 1, 4, 4)
			for s := 0; s < 16; s++ {
				for j := 0; j < 16; j++ {
					real.Data()[s*16+j] = tpl.Data()[j] + 0.05*float32(rng.Norm())
				}
			}
			w := models.WGANStep(gen, critic, optG, optC, real, rng, 4, 0.1)
			run.Points = append(run.Points, TwinPoint{FracDone: float64(i+1) / float64(steps), Value: float64(w)})
		}
	case "A3C":
		run.Metric = "game score"
		cfg := models.DefaultA3CConfig()
		cfg.Seed = seed
		cfg.Workers = 3
		cfg.Updates = steps
		cfg.Checkpoints = 8
		cfg.EvalEpisodeCap = 6000
		res := models.TrainA3C(cfg)
		sort.Slice(res.Curve, func(i, j int) bool { return res.Curve[i].UpdateFrac < res.Curve[j].UpdateFrac })
		for _, p := range res.Curve {
			run.Points = append(run.Points, TwinPoint{FracDone: p.UpdateFrac, Value: float64(p.Score)})
		}
	default:
		return TwinRun{}, fmt.Errorf("core: no numeric twin for %q", modelName)
	}
	return run, nil
}

func toTwinPoints(pts []curvePoint) []TwinPoint {
	out := make([]TwinPoint, len(pts))
	for i, p := range pts {
		out[i] = TwinPoint{FracDone: p.frac, Value: p.value}
	}
	return out
}

// detectionBatch builds the quadrant-blob detection task shared with the
// detector twin tests.
func detectionBatch(rng *tensor.RNG, n int) (*tensor.Tensor, []int, []float32) {
	x := tensor.New(n, 1, 8, 8)
	cls := make([]int, n)
	box := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		qx, qy := rng.Intn(2), rng.Intn(2)
		cls[i] = qy*2 + qx
		cx, cy := 2+4*qx, 2+4*qy
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x.Set(1, i, 0, cy+dy, cx+dx)
			}
		}
		box[2*i] = float32(cx) / 8
		box[2*i+1] = float32(cy) / 8
	}
	return x, cls, box
}
