package core

import "testing"

func TestTrainTwinAllModels(t *testing.T) {
	cases := []struct {
		model string
		steps int
	}{
		{"ResNet-50", 120}, {"Inception-v3", 120},
		{"Seq2Seq", 350}, {"Transformer", 350},
		{"Deep Speech 2", 200}, {"Faster R-CNN", 120},
		{"WGAN", 250}, {"YOLO9000", 120},
	}
	for _, c := range cases {
		run, err := TrainTwin(c.model, c.steps, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.model, err)
		}
		if len(run.Points) < 4 {
			t.Fatalf("%s: only %d points", c.model, len(run.Points))
		}
		if !run.Improved() {
			t.Errorf("%s twin did not improve (%s %v): head %v tail %v",
				c.model, run.Metric, run.HigherIsBetter,
				run.Points[0].Value, run.Points[len(run.Points)-1].Value)
		}
	}
}

func TestTrainTwinA3CRuns(t *testing.T) {
	// A3C's metric (evaluation score) is noisy at short horizons; just
	// require a well-formed curve here — improvement is covered by the
	// longer models-package test.
	run, err := TrainTwin("A3C", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Metric != "game score" || len(run.Points) == 0 {
		t.Fatalf("malformed A3C run: %+v", run)
	}
	for _, p := range run.Points {
		if p.Value < -21 || p.Value > 21 {
			t.Fatalf("score %v outside Pong's range", p.Value)
		}
	}
}

func TestTrainTwinValidates(t *testing.T) {
	if _, err := TrainTwin("nope", 10, 1); err == nil {
		t.Fatal("unknown model must fail")
	}
	if _, err := TrainTwin("ResNet-50", 0, 1); err == nil {
		t.Fatal("zero steps must fail")
	}
}
