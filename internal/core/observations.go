package core

import (
	"fmt"

	"tbd/internal/device"
	"tbd/internal/dist"
	"tbd/internal/framework"
	"tbd/internal/kernels"
	"tbd/internal/memprof"
	"tbd/internal/models"
	"tbd/internal/sim"
)

// Observation is one of the paper's thirteen measurement-driven findings,
// with an executable check against the simulated suite.
type Observation struct {
	ID    int
	Claim string
	Check func(Options) (bool, string)
}

// ObservationResult is the outcome of one check.
type ObservationResult struct {
	ID     int
	Claim  string
	Holds  bool
	Detail string
}

// CheckAll evaluates every observation.
func CheckAll(o Options) []ObservationResult {
	o = o.withDefaults()
	var out []ObservationResult
	for _, ob := range Observations() {
		holds, detail := ob.Check(o)
		out = append(out, ObservationResult{ID: ob.ID, Claim: ob.Claim, Holds: holds, Detail: detail})
	}
	return out
}

// sweep returns the simulated results over a model x framework batch
// sweep.
func sweep(o Options, modelName, fwName string) []sim.Result {
	m, err := models.Lookup(modelName)
	if err != nil {
		panic(err)
	}
	fw, err := framework.Lookup(fwName)
	if err != nil {
		panic(err)
	}
	var out []sim.Result
	for _, b := range m.BatchesFor(fwName) {
		out = append(out, simulate(m, fw, o.GPU, b))
	}
	return out
}

func atMax(o Options, modelName, fwName string) sim.Result {
	rs := sweep(o, modelName, fwName)
	return rs[len(rs)-1]
}

// Observations returns the paper's findings 1-13.
func Observations() []Observation {
	return []Observation{
		{1, "Performance increases with the mini-batch size for all models", func(o Options) (bool, string) {
			for _, m := range models.Suite() {
				for _, fwName := range m.Frameworks {
					rs := sweep(o, m.Name, fwName)
					for i := 1; i < len(rs); i++ {
						if rs[i].Throughput < rs[i-1].Throughput*0.999 {
							return false, fmt.Sprintf("%s/%s throughput dropped at batch %d", m.Name, fwName, rs[i].Batch)
						}
					}
				}
			}
			return true, "throughput non-decreasing in batch across the suite"
		}},
		{2, "RNN-based model performance is not saturated within GPU memory limits", func(o Options) (bool, string) {
			gain := func(name, fw string) float64 {
				rs := sweep(o, name, fw)
				return rs[len(rs)-1].Throughput / rs[len(rs)-2].Throughput
			}
			rnnGain := gain("Seq2Seq", "TensorFlow")
			ds2Gain := gain("Deep Speech 2", "MXNet")
			cnnGain := gain("ResNet-50", "TensorFlow")
			if rnnGain < 1.15 || ds2Gain < 1.1 {
				return false, fmt.Sprintf("RNN models saturated: seq2seq gain %.2f, DS2 gain %.2f", rnnGain, ds2Gain)
			}
			if cnnGain > rnnGain {
				return false, "CNN gained more than the RNN at the top of the sweep"
			}
			return true, fmt.Sprintf("last-doubling gains: NMT %.2fx, DS2 %.2fx vs ResNet %.2fx", rnnGain, ds2Gain, cnnGain)
		}},
		{3, "Framework rankings flip across applications (diversity matters)", func(o Options) (bool, string) {
			resMX := atMax(o, "ResNet-50", "MXNet").Throughput
			resTF := atMax(o, "ResNet-50", "TensorFlow").Throughput
			nmt := atMax(o, "Seq2Seq", "TensorFlow").Throughput
			sockeye := atMax(o, "Seq2Seq", "MXNet").Throughput
			if resMX <= resTF {
				return false, "MXNet should lead on ResNet-50"
			}
			if nmt <= sockeye {
				return false, "TensorFlow should lead on Seq2Seq"
			}
			return true, fmt.Sprintf("ResNet: MXNet %.0f > TF %.0f; Seq2Seq: NMT %.0f > Sockeye %.0f", resMX, resTF, nmt, sockeye)
		}},
		{4, "Mini-batch size should be large enough to keep the GPU busy", func(o Options) (bool, string) {
			rs := sweep(o, "ResNet-50", "TensorFlow")
			if rs[len(rs)-1].GPUUtil <= rs[0].GPUUtil {
				return false, "GPU utilization did not grow with batch"
			}
			if rs[len(rs)-1].GPUUtil < 0.9 {
				return false, fmt.Sprintf("large-batch CNN utilization only %.2f", rs[len(rs)-1].GPUUtil)
			}
			return true, fmt.Sprintf("ResNet GPU util %.2f -> %.2f over the sweep", rs[0].GPUUtil, rs[len(rs)-1].GPUUtil)
		}},
		{5, "GPU compute utilization is low for LSTM-based models", func(o Options) (bool, string) {
			lstm := atMax(o, "Seq2Seq", "MXNet").GPUUtil
			cnn := atMax(o, "ResNet-50", "MXNet").GPUUtil
			attn := atMax(o, "Transformer", "TensorFlow").GPUUtil
			if cnn/lstm < 1.3 {
				return false, fmt.Sprintf("CNN/LSTM utilization ratio %.2f too small", cnn/lstm)
			}
			if attn <= lstm {
				return false, "attention should out-utilize LSTM (same application)"
			}
			return true, fmt.Sprintf("GPU util: ResNet %.2f, Transformer %.2f, Sockeye %.2f", cnn, attn, lstm)
		}},
		{6, "Mini-batch size should be large enough to exploit FP32 throughput", func(o Options) (bool, string) {
			for _, cfg := range [][2]string{{"ResNet-50", "TensorFlow"}, {"Seq2Seq", "TensorFlow"}, {"Transformer", "TensorFlow"}} {
				rs := sweep(o, cfg[0], cfg[1])
				if rs[len(rs)-1].FP32Util <= rs[0].FP32Util {
					return false, cfg[0] + " FP32 utilization did not grow with batch"
				}
			}
			return true, "FP32 utilization grows with batch for CNN, LSTM, and attention models"
		}},
		{7, "RNN-based models have low GPU FP32 utilization", func(o Options) (bool, string) {
			nmt := atMax(o, "Seq2Seq", "TensorFlow").FP32Util
			ds2 := atMax(o, "Deep Speech 2", "MXNet").FP32Util
			cnn := atMax(o, "ResNet-50", "TensorFlow").FP32Util
			wgan := atMax(o, "WGAN", "TensorFlow").FP32Util
			if nmt >= cnn || ds2 >= cnn || nmt >= wgan {
				return false, fmt.Sprintf("RNN FP32 util not lower: nmt %.2f ds2 %.2f vs cnn %.2f", nmt, ds2, cnn)
			}
			return true, fmt.Sprintf("FP32 util: NMT %.2f, DS2 %.2f vs ResNet %.2f, WGAN %.2f", nmt, ds2, cnn, wgan)
		}},
		{8, "Even optimized models run long kernels at low FP32 utilization", func(o Options) (bool, string) {
			r := atMax(o, "ResNet-50", "TensorFlow")
			low := sim.LongLowUtilKernels(r, 5)
			if len(low) < 3 {
				return false, "fewer than 3 long low-utilization kernels"
			}
			var share float64
			hasBN := false
			for _, k := range low {
				share += k.DurationShare
				if k.Class == kernels.BatchNorm {
					hasBN = true
				}
			}
			if !hasBN {
				return false, "batch-norm kernels missing from the low-utilization set"
			}
			return true, fmt.Sprintf("top-5 low-util kernels cover %.0f%% of GPU time (bn included)", 100*share)
		}},
		{9, "CPU utilization is low in DNN training", func(o Options) (bool, string) {
			over15, over8 := 0, 0
			max := 0.0
			for _, cfg := range fig7Configs() {
				m, _ := models.Lookup(cfg[0])
				fw, _ := framework.Lookup(cfg[1])
				bs := m.BatchesFor(cfg[1])
				r := simulate(m, fw, o.GPU, bs[len(bs)-1])
				if r.CPUUtil > 0.15 {
					over15++
				}
				if r.CPUUtil > 0.08 {
					over8++
				}
				if r.CPUUtil > max {
					max = r.CPUUtil
				}
			}
			if over15 > 1 || over8 > 3 {
				return false, fmt.Sprintf("%d configs above 15%%, %d above 8%%", over15, over8)
			}
			return true, fmt.Sprintf("max CPU util %.1f%%; %d config(s) above 15%%", 100*max, over15)
		}},
		{10, "Faster GPUs need better software to realize their resources", func(o Options) (bool, string) {
			for _, cfg := range [][2]string{{"ResNet-50", "MXNet"}, {"Inception-v3", "TensorFlow"}} {
				m, _ := models.Lookup(cfg[0])
				fw, _ := framework.Lookup(cfg[1])
				p := simulate(m, fw, device.QuadroP4000, 32)
				x := simulate(m, fw, device.TitanXp, 32)
				if x.Throughput <= p.Throughput {
					return false, cfg[0] + ": Titan Xp did not improve throughput"
				}
				if x.FP32Util >= p.FP32Util || x.GPUUtil > p.GPUUtil {
					return false, cfg[0] + ": Titan Xp utilization should drop"
				}
			}
			return true, "Titan Xp raises throughput but lowers both utilizations"
		}},
		{11, "Feature maps dominate the training memory footprint", func(o Options) (bool, string) {
			minShare, maxShare := 1.0, 0.0
			for _, m := range models.Suite() {
				fw, _ := framework.Lookup(m.Frameworks[0])
				bs := m.BatchesFor(m.Frameworks[0])
				n := m.SamplesForBatch(bs[len(bs)-1])
				bd := memprof.ProfileOps(m.Ops(), n, fw.MemPolicy)
				share := bd.FeatureMapShare()
				if share < minShare {
					minShare = share
				}
				if share > maxShare {
					maxShare = share
				}
				if bd.FeatureMaps < bd.Weights || bd.FeatureMaps < bd.Workspace || bd.FeatureMaps < bd.Dynamic {
					return false, m.Name + ": feature maps are not the largest category"
				}
			}
			if minShare < 0.4 || maxShare > 0.95 {
				return false, fmt.Sprintf("feature-map share range [%.0f%%, %.0f%%] outside expectations", 100*minShare, 100*maxShare)
			}
			return true, fmt.Sprintf("feature maps take %.0f-%.0f%% of memory at max batch (paper: 62-89%%)", 100*minShare, 100*maxShare)
		}},
		{12, "Exhausting GPU memory with large mini-batches has limited benefit", func(o Options) (bool, string) {
			m, _ := models.Lookup("ResNet-50")
			fw, _ := framework.Lookup("MXNet")
			rHalf := simulate(m, fw, o.GPU, 32)
			rMax := simulate(m, fw, o.GPU, 64)
			memHalf := memprof.ProfileOps(m.Ops(), 32, fw.MemPolicy)
			memMax := memprof.ProfileOps(m.Ops(), 64, fw.MemPolicy)
			thrGain := rMax.Throughput / rHalf.Throughput
			memGain := float64(memMax.Total()) / float64(memHalf.Total())
			if thrGain > 1.10 {
				return false, fmt.Sprintf("halving batch costs %.0f%% throughput — not limited", 100*(thrGain-1))
			}
			if memGain < 1.5 {
				return false, "memory did not scale with batch"
			}
			return true, fmt.Sprintf("64 vs 32: +%.0f%% throughput for +%.0f%% memory", 100*(thrGain-1), 100*(memGain-1))
		}},
		{13, "Network bandwidth must be large enough for good scalability", func(o Options) (bool, string) {
			m, _ := models.Lookup("ResNet-50")
			fw, _ := framework.Lookup("MXNet")
			cfg := models.SimConfigFor(m, fw, o.GPU)
			results := map[string]dist.Result{}
			for _, c := range dist.Figure10Configs() {
				results[c.Name] = dist.Scale(m.Ops(), 16, kernels.StyleMXNet, cfg, c)
			}
			if results["2M1G (ethernet)"].Throughput >= results["1M1G"].Throughput {
				return false, "ethernet did not degrade two-machine training"
			}
			if results["2M1G (infiniband)"].ScalingEfficiency < 0.8 {
				return false, "infiniband scaling efficiency below 0.8"
			}
			if results["1M4G"].ScalingEfficiency < 0.7 {
				return false, "PCIe multi-GPU scaling efficiency below 0.7"
			}
			return true, fmt.Sprintf("eth 2M %.0f < 1G %.0f; IB efficiency %.0f%%; 4G efficiency %.0f%%",
				results["2M1G (ethernet)"].Throughput, results["1M1G"].Throughput,
				100*results["2M1G (infiniband)"].ScalingEfficiency, 100*results["1M4G"].ScalingEfficiency)
		}},
	}
}
