package core

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Fig2Steps: 40} }

func TestExperimentRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "fig2", "table4",
		"fig4", "fig5", "fig6", "table5", "table6",
		"fig7", "fig8", "fig9", "fig10",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].Description == "" || exps[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, err := Lookup("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestTable1Counts(t *testing.T) {
	r, err := runTable1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tbl := range r.Tables {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	// The paper's headline ratios: 25 inference vs 16 training papers,
	// image-only dominating broader workloads. (The caption's "4 both" /
	// "26 image-only" are off by one against its own citation lists; we
	// report the recomputed 5 and 25 — see EXPERIMENTS.md.)
	for _, want := range []string{"25", "16", "11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing count %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "papers doing both") {
		t.Fatal("table 1 missing the both-count row")
	}
}

func TestTable2ListsAllModels(t *testing.T) {
	r, err := runTable2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Tables[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"ResNet-50", "Inception-v3", "Seq2Seq", "Transformer", "Faster R-CNN", "Deep Speech 2", "WGAN", "A3C"} {
		if !strings.Contains(buf.String(), m) {
			t.Fatalf("table 2 missing %s", m)
		}
	}
}

func TestTable3and4Render(t *testing.T) {
	for _, id := range []string{"table3", "table4"} {
		e, _ := Lookup(id)
		r, err := e.Run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Tables[0].Render(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered empty", id)
		}
	}
	r, _ := runTable3(quickOpts())
	var buf bytes.Buffer
	r.Tables[0].Render(&buf)
	if !strings.Contains(buf.String(), "17188") {
		t.Fatal("table 3 missing the IWSLT15 vocabulary size")
	}
	r4, _ := runTable4(quickOpts())
	buf.Reset()
	r4.Tables[0].Render(&buf)
	for _, want := range []string{"1792", "3840", "243", "547.6"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table 4 missing %q", want)
		}
	}
}

func TestTables5And6MatchPaperStructure(t *testing.T) {
	for _, id := range []string{"table5", "table6"} {
		e, _ := Lookup(id)
		r, err := e.Run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		tbl := r.Tables[0]
		if len(tbl.Rows) != 5 {
			t.Fatalf("%s has %d rows, want 5", id, len(tbl.Rows))
		}
		joined := strings.Join(tbl.Columns, "|")
		if !strings.Contains(joined, "Duration") || !strings.Contains(joined, "Utilization") {
			t.Fatalf("%s columns = %v", id, tbl.Columns)
		}
		var text bytes.Buffer
		tbl.Render(&text)
		// The paper's bn kernels must appear in both framework tables.
		if !strings.Contains(text.String(), "bn_bw_1C11_kernel_new") && !strings.Contains(text.String(), "bn_fw_tr_1C11_kernel_new") {
			t.Fatalf("%s missing batch-norm kernels:\n%s", id, text.String())
		}
	}
	// Framework-specific kernels differ between the two tables.
	r5, _ := runTable5(quickOpts())
	r6, _ := runTable6(quickOpts())
	var b5, b6 bytes.Buffer
	r5.Tables[0].Render(&b5)
	r6.Tables[0].Render(&b6)
	if b5.String() == b6.String() {
		t.Fatal("tables 5 and 6 should differ by framework kernel names")
	}
}

func TestFig4ThroughputShapes(t *testing.T) {
	r, err := runFig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 8 {
		t.Fatalf("fig4 has %d panels, want 8", len(r.Figures))
	}
	for _, fig := range r.Figures {
		for _, s := range fig.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1]*0.999 {
					t.Fatalf("%s series %s throughput decreasing at %g", fig.Title, s.Name, s.X[i])
				}
			}
		}
	}
}

func TestFig5UtilizationBounded(t *testing.T) {
	r, err := runFig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range r.Figures {
		for _, s := range fig.Series {
			for _, y := range s.Y {
				if y < 0 || y > 1 {
					t.Fatalf("%s/%s utilization %g out of range", fig.Title, s.Name, y)
				}
			}
		}
	}
}

func TestFig6RNNLowerThanCNN(t *testing.T) {
	r, err := runFig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	get := func(title string) *float64 {
		for _, fig := range r.Figures {
			if strings.Contains(fig.Title, title) {
				last := fig.Series[0].Y[len(fig.Series[0].Y)-1]
				return &last
			}
		}
		return nil
	}
	cnn := get("ResNet-50")
	rnn := get("Seq2Seq")
	if cnn == nil || rnn == nil {
		t.Fatal("missing fig6 panels")
	}
	if *rnn >= *cnn {
		t.Fatalf("seq2seq FP32 util %.2f should be below ResNet %.2f", *rnn, *cnn)
	}
}

func TestFig7FourteenConfigs(t *testing.T) {
	r, err := runFig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Figures[0].Series[0]
	if len(s.Y) != 14 {
		t.Fatalf("fig7 has %d bars, want 14", len(s.Y))
	}
	// A3C is the highest CPU consumer; CNTK configs the lowest.
	maxI, minI := 0, 0
	for i := range s.Y {
		if s.Y[i] > s.Y[maxI] {
			maxI = i
		}
		if s.Y[i] < s.Y[minI] {
			minI = i
		}
	}
	if !strings.Contains(s.XLabels[maxI], "A3C") {
		t.Fatalf("highest CPU util is %s, want A3C", s.XLabels[maxI])
	}
	if !strings.Contains(s.XLabels[minI], "CNTK") {
		t.Fatalf("lowest CPU util is %s, want a CNTK config", s.XLabels[minI])
	}
}

func TestFig8TitanXpStory(t *testing.T) {
	r, err := runFig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 6 {
		t.Fatalf("fig8 has %d panels, want 6", len(r.Figures))
	}
	for _, fig := range r.Figures {
		xp, p4 := fig.Series[0], fig.Series[1]
		if !strings.Contains(xp.Name, "TITAN") || !strings.Contains(p4.Name, "P4000") {
			t.Fatalf("series order wrong in %s", fig.Title)
		}
		for i := range xp.Y {
			if strings.Contains(fig.Title, "Normalized throughput") {
				if p4.Y[i] != 1 {
					t.Fatalf("%s: P4000 must normalize to 1", fig.Title)
				}
				if xp.Y[i] <= 1 {
					t.Fatalf("%s: Titan Xp should be faster (%.2f)", fig.Title, xp.Y[i])
				}
			} else if xp.Y[i] > p4.Y[i]+1e-9 {
				t.Fatalf("%s: Titan Xp utilization %.2f should not exceed P4000 %.2f", fig.Title, xp.Y[i], p4.Y[i])
			}
		}
	}
}

func TestFig9BreakdownConsistent(t *testing.T) {
	r, err := runFig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Tables[0]
	if len(tbl.Rows) < 20 {
		t.Fatalf("fig9 has only %d rows", len(tbl.Rows))
	}
	var text bytes.Buffer
	tbl.Render(&text)
	for _, want := range []string{"ResNet-50", "Sockeye", "NMT", "Deep Speech 2", "Transformer", "A3C", "WGAN"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("fig9 missing %s", want)
		}
	}
}

func TestFig10EthernetCollapse(t *testing.T) {
	r, err := runFig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := r.Figures[0]
	byName := map[string][]float64{}
	for _, s := range fig.Series {
		byName[s.Name] = s.Y
	}
	if len(byName) != 5 {
		t.Fatalf("fig10 has %d series, want 5", len(byName))
	}
	for i := range byName["1M1G"] {
		if byName["2M1G (ethernet)"][i] >= byName["1M1G"][i] {
			t.Fatal("ethernet 2M must underperform a single GPU")
		}
		if byName["2M1G (infiniband)"][i] <= byName["1M1G"][i] {
			t.Fatal("infiniband 2M must outperform a single GPU")
		}
		if byName["1M4G"][i] <= byName["1M2G"][i] {
			t.Fatal("4 GPUs must beat 2")
		}
	}
}

func TestFig2CurvesConverge(t *testing.T) {
	r, err := runFig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Figures) != 5 {
		t.Fatalf("fig2 has %d panels, want 5", len(r.Figures))
	}
	for _, fig := range r.Figures {
		if strings.Contains(fig.Title, "A3C") {
			continue // short quick-mode A3C runs are noisy; covered in models tests
		}
		for _, s := range fig.Series {
			if len(s.Y) < 5 {
				t.Fatalf("%s/%s has only %d points", fig.Title, s.Name, len(s.Y))
			}
			// Training improves: last quarter above first quarter.
			q := len(s.Y) / 4
			var first, last float64
			for i := 0; i < q; i++ {
				first += s.Y[i]
				last += s.Y[len(s.Y)-1-i]
			}
			if last <= first {
				t.Fatalf("%s/%s did not improve (%.3f -> %.3f)", fig.Title, s.Name, first/float64(q), last/float64(q))
			}
			// Time axis strictly increasing and positive.
			for i := 1; i < len(s.X); i++ {
				if s.X[i] <= s.X[i-1] {
					t.Fatalf("%s/%s time axis not increasing", fig.Title, s.Name)
				}
			}
		}
	}
}

func TestFig2FrameworkTimeAxesDiffer(t *testing.T) {
	r, err := runFig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range r.Figures {
		if !strings.Contains(fig.Title, "ResNet-50") {
			continue
		}
		if len(fig.Series) != 3 {
			t.Fatalf("ResNet panel has %d series, want 3 frameworks", len(fig.Series))
		}
		endTimes := map[string]float64{}
		for _, s := range fig.Series {
			endTimes[s.Name] = s.X[len(s.X)-1]
		}
		// MXNet's faster implementation should finish earlier than CNTK's.
		if endTimes["ResNet-50 (MXNet)"] >= endTimes["ResNet-50 (CNTK)"] {
			t.Fatalf("framework time axes not differentiated: %v", endTimes)
		}
	}
}

func TestAllObservationsHold(t *testing.T) {
	for _, r := range CheckAll(Options{}) {
		if !r.Holds {
			t.Errorf("observation %d (%s) failed: %s", r.ID, r.Claim, r.Detail)
		}
	}
}

func TestRunAll(t *testing.T) {
	results, err := RunAll(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	for _, r := range results {
		if len(r.Tables)+len(r.Figures) == 0 {
			t.Fatalf("experiment %s produced no artifacts", r.ID)
		}
	}
}
