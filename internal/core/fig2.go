package core

import (
	"sort"

	"tbd/internal/data"
	"tbd/internal/framework"
	"tbd/internal/graph"
	"tbd/internal/models"
	"tbd/internal/optim"
	"tbd/internal/report"
	"tbd/internal/tensor"
)

// Figure 2 reproduces the accuracy-during-training curves for
// Inception-v3, ResNet-50, Transformer, Seq2Seq, and A3C. The numeric
// twins train for real on the synthetic datasets; each recorded step is
// mapped onto simulated wall-clock time by scaling with the paper-scale
// iteration time of the corresponding (model, framework) configuration —
// so the x-axis carries the days/hours units of the paper and
// framework-to-framework speed differences shift the curves exactly as in
// the original figure.

// fig2Iterations is the full-training iteration budget used for the time
// mapping: roughly 90 ImageNet epochs at batch 32 for the classifiers and
// published step counts for the others.
var fig2Iterations = map[string]float64{
	"Inception-v3": 3.4e6,
	"ResNet-50":    3.4e6,
	"Transformer":  300e3,
	"Seq2Seq":      50e3,
	"A3C":          55e3,
}

// fig2Batch picks the batch used for the iteration-time mapping.
var fig2Batch = map[string]int{
	"Inception-v3": 32, "ResNet-50": 32, "Transformer": 2048, "Seq2Seq": 64, "A3C": 32,
}

// curvePoint is one recorded (progress fraction, metric) sample.
type curvePoint struct {
	frac  float64
	value float64
}

// accuracyCurve trains a classifier twin and records smoothed accuracy.
func accuracyCurve(net *graph.Network, batchFn func() (*tensor.Tensor, []int), seq bool, steps int) []curvePoint {
	opt := optim.NewAdam(0.01)
	every := steps / 24
	if every == 0 {
		every = 1
	}
	var pts []curvePoint
	var window float64
	var count int
	for i := 0; i < steps; i++ {
		x, labels := batchFn()
		var acc float64
		if seq {
			acc = graph.TrainSequenceStep(net, opt, x, labels, 5).Accuracy
		} else {
			acc = graph.TrainClassifierStep(net, opt, x, labels, 5).Accuracy
		}
		window += acc
		count++
		if (i+1)%every == 0 {
			pts = append(pts, curvePoint{frac: float64(i+1) / float64(steps), value: window / float64(count)})
			window, count = 0, 0
		}
	}
	return pts
}

// timeScale returns the simulated seconds per full training run of the
// model on the framework (iteration time x published iteration budget).
func timeScale(o Options, modelName, fwName string) float64 {
	m, err := models.Lookup(modelName)
	if err != nil {
		panic(err)
	}
	fw, err := framework.Lookup(fwName)
	if err != nil {
		panic(err)
	}
	b := fig2Batch[modelName]
	caps := m.BatchesFor(fwName)
	if b > caps[len(caps)-1] {
		b = caps[len(caps)-1]
	}
	r := simulate(m, fw, o.GPU, b)
	return r.IterTimeSec * fig2Iterations[modelName]
}

func runFig2(o Options) (*Result, error) {
	o = o.withDefaults()
	steps := o.Fig2Steps
	if steps == 0 {
		steps = 240
	}
	rng := tensor.NewRNG(o.Seed)

	var figs []*report.Figure

	// Image classification panels: the same twin curve per model, with
	// per-framework time axes.
	imgPanel := func(modelName string, twin func(*tensor.RNG) *graph.Network) *report.Figure {
		src := data.NewImageSource(rng, 1, 8, 8, 4, 0.3)
		net := twin(rng)
		pts := accuracyCurve(net, func() (*tensor.Tensor, []int) {
			b := src.Batch(16)
			return b.X, b.Labels
		}, false, steps)
		fig := &report.Figure{Title: "Accuracy during training: " + modelName, XLabel: "training time (days)", YLabel: "top-1 accuracy"}
		m, _ := models.Lookup(modelName)
		for _, fwName := range m.Frameworks {
			scale := timeScale(o, modelName, fwName) / 86400
			s := report.Series{Name: modelName + " (" + shortFW(fwName) + ")"}
			for _, p := range pts {
				s.X = append(s.X, p.frac*scale)
				s.Y = append(s.Y, p.value)
			}
			fig.Series = append(fig.Series, s)
		}
		return fig
	}
	figs = append(figs,
		imgPanel("Inception-v3", func(r *tensor.RNG) *graph.Network { return models.NumericInception(r, 1, 8, 4) }),
		imgPanel("ResNet-50", func(r *tensor.RNG) *graph.Network { return models.NumericResNet(r, 1, 8, 4) }),
	)

	// Translation panels: token accuracy as the BLEU-proxy metric
	// (documented in EXPERIMENTS.md).
	seqPanel := func(modelName string, twin *graph.Network, vocab, T int) *report.Figure {
		src := data.NewTranslationSource(rng, vocab, T)
		pts := accuracyCurve(twin, func() (*tensor.Tensor, []int) {
			b := src.Batch(16)
			return b.Src, b.Targets
		}, true, steps*2)
		fig := &report.Figure{Title: "Translation quality during training: " + modelName, XLabel: "training time (hours)", YLabel: "BLEU proxy (token accuracy x 28)"}
		m, _ := models.Lookup(modelName)
		for _, fwName := range m.Frameworks {
			scale := timeScale(o, modelName, fwName) / 3600
			s := report.Series{Name: m.ImplName(fwName) + " (" + shortFW(fwName) + ")"}
			for _, p := range pts {
				s.X = append(s.X, p.frac*scale)
				s.Y = append(s.Y, p.value*28)
			}
			fig.Series = append(fig.Series, s)
		}
		return fig
	}
	figs = append(figs,
		seqPanel("Transformer", models.NumericTransformer(rng, 12, 16, 2), 12, 6),
		seqPanel("Seq2Seq", models.NumericSeq2Seq(rng, 12, 12, 24), 12, 6),
	)

	// A3C panel: real Pong evaluation scores over simulated hours.
	a3cCfg := models.DefaultA3CConfig()
	a3cCfg.Seed = o.Seed
	a3cCfg.Checkpoints = 8
	if o.Fig2Steps > 0 {
		a3cCfg.Updates = o.Fig2Steps * 4
		a3cCfg.EvalEpisodeCap = 4000
	}
	res := models.TrainA3C(a3cCfg)
	// Concurrent workers record checkpoints out of order; sort by
	// training progress.
	sort.Slice(res.Curve, func(i, j int) bool { return res.Curve[i].UpdateFrac < res.Curve[j].UpdateFrac })
	a3cScale := timeScale(o, "A3C", "MXNet") / 3600
	a3cFig := &report.Figure{Title: "Game score during training: A3C (Pong)", XLabel: "training time (hours)", YLabel: "game score"}
	s := report.Series{Name: "A3C (MXNet)"}
	for _, p := range res.Curve {
		s.X = append(s.X, p.UpdateFrac*a3cScale)
		s.Y = append(s.Y, float64(p.Score))
	}
	a3cFig.Series = append(a3cFig.Series, s)
	figs = append(figs, a3cFig)

	return &Result{ID: "fig2", Title: "Figure 2", Figures: figs}, nil
}
