package core

import (
	"fmt"

	"tbd/internal/device"
	"tbd/internal/dist"
	"tbd/internal/framework"
	"tbd/internal/kernels"
	"tbd/internal/memprof"
	"tbd/internal/models"
	"tbd/internal/report"
	"tbd/internal/sim"
)

// sweepFigure builds one figure per benchmark model, with one series per
// framework implementation, extracting the given metric from the
// simulated sweep. Faster R-CNN's fixed-batch results are reported as a
// single-point series, matching the paper's prose treatment. When
// throughput is set, audio workloads are re-expressed as seconds of audio
// processed per second — the paper's adjusted throughput metric for Deep
// Speech 2 (§3.4.3).
func sweepFigure(o Options, title, ylabel string, throughput bool, metric func(sim.Result) float64) []*report.Figure {
	o = o.withDefaults()
	var figs []*report.Figure
	for _, m := range models.Suite() {
		yl := ylabel
		scale := 1.0
		if throughput && m.Dataset.MeanDurationSec > 0 {
			yl = "audio seconds/s"
			scale = m.Dataset.MeanDurationSec
		}
		fig := &report.Figure{
			Title:  fmt.Sprintf("%s: %s", title, m.Name),
			XLabel: "mini-batch size (" + m.BatchUnit + ")",
			YLabel: yl,
		}
		for _, fwName := range m.Frameworks {
			fw, _ := framework.Lookup(fwName)
			s := report.Series{Name: fmt.Sprintf("%s (%s)", m.ImplName(fwName), shortFW(fwName))}
			for _, b := range m.BatchesFor(fwName) {
				r := simulate(m, fw, o.GPU, b)
				s.X = append(s.X, float64(b))
				s.Y = append(s.Y, metric(r)*scale)
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs
}

func shortFW(name string) string {
	if name == "TensorFlow" {
		return "TF"
	}
	return name
}

func runFig4(o Options) (*Result, error) {
	figs := sweepFigure(o, "Training throughput", "samples/s", true, func(r sim.Result) float64 { return r.Throughput })
	return &Result{ID: "fig4", Title: "Figure 4", Figures: figs}, nil
}

func runFig5(o Options) (*Result, error) {
	figs := sweepFigure(o, "GPU compute utilization", "utilization", false, func(r sim.Result) float64 { return r.GPUUtil })
	return &Result{ID: "fig5", Title: "Figure 5", Figures: figs}, nil
}

func runFig6(o Options) (*Result, error) {
	figs := sweepFigure(o, "GPU FP32 utilization", "utilization", false, func(r sim.Result) float64 { return r.FP32Util })
	return &Result{ID: "fig6", Title: "Figure 6", Figures: figs}, nil
}

// fig7Configs lists the 14 model/framework bars of the paper's Figure 7.
func fig7Configs() [][2]string {
	return [][2]string{
		{"ResNet-50", "MXNet"}, {"ResNet-50", "TensorFlow"}, {"ResNet-50", "CNTK"},
		{"Inception-v3", "MXNet"}, {"Inception-v3", "TensorFlow"}, {"Inception-v3", "CNTK"},
		{"Seq2Seq", "TensorFlow"}, {"Seq2Seq", "MXNet"},
		{"Transformer", "TensorFlow"},
		{"Faster R-CNN", "MXNet"}, {"Faster R-CNN", "TensorFlow"},
		{"WGAN", "TensorFlow"},
		{"Deep Speech 2", "MXNet"},
		{"A3C", "MXNet"},
	}
}

func runFig7(o Options) (*Result, error) {
	o = o.withDefaults()
	fig := &report.Figure{Title: "Average CPU utilization", XLabel: "configuration", YLabel: "CPU utilization (%)"}
	s := report.Series{Name: "CPU utilization (%)"}
	for i, cfg := range fig7Configs() {
		m, err := models.Lookup(cfg[0])
		if err != nil {
			return nil, err
		}
		fw, err := framework.Lookup(cfg[1])
		if err != nil {
			return nil, err
		}
		batches := m.BatchesFor(cfg[1])
		b := batches[len(batches)-1]
		r := simulate(m, fw, o.GPU, b)
		s.XLabels = append(s.XLabels, fmt.Sprintf("%s (%s)", m.ImplName(cfg[1]), shortFW(cfg[1])))
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, 100*r.CPUUtil)
	}
	fig.Series = append(fig.Series, s)
	return &Result{ID: "fig7", Title: "Figure 7", Figures: []*report.Figure{fig}}, nil
}

// fig8Cells lists the (model, framework, batch) cells of Figure 8.
func fig8Cells() []struct {
	model, fw string
	batch     int
} {
	return []struct {
		model, fw string
		batch     int
	}{
		{"ResNet-50", "MXNet", 32}, {"Inception-v3", "MXNet", 32}, {"Seq2Seq", "MXNet", 64},
		{"ResNet-50", "TensorFlow", 32}, {"Inception-v3", "TensorFlow", 32}, {"Seq2Seq", "TensorFlow", 128},
	}
}

func runFig8(o Options) (*Result, error) {
	o = o.withDefaults()
	mkFig := func(fwName, ylabel string, metric func(sim.Result) float64, normalize bool) *report.Figure {
		fig := &report.Figure{Title: fmt.Sprintf("%s (%s implementations)", ylabel, fwName), XLabel: "model", YLabel: ylabel}
		for _, gpu := range []*device.GPU{device.TitanXp, device.QuadroP4000} {
			s := report.Series{Name: gpu.Name}
			i := 0
			for _, cell := range fig8Cells() {
				if cell.fw != fwName {
					continue
				}
				m, _ := models.Lookup(cell.model)
				fw, _ := framework.Lookup(cell.fw)
				r := simulate(m, fw, gpu, cell.batch)
				v := metric(r)
				if normalize {
					base := simulate(m, fw, device.QuadroP4000, cell.batch)
					v = metric(r) / metric(base)
				}
				s.XLabels = append(s.XLabels, fmt.Sprintf("%s (%d)", m.ImplName(cell.fw), cell.batch))
				s.X = append(s.X, float64(i))
				s.Y = append(s.Y, v)
				i++
			}
			fig.Series = append(fig.Series, s)
		}
		return fig
	}
	var figs []*report.Figure
	for _, fw := range []string{"MXNet", "TensorFlow"} {
		figs = append(figs,
			mkFig(fw, "Normalized throughput", func(r sim.Result) float64 { return r.Throughput }, true),
			mkFig(fw, "Compute utilization", func(r sim.Result) float64 { return r.GPUUtil }, false),
			mkFig(fw, "FP32 utilization", func(r sim.Result) float64 { return r.FP32Util }, false),
		)
	}
	return &Result{ID: "fig8", Title: "Figure 8", Figures: figs}, nil
}

// fig9Batches gives the per-panel batch triples of Figure 9.
func fig9Batches(model, fw string) []int {
	switch model {
	case "ResNet-50", "Inception-v3":
		if fw == "CNTK" {
			return []int{16, 32, 64}
		}
		return []int{8, 16, 32}
	case "WGAN":
		return []int{16, 32, 64}
	case "Deep Speech 2":
		return []int{1, 2, 3, 4}
	case "Seq2Seq":
		if fw == "TensorFlow" {
			return []int{32, 64, 128}
		}
		return []int{16, 32, 64}
	case "Transformer":
		return []int{512, 1024, 2048}
	case "A3C":
		return []int{32, 64, 128}
	case "Faster R-CNN":
		return []int{1}
	default:
		return nil
	}
}

func runFig9(o Options) (*Result, error) {
	o = o.withDefaults()
	tbl := &report.Table{
		Title:   "GPU memory usage breakdown (GB)",
		Columns: []string{"Model", "Framework", "Batch", "Feature maps", "Weights", "Gradients", "Dynamic", "Workspace", "Total", "FM share"},
	}
	gb := func(v int64) float64 { return float64(v) / (1 << 30) }
	for _, m := range models.Suite() {
		for _, fwName := range m.Frameworks {
			fw, _ := framework.Lookup(fwName)
			for _, b := range fig9Batches(m.Name, fwName) {
				n := m.SamplesForBatch(b)
				bd := memprof.ProfileOps(m.Ops(), n, fw.MemPolicy)
				tbl.AddRow(m.Name, fmt.Sprintf("%s (%s)", m.ImplName(fwName), shortFW(fwName)), b,
					gb(bd.FeatureMaps), gb(bd.Weights), gb(bd.WeightGradients),
					gb(bd.Dynamic), gb(bd.Workspace), gb(bd.Total()),
					fmt.Sprintf("%.0f%%", 100*bd.FeatureMapShare()))
			}
		}
	}
	return &Result{ID: "fig9", Title: "Figure 9", Tables: []*report.Table{tbl}}, nil
}

func runFig10(o Options) (*Result, error) {
	o = o.withDefaults()
	m, err := models.Lookup("ResNet-50")
	if err != nil {
		return nil, err
	}
	fw, err := framework.Lookup("MXNet")
	if err != nil {
		return nil, err
	}
	cfg := models.SimConfigFor(m, fw, o.GPU)
	fig := &report.Figure{
		Title:  "ResNet-50 on MXNet with multiple GPUs/machines",
		XLabel: "mini-batch size per GPU",
		YLabel: "throughput (samples/s)",
	}
	for _, cluster := range dist.Figure10Configs() {
		s := report.Series{Name: cluster.Name}
		for _, b := range []int{8, 16, 32} {
			r := dist.Scale(m.Ops(), b, kernels.StyleMXNet, cfg, cluster)
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, r.Throughput)
		}
		fig.Series = append(fig.Series, s)
	}
	return &Result{ID: "fig10", Title: "Figure 10", Figures: []*report.Figure{fig}}, nil
}
