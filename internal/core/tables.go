package core

import (
	"fmt"

	"tbd/internal/data"
	"tbd/internal/device"
	"tbd/internal/framework"
	"tbd/internal/models"
	"tbd/internal/report"
	"tbd/internal/sim"
)

// Table 1: the paper's survey of systems/architecture venue papers
// (SOSP, OSDI, NSDI, MICRO, ISCA, HPCA, ASPLOS) since 2014, grouped by
// training-vs-inference and algorithmic breadth, transcribed by citation
// number.
var table1Survey = map[string]map[string][]int{
	"Training": {
		"Image classification only": {29, 35, 37, 56, 61, 62, 83, 90, 95},
		"Broader (non-CNN)":         {10, 22, 58, 66, 75, 77, 99},
	},
	"Inference": {
		"Image classification only": {12, 13, 14, 25, 28, 37, 39, 42, 61, 67, 68, 74, 81, 86, 87, 88, 90, 103, 104},
		"Broader (non-CNN)":         {10, 38, 46, 51, 60, 75},
	},
}

func runTable1(o Options) (*Result, error) {
	tbl := &report.Table{
		Title:   "Systems/architecture conference papers on DNNs since 2014",
		Columns: []string{"Focus", "Image classification only", "Broader (non-CNN)"},
	}
	count := func(focus, breadth string) int { return len(table1Survey[focus][breadth]) }
	for _, focus := range []string{"Training", "Inference"} {
		tbl.AddRow(focus, count(focus, "Image classification only"), count(focus, "Broader (non-CNN)"))
	}
	summary := &report.Table{
		Title:   "Survey summary",
		Columns: []string{"Claim", "Count"},
	}
	// The paper: 25 inference vs 16 training (4 in both); 26 image-only
	// vs 11 broader.
	training := union(table1Survey["Training"])
	inference := union(table1Survey["Inference"])
	imageOnly := unionSets(table1Survey["Training"]["Image classification only"], table1Survey["Inference"]["Image classification only"])
	broader := unionSets(table1Survey["Training"]["Broader (non-CNN)"], table1Survey["Inference"]["Broader (non-CNN)"])
	both := 0
	for c := range training {
		if inference[c] {
			both++
		}
	}
	summary.AddRow("papers optimizing training", len(training))
	summary.AddRow("papers optimizing inference", len(inference))
	summary.AddRow("papers doing both", both)
	summary.AddRow("papers evaluating only image classification", len(imageOnly))
	summary.AddRow("papers with broader workloads", len(broader))
	return &Result{ID: "table1", Title: "Table 1", Tables: []*report.Table{tbl, summary}}, nil
}

func union(m map[string][]int) map[int]bool {
	out := map[int]bool{}
	for _, list := range m {
		for _, c := range list {
			out[c] = true
		}
	}
	return out
}

func unionSets(lists ...[]int) map[int]bool {
	out := map[int]bool{}
	for _, list := range lists {
		for _, c := range list {
			out[c] = true
		}
	}
	return out
}

func runTable2(o Options) (*Result, error) {
	tbl := &report.Table{
		Title:   "TBD benchmark overview",
		Columns: []string{"Application", "Model", "Layers", "Dominant layer", "Frameworks", "Dataset"},
	}
	for _, m := range models.Suite() {
		fws := ""
		for i, f := range m.Frameworks {
			if i > 0 {
				fws += ", "
			}
			fws += f
		}
		tbl.AddRow(m.Application, m.Name, m.NumLayers, m.DominantLayer, fws, m.Dataset.Name)
	}
	return &Result{ID: "table2", Title: "Table 2", Tables: []*report.Table{tbl}}, nil
}

func runTable3(o Options) (*Result, error) {
	tbl := &report.Table{
		Title:   "Training datasets",
		Columns: []string{"Dataset", "Samples", "Size", "Special"},
	}
	for _, d := range data.All() {
		size := ""
		if len(d.SampleShape) > 0 {
			size = fmt.Sprintf("%dx%dx%d per sample", d.SampleShape[0], d.SampleShape[1], d.SampleShape[2])
		} else {
			size = fmt.Sprintf("%d-%d tokens per sentence", d.MeanSeqLen-5, d.MaxSeqLen)
		}
		samples := "generated"
		if d.NumSamples > 0 {
			samples = fmt.Sprintf("%d", d.NumSamples)
		}
		tbl.AddRow(d.Name, samples, size, d.Special)
	}
	return &Result{ID: "table3", Title: "Table 3", Tables: []*report.Table{tbl}}, nil
}

func runTable4(o Options) (*Result, error) {
	tbl := &report.Table{
		Title:   "Hardware specifications",
		Columns: []string{"Spec", "TITAN Xp", "Quadro P4000", "Intel Xeon E5-2680"},
	}
	x, p, c := device.TitanXp, device.QuadroP4000, device.XeonE52680
	tbl.AddRow("Multiprocessors", x.Multiprocessors, p.Multiprocessors, "")
	tbl.AddRow("Core count", x.CoreCount, p.CoreCount, c.Cores)
	tbl.AddRow("Max clock rate (MHz)", x.MaxClockMHz, p.MaxClockMHz, c.MaxClockMHz)
	tbl.AddRow("Memory size (GB)", x.MemoryBytes>>30, p.MemoryBytes>>30, c.MemoryBytes>>30)
	tbl.AddRow("LLC size (MB)", x.LLCBytes>>20, p.LLCBytes>>20, c.LLCBytes>>20)
	tbl.AddRow("Memory bus type", x.MemBusType, p.MemBusType, "DDR4")
	tbl.AddRow("Memory BW (GB/s)", x.MemBandwidthGBs, p.MemBandwidthGBs, c.MemBandwidthGBs)
	tbl.AddRow("Bus interface", x.BusInterface, p.BusInterface, "")
	tbl.AddRow("Peak FP32 (TFLOPS)", x.PeakFLOPS()/1e12, p.PeakFLOPS()/1e12, "")
	return &Result{ID: "table4", Title: "Table 4", Tables: []*report.Table{tbl}}, nil
}

// lowUtilKernelTable builds Table 5/6 for ResNet-50 at batch 32 on the
// given framework.
func lowUtilKernelTable(id string, o Options, fwName string) (*Result, error) {
	o = o.withDefaults()
	m, err := models.Lookup("ResNet-50")
	if err != nil {
		return nil, err
	}
	fw, err := framework.Lookup(fwName)
	if err != nil {
		return nil, err
	}
	r := simulate(m, fw, o.GPU, 32)
	tbl := &report.Table{
		Title:   fmt.Sprintf("Longest 5 kernels with FP32 utilization below the average (ResNet-50, batch 32, %s; average %.1f%%)", fwName, 100*r.FP32Util),
		Columns: []string{"Duration", "Utilization", "Kernel name"},
	}
	for _, st := range sim.LongLowUtilKernels(r, 5) {
		tbl.AddRow(
			fmt.Sprintf("%.2f%%", 100*st.DurationShare),
			fmt.Sprintf("%.1f%%", 100*st.Util),
			st.Name,
		)
	}
	return &Result{ID: id, Title: "Table " + id[len(id)-1:], Tables: []*report.Table{tbl}}, nil
}

func runTable5(o Options) (*Result, error) { return lowUtilKernelTable("table5", o, "TensorFlow") }
func runTable6(o Options) (*Result, error) { return lowUtilKernelTable("table6", o, "MXNet") }
