package core

import (
	"tbd/internal/device"
	"tbd/internal/framework"
	"tbd/internal/kernels"
	"tbd/internal/models"
	"tbd/internal/sim"
)

// Workspace-vs-throughput tradeoff: the executable form of the paper's
// Observation 12 recommendation — memory freed by a smaller mini-batch
// can buy faster convolution algorithms via a larger workspace arena.

// TradeoffRow is one point of the budget sweep.
type TradeoffRow struct {
	// BudgetBytes is the workspace arena allowance.
	BudgetBytes int64
	// WorkspaceBytes is the arena the selector actually used.
	WorkspaceBytes int64
	Throughput     float64
	// WinogradConvs / ImplicitConvs count the algorithm choices.
	WinogradConvs, PrecompConvs, ImplicitConvs int
}

// WorkspaceTradeoff sweeps workspace budgets for one configuration,
// running the budgeted convolution-algorithm selector at each point and
// simulating the resulting throughput.
func WorkspaceTradeoff(modelName, fwName string, batch int, budgets []int64) ([]TradeoffRow, error) {
	m, err := models.LookupAny(modelName)
	if err != nil {
		return nil, err
	}
	fw, err := framework.Lookup(fwName)
	if err != nil {
		return nil, err
	}
	cfg := models.SimConfigFor(m, fw, device.QuadroP4000)
	n := m.SamplesForBatch(batch)
	var out []TradeoffRow
	for _, budget := range budgets {
		ops, arena := kernels.ChooseConvAlgos(m.Ops(), n, budget)
		r := sim.Simulate(ops, n, fw.Style, cfg)
		row := TradeoffRow{
			BudgetBytes:    budget,
			WorkspaceBytes: arena,
			Throughput:     float64(batch) / r.IterTimeSec,
		}
		for _, o := range ops {
			if o.Kind != kernels.OpConv2D {
				continue
			}
			switch o.Algo {
			case kernels.AlgoWinograd:
				row.WinogradConvs++
			case kernels.AlgoImplicitGEMM:
				row.ImplicitConvs++
			default:
				row.PrecompConvs++
			}
		}
		out = append(out, row)
	}
	return out, nil
}
