package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests pin the rendered form of the static paper artifacts
// so table layout regressions are caught. Regenerate with:
//
//	go run ./cmd/tbd run table2 | tail -n +2 > internal/core/testdata/table2.golden
//	go run ./cmd/tbd run table4 | tail -n +2 > internal/core/testdata/table4.golden
func TestGoldenTables(t *testing.T) {
	for _, id := range []string{"table2", "table4"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tbl := range res.Tables {
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			buf.WriteByte('\n')
		}
		want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		if buf.String() != string(want) {
			t.Errorf("%s rendering drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", id, buf.String(), want)
		}
	}
}

// TestSimulationDeterministic pins that repeated simulation of the same
// configuration is bit-identical (the memo cache and the model itself are
// pure).
func TestSimulationDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		r, err := AnalyzeEndToEnd("Seq2Seq", "TensorFlow", "", 64)
		if err != nil {
			t.Fatal(err)
		}
		return r.Throughput, r.FP32Util
	}
	t1, u1 := run()
	t2, u2 := run()
	if t1 != t2 || u1 != u2 {
		t.Fatalf("simulation not deterministic: (%g, %g) vs (%g, %g)", t1, u1, t2, u2)
	}
}
