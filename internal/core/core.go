// Package core is the TBD suite itself: the registry of experiments that
// regenerate every table and figure of the paper, and the encoded
// Observations 1-13 with machine-checkable assertions. It ties the
// benchmark models, framework profiles, simulator, profilers, and
// distributed-training model into the end-to-end analysis pipeline of
// Figure 3.
package core

import (
	"fmt"
	"sync"

	"tbd/internal/device"
	"tbd/internal/framework"
	"tbd/internal/models"
	"tbd/internal/report"
	"tbd/internal/sim"
)

// Options configures an experiment run.
type Options struct {
	// GPU is the device under test (default Quadro P4000, the paper's
	// primary card).
	GPU *device.GPU
	// Seed drives all stochastic components.
	Seed uint64
	// Fig2Steps scales the numeric-twin training length for the
	// convergence curves (0 uses the default; tests use small values).
	Fig2Steps int
}

func (o Options) withDefaults() Options {
	if o.GPU == nil {
		o.GPU = device.QuadroP4000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result is one experiment's regenerated artifact.
type Result struct {
	ID      string
	Title   string
	Tables  []*report.Table
	Figures []*report.Figure
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(Options) (*Result, error)
}

// Experiments lists every regenerable table and figure in paper order.
func Experiments() []*Experiment {
	return []*Experiment{
		{ID: "table1", Title: "Table 1: systems/architecture papers on DNNs since 2014", Description: "Literature survey counts by training-vs-inference and algorithmic breadth", Run: runTable1},
		{ID: "table2", Title: "Table 2: benchmark overview", Description: "The eight TBD models with layers, dominant layer, frameworks, datasets", Run: runTable2},
		{ID: "table3", Title: "Table 3: training datasets", Description: "Dataset cardinalities, shapes, and special properties", Run: runTable3},
		{ID: "fig2", Title: "Figure 2: model accuracy during training", Description: "Convergence curves of the numeric twins mapped to simulated wall-clock", Run: runFig2},
		{ID: "table4", Title: "Table 4: hardware specifications", Description: "Quadro P4000, Titan Xp, Xeon E5-2680", Run: runTable4},
		{ID: "fig4", Title: "Figure 4: training throughput vs mini-batch size", Description: "Per-model, per-framework throughput sweeps", Run: runFig4},
		{ID: "fig5", Title: "Figure 5: GPU compute utilization vs mini-batch size", Description: "Per-model, per-framework utilization sweeps", Run: runFig5},
		{ID: "fig6", Title: "Figure 6: GPU FP32 utilization vs mini-batch size", Description: "Per-model, per-framework FP32 utilization sweeps", Run: runFig6},
		{ID: "table5", Title: "Table 5: longest low-FP32-utilization kernels (ResNet-50, TensorFlow)", Description: "Top-5 kernels below average utilization at batch 32", Run: runTable5},
		{ID: "table6", Title: "Table 6: longest low-FP32-utilization kernels (ResNet-50, MXNet)", Description: "Top-5 kernels below average utilization at batch 32", Run: runTable6},
		{ID: "fig7", Title: "Figure 7: average CPU utilization", Description: "Host utilization across the 14 model/framework configurations", Run: runFig7},
		{ID: "fig8", Title: "Figure 8: Titan Xp vs Quadro P4000", Description: "Throughput, compute utilization, FP32 utilization across GPUs", Run: runFig8},
		{ID: "fig9", Title: "Figure 9: GPU memory usage breakdown", Description: "Weights / gradients / feature maps / dynamic / workspace per model and batch", Run: runFig9},
		{ID: "fig10", Title: "Figure 10: multi-GPU and multi-machine scaling", Description: "ResNet-50 on MXNet across 1M1G..1M4G and Ethernet/InfiniBand", Run: runFig10},
	}
}

// Lookup resolves an experiment by id.
func Lookup(id string) (*Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("core: unknown experiment %q", id)
}

// RunAll executes every experiment in order.
func RunAll(o Options) ([]*Result, error) {
	var out []*Result
	for _, e := range Experiments() {
		r, err := e.Run(o)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// --- shared simulation cache ---

type simKey struct {
	model, fw, gpu string
	batch          int
}

var (
	simMu    sync.Mutex
	simCache = map[simKey]sim.Result{}
)

// simulate runs (and memoizes) one (model, framework, batch, GPU) cell of
// the sweep. batch is in the model's batch unit (tokens for the
// Transformer); the returned result's Throughput is re-expressed in those
// units.
func simulate(m *models.Model, fw *framework.Framework, gpu *device.GPU, batch int) sim.Result {
	key := simKey{m.Name, fw.Name, gpu.Name, batch}
	simMu.Lock()
	if r, ok := simCache[key]; ok {
		simMu.Unlock()
		return r
	}
	simMu.Unlock()

	n := m.SamplesForBatch(batch)
	cfg := models.SimConfigFor(m, fw, gpu)
	r := sim.Simulate(m.Ops(), n, fw.Style, cfg)
	// Re-express throughput in sweep units (e.g. tokens/s).
	r.Throughput = float64(batch) / r.IterTimeSec

	simMu.Lock()
	simCache[key] = r
	simMu.Unlock()
	return r
}
