package models

import (
	"fmt"

	"tbd/internal/data"
	"tbd/internal/kernels"
)

// inceptionBranchConv appends one conv+bn+relu of an Inception branch.
func inceptionBranchConv(ops *[]*kernels.Op, name string, inC, outC, h, w, k, stride, pad int) (int, int) {
	return convBNRelu(ops, name, inC, outC, h, w, k, stride, pad)
}

// inceptionMix appends a simplified Inception mixed block: four parallel
// branches (1x1, 5x5 via double 3x3, 3x3, pooled 1x1) whose concatenated
// output has outC channels. Branch channel splits follow Szegedy et al.'s
// proportions.
func inceptionMix(ops *[]*kernels.Op, name string, inC, outC, h, w int) {
	q := outC / 4
	// Branch 1: 1x1 (stashes the shared block input once).
	inceptionBranchConv(ops, name+".b1.conv", inC, q, h, w, 1, 1, 0)
	shared := func(from int) {
		// Later branch-entry convs read the same input tensor branch 1
		// already stashed.
		(*ops)[from].SharesInput = true
	}
	// Branch 2: 1x1 -> 3x3 -> 3x3 (factorized 5x5).
	inceptionBranchConv(ops, name+".b2.conv1", inC, q/2, h, w, 1, 1, 0)
	shared(len(*ops) - 3)
	inceptionBranchConv(ops, name+".b2.conv2", q/2, q, h, w, 3, 1, 1)
	inceptionBranchConv(ops, name+".b2.conv3", q, q, h, w, 3, 1, 1)
	// Branch 3: 1x1 -> 3x3.
	inceptionBranchConv(ops, name+".b3.conv1", inC, q/2, h, w, 1, 1, 0)
	shared(len(*ops) - 3)
	inceptionBranchConv(ops, name+".b3.conv2", q/2, q, h, w, 3, 1, 1)
	// Branch 4: pool -> 1x1.
	*ops = append(*ops, &kernels.Op{Name: name + ".b4.pool", Kind: kernels.OpAvgPool, InC: inC, H: h, W: w, K: 3, Stride: 1})
	inceptionBranchConv(ops, name+".b4.conv", inC, q, h-2, w-2, 1, 1, 0)
}

// inceptionReduce appends a grid-size-reduction block halving the spatial
// size while growing channels.
func inceptionReduce(ops *[]*kernels.Op, name string, inC, outC, h, w int) (int, int) {
	half := outC / 2
	oh, ow := inceptionBranchConv(ops, name+".conv3", inC, half, h, w, 3, 2, 0)
	inceptionBranchConv(ops, name+".conv1", inC, half, h, w, 1, 1, 0)
	inceptionBranchConv(ops, name+".conv1b", half, half, h, w, 3, 2, 0)
	*ops = append(*ops, &kernels.Op{Name: name + ".pool", Kind: kernels.OpMaxPool, InC: inC, H: h, W: w, K: 3, Stride: 2})
	return oh, ow
}

// InceptionV3 is the 42-layer Inception image classifier (Szegedy et al.),
// trained on ImageNet1K on all three frameworks.
func InceptionV3() *Model {
	return &Model{
		Name:          "Inception-v3",
		Application:   "Image classification",
		NumLayers:     42,
		DominantLayer: "CONV",
		Frameworks:    []string{"TensorFlow", "MXNet", "CNTK"},
		Dataset:       data.ImageNet1K,
		BatchSizes:    []int{4, 8, 16, 32, 64},
		BatchUnit:     "samples",
		// Figure 4b: MXNet leads, then TF, then CNTK.
		SpeedFactor: map[string]float64{"MXNet": 1.15, "TensorFlow": 0.97, "CNTK": 0.9},
		BuildOps:    buildInceptionV3,
	}
}

func buildInceptionV3() []*kernels.Op {
	var ops []*kernels.Op
	// Stem: 299x299 input per the Inception-v3 recipe.
	h, w := convBNRelu(&ops, "stem.conv1", 3, 32, 299, 299, 3, 2, 0)
	h, w = convBNRelu(&ops, "stem.conv2", 32, 32, h, w, 3, 1, 0)
	h, w = convBNRelu(&ops, "stem.conv3", 32, 64, h, w, 3, 1, 1)
	ops = append(ops, &kernels.Op{Name: "stem.pool1", Kind: kernels.OpMaxPool, InC: 64, H: h, W: w, K: 3, Stride: 2})
	h, w = (h-3)/2+1, (w-3)/2+1
	h, w = convBNRelu(&ops, "stem.conv4", 64, 80, h, w, 1, 1, 0)
	h, w = convBNRelu(&ops, "stem.conv5", 80, 192, h, w, 3, 1, 0)
	ops = append(ops, &kernels.Op{Name: "stem.pool2", Kind: kernels.OpMaxPool, InC: 192, H: h, W: w, K: 3, Stride: 2})
	h, w = (h-3)/2+1, (w-3)/2+1

	// 3x mixed blocks at 35x35.
	inC := 192
	for i := 0; i < 3; i++ {
		inceptionMix(&ops, fmt.Sprintf("mixedA%d", i+1), inC, 288, h, w)
		inC = 288
	}
	h, w = inceptionReduce(&ops, "reduceA", inC, 768, h, w)
	inC = 768
	// 4x mixed blocks at 17x17.
	for i := 0; i < 4; i++ {
		inceptionMix(&ops, fmt.Sprintf("mixedB%d", i+1), inC, 768, h, w)
	}
	h, w = inceptionReduce(&ops, "reduceB", inC, 1280, h, w)
	inC = 1280
	// 2x mixed blocks at 8x8.
	for i := 0; i < 2; i++ {
		inceptionMix(&ops, fmt.Sprintf("mixedC%d", i+1), inC, 2048, h, w)
		inC = 2048
	}
	ops = append(ops,
		&kernels.Op{Name: "avgpool", Kind: kernels.OpAvgPool, InC: 2048, H: h, W: w, K: h, Stride: h},
		&kernels.Op{Name: "fc", Kind: kernels.OpDense, In: 2048, Out: 1000, Rows: 1},
		&kernels.Op{Name: "loss", Kind: kernels.OpLoss, Rows: 1, Out: 1000},
	)
	return ops
}
