package models

import (
	"tbd/internal/data"
	"tbd/internal/kernels"
)

// A3C is the deep-reinforcement-learning benchmark (Mnih et al.'s
// asynchronous advantage actor-critic, MXNet implementation): a 4-layer
// network over stacked Atari frames. Its tiny kernels leave the GPU
// mostly idle while the environment simulation makes it the highest CPU
// consumer in the suite (Figure 7: 28.75%).
func A3C() *Model {
	return &Model{
		Name:          "A3C",
		Application:   "Deep reinforcement learning",
		NumLayers:     4,
		DominantLayer: "CONV",
		Frameworks:    []string{"MXNet"},
		Dataset:       data.Atari2600,
		BatchSizes:    []int{8, 16, 32, 64, 128},
		BatchUnit:     "samples",
		// Every training sample requires emulator steps on the host,
		// spread over the asynchronous actor threads.
		HostCPUSecPerSample: map[string]float64{"MXNet": 5e-2},
		PipelineWorkers:     16,
		// Rollout-collection barrier per update.
		IterHostOverheadSec: 0.8,
		BuildOps:            buildA3C,
	}
}

func buildA3C() []*kernels.Op {
	var ops []*kernels.Op
	// Mnih-style trunk: 16 8x8/4 conv, 32 4x4/2 conv, dense 256.
	h, w := convBNRelu(&ops, "conv1", 4, 16, 84, 84, 8, 4, 0)
	h, w = convBNRelu(&ops, "conv2", 16, 32, h, w, 4, 2, 0)
	ops = append(ops,
		&kernels.Op{Name: "fc", Kind: kernels.OpDense, In: 32 * h * w, Out: 256, Rows: 1},
		&kernels.Op{Name: "fc.relu", Kind: kernels.OpActivation, Elems: 256},
		// Policy and value heads.
		&kernels.Op{Name: "policy", Kind: kernels.OpDense, In: 256, Out: 3, Rows: 1},
		&kernels.Op{Name: "value", Kind: kernels.OpDense, In: 256, Out: 1, Rows: 1},
		&kernels.Op{Name: "loss", Kind: kernels.OpLoss, Elems: 4},
	)
	return ops
}
