package models

import (
	"tbd/internal/data"
	"tbd/internal/kernels"
)

// Deep Speech 2 geometry: the paper uses MXNet's default configuration
// with 2 convolutional layers and 5 vanilla recurrent layers (the
// official model's 7 RNN layers were reduced to 5 for memory, per the
// paper's footnote).
const (
	ds2Freq    = 161  // spectrogram frequency bins
	ds2Frames  = 600  // ~12 s clips at 10 ms stride after 2x conv striding
	ds2Hidden  = 1760 // MXNet default hidden width
	ds2RNNs    = 5
	ds2Symbols = 29 // English characters + blank
)

// DeepSpeech2 is the end-to-end speech-recognition benchmark (MXNet
// only). Its recurrent stack uses fused whole-sequence vanilla-RNN
// kernels, so unlike the LSTM seq2seq models it sustains high GPU
// utilization, and its throughput scales almost linearly in the 1-4
// mini-batch range the 8 GB GPU can hold (Figure 4f, Observation 2).
func DeepSpeech2() *Model {
	return &Model{
		Name:          "Deep Speech 2",
		Application:   "Speech recognition",
		NumLayers:     9,
		DominantLayer: "RNN",
		Frameworks:    []string{"MXNet"},
		Dataset:       data.LibriSpeech,
		BatchSizes:    []int{1, 2, 3, 4},
		BatchUnit:     "samples",
		BuildOps:      buildDeepSpeech2,
	}
}

func buildDeepSpeech2() []*kernels.Op {
	var ops []*kernels.Op
	// Two 2-D convolutions over the (freq x time) spectrogram, striding
	// time down to ds2Frames.
	h, w := convBNRelu(&ops, "conv1", 1, 32, ds2Freq, ds2Frames*2, 5, 2, 2)
	h, w = convBNRelu(&ops, "conv2", 32, 32, h, w, 5, 1, 2)

	// Recurrent stack over the flattened frequency features.
	in := 32 * h
	_ = w
	for i := 0; i < ds2RNNs; i++ {
		ops = append(ops, &kernels.Op{
			Name: opName("rnn", i), Kind: kernels.OpRNNSeq,
			T: ds2Frames, Input: in, Hidden: ds2Hidden,
		})
		in = ds2Hidden
	}
	ops = append(ops,
		&kernels.Op{Name: "fc", Kind: kernels.OpDense, In: ds2Hidden, Out: ds2Symbols, Rows: ds2Frames},
		&kernels.Op{Name: "ctc", Kind: kernels.OpLoss, Rows: ds2Frames, Out: ds2Symbols},
	)
	return ops
}
