package models

import (
	"fmt"

	"tbd/internal/data"
	"tbd/internal/kernels"
)

// YOLO9000 is the real-time detector the paper names as planned future
// work for the suite ("we plan to add YOLO9000..."). It is provided as an
// extension benchmark: a YOLOv2 graph with the Darknet-19 backbone
// (19 conv layers) and the anchor-box detection head, on Pascal VOC at
// the standard 416x416 training resolution. Unlike Faster R-CNN it is a
// single-network detector, so it trains at larger batches with no
// host-side proposal stage.
func YOLO9000() *Model {
	return &Model{
		Name:          "YOLO9000",
		Application:   "Object detection",
		NumLayers:     19,
		DominantLayer: "CONV",
		Frameworks:    []string{"TensorFlow", "MXNet"},
		Dataset:       data.PascalVOC2007,
		BatchSizes:    []int{4, 8, 16, 32},
		BatchUnit:     "samples",
		BuildOps:      buildYOLO9000,
	}
}

// darknetBlock appends conv/bn/relu triples with interleaved 1x1
// bottlenecks, the Darknet-19 stage pattern.
func darknetBlock(ops *[]*kernels.Op, name string, inC, outC, h, w, reps int) (int, int) {
	c := inC
	for i := 0; i < reps; i++ {
		k, oc := 3, outC
		if i%2 == 1 { // alternating 1x1 bottleneck
			k, oc = 1, outC/2
		}
		h, w = convBNRelu(ops, fmt.Sprintf("%s.conv%d", name, i+1), c, oc, h, w, k, 1, k/2)
		c = oc
	}
	return h, w
}

func buildYOLO9000() []*kernels.Op {
	var ops []*kernels.Op
	h, w := convBNRelu(&ops, "conv1", 3, 32, 416, 416, 3, 1, 1)
	pool := func(name string, c int) {
		ops = append(ops, &kernels.Op{Name: name, Kind: kernels.OpMaxPool, InC: c, H: h, W: w, K: 2, Stride: 2})
		h, w = h/2, w/2
	}
	pool("pool1", 32)
	h, w = convBNRelu(&ops, "conv2", 32, 64, h, w, 3, 1, 1)
	pool("pool2", 64)
	h, w = darknetBlock(&ops, "stage3", 64, 128, h, w, 3)
	pool("pool3", 128)
	h, w = darknetBlock(&ops, "stage4", 128, 256, h, w, 3)
	pool("pool4", 256)
	h, w = darknetBlock(&ops, "stage5", 256, 512, h, w, 5)
	pool("pool5", 512)
	h, w = darknetBlock(&ops, "stage6", 512, 1024, h, w, 5)

	// Detection head: two 3x3 convs and the anchor output (5 anchors x
	// (5 box terms + 20 classes) = 125 channels on the 13x13 grid).
	h, w = convBNRelu(&ops, "head.conv1", 1024, 1024, h, w, 3, 1, 1)
	h, w = convBNRelu(&ops, "head.conv2", 1024, 1024, h, w, 3, 1, 1)
	ops = append(ops,
		&kernels.Op{Name: "head.out", Kind: kernels.OpConv2D, InC: 1024, OutC: 125, H: h, W: w, K: 1, Stride: 1, Pad: 0},
		&kernels.Op{Name: "head.loss", Kind: kernels.OpLoss, Elems: 125 * h * w},
	)
	return ops
}

// Extensions lists benchmarks beyond the paper's eight — models the
// paper names as future additions.
func Extensions() []*Model {
	return []*Model{YOLO9000()}
}

// LookupAny resolves a benchmark from the suite or the extensions.
func LookupAny(name string) (*Model, error) {
	if m, err := Lookup(name); err == nil {
		return m, nil
	}
	for _, m := range Extensions() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown benchmark %q", name)
}
