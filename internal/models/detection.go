package models

import (
	"tbd/internal/data"
	"tbd/internal/kernels"
)

// FasterRCNN is the object-detection benchmark: a two-network detector
// (region proposal network + classification head) sharing a ResNet-101
// convolution stack, trained on Pascal VOC 2007. The paper trains it at a
// fixed batch of one image; host-side proposal handling makes it the
// second-highest CPU consumer in Figure 7 (13.25% on TensorFlow).
func FasterRCNN() *Model {
	return &Model{
		Name:          "Faster R-CNN",
		Application:   "Object detection",
		NumLayers:     101,
		DominantLayer: "CONV",
		Frameworks:    []string{"TensorFlow", "MXNet"},
		Dataset:       data.PascalVOC2007,
		BatchSizes:    []int{1},
		BatchUnit:     "samples",
		SpeedFactor:   map[string]float64{"TensorFlow": 0.97, "MXNet": 1.0},
		HostCPUSecPerSample: map[string]float64{
			// Proposal generation, NMS, and ROI bookkeeping run on the
			// host; TensorFlow's implementation keeps more of it in
			// Python (Figure 7: 13.25% vs 3.64%).
			"TensorFlow": 1.1,
			"MXNet":      0.45,
		},
		BuildOps: buildFasterRCNN,
	}
}

const (
	rcnnProposals = 256 // sampled ROIs per image for the detection head
	rcnnClasses   = 21  // Pascal VOC's 20 classes + background
)

func buildFasterRCNN() []*kernels.Op {
	// Shared convolution stack: ResNet-101 stages 1-4 on the detector's
	// upscaled input (~600x1000 for VOC images).
	ops := resNetOps([4]int{3, 4, 23, 3}, 600, 1000, false)

	// Region proposal network on the stage-4 feature map (~38x63 at
	// 1/16 scale).
	fh, fw := 38, 63
	ops = append(ops,
		&kernels.Op{Name: "rpn.conv", Kind: kernels.OpConv2D, InC: 1024, OutC: 512, H: fh, W: fw, K: 3, Stride: 1, Pad: 1},
		&kernels.Op{Name: "rpn.relu", Kind: kernels.OpActivation, Channels: 512, H: fh, W: fw},
		&kernels.Op{Name: "rpn.cls", Kind: kernels.OpConv2D, InC: 512, OutC: 18, H: fh, W: fw, K: 1, Stride: 1, Pad: 0},
		&kernels.Op{Name: "rpn.bbox", Kind: kernels.OpConv2D, InC: 512, OutC: 36, H: fh, W: fw, K: 1, Stride: 1, Pad: 0},
		&kernels.Op{Name: "rpn.loss", Kind: kernels.OpLoss, Elems: fh * fw * 18},
	)

	// ROI pooling + per-proposal detection head (dense over pooled 7x7
	// features through the stage-5 equivalent).
	ops = append(ops,
		&kernels.Op{Name: "roi.pool", Kind: kernels.OpAvgPool, InC: 1024, H: fh, W: fw, K: 2, Stride: 2},
		&kernels.Op{Name: "head.fc1", Kind: kernels.OpDense, In: 1024 * 7 * 7, Out: 2048, Rows: rcnnProposals},
		&kernels.Op{Name: "head.relu1", Kind: kernels.OpActivation, Elems: rcnnProposals * 2048},
		&kernels.Op{Name: "head.cls", Kind: kernels.OpDense, In: 2048, Out: rcnnClasses, Rows: rcnnProposals},
		&kernels.Op{Name: "head.bbox", Kind: kernels.OpDense, In: 2048, Out: 4 * rcnnClasses, Rows: rcnnProposals},
		&kernels.Op{Name: "head.loss", Kind: kernels.OpLoss, Rows: rcnnProposals, Out: rcnnClasses},
	)
	return ops
}
