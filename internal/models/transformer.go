package models

import (
	"tbd/internal/data"
	"tbd/internal/kernels"
)

// Transformer geometry: the base configuration of Vaswani et al.
const (
	tfmDim    = 512
	tfmHeads  = 8
	tfmFFN    = 2048
	tfmBlocks = 6 // encoder blocks + 6 decoder blocks = 12 layers (Table 2)
	tfmSeqLen = 25
)

// Transformer is the attention-based translation benchmark (TensorFlow
// only in the paper). Its batch sweep is measured in tokens (64-4096,
// Figure 4d), and its attention layers keep the GPU busy where the LSTM
// seq2seq models cannot (Observation 5).
func Transformer() *Model {
	return &Model{
		Name:                "Transformer",
		Application:         "Machine translation",
		NumLayers:           12,
		DominantLayer:       "Attention",
		Frameworks:          []string{"TensorFlow"},
		Dataset:             data.IWSLT15,
		BatchSizes:          []int{64, 256, 1024, 2048, 4096},
		BatchUnit:           "tokens",
		SamplesPerBatchUnit: tfmSeqLen,
		BuildOps:            buildTransformer,
	}
}

// transformerBlock appends one attention block: self-attention, residual
// layer-norm, position-wise FFN, residual layer-norm.
func transformerBlock(ops *[]*kernels.Op, name string) {
	*ops = append(*ops,
		&kernels.Op{Name: name + ".attn", Kind: kernels.OpAttention, Dim: tfmDim, Heads: tfmHeads, SeqLen: tfmSeqLen},
		&kernels.Op{Name: name + ".add1", Kind: kernels.OpElemAdd, Rows: tfmSeqLen, Out: tfmDim},
		&kernels.Op{Name: name + ".ln1", Kind: kernels.OpLayerNorm, Channels: tfmDim, Elems: tfmSeqLen * tfmDim},
		&kernels.Op{Name: name + ".ffn1", Kind: kernels.OpDense, In: tfmDim, Out: tfmFFN, Rows: tfmSeqLen},
		&kernels.Op{Name: name + ".ffn.relu", Kind: kernels.OpActivation, Elems: tfmSeqLen * tfmFFN},
		&kernels.Op{Name: name + ".ffn2", Kind: kernels.OpDense, In: tfmFFN, Out: tfmDim, Rows: tfmSeqLen},
		&kernels.Op{Name: name + ".add2", Kind: kernels.OpElemAdd, Rows: tfmSeqLen, Out: tfmDim},
		&kernels.Op{Name: name + ".ln2", Kind: kernels.OpLayerNorm, Channels: tfmDim, Elems: tfmSeqLen * tfmDim},
	)
}

func buildTransformer() []*kernels.Op {
	var ops []*kernels.Op
	vocab := data.IWSLT15.VocabSize
	ops = append(ops, &kernels.Op{Name: "embed", Kind: kernels.OpEmbedding, Vocab: vocab, Dim: tfmDim, T: tfmSeqLen})
	for i := 0; i < tfmBlocks; i++ {
		transformerBlock(&ops, opName("enc.block", i))
	}
	ops = append(ops, &kernels.Op{Name: "dec.embed", Kind: kernels.OpEmbedding, Vocab: vocab, Dim: tfmDim, T: tfmSeqLen})
	for i := 0; i < tfmBlocks; i++ {
		transformerBlock(&ops, opName("dec.block", i))
	}
	ops = append(ops,
		&kernels.Op{Name: "proj", Kind: kernels.OpDense, In: tfmDim, Out: vocab, Rows: tfmSeqLen},
		&kernels.Op{Name: "loss", Kind: kernels.OpLoss, Rows: tfmSeqLen, Out: vocab},
	)
	return ops
}
