package models

import (
	"fmt"

	"tbd/internal/graph"
	"tbd/internal/layers"
	"tbd/internal/tensor"
)

// Numeric twins: scaled-down versions of the benchmark models that
// genuinely train on the synthetic datasets using the same layer
// implementations the paper-scale graphs describe. They back the
// Figure 2 convergence curves and serve as end-to-end tests of the
// training engine. Scale substitutions are documented in DESIGN.md.

// convNoBiasAct is NewConv2DNoBias with a fused activation epilogue — for
// branches where the conv feeds its activation directly (no BatchNorm in
// between).
func convNoBiasAct(name string, inC, outC, k, stride, pad int, act tensor.ActKind, rng *tensor.RNG) *layers.Conv2D {
	c := layers.NewConv2DNoBias(name, inC, outC, k, stride, pad, rng)
	c.Act = act
	return c
}

// NumericResNet builds a small residual CNN classifier over c×size×size
// images, the twin of ResNet-50 (bottleneck-free basic blocks at reduced
// width/depth).
func NumericResNet(rng *tensor.RNG, c, size, classes int) *graph.Network {
	width := 8
	block := func(name string, inC int) layers.Layer {
		body := layers.NewSequential(name+".body",
			layers.NewConv2DNoBias(name+".conv1", inC, width, 3, 1, 1, rng),
			layers.NewBatchNorm2D(name+".bn1", width),
			layers.NewReLU(name+".relu1"),
			layers.NewConv2DNoBias(name+".conv2", width, width, 3, 1, 1, rng),
			layers.NewBatchNorm2D(name+".bn2", width),
		)
		var proj layers.Layer
		if inC != width {
			proj = layers.NewConv2DNoBias(name+".proj", inC, width, 1, 1, 0, rng)
		}
		return layers.NewResidual(name, body, proj)
	}
	root := layers.NewSequential("resnet-twin",
		block("block1", c),
		layers.NewReLU("relu1"),
		block("block2", width),
		layers.NewReLU("relu2"),
		layers.NewGlobalAvgPool2D("gap"),
		layers.NewDense("fc", width, classes, rng),
	)
	return graph.New("ResNet-twin", root)
}

// NumericInception builds the Inception-v3 twin: a conv stem followed by
// a real mixed block — parallel 1x1, 3x3, and pooled branches joined by
// channel concatenation, exactly the Inception topology at reduced scale.
func NumericInception(rng *tensor.RNG, c, size, classes int) *graph.Network {
	mixed := layers.NewConcatChannels("mixed",
		layers.NewSequential("b1",
			layers.NewConv2DNoBias("b1.1x1", 8, 4, 1, 1, 0, rng),
			layers.NewBatchNorm2D("b1.bn", 4),
			layers.NewReLU("b1.relu"),
		),
		layers.NewSequential("b2",
			// No BatchNorm between this 1x1 and its ReLU, so the
			// activation fuses into the conv epilogue.
			convNoBiasAct("b2.1x1", 8, 4, 1, 1, 0, tensor.ActReLU, rng),
			layers.NewConv2DNoBias("b2.3x3", 4, 6, 3, 1, 1, rng),
			layers.NewBatchNorm2D("b2.bn", 6),
			layers.NewReLU("b2.relu2"),
		),
		layers.NewSequential("b3",
			layers.NewAvgPool2D("b3.pool", 3, 1),
			convNoBiasAct("b3.1x1", 8, 4, 1, 1, 1, tensor.ActReLU, rng),
		),
	)
	root := layers.NewSequential("inception-twin",
		layers.NewConv2DNoBias("stem", c, 8, 3, 1, 1, rng),
		layers.NewBatchNorm2D("stem.bn", 8),
		layers.NewReLU("stem.relu"),
		mixed,
		layers.NewGlobalAvgPool2D("gap"),
		layers.NewDense("fc", 14, classes, rng),
	)
	return graph.New("Inception-twin", root)
}

// NumericSeq2Seq builds the Seq2Seq twin: embedding, a two-layer LSTM
// stack, and a per-token vocabulary projection, trained on the synthetic
// translation task (the position-dependent token mapping is learnable by
// this encoder-tagger formulation while exercising the same LSTM layers).
func NumericSeq2Seq(rng *tensor.RNG, vocab, dim, hidden int) *graph.Network {
	root := layers.NewSequential("seq2seq-twin",
		layers.NewEmbedding("embed", vocab, dim, rng),
		layers.NewLSTM("lstm1", dim, hidden, rng),
		layers.NewLSTM("lstm2", hidden, hidden, rng),
		layers.NewDense("proj", hidden, vocab, rng),
	)
	return graph.New("Seq2Seq-twin", root)
}

// NumericTransformer builds the Transformer twin: embedding + positional
// encoding, one residual attention block with layer norm and FFN, and the
// vocabulary projection.
func NumericTransformer(rng *tensor.RNG, vocab, dim, heads int) *graph.Network {
	// ffn1's ReLU rides in the GEMM epilogue (bit-identical to the former
	// standalone layer, one less full-tensor pass each direction).
	ffn := layers.NewSequential("ffn",
		layers.NewDenseAct("ffn1", dim, 2*dim, tensor.ActReLU, rng),
		layers.NewDense("ffn2", 2*dim, dim, rng),
	)
	root := layers.NewSequential("transformer-twin",
		layers.NewEmbedding("embed", vocab, dim, rng),
		layers.NewPositionalEncoding("pe", dim),
		layers.NewResidual("block.attn", layers.NewMultiHeadAttention("mha", dim, heads, false, rng), nil),
		layers.NewLayerNorm("ln1", dim),
		layers.NewResidual("block.ffn", ffn, nil),
		layers.NewLayerNorm("ln2", dim),
		layers.NewDense("proj", dim, vocab, rng),
	)
	return graph.New("Transformer-twin", root)
}

// NumericDeepSpeech builds the Deep Speech 2 twin: a recurrent stack over
// audio feature frames with a per-frame symbol classifier (framewise
// cross-entropy on the aligned synthetic audio; see NumericDeepSpeechCTC
// for the bidirectional CTC variant).
func NumericDeepSpeech(rng *tensor.RNG, features, hidden, symbols int) *graph.Network {
	root := layers.NewSequential("ds2-twin",
		layers.NewRNN("rnn1", features, hidden, rng),
		layers.NewRNN("rnn2", hidden, hidden, rng),
		layers.NewGRU("gru", hidden, hidden, rng),
		layers.NewDense("fc", hidden, symbols, rng),
	)
	return graph.New("DeepSpeech2-twin", root)
}

// NumericDeepSpeechCTC builds the faithful Deep Speech 2 twin:
// bidirectional vanilla-RNN layers over feature frames with a CTC output
// head (symbols includes the blank at index 0). Train it with
// DeepSpeechCTCStep.
func NumericDeepSpeechCTC(rng *tensor.RNG, features, hidden, symbols int) *graph.Network {
	root := layers.NewSequential("ds2-ctc-twin",
		layers.NewBiRNN("birnn1", features, hidden, rng),
		layers.NewBiRNN("birnn2", 2*hidden, hidden, rng),
		layers.NewDense("fc", 2*hidden, symbols, rng),
	)
	return graph.New("DeepSpeech2-CTC-twin", root)
}

// NumericA3CPolicy builds the A3C twin's actor-critic network over Pong's
// 6-feature state: a shared trunk with a 3-way policy head and a value
// head emitted as 4 outputs (logits[0:3], value[3]).
func NumericA3CPolicy(rng *tensor.RNG) *graph.Network {
	root := layers.NewSequential("a3c-twin",
		layers.NewDenseAct("fc1", 6, 32, tensor.ActTanh, rng),
		layers.NewDense("heads", 32, 4, rng),
	)
	return graph.New("A3C-twin", root)
}

// NumericA3CPixelPolicy builds the pixel-input variant matching the
// paper's 4-layer conv architecture (4×size×size frame stacks).
func NumericA3CPixelPolicy(rng *tensor.RNG, size int) *graph.Network {
	h1 := (size-8)/4 + 1
	h2 := (h1-4)/2 + 1
	root := layers.NewSequential("a3c-pixel-twin",
		layers.NewConv2DAct("conv1", 4, 8, 8, 4, 0, tensor.ActReLU, rng),
		layers.NewConv2DAct("conv2", 8, 16, 4, 2, 0, tensor.ActReLU, rng),
		layers.NewFlatten("flat"),
		layers.NewDenseAct("fc", 16*h2*h2, 64, tensor.ActReLU, rng),
		layers.NewDense("heads", 64, 4, rng),
	)
	return graph.New("A3C-pixel-twin", root)
}

// NumericWGAN builds the WGAN twin's generator (latent -> image) and
// critic (image -> score) networks at reduced scale.
func NumericWGAN(rng *tensor.RNG, latent, c, size int) (gen, critic *graph.Network) {
	gen = graph.New("WGAN-gen", layers.NewSequential("gen",
		layers.NewDenseAct("fc1", latent, 32, tensor.ActReLU, rng),
		layers.NewDenseAct("fc2", 32, c*size*size, tensor.ActTanh, rng),
	))
	critic = graph.New("WGAN-critic", layers.NewSequential("critic",
		layers.NewDense("fc1", c*size*size, 32, rng),
		layers.NewLeakyReLU("lrelu", 0.2),
		layers.NewDense("fc2", 32, 1, rng),
	))
	return gen, critic
}

// NumericDetector builds the Faster R-CNN twin: a shared conv trunk with
// a classification head (object class) and a localization head (box
// center regression), trained jointly like the detector's multi-task
// loss.
type NumericDetector struct {
	Trunk   *layers.Sequential
	ClsHead *layers.Dense
	BoxHead *layers.Dense
}

// NewNumericDetector constructs the detection twin for c×size×size
// inputs over the given number of object classes.
func NewNumericDetector(rng *tensor.RNG, c, size, classes int) *NumericDetector {
	trunk := layers.NewSequential("trunk",
		layers.NewConv2DAct("conv1", c, 8, 3, 1, 1, tensor.ActReLU, rng),
		layers.NewMaxPool2D("pool", 2, 2),
		layers.NewFlatten("flat"),
	)
	feat := 8 * (size / 2) * (size / 2)
	return &NumericDetector{
		Trunk:   trunk,
		ClsHead: layers.NewDense("cls", feat, classes, rng),
		BoxHead: layers.NewDense("box", feat, 2, rng),
	}
}

// Params returns all detector parameters.
func (d *NumericDetector) Params() []*layers.Param {
	ps := d.Trunk.Params()
	ps = append(ps, d.ClsHead.Params()...)
	ps = append(ps, d.BoxHead.Params()...)
	return ps
}

// Forward runs the trunk and both heads.
func (d *NumericDetector) Forward(x *tensor.Tensor, train bool) (cls, box *tensor.Tensor) {
	f := d.Trunk.Forward(x, train)
	return d.ClsHead.Forward(f, train), d.BoxHead.Forward(f, train)
}

// Backward propagates both heads' gradients through the shared trunk.
func (d *NumericDetector) Backward(gCls, gBox *tensor.Tensor) {
	gf := d.ClsHead.Backward(gCls)
	gf2 := d.BoxHead.Backward(gBox)
	tensor.AddInPlace(gf, gf2)
	d.Trunk.Backward(gf)
}

// MSELoss computes mean squared error and its gradient for the box head.
func MSELoss(pred *tensor.Tensor, target []float32) (float32, *tensor.Tensor) {
	if pred.Numel() != len(target) {
		panic(fmt.Sprintf("models: MSE size mismatch %d vs %d", pred.Numel(), len(target)))
	}
	grad := tensor.New(pred.Shape()...)
	var loss float64
	n := float32(pred.Numel())
	for i, p := range pred.Data() {
		d := p - target[i]
		loss += float64(d) * float64(d)
		grad.Data()[i] = 2 * d / n
	}
	return float32(loss) / n, grad
}
