package models

import (
	"fmt"

	"tbd/internal/data"
	"tbd/internal/kernels"
)

// convBNRelu appends a conv + batch-norm + ReLU triple, the basic CNN
// unit, returning the output spatial size.
func convBNRelu(ops *[]*kernels.Op, name string, inC, outC, h, w, k, stride, pad int) (int, int) {
	*ops = append(*ops, &kernels.Op{
		Name: name, Kind: kernels.OpConv2D,
		InC: inC, OutC: outC, H: h, W: w, K: k, Stride: stride, Pad: pad,
	})
	oh := (h+2*pad-k)/stride + 1
	ow := (w+2*pad-k)/stride + 1
	*ops = append(*ops,
		&kernels.Op{Name: name + ".bn", Kind: kernels.OpBatchNorm, Channels: outC, H: oh, W: ow},
		&kernels.Op{Name: name + ".relu", Kind: kernels.OpActivation, Channels: outC, H: oh, W: ow},
	)
	return oh, ow
}

// bottleneck appends one ResNet bottleneck block (1x1 reduce, 3x3, 1x1
// expand, optional projection shortcut) and returns the output size.
func bottleneck(ops *[]*kernels.Op, name string, inC, midC, outC, h, w, stride int, project bool) (int, int) {
	oh, ow := convBNRelu(ops, name+".conv1", inC, midC, h, w, 1, 1, 0)
	oh, ow = convBNRelu(ops, name+".conv2", midC, midC, oh, ow, 3, stride, 1)
	*ops = append(*ops, &kernels.Op{
		Name: name + ".conv3", Kind: kernels.OpConv2D,
		InC: midC, OutC: outC, H: oh, W: ow, K: 1, Stride: 1, Pad: 0,
	})
	*ops = append(*ops, &kernels.Op{Name: name + ".bn3", Kind: kernels.OpBatchNorm, Channels: outC, H: oh, W: ow})
	if project {
		*ops = append(*ops, &kernels.Op{
			Name: name + ".proj", Kind: kernels.OpConv2D,
			InC: inC, OutC: outC, H: h, W: w, K: 1, Stride: stride, Pad: 0,
		})
	}
	*ops = append(*ops,
		&kernels.Op{Name: name + ".add", Kind: kernels.OpElemAdd, Channels: outC, H: oh, W: ow},
		&kernels.Op{Name: name + ".relu", Kind: kernels.OpActivation, Channels: outC, H: oh, W: ow},
	)
	return oh, ow
}

// resNetOps builds a ResNet op graph with the given stage depths (ResNet-50
// is {3,4,6,3}; the Faster R-CNN backbone uses ResNet-101's {3,4,23,3}).
// inputH/inputW allow the detector's larger images.
func resNetOps(blocks [4]int, inputH, inputW int, includeHead bool) []*kernels.Op {
	var ops []*kernels.Op
	h, w := convBNRelu(&ops, "conv1", 3, 64, inputH, inputW, 7, 2, 3)
	ops = append(ops, &kernels.Op{Name: "pool1", Kind: kernels.OpMaxPool, InC: 64, H: h, W: w, K: 3, Stride: 2})
	h, w = (h-3)/2+1, (w-3)/2+1

	inC := 64
	mids := [4]int{64, 128, 256, 512}
	outs := [4]int{256, 512, 1024, 2048}
	for stage := 0; stage < 4; stage++ {
		for b := 0; b < blocks[stage]; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("stage%d.block%d", stage+1, b+1)
			h, w = bottleneck(&ops, name, inC, mids[stage], outs[stage], h, w, stride, b == 0)
			inC = outs[stage]
		}
	}
	if includeHead {
		ops = append(ops,
			&kernels.Op{Name: "avgpool", Kind: kernels.OpAvgPool, InC: 2048, H: h, W: w, K: h, Stride: h},
			&kernels.Op{Name: "fc", Kind: kernels.OpDense, In: 2048, Out: 1000, Rows: 1},
			&kernels.Op{Name: "loss", Kind: kernels.OpLoss, Rows: 1, Out: 1000},
		)
	}
	return ops
}

// ResNet50 is the 50-layer residual image classifier (He et al.), trained
// on ImageNet1K in the paper on all three frameworks.
func ResNet50() *Model {
	return &Model{
		Name:          "ResNet-50",
		Application:   "Image classification",
		NumLayers:     50,
		DominantLayer: "CONV",
		Frameworks:    []string{"TensorFlow", "MXNet", "CNTK"},
		Dataset:       data.ImageNet1K,
		BatchSizes:    []int{4, 8, 16, 32, 64},
		BatchUnit:     "samples",
		// Observation 3 / Figure 4a: MXNet's image models lead.
		SpeedFactor: map[string]float64{"MXNet": 1.12, "TensorFlow": 1.0, "CNTK": 0.97},
		BuildOps: func() []*kernels.Op {
			// The suite trains at 224x224 crops of the 256x256 corpus.
			return resNetOps([4]int{3, 4, 6, 3}, 224, 224, true)
		},
	}
}
