package models

import (
	"fmt"

	"tbd/internal/data"
	"tbd/internal/kernels"
)

// WGAN geometry: Gulrajani et al.'s gradient-penalty WGAN with a
// 4-residual-block generator and 4-residual-block critic on 64x64
// Downsampled ImageNet (the paper's footnote: "a small CNN containing 4
// residual blocks" for each network — 14+14 layers in Table 2).
const (
	wganSize     = 64
	wganChannels = 128
	wganBlocks   = 4
)

// WGAN is the adversarial-learning benchmark (TensorFlow only). One
// training iteration runs both networks: the critic on real and generated
// batches (plus the gradient-penalty pass) and the generator.
func WGAN() *Model {
	return &Model{
		Name:          "WGAN",
		Application:   "Adversarial learning",
		NumLayers:     28,
		DominantLayer: "CONV",
		Frameworks:    []string{"TensorFlow"},
		Dataset:       data.DownsampledImageNet,
		BatchSizes:    []int{4, 8, 16, 32, 64},
		BatchUnit:     "samples",
		BuildOps:      buildWGAN,
	}
}

// wganResBlock appends one pre-activation residual block: two 3x3 convs
// with normalization, plus the identity skip.
func wganResBlock(ops *[]*kernels.Op, name string, c, h, w int) {
	convBNRelu(ops, name+".conv1", c, c, h, w, 3, 1, 1)
	convBNRelu(ops, name+".conv2", c, c, h, w, 3, 1, 1)
	*ops = append(*ops, &kernels.Op{Name: name + ".add", Kind: kernels.OpElemAdd, Channels: c, H: h, W: w})
}

func buildWGAN() []*kernels.Op {
	var ops []*kernels.Op
	// Generator: latent projection then residual blocks at 64x64.
	ops = append(ops, &kernels.Op{Name: "gen.fc", Kind: kernels.OpDense, In: 128, Out: wganChannels * 8 * 8, Rows: 1})
	for i := 0; i < wganBlocks; i++ {
		wganResBlock(&ops, fmt.Sprintf("gen.block%d", i+1), wganChannels, wganSize, wganSize)
	}
	ops = append(ops, &kernels.Op{
		Name: "gen.out", Kind: kernels.OpConv2D,
		InC: wganChannels, OutC: 3, H: wganSize, W: wganSize, K: 3, Stride: 1, Pad: 1,
	})

	// Critic: residual blocks then the scalar score. One iteration
	// evaluates the critic twice (real + fake) plus the gradient-penalty
	// pass; emit those as separate op groups so kernel counts and memory
	// match the real cadence.
	for _, pass := range []string{"crit.real", "crit.fake", "crit.gp"} {
		ops = append(ops, &kernels.Op{
			Name: pass + ".in", Kind: kernels.OpConv2D,
			InC: 3, OutC: wganChannels, H: wganSize, W: wganSize, K: 3, Stride: 1, Pad: 1,
		})
		for i := 0; i < wganBlocks; i++ {
			wganResBlock(&ops, fmt.Sprintf("%s.block%d", pass, i+1), wganChannels, wganSize/2, wganSize/2)
		}
		ops = append(ops, &kernels.Op{Name: pass + ".score", Kind: kernels.OpDense, In: wganChannels * 8 * 8, Out: 1, Rows: 1})
	}
	ops = append(ops, &kernels.Op{Name: "wloss", Kind: kernels.OpLoss, Elems: 4})
	return ops
}
