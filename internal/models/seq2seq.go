package models

import (
	"fmt"

	"tbd/internal/data"
	"tbd/internal/kernels"
)

// seq2seqDims fixes the paper-scale GNMT-style geometry shared by the NMT
// (TensorFlow) and Sockeye (MXNet) implementations.
const (
	s2sEmbed  = 512
	s2sHidden = 512
	s2sLayers = 2 // per side: 2 encoder + 2 decoder LSTM layers
	s2sSeqLen = 25
)

// Seq2Seq is the LSTM-based machine-translation benchmark: NMT on
// TensorFlow and Sockeye on MXNet (Table 2 lists 5 layers, dominant layer
// LSTM). It is the workload behind Observations 2, 5, and 7: unfused
// per-timestep kernels that cannot saturate the GPU.
func Seq2Seq() *Model {
	return &Model{
		Name:          "Seq2Seq",
		Application:   "Machine translation",
		NumLayers:     5,
		DominantLayer: "LSTM",
		Frameworks:    []string{"TensorFlow", "MXNet"},
		Variant:       map[string]string{"TensorFlow": "NMT", "MXNet": "Sockeye"},
		Dataset:       data.IWSLT15,
		BatchSizes:    []int{4, 8, 16, 32, 64, 128},
		// TensorFlow's NMT fits batch 128 in 8 GB where Sockeye tops out
		// at 64 (§4.2.1, Observation 3).
		MaxBatch:  map[string]int{"TensorFlow": 128, "MXNet": 64},
		BatchUnit: "samples",
		SpeedFactor: map[string]float64{
			"TensorFlow": 1.0,
			"MXNet":      0.78, // Sockeye trails NMT at equal batch
		},
		BuildOps: buildSeq2Seq,
	}
}

func buildSeq2Seq() []*kernels.Op {
	var ops []*kernels.Op
	vocab := data.IWSLT15.VocabSize
	// Source embedding + encoder stack.
	ops = append(ops, &kernels.Op{Name: "enc.embed", Kind: kernels.OpEmbedding, Vocab: vocab, Dim: s2sEmbed, T: s2sSeqLen})
	in := s2sEmbed
	for i := 0; i < s2sLayers; i++ {
		ops = append(ops, &kernels.Op{
			Name: opName("enc.lstm", i), Kind: kernels.OpLSTMSeq,
			T: s2sSeqLen, Input: in, Hidden: s2sHidden,
		})
		in = s2sHidden
	}
	// Target embedding + decoder stack.
	ops = append(ops, &kernels.Op{Name: "dec.embed", Kind: kernels.OpEmbedding, Vocab: vocab, Dim: s2sEmbed, T: s2sSeqLen})
	in = s2sEmbed
	for i := 0; i < s2sLayers; i++ {
		ops = append(ops, &kernels.Op{
			Name: opName("dec.lstm", i), Kind: kernels.OpLSTMSeq,
			T: s2sSeqLen, Input: in, Hidden: s2sHidden,
		})
		in = s2sHidden
	}
	// Output projection over the 17188-token vocabulary, per token.
	ops = append(ops,
		&kernels.Op{Name: "proj", Kind: kernels.OpDense, In: s2sHidden, Out: vocab, Rows: s2sSeqLen},
		&kernels.Op{Name: "loss", Kind: kernels.OpLoss, Rows: s2sSeqLen, Out: vocab},
	)
	return ops
}

func opName(prefix string, i int) string {
	return fmt.Sprintf("%s%d", prefix, i)
}
