package models

import (
	"testing"

	"tbd/internal/atari"
	"tbd/internal/data"
	"tbd/internal/device"
	"tbd/internal/framework"
	"tbd/internal/graph"
	"tbd/internal/kernels"
	"tbd/internal/layers"
	"tbd/internal/memprof"
	"tbd/internal/optim"
	"tbd/internal/sim"
	"tbd/internal/tensor"
)

func TestSuiteMatchesTable2(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d models, want 8 (Table 2)", len(suite))
	}
	want := map[string]struct {
		app      string
		dominant string
		dataset  string
	}{
		"ResNet-50":     {"Image classification", "CONV", "ImageNet1K"},
		"Inception-v3":  {"Image classification", "CONV", "ImageNet1K"},
		"Seq2Seq":       {"Machine translation", "LSTM", "IWSLT15"},
		"Transformer":   {"Machine translation", "Attention", "IWSLT15"},
		"Faster R-CNN":  {"Object detection", "CONV", "Pascal VOC 2007"},
		"Deep Speech 2": {"Speech recognition", "RNN", "LibriSpeech"},
		"WGAN":          {"Adversarial learning", "CONV", "Downsampled ImageNet"},
		"A3C":           {"Deep reinforcement learning", "CONV", "Atari 2600"},
	}
	apps := map[string]bool{}
	for _, m := range suite {
		w, ok := want[m.Name]
		if !ok {
			t.Fatalf("unexpected model %q", m.Name)
		}
		if m.Application != w.app || m.DominantLayer != w.dominant || m.Dataset.Name != w.dataset {
			t.Fatalf("%s: got (%s, %s, %s)", m.Name, m.Application, m.DominantLayer, m.Dataset.Name)
		}
		apps[m.Application] = true
	}
	if len(apps) != 6 {
		t.Fatalf("suite covers %d application domains, want 6", len(apps))
	}
}

func TestFrameworkAvailabilityMatchesTable2(t *testing.T) {
	cases := map[string][]string{
		"ResNet-50":     {"TensorFlow", "MXNet", "CNTK"},
		"Inception-v3":  {"TensorFlow", "MXNet", "CNTK"},
		"Seq2Seq":       {"TensorFlow", "MXNet"},
		"Transformer":   {"TensorFlow"},
		"Faster R-CNN":  {"TensorFlow", "MXNet"},
		"Deep Speech 2": {"MXNet"},
		"WGAN":          {"TensorFlow"},
		"A3C":           {"MXNet"},
	}
	for name, fws := range cases {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, fw := range fws {
			if !m.SupportsFramework(fw) {
				t.Fatalf("%s should support %s", name, fw)
			}
		}
		if len(m.Frameworks) != len(fws) {
			t.Fatalf("%s supports %d frameworks, want %d", name, len(m.Frameworks), len(fws))
		}
	}
	// Variant names: NMT on TF, Sockeye on MXNet.
	s2s, _ := Lookup("Seq2Seq")
	if s2s.ImplName("TensorFlow") != "NMT" || s2s.ImplName("MXNet") != "Sockeye" {
		t.Fatal("seq2seq implementation names wrong")
	}
	if s2s.ImplName("CNTK") != "Seq2Seq" {
		t.Fatal("fallback impl name wrong")
	}
}

func TestSeq2SeqBatchCaps(t *testing.T) {
	// §4.2.1: NMT trains at up to 128, Sockeye only 64, on 8 GB.
	m, _ := Lookup("Seq2Seq")
	tfB := m.BatchesFor("TensorFlow")
	mxB := m.BatchesFor("MXNet")
	if tfB[len(tfB)-1] != 128 {
		t.Fatalf("NMT max batch %d, want 128", tfB[len(tfB)-1])
	}
	if mxB[len(mxB)-1] != 64 {
		t.Fatalf("Sockeye max batch %d, want 64", mxB[len(mxB)-1])
	}
}

func TestTransformerBatchUnitIsTokens(t *testing.T) {
	m, _ := Lookup("Transformer")
	if m.BatchUnit != "tokens" {
		t.Fatal("Transformer sweep must be in tokens (Figure 4d)")
	}
	if m.SamplesForBatch(4096) != 4096/25 {
		t.Fatalf("token conversion wrong: %d", m.SamplesForBatch(4096))
	}
	if m.SamplesForBatch(10) != 1 {
		t.Fatal("token conversion must floor at one sentence")
	}
	b := m.BatchSizes
	if b[0] != 64 || b[len(b)-1] != 4096 {
		t.Fatalf("Transformer sweep %v", b)
	}
}

func TestResNet50ParameterCount(t *testing.T) {
	m, _ := Lookup("ResNet-50")
	var params int64
	for _, op := range m.Ops() {
		params += op.ParamElems()
	}
	// Real ResNet-50 has 25.6M parameters; the op graph should land in
	// the same ballpark.
	if params < 20e6 || params > 33e6 {
		t.Fatalf("ResNet-50 params = %.1fM, want ~25M", float64(params)/1e6)
	}
}

func TestResNet50PerIterationFLOPs(t *testing.T) {
	m, _ := Lookup("ResNet-50")
	ks := kernels.IterationKernels(m.Ops(), 1, kernels.StyleTF)
	fl := kernels.TotalFLOPs(ks)
	// Forward-only ResNet-50 is ~3.9 GFLOP/image (counting MAC=2);
	// training adds ~2x backward, so expect roughly 8-20 GFLOP.
	if fl < 8e9 || fl > 25e9 {
		t.Fatalf("ResNet-50 training FLOPs/image = %.2f G", fl/1e9)
	}
}

func TestDominantLayerDominatesCompute(t *testing.T) {
	// Table 2's "dominant layer" column: the declared layer class must
	// carry the majority of each model's FLOPs.
	classFor := map[string]kernels.Class{"CONV": kernels.Conv, "LSTM": kernels.GEMM, "RNN": kernels.GEMM, "Attention": kernels.GEMM}
	for _, m := range Suite() {
		want := classFor[m.DominantLayer]
		var total, dom float64
		for _, op := range m.Ops() {
			for _, k := range op.Forward(4, kernels.StyleTF) {
				total += k.FLOPs
				if k.Class == want {
					dom += k.FLOPs
				}
			}
		}
		if dom/total < 0.5 {
			t.Fatalf("%s: dominant class carries only %.0f%% of FLOPs", m.Name, 100*dom/total)
		}
	}
}

func TestFasterRCNNMatchesPaperNumbers(t *testing.T) {
	m, _ := Lookup("Faster R-CNN")
	if len(m.BatchSizes) != 1 || m.BatchSizes[0] != 1 {
		t.Fatal("Faster R-CNN trains at batch 1")
	}
	for _, fwName := range m.Frameworks {
		fw, _ := framework.Lookup(fwName)
		cfg := SimConfigFor(m, fw, device.QuadroP4000)
		r := sim.Simulate(m.Ops(), 1, fw.Style, cfg)
		// Paper: 2.3 images/s on both frameworks; GPU util 89.4%/90.3%.
		if r.Throughput < 1 || r.Throughput > 6 {
			t.Fatalf("%s Faster R-CNN throughput %.1f, want ~2-3", fwName, r.Throughput)
		}
		if r.GPUUtil < 0.8 {
			t.Fatalf("%s Faster R-CNN GPU util %.2f, want ~0.9", fwName, r.GPUUtil)
		}
	}
}

func TestMemoryFootprintsFitHardware(t *testing.T) {
	// Every (model, framework, batch) cell the paper plots trained on an
	// 8 GB P4000, with modest tolerance for our analytic model.
	for _, m := range Suite() {
		for _, fwName := range m.Frameworks {
			fw, _ := framework.Lookup(fwName)
			for _, b := range m.BatchesFor(fwName) {
				n := m.SamplesForBatch(b)
				mem := memprof.ProfileOps(m.Ops(), n, fw.MemPolicy)
				if mem.Total() > int64(10)<<30 {
					t.Fatalf("%s/%s batch %d: %.1f GB exceeds plausible 8 GB budget",
						m.Name, fwName, b, float64(mem.Total())/(1<<30))
				}
			}
		}
	}
}

func TestOpGraphsAreWellFormed(t *testing.T) {
	for _, m := range Suite() {
		ops := m.Ops()
		if len(ops) == 0 {
			t.Fatalf("%s has no ops", m.Name)
		}
		for _, op := range ops {
			if op.Name == "" {
				t.Fatalf("%s has an unnamed op", m.Name)
			}
			if op.OutputElemsPerSample() < 0 || op.StashElemsPerSample() < 0 || op.ParamElems() < 0 {
				t.Fatalf("%s op %s has negative accounting", m.Name, op.Name)
			}
			fw := op.Forward(2, kernels.StyleTF)
			for _, k := range fw {
				if k.FLOPs < 0 || k.Bytes <= 0 {
					t.Fatalf("%s op %s emits degenerate kernel %+v", m.Name, op.Name, k)
				}
			}
		}
		// Ops must be cached.
		if &m.Ops()[0] == &ops[0] {
			_ = ops
		}
	}
}

// --- numeric twin convergence ---

func TestNumericResNetLearns(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := data.NewImageSource(rng, 1, 8, 8, 4, 0.3)
	net := NumericResNet(rng, 1, 8, 4)
	opt := newTwinOptimizer()
	var acc float64
	for i := 0; i < 120; i++ {
		b := src.Batch(16)
		acc = trainStep(net, opt, b.X, b.Labels)
	}
	if acc < 0.85 {
		t.Fatalf("ResNet twin accuracy %.2f", acc)
	}
}

func TestNumericInceptionLearns(t *testing.T) {
	rng := tensor.NewRNG(2)
	src := data.NewImageSource(rng, 1, 8, 8, 4, 0.3)
	net := NumericInception(rng, 1, 8, 4)
	opt := newTwinOptimizer()
	var acc float64
	for i := 0; i < 120; i++ {
		b := src.Batch(16)
		acc = trainStep(net, opt, b.X, b.Labels)
	}
	if acc < 0.85 {
		t.Fatalf("Inception twin accuracy %.2f", acc)
	}
}

func TestNumericSeq2SeqLearns(t *testing.T) {
	rng := tensor.NewRNG(3)
	src := data.NewTranslationSource(rng, 12, 6)
	net := NumericSeq2Seq(rng, 12, 12, 24)
	opt := newTwinOptimizer()
	var acc float64
	for i := 0; i < 400; i++ {
		b := src.Batch(16)
		acc = seqStep(net, opt, b.Src, b.Targets)
	}
	if acc < 0.8 {
		t.Fatalf("Seq2Seq twin accuracy %.2f", acc)
	}
}

func TestNumericTransformerLearns(t *testing.T) {
	rng := tensor.NewRNG(4)
	src := data.NewTranslationSource(rng, 12, 6)
	net := NumericTransformer(rng, 12, 16, 2)
	opt := newTwinOptimizer()
	var acc float64
	for i := 0; i < 400; i++ {
		b := src.Batch(16)
		acc = seqStep(net, opt, b.Src, b.Targets)
	}
	if acc < 0.8 {
		t.Fatalf("Transformer twin accuracy %.2f", acc)
	}
}

func TestNumericDeepSpeechLearns(t *testing.T) {
	rng := tensor.NewRNG(5)
	src := data.NewAudioSource(rng, 12, 6, 8, 0.3)
	net := NumericDeepSpeech(rng, 12, 20, 6)
	opt := newTwinOptimizer()
	var acc float64
	for i := 0; i < 200; i++ {
		b := src.Batch(8)
		acc = seqStep(net, opt, b.X, b.Labels)
	}
	if acc < 0.8 {
		t.Fatalf("Deep Speech twin accuracy %.2f", acc)
	}
}

func TestNumericDetectorLearns(t *testing.T) {
	rng := tensor.NewRNG(6)
	d := NewNumericDetector(rng, 1, 8, 4)
	opt := newTwinOptimizer()
	makeBatch := func(n int) (*tensor.Tensor, []int, []float32) {
		x := tensor.New(n, 1, 8, 8)
		cls := make([]int, n)
		box := make([]float32, 2*n)
		for i := 0; i < n; i++ {
			qx, qy := rng.Intn(2), rng.Intn(2)
			cls[i] = qy*2 + qx
			cx, cy := 2+4*qx, 2+4*qy
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					x.Set(1, i, 0, cy+dy, cx+dx)
				}
			}
			box[2*i] = float32(cx) / 8
			box[2*i+1] = float32(cy) / 8
		}
		return x, cls, box
	}
	var acc float64
	var boxLoss float32
	var firstBox float32
	for i := 0; i < 150; i++ {
		x, cls, box := makeBatch(16)
		_, boxLoss, acc = DetectorStep(d, opt, x, cls, box)
		if i == 0 {
			firstBox = boxLoss
		}
	}
	if acc < 0.9 {
		t.Fatalf("detector classification accuracy %.2f", acc)
	}
	if boxLoss >= firstBox/2 {
		t.Fatalf("box regression did not improve: %.4f -> %.4f", firstBox, boxLoss)
	}
}

func TestNumericWGANTrains(t *testing.T) {
	rng := tensor.NewRNG(7)
	gen, critic := NumericWGAN(rng, 4, 1, 4)
	optG := newTwinOptimizer()
	optC := newTwinOptimizer()
	// Real distribution: a fixed template plus small noise, in [-1, 1].
	tpl := tensor.RandUniform(rng, -0.5, 0.5, 1, 4, 4)
	realBatch := func(n int) *tensor.Tensor {
		x := tensor.New(n, 1, 4, 4)
		for i := 0; i < n; i++ {
			for j := 0; j < 16; j++ {
				x.Data()[i*16+j] = tpl.Data()[j] + 0.05*float32(rng.Norm())
			}
		}
		return x
	}
	var wFirst, wLast float32
	for i := 0; i < 300; i++ {
		w := WGANStep(gen, critic, optG, optC, realBatch(16), rng, 4, 0.1)
		if i == 20 {
			wFirst = w
		}
		wLast = w
	}
	// The Wasserstein estimate must shrink as the generator matches the
	// data distribution.
	if !(wLast < wFirst) {
		t.Fatalf("wasserstein estimate did not shrink: %.4f -> %.4f", wFirst, wLast)
	}
	// Generated samples should be near the template.
	z := tensor.RandNormal(rng, 0, 1, 8, 4)
	fake := gen.Forward(z, false)
	var mse float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 16; j++ {
			d := float64(fake.Data()[i*16+j] - tpl.Data()[j])
			mse += d * d
		}
	}
	mse /= 8 * 16
	if mse > 0.3 {
		t.Fatalf("generator MSE to template %.3f", mse)
	}
}

func TestNumericA3CImproves(t *testing.T) {
	cfg := DefaultA3CConfig()
	cfg.Workers = 3
	cfg.Updates = 1500
	res := TrainA3C(cfg)
	if res.Updates != cfg.Workers*cfg.Updates {
		t.Fatalf("applied %d updates, want %d", res.Updates, cfg.Workers*cfg.Updates)
	}
	if res.MeanRewardLast <= res.MeanRewardFirst {
		t.Fatalf("A3C did not improve: %.4f -> %.4f", res.MeanRewardFirst, res.MeanRewardLast)
	}
}

func TestNumericA3CPixelPolicyShapes(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := NumericA3CPixelPolicy(rng, 84)
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 84, 84)
	out := net.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 4 {
		t.Fatalf("pixel policy output %v", out.Shape())
	}
}

// --- helpers ---

func newTwinOptimizer() optim.Optimizer { return optim.NewAdam(0.01) }

func trainStep(net *graph.Network, opt optim.Optimizer, x *tensor.Tensor, labels []int) float64 {
	return graph.TrainClassifierStep(net, opt, x, labels, 5).Accuracy
}

func seqStep(net *graph.Network, opt optim.Optimizer, x *tensor.Tensor, labels []int) float64 {
	return graph.TrainSequenceStep(net, opt, x, labels, 5).Accuracy
}

func TestNumericDeepSpeechCTCLearns(t *testing.T) {
	// The bidirectional CTC twin must drive the CTC loss down and decode
	// the unaligned label sequence from synthetic audio.
	rng := tensor.NewRNG(30)
	features, hidden, symbols := 8, 16, 5
	net := NumericDeepSpeechCTC(rng, features, hidden, symbols)
	opt := optim.NewAdam(0.01)

	// A fixed utterance: 10 frames, each frame's hot feature bin encodes
	// a symbol; the unaligned transcript drops repeats.
	T := 10
	frames := []int{1, 1, 2, 2, 2, 3, 3, 4, 4, 4}
	x := tensor.New(1, T, features)
	for ti, s := range frames {
		x.Set(2, 0, ti, s)
	}
	transcript := []int{1, 2, 3, 4}

	var first, last float32
	for i := 0; i < 250; i++ {
		loss := DeepSpeechCTCStep(net, opt, x, [][]int{transcript}, 5)
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/4 {
		t.Fatalf("CTC twin did not converge: %.3f -> %.3f", first, last)
	}
	logits := net.Forward(x, false)
	decoded := layers.CTCGreedyDecode(logits.Reshape(T, symbols))
	if len(decoded) != len(transcript) {
		t.Fatalf("decoded %v, want %v", decoded, transcript)
	}
	for i := range transcript {
		if decoded[i] != transcript[i] {
			t.Fatalf("decoded %v, want %v", decoded, transcript)
		}
	}
}

func TestEncoderDecoderLearnsReversal(t *testing.T) {
	// Sequence reversal requires real information flow from encoder to
	// decoder through cross-attention: target[t] = src[T-1-t], so the
	// decoder must fetch a position-dependent source token.
	rng := tensor.NewRNG(60)
	vocab, d, T := 8, 16, 5
	m := NewEncoderDecoder(rng, vocab, d, 2)
	opt := optim.NewAdam(0.005)
	batch := func(n int) (src, tgtIn *tensor.Tensor, targets []int) {
		src = tensor.New(n, T)
		tgtIn = tensor.New(n, T)
		targets = make([]int, n*T)
		for i := 0; i < n; i++ {
			toks := make([]int, T)
			for p := 0; p < T; p++ {
				toks[p] = 1 + rng.Intn(vocab-1)
				src.Set(float32(toks[p]), i, p)
			}
			for p := 0; p < T; p++ {
				targets[i*T+p] = toks[T-1-p]
				// Teacher forcing: decoder input is the previous target
				// (position 0 gets the start token 0).
				if p == 0 {
					tgtIn.Set(0, i, p)
				} else {
					tgtIn.Set(float32(targets[i*T+p-1]), i, p)
				}
			}
		}
		return src, tgtIn, targets
	}
	var acc float64
	for step := 0; step < 600; step++ {
		src, tgtIn, targets := batch(16)
		_, acc = m.Step(opt, src, tgtIn, targets, 5)
	}
	if acc < 0.8 {
		t.Fatalf("encoder-decoder reversal accuracy %.2f", acc)
	}
}

func TestEncoderDecoderGradientsFlowToEncoder(t *testing.T) {
	rng := tensor.NewRNG(61)
	m := NewEncoderDecoder(rng, 6, 8, 2)
	src := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	tgtIn := tensor.FromSlice([]float32{0, 1}, 1, 2)
	out := m.Forward(src, tgtIn, true)
	g := tensor.Ones(out.Shape()...)
	m.Backward(g)
	// Encoder-side parameters must have received gradient through the
	// cross-attention memory path.
	var encGrad float32
	for _, p := range m.Enc.Params() {
		encGrad += p.Grad.L2Norm()
	}
	if encGrad == 0 {
		t.Fatal("no gradient reached the encoder")
	}
	var srcEmbGrad float32
	for _, p := range m.SrcEmb.Params() {
		srcEmbGrad += p.Grad.L2Norm()
	}
	if srcEmbGrad == 0 {
		t.Fatal("no gradient reached the source embedding")
	}
}

func TestA3CLearnsBreakout(t *testing.T) {
	cfg := DefaultA3CConfig()
	cfg.Workers = 3
	cfg.Updates = 2500
	cfg.LR = 3e-3
	cfg.RolloutLen = 60
	cfg.Entropy = 0.02
	cfg.EnvFactory = func(rng *tensor.RNG) atari.Env { return atari.NewBreakout(rng, 16) }
	res := TrainA3C(cfg)
	if res.MeanRewardLast <= res.MeanRewardFirst {
		t.Fatalf("A3C on Breakout did not improve: %.4f -> %.4f", res.MeanRewardFirst, res.MeanRewardLast)
	}
}
