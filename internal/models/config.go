package models

import (
	"tbd/internal/device"
	"tbd/internal/framework"
	"tbd/internal/sim"
)

// SimConfigFor composes the full simulator configuration for running
// model m on framework fw and GPU gpu: the framework's execution profile
// plus the model's host-side costs and pipeline shape.
func SimConfigFor(m *Model, fw *framework.Framework, gpu *device.GPU) sim.Config {
	cfg := fw.SimConfig(gpu, m.HostCPU(fw.Name), m.Speed(fw.Name))
	cfg.IterOverheadSec += m.IterHostOverheadSec
	if m.PipelineWorkers > 0 {
		cfg.PipelineWorkers = m.PipelineWorkers
	}
	cfg.SampleBytes = int64(m.Dataset.SampleElems()) * 4
	return cfg
}
