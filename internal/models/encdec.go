package models

import (
	"tbd/internal/layers"
	"tbd/internal/optim"
	"tbd/internal/tensor"
)

// EncoderDecoder is the faithful seq2seq twin: a recurrent encoder over
// the source sentence and a decoder that attends over the encoder outputs
// with cross-attention — the NMT architecture the paper benchmarks, with
// real information flow through the attention bottleneck (the plain
// NumericSeq2Seq twin is an encoder-tagger).
type EncoderDecoder struct {
	SrcEmb *layers.Embedding
	Enc    *layers.LSTM
	EncPE  *layers.PositionalEncoding
	TgtEmb *layers.Embedding
	Dec    *layers.LSTM
	DecPE  *layers.PositionalEncoding
	Cross  *layers.CrossAttention
	Proj   *layers.Dense
}

// NewEncoderDecoder builds the twin over the given vocabulary with model
// dimension d.
func NewEncoderDecoder(rng *tensor.RNG, vocab, d, heads int) *EncoderDecoder {
	return &EncoderDecoder{
		SrcEmb: layers.NewEmbedding("src.emb", vocab, d, rng),
		Enc:    layers.NewLSTM("enc.lstm", d, d, rng),
		EncPE:  layers.NewPositionalEncoding("enc.pe", d),
		TgtEmb: layers.NewEmbedding("tgt.emb", vocab, d, rng),
		Dec:    layers.NewLSTM("dec.lstm", d, d, rng),
		DecPE:  layers.NewPositionalEncoding("dec.pe", d),
		Cross:  layers.NewCrossAttention("cross", d, heads, rng),
		Proj:   layers.NewDense("proj", d, vocab, rng),
	}
}

// Params returns all trainable parameters.
func (m *EncoderDecoder) Params() []*layers.Param {
	var ps []*layers.Param
	for _, l := range []layers.Layer{m.SrcEmb, m.Enc, m.TgtEmb, m.Dec, m.Cross, m.Proj} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Forward runs src through the encoder and tgtIn (teacher-forced decoder
// input tokens) through the decoder + cross-attention, returning
// per-position vocabulary logits [N, Td, V].
func (m *EncoderDecoder) Forward(src, tgtIn *tensor.Tensor, train bool) *tensor.Tensor {
	enc := m.Enc.Forward(m.EncPE.Forward(m.SrcEmb.Forward(src, train), train), train)
	dec := m.Dec.Forward(m.DecPE.Forward(m.TgtEmb.Forward(tgtIn, train), train), train)
	m.Cross.SetMemory(enc)
	ctx := m.Cross.Forward(dec, train)
	// Residual: context + decoder state.
	fused := tensor.Add(ctx, dec)
	return m.Proj.Forward(fused, train)
}

// Step runs one teacher-forced training step against flat per-position
// targets [N*Td] and returns loss and token accuracy.
func (m *EncoderDecoder) Step(opt optim.Optimizer, src, tgtIn *tensor.Tensor, targets []int, clip float32) (float32, float64) {
	params := m.Params()
	optim.ZeroGrads(params)
	out := m.Forward(src, tgtIn, true) //tbd:retain the projection layer owns its forward buffer and releases it on the next step
	rows := len(targets)
	logits := out.Reshape(rows, out.Numel()/rows)
	loss, grad := tensor.CrossEntropy(logits, targets)
	m.Backward(grad.Reshape(out.Shape()...))
	if clip > 0 {
		optim.ClipGradNorm(params, clip)
	}
	opt.Step(params)
	return loss, tensor.Accuracy(logits, targets)
}

// Backward propagates through both branches: the projection gradient
// splits into the residual context and decoder paths; the cross-attention
// routes its memory gradient back into the encoder.
func (m *EncoderDecoder) Backward(gy *tensor.Tensor) {
	gfused := m.Proj.Backward(gy)
	// Residual: gradient reaches both the context and the decoder.
	gdec := m.Cross.Backward(gfused) // query-path gradient
	tensor.AddInPlace(gdec, gfused)  // plus the residual path
	m.TgtEmb.Backward(m.DecPE.Backward(m.Dec.Backward(gdec)))
	genc := m.Cross.MemoryGrad()
	m.SrcEmb.Backward(m.EncPE.Backward(m.Enc.Backward(genc)))
}
