package models

import (
	"testing"

	"tbd/internal/device"
	"tbd/internal/framework"
	"tbd/internal/kernels"
	"tbd/internal/memprof"
	"tbd/internal/sim"
)

func TestYOLO9000Extension(t *testing.T) {
	m, err := LookupAny("YOLO9000")
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLayers != 19 || m.DominantLayer != "CONV" {
		t.Fatalf("YOLO9000 metadata wrong: %+v", m)
	}
	// Not part of the paper's 8-model suite.
	if _, err := Lookup("YOLO9000"); err == nil {
		t.Fatal("YOLO9000 must not be in the core suite")
	}
	if len(Extensions()) == 0 {
		t.Fatal("extensions registry empty")
	}
	// Conv count: 19 darknet convs + head.
	convs := 0
	for _, op := range m.Ops() {
		if op.Kind == kernels.OpConv2D {
			convs++
		}
	}
	if convs < 19 || convs > 23 {
		t.Fatalf("YOLO9000 has %d convs, want ~19-22", convs)
	}
	// Paper motivation: faster than Faster R-CNN at inference-scale
	// throughput; here, much higher training throughput at batch 4 than
	// Faster R-CNN at batch 1.
	fw, _ := framework.Lookup("TensorFlow")
	cfg := SimConfigFor(m, fw, device.QuadroP4000)
	r := sim.Simulate(m.Ops(), 4, fw.Style, cfg)
	frcnn, _ := Lookup("Faster R-CNN")
	rcfg := SimConfigFor(frcnn, fw, device.QuadroP4000)
	rr := sim.Simulate(frcnn.Ops(), 1, fw.Style, rcfg)
	if r.Throughput/4*1 <= rr.Throughput {
		t.Fatalf("YOLO per-image rate %.2f should beat Faster R-CNN %.2f", r.Throughput, rr.Throughput)
	}
	// And it fits the 8 GB card at batch 16.
	mem := memprof.ProfileOps(m.Ops(), 16, fw.MemPolicy)
	if mem.Total() > 9<<30 {
		t.Fatalf("YOLO batch 16 footprint %.1f GB", float64(mem.Total())/(1<<30))
	}
	if mem.FeatureMapShare() < 0.5 {
		t.Fatalf("feature maps should dominate YOLO too (%.2f)", mem.FeatureMapShare())
	}
}

func TestLookupAnyFallsThrough(t *testing.T) {
	if _, err := LookupAny("ResNet-50"); err != nil {
		t.Fatal("LookupAny must find suite models")
	}
	if _, err := LookupAny("nope"); err == nil {
		t.Fatal("unknown model must fail")
	}
}
