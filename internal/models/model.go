// Package models builds the eight TBD benchmark models (Table 2) in two
// forms: paper-scale op graphs consumed by the simulator and memory
// profiler, and scaled-down numeric twins that genuinely train on the
// synthetic datasets (used for the Figure 2 convergence curves and as
// end-to-end proof of the training engine).
package models

import (
	"fmt"
	"sync"

	"tbd/internal/data"
	"tbd/internal/kernels"
)

// Model is one benchmark entry of Table 2.
type Model struct {
	Name          string
	Application   string
	NumLayers     int
	DominantLayer string
	// Frameworks lists implementations, ordered as in Table 2.
	Frameworks []string
	// Variant maps a framework to its implementation name when it
	// differs from the model name (NMT on TensorFlow vs Sockeye on
	// MXNet).
	Variant map[string]string
	Dataset *data.Dataset

	// BatchSizes is the mini-batch sweep of Figures 4-6.
	BatchSizes []int
	// MaxBatch caps the sweep per framework where the paper reports a
	// memory limit (Sockeye 64 vs NMT 128 on 8 GB).
	MaxBatch map[string]int
	// BatchUnit names the batch dimension ("samples" for most models,
	// "tokens" for the Transformer's 64-4096 sweep).
	BatchUnit string
	// SamplesPerBatchUnit converts a sweep value to samples for kernel
	// emission (25 tokens per sentence for the Transformer).
	SamplesPerBatchUnit int

	// SpeedFactor is the per-framework implementation-efficiency
	// multiplier behind Observation 3.
	SpeedFactor map[string]float64
	// HostCPUSecPerSample is host-side work per sample per framework
	// (input pipeline, environment stepping, proposal handling).
	HostCPUSecPerSample map[string]float64
	// PipelineWorkers overrides the host pipeline parallelism (0 keeps
	// the simulator default of 4; A3C runs many actor threads).
	PipelineWorkers int
	// IterHostOverheadSec is extra fixed host work per iteration beyond
	// the framework's own (A3C's rollout collection barrier).
	IterHostOverheadSec float64

	// BuildOps constructs the paper-scale op graph.
	BuildOps func() []*kernels.Op

	opsOnce sync.Once
	ops     []*kernels.Op // cached
}

// Ops returns the paper-scale op graph, building it once (safe for
// concurrent profiling of the same Model instance).
func (m *Model) Ops() []*kernels.Op {
	m.opsOnce.Do(func() { m.ops = m.BuildOps() })
	return m.ops
}

// SamplesForBatch converts a sweep batch value into a sample count for
// kernel emission.
func (m *Model) SamplesForBatch(batch int) int {
	if m.SamplesPerBatchUnit > 1 {
		n := batch / m.SamplesPerBatchUnit
		if n < 1 {
			n = 1
		}
		return n
	}
	return batch
}

// Speed returns the implementation-efficiency factor for a framework
// (1.0 when unspecified).
func (m *Model) Speed(fw string) float64 {
	if v, ok := m.SpeedFactor[fw]; ok {
		return v
	}
	return 1.0
}

// HostCPU returns the host-side per-sample cost for a framework, falling
// back to the dataset's decode cost.
func (m *Model) HostCPU(fw string) float64 {
	if v, ok := m.HostCPUSecPerSample[fw]; ok {
		return v
	}
	return m.Dataset.DecodeCPUSecPerSample
}

// SupportsFramework reports whether the model has an implementation on fw.
func (m *Model) SupportsFramework(fw string) bool {
	for _, f := range m.Frameworks {
		if f == fw {
			return true
		}
	}
	return false
}

// ImplName returns the implementation name on a framework (e.g. "NMT" on
// TensorFlow for the Seq2Seq model).
func (m *Model) ImplName(fw string) string {
	if v, ok := m.Variant[fw]; ok {
		return v
	}
	return m.Name
}

// BatchesFor returns the sweep batch sizes usable on a framework,
// respecting its memory cap.
func (m *Model) BatchesFor(fw string) []int {
	limit := 0
	if m.MaxBatch != nil {
		limit = m.MaxBatch[fw]
	}
	var out []int
	for _, b := range m.BatchSizes {
		if limit > 0 && b > limit {
			continue
		}
		out = append(out, b)
	}
	return out
}

// Suite returns the full TBD benchmark suite in Table 2 order.
func Suite() []*Model {
	return []*Model{
		ResNet50(), InceptionV3(), Seq2Seq(), Transformer(),
		FasterRCNN(), DeepSpeech2(), WGAN(), A3C(),
	}
}

// Lookup resolves a benchmark by name.
func Lookup(name string) (*Model, error) {
	for _, m := range Suite() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown benchmark %q", name)
}
