package models

import (
	"fmt"
	"sort"

	"tbd/internal/graph"
	"tbd/internal/layers"
	"tbd/internal/tensor"
)

// Serving twins: numeric networks packaged for the inference service
// (internal/serve and cmd/tbdserve). Each entry pairs a network
// constructor with the per-sample input shape the batcher needs to
// assemble request tensors.

// NumericServeMLP builds a pure-dense classifier (in -> hidden -> hidden
// -> classes with fused-ReLU GEMM epilogues). Dense stacks are the
// serving workload where dynamic batching pays off most: a single-sample
// forward degenerates to memory-bound GEMV-shaped GEMMs (M=1), while a
// coalesced batch restores the compute-bound M=B shape — the serving-side
// mirror of the paper's batch-size Observations.
func NumericServeMLP(rng *tensor.RNG, in, hidden, classes int) *graph.Network {
	root := layers.NewSequential("serve-mlp",
		layers.NewDenseAct("fc1", in, hidden, tensor.ActReLU, rng),
		layers.NewDenseAct("fc2", hidden, hidden, tensor.ActReLU, rng),
		layers.NewDense("fc3", hidden, classes, rng),
	)
	return graph.New("Serve-MLP", root)
}

// serveTwinSpec describes one servable twin: how to build it and the
// shape of one input sample.
type serveTwinSpec struct {
	build       func(rng *tensor.RNG) *graph.Network
	sampleShape []int
}

var serveTwins = map[string]serveTwinSpec{
	"mlp": {
		// 256-512-512-10: the packed B panels fit in L2, so a coalesced
		// batch runs compute-bound while a single-sample forward stays
		// memory-bound on the weight stream — the widest stable gap for
		// the batching benchmarks on one core.
		build:       func(rng *tensor.RNG) *graph.Network { return NumericServeMLP(rng, 256, 512, 10) },
		sampleShape: []int{256},
	},
	"resnet": {
		build:       func(rng *tensor.RNG) *graph.Network { return NumericResNet(rng, 3, 16, 10) },
		sampleShape: []int{3, 16, 16},
	},
	"transformer": {
		build:       func(rng *tensor.RNG) *graph.Network { return NumericTransformer(rng, 50, 32, 4) },
		sampleShape: []int{16}, // token ids, one 16-token sequence per request
	},
}

// ServeTwin builds the named serving twin and returns it with its
// per-sample input shape. Known names: see ServeTwinNames.
func ServeTwin(name string, rng *tensor.RNG) (*graph.Network, []int, error) {
	spec, ok := serveTwins[name]
	if !ok {
		return nil, nil, fmt.Errorf("models: unknown serve twin %q (have %v)", name, ServeTwinNames())
	}
	return spec.build(rng), append([]int(nil), spec.sampleShape...), nil
}

// ServeTwinNames lists the servable twins, sorted.
func ServeTwinNames() []string {
	names := make([]string, 0, len(serveTwins))
	for n := range serveTwins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
