package models

import (
	"math"
	"sync"

	"tbd/internal/atari"
	"tbd/internal/graph"
	"tbd/internal/layers"
	"tbd/internal/optim"
	"tbd/internal/tensor"
)

// WGANStep runs one WGAN training iteration on the numeric twin: a critic
// update on real and generated batches followed by a generator update,
// with weight clipping (the original Wasserstein constraint; the
// gradient-penalty variant is modeled at the kernel level in the
// paper-scale graph). It returns the critic's Wasserstein estimate
// mean(C(real)) - mean(C(fake)) before the update.
func WGANStep(gen, critic *graph.Network, optG, optC optim.Optimizer,
	real *tensor.Tensor, rng *tensor.RNG, latent int, clip float32) float32 {

	n := real.Dim(0)
	inv := 1 / float32(n)

	// Critic update: maximize mean(C(real)) - mean(C(fake)).
	optim.ZeroGrads(critic.Params())
	realScores := critic.Forward(real.Reshape(n, -1), true)
	wReal := realScores.Mean()
	critic.Backward(tensor.Full(-inv, realScores.Shape()...)) // ascend on real

	z := tensor.RandNormal(rng, 0, 1, n, latent)
	fake := gen.Forward(z, false)
	fakeScores := critic.Forward(fake.Reshape(n, -1), true)
	wFake := fakeScores.Mean()
	critic.Backward(tensor.Full(inv, fakeScores.Shape()...)) // descend on fake
	optC.Step(critic.Params())
	for _, p := range critic.Params() {
		for i, v := range p.Value.Data() {
			if v > clip {
				p.Value.Data()[i] = clip
			} else if v < -clip {
				p.Value.Data()[i] = -clip
			}
		}
	}

	// Generator update: maximize mean(C(G(z))).
	optim.ZeroGrads(gen.Params())
	optim.ZeroGrads(critic.Params())
	z = tensor.RandNormal(rng, 0, 1, n, latent)
	fake = gen.Forward(z, true)
	scores := critic.Forward(fake.Reshape(n, -1), true)
	gx := critic.Backward(tensor.Full(-inv, scores.Shape()...))
	gen.Backward(gx.Reshape(fake.Shape()...))
	optG.Step(gen.Params())

	return wReal - wFake
}

// DeepSpeechCTCStep runs one CTC training step of the Deep Speech 2 twin:
// forward over [N, T, F] audio features, CTC loss against unaligned label
// sequences, backward, clip, update. It returns the mean CTC loss.
func DeepSpeechCTCStep(net *graph.Network, opt optim.Optimizer, x *tensor.Tensor, labels [][]int, clip float32) float32 {
	params := net.Params()
	optim.ZeroGrads(params)
	logits := net.Forward(x, true) // [N, T, V]
	loss, grad := layers.CTCLossBatch(logits, labels)
	net.Backward(grad)
	if clip > 0 {
		optim.ClipGradNorm(params, clip)
	}
	opt.Step(params)
	return loss
}

// DetectorStep runs one multi-task step of the Faster R-CNN twin:
// classification cross-entropy plus box-center regression, jointly
// backpropagated through the shared trunk.
func DetectorStep(d *NumericDetector, opt optim.Optimizer, x *tensor.Tensor,
	clsLabels []int, boxTargets []float32) (clsLoss, boxLoss float32, acc float64) {

	optim.ZeroGrads(d.Params())
	cls, box := d.Forward(x, true)
	clsLoss, gCls := tensor.CrossEntropy(cls, clsLabels)
	boxLoss, gBox := MSELoss(box, boxTargets)
	d.Backward(gCls, gBox)
	opt.Step(d.Params())
	return clsLoss, boxLoss, tensor.Accuracy(cls, clsLabels)
}

// A3CConfig configures the asynchronous advantage actor-critic trainer.
type A3CConfig struct {
	Workers int
	// Updates is the number of gradient updates per worker.
	Updates int
	// RolloutLen is t_max, the steps per update.
	RolloutLen int
	Gamma      float32
	LR         float32
	EnvSize    int // Pong frame size (unused by the state-feature policy)
	Entropy    float32
	Seed       uint64
	// Checkpoints is the number of mid-training policy evaluations
	// recorded into the result curve (0 disables).
	Checkpoints int
	// EvalEpisodeCap bounds the evaluation episode length.
	EvalEpisodeCap int
	// EnvFactory builds each worker's environment (nil = Pong at
	// EnvSize). Use atari.NewBreakout for the second game.
	EnvFactory func(rng *tensor.RNG) atari.Env
}

// envFor builds a worker environment from the config.
func (cfg A3CConfig) envFor(rng *tensor.RNG) atari.Env {
	if cfg.EnvFactory != nil {
		return cfg.EnvFactory(rng)
	}
	return atari.NewPong(rng, cfg.EnvSize)
}

// DefaultA3CConfig returns a configuration that learns Pong's tracking
// policy in a few thousand updates.
func DefaultA3CConfig() A3CConfig {
	return A3CConfig{
		Workers: 4, Updates: 1500, RolloutLen: 40,
		Gamma: 0.95, LR: 1e-2, EnvSize: 16, Entropy: 0.01, Seed: 1,
	}
}

// A3CResult reports training progress.
type A3CResult struct {
	// MeanRewardFirst/Last are the mean per-step rewards over the first
	// and last tenth of updates, averaged across workers — the learning
	// signal behind Figure 2's Pong curve.
	MeanRewardFirst, MeanRewardLast float64
	// Updates is the total number of applied gradient updates.
	Updates int
	// Curve holds periodic evaluation scores (Pong game score, agent
	// minus bot, in [-21, 21]) when Checkpoints > 0.
	Curve []A3CPoint
}

// A3CPoint is one evaluation checkpoint.
type A3CPoint struct {
	// UpdateFrac is the fraction of total updates completed.
	UpdateFrac float64
	// Score is the evaluation episode's agent-minus-bot score.
	Score int
}

// TrainA3C trains the numeric A3C twin on Pong with asynchronous workers
// sharing one parameter set (Hogwild-style, like Mnih et al.): each
// goroutine runs its own environment, computes gradients on a local
// network copy, and applies them to the shared parameters under a lock.
func TrainA3C(cfg A3CConfig) A3CResult {
	shared := NumericA3CPolicy(tensor.NewRNG(cfg.Seed))
	opt := optim.NewRMSProp(cfg.LR)
	var mu sync.Mutex
	var totalUpdates int

	// Checkpoint evaluation: workers trigger an evaluation when they
	// cross an update threshold (run inline under the lock on a weight
	// snapshot taken without holding it longer than the copy).
	var curve []A3CPoint
	totalPlanned := cfg.Workers * cfg.Updates
	nextEval := totalPlanned + 1
	evalEvery := 0
	if cfg.Checkpoints > 0 {
		evalEvery = totalPlanned / cfg.Checkpoints
		if evalEvery == 0 {
			evalEvery = 1
		}
		nextEval = evalEvery
	}
	evalCap := cfg.EvalEpisodeCap
	if evalCap == 0 {
		evalCap = 60000
	}

	phase := cfg.Updates / 10
	if phase == 0 {
		phase = 1
	}
	firstRewards := make([]float64, cfg.Workers)
	lastRewards := make([]float64, cfg.Workers)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := tensor.NewRNG(cfg.Seed + uint64(w)*7919 + 1)
			env := cfg.envFor(rng)
			local := NumericA3CPolicy(rng)
			var firstSum, lastSum float64
			var firstN, lastN int

			for u := 0; u < cfg.Updates; u++ {
				// Pull shared weights.
				mu.Lock()
				copyParams(local.Params(), shared.Params())
				mu.Unlock()

				states, actions, rewards := rollout(env, local, rng, cfg.RolloutLen)
				grads := a3cGradients(local, states, actions, rewards, cfg.Gamma, cfg.Entropy)

				// Push gradients into the shared model.
				mu.Lock()
				for i, p := range shared.Params() {
					p.Grad.CopyFrom(grads[i])
				}
				optim.ClipGradNorm(shared.Params(), 5)
				opt.Step(shared.Params())
				optim.ZeroGrads(shared.Params())
				totalUpdates++
				var snapshot *graph.Network
				var frac float64
				if totalUpdates >= nextEval {
					nextEval += evalEvery
					snapshot = NumericA3CPolicy(rng)
					copyParams(snapshot.Params(), shared.Params())
					frac = float64(totalUpdates) / float64(totalPlanned)
				}
				mu.Unlock()
				if snapshot != nil {
					score := evalEpisode(snapshot, cfg, cfg.Seed+999, evalCap)
					mu.Lock()
					curve = append(curve, A3CPoint{UpdateFrac: frac, Score: score})
					mu.Unlock()
				}

				var stepReward float64
				for _, r := range rewards {
					stepReward += r
				}
				stepReward /= float64(len(rewards))
				if u < phase {
					firstSum += stepReward
					firstN++
				}
				if u >= cfg.Updates-phase {
					lastSum += stepReward
					lastN++
				}
			}
			firstRewards[w] = firstSum / float64(firstN)
			lastRewards[w] = lastSum / float64(lastN)
		}(w)
	}
	wg.Wait()

	res := A3CResult{Updates: totalUpdates, Curve: curve}
	for w := 0; w < cfg.Workers; w++ {
		res.MeanRewardFirst += firstRewards[w] / float64(cfg.Workers)
		res.MeanRewardLast += lastRewards[w] / float64(cfg.Workers)
	}
	return res
}

// evalEpisode plays one greedy-policy episode (capped at maxSteps) and
// returns the environment's outcome score.
func evalEpisode(policy *graph.Network, cfg A3CConfig, seed uint64, maxSteps int) int {
	rng := tensor.NewRNG(seed)
	env := cfg.envFor(rng)
	for i := 0; i < maxSteps && !env.Over(); i++ {
		st := env.StateVec()
		out := policy.Forward(tensor.FromSlice(append([]float32(nil), st...), 1, 6), false)
		best, bi := out.At(0, 0), 0
		for a := 1; a < 3; a++ {
			if v := out.At(0, a); v > best {
				best, bi = v, a
			}
		}
		env.Act(atari.Action(bi))
	}
	return env.Outcome()
}

func copyParams(dst, src []*layers.Param) {
	for i, p := range dst {
		p.Value.CopyFrom(src[i].Value)
	}
}

// rollout collects t_max steps from env under the local policy.
func rollout(env atari.Env, local *graph.Network, rng *tensor.RNG, tmax int) (states *tensor.Tensor, actions []int, rewards []float64) {
	states = tensor.New(tmax, 6)
	actions = make([]int, tmax)
	rewards = make([]float64, tmax)
	for t := 0; t < tmax; t++ {
		st := env.StateVec()
		copy(states.Data()[t*6:(t+1)*6], st)
		out := local.Forward(tensor.FromSlice(append([]float32(nil), st...), 1, 6), false)
		a := samplePolicy(out.Data()[:3], rng)
		actions[t] = a
		r, done := env.Act(atari.Action(a))
		rewards[t] = r
		if done {
			env.Restart()
		}
	}
	return states, actions, rewards
}

func samplePolicy(logits []float32, rng *tensor.RNG) int {
	// Softmax sample.
	m := logits[0]
	for _, v := range logits {
		if v > m {
			m = v
		}
	}
	var sum float64
	probs := make([]float64, len(logits))
	for i, v := range logits {
		probs[i] = math.Exp(float64(v - m))
		sum += probs[i]
	}
	u := rng.Float64() * sum
	for i, p := range probs {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(logits) - 1
}

// a3cGradients computes actor-critic gradients for one rollout on the
// local network and returns per-parameter gradient tensors.
func a3cGradients(local *graph.Network, states *tensor.Tensor, actions []int, rewards []float64, gamma, entropy float32) []*tensor.Tensor {
	T := len(actions)
	optim.ZeroGrads(local.Params())
	out := local.Forward(states, true) // [T, 4]: logits 0..2, value 3

	// Discounted returns (bootstrap from the last value estimate).
	returns := make([]float32, T)
	run := out.At(T-1, 3)
	for t := T - 1; t >= 0; t-- {
		run = float32(rewards[t]) + gamma*run
		returns[t] = run
	}

	gout := tensor.New(T, 4)
	invT := 1 / float32(T)
	for t := 0; t < T; t++ {
		logits := []float32{out.At(t, 0), out.At(t, 1), out.At(t, 2)}
		probs := softmax3(logits)
		v := out.At(t, 3)
		adv := returns[t] - v
		// Policy gradient: (π - onehot(a)) * advantage.
		var h float64 // entropy for the bonus term
		for i := 0; i < 3; i++ {
			if probs[i] > 1e-8 {
				h -= float64(probs[i]) * math.Log(float64(probs[i]))
			}
		}
		for i := 0; i < 3; i++ {
			g := probs[i] * adv
			if i == actions[t] {
				g -= adv
			}
			// Entropy bonus gradient: -β dH/dlogit = β π (logπ + H).
			if probs[i] > 1e-8 {
				g += entropy * probs[i] * (float32(math.Log(float64(probs[i]))) + float32(h))
			}
			gout.Set(g*invT, t, i)
		}
		// Value loss 0.5*(R - V)²: dV = (V - R).
		gout.Set(0.5*(v-returns[t])*invT, t, 3)
	}
	local.Backward(gout)

	grads := make([]*tensor.Tensor, 0, len(local.Params()))
	for _, p := range local.Params() {
		grads = append(grads, p.Grad.Clone())
	}
	return grads
}

func softmax3(logits []float32) [3]float32 {
	m := logits[0]
	for _, v := range logits {
		if v > m {
			m = v
		}
	}
	var sum float64
	var e [3]float64
	for i, v := range logits {
		e[i] = math.Exp(float64(v - m))
		sum += e[i]
	}
	var out [3]float32
	for i := range out {
		out[i] = float32(e[i] / sum)
	}
	return out
}
