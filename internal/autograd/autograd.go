// Package autograd is a tape-based reverse-mode automatic differentiation
// engine over the tensor package — the imperative ("define-by-run")
// execution style of PyTorch and Chainer that the paper's §2.3 contrasts
// with the declarative dataflow of TensorFlow/MXNet/CNTK. Operations
// record themselves on a tape as they execute; Backward replays the tape
// in reverse, accumulating gradients into every variable that requires
// them.
//
// The engine is deliberately independent of the layers package: the two
// implement backpropagation twice by different designs, and the test
// suite cross-validates their gradients against each other — the
// strongest correctness check the repository has for either.
package autograd

import (
	"fmt"

	"tbd/internal/tensor"
)

// Tape records operations in execution order so gradients can be replayed
// in reverse. A Tape is not safe for concurrent use; create one per
// training goroutine.
type Tape struct {
	nodes []*Var
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset clears the recorded operations (keeps no references to old
// variables), letting one tape serve many iterations.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Var is one node of the computation: a value, an optional gradient
// accumulator, and the closure that propagates its gradient to its
// parents.
type Var struct {
	Value *tensor.Tensor
	// Grad accumulates d(loss)/d(Value) after Backward; nil until used.
	Grad *tensor.Tensor

	tape     *Tape
	requires bool
	back     func(g *tensor.Tensor)
}

// Param registers a trainable leaf variable on the tape.
func (t *Tape) Param(v *tensor.Tensor) *Var {
	return &Var{Value: v, tape: t, requires: true}
}

// Const registers a non-trainable input.
func (t *Tape) Const(v *tensor.Tensor) *Var {
	return &Var{Value: v, tape: t, requires: false}
}

// RequiresGrad reports whether gradients flow into this variable.
func (v *Var) RequiresGrad() bool { return v.requires }

// node records an operation's output on the tape.
func (t *Tape) node(value *tensor.Tensor, requires bool, back func(g *tensor.Tensor)) *Var {
	out := &Var{Value: value, tape: t, requires: requires, back: back}
	if requires {
		t.nodes = append(t.nodes, out)
	}
	return out
}

// accumulate adds g into v.Grad (allocating on first use).
func (v *Var) accumulate(g *tensor.Tensor) {
	if !v.requires {
		return
	}
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Shape()...)
	}
	tensor.AddInPlace(v.Grad, g)
}

// ZeroGrad clears the variable's gradient.
func (v *Var) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// Backward seeds d(loss)/d(v) = 1 (v must be scalar-like: one element)
// and replays the tape in reverse, filling Grad on every requires-grad
// variable reachable from v.
func (v *Var) Backward() {
	if v.Value.Numel() != 1 {
		panic(fmt.Sprintf("autograd: Backward needs a scalar, got shape %v", v.Value.Shape()))
	}
	v.BackwardWith(tensor.Ones(v.Value.Shape()...))
}

// BackwardWith seeds an explicit output gradient.
func (v *Var) BackwardWith(seed *tensor.Tensor) {
	if !v.Value.SameShape(seed) {
		panic(fmt.Sprintf("autograd: seed shape %v != value shape %v", seed.Shape(), v.Value.Shape()))
	}
	v.accumulate(seed)
	t := v.tape
	// Reverse tape order is a valid topological order for replay: every
	// node was appended after its parents.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil || n.back == nil {
			continue
		}
		n.back(n.Grad)
	}
}

// binaryRequires is true if either operand needs gradients.
func binaryRequires(a, b *Var) bool { return a.requires || b.requires }

// Add returns a + b.
func Add(a, b *Var) *Var {
	out := tensor.Add(a.Value, b.Value)
	return a.tape.node(out, binaryRequires(a, b), func(g *tensor.Tensor) {
		a.accumulate(g)
		b.accumulate(g)
	})
}

// Sub returns a - b.
func Sub(a, b *Var) *Var {
	out := tensor.Sub(a.Value, b.Value)
	return a.tape.node(out, binaryRequires(a, b), func(g *tensor.Tensor) {
		a.accumulate(g)
		b.accumulate(tensor.Scale(g, -1))
	})
}

// Mul returns the elementwise product a * b.
func Mul(a, b *Var) *Var {
	out := tensor.Mul(a.Value, b.Value)
	return a.tape.node(out, binaryRequires(a, b), func(g *tensor.Tensor) {
		a.accumulate(tensor.Mul(g, b.Value))
		b.accumulate(tensor.Mul(g, a.Value))
	})
}

// Scale returns alpha * a.
func Scale(a *Var, alpha float32) *Var {
	return a.tape.node(tensor.Scale(a.Value, alpha), a.requires, func(g *tensor.Tensor) {
		a.accumulate(tensor.Scale(g, alpha))
	})
}

// MatMul returns a @ b for 2-D operands.
func MatMul(a, b *Var) *Var {
	out := tensor.MatMul(a.Value, b.Value)
	return a.tape.node(out, binaryRequires(a, b), func(g *tensor.Tensor) {
		if a.requires {
			a.accumulate(tensor.MatMulTransB(g, b.Value))
		}
		if b.requires {
			b.accumulate(tensor.MatMulTransA(a.Value, g))
		}
	})
}

// AddBias returns m + row broadcast over rows (bias addition).
func AddBias(m, bias *Var) *Var {
	out := tensor.AddRowBroadcast(m.Value, bias.Value)
	return m.tape.node(out, binaryRequires(m, bias), func(g *tensor.Tensor) {
		m.accumulate(g)
		if bias.requires {
			bias.accumulate(tensor.SumRows(g))
		}
	})
}

// ReLU returns max(0, a).
func ReLU(a *Var) *Var {
	out := tensor.Apply(a.Value, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
	return a.tape.node(out, a.requires, func(g *tensor.Tensor) {
		gx := tensor.New(g.Shape()...)
		for i, v := range a.Value.Data() {
			if v > 0 {
				gx.Data()[i] = g.Data()[i]
			}
		}
		a.accumulate(gx)
	})
}

// Tanh returns tanh(a).
func Tanh(a *Var) *Var {
	out := tensor.Apply(a.Value, tanh32)
	return a.tape.node(out, a.requires, func(g *tensor.Tensor) {
		gx := tensor.New(g.Shape()...)
		for i, y := range out.Data() {
			gx.Data()[i] = g.Data()[i] * (1 - y*y)
		}
		a.accumulate(gx)
	})
}

// Sigmoid returns 1/(1+exp(-a)).
func Sigmoid(a *Var) *Var {
	out := tensor.Apply(a.Value, sigmoid32)
	return a.tape.node(out, a.requires, func(g *tensor.Tensor) {
		gx := tensor.New(g.Shape()...)
		for i, y := range out.Data() {
			gx.Data()[i] = g.Data()[i] * y * (1 - y)
		}
		a.accumulate(gx)
	})
}

// Reshape returns a view with a new shape (gradients reshape back).
func Reshape(a *Var, shape ...int) *Var {
	origShape := append([]int(nil), a.Value.Shape()...)
	out := a.Value.Clone().Reshape(shape...)
	return a.tape.node(out, a.requires, func(g *tensor.Tensor) {
		a.accumulate(g.Clone().Reshape(origShape...))
	})
}

// Mean returns the scalar mean of all elements (shape [1]).
func Mean(a *Var) *Var {
	out := tensor.FromSlice([]float32{a.Value.Mean()}, 1)
	inv := 1 / float32(a.Value.Numel())
	return a.tape.node(out, a.requires, func(g *tensor.Tensor) {
		gx := tensor.Full(g.Data()[0]*inv, a.Value.Shape()...)
		a.accumulate(gx)
	})
}

// Sum returns the scalar sum of all elements (shape [1]).
func Sum(a *Var) *Var {
	out := tensor.FromSlice([]float32{a.Value.Sum()}, 1)
	return a.tape.node(out, a.requires, func(g *tensor.Tensor) {
		a.accumulate(tensor.Full(g.Data()[0], a.Value.Shape()...))
	})
}

// CrossEntropy returns the scalar mean cross-entropy of logits [N, F]
// against integer labels.
func CrossEntropy(logits *Var, labels []int) *Var {
	loss, grad := tensor.CrossEntropy(logits.Value, labels)
	out := tensor.FromSlice([]float32{loss}, 1)
	return logits.tape.node(out, logits.requires, func(g *tensor.Tensor) {
		logits.accumulate(tensor.Scale(grad, g.Data()[0]))
	})
}

// Conv2D returns the convolution of x [N,C,H,W] with w [F,C,k,k].
func Conv2D(x, w *Var, stride, pad int) *Var {
	out := tensor.Conv2D(x.Value, w.Value, stride, pad)
	return x.tape.node(out, binaryRequires(x, w), func(g *tensor.Tensor) {
		gx, gw := tensor.Conv2DBackward(x.Value, w.Value, g, stride, pad)
		if x.requires {
			x.accumulate(gx)
		}
		if w.requires {
			w.accumulate(gw)
		}
	})
}

func tanh32(v float32) float32 {
	// Route through the same math as the layers package for equality
	// tests.
	e2 := exp32(2 * v)
	return (e2 - 1) / (e2 + 1)
}

func sigmoid32(v float32) float32 {
	return 1 / (1 + exp32(-v))
}

func exp32(v float32) float32 {
	return float32(expFloat(float64(v)))
}
