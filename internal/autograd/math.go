package autograd

import "math"

// expFloat isolates the float64 exponential used by the activations.
func expFloat(v float64) float64 { return math.Exp(v) }
