package autograd

import (
	"math"
	"testing"

	"tbd/internal/layers"
	"tbd/internal/tensor"
)

func TestMatMulGradientsMatchFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(1)
	av := tensor.RandNormal(rng, 0, 1, 3, 4)
	bv := tensor.RandNormal(rng, 0, 1, 4, 2)
	loss := func() float32 {
		tape := NewTape()
		a := tape.Param(av)
		b := tape.Param(bv)
		return Sum(MatMul(a, b)).Value.Data()[0]
	}
	tape := NewTape()
	a := tape.Param(av)
	b := tape.Param(bv)
	Sum(MatMul(a, b)).Backward()

	const eps = 1e-2
	base := loss()
	_ = base
	for _, i := range []int{0, 5, 11} {
		orig := av.Data()[i]
		av.Data()[i] = orig + eps
		up := loss()
		av.Data()[i] = orig - eps
		down := loss()
		av.Data()[i] = orig
		num := float64(up-down) / (2 * eps)
		if math.Abs(num-float64(a.Grad.Data()[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("a.grad[%d]: %g vs %g", i, num, a.Grad.Data()[i])
		}
	}
	for _, i := range []int{0, 3, 7} {
		orig := bv.Data()[i]
		bv.Data()[i] = orig + eps
		up := loss()
		bv.Data()[i] = orig - eps
		down := loss()
		bv.Data()[i] = orig
		num := float64(up-down) / (2 * eps)
		if math.Abs(num-float64(b.Grad.Data()[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("b.grad[%d]: %g vs %g", i, num, b.Grad.Data()[i])
		}
	}
}

func TestAutogradMatchesLayersDense(t *testing.T) {
	// The same dense+ReLU+dense forward, computed imperatively on the
	// tape and declaratively through the layers package, must produce
	// identical outputs and parameter gradients.
	rng := tensor.NewRNG(2)
	dense1 := layers.NewDense("fc1", 4, 8, rng)
	dense2 := layers.NewDense("fc2", 8, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 5, 4)
	labels := []int{0, 2, 1, 0, 2}

	// Declarative path.
	seq := layers.NewSequential("mlp", dense1, layers.NewReLU("r"), dense2)
	for _, p := range seq.Params() {
		p.ZeroGrad()
	}
	logits := seq.Forward(x, true)
	lossL, gradL := tensor.CrossEntropy(logits, labels)
	seq.Backward(gradL)

	// Imperative path over the same weight tensors.
	tape := NewTape()
	w1 := tape.Param(dense1.W.Value)
	b1 := tape.Param(dense1.B.Value)
	w2 := tape.Param(dense2.W.Value)
	b2 := tape.Param(dense2.B.Value)
	in := tape.Const(x)
	h := ReLU(AddBias(MatMul(in, w1), b1))
	out := AddBias(MatMul(h, w2), b2)
	lossA := CrossEntropy(out, labels)
	lossA.Backward()

	if math.Abs(float64(lossA.Value.Data()[0]-lossL)) > 1e-5 {
		t.Fatalf("losses differ: autograd %g vs layers %g", lossA.Value.Data()[0], lossL)
	}
	if !tensor.Equal(out.Value, logits, 1e-5) {
		t.Fatal("forward outputs differ")
	}
	pairs := []struct {
		name string
		av   *tensor.Tensor
		lv   *tensor.Tensor
	}{
		{"W1", w1.Grad, dense1.W.Grad},
		{"b1", b1.Grad, dense1.B.Grad},
		{"W2", w2.Grad, dense2.W.Grad},
		{"b2", b2.Grad, dense2.B.Grad},
	}
	for _, p := range pairs {
		if p.av == nil {
			t.Fatalf("%s: autograd gradient missing", p.name)
		}
		if !tensor.Equal(p.av, p.lv, 1e-5) {
			t.Fatalf("%s: autograd and layers gradients differ", p.name)
		}
	}
}

func TestAutogradMatchesLayersConv(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := layers.NewConv2DNoBias("conv", 2, 3, 3, 1, 1, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 5, 5)

	for _, p := range conv.Params() {
		p.ZeroGrad()
	}
	y := conv.Forward(x, true)
	gy := tensor.Ones(y.Shape()...)
	conv.Backward(gy)

	tape := NewTape()
	w := tape.Param(conv.W.Value)
	in := tape.Const(x)
	out := Conv2D(in, w, 1, 1)
	Sum(out).Backward()

	if !tensor.Equal(out.Value, y, 1e-5) {
		t.Fatal("conv forward differs")
	}
	if !tensor.Equal(w.Grad, conv.W.Grad, 1e-4) {
		t.Fatal("conv weight gradients differ between engines")
	}
}

func TestDiamondGraphAccumulates(t *testing.T) {
	// y = sum(x*x + x*x): the shared node x feeds two branches, so its
	// gradient must accumulate from both: dy/dx = 4x.
	xv := tensor.FromSlice([]float32{1, 2, 3}, 3)
	tape := NewTape()
	x := tape.Param(xv)
	a := Mul(x, x)
	b := Mul(x, x)
	Sum(Add(a, b)).Backward()
	for i, v := range xv.Data() {
		want := 4 * v
		if math.Abs(float64(x.Grad.Data()[i]-want)) > 1e-5 {
			t.Fatalf("diamond grad[%d] = %g, want %g", i, x.Grad.Data()[i], want)
		}
	}
}

func TestConstGetsNoGradient(t *testing.T) {
	tape := NewTape()
	c := tape.Const(tensor.FromSlice([]float32{2}, 1))
	p := tape.Param(tensor.FromSlice([]float32{3}, 1))
	Sum(Mul(c, p)).Backward()
	if c.Grad != nil {
		t.Fatal("constant accumulated a gradient")
	}
	if p.Grad == nil || p.Grad.Data()[0] != 2 {
		t.Fatalf("param grad = %v, want 2", p.Grad)
	}
}

func TestActivationsAndReshape(t *testing.T) {
	rng := tensor.NewRNG(4)
	xv := tensor.RandNormal(rng, 0, 1, 2, 6)
	for _, op := range []struct {
		name string
		f    func(*Var) *Var
	}{
		{"relu", ReLU}, {"tanh", Tanh}, {"sigmoid", Sigmoid},
		{"reshape", func(v *Var) *Var { return Reshape(v, 3, 4) }},
		{"scale", func(v *Var) *Var { return Scale(v, 2.5) }},
		{"mean", Mean},
	} {
		loss := func() float32 {
			tape := NewTape()
			x := tape.Param(xv)
			out := op.f(x)
			if out.Value.Numel() > 1 {
				out = Sum(out)
			}
			return out.Value.Data()[0]
		}
		tape := NewTape()
		x := tape.Param(xv)
		out := op.f(x)
		if out.Value.Numel() > 1 {
			out = Sum(out)
		}
		out.Backward()
		const eps = 1e-2
		for _, i := range []int{0, 7, 11} {
			orig := xv.Data()[i]
			xv.Data()[i] = orig + eps
			up := loss()
			xv.Data()[i] = orig - eps
			down := loss()
			xv.Data()[i] = orig
			num := float64(up-down) / (2 * eps)
			if math.Abs(num-float64(x.Grad.Data()[i])) > 2e-2*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: %g vs %g", op.name, i, num, x.Grad.Data()[i])
			}
		}
	}
}

func TestImperativeTrainingConverges(t *testing.T) {
	// Define-by-run training loop: rebuild the graph every iteration (the
	// Chainer/PyTorch style) and converge on a separable task.
	rng := tensor.NewRNG(5)
	w1v := tensor.XavierInit(rng, 2, 16, 2, 16)
	b1v := tensor.New(16)
	w2v := tensor.XavierInit(rng, 16, 2, 16, 2)
	b2v := tensor.New(2)
	batch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 2)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := rng.Intn(2)
			labels[i] = c
			cx := float32(2*c - 1)
			x.Set(cx+0.3*float32(rng.Norm()), i, 0)
			x.Set(cx+0.3*float32(rng.Norm()), i, 1)
		}
		return x, labels
	}
	var first, last float32
	for step := 0; step < 150; step++ {
		xv, labels := batch(16)
		tape := NewTape()
		w1, b1 := tape.Param(w1v), tape.Param(b1v)
		w2, b2 := tape.Param(w2v), tape.Param(b2v)
		x := tape.Const(xv)
		loss := CrossEntropy(AddBias(MatMul(ReLU(AddBias(MatMul(x, w1), b1)), w2), b2), labels)
		loss.Backward()
		for _, p := range []*Var{w1, b1, w2, b2} {
			for i, g := range p.Grad.Data() {
				p.Value.Data()[i] -= 0.1 * g
			}
		}
		if step == 0 {
			first = loss.Value.Data()[0]
		}
		last = loss.Value.Data()[0]
	}
	if last >= first/4 {
		t.Fatalf("imperative training did not converge: %.4f -> %.4f", first, last)
	}
}

func TestBackwardValidatesScalar(t *testing.T) {
	tape := NewTape()
	x := tape.Param(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("non-scalar Backward must panic")
		}
	}()
	x.Backward()
}

func TestTapeReset(t *testing.T) {
	tape := NewTape()
	x := tape.Param(tensor.FromSlice([]float32{1}, 1))
	Sum(Mul(x, x)).Backward()
	if len(tape.nodes) == 0 {
		t.Fatal("tape recorded nothing")
	}
	tape.Reset()
	if len(tape.nodes) != 0 {
		t.Fatal("reset did not clear the tape")
	}
}
