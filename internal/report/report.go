// Package report renders experiment results as aligned ASCII tables and
// CSV series — the textual equivalents of the paper's tables and figure
// panels.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, sb.String())
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	row := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(out, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the table as an array of column-keyed objects, one per
// row — the shape spreadsheet and plotting tools ingest directly.
func (t *Table) WriteJSON(w io.Writer) error {
	rows := make([]map[string]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		obj := make(map[string]string, len(t.Columns))
		for i, c := range t.Columns {
			if i < len(r) {
				obj[c] = r[i]
			}
		}
		rows = append(rows, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title string              `json:"title,omitempty"`
		Rows  []map[string]string `json:"rows"`
	}{t.Title, rows})
}

// Series is one labeled line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// XLabels optionally replaces numeric X values (categorical axes).
	XLabels []string
}

// Figure is a titled set of series, the data behind one figure panel.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes each series as an aligned value table.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s  [%s vs %s]\n", f.Title, f.YLabel, f.XLabel); err != nil {
		return err
	}
	tbl := &Table{Columns: []string{f.XLabel}}
	for _, s := range f.Series {
		tbl.Columns = append(tbl.Columns, s.Name)
	}
	// Collect the union of x positions in first-seen order.
	type key struct{ label string }
	var order []string
	seen := map[string]bool{}
	labelOf := func(s Series, i int) string {
		if s.XLabels != nil {
			return s.XLabels[i]
		}
		return trimFloat(s.X[i])
	}
	for _, s := range f.Series {
		for i := range s.Y {
			l := labelOf(s, i)
			if !seen[l] {
				seen[l] = true
				order = append(order, l)
			}
		}
	}
	for _, l := range order {
		row := []string{l}
		for _, s := range f.Series {
			cell := ""
			for i := range s.Y {
				if labelOf(s, i) == l {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl.Render(w)
}

// WriteCSV writes the figure as long-form CSV (series,x,y).
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.Y {
			x := ""
			if s.XLabels != nil {
				x = s.XLabels[i]
			} else {
				x = trimFloat(s.X[i])
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%g\n", s.Name, x, s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
