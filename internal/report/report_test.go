package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"name", "value"}}
	tbl.AddRow("alpha", 1.50)
	tbl.AddRow("b", 42)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n", "name", "value", "alpha", "1.5", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: "alpha" pads "b" row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d", len(lines))
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow(`with,comma`, `with"quote`)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"with,comma\",\"with\"\"quote\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFloatTrimming(t *testing.T) {
	tbl := &Table{Columns: []string{"v"}}
	tbl.AddRow(2.00)
	tbl.AddRow(float32(0.25))
	if tbl.Rows[0][0] != "2" || tbl.Rows[1][0] != "0.25" {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestFigureRenderAlignsSeries(t *testing.T) {
	f := &Figure{
		Title: "Fig", XLabel: "batch", YLabel: "throughput",
		Series: []Series{
			{Name: "tf", X: []float64{4, 8}, Y: []float64{10, 20}},
			{Name: "mxnet", X: []float64{8, 16}, Y: []float64{22, 30}},
		},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tf", "mxnet", "batch", "10", "30"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure missing %q:\n%s", want, out)
		}
	}
	// x=4 row exists with empty mxnet cell; x=16 row with empty tf cell.
	if !strings.Contains(out, "4") || !strings.Contains(out, "16") {
		t.Fatalf("x union broken:\n%s", out)
	}
}

func TestFigureCSVLongForm(t *testing.T) {
	f := &Figure{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "series,x,y\ns,1,2\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestFigureCategoricalLabels(t *testing.T) {
	f := &Figure{
		XLabel: "config", YLabel: "v",
		Series: []Series{{Name: "s", XLabels: []string{"1M1G", "2M1G"}, X: []float64{0, 1}, Y: []float64{5, 6}}},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1M1G") {
		t.Fatalf("categorical labels missing:\n%s", buf.String())
	}
}

func TestMarkdownRender(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "b"}}
	tbl.AddRow("x|y", 1.5)
	var buf bytes.Buffer
	if err := tbl.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", `x\|y`, "1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableWriteJSON(t *testing.T) {
	tbl := &Table{Title: "K", Columns: []string{"kernel", "ms"}}
	tbl.AddRow("gemm", 1.25)
	tbl.AddRow("conv2d.fwd", 3.5)
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "K" || len(got.Rows) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Rows[1]["kernel"] != "conv2d.fwd" || got.Rows[1]["ms"] != "3.5" {
		t.Fatalf("row 1 = %v", got.Rows[1])
	}
}
