// Package sim is the discrete-event execution simulator that replays a
// model's per-iteration kernel stream on a modeled GPU and host CPU,
// producing the metrics the paper's toolchain measures: iteration time,
// training throughput, GPU compute utilization (Eq. 1), FP32 utilization
// (Eq. 2), CPU utilization (Eq. 3), and per-kernel aggregates for the
// low-utilization kernel tables (Tables 5 and 6).
//
// The execution model is a two-agent pipeline. The host dispatch thread
// issues kernels in order, paying a per-kernel launch overhead; the GPU
// executes them in order as they arrive. A kernel marked Sync forces the
// host to drain the device before continuing (the per-timestep control
// flow of unfused RNN loops), which is the mechanism that keeps LSTM
// models from saturating the GPU.
package sim

import (
	"fmt"
	"sort"

	"tbd/internal/device"
	"tbd/internal/kernels"
)

// Config describes one training setup to simulate.
type Config struct {
	// GPU is the device executing kernels.
	GPU *device.GPU
	// CPU is the host processor (defaults to the paper's Xeon E5-2680).
	CPU *device.CPU

	// LaunchOverheadSec is host CPU time to dispatch one kernel
	// (framework op scheduling + cudaLaunch).
	LaunchOverheadSec float64
	// SyncOverheadSec is extra host time paid at each Sync kernel after
	// draining the device.
	SyncOverheadSec float64
	// IterOverheadSec is fixed per-iteration host work (session run
	// setup, feed/fetch, queue management).
	IterOverheadSec float64

	// HostCPUSecPerSample is host-side per-sample work that overlaps with
	// GPU compute: the input pipeline (decode, augment) plus any
	// CPU-resident algorithm stages (A3C environment steps, Faster R-CNN
	// proposal handling).
	HostCPUSecPerSample float64
	// PipelineWorkers is the parallelism of the input pipeline.
	PipelineWorkers int

	// SpeedFactor scales kernel durations for per-framework
	// implementation efficiency (1.0 = baseline).
	SpeedFactor float64

	// SampleBytes, when positive, adds a host-to-device input-copy
	// kernel of batch*SampleBytes per iteration (the data-transfer stage
	// of §2.3).
	SampleBytes int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CPU == nil {
		c.CPU = device.XeonE52680
	}
	if c.PipelineWorkers == 0 {
		c.PipelineWorkers = 4
	}
	if c.SpeedFactor == 0 {
		c.SpeedFactor = 1
	}
	return c
}

// KernelStat aggregates all launches of one kernel name in an iteration.
type KernelStat struct {
	Name     string
	Class    kernels.Class
	Count    int
	TotalSec float64
	FLOPs    float64
	// Util is the FP32 utilization of this kernel while resident.
	Util float64
	// DurationShare is TotalSec / GPU busy time.
	DurationShare float64
}

// Result is the simulated profile of one training iteration.
type Result struct {
	Batch       int
	IterTimeSec float64
	GPUBusySec  float64
	CPUBusySec  float64
	FLOPs       float64
	KernelCount int

	// Throughput is samples/second (Batch / IterTimeSec).
	Throughput float64
	// GPUUtil is Eq. 1: GPU active time / elapsed time.
	GPUUtil float64
	// FP32Util is Eq. 2: achieved FLOPs / (peak * active time).
	FP32Util float64
	// CPUUtil is Eq. 3: host busy time / (elapsed * cores).
	CPUUtil float64

	PerKernel []KernelStat
}

// Simulate replays one training iteration of the given op graph at the
// given batch size under cfg.
func Simulate(ops []*kernels.Op, batch int, style kernels.NameStyle, cfg Config) Result {
	if batch <= 0 {
		panic(fmt.Sprintf("sim: non-positive batch %d", batch))
	}
	cfg = cfg.withDefaults()
	var stream []kernels.Kernel
	if cfg.SampleBytes > 0 {
		stream = append(stream, kernels.InputTransfer(batch, cfg.SampleBytes))
	}
	stream = append(stream, kernels.IterationKernels(ops, batch, style)...)
	return replay(stream, batch, cfg)
}

// replay runs the two-agent pipeline over an explicit kernel stream.
func replay(stream []kernels.Kernel, batch int, cfg Config) Result {
	cfg = cfg.withDefaults()
	var (
		cpuClock float64 // host dispatch thread position
		gpuFree  float64 // device completion time
		busy     float64
		flops    float64
		cpuBusy  float64
	)
	cpuClock = cfg.IterOverheadSec / 2
	cpuBusy = cfg.IterOverheadSec

	agg := make(map[string]*KernelStat)
	for _, k := range stream {
		if k.Sync {
			// Host must observe device completion before this step.
			if gpuFree > cpuClock {
				cpuClock = gpuFree
			}
			cpuClock += cfg.SyncOverheadSec
			cpuBusy += cfg.SyncOverheadSec
		}
		cpuClock += cfg.LaunchOverheadSec
		cpuBusy += cfg.LaunchOverheadSec
		dur := k.Duration(cfg.GPU) / cfg.SpeedFactor
		start := cpuClock
		if gpuFree > start {
			start = gpuFree
		}
		gpuFree = start + dur
		busy += dur
		flops += k.FLOPs

		st, ok := agg[k.Name]
		if !ok {
			st = &KernelStat{Name: k.Name, Class: k.Class}
			agg[k.Name] = st
		}
		st.Count++
		st.TotalSec += dur
		st.FLOPs += k.FLOPs
	}
	computePath := gpuFree + cfg.IterOverheadSec/2

	// The input pipeline runs on separate host threads, overlapped with
	// compute; it bounds iteration time when slower (Observation 13's
	// single-machine analogue), and always contributes to CPU busy time.
	pipeline := cfg.HostCPUSecPerSample * float64(batch)
	pipelineWall := pipeline / float64(cfg.PipelineWorkers)
	cpuBusy += pipeline

	iter := computePath
	if pipelineWall > iter {
		iter = pipelineWall
	}

	res := Result{
		Batch:       batch,
		IterTimeSec: iter,
		GPUBusySec:  busy,
		CPUBusySec:  cpuBusy,
		FLOPs:       flops,
		KernelCount: len(stream),
		Throughput:  float64(batch) / iter,
		GPUUtil:     busy / iter,
		CPUUtil:     cpuBusy / (iter * float64(cfg.CPU.Cores)),
	}
	if busy > 0 {
		res.FP32Util = flops / (cfg.GPU.PeakFLOPS() * busy)
	}
	if res.GPUUtil > 1 {
		res.GPUUtil = 1
	}
	if res.FP32Util > 1 {
		res.FP32Util = 1
	}
	for _, st := range agg {
		if st.TotalSec > 0 {
			st.Util = st.FLOPs / (cfg.GPU.PeakFLOPS() * st.TotalSec)
		}
		if busy > 0 {
			st.DurationShare = st.TotalSec / busy
		}
		res.PerKernel = append(res.PerKernel, *st)
	}
	sort.Slice(res.PerKernel, func(i, j int) bool {
		return res.PerKernel[i].TotalSec > res.PerKernel[j].TotalSec
	})
	return res
}

// Replay exposes the raw-stream simulator for callers that transform the
// kernel stream first (framework fusion passes, trace capture).
func Replay(stream []kernels.Kernel, batch int, cfg Config) Result {
	return replay(stream, batch, cfg)
}

// Event is one kernel execution on the simulated timeline.
type Event struct {
	Name     string
	Class    kernels.Class
	StartSec float64
	DurSec   float64
	FLOPs    float64
	Sync     bool
}

// ReplayWithTrace is Replay plus a full kernel timeline, the analogue of
// an nvprof .nvvp capture.
func ReplayWithTrace(stream []kernels.Kernel, batch int, cfg Config) (Result, []Event) {
	cfg = cfg.withDefaults()
	events := make([]Event, 0, len(stream))
	var cpuClock, gpuFree float64
	cpuClock = cfg.IterOverheadSec / 2
	for _, k := range stream {
		if k.Sync {
			if gpuFree > cpuClock {
				cpuClock = gpuFree
			}
			cpuClock += cfg.SyncOverheadSec
		}
		cpuClock += cfg.LaunchOverheadSec
		dur := k.Duration(cfg.GPU) / cfg.SpeedFactor
		start := cpuClock
		if gpuFree > start {
			start = gpuFree
		}
		gpuFree = start + dur
		events = append(events, Event{Name: k.Name, Class: k.Class, StartSec: start, DurSec: dur, FLOPs: k.FLOPs, Sync: k.Sync})
	}
	return replay(stream, batch, cfg), events
}

// LongLowUtilKernels returns the top-n kernels by total duration whose
// FP32 utilization is below the iteration average — the paper's Tables 5
// and 6 ("longest kernels with utilization below the average").
func LongLowUtilKernels(r Result, n int) []KernelStat {
	avg := r.FP32Util
	var out []KernelStat
	for _, st := range r.PerKernel {
		if st.Util < avg {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalSec > out[j].TotalSec })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// WarmupTrace models the measured shape of a fresh training run
// (§3.4.2): the first iterations pay graph construction, memory-allocator
// growth, and autotuning costs that decay geometrically toward the stable
// iteration time. It returns per-iteration durations for iters iterations.
func WarmupTrace(stable float64, iters int) []float64 {
	out := make([]float64, iters)
	// Warm-up multiplier decays from ~6x to 1x over the first ~10% of
	// iterations, mimicking allocator growth + cuDNN autotuning.
	decay := 0.93
	mult := 6.0
	for i := range out {
		out[i] = stable * (1 + (mult-1)*pow(decay, i))
	}
	return out
}

func pow(b float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= b
	}
	return p
}
