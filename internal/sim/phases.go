package sim

import "tbd/internal/kernels"

// PhaseProfile breaks one training iteration's GPU time into the three
// algorithmic phases of Figure 1 — forward pass, backward pass, and
// weight update — the breakdown Fathom-style tools report per op type
// and TBD's toolchain reports per phase.
type PhaseProfile struct {
	ForwardSec  float64
	BackwardSec float64
	UpdateSec   float64
	// Kernel counts per phase.
	ForwardKernels, BackwardKernels, UpdateKernels int
}

// TotalSec returns the summed phase time.
func (p PhaseProfile) TotalSec() float64 {
	return p.ForwardSec + p.BackwardSec + p.UpdateSec
}

// BackwardToForwardRatio returns backward time over forward time; ~2x is
// the rule of thumb the paper's background section describes (gradient
// w.r.t. both data and weights).
func (p PhaseProfile) BackwardToForwardRatio() float64 {
	if p.ForwardSec == 0 {
		return 0
	}
	return p.BackwardSec / p.ForwardSec
}

// Phases prices each training phase of an op graph on the configured
// device (durations only; dispatch gaps are a whole-iteration property
// reported by Simulate).
func Phases(ops []*kernels.Op, batch int, style kernels.NameStyle, cfg Config) PhaseProfile {
	cfg = cfg.withDefaults()
	var p PhaseProfile
	price := func(ks []kernels.Kernel) (float64, int) {
		var t float64
		for _, k := range ks {
			t += k.Duration(cfg.GPU) / cfg.SpeedFactor
		}
		return t, len(ks)
	}
	for _, o := range ops {
		t, n := price(o.Forward(batch, style))
		p.ForwardSec += t
		p.ForwardKernels += n
		t, n = price(o.Backward(batch, style))
		p.BackwardSec += t
		p.BackwardKernels += n
		t, n = price(o.Update(style))
		p.UpdateSec += t
		p.UpdateKernels += n
	}
	return p
}
