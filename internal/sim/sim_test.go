package sim

import (
	"math"
	"testing"

	"tbd/internal/device"
	"tbd/internal/kernels"
)

func cnnOps() []*kernels.Op {
	var ops []*kernels.Op
	c := 32
	h := 56
	for i := 0; i < 8; i++ {
		ops = append(ops,
			&kernels.Op{Name: "conv", Kind: kernels.OpConv2D, InC: c, OutC: c, H: h, W: h, K: 3, Stride: 1, Pad: 1},
			&kernels.Op{Name: "bn", Kind: kernels.OpBatchNorm, Channels: c, H: h, W: h},
			&kernels.Op{Name: "relu", Kind: kernels.OpActivation, Channels: c, H: h, W: h},
		)
	}
	return ops
}

func lstmOps() []*kernels.Op {
	var ops []*kernels.Op
	for i := 0; i < 4; i++ {
		ops = append(ops, &kernels.Op{Name: "lstm", Kind: kernels.OpLSTMSeq, T: 25, Input: 512, Hidden: 512})
	}
	return ops
}

func baseCfg() Config {
	return Config{
		GPU:               device.QuadroP4000,
		LaunchOverheadSec: 8e-6,
		SyncOverheadSec:   150e-6,
		IterOverheadSec:   2e-3,
	}
}

func TestConservationLaws(t *testing.T) {
	r := Simulate(cnnOps(), 16, kernels.StyleTF, baseCfg())
	if r.GPUBusySec > r.IterTimeSec+1e-12 {
		t.Fatalf("busy %.6f > elapsed %.6f", r.GPUBusySec, r.IterTimeSec)
	}
	if r.GPUUtil < 0 || r.GPUUtil > 1 || r.FP32Util < 0 || r.FP32Util > 1 || r.CPUUtil < 0 || r.CPUUtil > 1 {
		t.Fatalf("utilization out of range: %+v", r)
	}
	if r.Throughput <= 0 || r.KernelCount == 0 || r.FLOPs <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// Per-kernel durations sum to busy time.
	var sum float64
	for _, st := range r.PerKernel {
		sum += st.TotalSec
	}
	if math.Abs(sum-r.GPUBusySec) > 1e-9 {
		t.Fatalf("per-kernel sum %.9f != busy %.9f", sum, r.GPUBusySec)
	}
}

func TestThroughputIncreasesWithBatch(t *testing.T) {
	// Observation 1: performance increases with mini-batch size.
	cfg := baseCfg()
	prev := 0.0
	for _, b := range []int{4, 8, 16, 32, 64} {
		r := Simulate(cnnOps(), b, kernels.StyleTF, cfg)
		if r.Throughput <= prev {
			t.Fatalf("throughput not increasing at batch %d: %.1f <= %.1f", b, r.Throughput, prev)
		}
		prev = r.Throughput
	}
}

func TestThroughputSaturatesForCNN(t *testing.T) {
	// Observation 2 (contrapositive): non-RNN models saturate — the
	// relative gain from 32->64 is much smaller than from 4->8.
	cfg := baseCfg()
	th := func(b int) float64 { return Simulate(cnnOps(), b, kernels.StyleTF, cfg).Throughput }
	gainSmall := th(8) / th(4)
	gainLarge := th(64) / th(32)
	if gainLarge >= gainSmall {
		t.Fatalf("no saturation: small-batch gain %.3f, large-batch gain %.3f", gainSmall, gainLarge)
	}
	if gainLarge > 1.15 {
		t.Fatalf("CNN should be nearly saturated by batch 32 (gain %.3f)", gainLarge)
	}
}

func TestLSTMUtilizationMuchLowerThanCNN(t *testing.T) {
	// Observation 5: GPU utilization of LSTM models is roughly 2-3x
	// lower than CNN models at comparable batch sizes.
	cfg := baseCfg()
	cnn := Simulate(cnnOps(), 32, kernels.StyleTF, cfg)
	lstm := Simulate(lstmOps(), 32, kernels.StyleTF, cfg)
	if cnn.GPUUtil < 0.85 {
		t.Fatalf("CNN GPU util %.2f, want high", cnn.GPUUtil)
	}
	ratio := cnn.GPUUtil / lstm.GPUUtil
	if ratio < 1.5 {
		t.Fatalf("CNN/LSTM GPU util ratio %.2f, want >= 1.5 (obs 5)", ratio)
	}
}

func TestLSTMFP32UtilLow(t *testing.T) {
	// Observation 7: RNN-based models have low FP32 utilization even at
	// their maximum batch size.
	cfg := baseCfg()
	lstm := Simulate(lstmOps(), 64, kernels.StyleTF, cfg)
	cnn := Simulate(cnnOps(), 64, kernels.StyleTF, cfg)
	if lstm.FP32Util >= cnn.FP32Util {
		t.Fatalf("lstm FP32 %.3f >= cnn %.3f", lstm.FP32Util, cnn.FP32Util)
	}
	if lstm.FP32Util > 0.35 {
		t.Fatalf("lstm FP32 util %.3f, want low", lstm.FP32Util)
	}
}

func TestTitanXpFasterButLessUtilized(t *testing.T) {
	// Observation 10: the Titan Xp improves throughput but shows worse
	// GPU and FP32 utilization than the P4000.
	p := baseCfg()
	x := baseCfg()
	x.GPU = device.TitanXp
	rp := Simulate(cnnOps(), 32, kernels.StyleTF, p)
	rx := Simulate(cnnOps(), 32, kernels.StyleTF, x)
	if rx.Throughput <= rp.Throughput {
		t.Fatalf("Titan Xp throughput %.1f <= P4000 %.1f", rx.Throughput, rp.Throughput)
	}
	if rx.FP32Util >= rp.FP32Util {
		t.Fatalf("Titan Xp FP32 util %.3f >= P4000 %.3f", rx.FP32Util, rp.FP32Util)
	}
	if rx.GPUUtil > rp.GPUUtil {
		t.Fatalf("Titan Xp GPU util %.3f > P4000 %.3f", rx.GPUUtil, rp.GPUUtil)
	}
}

func TestCPUUtilizationLow(t *testing.T) {
	// Observation 9: CPU utilization in DNN training is low (< 15%).
	cfg := baseCfg()
	cfg.HostCPUSecPerSample = 2e-3
	r := Simulate(cnnOps(), 32, kernels.StyleTF, cfg)
	if r.CPUUtil > 0.15 {
		t.Fatalf("CPU util %.3f, want < 0.15", r.CPUUtil)
	}
	if r.CPUUtil <= 0 {
		t.Fatal("CPU util must be positive")
	}
}

func TestInputPipelineCanBound(t *testing.T) {
	cfg := baseCfg()
	cfg.HostCPUSecPerSample = 1.0 // absurdly slow pipeline
	r := Simulate(cnnOps(), 32, kernels.StyleTF, cfg)
	if r.GPUUtil > 0.5 {
		t.Fatalf("pipeline-bound run should idle the GPU (util %.2f)", r.GPUUtil)
	}
}

func TestSyncKernelsCreateGaps(t *testing.T) {
	// The identical kernel stream with sync flags cleared must finish
	// no slower than the synced stream.
	cfg := baseCfg()
	stream := kernels.IterationKernels(lstmOps(), 32, kernels.StyleTF)
	synced := Replay(stream, 32, cfg)
	for i := range stream {
		stream[i].Sync = false
	}
	unsynced := Replay(stream, 32, cfg)
	if unsynced.IterTimeSec > synced.IterTimeSec {
		t.Fatalf("removing syncs slowed the run: %.4f > %.4f", unsynced.IterTimeSec, synced.IterTimeSec)
	}
	if unsynced.GPUUtil < synced.GPUUtil {
		t.Fatal("removing syncs should not reduce utilization")
	}
}

func TestLongLowUtilKernelsMatchesTables(t *testing.T) {
	// Tables 5/6: batch-norm kernels are among the longest
	// below-average-utilization kernels for ResNet-style CNNs.
	r := Simulate(cnnOps(), 32, kernels.StyleTF, baseCfg())
	low := LongLowUtilKernels(r, 5)
	if len(low) == 0 {
		t.Fatal("no low-utilization kernels found")
	}
	foundBN := false
	for _, st := range low {
		if st.Class == kernels.BatchNorm {
			foundBN = true
		}
		if st.Util >= r.FP32Util {
			t.Fatalf("kernel %s util %.3f not below average %.3f", st.Name, st.Util, r.FP32Util)
		}
	}
	if !foundBN {
		t.Fatalf("batch-norm kernels missing from low-util table: %+v", low)
	}
}

func TestSpeedFactorScalesThroughput(t *testing.T) {
	slow := baseCfg()
	fast := baseCfg()
	fast.SpeedFactor = 2
	rs := Simulate(cnnOps(), 32, kernels.StyleTF, slow)
	rf := Simulate(cnnOps(), 32, kernels.StyleTF, fast)
	if rf.Throughput <= rs.Throughput {
		t.Fatal("speed factor had no effect")
	}
}

func TestFLOPsInvariantAcrossDevices(t *testing.T) {
	// The workload's FLOPs are a property of the model, not the device.
	p := Simulate(cnnOps(), 16, kernels.StyleTF, baseCfg())
	x := baseCfg()
	x.GPU = device.TitanXp
	xt := Simulate(cnnOps(), 16, kernels.StyleTF, x)
	if p.FLOPs != xt.FLOPs {
		t.Fatalf("FLOPs changed across devices: %g vs %g", p.FLOPs, xt.FLOPs)
	}
}

func TestWarmupTraceDecaysToStable(t *testing.T) {
	tr := WarmupTrace(0.1, 200)
	if len(tr) != 200 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[0] < 0.3 {
		t.Fatalf("first iteration %.3f should be much slower than stable", tr[0])
	}
	for i := 1; i < len(tr); i++ {
		if tr[i] > tr[i-1]+1e-12 {
			t.Fatal("warmup trace must be non-increasing")
		}
	}
	if math.Abs(tr[199]-0.1) > 0.001 {
		t.Fatalf("tail %.4f did not converge to stable 0.1", tr[199])
	}
}

func TestSimulatePanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on batch 0")
		}
	}()
	Simulate(cnnOps(), 0, kernels.StyleTF, baseCfg())
}

func TestInputTransferModeled(t *testing.T) {
	cfg := baseCfg()
	without := Simulate(cnnOps(), 32, kernels.StyleTF, cfg)
	cfg.SampleBytes = 3 * 256 * 256 * 4 // an ImageNet sample
	with := Simulate(cnnOps(), 32, kernels.StyleTF, cfg)
	if with.KernelCount != without.KernelCount+1 {
		t.Fatalf("transfer kernel missing: %d vs %d", with.KernelCount, without.KernelCount)
	}
	if with.IterTimeSec <= without.IterTimeSec {
		t.Fatal("input upload must cost some time")
	}
	// But it is a small overlappable fraction, per the paper's
	// observation that transfers parallelize with compute.
	if (with.IterTimeSec-without.IterTimeSec)/without.IterTimeSec > 0.10 {
		t.Fatalf("input transfer inflated iteration by %.1f%%",
			100*(with.IterTimeSec-without.IterTimeSec)/without.IterTimeSec)
	}
	// The transfer appears in the per-kernel stats with Transfer class.
	found := false
	for _, st := range with.PerKernel {
		if st.Class == kernels.Transfer {
			found = true
			if st.Util != 0 {
				t.Fatal("a copy has no FP32 utilization")
			}
		}
	}
	if !found {
		t.Fatal("transfer kernel not in per-kernel stats")
	}
}
