package sim

import (
	"testing"

	"tbd/internal/kernels"
)

func TestPhasesBackwardHeavierThanForward(t *testing.T) {
	p := Phases(cnnOps(), 32, kernels.StyleTF, baseCfg())
	if p.ForwardSec <= 0 || p.BackwardSec <= 0 || p.UpdateSec <= 0 {
		t.Fatalf("degenerate phase profile: %+v", p)
	}
	ratio := p.BackwardToForwardRatio()
	if ratio < 1.2 || ratio > 3.5 {
		t.Fatalf("backward/forward ratio %.2f, want ~2x", ratio)
	}
	if p.UpdateSec >= p.ForwardSec {
		t.Fatal("weight update should be cheap relative to the passes")
	}
}

func TestPhasesKernelCountsMatchEmission(t *testing.T) {
	ops := cnnOps()
	p := Phases(ops, 8, kernels.StyleTF, baseCfg())
	total := p.ForwardKernels + p.BackwardKernels + p.UpdateKernels
	if total != len(kernels.IterationKernels(ops, 8, kernels.StyleTF)) {
		t.Fatalf("phase kernel counts (%d) disagree with the full stream", total)
	}
}

func TestPhasesTotalBelowIterationTime(t *testing.T) {
	// Phase durations exclude dispatch gaps, so their sum is at most the
	// simulated iteration's span and equals its busy time.
	ops := lstmOps()
	cfg := baseCfg()
	p := Phases(ops, 16, kernels.StyleTF, cfg)
	r := Simulate(ops, 16, kernels.StyleTF, cfg)
	if p.TotalSec() > r.IterTimeSec {
		t.Fatalf("phase total %.4f exceeds iteration %.4f", p.TotalSec(), r.IterTimeSec)
	}
	diff := p.TotalSec() - r.GPUBusySec
	if diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phase total %.6f != busy %.6f", p.TotalSec(), r.GPUBusySec)
	}
}

func TestPhasesZeroRatioWithoutForward(t *testing.T) {
	p := PhaseProfile{BackwardSec: 1}
	if p.BackwardToForwardRatio() != 0 {
		t.Fatal("zero forward must yield zero ratio")
	}
}
