// Package framework models the three deep-learning frameworks the paper
// benchmarks — TensorFlow, MXNet, and CNTK — as execution profiles over
// the shared kernel cost model, the same way the real frameworks are
// different schedulers and allocators over the same cuDNN/cuBLAS kernels
// (§2.3). A profile fixes per-kernel dispatch overhead, RNN-loop sync
// cost, per-iteration overhead, the memory-allocator policy of §3.4.3,
// and a baseline speed factor.
package framework

import (
	"fmt"

	"tbd/internal/device"
	"tbd/internal/kernels"
	"tbd/internal/memprof"
	"tbd/internal/sim"
)

// Framework is one execution profile.
type Framework struct {
	Name  string
	Style kernels.NameStyle

	// LaunchOverheadSec is host CPU time per kernel dispatch.
	LaunchOverheadSec float64
	// SyncOverheadSec is host time per RNN-loop sync point.
	SyncOverheadSec float64
	// IterOverheadSec is fixed per-iteration host work.
	IterOverheadSec float64
	// SpeedFactor is a baseline kernel-efficiency multiplier.
	SpeedFactor float64
	// PipelineCostFactor scales the dataset's host decode cost: CNTK's
	// binary readers do almost no per-sample host work, which is why its
	// CPU utilization in Figure 7 is near zero.
	PipelineCostFactor float64

	// MemPolicy is the allocator behaviour for the memory profiler.
	MemPolicy memprof.Policy
}

// The three frameworks of the paper. Overheads reflect their 2018-era
// architectures: TensorFlow's session/feed machinery is the heaviest,
// MXNet's engine is lighter, and CNTK's C++ core uses almost no host CPU
// (visible in the paper's Figure 7, where CNTK CPU utilization is ~0.1%).
var (
	TensorFlow = &Framework{
		Name:               "TensorFlow",
		Style:              kernels.StyleTF,
		LaunchOverheadSec:  8e-6,
		SyncOverheadSec:    150e-6,
		IterOverheadSec:    5e-3,
		SpeedFactor:        1.0,
		PipelineCostFactor: 1.0,
		MemPolicy: memprof.Policy{
			WorkspaceFactor:               1.2,
			OptimizerStateFloatsPerWeight: 1,
			AllocatorSlack:                1.03,
		},
	}

	MXNet = &Framework{
		Name:               "MXNet",
		Style:              kernels.StyleMXNet,
		LaunchOverheadSec:  6e-6,
		SyncOverheadSec:    180e-6,
		IterOverheadSec:    3e-3,
		SpeedFactor:        1.0,
		PipelineCostFactor: 1.0,
		MemPolicy: memprof.Policy{
			WorkspaceFactor:               1.0,
			OptimizerStateFloatsPerWeight: 1,
			DynamicOptimizerState:         true,
			AllocatorSlack:                1.10,
		},
	}

	CNTK = &Framework{
		Name:               "CNTK",
		Style:              kernels.StyleCNTK,
		LaunchOverheadSec:  3e-6,
		SyncOverheadSec:    120e-6,
		IterOverheadSec:    8e-4,
		SpeedFactor:        0.88,
		PipelineCostFactor: 0.02,
		MemPolicy: memprof.Policy{
			WorkspaceFactor:               0.8,
			OptimizerStateFloatsPerWeight: 1,
			AllocatorSlack:                1.05,
		},
	}
)

// All lists the built-in frameworks.
func All() []*Framework { return []*Framework{TensorFlow, MXNet, CNTK} }

// Lookup resolves a framework by name (case-sensitive, as printed in the
// paper's figures).
func Lookup(name string) (*Framework, error) {
	for _, f := range All() {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("framework: unknown framework %q", name)
}

// SimConfig builds the simulator configuration for this framework on the
// given GPU. hostCPUSecPerSample is the model/dataset-specific host-side
// work (input pipeline, environment stepping); speedFactor is a
// model-specific implementation-efficiency multiplier (1 = neutral)
// capturing that, e.g., MXNet's image models outperform TensorFlow's
// while TensorFlow's seq2seq outperforms Sockeye (Observation 3).
func (f *Framework) SimConfig(gpu *device.GPU, hostCPUSecPerSample, speedFactor float64) sim.Config {
	if speedFactor == 0 {
		speedFactor = 1
	}
	pf := f.PipelineCostFactor
	if pf == 0 {
		pf = 1
	}
	return sim.Config{
		GPU:                 gpu,
		LaunchOverheadSec:   f.LaunchOverheadSec,
		SyncOverheadSec:     f.SyncOverheadSec,
		IterOverheadSec:     f.IterOverheadSec,
		HostCPUSecPerSample: hostCPUSecPerSample * pf,
		SpeedFactor:         f.SpeedFactor * speedFactor,
	}
}

// String implements fmt.Stringer.
func (f *Framework) String() string { return f.Name }
