package framework

import (
	"testing"

	"tbd/internal/device"
	"tbd/internal/kernels"
)

func TestLookup(t *testing.T) {
	for _, name := range []string{"TensorFlow", "MXNet", "CNTK"} {
		f, err := Lookup(name)
		if err != nil || f.Name != name {
			t.Fatalf("Lookup(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := Lookup("Caffe"); err == nil {
		t.Fatal("unknown framework must fail")
	}
	if len(All()) != 3 {
		t.Fatalf("All() has %d frameworks, want 3", len(All()))
	}
}

func TestProfilesAreDistinct(t *testing.T) {
	if TensorFlow.Style == MXNet.Style || MXNet.Style == CNTK.Style {
		t.Fatal("name styles must differ")
	}
	// CNTK's host footprint must be far below TensorFlow's — the basis
	// of its near-zero CPU utilization in Figure 7.
	if CNTK.IterOverheadSec*3 > TensorFlow.IterOverheadSec {
		t.Fatal("CNTK iteration overhead should be much smaller than TF")
	}
	if CNTK.LaunchOverheadSec >= TensorFlow.LaunchOverheadSec {
		t.Fatal("CNTK launch overhead should be below TF")
	}
}

func TestOnlyMXNetReportsDynamicMemory(t *testing.T) {
	if !MXNet.MemPolicy.DynamicOptimizerState {
		t.Fatal("MXNet must allocate optimizer state dynamically (§3.4.3)")
	}
	if TensorFlow.MemPolicy.DynamicOptimizerState || CNTK.MemPolicy.DynamicOptimizerState {
		t.Fatal("TF/CNTK must allocate optimizer state statically")
	}
}

func TestSimConfigComposesSpeedFactors(t *testing.T) {
	cfg := CNTK.SimConfig(device.QuadroP4000, 1e-3, 1.5)
	if cfg.SpeedFactor != 0.88*1.5 {
		t.Fatalf("speed factor %.3f", cfg.SpeedFactor)
	}
	// CNTK's binary reader discounts the decode cost.
	if cfg.HostCPUSecPerSample != 1e-3*0.02 {
		t.Fatalf("host CPU cost %.2e, want pipeline-discounted", cfg.HostCPUSecPerSample)
	}
	tfCfg := TensorFlow.SimConfig(device.QuadroP4000, 1e-3, 1)
	if tfCfg.HostCPUSecPerSample != 1e-3 {
		t.Fatal("TF pipeline cost must pass through unscaled")
	}
	// Zero model factor means neutral.
	cfg = TensorFlow.SimConfig(device.TitanXp, 0, 0)
	if cfg.SpeedFactor != 1.0 {
		t.Fatalf("neutral speed factor %.3f", cfg.SpeedFactor)
	}
	if cfg.GPU != device.TitanXp {
		t.Fatal("GPU not threaded through")
	}
}

func TestStylesMatchEmission(t *testing.T) {
	op := &kernels.Op{Name: "fc", Kind: kernels.OpDense, In: 4, Out: 4, Rows: 1}
	tf := op.Forward(1, TensorFlow.Style)
	mx := op.Forward(1, MXNet.Style)
	if tf[1].Name == mx[1].Name {
		t.Fatal("per-framework kernel names must differ")
	}
}
