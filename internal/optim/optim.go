// Package optim implements the gradient-descent optimizers used to train
// the TBD benchmark models, plus learning-rate schedules. Optimizers that
// keep per-parameter state (momentum, Adam moments) report it via
// StateBytes — the memory the paper's profiler classifies as "dynamic"
// allocations (MXNet allocates momentum buffers during training iterations,
// §3.4.3).
package optim

import (
	"fmt"
	"math"

	"tbd/internal/layers"
	"tbd/internal/prof"
)

// beginStepSpan opens a profiler span for one optimizer update, attaching
// the parameter traffic (weights and gradients read, weights written, plus
// any per-parameter state streamed through). stateWords is the number of
// float32 state values touched per parameter element (0 for SGD, 1 for
// momentum/RMSProp, 2 for Adam).
func beginStepSpan(name string, params []*layers.Param, stateWords int64) prof.Span {
	sp := prof.Begin(prof.CatOptim, name)
	if sp.Active() {
		n := layers.ParamCount(params)
		sp.SetBytes(4 * n * (3 + 2*stateWords))
		sp.SetFLOPs(float64(n) * float64(2+4*stateWords))
	}
	return sp
}

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; callers zero gradients.
	Step(params []*layers.Param)
	// StateBytes reports optimizer state memory (the "dynamic" category).
	StateBytes() int64
}

// Stateful optimizers can serialize their per-parameter state so a
// checkpointed run resumes exactly (bit-equal trajectories for Momentum,
// Adam, and RMSProp, not just for stateless SGD). State is keyed by the
// parameter's position in the params slice, which must match between
// Snapshot and Restore.
type Stateful interface {
	Optimizer
	// Snapshot extracts the state for the given parameters.
	Snapshot(params []*layers.Param) OptimizerState
	// Restore installs previously snapshotted state.
	Restore(params []*layers.Param, st OptimizerState) error
}

// OptimizerState is a serializable optimizer-state payload.
type OptimizerState struct {
	// Kind guards against restoring one optimizer's state into another.
	Kind string
	// Step is the update counter (Adam's bias-correction time).
	Step int
	// Slots maps slot name ("velocity", "m", "v", "sq") to per-parameter
	// buffers, indexed like the params slice.
	Slots map[string][][]float32
}

// snapshotSlot extracts one map-keyed slot in param order.
func snapshotSlot(params []*layers.Param, m map[*layers.Param][]float32) [][]float32 {
	out := make([][]float32, len(params))
	for i, p := range params {
		if buf, ok := m[p]; ok {
			out[i] = append([]float32(nil), buf...)
		}
	}
	return out
}

// restoreSlot installs one slot, validating sizes.
func restoreSlot(kind, name string, params []*layers.Param, m map[*layers.Param][]float32, data [][]float32) error {
	if len(data) != len(params) {
		return fmt.Errorf("optim: %s state slot %q has %d entries for %d params", kind, name, len(data), len(params))
	}
	for i, buf := range data {
		if buf == nil {
			continue
		}
		if len(buf) != params[i].Value.Numel() {
			return fmt.Errorf("optim: %s state slot %q entry %d has %d elements, want %d",
				kind, name, i, len(buf), params[i].Value.Numel())
		}
		m[params[i]] = append([]float32(nil), buf...)
	}
	return nil
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float32
	WeightDecay float32
}

// NewSGD constructs a plain SGD optimizer.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// Step applies w -= lr * (g + wd*w).
func (o *SGD) Step(params []*layers.Param) {
	sp := beginStepSpan("optim.sgd", params, 0)
	for _, p := range params {
		sgdStep(p.Value.Data(), p.Grad.Data(), o.LR, o.WeightDecay)
	}
	sp.End()
}

// StateBytes is zero: SGD is stateless.
func (o *SGD) StateBytes() int64 { return 0 }

// Momentum is SGD with (optionally Nesterov) momentum.
type Momentum struct {
	LR          float32
	Mu          float32
	Nesterov    bool
	WeightDecay float32
	velocity    map[*layers.Param][]float32
}

// NewMomentum constructs a momentum optimizer.
func NewMomentum(lr, mu float32) *Momentum {
	return &Momentum{LR: lr, Mu: mu, velocity: make(map[*layers.Param][]float32)}
}

// Step applies v = mu*v - lr*g; w += v (or the Nesterov variant).
func (o *Momentum) Step(params []*layers.Param) {
	sp := beginStepSpan("optim.momentum", params, 1)
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float32, p.Value.Numel())
			o.velocity[p] = v
		}
		// Branch on the variant once per parameter, not once per element.
		if o.Nesterov {
			nesterovStep(p.Value.Data(), p.Grad.Data(), v, o.LR, o.Mu, o.WeightDecay)
		} else {
			momentumStep(p.Value.Data(), p.Grad.Data(), v, o.LR, o.Mu, o.WeightDecay)
		}
	}
	sp.End()
}

// StateBytes reports the velocity buffers.
func (o *Momentum) StateBytes() int64 {
	var n int64
	//tbd:nondeterministic-ok order-independent sum over state-map values; never touches numerics
	for _, v := range o.velocity {
		n += int64(len(v)) * 4
	}
	return n
}

// Snapshot implements Stateful.
func (o *Momentum) Snapshot(params []*layers.Param) OptimizerState {
	return OptimizerState{Kind: "momentum", Slots: map[string][][]float32{
		"velocity": snapshotSlot(params, o.velocity),
	}}
}

// Restore implements Stateful.
func (o *Momentum) Restore(params []*layers.Param, st OptimizerState) error {
	if st.Kind != "momentum" {
		return fmt.Errorf("optim: cannot restore %q state into Momentum", st.Kind)
	}
	o.velocity = make(map[*layers.Param][]float32)
	return restoreSlot("momentum", "velocity", params, o.velocity, st.Slots["velocity"])
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	t                     int
	m, v                  map[*layers.Param][]float32
}

// NewAdam constructs Adam with the standard defaults.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*layers.Param][]float32),
		v: make(map[*layers.Param][]float32),
	}
}

// Step applies one bias-corrected Adam update.
func (o *Adam) Step(params []*layers.Param) {
	sp := beginStepSpan("optim.adam", params, 2)
	o.t++
	c1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.t)))
	c2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.t)))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float32, p.Value.Numel())
			o.m[p] = m
			o.v[p] = make([]float32, p.Value.Numel())
		}
		v := o.v[p]
		adamStep(p.Value.Data(), p.Grad.Data(), m, v, o.LR, o.Beta1, o.Beta2, o.Eps, c1, c2)
	}
	sp.End()
}

// StateBytes reports the first- and second-moment buffers.
func (o *Adam) StateBytes() int64 {
	var n int64
	//tbd:nondeterministic-ok order-independent sum over state-map values; never touches numerics
	for _, m := range o.m {
		n += int64(len(m)) * 8 // m and v
	}
	return n
}

// Snapshot implements Stateful.
func (o *Adam) Snapshot(params []*layers.Param) OptimizerState {
	return OptimizerState{Kind: "adam", Step: o.t, Slots: map[string][][]float32{
		"m": snapshotSlot(params, o.m),
		"v": snapshotSlot(params, o.v),
	}}
}

// Restore implements Stateful.
func (o *Adam) Restore(params []*layers.Param, st OptimizerState) error {
	if st.Kind != "adam" {
		return fmt.Errorf("optim: cannot restore %q state into Adam", st.Kind)
	}
	o.t = st.Step
	o.m = make(map[*layers.Param][]float32)
	o.v = make(map[*layers.Param][]float32)
	if err := restoreSlot("adam", "m", params, o.m, st.Slots["m"]); err != nil {
		return err
	}
	return restoreSlot("adam", "v", params, o.v, st.Slots["v"])
}

// RMSProp is the RMSProp optimizer, the classic choice for A3C.
type RMSProp struct {
	LR, Decay, Eps float32
	sq             map[*layers.Param][]float32
}

// NewRMSProp constructs RMSProp with the A3C defaults.
func NewRMSProp(lr float32) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.99, Eps: 1e-6, sq: make(map[*layers.Param][]float32)}
}

// Step applies s = d*s + (1-d)*g²; w -= lr*g/sqrt(s+eps).
func (o *RMSProp) Step(params []*layers.Param) {
	sp := beginStepSpan("optim.rmsprop", params, 1)
	for _, p := range params {
		s, ok := o.sq[p]
		if !ok {
			s = make([]float32, p.Value.Numel())
			o.sq[p] = s
		}
		rmspropStep(p.Value.Data(), p.Grad.Data(), s, o.LR, o.Decay, o.Eps)
	}
	sp.End()
}

// StateBytes reports the squared-gradient buffers.
func (o *RMSProp) StateBytes() int64 {
	var n int64
	//tbd:nondeterministic-ok order-independent sum over state-map values; never touches numerics
	for _, s := range o.sq {
		n += int64(len(s)) * 4
	}
	return n
}

// Snapshot implements Stateful.
func (o *RMSProp) Snapshot(params []*layers.Param) OptimizerState {
	return OptimizerState{Kind: "rmsprop", Slots: map[string][][]float32{
		"sq": snapshotSlot(params, o.sq),
	}}
}

// Restore implements Stateful.
func (o *RMSProp) Restore(params []*layers.Param, st OptimizerState) error {
	if st.Kind != "rmsprop" {
		return fmt.Errorf("optim: cannot restore %q state into RMSProp", st.Kind)
	}
	o.sq = make(map[*layers.Param][]float32)
	return restoreSlot("rmsprop", "sq", params, o.sq, st.Slots["sq"])
}

// ZeroGrads clears every parameter gradient.
func ZeroGrads(params []*layers.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm scales gradients so their global L2 norm is at most maxNorm,
// the standard stabilizer for RNN training. It returns the pre-clip norm.
func ClipGradNorm(params []*layers.Param, maxNorm float32) float32 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			sq += float64(g) * float64(g)
		}
	}
	norm := float32(math.Sqrt(sq))
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			g := p.Grad.Data()
			for i := range g {
				g[i] *= scale
			}
		}
	}
	return norm
}

// Schedule maps an iteration number to a learning rate.
type Schedule interface {
	LR(step int) float32
}

// ConstSchedule is a fixed learning rate.
type ConstSchedule float32

// LR returns the constant rate.
func (c ConstSchedule) LR(int) float32 { return float32(c) }

// StepDecay multiplies Base by Gamma every Every steps.
type StepDecay struct {
	Base  float32
	Gamma float32
	Every int
}

// LR returns the decayed rate for step.
func (s StepDecay) LR(step int) float32 {
	k := step / s.Every
	return s.Base * float32(math.Pow(float64(s.Gamma), float64(k)))
}

// Warmup ramps linearly to Base over WarmupSteps then delegates to After
// (the "accurate, large minibatch SGD" recipe the paper cites for scaling
// batch sizes).
type Warmup struct {
	Base        float32
	WarmupSteps int
	After       Schedule
}

// LR returns the warmup-phase or post-warmup rate.
func (w Warmup) LR(step int) float32 {
	if step < w.WarmupSteps {
		return w.Base * float32(step+1) / float32(w.WarmupSteps)
	}
	if w.After != nil {
		return w.After.LR(step - w.WarmupSteps)
	}
	return w.Base
}
