package optim

import (
	"math"
	"testing"

	"tbd/internal/layers"
)

// Golden-trajectory tests: each optimizer's fused kernel is compared
// against a verbatim copy of the pre-kernel per-element loop, run for
// dozens of steps over a buffer whose length is deliberately coprime with
// the 4x unroll, with exact (bitwise) equality required at every step.

// refSGDStep is the original SGD.Step inner loop, kept verbatim.
func refSGDStep(w, g []float32, lr, wd float32) {
	for i := range w {
		w[i] -= lr * (g[i] + wd*w[i])
	}
}

// refMomentumStep is the original Momentum.Step inner loop, kept verbatim
// (including the per-element Nesterov branch).
func refMomentumStep(w, g, v []float32, lr, mu, wd float32, nesterov bool) {
	for i := range w {
		grad := g[i] + wd*w[i]
		v[i] = mu*v[i] - lr*grad
		if nesterov {
			w[i] += mu*v[i] - lr*grad
		} else {
			w[i] += v[i]
		}
	}
}

// refAdamStep is the original Adam.Step inner loop, kept verbatim.
func refAdamStep(w, g, m, v []float32, lr, b1, b2, eps, c1, c2 float32) {
	for i := range w {
		m[i] = b1*m[i] + (1-b1)*g[i]
		v[i] = b2*v[i] + (1-b2)*g[i]*g[i]
		mh := m[i] / c1
		vh := v[i] / c2
		w[i] -= lr * mh / (float32(math.Sqrt(float64(vh))) + eps)
	}
}

// refRMSPropStep is the original RMSProp.Step inner loop, kept verbatim.
func refRMSPropStep(w, g, s []float32, lr, decay, eps float32) {
	for i := range w {
		s[i] = decay*s[i] + (1-decay)*g[i]*g[i]
		w[i] -= lr * g[i] / float32(math.Sqrt(float64(s[i])+float64(eps)))
	}
}

// trajLen is coprime with 4 so every kernel's unroll tail is exercised.
const trajLen = 103

// trajInit fills w with a deterministic spread of magnitudes and signs,
// including exact zeros.
func trajInit() []float32 {
	w := make([]float32, trajLen)
	for i := range w {
		switch i % 7 {
		case 0:
			w[i] = 0
		case 1:
			w[i] = float32(i) * 0.37
		case 2:
			w[i] = -float32(i) * 0.11
		case 3:
			w[i] = 1e-6 * float32(i+1)
		case 4:
			w[i] = -3.5
		case 5:
			w[i] = 42.0 / float32(i+1)
		default:
			w[i] = float32(math.Sin(float64(i)))
		}
	}
	return w
}

// trajGrad writes a step-dependent pseudo-random gradient, the same
// sequence for both the kernel and reference runs.
func trajGrad(g []float32, step int) {
	state := uint32(step*2654435761 + 12345)
	for i := range g {
		state = state*1664525 + 1013904223
		// Map to roughly [-2, 2) with occasional exact zeros.
		g[i] = (float32(state>>8) / float32(1<<23)) - 1
		g[i] *= 2
		if state%61 == 0 {
			g[i] = 0
		}
	}
}

func float32sIdentical(t *testing.T, name string, step int, got, want []float32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] && !(math.IsNaN(float64(got[i])) && math.IsNaN(float64(want[i]))) {
			t.Fatalf("%s diverged at step %d elem %d: kernel %v (0x%08x) vs ref %v (0x%08x)",
				name, step, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func TestSGDKernelGoldenTrajectory(t *testing.T) {
	for _, wd := range []float32{0, 0.01} {
		wk, wr := trajInit(), trajInit()
		g := make([]float32, trajLen)
		for step := 0; step < 30; step++ {
			trajGrad(g, step)
			sgdStep(wk, g, 0.05, wd)
			refSGDStep(wr, g, 0.05, wd)
			float32sIdentical(t, "sgd", step, wk, wr)
		}
	}
}

func TestMomentumKernelGoldenTrajectory(t *testing.T) {
	for _, nesterov := range []bool{false, true} {
		wk, wr := trajInit(), trajInit()
		vk := make([]float32, trajLen)
		vr := make([]float32, trajLen)
		g := make([]float32, trajLen)
		for step := 0; step < 30; step++ {
			trajGrad(g, step)
			if nesterov {
				nesterovStep(wk, g, vk, 0.05, 0.9, 0.001)
			} else {
				momentumStep(wk, g, vk, 0.05, 0.9, 0.001)
			}
			refMomentumStep(wr, g, vr, 0.05, 0.9, 0.001, nesterov)
			float32sIdentical(t, "momentum-w", step, wk, wr)
			float32sIdentical(t, "momentum-v", step, vk, vr)
		}
	}
}

func TestAdamKernelGoldenTrajectory(t *testing.T) {
	const b1, b2, eps, lr = 0.9, 0.999, 1e-8, 0.01
	wk, wr := trajInit(), trajInit()
	mk := make([]float32, trajLen)
	mr := make([]float32, trajLen)
	vk := make([]float32, trajLen)
	vr := make([]float32, trajLen)
	g := make([]float32, trajLen)
	for step := 1; step <= 30; step++ {
		trajGrad(g, step)
		c1 := 1 - float32(math.Pow(b1, float64(step)))
		c2 := 1 - float32(math.Pow(b2, float64(step)))
		adamStep(wk, g, mk, vk, lr, b1, b2, eps, c1, c2)
		refAdamStep(wr, g, mr, vr, lr, b1, b2, eps, c1, c2)
		float32sIdentical(t, "adam-w", step, wk, wr)
		float32sIdentical(t, "adam-m", step, mk, mr)
		float32sIdentical(t, "adam-v", step, vk, vr)
	}
}

func TestRMSPropKernelGoldenTrajectory(t *testing.T) {
	wk, wr := trajInit(), trajInit()
	sk := make([]float32, trajLen)
	sr := make([]float32, trajLen)
	g := make([]float32, trajLen)
	for step := 0; step < 30; step++ {
		trajGrad(g, step)
		rmspropStep(wk, g, sk, 0.01, 0.99, 1e-6)
		refRMSPropStep(wr, g, sr, 0.01, 0.99, 1e-6)
		float32sIdentical(t, "rmsprop-w", step, wk, wr)
		float32sIdentical(t, "rmsprop-s", step, sk, sr)
	}
}

// TestOptimizerTrajectoriesMatchPreKernel drives the full Optimizer
// implementations (state maps, bias-correction bookkeeping and all) against
// step-by-step reference loops, confirming the rewiring in optim.go kept
// whole-trajectory bit-identity, not just kernel-level identity.
func TestOptimizerTrajectoriesMatchPreKernel(t *testing.T) {
	mkParam := func() *layers.Param { return quadParam(trajInit()) }

	t.Run("adam", func(t *testing.T) {
		p := mkParam()
		wr := trajInit()
		mr := make([]float32, trajLen)
		vr := make([]float32, trajLen)
		g := make([]float32, trajLen)
		opt := NewAdam(0.01)
		for step := 1; step <= 25; step++ {
			trajGrad(g, step)
			copy(p.Grad.Data(), g)
			opt.Step([]*layers.Param{p})
			p.ZeroGrad()
			c1 := 1 - float32(math.Pow(float64(opt.Beta1), float64(step)))
			c2 := 1 - float32(math.Pow(float64(opt.Beta2), float64(step)))
			refAdamStep(wr, g, mr, vr, opt.LR, opt.Beta1, opt.Beta2, opt.Eps, c1, c2)
			float32sIdentical(t, "adam-opt", step, p.Value.Data(), wr)
		}
	})

	t.Run("nesterov", func(t *testing.T) {
		p := mkParam()
		wr := trajInit()
		vr := make([]float32, trajLen)
		g := make([]float32, trajLen)
		opt := NewMomentum(0.05, 0.9)
		opt.Nesterov = true
		opt.WeightDecay = 0.001
		for step := 0; step < 25; step++ {
			trajGrad(g, step)
			copy(p.Grad.Data(), g)
			opt.Step([]*layers.Param{p})
			p.ZeroGrad()
			refMomentumStep(wr, g, vr, opt.LR, opt.Mu, opt.WeightDecay, true)
			float32sIdentical(t, "nesterov-opt", step, p.Value.Data(), wr)
		}
	})

	t.Run("rmsprop", func(t *testing.T) {
		p := mkParam()
		wr := trajInit()
		sr := make([]float32, trajLen)
		g := make([]float32, trajLen)
		opt := NewRMSProp(0.01)
		for step := 0; step < 25; step++ {
			trajGrad(g, step)
			copy(p.Grad.Data(), g)
			opt.Step([]*layers.Param{p})
			p.ZeroGrad()
			refRMSPropStep(wr, g, sr, opt.LR, opt.Decay, opt.Eps)
			float32sIdentical(t, "rmsprop-opt", step, p.Value.Data(), wr)
		}
	})
}

// TestStepAllocsSteadyState: after the first Step has lazily created any
// state buffers, subsequent Steps must not allocate at all.
func TestStepAllocsSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", NewSGD(0.01)},
		{"momentum", NewMomentum(0.01, 0.9)},
		{"nesterov", func() Optimizer { m := NewMomentum(0.01, 0.9); m.Nesterov = true; return m }()},
		{"adam", NewAdam(0.01)},
		{"rmsprop", NewRMSProp(0.01)},
	} {
		params := []*layers.Param{quadParam(trajInit()), quadParam(trajInit()[:17])}
		for _, p := range params {
			setQuadGrad(p)
		}
		tc.opt.Step(params) // warm up lazy state
		allocs := testing.AllocsPerRun(100, func() {
			tc.opt.Step(params)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state Step, want 0", tc.name, allocs)
		}
	}
}
