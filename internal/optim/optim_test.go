package optim

import (
	"math"
	"testing"

	"tbd/internal/layers"
	"tbd/internal/tensor"
)

// quadParam builds a parameter initialized at x0 whose gradient is set to
// the gradient of f(w) = 0.5*||w||² (i.e. g = w), the canonical convex
// test problem.
func quadParam(x0 []float32) *layers.Param {
	p := layers.NewParam("w", tensor.FromSlice(append([]float32(nil), x0...), len(x0)))
	return p
}

func setQuadGrad(p *layers.Param) {
	copy(p.Grad.Data(), p.Value.Data())
}

func converges(t *testing.T, opt Optimizer, steps int, tol float32) {
	t.Helper()
	p := quadParam([]float32{5, -3, 2})
	for i := 0; i < steps; i++ {
		setQuadGrad(p)
		opt.Step([]*layers.Param{p})
		p.ZeroGrad()
	}
	if n := p.Value.L2Norm(); n > tol {
		t.Fatalf("optimizer did not converge: ||w|| = %g after %d steps", n, steps)
	}
}

func TestSGDConverges(t *testing.T)      { converges(t, NewSGD(0.1), 200, 1e-3) }
func TestMomentumConverges(t *testing.T) { converges(t, NewMomentum(0.05, 0.9), 300, 1e-3) }
func TestAdamConverges(t *testing.T)     { converges(t, NewAdam(0.1), 400, 1e-2) }
func TestRMSPropConverges(t *testing.T)  { converges(t, NewRMSProp(0.05), 500, 1e-2) }

func TestNesterovConverges(t *testing.T) {
	m := NewMomentum(0.05, 0.9)
	m.Nesterov = true
	converges(t, m, 300, 1e-3)
}

func TestSGDExactStep(t *testing.T) {
	p := quadParam([]float32{1})
	setQuadGrad(p)
	NewSGD(0.5).Step([]*layers.Param{p})
	if got := p.Value.At(0); got != 0.5 {
		t.Fatalf("w = %g, want 0.5", got)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	o := NewSGD(0.1)
	o.WeightDecay = 0.5
	p := quadParam([]float32{1})
	// Zero gradient: only decay acts.
	o.Step([]*layers.Param{p})
	if got := p.Value.At(0); math.Abs(float64(got-0.95)) > 1e-6 {
		t.Fatalf("w = %g, want 0.95", got)
	}
}

func TestStateBytesGrowWithUse(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Optimizer
		per  int64 // state floats per weight
	}{
		{"sgd", NewSGD(0.1), 0},
		{"momentum", NewMomentum(0.1, 0.9), 1},
		{"adam", NewAdam(0.1), 2},
		{"rmsprop", NewRMSProp(0.1), 1},
	} {
		p := quadParam(make([]float32, 100))
		if tc.opt.StateBytes() != 0 {
			t.Fatalf("%s: state before first step", tc.name)
		}
		tc.opt.Step([]*layers.Param{p})
		want := tc.per * 100 * 4
		if got := tc.opt.StateBytes(); got != want {
			t.Fatalf("%s: StateBytes = %d, want %d", tc.name, got, want)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := quadParam([]float32{3, 4}) // norm 5
	setQuadGrad(p)
	pre := ClipGradNorm([]*layers.Param{p}, 1)
	if math.Abs(float64(pre-5)) > 1e-5 {
		t.Fatalf("pre-clip norm %g, want 5", pre)
	}
	var sq float64
	for _, g := range p.Grad.Data() {
		sq += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-5 {
		t.Fatalf("post-clip norm %g, want 1", math.Sqrt(sq))
	}
	// Below the threshold nothing changes.
	setQuadGrad(p)
	ClipGradNorm([]*layers.Param{p}, 100)
	if p.Grad.At(0) != 3 {
		t.Fatal("clip below threshold must be a no-op")
	}
}

func TestZeroGrads(t *testing.T) {
	p := quadParam([]float32{1, 2})
	setQuadGrad(p)
	ZeroGrads([]*layers.Param{p})
	for _, g := range p.Grad.Data() {
		if g != 0 {
			t.Fatal("ZeroGrads left residue")
		}
	}
}

func TestSchedules(t *testing.T) {
	if ConstSchedule(0.1).LR(1000) != 0.1 {
		t.Fatal("const schedule drifted")
	}
	sd := StepDecay{Base: 1, Gamma: 0.1, Every: 10}
	if sd.LR(0) != 1 || sd.LR(9) != 1 {
		t.Fatal("step decay fired early")
	}
	if got := sd.LR(10); math.Abs(float64(got-0.1)) > 1e-7 {
		t.Fatalf("step decay LR(10) = %g", got)
	}
	if got := sd.LR(25); math.Abs(float64(got-0.01)) > 1e-7 {
		t.Fatalf("step decay LR(25) = %g", got)
	}
	w := Warmup{Base: 1, WarmupSteps: 10, After: ConstSchedule(1)}
	if w.LR(0) >= w.LR(5) || w.LR(9) > 1 {
		t.Fatal("warmup not monotone increasing")
	}
	if w.LR(50) != 1 {
		t.Fatal("warmup did not hand off")
	}
}

// TestAdamBeatsSGDOnIllConditioned reproduces the textbook motivation for
// adaptive optimizers: on a badly scaled quadratic Adam makes progress on
// the flat coordinate far faster than SGD at a stable learning rate.
func TestAdamBeatsSGDOnIllConditioned(t *testing.T) {
	run := func(opt Optimizer) float32 {
		p := quadParam([]float32{1, 1})
		for i := 0; i < 100; i++ {
			// f = 0.5*(1000*x² + 0.001*y²)
			p.Grad.Data()[0] = 1000 * p.Value.Data()[0]
			p.Grad.Data()[1] = 0.001 * p.Value.Data()[1]
			opt.Step([]*layers.Param{p})
			p.ZeroGrad()
		}
		return float32(math.Abs(float64(p.Value.At(1))))
	}
	sgdY := run(NewSGD(0.001)) // lr limited by the stiff direction
	adamY := run(NewAdam(0.05))
	if adamY >= sgdY {
		t.Fatalf("adam |y| = %g not better than sgd |y| = %g", adamY, sgdY)
	}
}

func TestAdamSnapshotRestoreExactResume(t *testing.T) {
	// 40 straight Adam steps == 20 steps + snapshot + restore into a
	// fresh optimizer + 20 more steps.
	run := func(opt *Adam, p *layers.Param, steps int) {
		for i := 0; i < steps; i++ {
			setQuadGrad(p)
			opt.Step([]*layers.Param{p})
			p.ZeroGrad()
		}
	}
	straight := quadParam([]float32{5, -3, 2})
	optA := NewAdam(0.05)
	run(optA, straight, 40)

	phased := quadParam([]float32{5, -3, 2})
	optB := NewAdam(0.05)
	run(optB, phased, 20)
	st := optB.Snapshot([]*layers.Param{phased})
	optC := NewAdam(0.05)
	if err := optC.Restore([]*layers.Param{phased}, st); err != nil {
		t.Fatal(err)
	}
	run(optC, phased, 20)

	for i := range straight.Value.Data() {
		d := straight.Value.Data()[i] - phased.Value.Data()[i]
		if d > 1e-7 || d < -1e-7 {
			t.Fatalf("adam resume diverged at %d: %g vs %g", i, straight.Value.Data()[i], phased.Value.Data()[i])
		}
	}
}

func TestMomentumAndRMSPropSnapshotRestore(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Stateful
	}{
		{"momentum", func() Stateful { return NewMomentum(0.05, 0.9) }},
		{"rmsprop", func() Stateful { return NewRMSProp(0.05) }},
	} {
		straight := quadParam([]float32{4, -2})
		a := tc.mk()
		for i := 0; i < 30; i++ {
			setQuadGrad(straight)
			a.Step([]*layers.Param{straight})
			straight.ZeroGrad()
		}
		phased := quadParam([]float32{4, -2})
		b := tc.mk()
		for i := 0; i < 15; i++ {
			setQuadGrad(phased)
			b.Step([]*layers.Param{phased})
			phased.ZeroGrad()
		}
		st := b.Snapshot([]*layers.Param{phased})
		c := tc.mk()
		if err := c.Restore([]*layers.Param{phased}, st); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := 0; i < 15; i++ {
			setQuadGrad(phased)
			c.Step([]*layers.Param{phased})
			phased.ZeroGrad()
		}
		for i := range straight.Value.Data() {
			d := straight.Value.Data()[i] - phased.Value.Data()[i]
			if d > 1e-7 || d < -1e-7 {
				t.Fatalf("%s resume diverged", tc.name)
			}
		}
	}
}

func TestRestoreRejectsWrongKind(t *testing.T) {
	p := quadParam([]float32{1})
	m := NewMomentum(0.1, 0.9)
	setQuadGrad(p)
	m.Step([]*layers.Param{p})
	st := m.Snapshot([]*layers.Param{p})
	a := NewAdam(0.1)
	if err := a.Restore([]*layers.Param{p}, st); err == nil {
		t.Fatal("adam must reject momentum state")
	}
	// And mismatched sizes.
	st2 := m.Snapshot([]*layers.Param{p})
	st2.Slots["velocity"][0] = st2.Slots["velocity"][0][:0]
	m2 := NewMomentum(0.1, 0.9)
	p2 := quadParam([]float32{1})
	if err := m2.Restore([]*layers.Param{p2}, st2); err != nil {
		// Zero-length buffer for a 1-element param must error... unless
		// skipped; verify the error fires.
		_ = err
	} else {
		t.Fatal("size mismatch must be rejected")
	}
}

func TestSnapshotBeforeAnyStepIsEmptyButRestorable(t *testing.T) {
	p := quadParam([]float32{1, 2})
	a := NewAdam(0.1)
	st := a.Snapshot([]*layers.Param{p})
	b := NewAdam(0.1)
	if err := b.Restore([]*layers.Param{p}, st); err != nil {
		t.Fatal(err)
	}
	// Fresh restore behaves like a fresh optimizer.
	setQuadGrad(p)
	b.Step([]*layers.Param{p})
}
