package optim

import "math"

// Single-pass update kernels. Each optimizer's Step method used to
// interleave state management (map lookups, lazy allocation, hyperparameter
// reloads) with the per-element arithmetic; these kernels hoist everything
// loop-invariant out and sweep each parameter buffer exactly once.
//
// The arithmetic is kept bit-identical to the original per-element
// expressions: same operation order, same float32/float64 domains for the
// square roots, division by the bias corrections rather than multiplication
// by their reciprocals. The golden-trajectory tests in kernels_test.go
// compare every optimizer against a verbatim copy of the pre-kernel loop
// over dozens of steps with exact equality.
//
// The Adam and RMSProp kernels are unrolled 4x: their per-element work is
// dominated by a float64 sqrt, and since every element's update is
// independent, unrolling exposes instruction-level parallelism across
// consecutive sqrt chains without regrouping any arithmetic.

// sgdStep applies w[i] -= lr * (g[i] + wd*w[i]).
func sgdStep(w, g []float32, lr, wd float32) {
	w = w[:len(g)]
	if wd == 0 {
		// Common case: no decay term, one multiply per element. For finite
		// weights g + 0*w == g exactly, so skipping the term changes no bits.
		for i, gi := range g {
			w[i] -= lr * gi
		}
		return
	}
	for i, gi := range g {
		w[i] -= lr * (gi + wd*w[i])
	}
}

// momentumStep applies v = mu*v - lr*(g + wd*w); w += v.
func momentumStep(w, g, v []float32, lr, mu, wd float32) {
	w = w[:len(g)]
	v = v[:len(g)]
	for i, gi := range g {
		grad := gi + wd*w[i]
		vi := mu*v[i] - lr*grad
		v[i] = vi
		w[i] += vi
	}
}

// nesterovStep applies v = mu*v - lr*grad; w += mu*v - lr*grad — the
// Nesterov branch of the original loop, hoisted so the plain-momentum
// sweep carries no per-element conditional.
func nesterovStep(w, g, v []float32, lr, mu, wd float32) {
	w = w[:len(g)]
	v = v[:len(g)]
	for i, gi := range g {
		grad := gi + wd*w[i]
		vi := mu*v[i] - lr*grad
		v[i] = vi
		w[i] += mu*vi - lr*grad
	}
}

// adamStep applies one bias-corrected Adam update:
//
//	m = b1*m + (1-b1)*g;  v = b2*v + (1-b2)*g²
//	w -= lr * (m/c1) / (sqrt(v/c2) + eps)
//
// c1 and c2 are the step-dependent bias corrections 1-b1^t and 1-b2^t,
// computed once per Step by the caller. The divisions by c1/c2 and the
// float64 sqrt domain are part of the bit-identity contract.
func adamStep(w, g, m, v []float32, lr, b1, b2, eps, c1, c2 float32) {
	n := len(g)
	w = w[:n]
	m = m[:n]
	v = v[:n]
	ob1 := 1 - b1
	ob2 := 1 - b2
	i := 0
	for ; i+4 <= n; i += 4 {
		g0, g1, g2, g3 := g[i], g[i+1], g[i+2], g[i+3]
		m0 := b1*m[i] + ob1*g0
		m1 := b1*m[i+1] + ob1*g1
		m2 := b1*m[i+2] + ob1*g2
		m3 := b1*m[i+3] + ob1*g3
		v0 := b2*v[i] + ob2*g0*g0
		v1 := b2*v[i+1] + ob2*g1*g1
		v2 := b2*v[i+2] + ob2*g2*g2
		v3 := b2*v[i+3] + ob2*g3*g3
		m[i], m[i+1], m[i+2], m[i+3] = m0, m1, m2, m3
		v[i], v[i+1], v[i+2], v[i+3] = v0, v1, v2, v3
		w[i] -= lr * (m0 / c1) / (float32(math.Sqrt(float64(v0/c2))) + eps)
		w[i+1] -= lr * (m1 / c1) / (float32(math.Sqrt(float64(v1/c2))) + eps)
		w[i+2] -= lr * (m2 / c1) / (float32(math.Sqrt(float64(v2/c2))) + eps)
		w[i+3] -= lr * (m3 / c1) / (float32(math.Sqrt(float64(v3/c2))) + eps)
	}
	for ; i < n; i++ {
		gi := g[i]
		mi := b1*m[i] + ob1*gi
		vi := b2*v[i] + ob2*gi*gi
		m[i] = mi
		v[i] = vi
		w[i] -= lr * (mi / c1) / (float32(math.Sqrt(float64(vi/c2))) + eps)
	}
}

// rmspropStep applies s = d*s + (1-d)*g²; w -= lr*g/sqrt(s+eps), with the
// eps added inside the float64 sqrt exactly as the original loop did.
func rmspropStep(w, g, s []float32, lr, decay, eps float32) {
	n := len(g)
	w = w[:n]
	s = s[:n]
	od := 1 - decay
	eps64 := float64(eps)
	i := 0
	for ; i+4 <= n; i += 4 {
		g0, g1, g2, g3 := g[i], g[i+1], g[i+2], g[i+3]
		s0 := decay*s[i] + od*g0*g0
		s1 := decay*s[i+1] + od*g1*g1
		s2 := decay*s[i+2] + od*g2*g2
		s3 := decay*s[i+3] + od*g3*g3
		s[i], s[i+1], s[i+2], s[i+3] = s0, s1, s2, s3
		w[i] -= lr * g0 / float32(math.Sqrt(float64(s0)+eps64))
		w[i+1] -= lr * g1 / float32(math.Sqrt(float64(s1)+eps64))
		w[i+2] -= lr * g2 / float32(math.Sqrt(float64(s2)+eps64))
		w[i+3] -= lr * g3 / float32(math.Sqrt(float64(s3)+eps64))
	}
	for ; i < n; i++ {
		gi := g[i]
		si := decay*s[i] + od*gi*gi
		s[i] = si
		w[i] -= lr * gi / float32(math.Sqrt(float64(si)+eps64))
	}
}
