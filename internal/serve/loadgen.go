package serve

import (
	"sync"
	"time"

	"tbd/internal/metrics"
)

// LoadGen is a closed-loop load generator: Concurrency workers each issue
// one request, wait for its completion, and immediately issue the next —
// the standard way to trace out a throughput-vs-latency curve, because
// offered load rises with concurrency instead of with an open-loop
// arrival rate that can run away past saturation.
type LoadGen struct {
	// Concurrency is the number of closed-loop workers (in-flight
	// requests).
	Concurrency int
	// Duration bounds the run in wall-clock time.
	Duration time.Duration
}

// LoadResult summarizes one closed-loop run.
type LoadResult struct {
	Concurrency int
	Requests    uint64
	Errors      uint64
	Elapsed     time.Duration
	// ThroughputRPS counts successful requests per second.
	ThroughputRPS float64
	// Latency is the merged per-request latency histogram (seconds);
	// only successful requests are observed.
	Latency *metrics.Histogram
}

// P50Ms, P95Ms, P99Ms report latency quantiles in milliseconds.
func (r LoadResult) P50Ms() float64 { return 1e3 * r.Latency.Quantile(0.50) }
func (r LoadResult) P95Ms() float64 { return 1e3 * r.Latency.Quantile(0.95) }
func (r LoadResult) P99Ms() float64 { return 1e3 * r.Latency.Quantile(0.99) }

// Run drives call (one request; worker is the 0-based worker id) in a
// closed loop until Duration elapses. call's error marks the request
// failed (shed, refused, transport error); failures count toward Errors
// and not toward throughput or latency.
func (g LoadGen) Run(call func(worker int) error) LoadResult {
	if g.Concurrency <= 0 {
		g.Concurrency = 1
	}
	if g.Duration <= 0 {
		g.Duration = time.Second
	}
	type workerStats struct {
		requests, errors uint64
		latency          *metrics.Histogram
	}
	stats := make([]workerStats, g.Concurrency)
	deadline := time.Now().Add(g.Duration)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < g.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats[w]
			ws.latency = metrics.NewLatencyHistogram()
			for time.Now().Before(deadline) {
				start := time.Now()
				if err := call(w); err != nil {
					ws.errors++
					continue
				}
				ws.latency.Observe(time.Since(start).Seconds())
				ws.requests++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	out := LoadResult{
		Concurrency: g.Concurrency,
		Elapsed:     elapsed,
		Latency:     metrics.NewLatencyHistogram(),
	}
	for i := range stats {
		out.Requests += stats[i].requests
		out.Errors += stats[i].errors
		out.Latency.Merge(stats[i].latency)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		out.ThroughputRPS = float64(out.Requests) / sec
	}
	return out
}
