package serve

import (
	"errors"
	"testing"
	"time"
)

// TestOpenLoadGenDeterministicSchedule: the offered arrival sequence is
// a pure function of (phases, seed) — two runs offer exactly the same
// number of requests per phase no matter how the service behaved.
func TestOpenLoadGenDeterministicSchedule(t *testing.T) {
	gen := OpenLoadGen{
		Phases: []Phase{
			{Rate: 2000, Duration: 50 * time.Millisecond},
			{Rate: 500, Duration: 50 * time.Millisecond},
		},
		Poisson: true,
		Seed:    7,
		Workers: 8,
	}
	a := gen.Run(func() error { return nil })
	b := gen.Run(func() error { return nil })
	if a.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	for i := range a.Phases {
		if a.Phases[i].Offered != b.Phases[i].Offered {
			t.Fatalf("phase %d offered %d vs %d across identically-seeded runs",
				i, a.Phases[i].Offered, b.Phases[i].Offered)
		}
	}
	if a.Offered != a.OK+a.Shed+a.Errors+a.Dropped {
		t.Fatalf("accounting leak: offered=%d ok=%d shed=%d errors=%d dropped=%d",
			a.Offered, a.OK, a.Shed, a.Errors, a.Dropped)
	}
}

// TestOpenLoadGenCoordinatedOmissionVisible is the CO regression test:
// with one worker stuck behind a 20ms call and a schedule offering a
// request every 5ms, a closed-loop (or send-time-measured) generator
// would report ~20ms everywhere; measuring from intended arrival time
// must surface the growing backlog wait instead.
func TestOpenLoadGenCoordinatedOmissionVisible(t *testing.T) {
	const callDur = 20 * time.Millisecond
	res := OpenLoadGen{
		Phases:  []Phase{{Rate: 200, Duration: 250 * time.Millisecond}},
		Workers: 1, // serialize: the backlog has nowhere to hide
		Seed:    1,
	}.Run(func() error {
		time.Sleep(callDur)
		return nil
	})
	if res.OK < 5 {
		t.Fatalf("only %d requests completed; schedule did not run", res.OK)
	}
	// The last completions waited through most of the backlog; their
	// schedule-relative latency is many multiples of the 20ms service
	// time. p99 >= 2x service time is a conservative floor — a
	// coordinating generator would sit at ~1x.
	if p99 := res.Latency.Quantile(0.99); p99 < 2*callDur.Seconds() {
		t.Fatalf("p99 %.1fms does not expose the backlog (service time %.0fms); coordinated omission is back",
			1e3*p99, 1e3*callDur.Seconds())
	}
}

// TestOpenLoadGenOutcomeClasses: admission-control sentinels count as
// Shed, everything else as Errors, successes as OK with latency.
func TestOpenLoadGenOutcomeClasses(t *testing.T) {
	var i int
	other := errors.New("transport exploded")
	res := OpenLoadGen{
		Phases:  []Phase{{Rate: 1000, Duration: 20 * time.Millisecond}},
		Workers: 1,
		Seed:    2,
	}.Run(func() error {
		i++
		switch i % 4 {
		case 0:
			return ErrOverloaded
		case 1:
			return ErrDeadline
		case 2:
			return other
		default:
			return nil
		}
	})
	if res.Shed == 0 {
		t.Fatal("admission sheds not classified as Shed")
	}
	if res.Errors == 0 {
		t.Fatal("non-shed failure not classified as Error")
	}
	if res.OK == 0 {
		t.Fatal("no successes recorded")
	}
	if res.Latency.Count() != res.OK {
		t.Fatalf("latency histogram has %d observations, OK=%d (failures must not be observed)",
			res.Latency.Count(), res.OK)
	}
}

// TestOpenLoadGenPhaseMetadata: results keep the schedule's shape.
func TestOpenLoadGenPhaseMetadata(t *testing.T) {
	res := OpenLoadGen{
		Phases: []Phase{
			{Rate: 400, Duration: 30 * time.Millisecond},
			{Rate: 0, Duration: 10 * time.Millisecond}, // silence is a valid phase
			{Rate: 800, Duration: 30 * time.Millisecond},
		},
		Seed: 4,
	}.Run(func() error { return nil })
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phase results, want 3", len(res.Phases))
	}
	if res.Phases[0].Rate != 400 || res.Phases[2].Rate != 800 {
		t.Fatal("phase rates not preserved")
	}
	if res.Phases[1].Offered != 0 {
		t.Fatalf("silent phase offered %d requests", res.Phases[1].Offered)
	}
	if res.Phases[0].Offered == 0 || res.Phases[2].Offered == 0 {
		t.Fatal("active phases offered nothing")
	}
}
