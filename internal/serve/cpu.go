package serve

import (
	"runtime"
	"sync"

	"tbd/internal/tensor"
)

// CPU budget guard: every Service runs batched forwards on the shared
// tensor worker pool, so k concurrent services at parallelism p can put
// k*p runnable worker goroutines on the scheduler. Oversubscribing
// GOMAXPROCS that way doesn't crash, but it trades throughput for
// context-switching and wrecks tail latency — exactly what a serving
// process must not do. The guard divides the machine between active
// services: while k services are open, the worker-pool parallelism is
// clamped to min(userSetting, max(1, GOMAXPROCS/k)), and the user's
// setting is restored when the last service closes.
var cpuBudget struct {
	mu     sync.Mutex
	active int
	// saved is the tensor parallelism observed when the first service
	// opened; user calls to SetParallelism while services are running
	// are overridden at the next open/close and otherwise ignored.
	saved int
}

func acquireCPUBudget() {
	cpuBudget.mu.Lock()
	defer cpuBudget.mu.Unlock()
	if cpuBudget.active == 0 {
		cpuBudget.saved = tensor.Parallelism()
	}
	cpuBudget.active++
	applyCPUBudgetLocked()
}

func releaseCPUBudget() {
	cpuBudget.mu.Lock()
	defer cpuBudget.mu.Unlock()
	cpuBudget.active--
	if cpuBudget.active <= 0 {
		cpuBudget.active = 0
		tensor.SetParallelism(cpuBudget.saved)
		return
	}
	applyCPUBudgetLocked()
}

func applyCPUBudgetLocked() {
	per := runtime.GOMAXPROCS(0) / cpuBudget.active
	if per < 1 {
		per = 1
	}
	if per > cpuBudget.saved {
		per = cpuBudget.saved
	}
	tensor.SetParallelism(per)
}

// ActiveServices reports how many services currently share the CPU
// budget (test and observability hook).
func ActiveServices() int {
	cpuBudget.mu.Lock()
	defer cpuBudget.mu.Unlock()
	return cpuBudget.active
}
