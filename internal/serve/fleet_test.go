package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbd/internal/models"
	"tbd/internal/tensor"
)

// twinFleetFactory returns a factory producing identically-seeded model
// twins, the shape NewFleet expects replicas to come from.
func twinFleetFactory(t *testing.T, name string, seed uint64) (func() (*Session, error), []int) {
	t.Helper()
	_, shape, err := models.ServeTwin(name, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return func() (*Session, error) {
		net, shp, err := models.ServeTwin(name, tensor.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		return NewSession(net, shp...), nil
	}, shape
}

// TestFleetBitIdenticalToSingleSample is the fleet's zero-tolerance
// equality acceptance test: with weights shared across 4 replicas, every
// routed result must be bit-identical to a single-sample forward on an
// identically seeded reference network, whichever replica served it.
func TestFleetBitIdenticalToSingleSample(t *testing.T) {
	prevTier, err := tensor.SetGemmKernelTier(tensor.BitExactGemmTier())
	if err != nil {
		t.Fatal(err)
	}
	defer tensor.SetGemmKernelTier(prevTier)

	refNet, shape, err := models.ServeTwin("mlp", tensor.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	factory, _ := twinFleetFactory(t, "mlp", 99)
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 4, MaxBatch: 8, MaxWait: time.Millisecond, QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.SharedWeights() {
		t.Fatal("graph-backed fleet did not share weights")
	}

	const nReq = 64
	rng := tensor.NewRNG(7)
	samples := make([]*tensor.Tensor, nReq)
	want := make([][]float32, nReq)
	for i := range samples {
		samples[i] = tensor.RandNormal(rng, 0, 1, shape...)
		out := refNet.Infer(samples[i].Reshape(append([]int{1}, shape...)...))
		want[i] = append([]float32(nil), out.Data()...)
	}

	results := make([]Result, nReq)
	errs := make([]error, nReq)
	var wg sync.WaitGroup
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = f.Predict(samples[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < nReq; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Replica < 0 || results[i].Replica >= 4 {
			t.Fatalf("request %d served by out-of-range replica %d", i, results[i].Replica)
		}
		for j := range want[i] {
			if results[i].Output[j] != want[i][j] {
				t.Fatalf("request %d elem %d (replica %d): served %g, single-sample %g (must be bit-identical)",
					i, j, results[i].Replica, results[i].Output[j], want[i][j])
			}
		}
	}
}

// TestFleetSharedWeightBytes: N sharing replicas must report the
// resident weights of ONE model, not N.
func TestFleetSharedWeightBytes(t *testing.T) {
	factory, _ := twinFleetFactory(t, "mlp", 42)
	single, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	one := single.WeightBytes()

	f, err := NewFleet(factory, FleetConfig{Replicas: 4, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap := f.Stats()
	if !snap.SharedWeights {
		t.Fatal("fleet did not share weights")
	}
	if snap.WeightBytes != one {
		t.Fatalf("4-replica shared fleet reports %d weight bytes, one model is %d", snap.WeightBytes, one)
	}
	if snap.Replicas != 4 || len(snap.PerReplica) != 4 {
		t.Fatalf("snapshot replicas=%d per_replica=%d, want 4", snap.Replicas, len(snap.PerReplica))
	}
}

// TestFleetRoutingSpreadsLoad: with every replica slow and single-file,
// concurrent load must land on more than one replica (the queue-depth
// signal steers the router off busy replicas).
func TestFleetRoutingSpreadsLoad(t *testing.T) {
	factory := func() (*Session, error) {
		return NewSession(&slowModel{delay: 3 * time.Millisecond}, 4), nil
	}
	f, err := NewFleet(factory, FleetConfig{Replicas: 4, MaxBatch: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.SharedWeights() {
		t.Fatal("slowModel cannot share weights; fleet must fall back")
	}

	const nReq = 48
	var mu sync.Mutex
	served := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := f.Predict(tensor.New(4))
			if err != nil {
				return // sheds are fine here; distribution is the point
			}
			mu.Lock()
			served[res.Replica]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(served) < 2 {
		t.Fatalf("all requests landed on %d replica(s): %v", len(served), served)
	}
}

// TestFleetDeadlineAdmission pins the two shed outcomes apart:
//   - ErrOverloaded when a feasible replica's queue is full (429-class);
//   - ErrDeadline when the budget is infeasible on every replica
//     (503-class), counted separately in the fleet snapshot.
func TestFleetDeadlineAdmission(t *testing.T) {
	const delay = 10 * time.Millisecond
	factory := func() (*Session, error) {
		return NewSession(&slowModel{delay: delay}, 4), nil
	}
	f, err := NewFleet(factory, FleetConfig{Replicas: 1, MaxBatch: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Warm the batch-time signal so feasibility checks have a real
	// estimate to work with.
	for i := 0; i < 3; i++ {
		if _, err := f.Predict(tensor.New(4)); err != nil {
			t.Fatal(err)
		}
	}

	// Saturate the single replica: one in flight plus a full queue.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = f.Predict(tensor.New(4))
				}
			}
		}()
	}
	time.Sleep(delay) // let the pipeline fill

	deadline := time.Now().Add(time.Second)
	var sawDeadline, sawOverload bool
	for time.Now().Before(deadline) && !(sawDeadline && sawOverload) {
		// Infeasible budget: queue wait alone is several forwards deep.
		if _, err := f.PredictSLO(tensor.New(4), 2*time.Millisecond); errors.Is(err, ErrDeadline) {
			sawDeadline = true
		}
		// No budget: the only shed reason left is a full queue.
		if _, err := f.PredictSLO(tensor.New(4), 0); errors.Is(err, ErrOverloaded) {
			sawOverload = true
		}
	}
	close(stop)
	wg.Wait()
	if !sawDeadline {
		t.Fatal("no infeasible-budget request was shed with ErrDeadline")
	}
	if !sawOverload {
		t.Fatal("no budget-free request was shed with ErrOverloaded")
	}
	snap := f.Stats()
	if snap.RejectedDeadline == 0 {
		t.Fatal("RejectedDeadline not counted")
	}
	if snap.RejectedOverload == 0 {
		t.Fatal("RejectedOverload not counted")
	}
}

// TestFleetDeadlineExpiresInQueue: a request admitted against a cold
// estimate but expired by dequeue time is shed there — the forward pass
// is not wasted on a result nobody can use.
func TestFleetDeadlineExpiresInQueue(t *testing.T) {
	const delay = 30 * time.Millisecond
	factory := func() (*Session, error) {
		return NewSession(&slowModel{delay: delay}, 4), nil
	}
	// Cold fleet: no batch-time signal yet, so admission lets the tight
	// budget through and the dequeue-time check has to catch it.
	f, err := NewFleet(factory, FleetConfig{Replicas: 1, MaxBatch: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the replica for ~delay
		defer wg.Done()
		_, _ = f.Predict(tensor.New(4))
	}()
	time.Sleep(2 * time.Millisecond) // ensure the blocker is in flight
	_, err = f.PredictSLO(tensor.New(4), 5*time.Millisecond)
	wg.Wait()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued-past-deadline request got %v, want ErrDeadline", err)
	}
	snap := f.Stats()
	if snap.RejectedDeadline == 0 {
		t.Fatal("dequeue-time shed not counted in RejectedDeadline")
	}
}

// TestFleetOverloadPhaseSLO is the end-to-end control story: an
// open-loop Poisson schedule drives the fleet into a scripted overload
// phase; the router sheds what cannot meet the SLO and the latency of
// what it admits stays bounded near the SLO instead of following the
// unbounded open-loop backlog.
func TestFleetOverloadPhaseSLO(t *testing.T) {
	const slo = 50 * time.Millisecond
	factory := func() (*Session, error) {
		return NewSession(&slowModel{delay: 2 * time.Millisecond}, 4), nil
	}
	// QueueDepth deliberately deeper than the SLO's feasible backlog
	// (~25 requests at 2ms each): overload must be shed by the deadline
	// check, not by running out of queue slots.
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 2, MaxBatch: 1, QueueDepth: 64, SLO: slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	x := tensor.New(4)
	res := OpenLoadGen{
		Phases: []Phase{
			{Rate: 200, Duration: 200 * time.Millisecond},  // under capacity (~1000/s)
			{Rate: 5000, Duration: 200 * time.Millisecond}, // 5x overload
			{Rate: 200, Duration: 200 * time.Millisecond},  // recovery
		},
		Poisson: true,
		Workers: 64,
		Seed:    3,
	}.Run(func() error {
		_, err := f.Predict(x)
		return err
	})

	if res.Offered == 0 || res.OK == 0 {
		t.Fatalf("degenerate run: offered=%d ok=%d", res.Offered, res.OK)
	}
	if res.Phases[1].Shed == 0 {
		t.Fatal("overload phase shed nothing; admission control did not engage")
	}
	if res.Errors != 0 {
		t.Fatalf("%d non-shed errors under overload", res.Errors)
	}
	snap := f.Stats()
	if snap.RejectedDeadline == 0 {
		t.Fatal("no SLO sheds counted during overload")
	}
	if snap.Failed != 0 {
		t.Fatalf("%d failed requests", snap.Failed)
	}
	// Admitted-request latency (service-side) stays near the SLO: every
	// completed request was dequeued before its deadline, so residence is
	// bounded by SLO + one forward (+ scheduler noise; 3x headroom).
	if snap.LatencyP99Ms > 3*float64(slo.Milliseconds()) {
		t.Fatalf("admitted p99 %.1fms blew through SLO %v despite deadline admission", snap.LatencyP99Ms, slo)
	}
}

// TestFleetStatsAggregate: counters across replicas add up and the
// aggregate matches what clients observed.
func TestFleetStatsAggregate(t *testing.T) {
	factory := func() (*Session, error) {
		return NewSession(identityModel{}, 4), nil
	}
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 3, MaxBatch: 8, MaxWait: 500 * time.Microsecond, QueueDepth: 64, TraceEvents: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const nReq = 90
	var wg sync.WaitGroup
	var okCount atomic.Uint64
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.Predict(tensor.New(4)); err == nil {
				okCount.Add(1)
			}
		}()
	}
	wg.Wait()

	snap := f.Stats()
	if snap.Completed != okCount.Load() {
		t.Fatalf("aggregate completed=%d, clients saw %d", snap.Completed, okCount.Load())
	}
	var perAccepted, perCompleted uint64
	for _, rs := range snap.PerReplica {
		perAccepted += rs.Accepted
		perCompleted += rs.Completed
	}
	if perAccepted != snap.Accepted || perCompleted != snap.Completed {
		t.Fatalf("per-replica sums (acc=%d comp=%d) disagree with aggregate (acc=%d comp=%d)",
			perAccepted, perCompleted, snap.Accepted, snap.Completed)
	}
	if snap.LatencyP50Ms <= 0 {
		t.Fatal("aggregate latency quantiles empty")
	}
	if h := f.LatencyHistogram(); h.Count() != snap.Completed {
		t.Fatalf("fleet latency histogram count=%d, want %d", h.Count(), snap.Completed)
	}
	tl := f.Timeline()
	if len(tl.Events) == 0 {
		t.Fatal("no fleet trace events captured")
	}
	seen := map[string]bool{}
	for _, e := range tl.Events {
		seen[e.Name[:len("serve.rX")]] = true
	}
	if len(seen) < 2 {
		t.Fatalf("trace events name only %d replica(s): %v", len(seen), seen)
	}
}

// TestFleetGracefulDrain: the shutdown contract at fleet scale — every
// admitted request completes, late arrivals get ErrShuttingDown, and all
// runner goroutines exit.
func TestFleetGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	factory := func() (*Session, error) {
		return NewSession(&slowModel{delay: 2 * time.Millisecond}, 4), nil
	}
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 4, MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}

	const nReq = 48
	var wg sync.WaitGroup
	errc := make(chan error, nReq)
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := f.Predict(tensor.New(4))
			errc <- err
		}()
	}
	time.Sleep(time.Millisecond)
	f.Close()
	wg.Wait()
	close(errc)

	var served, refused int
	for err := range errc {
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrOverloaded):
			refused++
		default:
			t.Fatalf("unexpected error during drain: %v", err)
		}
	}
	if served == 0 {
		t.Fatal("no admitted request drained to completion")
	}
	if _, err := f.Predict(tensor.New(4)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Predict after Close = %v, want ErrShuttingDown", err)
	}
	f.Close() // idempotent

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after drain", before, g)
	}
}

// TestFleetConfigValidation: nil factories and shape-drifting factories
// are refused at construction.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := NewFleet(nil, FleetConfig{}); err == nil {
		t.Fatal("nil factory accepted")
	}
	calls := 0
	drifting := func() (*Session, error) {
		calls++
		return NewSession(identityModel{}, 4+calls), nil // different shape every call
	}
	if _, err := NewFleet(drifting, FleetConfig{Replicas: 2}); err == nil {
		t.Fatal("shape-drifting factory accepted")
	}
	failing := func() (*Session, error) { return nil, fmt.Errorf("no weights on disk") }
	if _, err := NewFleet(failing, FleetConfig{Replicas: 2}); err == nil {
		t.Fatal("failing factory accepted")
	}
}
