package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tbd/internal/kernels"
	"tbd/internal/metrics"
	"tbd/internal/prof"
	"tbd/internal/sim"
	"tbd/internal/tensor"
	"tbd/internal/trace"
)

// Fleet is a replicated serving front end: N batch runners (one Session
// and one goroutine each) behind a router. The replicas share one
// read-only weight snapshot (Session.ShareWeightsFrom aliases every
// parameter's backing storage), so N replicas cost the resident weights
// of one model; what stays per-replica is exactly what concurrency
// needs — the layer output buffers, a batch-assembly workspace, and the
// admission queue.
//
//	clients ──PredictSLO──▶ router ──▶ replica 0: queue ─▶ runner ─▶ Session ┐
//	   ▲                      │        replica 1: queue ─▶ runner ─▶ Session ├─ shared
//	   │                      │            ⋮                                 │  weights
//	   └── results            └─▶ shed: ErrOverloaded (queues full)          ┘
//	                              or ErrDeadline (SLO infeasible)
//
// The router picks the replica with the smallest estimated completion
// time, computed from live queue depth and each replica's recent median
// batch time (a rotating-window histogram, so the signal tracks the
// current load, not the lifetime average). Requests may carry an SLO
// budget: when no replica can plausibly meet it the request is shed at
// admission with ErrDeadline, and a request that expires while queued is
// shed at dequeue instead of wasting a forward on it.
//
// Fleet.Swap replaces the weights of every replica with zero downtime:
// fresh sessions are built and shared, the checkpoint is loaded through
// the shared storage, a canary forward validates the new weights, and
// replicas are flipped one at a time by a control message that drains
// behind in-flight batches.
type Fleet struct {
	cfg      FleetConfig
	factory  func() (*Session, error)
	replicas []*replica
	shared   bool // replicas alias one weight snapshot
	start    time.Time

	closing   atomic.Bool
	producers sync.WaitGroup
	closeOnce sync.Once

	// swapMu serializes Swap calls; it is never held on the request path.
	swapMu sync.Mutex

	// Router-side shed counters. Rejections happen before a replica is
	// chosen, so they live on the fleet, not in any replica's Stats.
	rejOverload atomic.Uint64
	rejDeadline atomic.Uint64
	rejShutdown atomic.Uint64

	swaps      atomic.Uint64
	lastSwapNs atomic.Int64

	// rr rotates the router's tie-break so equally-idle replicas take
	// turns instead of piling onto replica 0.
	rr atomic.Uint64

	traceMu      sync.Mutex
	traceEvents  []sim.Event // guarded by traceMu
	traceDropped uint64      // guarded by traceMu
}

// FleetConfig tunes a Fleet. MaxBatch, MaxWait, and QueueDepth have the
// same meaning as Config but apply per replica.
type FleetConfig struct {
	// Replicas is the number of batch runners. Defaults to 1.
	Replicas int
	// MaxBatch caps how many requests one forward pass coalesces.
	MaxBatch int
	// MaxWait bounds the batching delay of a batch's first request.
	MaxWait time.Duration
	// QueueDepth bounds each replica's admission queue. Defaults to
	// 4*MaxBatch.
	QueueDepth int
	// SLO is the default latency budget attached to requests that do not
	// carry one, and the router's p99 steering target: replicas whose
	// recent p99 exceeds it are deprioritized. 0 disables both.
	SLO time.Duration
	// Window is the span of the rotating histograms behind the router's
	// control signals (recent batch-time p50, recent latency p99).
	// Defaults to 2s.
	Window time.Duration
	// HalfWeights freezes every replica's weights to fp16 storage after
	// sharing. NewFleet fails if the model does not support it.
	HalfWeights bool
	// TraceEvents, when positive, retains up to that many per-batch trace
	// events across the whole fleet for Timeline export.
	TraceEvents int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.SLO < 0 {
		c.SLO = 0
	}
	return c
}

// replica is one batch runner: a queue, a session slot, and the live
// signals the router steers on. The session lives in an atomic pointer
// because Swap replaces it from outside the runner goroutine.
type replica struct {
	id    int
	fleet *Fleet
	queue chan *request
	sess  atomic.Pointer[Session]
	stats *Stats

	// queued counts admitted requests not yet completed (queue residents
	// plus the in-flight batch); the router's queue-depth signal.
	queued atomic.Int64

	// Router control signals, refreshed by the runner after every flush:
	// float64 bits of the recent median batch time and recent p99 request
	// latency in seconds. Atomics so the router reads them lock-free.
	batchP50  atomic.Uint64
	recentP99 atomic.Uint64

	batchWin *metrics.RollingHistogram // recent per-batch forward seconds
	latWin   *metrics.RollingHistogram // recent request latency seconds

	// buf is the replica-owned batch workspace (capacity MaxBatch x
	// sampleLen), touched only by the runner goroutine. Assembling batches
	// here instead of the shared tensor pool keeps N runners from
	// contending on the pool mutex every flush.
	buf []float32

	spanName string // per-replica profiler span, e.g. "serve.r2.batch"

	runnerWG sync.WaitGroup
}

// swapOrder is the hot-swap control message. It rides the replica queue
// like a request, so FIFO order guarantees every batch admitted before
// the swap drains through the old session first.
type swapOrder struct {
	sess *Session
	done chan error
}

// NewFleet builds cfg.Replicas sessions with factory, shares their
// weights (when the model supports it), and starts one runner per
// replica. Every factory call must produce a same-architecture session;
// the fleet routes requests across them as one service. The caller must
// Close the fleet to release the runners and their CPU budget shares.
func NewFleet(factory func() (*Session, error), cfg FleetConfig) (*Fleet, error) {
	if factory == nil {
		return nil, errors.New("serve: fleet needs a session factory")
	}
	cfg = cfg.withDefaults()
	sessions := make([]*Session, cfg.Replicas)
	for i := range sessions {
		s, err := factory()
		if err != nil {
			return nil, fmt.Errorf("serve: fleet replica %d: %w", i, err)
		}
		if s == nil {
			return nil, fmt.Errorf("serve: fleet replica %d: factory returned nil session", i)
		}
		if i > 0 && s.sampleLen != sessions[0].sampleLen {
			return nil, fmt.Errorf("serve: fleet replica %d has sample length %d, replica 0 has %d",
				i, s.sampleLen, sessions[0].sampleLen)
		}
		sessions[i] = s
	}

	shared := cfg.Replicas > 1
	for i := 1; i < len(sessions); i++ {
		if err := sessions[i].ShareWeightsFrom(sessions[0]); err != nil {
			if errors.Is(err, ErrNoWeightSharing) {
				shared = false // keep per-replica copies; everything else still works
				break
			}
			return nil, fmt.Errorf("serve: fleet replica %d: %w", i, err)
		}
	}

	if cfg.HalfWeights {
		for i, s := range sessions {
			if !s.FreezeHalfWeights() {
				return nil, fmt.Errorf("serve: fleet replica %d: model does not support fp16 weight freezing", i)
			}
		}
	}

	f := &Fleet{
		cfg:     cfg,
		factory: factory,
		shared:  shared,
		start:   time.Now(),
	}
	f.replicas = make([]*replica, cfg.Replicas)
	for i, s := range sessions {
		r := &replica{
			id:       i,
			fleet:    f,
			queue:    make(chan *request, cfg.QueueDepth),
			stats:    newStats(cfg.MaxBatch),
			batchWin: metrics.NewRollingLatencyHistogram(cfg.Window),
			latWin:   metrics.NewRollingLatencyHistogram(cfg.Window),
			buf:      make([]float32, cfg.MaxBatch*s.sampleLen),
			spanName: fmt.Sprintf("serve.r%d.batch", i),
		}
		r.sess.Store(s)
		f.replicas[i] = r
	}
	for _, r := range f.replicas {
		acquireCPUBudget() // each runner is one service's worth of GEMM parallelism
		r.runnerWG.Add(1)
		go r.run()
	}
	return f, nil
}

// Config returns the fleet's effective (defaulted) configuration.
func (f *Fleet) Config() FleetConfig { return f.cfg }

// SharedWeights reports whether the replicas alias one weight snapshot.
func (f *Fleet) SharedWeights() bool { return f.shared }

// Replicas returns the number of batch runners.
func (f *Fleet) Replicas() int { return len(f.replicas) }

// Close stops admission, drains every admitted request through the
// runners, and releases the fleet's CPU budget shares. Idempotent and
// safe to call concurrently with Predict and Swap.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		f.closing.Store(true)
		f.producers.Wait() // no producer is still about to enqueue
		for _, r := range f.replicas {
			close(r.queue)
		}
		for _, r := range f.replicas {
			r.runnerWG.Wait()
			releaseCPUBudget()
		}
	})
}

// Swap replaces every replica's weights with zero downtime. It builds
// fresh sessions with the fleet's factory, shares them, hands the
// primary to load (typically graph.LoadCheckpoint via Session.Model),
// re-freezes fp16 storage when the fleet runs half weights, validates
// the result with a full-width canary forward, and then flips replicas
// one at a time: each flip is a control message through the replica's
// queue, so every in-flight batch drains through the old weights and the
// next batch runs on the new ones — no request is ever failed or served
// by a half-swapped replica. On any error before the first flip the old
// sessions keep serving untouched.
func (f *Fleet) Swap(load func(primary *Session) error) error {
	f.swapMu.Lock()
	defer f.swapMu.Unlock()
	if f.closing.Load() {
		return ErrShuttingDown
	}
	t0 := time.Now()

	fresh := make([]*Session, len(f.replicas))
	for i := range fresh {
		s, err := f.factory()
		if err != nil {
			return fmt.Errorf("serve: swap replica %d: %w", i, err)
		}
		if s == nil || s.sampleLen != f.replicas[0].sess.Load().sampleLen {
			return fmt.Errorf("serve: swap replica %d: factory session incompatible with fleet", i)
		}
		fresh[i] = s
	}
	if f.shared {
		for i := 1; i < len(fresh); i++ {
			if err := fresh[i].ShareWeightsFrom(fresh[0]); err != nil {
				return fmt.Errorf("serve: swap replica %d: %w", i, err)
			}
		}
	}
	if load != nil {
		// Shared storage makes one load visible to every replica;
		// unshared fleets load each copy.
		targets := fresh[:1]
		if !f.shared {
			targets = fresh
		}
		for i, s := range targets {
			if err := load(s); err != nil {
				return fmt.Errorf("serve: swap load into replica %d: %w", i, err)
			}
		}
	}
	if f.cfg.HalfWeights {
		for i, s := range fresh {
			if !s.FreezeHalfWeights() {
				return fmt.Errorf("serve: swap replica %d: model lost fp16 freeze support", i)
			}
		}
	}
	// Canary: a full-width forward through every fresh session (in its
	// final storage format) must produce finite outputs, and warms the
	// per-layer buffers so the first real batch pays no allocation spike.
	for i, s := range fresh {
		if err := canaryForward(s, f.cfg.MaxBatch); err != nil {
			return fmt.Errorf("serve: swap aborted by canary on replica %d: %w", i, err)
		}
	}

	for i, r := range f.replicas {
		ord := &swapOrder{sess: fresh[i], done: make(chan error, 1)}
		if err := f.submitSwap(r, ord); err != nil {
			return fmt.Errorf("serve: swap interrupted at replica %d: %w", i, err)
		}
		if err := <-ord.done; err != nil {
			return fmt.Errorf("serve: swap replica %d: %w", i, err)
		}
	}
	f.swaps.Add(1)
	f.lastSwapNs.Store(int64(time.Since(t0)))
	return nil
}

// submitSwap enqueues a swap order behind the replica's pending work.
// The producers guard pairs with Close exactly like Predict's.
func (f *Fleet) submitSwap(r *replica, ord *swapOrder) error {
	f.producers.Add(1)
	defer f.producers.Done()
	if f.closing.Load() {
		return ErrShuttingDown
	}
	r.queue <- &request{swap: ord}
	return nil
}

// canaryForward validates a session with a zero-filled full-width batch:
// the forward must not panic and must produce finite outputs.
func canaryForward(s *Session, maxBatch int) error {
	shape := append(make([]int, 0, len(s.sampleShape)+1), maxBatch)
	shape = append(shape, s.sampleShape...)
	out, err := inferSessionSafe(s, tensor.New(shape...))
	if err != nil {
		return err
	}
	for _, v := range out.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return errors.New("non-finite canary output")
		}
	}
	return nil
}

// inferSessionSafe runs a forward pass, converting panics into errors.
func inferSessionSafe(s *Session, x *tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("serve: forward pass failed: %v", p)
		}
	}()
	return s.InferBatch(x), nil
}

// run is the replica's batcher loop: identical batching policy to
// Service.run, plus swap-order handling. A swap order seen mid-collect
// closes the batch early; the batch is flushed through the old session
// and the flip happens after (FIFO drain).
func (r *replica) run() {
	defer r.runnerWG.Done()
	cfg := r.fleet.cfg
	batch := make([]*request, 0, cfg.MaxBatch)
	var timer *time.Timer
	if cfg.MaxWait > 0 && cfg.MaxBatch > 1 {
		timer = time.NewTimer(cfg.MaxWait)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	for first := range r.queue {
		if first.swap != nil {
			r.applySwap(first.swap)
			continue
		}
		batch = append(batch[:0], first)
		var pending *swapOrder
		if timer != nil {
			timer.Reset(cfg.MaxWait)
			fired := false
		collect:
			for len(batch) < cfg.MaxBatch {
				select {
				case q, ok := <-r.queue:
					if !ok {
						break collect
					}
					if q.swap != nil {
						pending = q.swap
						break collect
					}
					batch = append(batch, q)
				case <-timer.C:
					fired = true
					break collect
				}
			}
			if !fired && !timer.Stop() {
				<-timer.C
			}
		} else {
		greedy:
			for len(batch) < cfg.MaxBatch {
				select {
				case q, ok := <-r.queue:
					if !ok {
						break greedy
					}
					if q.swap != nil {
						pending = q.swap
						break greedy
					}
					batch = append(batch, q)
				default:
					break greedy
				}
			}
		}
		r.flush(batch)
		if pending != nil {
			r.applySwap(pending)
		}
	}
}

// applySwap flips the replica to the new session. Reached only between
// flushes, so the old session has no forward in flight.
func (r *replica) applySwap(ord *swapOrder) {
	r.sess.Store(ord.sess)
	ord.done <- nil
}

// flush sheds expired requests, assembles the rest in the replica-owned
// workspace, runs the forward, and fans rows back out.
func (r *replica) flush(batch []*request) {
	f := r.fleet
	now := time.Now()
	live := batch[:0]
	expired := 0
	for _, q := range batch {
		if !q.deadline.IsZero() && now.After(q.deadline) {
			q.resp <- response{err: ErrDeadline}
			r.stats.rejectDeadline()
			expired++
			continue
		}
		live = append(live, q)
	}
	if expired > 0 {
		r.queued.Add(-int64(expired))
	}
	n := len(live)
	if n == 0 {
		return
	}

	sess := r.sess.Load()
	L := sess.sampleLen
	if cap(r.buf) < n*L {
		r.buf = make([]float32, f.cfg.MaxBatch*L)
	}
	buf := r.buf[:n*L]
	for i, q := range live {
		copy(buf[i*L:(i+1)*L], q.x.Data())
	}
	shape := append(make([]int, 0, len(sess.sampleShape)+1), n)
	shape = append(shape, sess.sampleShape...)
	x := tensor.FromSlice(buf, shape...)

	sp := prof.Begin(prof.CatServe, r.spanName)
	if sp.Active() {
		sp.SetBytes(4 * int64(x.Numel()))
	}
	t0 := time.Now()
	out, err := inferSessionSafe(sess, x)
	dur := time.Since(t0)
	sp.End()

	if prof.Enabled() {
		_, packBytes := tensor.PoolRetainedBytes()
		prof.SampleMemory(f.residentWeightBytes(), 0, 0, packBytes, 0)
	}

	if err != nil {
		for _, q := range live {
			q.resp <- response{err: err}
		}
		r.queued.Add(-int64(n))
		r.stats.failBatch(n)
		return
	}

	rowLen := out.Numel() / n
	done := time.Now()
	latencies := make([]float64, n)
	for i, q := range live {
		res := Result{
			Output:    append([]float32(nil), out.Data()[i*rowLen:(i+1)*rowLen]...),
			Latency:   done.Sub(q.enq),
			BatchSize: n,
			Replica:   r.id,
		}
		latencies[i] = res.Latency.Seconds()
		q.resp <- response{res: res}
	}
	r.queued.Add(-int64(n))
	r.stats.recordBatch(n, dur.Seconds(), latencies)

	// Refresh the router's control signals from the rotating windows.
	r.batchWin.Observe(dur.Seconds())
	for _, l := range latencies {
		r.latWin.Observe(l)
	}
	r.batchP50.Store(math.Float64bits(r.batchWin.Snapshot().Quantile(0.50)))
	r.recentP99.Store(math.Float64bits(r.latWin.Snapshot().Quantile(0.99)))

	f.recordTrace(r.id, n, t0, dur)
}

// residentWeightBytes is the fleet's actual weight footprint: one
// snapshot when storage is shared, the sum of the copies otherwise.
// (Half-frozen fleets report the sum — the fp16 matrices are
// per-replica even when the fp32 biases stay shared.)
func (f *Fleet) residentWeightBytes() int64 {
	if f.shared && !f.cfg.HalfWeights {
		return f.replicas[0].sess.Load().WeightBytes()
	}
	var total int64
	for _, r := range f.replicas {
		total += r.sess.Load().WeightBytes()
	}
	return total
}

// recordTrace appends one per-batch event to the fleet-wide trace
// buffer, dropping once full.
func (f *Fleet) recordTrace(id, n int, t0 time.Time, dur time.Duration) {
	if f.cfg.TraceEvents <= 0 {
		return
	}
	f.traceMu.Lock()
	defer f.traceMu.Unlock()
	if len(f.traceEvents) >= f.cfg.TraceEvents {
		f.traceDropped++
		return
	}
	f.traceEvents = append(f.traceEvents, sim.Event{
		Name:     fmt.Sprintf("serve.r%d.batch[n=%d]", id, n),
		Class:    kernels.GEMM,
		StartSec: t0.Sub(f.start).Seconds(),
		DurSec:   dur.Seconds(),
	})
}

// Timeline exports the fleet-wide per-batch trace events (empty when
// FleetConfig.TraceEvents is 0).
func (f *Fleet) Timeline() *trace.Timeline {
	f.traceMu.Lock()
	defer f.traceMu.Unlock()
	return trace.New(append([]sim.Event(nil), f.traceEvents...))
}

// TraceEventsDropped reports how many batch events were discarded after
// the trace buffer filled.
func (f *Fleet) TraceEventsDropped() uint64 {
	f.traceMu.Lock()
	defer f.traceMu.Unlock()
	return f.traceDropped
}
