// Package serve turns trained model twins into a load-bearing inference
// service. It provides the missing half of the benchmark story: the
// paper's batch-size Observations (throughput rises steeply with
// mini-batch size until the device saturates) apply just as much to
// request serving as to training, but concurrent clients naturally issue
// single-sample requests. The dynamic micro-batcher here coalesces those
// requests into GEMM-friendly batches under a max-batch / max-wait
// policy, with bounded-queue admission control in front and latency
// histograms behind, so the throughput-vs-latency trade can be measured
// rather than guessed.
//
// Architecture (one Service):
//
//	clients ──Predict──▶ bounded queue ──▶ runner goroutine ──▶ Session.InferBatch
//	   ▲                  (admission         (dynamic               (frozen network,
//	   └──── per-request   control:           micro-batcher:         fused kernels,
//	         results       shed load          coalesce ≤ MaxBatch    pooled buffers)
//	         in order)     when full)         or flush at MaxWait)
//
// Layers recycle their output buffers across forward calls, so a network
// is single-goroutine property; the Service owns one Session and one
// runner goroutine, and concurrency comes from batching, not from racing
// forwards. Multiple Services may run side by side (one network each);
// the package clamps the shared GEMM worker pool so the combined
// parallelism never oversubscribes GOMAXPROCS.
package serve

import (
	"fmt"

	"tbd/internal/tensor"
)

// Model is the forward-only surface the session needs; *graph.Network
// implements it. train is always false on the serving path.
type Model interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
}

// Session is a frozen, forward-only inference session over a network.
// It carries no optimizer state and never stashes feature maps (all
// forwards run with train=false). A Session is not safe for concurrent
// use — the owning Service serializes batches onto it.
type Session struct {
	model       Model
	sampleShape []int
	sampleLen   int
}

// NewSession freezes a model for inference. sampleShape is the shape of
// one request sample (without the batch dimension), e.g. [3, 16, 16] for
// an NCHW image model or [T] for a token-sequence model.
func NewSession(m Model, sampleShape ...int) *Session {
	if m == nil {
		panic("serve: nil model")
	}
	if len(sampleShape) == 0 {
		panic("serve: session needs a per-sample input shape")
	}
	n := 1
	for _, d := range sampleShape {
		if d <= 0 {
			panic(fmt.Sprintf("serve: non-positive dimension in sample shape %v", sampleShape))
		}
		n *= d
	}
	return &Session{
		model:       m,
		sampleShape: append([]int(nil), sampleShape...),
		sampleLen:   n,
	}
}

// Model returns the session's underlying model (for checkpoint loaders
// that need the concrete network behind a fleet replica).
func (s *Session) Model() Model { return s.model }

// ShareWeightsFrom repoints this session's model parameters at src's
// backing storage, so the two sessions serve one weight snapshot (the
// fleet's replica-sharing primitive; see graph.Network.ShareParamsFrom).
// Returns ErrNoWeightSharing when the model does not expose the
// capability — the fleet then falls back to per-replica weights.
func (s *Session) ShareWeightsFrom(src *Session) error {
	m, ok := s.model.(interface{ ShareParamsFrom(src any) error })
	if !ok {
		return ErrNoWeightSharing
	}
	return m.ShareParamsFrom(src.model)
}

// SampleShape returns the per-sample input shape (not a copy; do not
// mutate).
func (s *Session) SampleShape() []int { return s.sampleShape }

// SampleLen returns the number of elements in one sample.
func (s *Session) SampleLen() int { return s.sampleLen }

// InferBatch runs an eval-mode forward over a [n, sampleShape...] batch.
// The returned tensor is owned by the model's layers and valid only until
// the next InferBatch call; copy rows out before reusing the session.
func (s *Session) InferBatch(x *tensor.Tensor) *tensor.Tensor {
	return s.model.Forward(x, false)
}

// FreezeHalfWeights converts the model's fp16-capable weights to half
// storage (roughly halving the serving process's resident weight bytes)
// and reports whether the model supported it. Outputs shift within the
// weight quantization error — bit-identity with an unfrozen model is
// deliberately given up. Duck-typed so serve stays decoupled from the
// graph package; *graph.Network implements the method.
func (s *Session) FreezeHalfWeights() bool {
	if f, ok := s.model.(interface{ FreezeHalfWeights() bool }); ok {
		return f.FreezeHalfWeights()
	}
	if f, ok := s.model.(interface{ FreezeHalfWeights() }); ok {
		f.FreezeHalfWeights()
		return true
	}
	return false
}

// WeightBytes reports the model's resident weight footprint, or 0 when
// the model does not expose one.
func (s *Session) WeightBytes() int64 {
	if w, ok := s.model.(interface{ WeightBytes() int64 }); ok {
		return w.WeightBytes()
	}
	return 0
}
