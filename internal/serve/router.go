package serve

import (
	"fmt"
	"math"
	"time"

	"tbd/internal/tensor"
)

// Router: replica selection and deadline-aware admission.
//
// For each replica the router estimates time-to-completion of a newly
// admitted request as
//
//	wait(r) = ceil((queued+1) / MaxBatch) * batchP50(r)
//
// where queued is the replica's live depth (queue residents plus the
// in-flight batch) and batchP50 is the recent median forward time from
// the replica's rotating window — a control signal that tracks current
// load rather than the lifetime average. Requests are placed on the
// feasible replica with the smallest estimate; replicas whose recent p99
// is already blowing the fleet SLO get their estimate penalized so
// traffic drains away from them before they melt.
//
// Admission outcomes are deliberately distinct:
//   - ErrDeadline: no replica could meet the request's budget even with
//     an empty slot (shed-before-queueing; the 503 "back off" signal).
//   - ErrOverloaded: at least one replica was feasible but every feasible
//     queue was full (the 429 "retry elsewhere/now" signal).

// Predict routes one sample through the fleet with the fleet's default
// SLO budget (none when FleetConfig.SLO is 0). It blocks until the
// result is ready or the request is shed.
func (f *Fleet) Predict(x *tensor.Tensor) (Result, error) {
	return f.PredictSLO(x, f.cfg.SLO)
}

// PredictSLO is Predict with an explicit latency budget for this request.
// budget <= 0 means no deadline: the request is never shed for SLO
// reasons, only for queue overflow.
func (f *Fleet) PredictSLO(x *tensor.Tensor, budget time.Duration) (Result, error) {
	primary := f.replicas[0].sess.Load()
	if x == nil || x.Numel() != primary.sampleLen {
		got := 0
		if x != nil {
			got = x.Numel()
		}
		return Result{}, fmt.Errorf("serve: sample has %d elements, want %d (shape %v)",
			got, primary.sampleLen, primary.sampleShape)
	}
	f.producers.Add(1)
	if f.closing.Load() {
		f.producers.Done()
		f.rejShutdown.Add(1)
		return Result{}, ErrShuttingDown
	}
	now := time.Now()
	req := &request{x: x, enq: now, resp: make(chan response, 1)}
	if budget > 0 {
		req.deadline = now.Add(budget)
	}
	r, err := f.route(req, budget)
	f.producers.Done()
	if err != nil {
		return Result{}, err
	}
	r.stats.accept()
	resp := <-req.resp
	return resp.res, resp.err
}

// route places req on the best feasible replica, trying candidates in
// ascending estimated-wait order until an enqueue succeeds.
func (f *Fleet) route(req *request, budget time.Duration) (*replica, error) {
	n := len(f.replicas)
	score := make([]float64, n)
	open := make([]bool, n) // feasible and not yet tried
	sloSec := f.cfg.SLO.Seconds()
	budgetSec := budget.Seconds()
	anyFeasible := false
	for i, r := range f.replicas {
		bt := math.Float64frombits(r.batchP50.Load())
		depth := float64(r.queued.Load() + 1)
		wait := math.Ceil(depth/float64(f.cfg.MaxBatch)) * bt
		// Feasible if the request could start and finish inside its
		// budget; with no batch-time signal yet (cold replica) assume yes.
		if budget > 0 && wait+bt > budgetSec {
			continue
		}
		anyFeasible = true
		open[i] = true
		score[i] = wait
		if sloSec > 0 {
			if p99 := math.Float64frombits(r.recentP99.Load()); p99 > sloSec {
				score[i] += p99 // hot replica: push new traffic elsewhere
			}
		}
	}
	if !anyFeasible {
		f.rejDeadline.Add(1)
		return nil, ErrDeadline
	}
	base := int(f.rr.Add(1) % uint64(n))
	for {
		// Scan from a rotating base so exact ties round-robin across
		// replicas instead of always landing on the lowest index.
		best := -1
		for k := 0; k < n; k++ {
			i := (base + k) % n
			if open[i] && (best < 0 || score[i] < score[best]) {
				best = i
			}
		}
		if best < 0 {
			f.rejOverload.Add(1)
			return nil, ErrOverloaded
		}
		open[best] = false
		r := f.replicas[best]
		select {
		case r.queue <- req:
			r.queued.Add(1)
			return r, nil
		default:
			// Queue full; fall through to the next-best candidate.
		}
	}
}
