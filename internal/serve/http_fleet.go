package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"tbd/internal/prof"
	"tbd/internal/tensor"
)

// FleetHandlerOptions wires the endpoints that need capabilities beyond
// the fleet itself.
type FleetHandlerOptions struct {
	// Swap handles a POST /swap body (typically: decode a checkpoint
	// stream and load it into the fleet via Fleet.Swap with
	// graph.LoadCheckpoint on Session.Model). nil leaves /swap
	// unregistered.
	Swap func(body io.Reader) error
}

// SwapResponse is the JSON reply to POST /swap.
type SwapResponse struct {
	Status     string  `json:"status"`
	Swaps      uint64  `json:"swaps"`
	LastSwapMs float64 `json:"last_swap_ms"`
}

// NewFleetHandler exposes a Fleet over HTTP/JSON:
//
//	POST /predict     {"input": [...], "slo_ms": b}  -> PredictResponse (+replica)
//	GET  /stats       -> FleetSnapshot JSON (aggregate + per-replica)
//	GET  /healthz     -> {"status": "ok", "sample_shape": [...], "replicas": n}
//	GET  /debug/prof  -> live profiler snapshot
//	POST /swap        -> zero-downtime weight hot-swap (when opts.Swap is set)
//
// Shed outcomes are deliberately distinct on the wire: queue-full sheds
// are 429 Too Many Requests (the client may retry immediately), while
// SLO-infeasible sheds and drain are 503 Service Unavailable (the client
// should back off).
func NewFleetHandler(f *Fleet, opts FleetHandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		primary := f.replicas[0].sess.Load()
		if len(req.Input) != primary.SampleLen() {
			http.Error(w, "wrong sample size", http.StatusBadRequest)
			return
		}
		if req.SLOMs < 0 {
			http.Error(w, "negative slo_ms", http.StatusBadRequest)
			return
		}
		budget := f.cfg.SLO
		if req.SLOMs > 0 {
			budget = time.Duration(req.SLOMs * float64(time.Millisecond))
		}
		x := tensor.FromSlice(req.Input, primary.SampleShape()...)
		res, err := f.PredictSLO(x, budget)
		switch {
		case errors.Is(err, ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case errors.Is(err, ErrDeadline), errors.Is(err, ErrShuttingDown):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, PredictResponse{
			Output:    res.Output,
			LatencyMs: 1e3 * res.Latency.Seconds(),
			BatchSize: res.BatchSize,
			Replica:   res.Replica,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.Stats())
	})
	mux.HandleFunc("/debug/prof", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, prof.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Status      string `json:"status"`
			SampleShape []int  `json:"sample_shape"`
			Replicas    int    `json:"replicas"`
		}{"ok", f.replicas[0].sess.Load().SampleShape(), len(f.replicas)})
	})
	if opts.Swap != nil {
		mux.HandleFunc("/swap", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			if err := opts.Swap(r.Body); err != nil {
				if errors.Is(err, ErrShuttingDown) {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
				// The old weights keep serving; the swap simply did not
				// happen.
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			snap := f.Stats()
			writeJSON(w, SwapResponse{Status: "ok", Swaps: snap.Swaps, LastSwapMs: snap.LastSwapMs})
		})
	}
	return mux
}
