package serve

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbd/internal/graph"
	"tbd/internal/models"
	"tbd/internal/optim"
	"tbd/internal/tensor"
)

// trainedCheckpoint actually trains a ServeTwin for a few SGD steps and
// serializes it, so the swap tests exercise the real train -> checkpoint
// -> serve round trip rather than a reseeded lookalike.
func trainedCheckpoint(t *testing.T, seed uint64) ([]byte, *graph.Network, []int) {
	t.Helper()
	net, shape, err := models.ServeTwin("mlp", tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(seed + 1)
	x := tensor.RandNormal(rng, 0, 1, append([]int{8}, shape...)...)
	classes := net.Infer(x).Shape()[1]
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	opt := optim.NewSGD(0.05)
	for step := 0; step < 3; step++ {
		graph.TrainClassifierStep(net, opt, x, labels, 0)
	}
	var buf bytes.Buffer
	if err := graph.SaveCheckpoint(&buf, net, 3); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), net, shape
}

// TestFleetSwapUnderLoad is the zero-downtime acceptance test: while
// concurrent clients hammer a 4-replica fleet, Swap loads a trained
// checkpoint into the shared weights. Requirements pinned here:
//   - zero failed requests across the whole run (only clean results or
//     admission sheds);
//   - after Swap returns, every served output is bit-identical to a
//     fresh session loaded from the same checkpoint (BitExactGemmTier);
//   - the fleet still shares one weight snapshot afterwards.
func TestFleetSwapUnderLoad(t *testing.T) {
	prevTier, err := tensor.SetGemmKernelTier(tensor.BitExactGemmTier())
	if err != nil {
		t.Fatal(err)
	}
	defer tensor.SetGemmKernelTier(prevTier)

	ckpt, trained, shape := trainedCheckpoint(t, 5)
	factory, _ := twinFleetFactory(t, "mlp", 99)
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 4, MaxBatch: 8, MaxWait: time.Millisecond, QueueDepth: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Background load across the swap.
	var failed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	sample := tensor.RandNormal(tensor.NewRNG(11), 0, 1, shape...)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := f.Predict(sample); err != nil && !errors.Is(err, ErrOverloaded) {
					failed.Add(1)
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // mid-load

	if err := f.Swap(func(primary *Session) error {
		_, err := graph.LoadCheckpoint(bytes.NewReader(ckpt), primary.Model().(*graph.Network))
		return err
	}); err != nil {
		t.Fatalf("swap under load: %v", err)
	}

	time.Sleep(10 * time.Millisecond) // keep serving on the new weights
	close(stop)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed across the hot-swap; want 0", n)
	}
	snap := f.Stats()
	if snap.Failed != 0 {
		t.Fatalf("fleet counted %d failed requests across the hot-swap", snap.Failed)
	}
	if snap.Swaps != 1 || snap.LastSwapMs <= 0 {
		t.Fatalf("swap accounting: swaps=%d last_swap_ms=%g", snap.Swaps, snap.LastSwapMs)
	}
	if !f.SharedWeights() {
		t.Fatal("fleet lost weight sharing across the swap")
	}

	// Post-swap outputs must be bit-identical to the trained donor (and
	// to a fresh session loaded from the same checkpoint), on every
	// replica the router touches.
	rng := tensor.NewRNG(21)
	for i := 0; i < 32; i++ {
		x := tensor.RandNormal(rng, 0, 1, shape...)
		want := trained.Infer(x.Reshape(append([]int{1}, shape...)...)).Data()
		res, err := f.Predict(x)
		if err != nil {
			t.Fatalf("post-swap request %d: %v", i, err)
		}
		for j := range want {
			if res.Output[j] != want[j] {
				t.Fatalf("post-swap request %d elem %d (replica %d): %g, checkpoint session %g (must be bit-identical)",
					i, j, res.Replica, res.Output[j], want[j])
			}
		}
	}
}

// TestFleetSwapFp16Refreeze: a half-weights fleet must re-freeze the
// incoming fp32 checkpoint during Swap, ending up bit-identical to a
// fresh session that loaded the same checkpoint and then froze.
func TestFleetSwapFp16Refreeze(t *testing.T) {
	prevTier, err := tensor.SetGemmKernelTier(tensor.BitExactGemmTier())
	if err != nil {
		t.Fatal(err)
	}
	defer tensor.SetGemmKernelTier(prevTier)

	ckpt, _, shape := trainedCheckpoint(t, 17)
	factory, _ := twinFleetFactory(t, "mlp", 99)
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 32, HalfWeights: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Stats().HalfWeights {
		t.Fatal("fleet not reporting half weights")
	}

	if err := f.Swap(func(primary *Session) error {
		_, err := graph.LoadCheckpoint(bytes.NewReader(ckpt), primary.Model().(*graph.Network))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Reference: fresh network, same checkpoint, then frozen — the state
	// a restart would land in.
	refNet, _, err := models.ServeTwin("mlp", tensor.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.LoadCheckpoint(bytes.NewReader(ckpt), refNet); err != nil {
		t.Fatal(err)
	}
	ref := NewSession(refNet, shape...)
	if !ref.FreezeHalfWeights() {
		t.Fatal("reference session did not freeze")
	}

	rng := tensor.NewRNG(23)
	for i := 0; i < 16; i++ {
		x := tensor.RandNormal(rng, 0, 1, shape...)
		want := ref.InferBatch(x.Reshape(append([]int{1}, shape...)...)).Data()
		want = append([]float32(nil), want...)
		res, err := f.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if res.Output[j] != want[j] {
				t.Fatalf("fp16 post-swap elem %d: fleet %g, restarted session %g", j, res.Output[j], want[j])
			}
		}
	}
}

// nanModel produces non-finite outputs — the canary's job is to catch
// exactly this class of bad checkpoint before any replica flips.
type nanModel struct{}

func (nanModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	for i := range out.Data() {
		out.Data()[i] = float32(math.NaN())
	}
	return out
}

// TestFleetSwapCanaryAborts: when the factory starts handing out broken
// sessions, Swap must abort at the canary and leave the old fleet
// serving untouched.
func TestFleetSwapCanaryAborts(t *testing.T) {
	var calls atomic.Int64
	factory := func() (*Session, error) {
		if calls.Add(1) <= 2 {
			return NewSession(identityModel{}, 4), nil
		}
		return NewSession(nanModel{}, 4), nil
	}
	f, err := NewFleet(factory, FleetConfig{Replicas: 2, MaxBatch: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if err := f.Swap(nil); err == nil {
		t.Fatal("swap to non-finite weights not aborted by canary")
	}
	if got := f.Stats().Swaps; got != 0 {
		t.Fatalf("aborted swap counted: swaps=%d", got)
	}
	// Old sessions still serve, still identity.
	x := tensor.Full(7, 4)
	res, err := f.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Output {
		if v != 7 {
			t.Fatalf("post-abort output %g, want identity 7", v)
		}
	}
}

// TestFleetSwapAfterClose: a swap racing shutdown is refused cleanly.
func TestFleetSwapAfterClose(t *testing.T) {
	factory := func() (*Session, error) { return NewSession(identityModel{}, 4), nil }
	f, err := NewFleet(factory, FleetConfig{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := f.Swap(nil); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Swap after Close = %v, want ErrShuttingDown", err)
	}
}

// TestFleetSwapLoadError: a load callback failure (corrupt checkpoint)
// aborts before any flip.
func TestFleetSwapLoadError(t *testing.T) {
	factory, _ := twinFleetFactory(t, "mlp", 99)
	f, err := NewFleet(factory, FleetConfig{Replicas: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	boom := errors.New("corrupt checkpoint")
	if err := f.Swap(func(*Session) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Swap load error = %v, want wrapped %v", err, boom)
	}
	if got := f.Stats().Swaps; got != 0 {
		t.Fatalf("failed swap counted: swaps=%d", got)
	}
	// And a truncated stream through the real loader is refused too.
	err = f.Swap(func(primary *Session) error {
		_, err := graph.LoadCheckpoint(io.LimitReader(bytes.NewReader([]byte("tbd")), 3),
			primary.Model().(*graph.Network))
		return err
	})
	if err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
