package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"tbd/internal/memprof"
	"tbd/internal/models"
	"tbd/internal/prof"
	"tbd/internal/tensor"
)

// serveAll pushes the samples through a fresh service over sess with the
// profiler capturing, and returns the per-request outputs (indexed like
// samples) plus the memory watermark of the run. The shared pool is
// drained first so the workspace watermark reflects only this run's pack
// scratch.
func serveAll(t *testing.T, sess *Session, samples []*tensor.Tensor) ([][]float32, prof.MemWatermark) {
	t.Helper()
	tensor.SetPooling(false)
	tensor.SetPooling(true)
	prof.Enable()
	defer prof.Disable()

	svc := New(sess, Config{
		MaxBatch:   16,
		MaxWait:    2 * time.Millisecond,
		QueueDepth: len(samples),
	})
	defer svc.Close()

	outs := make([][]float32, len(samples))
	var wg sync.WaitGroup
	errs := make([]error, len(samples))
	for i := range samples {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Predict(samples[i])
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = res.Output
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	svc.Close() // freeze the capture before reading the watermark
	return outs, prof.Watermark()
}

// TestServeHalfWeights is the fp16-serving acceptance test: freezing a
// session's weights to half storage must (1) roughly halve the resident
// weight bytes as reported by Session.WeightBytes and the profiler's
// live watermark, (2) shrink the pack workspace watermark when the
// native fp16 kernel path is available (the B panels pack as uint16),
// and (3) keep every served output within the fp16 weight-quantization
// tolerance of the full-precision session's answer.
func TestServeHalfWeights(t *testing.T) {
	fullNet, shape, err := models.ServeTwin("mlp", tensor.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	halfNet, _, err := models.ServeTwin("mlp", tensor.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	fullSess := NewSession(fullNet, shape...)
	halfSess := NewSession(halfNet, shape...)

	fullBytes := fullSess.WeightBytes()
	if fullBytes <= 0 {
		t.Fatal("full-precision session reports no weight bytes")
	}
	if !halfSess.FreezeHalfWeights() {
		t.Fatal("FreezeHalfWeights returned false for an all-dense twin")
	}
	halfBytes := halfSess.WeightBytes()
	if halfBytes <= 0 || halfBytes > fullBytes*55/100 {
		t.Fatalf("frozen weights %d bytes, want (0, %d] (55%% of full %d)",
			halfBytes, fullBytes*55/100, fullBytes)
	}

	const nReq = 48
	rng := tensor.NewRNG(7)
	samples := make([]*tensor.Tensor, nReq)
	for i := range samples {
		samples[i] = tensor.RandNormal(rng, 0, 1, shape...)
	}

	fullOuts, fullW := serveAll(t, fullSess, samples)
	halfOuts, halfW := serveAll(t, halfSess, samples)

	// Per-request output tolerance: fp16 weight quantization perturbs each
	// weight by at most 2^-11 relative, so logits agree to a mixed
	// relative/absolute bound far looser than kernel-tier ULP noise.
	const relTol, absTol = 2e-2, 2e-2
	var worst float64
	for i := range samples {
		if len(halfOuts[i]) != len(fullOuts[i]) {
			t.Fatalf("request %d: output len %d, want %d", i, len(halfOuts[i]), len(fullOuts[i]))
		}
		for j := range fullOuts[i] {
			f := float64(fullOuts[i][j])
			d := math.Abs(float64(halfOuts[i][j]) - f)
			if r := d / math.Max(1, math.Abs(f)); r > worst {
				worst = r
			}
			if d > absTol && d > relTol*math.Abs(f) {
				t.Fatalf("request %d elem %d: fp16-served %g vs fp32 %g (diff %g exceeds rel %g / abs %g)",
					i, j, halfOuts[i][j], fullOuts[i][j], d, relTol, absTol)
			}
		}
	}
	t.Logf("worst fp16/fp32 output divergence: %.2e (bound rel=%g abs=%g)", worst, relTol, absTol)

	// The watermark's weights category is fed from Session.WeightBytes on
	// every flushed batch, so ProfileLive must attribute exactly the
	// resident footprint — halved for the frozen run.
	fb, hb := memprof.ProfileLive(fullW), memprof.ProfileLive(halfW)
	if fullW.Samples == 0 || halfW.Samples == 0 {
		t.Fatalf("watermark unsampled: full=%d half=%d batches", fullW.Samples, halfW.Samples)
	}
	if fb.Weights != fullBytes {
		t.Fatalf("ProfileLive full weights = %d, want %d", fb.Weights, fullBytes)
	}
	if hb.Weights != halfBytes {
		t.Fatalf("ProfileLive frozen weights = %d, want %d", hb.Weights, halfBytes)
	}
	if fb.WeightGradients != 0 || hb.WeightGradients != 0 || fb.Dynamic != 0 || hb.Dynamic != 0 {
		t.Fatalf("inference watermark has training categories: full=%+v half=%+v", fb, hb)
	}

	// Pack-workspace reduction needs the native fp16 kernels (uint16 B
	// panels at half the bytes); the widening fallback packs fp32.
	if !tensor.GemmHalfFast() {
		t.Logf("fp16 fast path unavailable (tier %s); skipping workspace check", tensor.GemmKernelTier())
		return
	}
	if fb.Workspace <= 0 {
		t.Fatal("full-precision run retained no pack workspace")
	}
	if hb.Workspace >= fb.Workspace*3/4 {
		t.Fatalf("fp16 pack workspace %d not reduced vs fp32 %d (want < 75%%)", hb.Workspace, fb.Workspace)
	}
	t.Logf("pack workspace: fp32 %d B -> fp16 %d B (%.0f%%); weights %d -> %d B",
		fb.Workspace, hb.Workspace, 100*float64(hb.Workspace)/float64(fb.Workspace), fullBytes, halfBytes)
}
