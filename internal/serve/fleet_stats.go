package serve

import (
	"math"

	"tbd/internal/metrics"
	"tbd/internal/tensor"
)

// ReplicaSnapshot is one replica's view inside a FleetSnapshot: the
// standard service counters plus the live router signals.
type ReplicaSnapshot struct {
	Replica int `json:"replica"`
	StatsSnapshot
	// QueueDepth is the live depth at snapshot time (queue residents plus
	// the in-flight batch).
	QueueDepth int `json:"queue_depth"`
	// RecentP99Ms and RecentBatchP50Ms are the rotating-window signals the
	// router steers on, in milliseconds.
	RecentP99Ms      float64 `json:"recent_p99_ms"`
	RecentBatchP50Ms float64 `json:"recent_batch_p50_ms"`
}

// FleetSnapshot is the fleet-wide /stats payload: exact aggregate
// counters and quantiles (replica histograms share one bucket layout and
// merge bucket-wise), router-side shed counts, swap history, and the
// per-replica breakdown.
type FleetSnapshot struct {
	StatsSnapshot
	Replicas      int  `json:"replicas"`
	SharedWeights bool `json:"shared_weights"`
	HalfWeights   bool `json:"half_weights,omitempty"`
	// SLOMs is the fleet's default latency budget in milliseconds (0 when
	// SLO routing is off); RecentP99Ms is the fleet-wide rotating-window
	// p99 — compare the two to see whether the fleet is inside its SLO
	// right now, regardless of lifetime history.
	SLOMs       float64 `json:"slo_ms,omitempty"`
	RecentP99Ms float64 `json:"recent_p99_ms"`
	// Swaps counts completed weight hot-swaps; LastSwapMs is the wall
	// time of the most recent one (build + load + canary + all flips).
	Swaps      uint64            `json:"swaps"`
	LastSwapMs float64           `json:"last_swap_ms,omitempty"`
	PerReplica []ReplicaSnapshot `json:"per_replica"`
}

// Stats returns a point-in-time fleet snapshot.
func (f *Fleet) Stats() FleetSnapshot {
	parts := make([]*Stats, len(f.replicas))
	per := make([]ReplicaSnapshot, len(f.replicas))
	recent := metrics.NewLatencyHistogram()
	for i, r := range f.replicas {
		parts[i] = r.stats
		rs := ReplicaSnapshot{
			Replica:          i,
			StatsSnapshot:    r.stats.snapshot(f.start),
			QueueDepth:       int(r.queued.Load()),
			RecentP99Ms:      1e3 * math.Float64frombits(r.recentP99.Load()),
			RecentBatchP50Ms: 1e3 * math.Float64frombits(r.batchP50.Load()),
		}
		rs.WeightBytes = r.sess.Load().WeightBytes()
		per[i] = rs
		recent.Merge(r.latWin.Snapshot())
	}
	agg := aggregateStats(parts).snapshot(f.start)
	// Router-side sheds happen before a replica is chosen; fold them into
	// the aggregate (replica stats only ever count dequeue-time deadline
	// sheds, so there is no double counting).
	agg.RejectedOverload += f.rejOverload.Load()
	agg.RejectedDeadline += f.rejDeadline.Load()
	agg.RejectedShutdown += f.rejShutdown.Load()
	agg.GemmTier = tensor.GemmKernelTier()
	agg.WeightBytes = f.residentWeightBytes()
	return FleetSnapshot{
		StatsSnapshot: agg,
		Replicas:      len(f.replicas),
		SharedWeights: f.shared,
		HalfWeights:   f.cfg.HalfWeights,
		SLOMs:         1e3 * f.cfg.SLO.Seconds(),
		RecentP99Ms:   1e3 * recent.Quantile(0.99),
		Swaps:         f.swaps.Load(),
		LastSwapMs:    float64(f.lastSwapNs.Load()) / 1e6,
		PerReplica:    per,
	}
}

// LatencyHistogram returns the fleet-wide request-latency histogram
// (bucket-exact merge across replicas).
func (f *Fleet) LatencyHistogram() *metrics.Histogram {
	h := metrics.NewLatencyHistogram()
	for _, r := range f.replicas {
		h.Merge(r.stats.LatencyHistogram())
	}
	return h
}
