package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbd/internal/models"
	"tbd/internal/tensor"
)

// identityModel echoes its input: output row i == input row i. It lets
// ordering tests tag each request with a distinct payload.
type identityModel struct{}

func (identityModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// slowModel sleeps per forward, for queue-pressure and drain tests.
type slowModel struct {
	delay    time.Duration
	forwards atomic.Int64
}

func (m *slowModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m.forwards.Add(1)
	time.Sleep(m.delay)
	return x
}

// panicModel simulates a forward-pass fault (e.g. out-of-vocab token id
// hitting an embedding layer).
type panicModel struct{}

func (panicModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	panic("bad input")
}

// TestServeBitIdenticalToSingleSample is the zero-tolerance equality
// acceptance test: every result served through the dynamic batcher must
// be bit-identical to a single-sample forward pass on an identically
// seeded network, for both a dense and a conv twin, serial and parallel.
// Bit-identity across batch sizes holds on the bit-exact kernel tier
// (the avx2/FMA tier routes wide batches through 8x8 tiles and single
// samples through scalar code, which agree only to ULP), so the test
// pins that tier; see gemm_tier_test.go in internal/tensor for the FMA
// tier's own equivalence bounds.
func TestServeBitIdenticalToSingleSample(t *testing.T) {
	prevTier, err := tensor.SetGemmKernelTier(tensor.BitExactGemmTier())
	if err != nil {
		t.Fatal(err)
	}
	defer tensor.SetGemmKernelTier(prevTier)
	type twin struct {
		name  string
		shape []int
	}
	for _, par := range []int{1, 4} {
		for _, tw := range []twin{{"mlp", []int{256}}, {"resnet", []int{3, 16, 16}}} {
			t.Run(fmt.Sprintf("%s/par=%d", tw.name, par), func(t *testing.T) {
				prev := tensor.SetParallelism(par)
				defer tensor.SetParallelism(prev)

				refNet, _, err := models.ServeTwin(tw.name, tensor.NewRNG(99))
				if err != nil {
					t.Fatal(err)
				}
				srvNet, shape, err := models.ServeTwin(tw.name, tensor.NewRNG(99))
				if err != nil {
					t.Fatal(err)
				}

				const nReq = 48
				rng := tensor.NewRNG(7)
				samples := make([]*tensor.Tensor, nReq)
				want := make([][]float32, nReq)
				for i := range samples {
					samples[i] = tensor.RandNormal(rng, 0, 1, shape...)
					one := samples[i].Reshape(append([]int{1}, shape...)...)
					out := refNet.Infer(one)
					want[i] = append([]float32(nil), out.Data()...)
				}

				svc := New(NewSession(srvNet, shape...), Config{
					MaxBatch:   16,
					MaxWait:    2 * time.Millisecond,
					QueueDepth: nReq,
				})
				defer svc.Close()

				var wg sync.WaitGroup
				results := make([]Result, nReq)
				errs := make([]error, nReq)
				for i := 0; i < nReq; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						results[i], errs[i] = svc.Predict(samples[i])
					}(i)
				}
				wg.Wait()

				var batched bool
				for i := 0; i < nReq; i++ {
					if errs[i] != nil {
						t.Fatalf("request %d: %v", i, errs[i])
					}
					if len(results[i].Output) != len(want[i]) {
						t.Fatalf("request %d: output len %d, want %d", i, len(results[i].Output), len(want[i]))
					}
					for j := range want[i] {
						if results[i].Output[j] != want[i][j] {
							t.Fatalf("request %d elem %d: served %g, single-sample %g (must be bit-identical)",
								i, j, results[i].Output[j], want[i][j])
						}
					}
					if results[i].BatchSize > 1 {
						batched = true
					}
				}
				if !batched {
					t.Fatal("no request rode in a batch > 1; the batched path was not exercised")
				}
			})
		}
	}
}

// TestServeResultsMatchRequests pins per-request routing: with every
// sample tagged by a distinct constant, each response must carry its own
// request's payload regardless of how requests interleave into batches.
func TestServeResultsMatchRequests(t *testing.T) {
	const nReq = 128
	svc := New(NewSession(identityModel{}, 8), Config{
		MaxBatch: 8, MaxWait: time.Millisecond, QueueDepth: nReq,
	})
	defer svc.Close()
	var wg sync.WaitGroup
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := tensor.Full(float32(i), 8)
			res, err := svc.Predict(x)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			for _, v := range res.Output {
				if v != float32(i) {
					t.Errorf("request %d got payload %g from another request", i, v)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestServeAdmissionControl saturates a tiny queue behind a slow model
// and checks that excess load is shed with ErrOverloaded rather than
// queued without bound.
func TestServeAdmissionControl(t *testing.T) {
	svc := New(NewSession(&slowModel{delay: 5 * time.Millisecond}, 4), Config{
		MaxBatch: 1, QueueDepth: 1,
	})
	defer svc.Close()

	const nReq = 32
	var shed, ok atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := svc.Predict(tensor.New(4))
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("expected some requests to be shed under overload")
	}
	if ok.Load() == 0 {
		t.Fatal("expected some requests to be served under overload")
	}
	snap := svc.Stats()
	if snap.RejectedOverload != uint64(shed.Load()) {
		t.Fatalf("stats rejected=%d, want %d", snap.RejectedOverload, shed.Load())
	}
	if snap.Completed != uint64(ok.Load()) {
		t.Fatalf("stats completed=%d, want %d", snap.Completed, ok.Load())
	}
}

// TestServeGracefulDrain checks the shutdown contract: every admitted
// request completes, later requests get ErrShuttingDown, and the runner
// goroutine exits (no leak).
func TestServeGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	m := &slowModel{delay: 2 * time.Millisecond}
	svc := New(NewSession(m, 4), Config{MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 64})

	const nReq = 24
	var wg sync.WaitGroup
	errc := make(chan error, nReq)
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := svc.Predict(tensor.New(4))
			errc <- err
		}()
	}
	// Let some requests get admitted, then close concurrently with the
	// rest still arriving.
	time.Sleep(time.Millisecond)
	svc.Close()
	wg.Wait()
	close(errc)

	var served, refused int
	for err := range errc {
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrShuttingDown):
			refused++
		default:
			t.Fatalf("unexpected error during drain: %v", err)
		}
	}
	if served == 0 {
		t.Fatal("no admitted request was drained to completion")
	}
	if served+refused != nReq {
		t.Fatalf("served %d + refused %d != %d", served, refused, nReq)
	}

	// Post-close requests are refused outright.
	if _, err := svc.Predict(tensor.New(4)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Predict after Close = %v, want ErrShuttingDown", err)
	}
	// Close is idempotent.
	svc.Close()

	// The runner goroutine must be gone. Allow the scheduler a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after drain", before, g)
	}
}

// TestServeMaxWaitFlushesPartialBatch: a lone request must not wait for
// a full batch — the deadline flushes it.
func TestServeMaxWaitFlushesPartialBatch(t *testing.T) {
	svc := New(NewSession(identityModel{}, 2), Config{
		MaxBatch: 64, MaxWait: 5 * time.Millisecond, QueueDepth: 64,
	})
	defer svc.Close()

	start := time.Now()
	res, err := svc.Predict(tensor.Full(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 {
		t.Fatalf("lone request batch size = %d, want 1", res.BatchSize)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone request waited %v; deadline flush failed", waited)
	}
}

// TestServeShapeValidation rejects wrong-size samples before queueing.
func TestServeShapeValidation(t *testing.T) {
	svc := New(NewSession(identityModel{}, 4), Config{MaxBatch: 4})
	defer svc.Close()
	if _, err := svc.Predict(tensor.New(5)); err == nil {
		t.Fatal("wrong-size sample must be rejected")
	}
	if _, err := svc.Predict(nil); err == nil {
		t.Fatal("nil sample must be rejected")
	}
}

// TestServeForwardPanicFailsBatch: a panicking forward pass must fail
// the batch's requests with an error, not kill the service.
func TestServeForwardPanicFailsBatch(t *testing.T) {
	svc := New(NewSession(panicModel{}, 2), Config{MaxBatch: 4, QueueDepth: 8})
	defer svc.Close()
	if _, err := svc.Predict(tensor.New(2)); err == nil {
		t.Fatal("panicking forward must surface as an error")
	}
	// The service survives and keeps answering.
	if _, err := svc.Predict(tensor.New(2)); err == nil {
		t.Fatal("second request should also error, not hang")
	}
	if snap := svc.Stats(); snap.Failed == 0 {
		t.Fatal("failed requests not counted")
	}
}

// TestServeStatsAndTrace checks the observability wiring: counters add
// up, latency quantiles are populated, occupancy reflects batching, and
// batch trace events are exported.
func TestServeStatsAndTrace(t *testing.T) {
	svc := New(NewSession(identityModel{}, 4), Config{
		MaxBatch: 8, MaxWait: time.Millisecond, QueueDepth: 128, TraceEvents: 1024,
	})
	defer svc.Close()

	const nReq = 96
	var wg sync.WaitGroup
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Predict(tensor.New(4)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	snap := svc.Stats()
	if snap.Accepted != nReq || snap.Completed != nReq {
		t.Fatalf("accepted=%d completed=%d, want %d", snap.Accepted, snap.Completed, nReq)
	}
	if snap.Batches == 0 || snap.Batches > nReq {
		t.Fatalf("batches=%d out of range", snap.Batches)
	}
	if snap.MeanOccupancy < 1 {
		t.Fatalf("mean occupancy %g < 1", snap.MeanOccupancy)
	}
	if snap.LatencyP50Ms <= 0 || snap.LatencyP99Ms < snap.LatencyP50Ms {
		t.Fatalf("latency quantiles inconsistent: p50=%g p99=%g", snap.LatencyP50Ms, snap.LatencyP99Ms)
	}
	if h := svc.LatencyHistogram(); h.Count() != nReq {
		t.Fatalf("latency histogram count=%d, want %d", h.Count(), nReq)
	}

	tl := svc.Timeline()
	if len(tl.Events) == 0 {
		t.Fatal("no trace events captured")
	}
	if uint64(len(tl.Events)) != snap.Batches {
		t.Fatalf("trace events %d != batches %d", len(tl.Events), snap.Batches)
	}
	if tl.BusyTime() <= 0 {
		t.Fatal("trace events carry no durations")
	}
}

// TestServeCPUBudgetClamp: concurrent services must divide GOMAXPROCS
// between them instead of multiplying the worker pool, and the user's
// parallelism setting must come back when the last service closes.
func TestServeCPUBudgetClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	want := 8
	if want > procs {
		want = procs
	}
	prev := tensor.SetParallelism(want)
	defer tensor.SetParallelism(prev)
	base := tensor.Parallelism()

	var svcs []*Service
	for i := 1; i <= 4; i++ {
		svcs = append(svcs, New(NewSession(identityModel{}, 2), Config{MaxBatch: 2}))
		got := tensor.Parallelism()
		limit := procs / i
		if limit < 1 {
			limit = 1
		}
		if limit > base {
			limit = base
		}
		if got > limit {
			t.Fatalf("with %d services, parallelism=%d exceeds budget %d (GOMAXPROCS=%d)", i, got, limit, procs)
		}
	}
	if ActiveServices() != 4 {
		t.Fatalf("ActiveServices=%d, want 4", ActiveServices())
	}
	for _, s := range svcs {
		s.Close()
	}
	if got := tensor.Parallelism(); got != base {
		t.Fatalf("parallelism after last close = %d, want restored %d", got, base)
	}
	if ActiveServices() != 0 {
		t.Fatalf("ActiveServices=%d after closing all", ActiveServices())
	}
}

// TestServeLoadGen drives the closed-loop generator against a real
// service and checks its accounting.
func TestServeLoadGen(t *testing.T) {
	svc := New(NewSession(identityModel{}, 4), Config{
		MaxBatch: 8, MaxWait: 500 * time.Microsecond, QueueDepth: 64,
	})
	defer svc.Close()

	x := tensor.New(4)
	res := LoadGen{Concurrency: 4, Duration: 100 * time.Millisecond}.Run(func(w int) error {
		_, err := svc.Predict(x)
		return err
	})
	if res.Requests == 0 {
		t.Fatal("load generator issued no requests")
	}
	if res.ThroughputRPS <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.Latency.Count() != res.Requests {
		t.Fatalf("latency count %d != requests %d", res.Latency.Count(), res.Requests)
	}
	if res.P99Ms() < res.P50Ms() {
		t.Fatalf("p99 %g < p50 %g", res.P99Ms(), res.P50Ms())
	}
}
