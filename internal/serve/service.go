package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tbd/internal/kernels"
	"tbd/internal/metrics"
	"tbd/internal/prof"
	"tbd/internal/sim"
	"tbd/internal/tensor"
	"tbd/internal/trace"
)

// Config tunes one Service.
type Config struct {
	// MaxBatch caps how many requests one forward pass coalesces. 1
	// disables batching (every request is its own forward).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is flushed anyway. 0 means flush
	// immediately with whatever is already queued (no deadline timer).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue. Predict calls that arrive
	// with the queue full are shed with ErrOverloaded instead of piling
	// up unbounded latency. Defaults to 4*MaxBatch.
	QueueDepth int
	// TraceEvents, when positive, retains up to that many per-batch
	// trace events for Timeline export. 0 disables trace capture.
	TraceEvents int
}

// withDefaults validates and fills the config.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// Sentinel errors of the admission path.
var (
	// ErrOverloaded is returned when the admission queue is full; the
	// request was shed without queueing (backpressure to the caller).
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrShuttingDown is returned for requests arriving after Close
	// began; already-admitted requests still complete (graceful drain).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrDeadline is returned when a request's SLO budget cannot be met:
	// either the router judged every replica infeasible at admission, or
	// the deadline had already passed when the request was dequeued.
	// Distinct from ErrOverloaded so clients can tell "queue full, retry
	// now elsewhere" (429-class) from "deadline infeasible, back off"
	// (503-class).
	ErrDeadline = errors.New("serve: SLO deadline infeasible, request shed")
	// ErrNoWeightSharing is returned by Session.ShareWeightsFrom when the
	// model does not implement ShareParamsFrom; a fleet then keeps
	// per-replica weight copies instead of one shared snapshot.
	ErrNoWeightSharing = errors.New("serve: model does not support weight sharing")
)

// Result is one completed request.
type Result struct {
	// Output is the request's slice of the network output, copied out of
	// the layer-owned batch result (safe to retain).
	Output []float32
	// Latency is the full request residence time: queue wait + batch
	// formation wait + forward compute.
	Latency time.Duration
	// BatchSize is the occupancy of the batch this request rode in.
	BatchSize int
	// Replica is the index of the fleet replica that served the request
	// (always 0 for a standalone Service).
	Replica int
}

// request is one queued unit of work. The deadline and swap fields are
// fleet-only extensions: a standalone Service leaves them zero and its
// batcher ignores them.
type request struct {
	x        *tensor.Tensor
	enq      time.Time
	deadline time.Time  // zero means no SLO budget attached
	swap     *swapOrder // non-nil marks a control message, not work
	resp     chan response
}

type response struct {
	res Result
	err error
}

// Service is a dynamic-batching inference front end over one Session.
// Predict may be called from any number of goroutines; the Service owns
// a single runner goroutine that forms batches and runs the network.
type Service struct {
	cfg   Config
	sess  *Session
	queue chan *request
	stats *Stats

	closing   atomic.Bool
	producers sync.WaitGroup
	runnerWG  sync.WaitGroup
	closeOnce sync.Once

	start time.Time

	traceMu      sync.Mutex
	traceEvents  []sim.Event // guarded by traceMu
	traceDropped uint64      // guarded by traceMu
}

// New starts a service over the session. The caller must Close it to
// release the runner goroutine and the service's share of the CPU
// budget.
func New(sess *Session, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		sess:  sess,
		queue: make(chan *request, cfg.QueueDepth),
		stats: newStats(cfg.MaxBatch),
		start: time.Now(),
	}
	acquireCPUBudget()
	s.runnerWG.Add(1)
	go s.run()
	return s
}

// Config returns the service's effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Predict submits one sample and blocks until its result is ready or the
// request is refused. x must have exactly the session's sample element
// count (its shape may be [sampleShape...] or [1, sampleShape...]); the
// tensor is only read and only until Predict returns.
func (s *Service) Predict(x *tensor.Tensor) (Result, error) {
	if x == nil || x.Numel() != s.sess.sampleLen {
		got := 0
		if x != nil {
			got = x.Numel()
		}
		return Result{}, fmt.Errorf("serve: sample has %d elements, want %d (shape %v)",
			got, s.sess.sampleLen, s.sess.sampleShape)
	}
	// The producers group pairs with Close: Add before the closing
	// re-check means Close's Wait cannot pass while a Predict that saw
	// closing==false is still about to enqueue.
	s.producers.Add(1)
	if s.closing.Load() {
		s.producers.Done()
		s.stats.rejectShutdown()
		return Result{}, ErrShuttingDown
	}
	req := &request{x: x, enq: time.Now(), resp: make(chan response, 1)}
	select {
	case s.queue <- req:
		s.producers.Done()
	default:
		s.producers.Done()
		s.stats.rejectOverload()
		return Result{}, ErrOverloaded
	}
	s.stats.accept()
	r := <-req.resp
	return r.res, r.err
}

// Close stops admission, drains every already-admitted request through
// the batcher, and waits for the runner to exit. It is idempotent and
// safe to call concurrently with Predict: requests that lost the race
// get ErrShuttingDown, requests that won are completed.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		s.producers.Wait() // no Predict is still about to enqueue
		close(s.queue)
		s.runnerWG.Wait()
		releaseCPUBudget()
	})
}

// Stats returns a snapshot of the service's counters and latency
// distributions, stamped with the active GEMM kernel tier and the
// model's resident weight bytes.
func (s *Service) Stats() StatsSnapshot {
	snap := s.stats.snapshot(s.start)
	snap.GemmTier = tensor.GemmKernelTier()
	snap.WeightBytes = s.sess.WeightBytes()
	return snap
}

// LatencyHistogram returns a copy of the full request-latency histogram
// (bucket-level detail beyond the snapshot quantiles).
func (s *Service) LatencyHistogram() *metrics.Histogram {
	return s.stats.LatencyHistogram()
}

// Timeline exports the captured per-batch trace events as a timeline
// (empty when Config.TraceEvents is 0). Event timestamps are seconds
// since the service started.
func (s *Service) Timeline() *trace.Timeline {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return trace.New(append([]sim.Event(nil), s.traceEvents...))
}

// TraceEventsDropped reports how many batch events were discarded after
// the trace buffer filled.
func (s *Service) TraceEventsDropped() uint64 {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return s.traceDropped
}

// run is the batcher loop: take one request, optionally wait up to
// MaxWait for the batch to fill, flush, repeat. Exits when the queue is
// closed and drained.
func (s *Service) run() {
	defer s.runnerWG.Done()
	batch := make([]*request, 0, s.cfg.MaxBatch)
	var timer *time.Timer
	if s.cfg.MaxWait > 0 && s.cfg.MaxBatch > 1 {
		timer = time.NewTimer(s.cfg.MaxWait)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	for first := range s.queue {
		batch = append(batch[:0], first)
		if timer != nil {
			// Deadline runs from the arrival of the batch's first
			// request: it bounds that request's batching delay.
			timer.Reset(s.cfg.MaxWait)
			fired := false
		collect:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case r, ok := <-s.queue:
					if !ok {
						break collect // flush, then range exits
					}
					batch = append(batch, r)
				case <-timer.C:
					fired = true
					break collect
				}
			}
			if !fired && !timer.Stop() {
				<-timer.C
			}
		} else {
			// No deadline: batch whatever has already queued up.
		greedy:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case r, ok := <-s.queue:
					if !ok {
						break greedy
					}
					batch = append(batch, r)
				default:
					break greedy
				}
			}
		}
		s.flush(batch)
	}
}

// flush assembles the batch tensor, runs the forward pass, and fans the
// rows back out to the waiting requests in submission order. A panicking
// forward (e.g. an out-of-vocabulary token id reaching an embedding
// layer) fails the batch's requests instead of killing the service.
func (s *Service) flush(batch []*request) {
	n := len(batch)
	shape := append(make([]int, 0, len(s.sess.sampleShape)+1), n)
	shape = append(shape, s.sess.sampleShape...)
	// Every row is copied in below, so the buffer may come back dirty.
	x := tensor.AcquireDirty(shape...)
	L := s.sess.sampleLen
	for i, r := range batch {
		copy(x.Data()[i*L:(i+1)*L], r.x.Data())
	}

	sp := prof.Begin(prof.CatServe, "serve.batch")
	if sp.Active() {
		sp.SetBytes(4 * int64(x.Numel()))
	}
	t0 := time.Now()
	out, err := s.inferBatch(x)
	dur := time.Since(t0)
	sp.End()

	// Feed the profiler's memory watermark with the serving-side liveness
	// peak: resident weights (halved after a Session.FreezeHalfWeights)
	// plus the pool's pack workspace. No gradients, stash, or optimizer
	// state exist on the inference path.
	if prof.Enabled() {
		_, packBytes := tensor.PoolRetainedBytes()
		prof.SampleMemory(s.sess.WeightBytes(), 0, 0, packBytes, 0)
	}

	if err != nil {
		x.Release()
		for _, r := range batch {
			r.resp <- response{err: err}
		}
		s.stats.failBatch(n)
		return
	}

	rowLen := out.Numel() / n
	done := time.Now()
	latencies := make([]float64, n)
	for i, r := range batch {
		res := Result{
			Output:    append([]float32(nil), out.Data()[i*rowLen:(i+1)*rowLen]...),
			Latency:   done.Sub(r.enq),
			BatchSize: n,
		}
		latencies[i] = res.Latency.Seconds()
		r.resp <- response{res: res}
	}
	// Released only after the fan-out: a model may legally return its
	// input (identity-style layers), and the rows must be copied out
	// before the buffer can be recycled.
	x.Release()
	s.stats.recordBatch(n, dur.Seconds(), latencies)
	s.recordTrace(n, t0, dur)
}

// inferBatch runs the forward pass, converting panics into errors.
func (s *Service) inferBatch(x *tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("serve: forward pass failed: %v", p)
		}
	}()
	return s.sess.InferBatch(x), nil
}

// recordTrace appends one per-batch event, dropping once the configured
// buffer is full (a serving process is long-lived; the trace is a
// window, not a log).
func (s *Service) recordTrace(n int, t0 time.Time, dur time.Duration) {
	if s.cfg.TraceEvents <= 0 {
		return
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if len(s.traceEvents) >= s.cfg.TraceEvents {
		s.traceDropped++
		return
	}
	s.traceEvents = append(s.traceEvents, sim.Event{
		Name:     fmt.Sprintf("serve.batch[n=%d]", n),
		Class:    kernels.GEMM,
		StartSec: t0.Sub(s.start).Seconds(),
		DurSec:   dur.Seconds(),
	})
}
