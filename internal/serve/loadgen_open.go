package serve

import (
	"errors"
	"math"
	"sync"
	"time"

	"tbd/internal/metrics"
	"tbd/internal/tensor"
)

// Open-loop load generation. The closed-loop LoadGen coordinates with
// the system under test by construction: a worker that is stuck waiting
// on a slow request stops offering load, so the slow period is sampled
// exactly once no matter how long it lasts — the classic
// coordinated-omission bug, and the reason closed-loop p99s look rosy
// under overload. OpenLoadGen fixes both halves:
//
//   - Arrivals follow a scripted schedule (optionally Poisson) that does
//     not care how the service is doing. When the service falls behind,
//     arrivals queue up in the generator instead of silently not
//     happening.
//   - Latency is measured from each request's *intended* arrival time on
//     the schedule, not from when a worker finally got around to sending
//     it. A request that waited 80ms in the generator's backlog and 5ms
//     in the service reports 85ms, which is what a real client that
//     showed up on schedule would have seen.
//
// The schedule itself is deterministic given the seed: inter-arrival
// gaps are drawn from the generator's own RNG, so two runs with the same
// phases and seed offer exactly the same request sequence.

// Phase is one segment of a scripted open-loop schedule: offer Rate
// requests/second for Duration. Chaining phases scripts load shapes like
// warm-up -> overload spike -> recovery.
type Phase struct {
	Rate     float64
	Duration time.Duration
}

// OpenLoadGen drives a scripted open-loop schedule against a call
// function.
type OpenLoadGen struct {
	// Phases is the schedule, executed in order.
	Phases []Phase
	// Workers bounds concurrent in-flight calls. Defaults to 32. When all
	// workers are busy, arrivals wait in the generator's backlog and their
	// backlog wait counts toward latency (the CO fix).
	Workers int
	// Poisson draws exponential inter-arrival gaps (a memoryless arrival
	// process); false paces arrivals uniformly at 1/Rate.
	Poisson bool
	// Seed seeds the schedule RNG. Defaults to 1.
	Seed uint64
	// Backlog caps the generator-side queue of pending arrivals (default
	// 65536). Arrivals beyond it are counted as Dropped rather than
	// blocking the schedule.
	Backlog int
}

// PhaseResult summarizes one phase of an open-loop run.
type PhaseResult struct {
	Rate     float64
	Duration time.Duration
	// Offered counts scheduled arrivals; Offered = OK + Shed + Errors +
	// Dropped.
	Offered uint64
	// OK counts completed requests; Shed counts admission-control
	// rejections (ErrOverloaded, ErrDeadline); Errors counts everything
	// else; Dropped counts arrivals the generator's backlog refused.
	OK      uint64
	Shed    uint64
	Errors  uint64
	Dropped uint64
	// Latency is the phase's schedule-relative latency histogram
	// (seconds): completion time minus intended arrival time, observed
	// only for OK requests.
	Latency *metrics.Histogram
}

// P50Ms, P99Ms report phase latency quantiles in milliseconds.
func (p PhaseResult) P50Ms() float64 { return 1e3 * p.Latency.Quantile(0.50) }
func (p PhaseResult) P99Ms() float64 { return 1e3 * p.Latency.Quantile(0.99) }

// OpenResult summarizes an open-loop run.
type OpenResult struct {
	Phases  []PhaseResult
	Offered uint64
	OK      uint64
	Shed    uint64
	Errors  uint64
	Dropped uint64
	Elapsed time.Duration
	// Latency merges every phase's schedule-relative histogram.
	Latency *metrics.Histogram
}

// P50Ms, P99Ms report run-wide latency quantiles in milliseconds.
func (r OpenResult) P50Ms() float64 { return 1e3 * r.Latency.Quantile(0.50) }
func (r OpenResult) P99Ms() float64 { return 1e3 * r.Latency.Quantile(0.99) }

// openArrival is one scheduled request: which phase it belongs to and
// when the schedule said it should happen.
type openArrival struct {
	phase    int
	intended time.Time
}

// openAccum collects per-phase outcomes from the worker pool.
type openAccum struct {
	mu     sync.Mutex
	phases []PhaseResult // guarded by mu
}

func (a *openAccum) record(ph int, err error, latSec float64) {
	a.mu.Lock()
	p := &a.phases[ph]
	switch {
	case err == nil:
		p.OK++
		p.Latency.Observe(latSec)
	case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadline):
		p.Shed++
	default:
		p.Errors++
	}
	a.mu.Unlock()
}

func (a *openAccum) drop(ph int) {
	a.mu.Lock()
	a.phases[ph].Dropped++
	a.mu.Unlock()
}

// Run executes the schedule against call and blocks until every
// dispatched request completes. call's error classifies the outcome (see
// PhaseResult); Predict/PredictSLO errors map directly, HTTP callers
// should translate 429 to ErrOverloaded and 503 to ErrDeadline first.
func (g OpenLoadGen) Run(call func() error) OpenResult {
	workers := g.Workers
	if workers <= 0 {
		workers = 32
	}
	backlog := g.Backlog
	if backlog <= 0 {
		backlog = 1 << 16
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	acc := &openAccum{phases: make([]PhaseResult, len(g.Phases))}
	for i, ph := range g.Phases {
		acc.phases[i] = PhaseResult{
			Rate:     ph.Rate,
			Duration: ph.Duration,
			Latency:  metrics.NewLatencyHistogram(),
		}
	}

	ch := make(chan openArrival, backlog)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range ch {
				err := call()
				acc.record(a.phase, err, time.Since(a.intended).Seconds())
			}
		}()
	}

	// Dispatcher: walk the schedule in virtual time (offsets from t0
	// drawn from the RNG alone, so the offered sequence is deterministic),
	// sleeping until each arrival's wall-clock slot.
	rng := tensor.NewRNG(seed)
	t0 := time.Now()
	offset := time.Duration(0) // virtual time since t0
	for pi, ph := range g.Phases {
		end := offset + ph.Duration
		if ph.Rate <= 0 || ph.Duration <= 0 {
			offset = end
			continue
		}
		for {
			var gap time.Duration
			if g.Poisson {
				// Exponential inter-arrival; 1-u keeps the log argument
				// in (0, 1].
				gap = time.Duration(-math.Log(1-rng.Float64()) / ph.Rate * float64(time.Second))
			} else {
				gap = time.Duration(float64(time.Second) / ph.Rate)
			}
			offset += gap
			if offset >= end {
				offset = end
				break
			}
			intended := t0.Add(offset)
			if d := time.Until(intended); d > 0 {
				time.Sleep(d)
			}
			arr := openArrival{phase: pi, intended: intended}
			acc.mu.Lock()
			acc.phases[pi].Offered++
			acc.mu.Unlock()
			select {
			case ch <- arr:
			default:
				acc.drop(pi)
			}
		}
	}
	close(ch)
	wg.Wait()
	elapsed := time.Since(t0)

	out := OpenResult{
		Phases:  acc.phases,
		Elapsed: elapsed,
		Latency: metrics.NewLatencyHistogram(),
	}
	for i := range out.Phases {
		p := &out.Phases[i]
		out.Offered += p.Offered
		out.OK += p.OK
		out.Shed += p.Shed
		out.Errors += p.Errors
		out.Dropped += p.Dropped
		out.Latency.Merge(p.Latency)
	}
	return out
}
