package serve

import (
	"sync"
	"time"

	"tbd/internal/metrics"
)

// Stats aggregates the service's observability state: request counters
// plus fixed-bucket histograms (metrics.Histogram) of request latency and
// batch occupancy. All methods are safe for concurrent use; the
// histograms themselves are unsynchronized and guarded by the mutex here.
type Stats struct {
	mu sync.Mutex

	// Request counters. Guarded by mu.
	accepted         uint64 // guarded by mu
	rejectedOverload uint64 // guarded by mu
	rejectedShutdown uint64 // guarded by mu
	rejectedDeadline uint64 // admission- or dequeue-time SLO sheds; guarded by mu
	completed        uint64 // guarded by mu
	failed           uint64 // guarded by mu
	batches          uint64 // guarded by mu

	latency   *metrics.Histogram // request residence time, seconds; guarded by mu
	batchTime *metrics.Histogram // per-batch forward time, seconds; guarded by mu
	occupancy *metrics.Histogram // requests per flushed batch; guarded by mu
}

func newStats(maxBatch int) *Stats {
	buckets := maxBatch
	if buckets > 64 {
		buckets = 64
	}
	return &Stats{
		latency:   metrics.NewLatencyHistogram(),
		batchTime: metrics.NewLatencyHistogram(),
		occupancy: metrics.NewLinearHistogram(0, float64(maxBatch), buckets),
	}
}

func (st *Stats) accept() {
	st.mu.Lock()
	st.accepted++
	st.mu.Unlock()
}

func (st *Stats) rejectOverload() {
	st.mu.Lock()
	st.rejectedOverload++
	st.mu.Unlock()
}

func (st *Stats) rejectShutdown() {
	st.mu.Lock()
	st.rejectedShutdown++
	st.mu.Unlock()
}

func (st *Stats) rejectDeadline() {
	st.mu.Lock()
	st.rejectedDeadline++
	st.mu.Unlock()
}

func (st *Stats) recordBatch(n int, forwardSec float64, latenciesSec []float64) {
	st.mu.Lock()
	st.completed += uint64(n)
	st.batches++
	st.occupancy.Observe(float64(n))
	st.batchTime.Observe(forwardSec)
	for _, l := range latenciesSec {
		st.latency.Observe(l)
	}
	st.mu.Unlock()
}

func (st *Stats) failBatch(n int) {
	st.mu.Lock()
	st.failed += uint64(n)
	st.batches++
	st.mu.Unlock()
}

// StatsSnapshot is a point-in-time copy of the service counters and
// distribution summaries, JSON-ready for the /stats endpoint.
type StatsSnapshot struct {
	Accepted         uint64 `json:"accepted"`
	RejectedOverload uint64 `json:"rejected_overload"`
	RejectedShutdown uint64 `json:"rejected_shutdown"`
	RejectedDeadline uint64 `json:"rejected_deadline,omitempty"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`
	Batches          uint64 `json:"batches"`

	// Latency quantiles in milliseconds (request residence time).
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	// BatchP50Ms is the median per-batch forward time in milliseconds.
	BatchP50Ms float64 `json:"batch_p50_ms"`

	// MeanOccupancy is the average number of requests per flushed batch.
	MeanOccupancy float64 `json:"mean_occupancy"`

	// UptimeSec is seconds since the service started; ThroughputRPS is
	// completed requests over uptime.
	UptimeSec     float64 `json:"uptime_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// GemmTier is the active GEMM micro-kernel tier (ref, sse, avx2),
	// filled in by Service.Stats.
	GemmTier string `json:"gemm_tier,omitempty"`
	// WeightBytes is the model's resident weight footprint (0 when the
	// model does not expose one), filled in by Service.Stats.
	WeightBytes int64 `json:"weight_bytes,omitempty"`
}

func (st *Stats) snapshot(start time.Time) StatsSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	up := time.Since(start).Seconds()
	snap := StatsSnapshot{
		Accepted:         st.accepted,
		RejectedOverload: st.rejectedOverload,
		RejectedShutdown: st.rejectedShutdown,
		RejectedDeadline: st.rejectedDeadline,
		Completed:        st.completed,
		Failed:           st.failed,
		Batches:          st.batches,
		LatencyP50Ms:     1e3 * st.latency.Quantile(0.50),
		LatencyP95Ms:     1e3 * st.latency.Quantile(0.95),
		LatencyP99Ms:     1e3 * st.latency.Quantile(0.99),
		LatencyMeanMs:    1e3 * st.latency.Mean(),
		LatencyMaxMs:     1e3 * st.latency.Max(),
		BatchP50Ms:       1e3 * st.batchTime.Quantile(0.50),
		MeanOccupancy:    st.occupancy.Mean(),
		UptimeSec:        up,
	}
	if up > 0 {
		snap.ThroughputRPS = float64(st.completed) / up
	}
	return snap
}

// aggregateStats merges several replicas' Stats into one detached Stats
// whose snapshot spans the whole fleet: counters sum, histograms merge
// bucket-wise (all replicas share one bucket layout, so fleet quantiles
// are exact, not averages of quantiles).
func aggregateStats(parts []*Stats) *Stats {
	if len(parts) == 0 {
		return newStats(1)
	}
	var agg *Stats
	for _, p := range parts {
		p.mu.Lock()
		if agg == nil {
			agg = &Stats{
				accepted:         p.accepted,
				rejectedOverload: p.rejectedOverload,
				rejectedShutdown: p.rejectedShutdown,
				rejectedDeadline: p.rejectedDeadline,
				completed:        p.completed,
				failed:           p.failed,
				batches:          p.batches,
				latency:          p.latency.Clone(),
				batchTime:        p.batchTime.Clone(),
				occupancy:        p.occupancy.Clone(),
			}
		} else {
			agg.accepted += p.accepted
			agg.rejectedOverload += p.rejectedOverload
			agg.rejectedShutdown += p.rejectedShutdown
			agg.rejectedDeadline += p.rejectedDeadline
			agg.completed += p.completed
			agg.failed += p.failed
			agg.batches += p.batches
			agg.latency.Merge(p.latency)
			agg.batchTime.Merge(p.batchTime)
			agg.occupancy.Merge(p.occupancy)
		}
		p.mu.Unlock()
	}
	return agg
}

// LatencyHistogram returns a copy of the request-latency histogram for
// callers that want full bucket detail (merging across services, trace
// annotation).
func (st *Stats) LatencyHistogram() *metrics.Histogram {
	st.mu.Lock()
	defer st.mu.Unlock()
	h := metrics.NewLatencyHistogram()
	h.Merge(st.latency)
	return h
}
