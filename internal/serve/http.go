package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"tbd/internal/prof"
	"tbd/internal/tensor"
)

// PredictRequest is the JSON body of POST /predict: one flat sample in
// row-major order (the daemon publishes the expected shape on /healthz).
type PredictRequest struct {
	Input []float32 `json:"input"`
	// SLOMs is this request's latency budget in milliseconds (fleet
	// endpoints only; 0 inherits the fleet default). A request whose
	// budget cannot be met is shed with 503.
	SLOMs float64 `json:"slo_ms,omitempty"`
}

// PredictResponse is the JSON reply to POST /predict.
type PredictResponse struct {
	Output    []float32 `json:"output"`
	LatencyMs float64   `json:"latency_ms"`
	BatchSize int       `json:"batch_size"`
	// Replica is the fleet replica that served the request (always 0 for
	// a single-Service handler).
	Replica int `json:"replica"`
}

// NewHandler exposes a Service over HTTP/JSON:
//
//	POST /predict     {"input": [...]}  -> {"output": [...], "latency_ms": m, "batch_size": b}
//	GET  /stats       -> StatsSnapshot JSON
//	GET  /healthz     -> {"status": "ok", "sample_shape": [...]}
//	GET  /debug/prof  -> live profiler snapshot (per-kernel stats + memory watermark)
//
// Admission-control outcomes map onto status codes: a shed request is
// 429 Too Many Requests, a request during drain is 503 Service
// Unavailable, and a malformed body or wrong-size sample is 400.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.Input) != s.sess.SampleLen() {
			http.Error(w, "wrong sample size", http.StatusBadRequest)
			return
		}
		x := tensor.FromSlice(req.Input, s.sess.SampleShape()...)
		res, err := s.Predict(x)
		switch {
		case errors.Is(err, ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case errors.Is(err, ErrShuttingDown):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, PredictResponse{
			Output:    res.Output,
			LatencyMs: 1e3 * res.Latency.Seconds(),
			BatchSize: res.BatchSize,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/debug/prof", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, prof.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Status      string `json:"status"`
			SampleShape []int  `json:"sample_shape"`
		}{"ok", s.sess.SampleShape()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
