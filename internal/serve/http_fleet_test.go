package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tbd/internal/graph"
	"tbd/internal/models"
	"tbd/internal/tensor"
)

func postFleetPredict(t *testing.T, srv *httptest.Server, req PredictRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPFleetHandler(t *testing.T) {
	factory := func() (*Session, error) { return NewSession(identityModel{}, 4), nil }
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(NewFleetHandler(f, FleetHandlerOptions{}))
	defer srv.Close()

	resp := postFleetPredict(t, srv, PredictRequest{Input: []float32{1, 2, 3, 4}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Output) != 4 || pr.Output[2] != 3 {
		t.Fatalf("predict output = %v", pr.Output)
	}
	if pr.Replica < 0 || pr.Replica > 1 {
		t.Fatalf("replica = %d out of range", pr.Replica)
	}

	// Per-request SLO rides the body; a generous budget still succeeds.
	resp = postFleetPredict(t, srv, PredictRequest{Input: []float32{1, 2, 3, 4}, SLOMs: 5000})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with slo_ms status = %d", resp.StatusCode)
	}
	// Negative budgets are malformed.
	resp = postFleetPredict(t, srv, PredictRequest{Input: []float32{1, 2, 3, 4}, SLOMs: -1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative slo_ms status = %d, want 400", resp.StatusCode)
	}

	// /stats decodes into the fleet snapshot with per-replica detail.
	stResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap FleetSnapshot
	if err := json.NewDecoder(stResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if snap.Replicas != 2 || len(snap.PerReplica) != 2 || snap.Completed == 0 {
		t.Fatalf("fleet stats = %+v", snap)
	}

	// /healthz carries the replica count.
	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Replicas int    `json:"replicas"`
	}
	if err := json.NewDecoder(hResp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if health.Status != "ok" || health.Replicas != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// /swap without a handler is unregistered.
	swResp, err := http.Post(srv.URL+"/swap", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	swResp.Body.Close()
	if swResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unwired /swap status = %d, want 404", swResp.StatusCode)
	}
}

// TestHTTPFleetSwapEndpoint drives the full wire-level hot-swap: POST a
// serialized checkpoint, watch outputs flip, bad bodies bounce with the
// old weights intact.
func TestHTTPFleetSwapEndpoint(t *testing.T) {
	ckpt, trained, shape := trainedCheckpoint(t, 31)
	factory, _ := twinFleetFactory(t, "mlp", 99)
	f, err := NewFleet(factory, FleetConfig{
		Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	srv := httptest.NewServer(NewFleetHandler(f, FleetHandlerOptions{
		Swap: func(body io.Reader) error {
			return f.Swap(func(primary *Session) error {
				_, err := graph.LoadCheckpoint(body, primary.Model().(*graph.Network))
				return err
			})
		},
	}))
	defer srv.Close()

	// A garbage body aborts the swap; serving continues.
	resp, err := http.Post(srv.URL+"/swap", "application/octet-stream", bytes.NewReader([]byte("not a checkpoint")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage swap status = %d, want 400", resp.StatusCode)
	}

	// The real checkpoint swaps cleanly.
	resp, err = http.Post(srv.URL+"/swap", "application/octet-stream", bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	var sw SwapResponse
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sw.Status != "ok" || sw.Swaps != 1 {
		t.Fatalf("swap response = %d %+v", resp.StatusCode, sw)
	}

	// Post-swap predictions reflect the trained weights (tolerance-free
	// comparisons live in fleet_swap_test.go; here we just check the flip
	// happened over the wire).
	x := tensor.RandNormal(tensor.NewRNG(41), 0, 1, shape...)
	want := trained.Infer(x.Reshape(append([]int{1}, shape...)...)).Data()
	presp := postFleetPredict(t, srv, PredictRequest{Input: append([]float32(nil), x.Data()...)})
	var pr PredictResponse
	if err := json.NewDecoder(presp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	diff := 0.0
	for i := range want {
		d := float64(pr.Output[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > diff {
			diff = d
		}
	}
	if diff > 1e-4 {
		t.Fatalf("post-swap HTTP output diverges from checkpoint by %g", diff)
	}
}

// fleetModelsSmoke keeps the fleet path exercised against every serve
// twin, not just the mlp (shape plumbing, embedding inputs).
func TestFleetAllTwins(t *testing.T) {
	for _, name := range models.ServeTwinNames() {
		t.Run(name, func(t *testing.T) {
			factory, shape := twinFleetFactory(t, name, 3)
			f, err := NewFleet(factory, FleetConfig{
				Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			x := tensor.New(shape...)
			res, err := f.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) == 0 {
				t.Fatal("empty output")
			}
		})
	}
}
