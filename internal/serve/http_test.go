package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tbd/internal/prof"
)

func postPredict(t *testing.T, srv *httptest.Server, input []float32) *http.Response {
	t.Helper()
	body, _ := json.Marshal(PredictRequest{Input: input})
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPHandler(t *testing.T) {
	svc := New(NewSession(identityModel{}, 4), Config{
		MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 32,
	})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Happy path echoes the input.
	resp := postPredict(t, srv, []float32{1, 2, 3, 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Output) != 4 || pr.Output[2] != 3 {
		t.Fatalf("predict output = %v", pr.Output)
	}
	if pr.BatchSize < 1 || pr.LatencyMs < 0 {
		t.Fatalf("predict metadata = %+v", pr)
	}

	// Wrong sample size is a 400.
	resp = postPredict(t, srv, []float32{1, 2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input status = %d, want 400", resp.StatusCode)
	}

	// GET on /predict is a 405.
	getResp, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status = %d, want 405", getResp.StatusCode)
	}

	// /stats decodes into the snapshot type.
	stResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(stResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if snap.Completed == 0 {
		t.Fatalf("stats completed = 0 after a served request: %+v", snap)
	}

	// /healthz reports the sample shape.
	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status      string `json:"status"`
		SampleShape []int  `json:"sample_shape"`
	}
	if err := json.NewDecoder(hResp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if health.Status != "ok" || len(health.SampleShape) != 1 || health.SampleShape[0] != 4 {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestHTTPDebugProf exercises the live-profiler endpoint: with capture on,
// a served batch must surface as a serve-category row in the snapshot.
func TestHTTPDebugProf(t *testing.T) {
	svc := New(NewSession(identityModel{}, 4), Config{MaxBatch: 4})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	prof.Enable()
	defer prof.Disable()
	resp := postPredict(t, srv, []float32{1, 2, 3, 4})
	resp.Body.Close()

	pResp, err := http.Get(srv.URL + "/debug/prof")
	if err != nil {
		t.Fatal(err)
	}
	var snap prof.Snapshot
	if err := json.NewDecoder(pResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	pResp.Body.Close()
	if !snap.Enabled {
		t.Fatalf("snapshot reports disabled: %+v", snap)
	}
	found := false
	for _, k := range snap.Kernels {
		if k.Name == "serve.batch" && k.Cat == "serve" && k.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no serve.batch row in /debug/prof: %+v", snap.Kernels)
	}
}

func TestHTTPHandlerShutdown(t *testing.T) {
	svc := New(NewSession(identityModel{}, 4), Config{MaxBatch: 4})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	svc.Close()
	resp := postPredict(t, srv, []float32{1, 2, 3, 4})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict during shutdown status = %d, want 503", resp.StatusCode)
	}
}
