// Package memprof is the memory profiler — the paper's headline tooling
// contribution. It attributes GPU memory to the five categories of
// Figure 9: weights, weight gradients, feature maps (activations stashed
// for the backward pass), workspace (convolution scratch), and dynamic
// (allocations made during training iterations, chiefly optimizer state in
// MXNet). It profiles both paper-scale op graphs (analytic) and live
// numeric networks.
package memprof

import (
	"fmt"
	"strings"

	"tbd/internal/graph"
	"tbd/internal/kernels"
	"tbd/internal/prof"
)

// Breakdown is the per-category memory footprint in bytes.
type Breakdown struct {
	Weights         int64
	WeightGradients int64
	FeatureMaps     int64
	Workspace       int64
	Dynamic         int64
}

// Total returns the summed footprint.
func (b Breakdown) Total() int64 {
	return b.Weights + b.WeightGradients + b.FeatureMaps + b.Workspace + b.Dynamic
}

// FeatureMapShare returns the fraction of the footprint consumed by
// feature maps — the quantity behind Observation 11 (62-89% across the
// suite).
func (b Breakdown) FeatureMapShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.FeatureMaps) / float64(t)
}

// String renders the breakdown in GB, Figure 9 style.
func (b Breakdown) String() string {
	gb := func(v int64) float64 { return float64(v) / (1 << 30) }
	var sb strings.Builder
	fmt.Fprintf(&sb, "feature maps %.2f GB, weights %.2f GB, gradients %.2f GB, dynamic %.2f GB, workspace %.2f GB (total %.2f GB)",
		gb(b.FeatureMaps), gb(b.Weights), gb(b.WeightGradients), gb(b.Dynamic), gb(b.Workspace), gb(b.Total()))
	return sb.String()
}

// Policy captures the framework-specific allocation behaviour the paper's
// per-framework profilers had to reverse-engineer (§3.4.3).
type Policy struct {
	// WorkspaceFactor scales the convolution workspace arena (frameworks
	// trade workspace for faster algorithms).
	WorkspaceFactor float64
	// OptimizerStateFloatsPerWeight is the per-weight optimizer state
	// (1 for momentum, 2 for Adam).
	OptimizerStateFloatsPerWeight float64
	// DynamicOptimizerState marks frameworks (MXNet) that allocate
	// optimizer state lazily during training iterations; such state is
	// reported in the "dynamic" category rather than alongside weights.
	DynamicOptimizerState bool
	// AllocatorSlack is a multiplicative overhead for allocator
	// fragmentation and alignment (>= 1).
	AllocatorSlack float64
}

// DefaultPolicy is a neutral framework policy.
func DefaultPolicy() Policy {
	return Policy{WorkspaceFactor: 1, OptimizerStateFloatsPerWeight: 1, AllocatorSlack: 1}
}

// ProfileOps computes the Figure-9 breakdown for a paper-scale op graph at
// the given batch size.
func ProfileOps(ops []*kernels.Op, batch int, p Policy) Breakdown {
	if p.AllocatorSlack == 0 {
		p.AllocatorSlack = 1
	}
	var b Breakdown
	var maxWorkspace int64
	for _, o := range ops {
		params := o.ParamElems() * 4
		b.Weights += params
		b.WeightGradients += params
		b.FeatureMaps += o.StashElemsPerSample() * int64(batch) * 4
		if w := o.WorkspaceBytes(batch); w > maxWorkspace {
			maxWorkspace = w
		}
	}
	b.Workspace = int64(float64(maxWorkspace) * p.WorkspaceFactor)
	state := int64(float64(b.Weights) * p.OptimizerStateFloatsPerWeight)
	if p.DynamicOptimizerState {
		b.Dynamic = state
	} else {
		b.Weights += state
	}
	b.Weights = int64(float64(b.Weights) * p.AllocatorSlack)
	b.FeatureMaps = int64(float64(b.FeatureMaps) * p.AllocatorSlack)
	return b
}

// FitsDevice reports whether the breakdown fits in capacity bytes, the
// check behind every "maximum mini-batch size" limit in the paper
// (e.g. Sockeye capping at 64 where NMT reaches 128 on 8 GB).
func FitsDevice(b Breakdown, capacity int64) bool {
	return b.Total() <= capacity
}

// MaxBatch returns the largest batch size in candidates whose footprint
// fits in capacity, or 0 if none fit.
func MaxBatch(ops []*kernels.Op, candidates []int, p Policy, capacity int64) int {
	best := 0
	for _, n := range candidates {
		if FitsDevice(ProfileOps(ops, n, p), capacity) && n > best {
			best = n
		}
	}
	return best
}

// ProfileLive converts the runtime profiler's memory watermark (sampled
// once per training step by the graph drivers while prof is enabled) into
// the Figure-9 breakdown. Each category holds its own observed maximum, so
// the result is the per-category peak over the profiled window.
func ProfileLive(w prof.MemWatermark) Breakdown {
	return Breakdown{
		Weights:         w.Weights,
		WeightGradients: w.WeightGradients,
		FeatureMaps:     w.FeatureMaps,
		Workspace:       w.Workspace,
		Dynamic:         w.Dynamic,
	}
}

// ProfileNetwork measures a live numeric network after a training-mode
// forward pass: real allocation sizes, not analytic estimates.
func ProfileNetwork(n *graph.Network, optimizerStateBytes int64, dynamicState bool) Breakdown {
	b := Breakdown{
		Weights:         n.WeightBytes(),
		WeightGradients: n.GradientBytes(),
		FeatureMaps:     n.StashBytes(),
	}
	if dynamicState {
		b.Dynamic = optimizerStateBytes
	} else {
		b.Weights += optimizerStateBytes
	}
	return b
}
