package memprof

import (
	"strings"
	"testing"

	"tbd/internal/graph"
	"tbd/internal/kernels"
	"tbd/internal/layers"
	"tbd/internal/tensor"
)

func cnnOps() []*kernels.Op {
	var ops []*kernels.Op
	c, h := 64, 56
	for i := 0; i < 16; i++ {
		ops = append(ops,
			&kernels.Op{Name: "conv", Kind: kernels.OpConv2D, InC: c, OutC: c, H: h, W: h, K: 3, Stride: 1, Pad: 1},
			&kernels.Op{Name: "bn", Kind: kernels.OpBatchNorm, Channels: c, H: h, W: h},
			&kernels.Op{Name: "relu", Kind: kernels.OpActivation, Channels: c, H: h, W: h},
		)
	}
	ops = append(ops, &kernels.Op{Name: "fc", Kind: kernels.OpDense, In: 2048, Out: 1000, Rows: 1})
	return ops
}

func TestFeatureMapsDominate(t *testing.T) {
	// Observation 11: feature maps consume 62-89% of the footprint.
	b := ProfileOps(cnnOps(), 32, DefaultPolicy())
	share := b.FeatureMapShare()
	if share < 0.6 || share > 0.95 {
		t.Fatalf("feature-map share %.2f, want in [0.6, 0.95]: %s", share, b)
	}
}

func TestFeatureMapsScaleLinearlyWithBatch(t *testing.T) {
	// Observation 12's basis: feature-map memory is linear in batch size
	// while weights are constant.
	b8 := ProfileOps(cnnOps(), 8, DefaultPolicy())
	b32 := ProfileOps(cnnOps(), 32, DefaultPolicy())
	if b32.Weights != b8.Weights || b32.WeightGradients != b8.WeightGradients {
		t.Fatal("weights must not scale with batch")
	}
	ratio := float64(b32.FeatureMaps) / float64(b8.FeatureMaps)
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("feature maps scaled %.3fx for 4x batch", ratio)
	}
}

func TestDynamicCategoryPolicy(t *testing.T) {
	// MXNet-style lazy optimizer state lands in "dynamic"; TF-style
	// static allocation folds it into weights.
	mx := DefaultPolicy()
	mx.DynamicOptimizerState = true
	tf := DefaultPolicy()
	bm := ProfileOps(cnnOps(), 16, mx)
	bt := ProfileOps(cnnOps(), 16, tf)
	if bm.Dynamic == 0 {
		t.Fatal("MXNet policy must report dynamic memory")
	}
	if bt.Dynamic != 0 {
		t.Fatal("TF policy must not report dynamic memory")
	}
	if bm.Total() != bt.Total() {
		t.Fatalf("categorization must not change the total: %d vs %d", bm.Total(), bt.Total())
	}
}

func TestWorkspaceIsMaxNotSum(t *testing.T) {
	ops := cnnOps()
	b := ProfileOps(ops, 8, DefaultPolicy())
	var maxW, sumW int64
	for _, o := range ops {
		w := o.WorkspaceBytes(8)
		sumW += w
		if w > maxW {
			maxW = w
		}
	}
	if b.Workspace != maxW {
		t.Fatalf("workspace %d, want max %d (arena is reused)", b.Workspace, maxW)
	}
	if b.Workspace >= sumW {
		t.Fatal("workspace must be far below the sum of per-op scratch")
	}
}

func TestMaxBatchRespectsCapacity(t *testing.T) {
	ops := cnnOps()
	cands := []int{4, 8, 16, 32, 64, 128}
	small := MaxBatch(ops, cands, DefaultPolicy(), 1<<30)  // 1 GB
	large := MaxBatch(ops, cands, DefaultPolicy(), 16<<30) // 16 GB
	if small >= large {
		t.Fatalf("max batch must grow with capacity: %d vs %d", small, large)
	}
	if large != 128 {
		t.Fatalf("16 GB should fit batch 128 for this toy CNN, got %d", large)
	}
	// A capacity below the static footprint fits nothing.
	if got := MaxBatch(ops, cands, DefaultPolicy(), 1<<20); got != 0 {
		t.Fatalf("1 MB should fit nothing, got %d", got)
	}
}

func TestFitsDevice(t *testing.T) {
	b := Breakdown{FeatureMaps: 4 << 30, Weights: 1 << 30}
	if FitsDevice(b, 4<<30) {
		t.Fatal("5 GB must not fit in 4 GB")
	}
	if !FitsDevice(b, 8<<30) {
		t.Fatal("5 GB must fit in 8 GB")
	}
}

func TestAllocatorSlackIncreasesFootprint(t *testing.T) {
	p := DefaultPolicy()
	base := ProfileOps(cnnOps(), 16, p)
	p.AllocatorSlack = 1.2
	slack := ProfileOps(cnnOps(), 16, p)
	if slack.Total() <= base.Total() {
		t.Fatal("allocator slack must increase the footprint")
	}
}

func TestProfileNetworkLive(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := graph.New("tiny", layers.NewSequential("tiny",
		layers.NewConv2D("conv", 1, 4, 3, 1, 1, rng),
		layers.NewReLU("relu"),
		layers.NewFlatten("flat"),
		layers.NewDense("fc", 4*8*8, 10, rng),
	))
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 8, 8)
	net.Forward(x, true)
	b := ProfileNetwork(net, 0, false)
	if b.Weights == 0 || b.FeatureMaps == 0 {
		t.Fatalf("live profile empty: %s", b)
	}
	if b.Weights != b.WeightGradients {
		t.Fatal("gradients must mirror weights")
	}
	// Optimizer state categorization.
	bd := ProfileNetwork(net, 1000, true)
	if bd.Dynamic != 1000 {
		t.Fatal("dynamic state not reported")
	}
	bs := ProfileNetwork(net, 1000, false)
	if bs.Weights != b.Weights+1000 {
		t.Fatal("static state must fold into weights")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{FeatureMaps: 1 << 30}
	if !strings.Contains(b.String(), "feature maps 1.00 GB") {
		t.Fatalf("String() = %q", b.String())
	}
}
