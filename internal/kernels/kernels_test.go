package kernels

import (
	"strings"
	"testing"

	"tbd/internal/device"
)

func convOp() *Op {
	return &Op{Name: "conv1", Kind: OpConv2D, InC: 64, OutC: 64, H: 56, W: 56, K: 3, Stride: 1, Pad: 1}
}

func lstmOp() *Op {
	return &Op{Name: "lstm1", Kind: OpLSTMSeq, T: 25, Input: 512, Hidden: 512}
}

func attnOp() *Op {
	return &Op{Name: "attn1", Kind: OpAttention, Dim: 512, Heads: 8, SeqLen: 25}
}

func TestConvGeometry(t *testing.T) {
	o := convOp()
	if o.OutH() != 56 || o.OutW() != 56 {
		t.Fatalf("same-pad conv output %dx%d", o.OutH(), o.OutW())
	}
	s := &Op{Kind: OpConv2D, InC: 3, OutC: 64, H: 224, W: 224, K: 7, Stride: 2, Pad: 3}
	if s.OutH() != 112 {
		t.Fatalf("strided conv output %d, want 112", s.OutH())
	}
}

func TestConvFLOPsFormula(t *testing.T) {
	o := convOp()
	ks := o.Forward(1, StyleTF)
	// 2 * K*K*InC * OutC * OH*OW = 2*9*64*64*56*56.
	want := 2.0 * 9 * 64 * 64 * 56 * 56
	if ks[0].FLOPs != want {
		t.Fatalf("conv FLOPs = %g, want %g", ks[0].FLOPs, want)
	}
	// Batch scales FLOPs linearly.
	ks32 := o.Forward(32, StyleTF)
	if ks32[0].FLOPs != 32*want {
		t.Fatalf("conv FLOPs don't scale with batch")
	}
}

func TestParamElems(t *testing.T) {
	o := convOp()
	if got := o.ParamElems(); got != 64*64*9+64 {
		t.Fatalf("conv params = %d", got)
	}
	l := lstmOp()
	if got := l.ParamElems(); got != 4*(512*512+512*512+512) {
		t.Fatalf("lstm params = %d", got)
	}
	d := &Op{Name: "fc", Kind: OpDense, In: 2048, Out: 1000, Rows: 1}
	if got := d.ParamElems(); got != 2048*1000+1000 {
		t.Fatalf("dense params = %d", got)
	}
	a := attnOp()
	if got := a.ParamElems(); got != 4*512*512 {
		t.Fatalf("attention params = %d", got)
	}
}

func TestDurationPositiveAndMonotone(t *testing.T) {
	small := Kernel{Name: "k", Class: GEMM, FLOPs: 1e6, Bytes: 1e5}
	big := Kernel{Name: "k", Class: GEMM, FLOPs: 1e9, Bytes: 1e8}
	ds := small.Duration(device.QuadroP4000)
	db := big.Duration(device.QuadroP4000)
	if ds <= 0 || db <= 0 {
		t.Fatal("non-positive durations")
	}
	if db <= ds {
		t.Fatal("duration not monotone in work")
	}
	// Launch latency is a floor.
	tiny := Kernel{Name: "k", Class: Pointwise, FLOPs: 1, Bytes: 4}
	if tiny.Duration(device.QuadroP4000) < device.QuadroP4000.LaunchLatencySec {
		t.Fatal("duration below launch latency")
	}
}

func TestOccupancyLowerOnBiggerGPU(t *testing.T) {
	// The same medium kernel fills less of the Titan Xp than of the P4000
	// — the mechanism behind the paper's Observation 10.
	k := Kernel{Name: "k", Class: GEMM, FLOPs: 1e8, Bytes: 1e6}
	if k.Occupancy(device.TitanXp) >= k.Occupancy(device.QuadroP4000) {
		t.Fatal("occupancy should drop on the larger GPU")
	}
}

func TestBatchNormLowerUtilizationThanConv(t *testing.T) {
	// Table 5/6: bn kernels run well below the conv/GEMM average.
	conv := convOp().Forward(32, StyleTF)[0]
	bn := (&Op{Name: "bn", Kind: OpBatchNorm, Channels: 64, H: 56, W: 56}).Forward(32, StyleTF)[0]
	cu := conv.FP32Utilization(device.QuadroP4000)
	bu := bn.FP32Utilization(device.QuadroP4000)
	if bu >= cu {
		t.Fatalf("bn util %.3f >= conv util %.3f", bu, cu)
	}
	if bu > 0.25 {
		t.Fatalf("bn util %.3f, want memory-bound (< 0.25)", bu)
	}
	if cu < 0.3 {
		t.Fatalf("conv util %.3f, want compute-dense (> 0.3)", cu)
	}
}

func TestLSTMEmitsManySmallKernels(t *testing.T) {
	lk := lstmOp().Forward(32, StyleTF)
	ak := attnOp().Forward(32, StyleTF)
	if len(lk) != 25*3 {
		t.Fatalf("lstm fwd kernels = %d, want 75", len(lk))
	}
	if len(ak) >= len(lk)/5 {
		t.Fatalf("attention should use far fewer kernels: %d vs %d", len(ak), len(lk))
	}
	// Mean kernel size: LSTM much smaller than attention.
	mean := func(ks []Kernel) float64 {
		var s float64
		for _, k := range ks {
			s += k.FLOPs
		}
		return s / float64(len(ks))
	}
	if mean(lk) >= mean(ak) {
		t.Fatal("lstm kernels should be smaller on average than attention kernels")
	}
}

func TestBackwardHeavierThanForward(t *testing.T) {
	for _, o := range []*Op{convOp(), lstmOp(), attnOp(),
		{Name: "fc", Kind: OpDense, In: 512, Out: 512, Rows: 1}} {
		f := TotalFLOPs(o.Forward(16, StyleTF))
		b := TotalFLOPs(o.Backward(16, StyleTF))
		if b <= f {
			t.Fatalf("%s: backward FLOPs %.3g <= forward %.3g", o.Name, b, f)
		}
	}
}

func TestIterationKernelsStructure(t *testing.T) {
	ops := []*Op{
		convOp(),
		{Name: "bn", Kind: OpBatchNorm, Channels: 64, H: 56, W: 56},
		{Name: "relu", Kind: OpActivation, Channels: 64, H: 56, W: 56},
	}
	ks := IterationKernels(ops, 8, StyleTF)
	if len(ks) == 0 {
		t.Fatal("no kernels emitted")
	}
	// Must contain forward conv, backward conv (dgrad+wgrad) and an
	// optimizer kernel.
	var hasFw, hasDgrad, hasWgrad, hasOpt bool
	for _, k := range ks {
		switch {
		case strings.Contains(k.Name, "implicit_convolve"):
			hasFw = true
		case strings.Contains(k.Name, "dgrad"):
			hasDgrad = true
		case strings.Contains(k.Name, "wgrad"):
			hasWgrad = true
		case strings.Contains(k.Name, "ApplyGradientDescent"):
			hasOpt = true
		}
	}
	if !hasFw || !hasDgrad || !hasWgrad || !hasOpt {
		t.Fatalf("kernel stream missing phases: fw=%v dgrad=%v wgrad=%v opt=%v", hasFw, hasDgrad, hasWgrad, hasOpt)
	}
}

func TestFrameworkNameStyles(t *testing.T) {
	o := &Op{Name: "fc", Kind: OpDense, In: 8, Out: 8, Rows: 1}
	tf := o.Forward(1, StyleTF)
	mx := o.Forward(1, StyleMXNet)
	if tf[1].Name == mx[1].Name {
		t.Fatal("TF and MXNet pointwise kernels should be named differently")
	}
	if !strings.Contains(tf[1].Name, "tensorflow::") {
		t.Fatalf("TF bias kernel name = %q", tf[1].Name)
	}
	if !strings.Contains(mx[1].Name, "mxnet") {
		t.Fatalf("MXNet kernel name = %q", mx[1].Name)
	}
	// Table 5/6 batch-norm names must match the paper.
	bn := &Op{Name: "bn", Kind: OpBatchNorm, Channels: 4, H: 2, W: 2}
	if bn.Forward(1, StyleTF)[0].Name != "cudnn::detail::bn_fw_tr_1C11_kernel_new" {
		t.Fatal("bn forward kernel name drifted from the paper")
	}
	if bn.Backward(1, StyleTF)[0].Name != "cudnn::detail::bn_bw_1C11_kernel_new" {
		t.Fatal("bn backward kernel name drifted from the paper")
	}
}

func TestStashElemsScaleWithDepthNotBatch(t *testing.T) {
	o := convOp()
	// Per-sample stash is batch-independent; total feature-map memory is
	// stash * batch, giving the linear scaling of Figure 9.
	if o.StashElemsPerSample() != int64(64*56*56) {
		t.Fatalf("conv stash = %d", o.StashElemsPerSample())
	}
	l := lstmOp()
	if l.StashElemsPerSample() != int64(25*(512+12*512)) {
		t.Fatalf("lstm stash = %d", l.StashElemsPerSample())
	}
}

func TestWorkspaceOnlyForConvAndAttention(t *testing.T) {
	if convOp().WorkspaceBytes(4) == 0 {
		t.Fatal("conv must need workspace")
	}
	if attnOp().WorkspaceBytes(4) == 0 {
		t.Fatal("attention must need workspace")
	}
	d := &Op{Name: "fc", Kind: OpDense, In: 8, Out: 8, Rows: 1}
	if d.WorkspaceBytes(4) != 0 {
		t.Fatal("dense must not need workspace")
	}
}

func TestFP32UtilizationBounded(t *testing.T) {
	for _, k := range IterationKernels([]*Op{convOp(), lstmOp(), attnOp()}, 16, StyleMXNet) {
		u := k.FP32Utilization(device.QuadroP4000)
		if u < 0 || u > 1 {
			t.Fatalf("kernel %s utilization %g out of [0,1]", k.Name, u)
		}
	}
}

func TestKindAndClassStrings(t *testing.T) {
	if OpLSTMSeq.String() != "lstm" || BatchNorm.String() != "batchnorm" {
		t.Fatal("stringers drifted")
	}
	if Kind(999).String() == "" || Class(999).String() == "" {
		t.Fatal("unknown enums must still print")
	}
}
