package kernels

// Kernel emission: each Op expands into the sequence of GPU kernels a real
// framework would launch for its forward pass, backward pass, and weight
// update. Kernel names follow the cuDNN/cuBLAS/framework conventions that
// appear verbatim in the paper's Tables 5 and 6.

// gemmName returns the GEMM kernel name in the given framework style.
func gemmName(style NameStyle) string {
	switch style {
	case StyleTF:
		return "magma_lds128_sgemm_kernel"
	case StyleMXNet:
		return "maxwell_sgemm_128x64_nn"
	default:
		return "cublas::sgemm_128x128"
	}
}

// pointwiseName returns the elementwise kernel name per framework.
func pointwiseName(style NameStyle, what string) string {
	switch style {
	case StyleTF:
		if what == "bias" {
			return "tensorflow::BiasNHWCKernel"
		}
		return "Eigen::internal::EigenMetaKernel"
	case StyleMXNet:
		return "ZN5mxnet2op8mxnet_op20mxnet_generic_kernel"
	default:
		return "cntk::Microsoft::MSR::CNTK::_launchUnaryTensorOp"
	}
}

// activationName returns the activation kernel name per framework.
func activationName(style NameStyle, dir string) string {
	switch style {
	case StyleMXNet, StyleCNTK:
		return "cudnn::detail::activation_" + dir + "_4d_kernel"
	default:
		return "Eigen::internal::EigenMetaKernel"
	}
}

// gemm builds a GEMM kernel for C[m,n] = A[m,k] @ B[k,n].
func gemm(style NameStyle, m, k, n int) Kernel {
	return Kernel{
		Name:  gemmName(style),
		Class: GEMM,
		FLOPs: 2 * float64(m) * float64(k) * float64(n),
		Bytes: 4 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n)),
	}
}

// pointwise builds an elementwise kernel over elems elements with the
// given FLOPs-per-element and streams-per-element.
func pointwise(name string, elems int64, flopsPer, bytesPer float64) Kernel {
	return Kernel{Name: name, Class: Pointwise, FLOPs: float64(elems) * flopsPer, Bytes: float64(elems) * bytesPer}
}

// Forward returns the forward-pass kernels of o at batch size n.
func (o *Op) Forward(n int, style NameStyle) []Kernel {
	o.validate()
	N := float64(n)
	switch o.Kind {
	case OpConv2D:
		out := float64(o.OutH()) * float64(o.OutW())
		flops := 2 * float64(o.K*o.K*o.InC) * float64(o.OutC) * out * N
		bytes := 4 * (N*float64(o.InC*o.H*o.W) + N*float64(o.OutC)*out + float64(o.ParamElems()))
		eff, _ := algoProfile(o.Algo)
		ks := []Kernel{{Name: convKernelName(o.Algo, "fw"), Class: Conv, FLOPs: flops, Bytes: bytes, EffScale: eff}}
		ks = append(ks, pointwise(pointwiseName(style, "bias"), int64(N*float64(o.OutC)*out), 1, 8))
		return ks
	case OpDense:
		return []Kernel{
			gemm(style, n*o.Rows, o.In, o.Out),
			pointwise(pointwiseName(style, "bias"), int64(n*o.Rows*o.Out), 1, 8),
		}
	case OpBatchNorm:
		elems := int64(N) * int64(o.elems())
		return []Kernel{{
			Name:  "cudnn::detail::bn_fw_tr_1C11_kernel_new",
			Class: BatchNorm,
			FLOPs: 10 * float64(elems),
			Bytes: 12 * float64(elems), // two read passes + one write
		}}
	case OpLayerNorm:
		elems := int64(N) * int64(o.elems())
		return []Kernel{{
			Name:  pointwiseName(style, "layernorm") + "<LayerNormFused>",
			Class: BatchNorm,
			FLOPs: 10 * float64(elems),
			Bytes: 12 * float64(elems),
		}}
	case OpActivation:
		elems := int64(N) * int64(o.elems())
		k := pointwise(activationName(style, "fw"), elems, 2, 8)
		return []Kernel{k}
	case OpMaxPool, OpAvgPool:
		outElems := int64(N) * o.OutputElemsPerSample()
		return []Kernel{{
			Name:  "cudnn::detail::pooling_fw_4d_kernel",
			Class: Pooling,
			FLOPs: float64(outElems) * float64(o.K*o.K),
			Bytes: 4 * (N*float64(o.InC*o.H*o.W) + float64(outElems)),
		}}
	case OpSoftmax:
		elems := int64(N) * int64(o.elems())
		return []Kernel{{
			Name:  "cudnn::detail::softmax_fw_kernel",
			Class: SoftmaxClass,
			FLOPs: 5 * float64(elems),
			Bytes: 12 * float64(elems),
		}}
	case OpEmbedding:
		elems := int64(N) * int64(o.T) * int64(o.Dim)
		return []Kernel{{
			Name:  pointwiseName(style, "gather") + "<Gather>",
			Class: EmbeddingLookup,
			FLOPs: 0,
			Bytes: 8 * float64(elems),
		}}
	case OpElemAdd:
		elems := int64(N) * int64(o.elems())
		return []Kernel{pointwise(pointwiseName(style, "add"), elems, 1, 12)}
	case OpLoss:
		elems := int64(N) * int64(o.elems())
		return []Kernel{{
			Name:  "cudnn::detail::softmax_fw_kernel",
			Class: SoftmaxClass,
			FLOPs: 6 * float64(elems),
			Bytes: 12 * float64(elems),
		}}
	case OpRNNSeq:
		return o.fusedRNNKernels(n, 1, "fw")
	case OpGRUSeq:
		return o.rnnKernels(n, style, 3, "fw")
	case OpLSTMSeq:
		return o.rnnKernels(n, style, 4, "fw")
	case OpAttention:
		return o.attentionKernels(n, style, "fw")
	default:
		return nil
	}
}

// Backward returns the backward-pass kernels of o at batch size n.
// Backward work is roughly 2x the forward (gradient w.r.t. data and
// w.r.t. weights).
func (o *Op) Backward(n int, style NameStyle) []Kernel {
	o.validate()
	N := float64(n)
	switch o.Kind {
	case OpConv2D:
		out := float64(o.OutH()) * float64(o.OutW())
		flops := 2 * float64(o.K*o.K*o.InC) * float64(o.OutC) * out * N
		bytes := 4 * (N*float64(o.InC*o.H*o.W) + N*float64(o.OutC)*out + float64(o.ParamElems()))
		eff, _ := algoProfile(o.Algo)
		return []Kernel{
			{Name: "cudnn::detail::dgrad_engine", Class: Conv, FLOPs: flops, Bytes: bytes, EffScale: eff},
			{Name: "cudnn::detail::wgrad_alg0_engine", Class: Conv, FLOPs: flops, Bytes: bytes, EffScale: eff},
			pointwise(pointwiseName(style, "biasgrad"), int64(N*float64(o.OutC)*out), 1, 4),
		}
	case OpDense:
		return []Kernel{
			gemm(style, o.In, n*o.Rows, o.Out), // dW = xᵀ @ g
			gemm(style, n*o.Rows, o.Out, o.In), // dx = g @ Wᵀ
			pointwise(pointwiseName(style, "biasgrad"), int64(n*o.Rows*o.Out), 1, 4),
		}
	case OpBatchNorm:
		elems := int64(N) * int64(o.elems())
		return []Kernel{{
			Name:  "cudnn::detail::bn_bw_1C11_kernel_new",
			Class: BatchNorm,
			FLOPs: 15 * float64(elems),
			Bytes: 16 * float64(elems),
		}}
	case OpLayerNorm:
		elems := int64(N) * int64(o.elems())
		return []Kernel{{
			Name:  pointwiseName(style, "layernorm") + "<LayerNormGradFused>",
			Class: BatchNorm,
			FLOPs: 15 * float64(elems),
			Bytes: 16 * float64(elems),
		}}
	case OpActivation:
		elems := int64(N) * int64(o.elems())
		return []Kernel{pointwise(activationName(style, "bw"), elems, 2, 12)}
	case OpMaxPool, OpAvgPool:
		outElems := int64(N) * o.OutputElemsPerSample()
		return []Kernel{{
			Name:  "cudnn::detail::pooling_bw_4d_kernel",
			Class: Pooling,
			FLOPs: float64(outElems) * float64(o.K*o.K),
			Bytes: 4 * (N*float64(o.InC*o.H*o.W) + float64(outElems)),
		}}
	case OpSoftmax, OpLoss:
		elems := int64(N) * int64(o.elems())
		return []Kernel{{
			Name:  "cudnn::detail::softmax_bw_kernel",
			Class: SoftmaxClass,
			FLOPs: 4 * float64(elems),
			Bytes: 12 * float64(elems),
		}}
	case OpEmbedding:
		elems := int64(N) * int64(o.T) * int64(o.Dim)
		return []Kernel{{
			Name:  pointwiseName(style, "scatteradd") + "<ScatterAdd>",
			Class: EmbeddingLookup,
			FLOPs: float64(elems),
			Bytes: 12 * float64(elems),
		}}
	case OpElemAdd:
		return nil // gradient of add is pass-through
	case OpRNNSeq:
		return o.fusedRNNKernels(n, 1, "bw")
	case OpGRUSeq:
		return o.rnnKernels(n, style, 3, "bw")
	case OpLSTMSeq:
		return o.rnnKernels(n, style, 4, "bw")
	case OpAttention:
		return o.attentionKernels(n, style, "bw")
	default:
		return nil
	}
}

// Update returns the weight-update kernels (one fused optimizer kernel per
// parameter tensor group).
func (o *Op) Update(style NameStyle) []Kernel {
	p := o.ParamElems()
	if p == 0 {
		return nil
	}
	name := pointwiseName(style, "sgd") + "<ApplyGradientDescent>"
	return []Kernel{{Name: name, Class: OptimizerClass, FLOPs: 4 * float64(p), Bytes: 16 * float64(p)}}
}

// rnnKernels emits the per-timestep kernel stream of a recurrent layer.
// Each timestep launches two GEMMs (input and recurrent projections) and a
// fused gate kernel; the backward adds a weight-gradient GEMM. The sheer
// number of small launches — T steps x several kernels — is what starves
// the GPU in the paper's Observation 5.
func (o *Op) rnnKernels(n int, style NameStyle, gates int, dir string) []Kernel {
	gh := gates * o.Hidden
	var ks []Kernel
	gateName := "cudnn::detail::" + map[int]string{1: "rnn", 3: "gru", 4: "lstm"}[gates] + "_" + dir + "_pointwise"
	for t := 0; t < o.T; t++ {
		if dir == "fw" {
			gate := pointwise(gateName, int64(n*o.Hidden), float64(6*gates), 8*float64(gates))
			gate.Sync = true // recurrent dependency: host loop step boundary
			ks = append(ks,
				gemm(style, n, o.Input, gh),
				gemm(style, n, o.Hidden, gh),
				gate,
			)
		} else {
			gate := pointwise(gateName, int64(n*o.Hidden), float64(8*gates), 12*float64(gates))
			gate.Sync = true
			ks = append(ks,
				gate,
				gemm(style, o.Input, n, gh),  // dWx
				gemm(style, o.Hidden, n, gh), // dWh
				gemm(style, n, gh, o.Input),  // dx
				gemm(style, n, gh, o.Hidden), // dh
			)
		}
	}
	return ks
}

// fusedRNNKernels emits a single fused whole-sequence kernel per direction,
// the cuDNN RNN API path that MXNet's Deep Speech 2 implementation uses.
// Unlike the per-step loop above it has no host sync points, which is why
// DS2's vanilla-RNN stack reaches high GPU utilization while the unfused
// LSTM seq2seq models cannot (paper Observation 5).
func (o *Op) fusedRNNKernels(n, gates int, dir string) []Kernel {
	gh := gates * o.Hidden
	steps := float64(o.T)
	flops := steps * 2 * float64(n) * (float64(o.Input)*float64(gh) + float64(o.Hidden)*float64(gh))
	bytes := steps * 4 * float64(n) * float64(o.Input+3*o.Hidden)
	if dir == "bw" {
		flops *= 2
		bytes *= 1.5
	}
	return []Kernel{{
		Name:   "cudnn::detail::rnn_" + dir + "_persistent_kernel",
		Class:  GEMM,
		FLOPs:  flops,
		Bytes:  bytes + 4*float64(o.ParamElems()),
		Serial: o.T,
	}}
}

// attentionKernels emits a multi-head attention block's kernels: large
// dense projections and batched score/context GEMMs — few launches, big
// work, which is why the Transformer keeps GPUs busy where LSTMs cannot.
func (o *Op) attentionKernels(n int, style NameStyle, dir string) []Kernel {
	tok := n * o.SeqLen
	dh := o.Dim / o.Heads
	mult := 1.0
	if dir == "bw" {
		mult = 2 // dgrad + wgrad for each projection
	}
	scale := func(k Kernel) Kernel {
		k.FLOPs *= mult
		k.Bytes *= mult
		return k
	}
	ks := []Kernel{
		scale(gemm(style, tok, o.Dim, 3*o.Dim)), // fused QKV projection
		scale(Kernel{
			Name:  gemmName(style) + "<batched>",
			Class: GEMM,
			FLOPs: 2 * float64(n*o.Heads) * float64(o.SeqLen) * float64(o.SeqLen) * float64(dh) * mult,
			Bytes: 4 * float64(n*o.Heads) * (2*float64(o.SeqLen*dh) + float64(o.SeqLen*o.SeqLen)) * mult,
		}),
		{
			Name:  "cudnn::detail::softmax_" + dir + "_kernel",
			Class: SoftmaxClass,
			FLOPs: 5 * float64(n*o.Heads) * float64(o.SeqLen) * float64(o.SeqLen),
			Bytes: 12 * float64(n*o.Heads) * float64(o.SeqLen) * float64(o.SeqLen),
		},
		scale(Kernel{
			Name:  gemmName(style) + "<batched>",
			Class: GEMM,
			FLOPs: 2 * float64(n*o.Heads) * float64(o.SeqLen) * float64(o.SeqLen) * float64(dh) * mult,
			Bytes: 4 * float64(n*o.Heads) * (2*float64(o.SeqLen*dh) + float64(o.SeqLen*o.SeqLen)) * mult,
		}),
		scale(gemm(style, tok, o.Dim, o.Dim)), // output projection
	}
	return ks
}

// IterationKernels expands a whole model (a slice of ops) into the full
// per-iteration kernel stream: forward in graph order, backward in reverse
// order, then weight updates.
func IterationKernels(ops []*Op, batch int, style NameStyle) []Kernel {
	var ks []Kernel
	for _, o := range ops {
		ks = append(ks, o.Forward(batch, style)...)
	}
	for i := len(ops) - 1; i >= 0; i-- {
		ks = append(ks, ops[i].Backward(batch, style)...)
	}
	for _, o := range ops {
		ks = append(ks, o.Update(style)...)
	}
	return ks
}

// TotalFLOPs sums the FLOPs of a kernel stream.
func TotalFLOPs(ks []Kernel) float64 {
	var s float64
	for _, k := range ks {
		s += k.FLOPs
	}
	return s
}
