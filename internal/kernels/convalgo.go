package kernels

import "sort"

// Convolution algorithm selection: cuDNN offers several convolution
// algorithms that trade scratch memory for speed, and frameworks pick
// among them under a workspace budget (the auto-tuning phase of §3.4.2).
// This models the three canonical choices and implements a budgeted
// selector — making the paper's Observation 12 recommendation ("use the
// memory freed by smaller mini-batches for larger workspace / faster
// convolutions") an executable analysis.

// ConvAlgo identifies a convolution implementation.
type ConvAlgo int

// The modeled cuDNN algorithm families.
const (
	// AlgoPrecompGEMM is the default: precomputed-index implicit GEMM,
	// moderate workspace (the baseline cost model).
	AlgoPrecompGEMM ConvAlgo = iota
	// AlgoImplicitGEMM needs almost no workspace but runs slower.
	AlgoImplicitGEMM
	// AlgoWinograd is fastest for 3x3 stride-1 convolutions but needs a
	// large transform workspace.
	AlgoWinograd
)

// String implements fmt.Stringer.
func (a ConvAlgo) String() string {
	switch a {
	case AlgoImplicitGEMM:
		return "implicit-gemm"
	case AlgoWinograd:
		return "winograd"
	default:
		return "precomp-gemm"
	}
}

// algoProfile gives each algorithm's efficiency multiplier (over the conv
// class baseline) and workspace multiplier (over the precomp-GEMM
// baseline buffer).
func algoProfile(a ConvAlgo) (effScale, workspaceScale float64) {
	switch a {
	case AlgoImplicitGEMM:
		return 0.80, 0.05
	case AlgoWinograd:
		return 1.30, 2.0
	default:
		return 1.0, 1.0
	}
}

// convKernelName returns the cuDNN-style kernel name for a convolution
// algorithm.
func convKernelName(a ConvAlgo, dir string) string {
	switch a {
	case AlgoWinograd:
		return "cudnn::winograd128x128_ldg1_ldg4_" + dir
	case AlgoImplicitGEMM:
		return "cudnn::detail::implicit_convolve_sgemm"
	default:
		return "cudnn::detail::implicit_convolve_sgemm"
	}
}

// WinogradEligible reports whether the op can use the Winograd transform
// (3x3 stride-1 convolutions).
func (o *Op) WinogradEligible() bool {
	return o.Kind == OpConv2D && o.K == 3 && o.Stride == 1
}

// CloneOps shallow-copies an op graph so per-run algorithm choices don't
// mutate the shared model cache.
func CloneOps(ops []*Op) []*Op {
	out := make([]*Op, len(ops))
	for i, o := range ops {
		c := *o
		out[i] = &c
	}
	return out
}

// ChooseConvAlgos assigns convolution algorithms to a (cloned) op graph
// so that the workspace arena (the max across ops at the given batch)
// fits budgetBytes: every eligible conv starts at Winograd; the
// largest-workspace offenders are downgraded (Winograd -> precomp ->
// implicit) until the arena fits. It returns the ops and the resulting
// arena size.
func ChooseConvAlgos(ops []*Op, batch int, budgetBytes int64) ([]*Op, int64) {
	out := CloneOps(ops)
	for _, o := range out {
		if o.Kind != OpConv2D {
			continue
		}
		if o.WinogradEligible() {
			o.Algo = AlgoWinograd
		} else {
			o.Algo = AlgoPrecompGEMM
		}
	}
	arena := func() int64 {
		var m int64
		for _, o := range out {
			if w := o.WorkspaceBytes(batch); w > m {
				m = w
			}
		}
		return m
	}
	for arena() > budgetBytes {
		// Downgrade the largest-workspace conv one notch.
		convs := make([]*Op, 0, len(out))
		for _, o := range out {
			if o.Kind == OpConv2D && o.Algo != AlgoImplicitGEMM {
				convs = append(convs, o)
			}
		}
		if len(convs) == 0 {
			break // nothing left to shrink
		}
		sort.Slice(convs, func(i, j int) bool {
			return convs[i].WorkspaceBytes(batch) > convs[j].WorkspaceBytes(batch)
		})
		top := convs[0]
		if top.Algo == AlgoWinograd {
			top.Algo = AlgoPrecompGEMM
		} else {
			top.Algo = AlgoImplicitGEMM
		}
	}
	return out, arena()
}
