package kernels

import "fmt"

// Kind identifies a layer-level operation in a paper-scale model graph.
type Kind int

// Operation kinds covering every layer type in the TBD model zoo.
const (
	OpConv2D Kind = iota
	OpDense
	OpBatchNorm
	OpLayerNorm
	OpActivation
	OpMaxPool
	OpAvgPool
	OpSoftmax
	OpRNNSeq
	OpGRUSeq
	OpLSTMSeq
	OpAttention
	OpEmbedding
	OpElemAdd
	OpLoss
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := map[Kind]string{
		OpConv2D: "conv2d", OpDense: "dense", OpBatchNorm: "batchnorm",
		OpLayerNorm: "layernorm", OpActivation: "activation",
		OpMaxPool: "maxpool", OpAvgPool: "avgpool", OpSoftmax: "softmax",
		OpRNNSeq: "rnn", OpGRUSeq: "gru", OpLSTMSeq: "lstm",
		OpAttention: "attention", OpEmbedding: "embedding",
		OpElemAdd: "add", OpLoss: "loss",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NameStyle selects the framework flavour of emitted kernel names,
// mirroring how the same model invokes differently named kernels on
// TensorFlow vs MXNet vs CNTK (paper Tables 5 and 6).
type NameStyle int

// Name styles for the three frameworks.
const (
	StyleTF NameStyle = iota
	StyleMXNet
	StyleCNTK
)

// Op describes one layer of a paper-scale model with its per-sample
// shapes. Batch size is supplied at kernel-emission time so one model
// graph serves every point of a mini-batch sweep.
type Op struct {
	Name string
	Kind Kind

	// Convolution / pooling / normalization geometry (per sample).
	InC, OutC      int
	H, W           int // input spatial size
	K, Stride, Pad int

	// Dense geometry: Rows rows of In features -> Out features per sample
	// (Rows > 1 for per-token projections in sequence models).
	In, Out, Rows int

	// Recurrent geometry: T timesteps of Input features with Hidden units.
	T, Input, Hidden int

	// Attention geometry: SeqLen tokens of Dim features with Heads heads.
	Dim, Heads, SeqLen int

	// Embedding geometry.
	Vocab int

	// Channels for normalization layers; Elems for pointwise ops when set
	// explicitly (otherwise derived from geometry).
	Channels int
	Elems    int

	// SharesInput marks ops whose saved input is the same tensor another
	// op already stashed (parallel branches of an Inception block), so
	// the memory profiler does not double-count it.
	SharesInput bool

	// Algo selects the convolution algorithm (zero value =
	// precomp-GEMM, the baseline). Set via ChooseConvAlgos.
	Algo ConvAlgo
}

// OutH returns the convolution/pooling output height.
func (o *Op) OutH() int { return (o.H+2*o.Pad-o.K)/o.Stride + 1 }

// OutW returns the convolution/pooling output width.
func (o *Op) OutW() int { return (o.W+2*o.Pad-o.K)/o.Stride + 1 }

// OutputElemsPerSample returns the size of this op's output feature map
// for one input sample.
func (o *Op) OutputElemsPerSample() int64 {
	switch o.Kind {
	case OpConv2D:
		return int64(o.OutC) * int64(o.OutH()) * int64(o.OutW())
	case OpMaxPool, OpAvgPool:
		return int64(o.InC) * int64(o.OutH()) * int64(o.OutW())
	case OpDense:
		return int64(o.Rows) * int64(o.Out)
	case OpBatchNorm, OpLayerNorm, OpActivation, OpSoftmax, OpElemAdd, OpLoss:
		return int64(o.elems())
	case OpRNNSeq, OpGRUSeq, OpLSTMSeq:
		return int64(o.T) * int64(o.Hidden)
	case OpAttention:
		return int64(o.SeqLen) * int64(o.Dim)
	case OpEmbedding:
		return int64(o.T) * int64(o.Dim)
	default:
		return 0
	}
}

// elems returns the per-sample element count of a pointwise-style op.
func (o *Op) elems() int {
	if o.Elems > 0 {
		return o.Elems
	}
	if o.Channels > 0 && o.H > 0 {
		return o.Channels * o.H * o.W
	}
	if o.Rows > 0 && o.Out > 0 {
		return o.Rows * o.Out
	}
	return o.Out
}

// ParamElems returns the number of trainable scalars this op owns.
func (o *Op) ParamElems() int64 {
	switch o.Kind {
	case OpConv2D:
		return int64(o.OutC)*int64(o.InC)*int64(o.K)*int64(o.K) + int64(o.OutC)
	case OpDense:
		return int64(o.In)*int64(o.Out) + int64(o.Out)
	case OpBatchNorm:
		return 2 * int64(o.Channels)
	case OpLayerNorm:
		return 2 * int64(o.Channels)
	case OpRNNSeq:
		return int64(o.Input)*int64(o.Hidden) + int64(o.Hidden)*int64(o.Hidden) + int64(o.Hidden)
	case OpGRUSeq:
		return 3 * (int64(o.Input)*int64(o.Hidden) + int64(o.Hidden)*int64(o.Hidden) + int64(o.Hidden))
	case OpLSTMSeq:
		return 4 * (int64(o.Input)*int64(o.Hidden) + int64(o.Hidden)*int64(o.Hidden) + int64(o.Hidden))
	case OpAttention:
		return 4 * int64(o.Dim) * int64(o.Dim)
	case OpEmbedding:
		return int64(o.Vocab) * int64(o.Dim)
	default:
		return 0
	}
}

// StashElemsPerSample returns the per-sample feature-map elements this op
// must keep resident for its backward pass: its input (or an equivalent
// saved activation) plus any internal intermediates. This is the quantity
// whose dominance the paper's Observation 11 establishes.
func (o *Op) StashElemsPerSample() int64 {
	out := o.OutputElemsPerSample()
	if o.SharesInput {
		return 0
	}
	switch o.Kind {
	case OpConv2D:
		return int64(o.InC) * int64(o.H) * int64(o.W) // saved input
	case OpDense:
		return int64(o.Rows) * int64(o.In)
	case OpBatchNorm, OpLayerNorm:
		return out // normalized activations (xhat)
	case OpActivation:
		return out // mask / saved output
	case OpMaxPool:
		return 2 * out // argmax indices (stored as wide ints)
	case OpAvgPool:
		return 0
	case OpSoftmax:
		return out
	case OpRNNSeq:
		// Fused cuDNN RNN reserve space: per-step inputs, hidden states,
		// and pre-activations for both the forward output and the
		// backward reserve buffer.
		return int64(o.T) * int64(o.Input+10*o.Hidden)
	case OpGRUSeq:
		return int64(o.T) * int64(o.Input+9*o.Hidden)
	case OpLSTMSeq:
		// Dataflow frameworks stash every node output of the unrolled
		// step: x, hPrev, cPrev, the 4H pre-activation, 4 gates, c, and
		// tanh(c) — ~12H per step per sample.
		return int64(o.T) * int64(o.Input+12*o.Hidden)
	case OpAttention:
		// q, k, v, context + attention matrix (SeqLen² per head).
		return 4*int64(o.SeqLen)*int64(o.Dim) + int64(o.Heads)*int64(o.SeqLen)*int64(o.SeqLen)
	case OpEmbedding:
		return int64(o.T) * int64(o.Dim+1) // embedded output + token ids
	case OpElemAdd:
		return 0
	case OpLoss:
		// Logits, softmax output, and gradient staging all live until the
		// backward pass.
		return 3 * out
	default:
		return 0
	}
}

// WorkspaceBytes returns the scratch-buffer bytes this op needs at batch
// size n — the analogue of cuDNN convolution workspace. Frameworks reuse
// one arena sized to the maximum across ops.
func (o *Op) WorkspaceBytes(n int) int64 {
	switch o.Kind {
	case OpConv2D:
		// Half of the full im2col lowering buffer: cuDNN's
		// implicit-precomp-GEMM algorithms materialize only index
		// metadata plus partial tiles rather than the whole matrix.
		// Other algorithms scale this baseline (see algoProfile).
		base := int64(n) * int64(o.OutH()) * int64(o.OutW()) * int64(o.InC*o.K*o.K) * 4 / 2
		_, ws := algoProfile(o.Algo)
		return int64(float64(base) * ws)
	case OpAttention:
		// scores scratch per head.
		return int64(n) * int64(o.Heads) * int64(o.SeqLen) * int64(o.SeqLen) * 4
	default:
		return 0
	}
}

// validate panics when an op is degenerate (guards model builders).
func (o *Op) validate() {
	if o.Name == "" {
		panic("kernels: op without a name")
	}
}
