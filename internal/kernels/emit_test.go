package kernels

import (
	"strings"
	"testing"

	"tbd/internal/device"
)

// allKindsOps builds one op of every kind with small valid geometry.
func allKindsOps() []*Op {
	return []*Op{
		{Name: "conv", Kind: OpConv2D, InC: 3, OutC: 8, H: 16, W: 16, K: 3, Stride: 1, Pad: 1},
		{Name: "dense", Kind: OpDense, In: 64, Out: 32, Rows: 4},
		{Name: "bn", Kind: OpBatchNorm, Channels: 8, H: 16, W: 16},
		{Name: "ln", Kind: OpLayerNorm, Channels: 32, Elems: 4 * 32},
		{Name: "act", Kind: OpActivation, Channels: 8, H: 16, W: 16},
		{Name: "maxpool", Kind: OpMaxPool, InC: 8, H: 16, W: 16, K: 2, Stride: 2},
		{Name: "avgpool", Kind: OpAvgPool, InC: 8, H: 16, W: 16, K: 2, Stride: 2},
		{Name: "softmax", Kind: OpSoftmax, Elems: 100},
		{Name: "rnn", Kind: OpRNNSeq, T: 8, Input: 16, Hidden: 32},
		{Name: "gru", Kind: OpGRUSeq, T: 8, Input: 16, Hidden: 32},
		{Name: "lstm", Kind: OpLSTMSeq, T: 8, Input: 16, Hidden: 32},
		{Name: "attn", Kind: OpAttention, Dim: 32, Heads: 4, SeqLen: 8},
		{Name: "emb", Kind: OpEmbedding, Vocab: 100, Dim: 16, T: 8},
		{Name: "add", Kind: OpElemAdd, Elems: 512},
		{Name: "loss", Kind: OpLoss, Elems: 100},
	}
}

func TestEveryKindEmitsOnEveryStyle(t *testing.T) {
	for _, style := range []NameStyle{StyleTF, StyleMXNet, StyleCNTK} {
		for _, op := range allKindsOps() {
			fw := op.Forward(4, style)
			if len(fw) == 0 {
				t.Fatalf("style %d: %s emits no forward kernels", style, op.Name)
			}
			bw := op.Backward(4, style)
			if op.Kind != OpElemAdd && len(bw) == 0 {
				t.Fatalf("style %d: %s emits no backward kernels", style, op.Name)
			}
			for _, k := range append(fw, bw...) {
				if k.Name == "" {
					t.Fatalf("%s emitted a nameless kernel", op.Name)
				}
				if k.FLOPs < 0 || k.Bytes <= 0 {
					t.Fatalf("%s kernel %s has invalid cost (%g FLOPs, %g bytes)", op.Name, k.Name, k.FLOPs, k.Bytes)
				}
				if d := k.Duration(device.QuadroP4000); d <= 0 {
					t.Fatalf("%s kernel %s has duration %g", op.Name, k.Name, d)
				}
			}
		}
	}
}

func TestUpdateKernelsOnlyForParameterizedOps(t *testing.T) {
	for _, op := range allKindsOps() {
		up := op.Update(StyleTF)
		hasParams := op.ParamElems() > 0
		if hasParams && len(up) == 0 {
			t.Fatalf("%s has parameters but no update kernel", op.Name)
		}
		if !hasParams && len(up) != 0 {
			t.Fatalf("%s has no parameters but emits update kernels", op.Name)
		}
	}
}

func TestCNTKStyleNames(t *testing.T) {
	d := &Op{Name: "fc", Kind: OpDense, In: 8, Out: 8, Rows: 1}
	ks := d.Forward(1, StyleCNTK)
	var sawCNTK bool
	for _, k := range ks {
		if strings.Contains(k.Name, "cntk") || strings.Contains(k.Name, "cublas") {
			sawCNTK = true
		}
	}
	if !sawCNTK {
		t.Fatalf("CNTK style produced no CNTK/cublas kernels: %+v", ks)
	}
}

func TestGRUEmitsPerStepSyncs(t *testing.T) {
	g := &Op{Name: "gru", Kind: OpGRUSeq, T: 10, Input: 16, Hidden: 16}
	fw := g.Forward(2, StyleMXNet)
	syncs := 0
	for _, k := range fw {
		if k.Sync {
			syncs++
		}
	}
	if syncs != 10 {
		t.Fatalf("GRU forward has %d sync points, want one per timestep", syncs)
	}
}

func TestFusedRNNIsSingleSerialKernel(t *testing.T) {
	r := &Op{Name: "rnn", Kind: OpRNNSeq, T: 50, Input: 64, Hidden: 64}
	fw := r.Forward(2, StyleMXNet)
	if len(fw) != 1 {
		t.Fatalf("fused RNN emits %d kernels, want 1", len(fw))
	}
	if fw[0].Serial != 50 {
		t.Fatalf("fused RNN Serial = %d, want T", fw[0].Serial)
	}
	if fw[0].Sync {
		t.Fatal("fused RNN must not host-sync")
	}
	// Serial kernels take at least T * launch-ish floors longer than a
	// same-FLOPs fully parallel kernel at small batch.
	parallel := fw[0]
	parallel.Serial = 1
	if fw[0].Duration(device.QuadroP4000) <= parallel.Duration(device.QuadroP4000) {
		t.Fatal("serialization must cost time")
	}
}

func TestOutputElemsConsistency(t *testing.T) {
	for _, op := range allKindsOps() {
		if op.OutputElemsPerSample() <= 0 {
			t.Fatalf("%s has no output elements", op.Name)
		}
	}
	// Pool geometry: 16x16 pooled by 2/2 -> 8x8.
	p := &Op{Name: "p", Kind: OpMaxPool, InC: 8, H: 16, W: 16, K: 2, Stride: 2}
	if p.OutputElemsPerSample() != 8*8*8 {
		t.Fatalf("pool output %d", p.OutputElemsPerSample())
	}
}

func TestValidatePanicsOnNamelessOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nameless op must panic at emission")
		}
	}()
	(&Op{Kind: OpDense, In: 2, Out: 2, Rows: 1}).Forward(1, StyleTF)
}

func TestLayerNormEmissionDiffersFromBatchNorm(t *testing.T) {
	ln := &Op{Name: "ln", Kind: OpLayerNorm, Channels: 8, Elems: 64}
	bn := &Op{Name: "bn", Kind: OpBatchNorm, Channels: 8, H: 4, W: 2}
	lk := ln.Forward(2, StyleTF)[0]
	bk := bn.Forward(2, StyleTF)[0]
	if lk.Name == bk.Name {
		t.Fatal("layernorm and batchnorm should emit distinct kernels")
	}
	if lk.Class != BatchNorm || bk.Class != BatchNorm {
		t.Fatal("both normalizations share the memory-bound class")
	}
}

func TestAttentionBackwardScalesGEMMs(t *testing.T) {
	a := &Op{Name: "attn", Kind: OpAttention, Dim: 64, Heads: 4, SeqLen: 8}
	f := TotalFLOPs(a.Forward(4, StyleTF))
	b := TotalFLOPs(a.Backward(4, StyleTF))
	if b < 1.5*f || b > 2.5*f {
		t.Fatalf("attention backward/forward FLOP ratio %.2f, want ~2", b/f)
	}
}
