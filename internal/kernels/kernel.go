// Package kernels is the analytic GPU cost model at the core of the TBD
// simulator. Every layer of a paper-scale model is described by an Op;
// each Op emits the forward, backward, and weight-update kernels a real
// framework would launch (with cuDNN/cuBLAS-style names, so the paper's
// Tables 5 and 6 can be regenerated). A Kernel carries its FLOP count and
// memory traffic; Duration applies a roofline model with per-class
// efficiency and an occupancy ramp, which is what makes small kernels
// (RNN timesteps) slow per-FLOP and batch-norm kernels memory-bound —
// the paper's Observations 5, 7, and 8.
package kernels

import (
	"fmt"
	"math"

	"tbd/internal/device"
)

// Class categorizes a kernel by its compute profile.
type Class int

// Kernel classes, ordered roughly by arithmetic intensity.
const (
	GEMM Class = iota
	Conv
	BatchNorm
	Pointwise
	Reduction
	SoftmaxClass
	Pooling
	EmbeddingLookup
	OptimizerClass
	Transfer
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case GEMM:
		return "gemm"
	case Conv:
		return "conv"
	case BatchNorm:
		return "batchnorm"
	case Pointwise:
		return "pointwise"
	case Reduction:
		return "reduction"
	case SoftmaxClass:
		return "softmax"
	case Pooling:
		return "pooling"
	case EmbeddingLookup:
		return "embedding"
	case OptimizerClass:
		return "optimizer"
	case Transfer:
		return "transfer"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// baseEfficiency is the fraction of peak FP32 throughput a fully occupied
// kernel of each class achieves. Compute-dense classes (conv, GEMM) run
// near library efficiency; normalization and pointwise kernels are
// memory-bound and cannot approach peak regardless of tuning — the effect
// behind the paper's Tables 5 and 6.
var baseEfficiency = map[Class]float64{
	GEMM:            0.50,
	Conv:            0.72,
	BatchNorm:       0.42,
	Pointwise:       0.30,
	Reduction:       0.25,
	SoftmaxClass:    0.30,
	Pooling:         0.35,
	EmbeddingLookup: 0.20,
	OptimizerClass:  0.30,
	Transfer:        0.10,
}

// occupancyGrain is the FLOPs-per-core needed to reach ~50% occupancy.
// Larger GPUs need proportionally more parallel work to fill, which is why
// the Titan Xp shows *lower* utilization than the P4000 on identical
// workloads (Observation 10).
const occupancyGrain = 35e3

// Kernel is one GPU kernel launch: a name (framework-styled), a class, and
// its analytic cost.
type Kernel struct {
	Name  string
	Class Class
	// FLOPs is the single-precision operation count.
	FLOPs float64
	// Bytes is the DRAM traffic (reads + writes).
	Bytes float64
	// Sync marks a host synchronization point: the CPU must drain the GPU
	// before dispatching past this kernel (the per-timestep control flow
	// of unfused RNN loops). Sync points are what prevent LSTM models
	// from keeping the GPU busy — Observation 5.
	Sync bool
	// EffScale multiplies the class efficiency (0 means 1): convolution
	// algorithm variants differ here (Winograd > precomp > implicit).
	EffScale float64
	// Serial is the number of internally sequential phases (1 for
	// ordinary kernels). A fused cuDNN RNN kernel is Serial=T: only one
	// timestep's work is parallel at once, so small batches cannot fill
	// the device even though the kernel as a whole is enormous — the
	// reason Deep Speech 2 scales nearly linearly with batch size while
	// staying at low FP32 utilization (Observations 2 and 7).
	Serial int
}

// Occupancy returns the fraction of g's cores this kernel can keep busy,
// an increasing saturating function of concurrently available work per
// core (one serial phase's worth).
func (k Kernel) Occupancy(g *device.GPU) float64 {
	serial := float64(k.serial())
	work := k.FLOPs / serial
	if b := k.Bytes / serial; work < b {
		// Memory-heavy kernels still spawn a thread per element.
		work = b
	}
	sat := occupancyGrain * float64(g.CoreCount)
	return work / (work + sat)
}

func (k Kernel) serial() int {
	if k.Serial > 1 {
		return k.Serial
	}
	return 1
}

// Duration returns the modeled execution time of k on g in seconds:
// a roofline over compute (derated by class efficiency and occupancy) and
// memory bandwidth, applied per serial phase, plus the fixed launch
// latency.
func (k Kernel) Duration(g *device.GPU) float64 {
	if k.Class == Transfer {
		// Host<->device copies cross the PCIe bus, not device DRAM.
		return TransferDuration(k.Bytes, device.PCIe3) + g.LaunchLatencySec
	}
	eff := baseEfficiency[k.Class] * k.Occupancy(g)
	if k.EffScale > 0 {
		eff *= k.EffScale
	}
	if eff <= 0 {
		eff = 1e-6
	}
	serial := float64(k.serial())
	compute := k.FLOPs / serial / (g.PeakFLOPS() * eff)
	memory := k.Bytes / serial / g.MemBandwidth()
	return serial*math.Max(compute, memory) + g.LaunchLatencySec
}

// TransferDuration prices a host<->device copy over the PCIe bus rather
// than device memory (used for the per-iteration input upload).
func TransferDuration(bytes float64, bus *device.Interconnect) float64 {
	return bus.TransferTime(int64(bytes))
}

// InputTransfer builds the host-to-device copy kernel that uploads one
// mini-batch of input samples, the "data transfers" stage of §2.3 that
// the paper observes is usually overlapped with computation.
func InputTransfer(batch int, sampleBytes int64) Kernel {
	return Kernel{
		Name:  "cudaMemcpyHtoD<input batch>",
		Class: Transfer,
		FLOPs: 0,
		Bytes: float64(batch) * float64(sampleBytes),
	}
}

// FP32Utilization returns the fraction of g's peak FP32 throughput this
// kernel achieves while resident (Equation 2 of the paper, per kernel).
func (k Kernel) FP32Utilization(g *device.GPU) float64 {
	d := k.Duration(g)
	if d <= 0 {
		return 0
	}
	u := k.FLOPs / (g.PeakFLOPS() * d)
	if u > 1 {
		u = 1
	}
	return u
}
