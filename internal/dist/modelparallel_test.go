package dist

import (
	"testing"

	"tbd/internal/device"
	"tbd/internal/kernels"
	"tbd/internal/layers"
	"tbd/internal/models"
	"tbd/internal/tensor"
)

func TestPartitionOpsBalances(t *testing.T) {
	m, _ := models.Lookup("ResNet-50")
	ops := m.Ops()
	plan := PartitionOps(ops, 4)
	if len(plan.Stages) != 4 {
		t.Fatalf("got %d stages, want 4", len(plan.Stages))
	}
	if len(plan.BoundaryElems) != 3 {
		t.Fatalf("got %d boundaries, want 3", len(plan.BoundaryElems))
	}
	// Every op lands in exactly one stage, in order.
	total := 0
	for _, s := range plan.Stages {
		total += len(s)
	}
	if total != len(ops) {
		t.Fatalf("partition dropped ops: %d vs %d", total, len(ops))
	}
	// Stage FLOPs are within 3x of each other (greedy balance).
	var costs []float64
	for _, stage := range plan.Stages {
		var c float64
		for _, o := range stage {
			c += kernels.TotalFLOPs(o.Forward(1, kernels.StyleTF))
		}
		costs = append(costs, c)
	}
	minC, maxC := costs[0], costs[0]
	for _, c := range costs {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC/minC > 3 {
		t.Fatalf("stage imbalance %.1fx: %v", maxC/minC, costs)
	}
}

func TestPipelineBubbleShrinksWithMicroBatches(t *testing.T) {
	m, _ := models.Lookup("ResNet-50")
	_, style, cfg := resnetCfg()
	plan := PartitionOps(m.Ops(), 4)
	few := PipelineEstimate(plan, 8, 2, style, cfg, device.PCIe3)
	many := PipelineEstimate(plan, 8, 16, style, cfg, device.PCIe3)
	if many.BubbleFraction >= few.BubbleFraction {
		t.Fatalf("bubble fraction did not shrink: %.3f -> %.3f", few.BubbleFraction, many.BubbleFraction)
	}
	if many.Throughput <= few.Throughput {
		t.Fatalf("throughput did not improve with pipelining: %.1f -> %.1f", few.Throughput, many.Throughput)
	}
}

func TestPipelineBalancedBeatsDegenerate(t *testing.T) {
	m, _ := models.Lookup("ResNet-50")
	_, style, cfg := resnetCfg()
	ops := m.Ops()
	balanced := PartitionOps(ops, 4)
	// Degenerate plan: everything in stage 1, three trivial tail stages.
	degenerate := StagePlan{
		Stages: [][]*kernels.Op{
			ops[:len(ops)-3], {ops[len(ops)-3]}, {ops[len(ops)-2]}, {ops[len(ops)-1]},
		},
		BoundaryElems: []int64{1000, 1000, 1000},
	}
	b := PipelineEstimate(balanced, 8, 8, style, cfg, device.PCIe3)
	d := PipelineEstimate(degenerate, 8, 8, style, cfg, device.PCIe3)
	if b.Throughput <= d.Throughput {
		t.Fatalf("balanced plan (%.1f) should beat the degenerate one (%.1f)", b.Throughput, d.Throughput)
	}
}

func TestPipelineSlowLinkHurts(t *testing.T) {
	m, _ := models.Lookup("ResNet-50")
	_, style, cfg := resnetCfg()
	plan := PartitionOps(m.Ops(), 2)
	pcie := PipelineEstimate(plan, 8, 8, style, cfg, device.PCIe3)
	eth := PipelineEstimate(plan, 8, 8, style, cfg, device.Ethernet)
	if eth.Throughput >= pcie.Throughput {
		t.Fatal("ethernet boundary transfers must hurt pipeline throughput")
	}
}

func TestStagePipelineMatchesSequential(t *testing.T) {
	rng := tensor.NewRNG(31)
	s1 := layers.NewSequential("s1",
		layers.NewDense("fc1", 4, 16, rng),
		layers.NewReLU("r1"),
	)
	s2 := layers.NewSequential("s2",
		layers.NewDense("fc2", 16, 3, rng),
	)
	pipe := NewStagePipeline(s1, s2)

	micro := []*tensor.Tensor{
		tensor.RandNormal(rng, 0, 1, 2, 4),
		tensor.RandNormal(rng, 0, 1, 2, 4),
		tensor.RandNormal(rng, 0, 1, 2, 4),
	}
	got := pipe.ForwardPipelined(micro)
	if len(got) != 3 {
		t.Fatalf("pipeline returned %d outputs", len(got))
	}
	for i, x := range micro {
		want := s2.Forward(s1.Forward(x, false), false)
		if !tensor.Equal(got[i], want, 1e-6) {
			t.Fatalf("micro-batch %d output diverged from sequential execution", i)
		}
	}
	if n := len(pipe.Params()); n != 4 {
		t.Fatalf("pipeline params = %d, want 4", n)
	}
}

func TestPartitionValidates(t *testing.T) {
	m, _ := models.Lookup("A3C")
	defer func() {
		if recover() == nil {
			t.Fatal("too many stages must panic")
		}
	}()
	PartitionOps(m.Ops(), 1000)
}
