package dist

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"time"

	"tbd/internal/graph"
	"tbd/internal/metrics"
	"tbd/internal/optim"
)

// The run coordinator: accepts one control connection per rank, wires
// the ring (or hosts the parameter server), runs the done/all-done final
// barrier, and collects per-rank results. It is transport-agnostic about
// where the workers live — OS processes spawned by `tbd dist` or
// goroutines in the benchmarks — because everything flows over TCP.

// CoordConfig describes the run the coordinator supervises.
type CoordConfig struct {
	Workers     int
	Strategy    RunStrategy
	Compression Compression
	Model       string
	Seed        uint64
	LR          float32
	// Staleness is the SSP bound for ps-async.
	Staleness int
	// PSBytesPerSec throttles the parameter server's shared NIC (the
	// central bottleneck; 0 = unthrottled). Ring runs ignore it — each
	// ring rank throttles its own link via WorkerConfig.BytesPerSec.
	PSBytesPerSec float64
}

// RunSummary is the coordinator's view of a finished run.
type RunSummary struct {
	Results []WorkerResult // sorted by rank
	// Hash is the verified common weights fingerprint.
	Hash uint64
	// Identical reports whether every rank finished with the same hash.
	Identical bool
	// Cluster aggregates the per-worker measurement windows.
	Cluster metrics.Window
	// WireBytes sums each worker's in+out wire traffic.
	WireBytes int64
}

// Coordinator supervises one distributed run.
type Coordinator struct {
	cfg      CoordConfig
	ctrl     net.Listener
	ps       *PSServer
	psMaster *graph.Network
}

// NewCoordinator opens the control listener and, for parameter-server
// strategies, boots the server from the same (model, seed) the workers
// build — so the initial weights every rank pulls equal its own local
// initialization.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one worker, got %d", cfg.Workers)
	}
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, ctrl: ctrl}
	if cfg.Strategy != RunRing {
		master, params, err := BuildMasterParams(cfg.Model, cfg.Seed)
		if err != nil {
			ctrl.Close()
			return nil, err
		}
		psl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ctrl.Close()
			return nil, err
		}
		c.psMaster = master
		if cfg.Strategy == RunPSAsync {
			c.ps = ServeBoundedAsyncPS(psl, params, optim.NewSGD(cfg.LR), cfg.Workers, cfg.Staleness)
		} else {
			c.ps = ServePS(psl, params, optim.NewSGD(cfg.LR), cfg.Workers)
		}
		c.ps.ThrottleLink(cfg.PSBytesPerSec)
	}
	return c, nil
}

// Addr returns the control address workers dial.
func (c *Coordinator) Addr() string { return c.ctrl.Addr().String() }

// PSAddr returns the parameter-server address ("" for ring runs).
func (c *Coordinator) PSAddr() string {
	if c.ps == nil {
		return ""
	}
	return c.ps.Addr()
}

// Close releases the coordinator's listeners and parameter server.
func (c *Coordinator) Close() error {
	err := c.ctrl.Close()
	if c.ps != nil {
		if perr := c.ps.Close(); err == nil {
			err = perr
		}
	}
	return err
}

// coordConn is one rank's control connection.
type coordConn struct {
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
	rank int
	// ringAddr is the ring listener address the rank advertised in its
	// hello ("" for parameter-server strategies).
	ringAddr string
}

func (cc *coordConn) send(m ctrlMsg) error {
	if err := cc.conn.SetWriteDeadline(time.Now().Add(ctrlTimeout)); err != nil {
		return err
	}
	return cc.enc.Encode(&m)
}

func (cc *coordConn) recv(wantKind string) (ctrlMsg, error) {
	if err := cc.conn.SetReadDeadline(time.Now().Add(ctrlTimeout)); err != nil {
		return ctrlMsg{}, err
	}
	var m ctrlMsg
	if err := cc.dec.Decode(&m); err != nil {
		return ctrlMsg{}, fmt.Errorf("dist: coordinator await %s from rank %d: %w", wantKind, cc.rank, err)
	}
	if m.Kind != wantKind {
		return ctrlMsg{}, fmt.Errorf("dist: coordinator got %q from rank %d, want %q", m.Kind, cc.rank, wantKind)
	}
	return m, nil
}

// Wait runs the control protocol to completion: collect hellos, publish
// the rank-ordered peer list, wait for every rank's done, release the
// final barrier, and gather results. It closes the coordinator before
// returning.
func (c *Coordinator) Wait() (*RunSummary, error) {
	defer c.Close()
	n := c.cfg.Workers

	// Phase 1: one hello per rank.
	conns := make([]*coordConn, n)
	if tl, ok := c.ctrl.(*net.TCPListener); ok {
		if err := tl.SetDeadline(time.Now().Add(ctrlTimeout)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		conn, err := c.ctrl.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: coordinator accept (%d of %d workers arrived): %w", i, n, err)
		}
		cc := &coordConn{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
		hello, err := cc.recv("hello")
		if err != nil {
			return nil, err
		}
		if hello.Rank < 0 || hello.Rank >= n {
			return nil, fmt.Errorf("dist: hello from rank %d outside [0, %d)", hello.Rank, n)
		}
		if conns[hello.Rank] != nil {
			return nil, fmt.Errorf("dist: two workers claimed rank %d", hello.Rank)
		}
		cc.rank = hello.Rank
		cc.ringAddr = hello.Addr
		conns[hello.Rank] = cc
	}
	defer func() {
		for _, cc := range conns {
			cc.conn.Close()
		}
	}()

	// Phase 2: publish the rank-ordered ring addresses. PS workers get a
	// list of empty strings — the message is still their start barrier.
	peers := c.peerList(conns)
	for _, cc := range conns {
		if err := cc.send(ctrlMsg{Kind: "peers", Peers: peers}); err != nil {
			return nil, err
		}
	}

	// Phase 3: wait for every rank to finish training, then release the
	// final barrier simultaneously.
	for _, cc := range conns {
		if _, err := cc.recv("done"); err != nil {
			return nil, err
		}
	}
	for _, cc := range conns {
		if err := cc.send(ctrlMsg{Kind: "all-done"}); err != nil {
			return nil, err
		}
	}

	// Phase 4: collect results.
	summary := &RunSummary{Results: make([]WorkerResult, 0, n)}
	for _, cc := range conns {
		m, err := cc.recv("result")
		if err != nil {
			return nil, err
		}
		summary.Results = append(summary.Results, m.Res)
	}
	sort.Slice(summary.Results, func(i, j int) bool { return summary.Results[i].Rank < summary.Results[j].Rank })

	summary.Identical = true
	summary.Hash = summary.Results[0].Hash
	windows := make([]metrics.Window, 0, n)
	for _, r := range summary.Results {
		if r.Hash != summary.Hash {
			summary.Identical = false
		}
		summary.WireBytes += r.WireIn + r.WireOut
		windows = append(windows, r.Window)
	}
	summary.Cluster = metrics.AggregateWindows(windows)
	if !summary.Identical {
		return summary, fmt.Errorf("dist: workers finished with diverging weights")
	}
	return summary, nil
}

// peerList returns the rank-ordered ring addresses from the hellos.
func (c *Coordinator) peerList(conns []*coordConn) []string {
	peers := make([]string, len(conns))
	for i, cc := range conns {
		peers[i] = cc.ringAddr
	}
	return peers
}
