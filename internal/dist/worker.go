package dist

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"tbd/internal/graph"
	"tbd/internal/layers"
	"tbd/internal/metrics"
	"tbd/internal/models"
	"tbd/internal/optim"
	"tbd/internal/prof"
	"tbd/internal/tensor"
	"tbd/internal/whatif"
)

// The distributed worker runtime: one RunWorker call is one rank of a
// real data-parallel training job — an OS process spawned by `tbd dist`,
// or a goroutine in the in-process benchmarks; either way the gradients
// move over real TCP sockets. Workers coordinate through a tiny gob
// control protocol (hello -> peers -> done -> all-done -> result) owned
// by the Coordinator in coord.go.

// RunStrategy selects the gradient-exchange runtime.
type RunStrategy int

// Runtime strategies.
const (
	// RunPSSync is the synchronous parameter server: ranked pushes, one
	// round per step, deterministic rank-order reduction.
	RunPSSync RunStrategy = iota
	// RunPSAsync is the bounded-staleness asynchronous parameter server
	// (SSP): pushes apply immediately; a worker blocks only when it runs
	// more than the staleness bound ahead of the slowest peer.
	RunPSAsync
	// RunRing is the peer-to-peer ring all-reduce: no central server,
	// each rank exchanges gradient chunks with its neighbors.
	RunRing
)

// String implements fmt.Stringer (flag values and benchmark labels).
func (s RunStrategy) String() string {
	switch s {
	case RunPSSync:
		return "ps-sync"
	case RunPSAsync:
		return "ps-async"
	case RunRing:
		return "ring"
	}
	return fmt.Sprintf("RunStrategy(%d)", int(s))
}

// ParseRunStrategy maps a flag string to a RunStrategy.
func ParseRunStrategy(s string) (RunStrategy, error) {
	switch s {
	case "ps-sync", "ps":
		return RunPSSync, nil
	case "ps-async", "async":
		return RunPSAsync, nil
	case "ring":
		return RunRing, nil
	}
	return RunPSSync, fmt.Errorf("dist: unknown strategy %q (have ps-sync, ps-async, ring)", s)
}

// RunModel describes one trainable registry entry for `tbd dist`.
type RunModel struct {
	Name string
	// Shape is one sample's input shape (without the batch dimension).
	Shape   []int
	Classes int
	Build   func(seed uint64) *graph.Network
}

// RunModels lists the models the distributed runtime can train, all
// built from internal/models constructors.
func RunModels() []RunModel {
	return []RunModel{
		{
			Name: "mlp", Shape: []int{16}, Classes: 4,
			Build: func(seed uint64) *graph.Network {
				return models.NumericServeMLP(tensor.NewRNG(seed), 16, 32, 4)
			},
		},
		{
			// The bandwidth-sensitive config: ~400k parameters = 1.6 MB
			// of fp32 gradients per round, enough for throttled links to
			// dominate the step time.
			Name: "mlp-wide", Shape: []int{256}, Classes: 10,
			Build: func(seed uint64) *graph.Network {
				return models.NumericServeMLP(tensor.NewRNG(seed), 256, 512, 10)
			},
		},
		{
			Name: "cnn", Shape: []int{3, 8, 8}, Classes: 8,
			Build: func(seed uint64) *graph.Network {
				return models.NumericResNet(tensor.NewRNG(seed), 3, 8, 8)
			},
		},
	}
}

// RunModelByName resolves a registry entry.
func RunModelByName(name string) (RunModel, error) {
	for _, m := range RunModels() {
		if m.Name == name {
			return m, nil
		}
	}
	return RunModel{}, fmt.Errorf("dist: unknown model %q (have mlp, mlp-wide, cnn)", name)
}

// SyntheticBatch generates n labeled samples: gaussian noise with a
// class-dependent offset on one feature, the same separable-classes
// construction the in-process data-parallel tests train on. Every worker
// draws the identical global batch from an identically seeded RNG and
// takes its own shard, so the data pipeline is deterministic with no
// coordinator involvement.
func SyntheticBatch(rng *tensor.RNG, shape []int, classes, n int) (*tensor.Tensor, []int) {
	inner := 1
	for _, d := range shape {
		inner *= d
	}
	x := tensor.New(append([]int{n}, shape...)...)
	data := x.Data()
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		labels[i] = c
		base := i * inner
		for j := 0; j < inner; j++ {
			v := float32(rng.Norm()) * 0.3
			if j == c%inner {
				v += 2
			}
			data[base+j] = v
		}
	}
	return x, labels
}

// WorkerConfig is everything one rank needs to join a run.
type WorkerConfig struct {
	Rank    int
	Workers int

	Strategy    RunStrategy
	Compression Compression
	// BytesPerSec throttles this worker's link (0 = unthrottled).
	BytesPerSec float64
	// Staleness is the SSP bound for ps-async (ignored otherwise).
	Staleness int

	Model       string
	Seed        uint64
	Steps       int
	GlobalBatch int
	LR          float32

	// Profile captures a full-fidelity what-if trace of this rank's
	// training loop (phase spans, kernel spans, comm spans with their
	// dependence edges) into WorkerResult.Trace. Only one rank per
	// process may profile — the collector is process-global — so the
	// in-process benchmark harnesses leave it off and the `tbd dist`
	// re-exec path (one OS process per rank) turns it on.
	Profile bool

	// CoordAddr is the coordinator's control address; PSAddr the
	// parameter server (ps strategies only).
	CoordAddr string
	PSAddr    string
}

// WorkerResult is what each rank reports back to the coordinator.
type WorkerResult struct {
	Rank  int
	Steps int
	// Hash fingerprints the final weights (FNV-1a over the bit patterns);
	// the coordinator verifies all ranks match.
	Hash                uint64
	FirstLoss, LastLoss float32
	WallSec             float64
	// CommSec is time blocked on gradient exchange (all-reduce or
	// push/pull round trips).
	CommSec         float64
	WireIn, WireOut int64
	Window          metrics.Window
	// Trace is this rank's dependence-graph capture (nil unless the run
	// profiled). It rides the gob result message so the coordinator can
	// merge every rank into one cluster trace.
	Trace *whatif.Trace
}

// ctrlTimeout bounds every control-protocol read and write.
const ctrlTimeout = 120 * time.Second

// ctrlMsg is one control-protocol message (gob).
type ctrlMsg struct {
	// Kind is "hello", "peers", "done", "all-done", or "result".
	Kind  string
	Rank  int
	Addr  string
	Peers []string
	Res   WorkerResult
}

// RunWorker joins the run described by cfg, trains for cfg.Steps, and
// returns this rank's result after the coordinator confirms every rank
// finished. The final model state is identical across ranks (the
// coordinator re-verifies via the reported hashes).
func RunWorker(cfg WorkerConfig) (WorkerResult, error) {
	model, err := RunModelByName(cfg.Model)
	if err != nil {
		return WorkerResult{}, err
	}
	if cfg.Workers <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Workers {
		return WorkerResult{}, fmt.Errorf("dist: invalid worker position rank %d of %d", cfg.Rank, cfg.Workers)
	}
	if cfg.GlobalBatch%cfg.Workers != 0 {
		return WorkerResult{}, fmt.Errorf("dist: global batch %d not divisible by %d workers", cfg.GlobalBatch, cfg.Workers)
	}

	ctrl, err := net.Dial("tcp", cfg.CoordAddr)
	if err != nil {
		return WorkerResult{}, fmt.Errorf("dist: rank %d dial coordinator: %w", cfg.Rank, err)
	}
	defer ctrl.Close()
	dec, enc := gob.NewDecoder(ctrl), gob.NewEncoder(ctrl)
	send := func(m ctrlMsg) error {
		if err := ctrl.SetWriteDeadline(time.Now().Add(ctrlTimeout)); err != nil {
			return err
		}
		return enc.Encode(&m)
	}
	recv := func(wantKind string) (ctrlMsg, error) {
		if err := ctrl.SetReadDeadline(time.Now().Add(ctrlTimeout)); err != nil {
			return ctrlMsg{}, err
		}
		var m ctrlMsg
		if err := dec.Decode(&m); err != nil {
			return ctrlMsg{}, fmt.Errorf("dist: rank %d await %s: %w", cfg.Rank, wantKind, err)
		}
		if m.Kind != wantKind {
			return ctrlMsg{}, fmt.Errorf("dist: rank %d got %q, want %q", cfg.Rank, m.Kind, wantKind)
		}
		return m, nil
	}

	// Transport setup: a ring listener or a parameter-server client.
	var ring *Ring
	var ps *PSClient
	hello := ctrlMsg{Kind: "hello", Rank: cfg.Rank}
	if cfg.Strategy == RunRing {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return WorkerResult{}, err
		}
		defer l.Close()
		hello.Addr = l.Addr().String()
		if err := send(hello); err != nil {
			return WorkerResult{}, err
		}
		peers, err := recv("peers")
		if err != nil {
			return WorkerResult{}, err
		}
		if len(peers.Peers) != cfg.Workers {
			return WorkerResult{}, fmt.Errorf("dist: rank %d got %d peers for %d workers", cfg.Rank, len(peers.Peers), cfg.Workers)
		}
		ring, err = NewRing(l, peers.Peers[(cfg.Rank+1)%cfg.Workers], RingConfig{
			Rank: cfg.Rank, Workers: cfg.Workers, Compression: cfg.Compression, BytesPerSec: cfg.BytesPerSec,
		})
		if err != nil {
			return WorkerResult{}, err
		}
		defer ring.Close()
	} else {
		if err := send(hello); err != nil {
			return WorkerResult{}, err
		}
		if _, err := recv("peers"); err != nil {
			return WorkerResult{}, err
		}
		ps, err = DialPSThrottled(cfg.PSAddr, cfg.BytesPerSec)
		if err != nil {
			return WorkerResult{}, err
		}
		defer ps.Close()
	}

	res, err := trainWorker(cfg, model, ring, ps)
	if err != nil {
		return WorkerResult{}, err
	}

	// Final barrier: tell the coordinator this rank finished, wait for
	// every other rank, then (ps strategies) pull the settled weights so
	// all ranks hold the same final state even under async updates.
	if err := send(ctrlMsg{Kind: "done", Rank: cfg.Rank}); err != nil {
		return WorkerResult{}, err
	}
	if _, err := recv("all-done"); err != nil {
		return WorkerResult{}, err
	}
	if ps != nil {
		weights, _, err := ps.Pull()
		if err != nil {
			return WorkerResult{}, err
		}
		if err := LoadWeights(res.net.Params(), weights); err != nil {
			return WorkerResult{}, err
		}
		in, out := ps.WireBytes()
		res.result.WireIn, res.result.WireOut = in, out
	}
	res.result.Hash = res.net.WeightsHash()
	if err := send(ctrlMsg{Kind: "result", Rank: cfg.Rank, Res: res.result}); err != nil {
		return WorkerResult{}, err
	}
	return res.result, nil
}

// trainResult bundles a finished worker's network with its metrics.
type trainResult struct {
	net    *graph.Network
	result WorkerResult
}

// trainWorker runs the per-rank training loop over the prepared
// transport.
func trainWorker(cfg WorkerConfig, model RunModel, ring *Ring, ps *PSClient) (*trainResult, error) {
	net := model.Build(cfg.Seed)
	opt := optim.NewSGD(cfg.LR)
	dataRNG := tensor.NewRNG(cfg.Seed + 1000)
	shard := cfg.GlobalBatch / cfg.Workers
	meter := metrics.NewMeter(shard)
	res := WorkerResult{Rank: cfg.Rank, Steps: cfg.Steps}

	if ps != nil {
		// Adopt the server's initial weights (same seed, but explicit
		// sync keeps the contract obvious and covers future drift).
		weights, _, err := ps.Pull()
		if err != nil {
			return nil, err
		}
		if err := LoadWeights(net.Params(), weights); err != nil {
			return nil, err
		}
	}

	// The phase spans below are no-ops unless the profiler is on; with
	// cfg.Profile they give every kernel and comm span a phase lineage
	// for the what-if dependence graph.
	if cfg.Profile {
		prof.EnableWithMaxRecords(distProfileMaxRecords)
	}

	var flat []float32
	wallStart := time.Now()
	for step := 0; step < cfg.Steps; step++ {
		stepStart := time.Now()
		st := prof.Begin(prof.CatPhase, "step")
		// Every rank draws the same global batch and takes its shard.
		x, labels := SyntheticBatch(dataRNG, model.Shape, model.Classes, cfg.GlobalBatch)
		xs, ys := SplitBatch(x, labels, cfg.Workers)
		optim.ZeroGrads(net.Params())
		fw := prof.BeginChild(&st, prof.CatPhase, "phase.forward")
		logits := net.Forward(xs[cfg.Rank], true)
		fw.End()
		ls := prof.BeginChild(&st, prof.CatPhase, "phase.loss")
		loss, grad := tensor.CrossEntropy(logits, ys[cfg.Rank])
		ls.End()
		bw := prof.BeginChild(&st, prof.CatPhase, "phase.backward")
		net.Backward(grad)
		bw.End()
		if step == 0 {
			res.FirstLoss = loss
		}
		res.LastLoss = loss

		commStart := time.Now()
		sync := prof.BeginChild(&st, prof.CatPhase, "phase.sync")
		if ring != nil {
			flat = net.GradVector(flat)
			if err := ring.AllReduce(flat); err != nil {
				sync.End()
				st.End()
				return nil, err
			}
			net.SetGradVector(flat)
			opt.Step(net.Params())
		} else {
			weights, _, err := ps.PushRanked(cfg.Rank, cfg.Compression, GradSlices(net.Params()))
			if err != nil {
				sync.End()
				st.End()
				return nil, err
			}
			if err := LoadWeights(net.Params(), weights); err != nil {
				sync.End()
				st.End()
				return nil, err
			}
		}
		sync.End()
		res.CommSec += time.Since(commStart).Seconds()
		st.End()
		meter.Record(time.Since(stepStart).Seconds())
	}
	res.WallSec = time.Since(wallStart).Seconds()
	res.Window = meter.Sample(0.25, cfg.Steps)
	if ring != nil {
		res.WireIn, res.WireOut = ring.WireBytes()
	}
	if cfg.Profile {
		prof.Disable()
		tr, err := whatif.Capture(whatif.Meta{
			Model:         cfg.Model,
			Steps:         cfg.Steps,
			Batch:         cfg.GlobalBatch,
			Workers:       cfg.Workers,
			Strategy:      cfg.Strategy.String(),
			Compression:   cfg.Compression.String(),
			BandwidthMBps: cfg.BytesPerSec / 1e6,
			Rank:          cfg.Rank,
		})
		if err != nil {
			return nil, err
		}
		res.Trace = tr
	}
	return &trainResult{net: net, result: res}, nil
}

// distProfileMaxRecords sizes the profiled-run timeline: a few steps of
// a deep model emit thousands of spans per step, and a truncated capture
// is a hard error in whatif.Capture, so leave generous headroom.
const distProfileMaxRecords = 1 << 20

// BuildMasterParams builds the parameter-server master network for a
// run: the same model and seed the workers use, so rank 0's initial pull
// matches every replica's local initialization.
func BuildMasterParams(modelName string, seed uint64) (*graph.Network, []*layers.Param, error) {
	model, err := RunModelByName(modelName)
	if err != nil {
		return nil, nil, err
	}
	net := model.Build(seed)
	return net, net.Params(), nil
}
