package dist

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Throttled transport: a token-bucket wrapper that clamps a connection
// to a configured bytes/s, so localhost TCP can stand in for the
// paper's §4.5 link hierarchy (1 GbE Ethernet vs InfiniBand-class
// fabrics) and the multi-machine scaling curves can be reproduced as
// honest measurements instead of model outputs. Unthrottled loopback
// plays the InfiniBand-class role: on this container it moves multiple
// GB/s, an order of magnitude above the throttled "Ethernet".

// Usable-goodput presets in bytes/s (line rate minus framing overhead).
const (
	// Link1GbE approximates gigabit Ethernet: 125 MB/s.
	Link1GbE float64 = 125e6
	// Link10GbE approximates 10-gigabit Ethernet: 1.25 GB/s.
	Link10GbE float64 = 1.25e9
)

// throttleChunk is the pacing granularity: big writes are split so the
// sleep schedule approximates a continuously paced link rather than one
// giant burst followed by a long stall.
const throttleChunk = 64 << 10

// tokenBucket paces bytes at rate bytes/s with a small burst. It uses a
// debt model: a consumer may overdraw the bucket and then sleeps until
// the debt is repaid, which keeps the long-run average exact regardless
// of call sizes.
type tokenBucket struct {
	rate  float64 // bytes per second
	burst float64

	mu     sync.Mutex
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu
}

func newTokenBucket(rate float64) *tokenBucket {
	burst := rate / 100 // 10 ms of line rate
	if burst < 16<<10 {
		burst = 16 << 10
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// take consumes n bytes of budget and returns how long the caller must
// sleep to repay any debt.
func (tb *tokenBucket) take(n int) time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens -= float64(n)
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}

// wait consumes n bytes and blocks until the bucket permits them.
func (tb *tokenBucket) wait(n int) {
	if d := tb.take(n); d > 0 {
		time.Sleep(d)
	}
}

// ThrottledConn clamps each direction of a net.Conn to an independent
// bytes/s budget. Wrap exactly one endpoint of a connection (both
// directions are throttled here); wrapping both endpoints would model
// two links in series. Reads are paced after the data arrives, which
// throttles goodput identically without fighting the kernel's socket
// buffering.
type ThrottledConn struct {
	net.Conn
	rd, wr *tokenBucket
}

// Throttle wraps c at bytesPerSec per direction. A rate <= 0 returns c
// unchanged (unthrottled).
func Throttle(c net.Conn, bytesPerSec float64) net.Conn {
	if bytesPerSec <= 0 {
		return c
	}
	return &ThrottledConn{Conn: c, rd: newTokenBucket(bytesPerSec), wr: newTokenBucket(bytesPerSec)}
}

// ThrottleShared wraps c so that its two directions draw from shared
// ingress/egress buckets — the model of N connections funnelling through
// one NIC (the parameter server's link, where the central bottleneck of
// the PS-vs-ring comparison lives). Pass buckets from NewSharedLink.
func ThrottleShared(c net.Conn, in, out *tokenBucket) net.Conn {
	if in == nil || out == nil {
		return c
	}
	return &ThrottledConn{Conn: c, rd: in, wr: out}
}

// NewSharedLink allocates the ingress/egress bucket pair for
// ThrottleShared. A rate <= 0 returns nils (unthrottled).
func NewSharedLink(bytesPerSec float64) (in, out *tokenBucket) {
	if bytesPerSec <= 0 {
		return nil, nil
	}
	return newTokenBucket(bytesPerSec), newTokenBucket(bytesPerSec)
}

// Read paces inbound bytes at the configured rate.
func (t *ThrottledConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 {
		t.rd.wait(n)
	}
	return n, err
}

// Write paces outbound bytes, splitting large writes into chunks so the
// link drains smoothly instead of in one burst.
func (t *ThrottledConn) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		chunk := p
		if len(chunk) > throttleChunk {
			chunk = chunk[:throttleChunk]
		}
		t.wr.wait(len(chunk))
		n, err := t.Conn.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
		p = p[len(chunk):]
	}
	return written, nil
}

// countingConn tallies wire bytes in each direction, feeding the comm
// spans and the per-worker results. Counters are atomic because the
// ring's send goroutine and receive loop share one accounting view.
type countingConn struct {
	net.Conn
	in, out atomic.Int64
}

func newCountingConn(c net.Conn) *countingConn { return &countingConn{Conn: c} }

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Bytes returns the cumulative (in, out) wire bytes.
func (c *countingConn) Bytes() (in, out int64) { return c.in.Load(), c.out.Load() }
