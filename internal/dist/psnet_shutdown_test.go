package dist

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"tbd/internal/optim"
	"tbd/internal/tensor"
)

// TestPSCloseUnblocksInFlightHandlers is the shutdown contract, mirroring
// the serve package's drain tests: Close must deterministically unblock
// (a) handlers parked in a synchronous round barrier waiting for peers
// that will never push, (b) handlers parked in dec.Decode on idle
// connections, and (c) the accept loop — and leave no goroutine behind.
func TestPSCloseUnblocksInFlightHandlers(t *testing.T) {
	before := runtime.NumGoroutine()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master := mlpConstructor(20)()
	s := ServePS(l, master.Params(), optim.NewSGD(0.1), 2) // 2 workers, only 1 will push

	// An idle connection: its handler sits in dec.Decode.
	idle, err := DialPS(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if _, _, err := idle.Pull(); err != nil {
		t.Fatal(err)
	}

	// A push that can never complete: the round needs a second worker.
	pusher, err := DialPS(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pusher.Close()
	pushErr := make(chan error, 1)
	go func() {
		_, _, err := pusher.Push(GradSlices(master.Params()))
		pushErr <- err
	}()

	// Wait until the push is actually parked in the barrier.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		parked := s.pushes == 1
		s.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with handlers in flight")
	}
	if err := <-pushErr; err == nil {
		t.Fatal("blocked push must fail when the server closes")
	}

	// Every server goroutine (accept loop + 2 handlers) must be gone.
	idle.Close()
	pusher.Close()
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, g)
	}
}

// psTrainRanked trains `rounds` steps with `workers` ranked TCP clients
// and returns the server's final weights hash. delays staggers worker
// push timing to scramble network arrival order.
func psTrainRanked(t *testing.T, seed uint64, workers, rounds int, comp Compression, delays []time.Duration) uint64 {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master := mlpConstructor(seed)()
	s := ServePS(l, master.Params(), optim.NewSGD(0.1), workers)
	defer s.Close()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := DialPS(s.Addr())
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			local := mlpConstructor(seed)()
			dataRNG := tensor.NewRNG(seed + 9)
			weights, _, err := c.Pull()
			if err != nil {
				errs[w] = err
				return
			}
			for r := 0; r < rounds; r++ {
				if err := LoadWeights(local.Params(), weights); err != nil {
					errs[w] = err
					return
				}
				x, labels := makeBatch(dataRNG, 4*workers)
				xs, ys := SplitBatch(x, labels, workers)
				optim.ZeroGrads(local.Params())
				logits := local.Forward(xs[w], true)
				_, grad := tensor.CrossEntropy(logits, ys[w])
				local.Backward(grad)
				time.Sleep(delays[w])
				weights, _, err = c.PushRanked(w, comp, GradSlices(local.Params()))
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return master.WeightsHash()
}

func TestRankedSyncPSBitIdenticalAcrossRuns(t *testing.T) {
	// Ranked pushes reduce in rank order regardless of network arrival,
	// so two runs with deliberately different arrival patterns must end
	// in bit-identical server weights.
	h1 := psTrainRanked(t, 31, 3, 8, CompressNone, []time.Duration{0, 2 * time.Millisecond, 4 * time.Millisecond})
	h2 := psTrainRanked(t, 31, 3, 8, CompressNone, []time.Duration{4 * time.Millisecond, 0, 2 * time.Millisecond})
	if h1 != h2 {
		t.Fatalf("ranked sync runs diverged: %x vs %x", h1, h2)
	}
}

func TestRankedPushValidatesRank(t *testing.T) {
	s, master := startPS(t, 2, 25)
	c, err := DialPS(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.PushRanked(5, CompressNone, GradSlices(master.Params())); err == nil {
		t.Fatal("out-of-range rank must be rejected")
	}
	if _, _, err := c.PushRanked(-1, CompressNone, GradSlices(master.Params())); err == nil {
		t.Fatal("negative rank must be rejected")
	}
}

func TestPushInt8RankedConverges(t *testing.T) {
	// One worker, int8-compressed ranked pushes with client-side error
	// feedback: training still converges over real TCP.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master := mlpConstructor(80)()
	s := ServePS(l, master.Params(), optim.NewSGD(0.1), 1)
	defer s.Close()

	c, err := DialPS(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	local := mlpConstructor(80)()
	dataRNG := tensor.NewRNG(81)
	weights, _, err := c.Pull()
	if err != nil {
		t.Fatal(err)
	}
	var first, last float32
	for r := 0; r < 60; r++ {
		if err := LoadWeights(local.Params(), weights); err != nil {
			t.Fatal(err)
		}
		x, labels := makeBatch(dataRNG, 16)
		optim.ZeroGrads(local.Params())
		logits := local.Forward(x, true)
		loss, grad := tensor.CrossEntropy(logits, labels)
		local.Backward(grad)
		if r == 0 {
			first = loss
		}
		last = loss
		weights, _, err = c.PushRanked(0, CompressInt8, GradSlices(local.Params()))
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first/2 {
		t.Fatalf("int8-gradient training did not converge: %.4f -> %.4f", first, last)
	}
}

func TestBoundedStalenessHoldsFastWorker(t *testing.T) {
	// SSP contract: with staleness 1, a worker may run at most one round
	// ahead of the slowest peer. The fast worker's second push must block
	// until the slow worker's first push lands.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master := mlpConstructor(90)()
	s := ServeBoundedAsyncPS(l, master.Params(), optim.NewSGD(0.01), 2, 1)
	defer s.Close()

	fast, err := DialPS(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := DialPS(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	grads := GradSlices(master.Params())
	// First fast push: clock 1 vs min 0 — exactly at the bound, no block.
	if _, _, err := fast.PushRanked(0, CompressNone, grads); err != nil {
		t.Fatal(err)
	}
	// Second fast push: would be 2 ahead — must block.
	second := make(chan error, 1)
	go func() {
		_, _, err := fast.PushRanked(0, CompressNone, grads)
		second <- err
	}()
	select {
	case err := <-second:
		t.Fatalf("push beyond the staleness bound returned early (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	// The slow worker catches up; the fast worker must now be released.
	if _, _, err := slow.PushRanked(1, CompressNone, grads); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-second:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast worker still blocked after the straggler caught up")
	}
	if s.Version() != 3 {
		t.Fatalf("bounded-async server applied %d updates, want 3", s.Version())
	}
}

func TestPSClientCountsWireBytes(t *testing.T) {
	s, _ := startPS(t, 1, 95)
	c, err := DialPS(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Pull(); err != nil {
		t.Fatal(err)
	}
	in, out := c.WireBytes()
	if in <= 0 || out <= 0 {
		t.Fatalf("wire byte counters (in=%d, out=%d) did not move on a pull", in, out)
	}
}
