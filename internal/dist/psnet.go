package dist

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"tbd/internal/layers"
	"tbd/internal/optim"
	"tbd/internal/prof"
	"tbd/internal/tensor"
)

// A real parameter server over TCP (stdlib net + gob), the multi-machine
// data-parallel scheme of §2.2/§4.5 (Li et al.): workers pull the current
// weights, compute gradients on their shard, and push them back; the
// server averages one push per worker, applies the optimizer, and
// releases the next round. Ranked pushes are buffered per worker and
// reduced in rank order, so a synchronous N-worker run is not only
// numerically equivalent to one big-batch replica but reproducible
// bit-for-bit run to run — the same determinism discipline the ring
// all-reduce keeps via its fixed hop order.

// The parameter-server request vocabulary. Wirecheck holds every kind
// to both sides of the protocol: a kind encoded by the client but
// missing from the server's decode switch would be silently rejected as
// unknown — the classic skew bug of hand-rolled protocols.
//
//tbd:wire-kinds
const (
	kindPull   = "pull"
	kindPush   = "push"   // full-precision gradients
	kindPush16 = "push16" // fp16-compressed gradients
	kindPush8  = "push8"  // int8-quantized gradients
)

// psRequest is one worker->server message.
type psRequest struct {
	// Kind is kindPull, kindPush, kindPush16 (fp16 gradients), or
	// kindPush8 (int8-quantized gradients).
	Kind  string
	Grads [][]float32
	// HalfGrads carries fp16-compressed gradients for "push16" — half
	// the wire bytes of a full-precision push (§4.5: reduce the data
	// sent).
	HalfGrads [][]uint16
	// Int8Grads and Scales carry linearly quantized gradients for
	// "push8" (one byte per scalar plus a per-tensor scale). The client
	// keeps the quantization error as an error-feedback residual.
	Int8Grads [][]byte
	Scales    []float32
	// Ranked pushes identify the sending worker; the server buffers one
	// push per rank and reduces them in rank order, making synchronous
	// rounds deterministic. Unranked pushes (Ranked false) accumulate in
	// arrival order, the legacy behavior.
	Ranked bool
	Rank   int
}

// psResponse is one server->worker message.
type psResponse struct {
	Weights [][]float32
	Version int
	Err     string
}

// PSServer is the parameter-server endpoint.
type PSServer struct {
	params  []*layers.Param
	opt     optim.Optimizer
	workers int
	// async applies each push immediately instead of waiting for a full
	// synchronous round — the A3C-style update discipline (Hogwild over
	// the network). Workers may then train on slightly stale weights.
	async bool
	// staleness bounds how far a worker may run ahead of the slowest
	// worker in async mode (SSP, Ho et al.): a ranked push blocks while
	// clock(rank) - min(clocks) exceeds it. Negative = unbounded.
	staleness int

	mu        sync.Mutex
	cond      *sync.Cond
	pending   [][]float32           // unranked accumulation; guarded by mu
	rankGrads [][][]float32         // ranked round buffer [rank][tensor]; guarded by mu
	rankSeen  int                   // distinct ranked pushes buffered; guarded by mu
	pushes    int                   // unranked pushes this round; guarded by mu
	version   int                   // applied update rounds; guarded by mu
	clocks    []int                 // per-rank applied pushes (bounded async); guarded by mu
	conns     map[net.Conn]struct{} // live connections, closed on shutdown; guarded by mu
	linkIn    *tokenBucket          // shared ingress budget for accepted conns; guarded by mu
	linkOut   *tokenBucket          // shared egress budget for accepted conns; guarded by mu
	closed    bool                  // guarded by mu

	listener net.Listener
	wg       sync.WaitGroup
}

// ServePS starts a parameter server on l managing params with opt,
// expecting one gradient push per round from each of workers clients.
// It returns immediately; Close shuts it down. The guarded fields are
// initialized before the accept loop (the first other goroutine)
// starts, so construction needs no lock.
//
//tbd:pre-publication guarded fields are written before the accept goroutine (the first concurrent observer) starts
func ServePS(l net.Listener, params []*layers.Param, opt optim.Optimizer, workers int) *PSServer {
	if workers <= 0 {
		panic("dist: parameter server needs at least one worker")
	}
	s := &PSServer{
		params:    params,
		opt:       opt,
		workers:   workers,
		staleness: -1,
		listener:  l,
		conns:     make(map[net.Conn]struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.pending = make([][]float32, len(params))
	for i, p := range params {
		s.pending[i] = make([]float32, p.Value.Numel())
	}
	s.rankGrads = make([][][]float32, workers)
	s.clocks = make([]int, workers)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// ServeAsyncPS starts an asynchronous parameter server: every push is
// applied immediately with no round barrier and no staleness bound, the
// update discipline the paper's A3C benchmark uses.
func ServeAsyncPS(l net.Listener, params []*layers.Param, opt optim.Optimizer) *PSServer {
	s := ServePS(l, params, opt, 1)
	s.async = true
	return s
}

// ServeBoundedAsyncPS starts an asynchronous parameter server with a
// staleness bound: pushes apply immediately, but a ranked worker whose
// clock runs more than staleness rounds ahead of the slowest worker
// blocks until the stragglers catch up (stale synchronous parallel).
// staleness 0 degenerates to a synchronous barrier; large values
// approach fully async.
func ServeBoundedAsyncPS(l net.Listener, params []*layers.Param, opt optim.Optimizer, workers, staleness int) *PSServer {
	if staleness < 0 {
		panic("dist: bounded-async staleness must be >= 0")
	}
	s := ServePS(l, params, opt, workers)
	s.async = true
	s.staleness = staleness
	return s
}

// ThrottleLink clamps the server's NIC to bytesPerSec per direction,
// shared across ALL accepted connections — the central-bottleneck model
// that makes N-worker parameter-server scaling honest. Call before
// workers dial; a rate <= 0 leaves the link unthrottled.
func (s *PSServer) ThrottleLink(bytesPerSec float64) {
	in, out := NewSharedLink(bytesPerSec)
	s.mu.Lock()
	s.linkIn, s.linkOut = in, out
	s.mu.Unlock()
}

// Addr returns the listen address.
func (s *PSServer) Addr() string { return s.listener.Addr().String() }

// Version returns the number of applied update rounds.
func (s *PSServer) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Close stops the accept loop, unblocks every in-flight pull and push
// handler by closing the live connections, and waits for all handler
// goroutines to exit. It is safe to call with workers mid-round: blocked
// pushers observe closed and return an error response before their
// connection drops.
func (s *PSServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	// Closing the connections unblocks handlers parked in dec.Decode —
	// without this, Close would hang until every client hung up.
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *PSServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		in, out := s.linkIn, s.linkOut
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(ThrottleShared(conn, in, out))
		}()
	}
}

func (s *PSServer) serveConn(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req psRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp psResponse
		switch req.Kind {
		case kindPull:
			resp = s.handlePull()
		case kindPush, kindPush16, kindPush8:
			grads, err := s.decodeGrads(&req)
			if err != nil {
				resp = psResponse{Err: err.Error()}
			} else if req.Ranked {
				resp = s.handleRankedPush(req.Rank, grads)
			} else {
				resp = s.handlePush(grads)
			}
		default:
			resp = psResponse{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// decodeGrads expands a push payload to full-precision per-tensor slices.
func (s *PSServer) decodeGrads(req *psRequest) ([][]float32, error) {
	switch req.Kind {
	case kindPush:
		return req.Grads, nil
	case kindPush16:
		grads := make([][]float32, len(req.HalfGrads))
		for i, hg := range req.HalfGrads {
			grads[i] = tensor.DecodeHalf(hg)
		}
		return grads, nil
	case kindPush8:
		if len(req.Scales) != len(req.Int8Grads) {
			return nil, fmt.Errorf("push8 with %d scales for %d tensors", len(req.Scales), len(req.Int8Grads))
		}
		grads := make([][]float32, len(req.Int8Grads))
		for i, q := range req.Int8Grads {
			grads[i] = make([]float32, len(q))
			DequantInt8Slice(req.Scales[i], q, grads[i])
		}
		return grads, nil
	}
	return nil, fmt.Errorf("not a push kind %q", req.Kind)
}

func (s *PSServer) handlePull() psResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return psResponse{Weights: s.snapshotLocked(), Version: s.version}
}

// snapshotLocked copies the current weights.
func (s *PSServer) snapshotLocked() [][]float32 {
	out := make([][]float32, len(s.params))
	for i, p := range s.params {
		out[i] = append([]float32(nil), p.Value.Data()...)
	}
	return out
}

// checkShapeLocked validates one push payload against the parameters.
//
//tbd:locked-by-caller
func (s *PSServer) checkShapeLocked(grads [][]float32) string {
	if len(grads) != len(s.params) {
		return fmt.Sprintf("push with %d tensors, want %d", len(grads), len(s.params))
	}
	for i, g := range grads {
		if len(g) != len(s.pending[i]) {
			return fmt.Sprintf("tensor %d has %d elements, want %d", i, len(g), len(s.pending[i]))
		}
	}
	return ""
}

// applyLocked loads avg-ready gradient sums scaled by inv into the
// parameter gradients and steps the optimizer.
//
//tbd:locked-by-caller
func (s *PSServer) applyLocked(sum [][]float32, inv float32) {
	for i, p := range s.params {
		dst := p.Grad.Data()
		for j, v := range sum[i] {
			dst[j] = v * inv
		}
	}
	s.opt.Step(s.params)
	optim.ZeroGrads(s.params)
	s.version++
}

func (s *PSServer) handlePush(grads [][]float32) psResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	if msg := s.checkShapeLocked(grads); msg != "" {
		return psResponse{Err: msg}
	}
	for i, g := range grads {
		for j, v := range g {
			s.pending[i][j] += v
		}
	}
	if s.async {
		s.applyLocked(s.pending, 1)
		for i := range s.pending {
			clearF32(s.pending[i])
		}
		return psResponse{Weights: s.snapshotLocked(), Version: s.version}
	}
	s.pushes++
	round := s.version
	if s.pushes == s.workers {
		s.applyLocked(s.pending, 1/float32(s.workers))
		for i := range s.pending {
			clearF32(s.pending[i])
		}
		s.pushes = 0
		s.cond.Broadcast()
	} else {
		for s.version == round && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return psResponse{Err: "server closed"}
		}
	}
	return psResponse{Weights: s.snapshotLocked(), Version: s.version}
}

// handleRankedPush is the deterministic path: one buffered push per rank,
// reduced in rank order when the round completes (sync) or applied
// immediately under the staleness bound (bounded async).
func (s *PSServer) handleRankedPush(rank int, grads [][]float32) psResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rank < 0 || rank >= s.workers {
		return psResponse{Err: fmt.Sprintf("rank %d outside [0, %d)", rank, s.workers)}
	}
	if msg := s.checkShapeLocked(grads); msg != "" {
		return psResponse{Err: msg}
	}

	if s.async {
		// Apply this worker's contribution immediately, then hold the
		// worker while it is more than `staleness` rounds ahead of the
		// slowest clock.
		for i, g := range grads {
			copy(s.pending[i], g)
		}
		s.applyLocked(s.pending, 1)
		for i := range s.pending {
			clearF32(s.pending[i])
		}
		s.clocks[rank]++
		s.cond.Broadcast()
		if s.staleness >= 0 {
			for s.clocks[rank]-minInt(s.clocks) > s.staleness && !s.closed {
				s.cond.Wait()
			}
			if s.closed {
				return psResponse{Err: "server closed"}
			}
		}
		return psResponse{Weights: s.snapshotLocked(), Version: s.version}
	}

	if s.rankGrads[rank] != nil {
		return psResponse{Err: fmt.Sprintf("rank %d pushed twice in one round", rank)}
	}
	bufs := make([][]float32, len(grads))
	for i, g := range grads {
		bufs[i] = append([]float32(nil), g...)
	}
	s.rankGrads[rank] = bufs
	s.rankSeen++
	round := s.version
	if s.rankSeen == s.workers {
		// Reduce in rank order 0..N-1: the accumulation order no longer
		// depends on network arrival, so repeated runs are bit-identical.
		for i := range s.pending {
			sum := s.pending[i]
			clearF32(sum)
			for r := 0; r < s.workers; r++ {
				for j, v := range s.rankGrads[r][i] {
					sum[j] += v
				}
			}
		}
		s.applyLocked(s.pending, 1/float32(s.workers))
		for i := range s.pending {
			clearF32(s.pending[i])
		}
		for r := range s.rankGrads {
			s.rankGrads[r] = nil
		}
		s.rankSeen = 0
		s.cond.Broadcast()
	} else {
		for s.version == round && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return psResponse{Err: "server closed"}
		}
	}
	return psResponse{Weights: s.snapshotLocked(), Version: s.version}
}

func clearF32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// PSClient is a worker's connection to the parameter server.
type PSClient struct {
	conn  net.Conn
	count *countingConn
	dec   *gob.Decoder
	enc   *gob.Encoder
	quant *Int8Quantizer // error-feedback state for int8 pushes
	offs  []int          // flat-stream offset of each tensor for the quantizer
}

// DialPS connects a worker to the server at addr.
func DialPS(addr string) (*PSClient, error) {
	return DialPSThrottled(addr, 0)
}

// DialPSThrottled connects a worker to the server at addr over a link
// clamped to bytesPerSec per direction (0 = unthrottled). The client
// counts wire bytes either way.
func DialPSThrottled(addr string, bytesPerSec float64) (*PSClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dial parameter server: %w", err)
	}
	count := newCountingConn(conn)
	wire := Throttle(count, bytesPerSec)
	return &PSClient{conn: conn, count: count, dec: gob.NewDecoder(wire), enc: gob.NewEncoder(wire)}, nil
}

// Close terminates the connection.
func (c *PSClient) Close() error { return c.conn.Close() }

// WireBytes returns cumulative (in, out) wire bytes this client moved.
func (c *PSClient) WireBytes() (in, out int64) { return c.count.Bytes() }

func (c *PSClient) roundTrip(req psRequest) (psResponse, error) {
	in0, out0 := c.count.Bytes()
	sp := prof.Begin(prof.CatComm, "comm.ps.roundtrip")
	if err := c.enc.Encode(&req); err != nil {
		sp.End()
		return psResponse{}, fmt.Errorf("dist: send %s: %w", req.Kind, err)
	}
	var resp psResponse
	if err := c.dec.Decode(&resp); err != nil {
		sp.End()
		return psResponse{}, fmt.Errorf("dist: receive %s reply: %w", req.Kind, err)
	}
	in1, out1 := c.count.Bytes()
	sp.SetBytes((in1 - in0) + (out1 - out0))
	sp.End()
	if resp.Err != "" {
		return psResponse{}, fmt.Errorf("dist: server: %s", resp.Err)
	}
	return resp, nil
}

// Pull fetches the current weights and version.
func (c *PSClient) Pull() ([][]float32, int, error) {
	resp, err := c.roundTrip(psRequest{Kind: kindPull})
	return resp.Weights, resp.Version, err
}

// Push submits this worker's gradients and blocks until the synchronous
// round is applied, returning the post-update weights.
func (c *PSClient) Push(grads [][]float32) ([][]float32, int, error) {
	resp, err := c.roundTrip(psRequest{Kind: kindPush, Grads: grads})
	return resp.Weights, resp.Version, err
}

// PushHalf submits fp16-compressed gradients (half the wire volume; the
// server expands them before aggregation). Weights still return in full
// precision.
func (c *PSClient) PushHalf(grads [][]float32) ([][]float32, int, error) {
	resp, err := c.roundTrip(c.encodeHalf(grads, false, 0))
	return resp.Weights, resp.Version, err
}

// PushRanked submits gradients tagged with this worker's rank under the
// given compression. Ranked pushes make synchronous rounds deterministic
// and enable the bounded-staleness clock in async mode. Int8 pushes keep
// an error-feedback residual inside the client, so a client must push
// the same tensor layout every round.
func (c *PSClient) PushRanked(rank int, comp Compression, grads [][]float32) ([][]float32, int, error) {
	var req psRequest
	switch comp {
	case CompressFP16:
		req = c.encodeHalf(grads, true, rank)
	case CompressInt8:
		req = c.encodeInt8(grads, rank)
	default:
		req = psRequest{Kind: kindPush, Grads: grads, Ranked: true, Rank: rank}
	}
	resp, err := c.roundTrip(req)
	return resp.Weights, resp.Version, err
}

func (c *PSClient) encodeHalf(grads [][]float32, ranked bool, rank int) psRequest {
	hg := make([][]uint16, len(grads))
	for i, g := range grads {
		hg[i] = tensor.EncodeHalf(g)
	}
	return psRequest{Kind: kindPush16, HalfGrads: hg, Ranked: ranked, Rank: rank}
}

func (c *PSClient) encodeInt8(grads [][]float32, rank int) psRequest {
	if c.quant == nil {
		total := 0
		c.offs = make([]int, len(grads))
		for i, g := range grads {
			c.offs[i] = total
			total += len(g)
		}
		c.quant = NewInt8Quantizer(total)
	}
	qs := make([][]byte, len(grads))
	scales := make([]float32, len(grads))
	for i, g := range grads {
		qs[i] = make([]byte, len(g))
		scales[i] = c.quant.QuantizeAt(c.offs[i], g, qs[i])
	}
	return psRequest{Kind: kindPush8, Int8Grads: qs, Scales: scales, Ranked: true, Rank: rank}
}

// LoadWeights copies pulled weights into a parameter list.
func LoadWeights(params []*layers.Param, weights [][]float32) error {
	if len(weights) != len(params) {
		return fmt.Errorf("dist: %d weight tensors for %d params", len(weights), len(params))
	}
	for i, w := range weights {
		if len(w) != params[i].Value.Numel() {
			return fmt.Errorf("dist: tensor %d has %d elements, want %d", i, len(w), params[i].Value.Numel())
		}
		copy(params[i].Value.Data(), w)
	}
	return nil
}

// GradSlices extracts gradient payloads for a push.
func GradSlices(params []*layers.Param) [][]float32 {
	out := make([][]float32, len(params))
	for i, p := range params {
		out[i] = append([]float32(nil), p.Grad.Data()...)
	}
	return out
}
